// Fig. 7 — "Cost Changing with Sample Counts of Different Methods under
// Different Workflows".
//
// For each workload, prints the incumbent configuration's cost after each
// sample, per method.  Paper shapes to look for:
//   * AARC's cost trends downward and converges within few samples;
//   * BO needs many samples and stays unstable;
//   * on ML Pipeline, MAFF freezes early at a high-cost local optimum
//     ("quickly falls into local optima due to its coupled resource
//     configuration search").

#include <iostream>

#include "harness.h"
#include "report/ascii_chart.h"

int main() {
  using namespace aarc;

  std::cout << "# Fig. 7 — incumbent cost vs sample count\n\n";

  const platform::Executor ex;
  const platform::ConfigGrid grid;

  for (const auto& name : workloads::paper_workload_names()) {
    const workloads::Workload w = workloads::make_by_name(name);
    std::vector<std::string> labels;
    std::vector<std::vector<double>> series;
    std::vector<double> finals;
    for (const std::string& method : {"AARC", "BO", "MAFF"}) {
      const auto result = bench::run_method(method, w, ex, grid, {});
      labels.push_back(method);
      auto s = result.trace.incumbent_cost_series();
      finals.push_back(s.empty() ? 0.0 : s.back());
      series.push_back(std::move(s));
    }
    std::cout << "## " << name << "\n"
              << report::series_table(labels, series, 5, 0).to_markdown();
    std::cout << report::ascii_chart(labels, series) << "\n";
    std::cout << "converged incumbent cost: AARC " << support::format_double(finals[0], 0)
              << ", BO " << support::format_double(finals[1], 0) << ", MAFF "
              << support::format_double(finals[2], 0) << "\n\n";
  }
  return 0;
}
