// Concurrent evaluation engine: wall-clock speedup at equal results.
//
// Simulated probes answer in microseconds, so raw simulation throughput
// says nothing about the concurrency the batch evaluator buys on a real
// platform, where a probe occupies wall time until the cloud responds.  The
// executor therefore emulates a per-probe platform latency
// (ExecutorOptions::emulated_probe_latency_seconds) and the bench times the
// BO baseline — whose init design and top-k acquisition rounds batch
// naturally — at --threads 1 versus --threads 8.
//
// The determinism guarantee is checked, not assumed: both runs must produce
// the identical best configuration, sample total, and per-sample makespan
// sequence, or the bench exits nonzero.  The acceptance property (>= 3x
// speedup at 8 threads) is printed as PASS/FAIL for CTest.
//
// `--smoke` shrinks the sample budget and emulated latency for CTest.

#include <chrono>
#include <cstring>
#include <iostream>
#include <vector>

#include "baselines/bo/bo_optimizer.h"
#include "search/evaluator.h"
#include "support/table.h"
#include "workloads/catalog.h"

using namespace aarc;

namespace {

struct TimedRun {
  search::SearchResult result;
  std::vector<double> makespans;
  double seconds = 0.0;
};

TimedRun run_bo(const workloads::Workload& w, const platform::Executor& executor,
                const platform::ConfigGrid& grid, std::size_t threads,
                const baselines::BoOptions& bo) {
  search::EvaluatorOptions eval_opts;
  eval_opts.threads = threads;
  search::Evaluator evaluator(w.workflow, executor, w.slo_seconds, 1.0, 3101, eval_opts);

  const auto start = std::chrono::steady_clock::now();
  TimedRun run;
  run.result = baselines::bayesian_optimization(evaluator, grid, bo);
  run.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
                    .count();
  for (const auto& s : run.result.trace.samples()) run.makespans.push_back(s.makespan);
  return run;
}

bool identical(const TimedRun& a, const TimedRun& b) {
  return a.result.found_feasible == b.result.found_feasible &&
         a.result.best_config == b.result.best_config &&
         a.makespans == b.makespans;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;

  std::cout << "# Parallel probe evaluation: speedup at equal results\n\n";

  platform::ExecutorOptions opts;
  opts.emulated_probe_latency_seconds = smoke ? 0.003 : 0.005;
  const platform::Executor executor(
      std::make_unique<platform::DecoupledLinearPricing>(), opts);
  const platform::ConfigGrid grid;
  const workloads::Workload w = workloads::make_by_name("chatbot");

  baselines::BoOptions bo;
  bo.max_samples = smoke ? 42 : 80;
  bo.batch_size = 8;
  bo.seed = 3101;

  const std::size_t parallel_threads = 8;
  const TimedRun serial = run_bo(w, executor, grid, 1, bo);
  const TimedRun parallel = run_bo(w, executor, grid, parallel_threads, bo);

  support::Table table({"threads", "samples", "feasible", "wall seconds"});
  table.add_row({"1", std::to_string(serial.result.samples()),
                 serial.result.found_feasible ? "yes" : "no",
                 support::format_double(serial.seconds, 3)});
  table.add_row({std::to_string(parallel_threads),
                 std::to_string(parallel.result.samples()),
                 parallel.result.found_feasible ? "yes" : "no",
                 support::format_double(parallel.seconds, 3)});
  std::cout << table.to_markdown() << "\n";

  const bool same = identical(serial, parallel);
  const double speedup = parallel.seconds > 0.0 ? serial.seconds / parallel.seconds : 0.0;
  std::cout << "determinism: results at 1 and " << parallel_threads << " threads are "
            << (same ? "identical" : "DIFFERENT") << "\n";
  // The smoke budget is small enough that scheduling jitter matters; the
  // acceptance bar stays at the issue's 3x for the full run and relaxes
  // slightly for smoke.
  const double bar = smoke ? 2.0 : 3.0;
  const bool fast_enough = speedup >= bar;
  std::cout << "parallel speedup acceptance: " << support::format_double(speedup, 2)
            << "x at " << parallel_threads << " threads (bar "
            << support::format_double(bar, 1) << "x) : "
            << (same && fast_enough ? "PASS" : "FAIL") << "\n";
  return same && fast_enough ? 0 : 1;
}
