// Fig. 8 — "Performance Across Input Sizes in Video Analysis" (§IV-D).
//
// The Input-Aware Configuration Engine schedules one configuration per input
// class (light / middle / heavy) and dispatches each request by its input
// features.  The baselines keep one fixed configuration tuned at the middle
// scale.  Paper shapes to look for:
//   * (a) runtime: the fixed MAFF configuration can violate the SLO on heavy
//     inputs; the engine stays within the SLO on every class;
//   * (b) cost: the engine is far cheaper on light inputs (paper: ~90%) and
//     still cheaper on heavy inputs (~46% vs MAFF / ~35% vs BO).

#include <iostream>

#include "harness.h"
#include "inputaware/engine.h"

int main() {
  using namespace aarc;

  std::cout << "# Fig. 8 — input-aware configuration on Video Analysis\n\n";

  const workloads::Workload w = workloads::make_by_name("video_analysis");
  const platform::Executor ex;
  const platform::ConfigGrid grid;
  const platform::Profiler profiler(ex);

  // Engine: one AARC configuration per input class.
  inputaware::InputAwareEngine engine(w, ex, grid);
  const std::size_t engine_samples = engine.build();
  std::cout << "engine built: " << engine_samples << " samples across "
            << w.input_classes.size() << " classes\n\n";

  // Baselines: one fixed configuration each, tuned at the middle scale.
  const auto bo = bench::run_method("BO", w, ex, grid, {});
  const auto maff = bench::run_method("MAFF", w, ex, grid, {});

  support::Table runtime_table({"input", "engine (AARC)", "BO fixed", "MAFF fixed",
                                "SLO"});
  support::Table cost_table({"input", "engine (AARC)", "BO fixed", "MAFF fixed"});
  support::Table violation_table({"input", "engine viol. %", "BO viol. %",
                                  "MAFF viol. %"});

  for (const auto entry : {workloads::InputClass::Light, workloads::InputClass::Middle,
                           workloads::InputClass::Heavy}) {
    const double scale = w.scale_for(entry);
    const auto& engine_config = engine.configuration(entry).report.result.best_config;

    auto profile = [&](const platform::WorkflowConfig& cfg) {
      support::Rng rng(4242);
      return profiler.profile(w.workflow, cfg, 100, rng, scale);
    };
    const auto engine_run = profile(engine_config);
    const auto bo_run = profile(bo.best_config);
    const auto maff_run = profile(maff.best_config);

    auto runtime_cell = [&](const platform::ProfileReport& r) {
      if (r.makespans.empty()) return std::string("OOM");
      std::string cell = support::format_mean_std(r.makespan.mean, r.makespan.stddev, 1);
      if (r.makespan.mean > w.slo_seconds) cell += " (SLO!)";
      return cell;
    };
    runtime_table.add_row({to_string(entry), runtime_cell(engine_run),
                           runtime_cell(bo_run), runtime_cell(maff_run),
                           support::format_double(w.slo_seconds, 0)});
    cost_table.add_row({to_string(entry),
                        support::format_double(engine_run.cost.mean, 0),
                        bo_run.makespans.empty()
                            ? "OOM"
                            : support::format_double(bo_run.cost.mean, 0),
                        maff_run.makespans.empty()
                            ? "OOM"
                            : support::format_double(maff_run.cost.mean, 0)});
    violation_table.add_row(
        {to_string(entry),
         support::format_percent(engine_run.slo_violation_rate(w.slo_seconds), 0),
         support::format_percent(bo_run.slo_violation_rate(w.slo_seconds), 0),
         support::format_percent(maff_run.slo_violation_rate(w.slo_seconds), 0)});
  }

  std::cout << "## (a) runtime per input class (mean ± std over 100 runs)\n"
            << runtime_table.to_markdown() << "\n";
  std::cout << "## per-run SLO violation rates\n" << violation_table.to_markdown() << "\n";
  std::cout << "## (b) mean cost per input class\n" << cost_table.to_markdown();
  std::cout << "\npaper anchors: fixed MAFF may violate the 600 s SLO on heavy inputs;\n"
               "the engine cuts cost ~90% on light and ~46%/35% on heavy vs MAFF/BO.\n";

  // Demonstrate the dispatch path itself (classify by input features).
  std::cout << "\n## dispatch demo\n";
  const inputaware::ReferenceInput ref;
  for (double factor : {0.2, 1.0, 2.5}) {
    inputaware::InputDescriptor in = ref.descriptor;
    in.size_mb *= factor;
    in.bitrate_kbps *= factor;
    in.duration_seconds *= factor;
    const auto& cc = engine.dispatch(in);
    std::cout << "input " << support::format_double(in.size_mb, 0) << " MB @ "
              << support::format_double(in.bitrate_kbps, 0) << " kbps -> class "
              << to_string(cc.input_class) << "\n";
  }
  return 0;
}
