// Vectorized probe hot path: single-thread throughput of the SoA kernel.
//
// The batch-first evaluator routes noise-free/noisy (but fault-free) probes
// through platform::Executor::execute_lanes — one blocked pass over the DAG
// that evaluates every lane of a batch against each function's performance
// model with hoisted per-node constants and no per-probe allocation.  The
// headline here compares that kernel directly against the legacy per-probe
// engine it replaced: one execute() per probe, a fresh rng and span per
// probe, and an Evaluation materialized through two heap vectors per probe
// (replicated inline below, faithful to the deleted scalar engine).
//
// A secondary table reports the same ratio measured end to end through
// search::Evaluator::evaluate_batch, which adds the shared commit costs both
// the old and new evaluators pay per probe (trace sample, config snapshot);
// it is informational, with no bar of its own.
//
// Bit-identity is checked, not assumed: the kernel must reproduce the
// scalar makespans, costs, and per-invocation lanes exactly or the bench
// exits nonzero.  The acceptance property — >= 10x single-thread kernel
// speedup on the analytic model (>= 6x under the --smoke budget, where
// timing jitter matters) plus a conservative absolute throughput floor —
// is printed as PASS/FAIL for CTest, and the headline numbers land in
// BENCH_probe_throughput.json.

#include <chrono>
#include <cmath>
#include <cstring>
#include <iostream>
#include <vector>

#include "bench_json.h"
#include "dag/lane_schedule.h"
#include "obs/span.h"
#include "platform/executor.h"
#include "platform/lanes.h"
#include "search/evaluator.h"
#include "support/rng.h"
#include "support/table.h"
#include "workloads/catalog.h"

using namespace aarc;

namespace {

/// What the pre-SoA evaluator kept per probe: the sample plus two owned
/// per-function vectors.
struct LegacyEvaluation {
  double makespan = 0.0;
  double cost = 0.0;
  bool failed = false;
  double wall_seconds = 0.0;
  double wall_cost = 0.0;
  std::vector<double> function_runtimes;
  std::vector<double> function_costs;
};

std::vector<platform::WorkflowConfig> config_spread(std::size_t functions,
                                                    std::size_t count) {
  const double cpus[] = {0.5, 1.0, 2.0, 4.0};
  const double mems[] = {512.0, 768.0, 1024.0, 2048.0};
  std::vector<platform::WorkflowConfig> configs;
  configs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    platform::WorkflowConfig cfg(functions);
    for (std::size_t f = 0; f < functions; ++f) {
      cfg[f].vcpu = cpus[(i + f) % 4];
      cfg[f].memory_mb = mems[(i * 3 + f) % 4];
    }
    configs.push_back(std::move(cfg));
  }
  return configs;
}

/// The deleted per-probe engine, faithfully: per-probe span, per-probe rng
/// at the derived stream, one execute(), and an Evaluation materialized
/// through ExecutionResult::runtimes() plus a cost-copy loop.
std::vector<LegacyEvaluation> run_legacy(const platform::Workflow& wf,
                                         const platform::Executor& ex,
                                         const std::vector<platform::WorkflowConfig>& cfgs,
                                         double input_scale, std::uint64_t seed,
                                         double& seconds) {
  std::vector<LegacyEvaluation> out;
  out.reserve(cfgs.size());
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    obs::Span span("search.probe", "search");
    support::Rng rng(support::derive_seed(seed, i));
    const platform::ExecutionResult result = ex.execute(wf, cfgs[i], input_scale, rng);
    LegacyEvaluation eval;
    eval.makespan = result.makespan;
    eval.cost = result.total_cost;
    eval.failed = result.failed;
    eval.wall_seconds = result.observed_wall_seconds();
    eval.wall_cost = result.observed_cost();
    eval.function_runtimes = result.runtimes();
    eval.function_costs.reserve(result.invocations.size());
    for (const auto& inv : result.invocations) eval.function_costs.push_back(inv.cost);
    out.push_back(std::move(eval));
  }
  seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
                .count();
  return out;
}

/// The SoA kernel, raw: one function-major lane buffer, per-lane stream
/// seeds at the same derivations, one execute_lanes() call.  Seed
/// derivation is timed — the legacy loop pays for its per-probe rngs too.
void run_kernel(const platform::Workflow& wf, const platform::Executor& ex,
                const std::vector<platform::WorkflowConfig>& cfgs,
                double input_scale, std::uint64_t seed,
                platform::ExecutionLanes& lanes, double& seconds) {
  const dag::LaneSchedule schedule(wf.graph());
  const std::size_t fns = wf.function_count();
  const std::size_t n = cfgs.size();
  const bool noisy = ex.options().noise.sigma() > 0.0;
  const auto start = std::chrono::steady_clock::now();
  lanes.resize(fns, n);
  // Function-major fill: writes stream sequentially through each lane row.
  for (std::size_t f = 0; f < fns; ++f) {
    double* vcpu = lanes.vcpu.data() + f * n;
    double* mem = lanes.memory_mb.data() + f * n;
    for (std::size_t i = 0; i < n; ++i) {
      vcpu[i] = cfgs[i][f].vcpu;
      mem[i] = cfgs[i][f].memory_mb;
    }
  }
  std::vector<std::uint64_t> seeds;
  if (noisy) {
    seeds.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      seeds.push_back(support::derive_seed(seed, i));
    }
  }
  ex.execute_lanes(wf, schedule, input_scale, lanes, 0, n,
                   noisy ? seeds.data() : nullptr);
  seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
                .count();
}

std::vector<search::ProbeResult> run_evaluator(const platform::Workflow& wf,
                                               const platform::Executor& ex,
                                               const std::vector<platform::WorkflowConfig>& cfgs,
                                               double input_scale, std::uint64_t seed,
                                               double slo, double& seconds) {
  search::Evaluator evaluator(wf, ex, slo, input_scale, seed);
  search::ProbeBatch batch = evaluator.make_batch();
  batch.reserve(cfgs.size());
  for (const auto& cfg : cfgs) batch.add(cfg);
  const auto start = std::chrono::steady_clock::now();
  auto results = evaluator.evaluate_batch(batch, search::ExecutionPolicy::serial());
  seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
                .count();
  return results;
}

bool lanes_identical(const std::vector<LegacyEvaluation>& legacy,
                     const platform::ExecutionLanes& lanes) {
  if (legacy.size() != lanes.lane_count) return false;
  for (std::size_t i = 0; i < legacy.size(); ++i) {
    if (legacy[i].makespan != lanes.makespan[i]) return false;
    if (legacy[i].cost != lanes.total_cost[i]) return false;
    if (legacy[i].failed != (lanes.failed[i] != 0)) return false;
    if (legacy[i].wall_seconds != lanes.wall_seconds[i]) return false;
    if (legacy[i].wall_cost != lanes.wall_cost[i]) return false;
    for (std::size_t f = 0; f < legacy[i].function_runtimes.size(); ++f) {
      if (legacy[i].function_runtimes[f] != lanes.runtime[lanes.at(f, i)]) return false;
      if (legacy[i].function_costs[f] != lanes.cost[lanes.at(f, i)]) return false;
    }
  }
  return true;
}

bool results_identical(const std::vector<LegacyEvaluation>& legacy,
                       const std::vector<search::ProbeResult>& batch) {
  if (legacy.size() != batch.size()) return false;
  for (std::size_t i = 0; i < legacy.size(); ++i) {
    if (legacy[i].makespan != batch[i].sample.makespan) return false;
    if (legacy[i].cost != batch[i].sample.cost) return false;
    if (legacy[i].failed != batch[i].sample.failed) return false;
    if (legacy[i].function_runtimes.size() != batch[i].function_runtimes.size()) {
      return false;
    }
    for (std::size_t f = 0; f < legacy[i].function_runtimes.size(); ++f) {
      if (legacy[i].function_runtimes[f] != batch[i].function_runtimes[f]) return false;
      if (legacy[i].function_costs[f] != batch[i].function_costs[f]) return false;
    }
  }
  return true;
}

struct Measurement {
  double legacy_per_sec = 0.0;
  double kernel_per_sec = 0.0;
  double evaluator_per_sec = 0.0;
  double kernel_speedup = 0.0;
  double evaluator_speedup = 0.0;
  bool identical = false;
};

Measurement measure(const platform::Workflow& wf, double sigma, std::size_t probes,
                    double input_scale, double slo) {
  platform::ExecutorOptions opts;
  opts.noise = perf::NoiseModel{sigma};
  const platform::Executor ex(std::make_unique<platform::DecoupledLinearPricing>(),
                              opts);
  const std::uint64_t seed = 3101;
  const auto configs = config_spread(wf.function_count(), probes);

  // Warm all three paths once (page in code and buffers), then take the
  // best of several timed repetitions: a single kernel pass over the smoke
  // batch runs in about a millisecond, well inside scheduler jitter.  The
  // lane buffer is reused across repetitions, as the evaluator reuses its
  // own across batches.
  double warm = 0.0;
  platform::ExecutionLanes lanes;
  const auto warm_configs = config_spread(wf.function_count(), 64);
  (void)run_legacy(wf, ex, warm_configs, input_scale, seed, warm);
  run_kernel(wf, ex, warm_configs, input_scale, seed, lanes, warm);
  (void)run_evaluator(wf, ex, warm_configs, input_scale, seed, slo, warm);

  constexpr int kReps = 5;
  Measurement m;
  double legacy_seconds = 0.0;
  double kernel_seconds = 0.0;
  double evaluator_seconds = 0.0;
  std::vector<LegacyEvaluation> legacy;
  std::vector<search::ProbeResult> batch;
  for (int rep = 0; rep < kReps; ++rep) {
    double s = 0.0;
    legacy = run_legacy(wf, ex, configs, input_scale, seed, s);
    legacy_seconds = rep == 0 ? s : std::min(legacy_seconds, s);
    run_kernel(wf, ex, configs, input_scale, seed, lanes, s);
    kernel_seconds = rep == 0 ? s : std::min(kernel_seconds, s);
    batch = run_evaluator(wf, ex, configs, input_scale, seed, slo, s);
    evaluator_seconds = rep == 0 ? s : std::min(evaluator_seconds, s);
  }
  m.identical = lanes_identical(legacy, lanes) && results_identical(legacy, batch);
  const double n = static_cast<double>(probes);
  m.legacy_per_sec = legacy_seconds > 0.0 ? n / legacy_seconds : 0.0;
  m.kernel_per_sec = kernel_seconds > 0.0 ? n / kernel_seconds : 0.0;
  m.evaluator_per_sec = evaluator_seconds > 0.0 ? n / evaluator_seconds : 0.0;
  m.kernel_speedup = legacy_seconds > 0.0 && kernel_seconds > 0.0
                         ? legacy_seconds / kernel_seconds
                         : 0.0;
  m.evaluator_speedup = legacy_seconds > 0.0 && evaluator_seconds > 0.0
                            ? legacy_seconds / evaluator_seconds
                            : 0.0;
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;

  std::cout << "# Vectorized probe hot path: single-thread throughput\n\n";

  const workloads::Workload w = workloads::make_by_name("ml_pipeline");
  const std::size_t probes = smoke ? 4000 : 40000;
  const double input_scale = 1.5;  // non-trivial scale: the kernel hoists pow()

  // Headline: the noise-free analytic model (pure arithmetic, no rng).
  const Measurement clean = measure(w.workflow, 0.0, probes, input_scale,
                                    w.slo_seconds);
  // Secondary: with multiplicative noise the kernel draws per active node,
  // exactly like the scalar path — the win narrows but must persist.
  const Measurement noisy = measure(w.workflow, 0.03, probes, input_scale,
                                    w.slo_seconds);

  support::Table table({"noise sigma", "legacy probes/s", "kernel probes/s",
                        "kernel speedup", "evaluator probes/s",
                        "evaluator speedup", "bit-identical"});
  const auto row = [&](const char* label, const Measurement& m) {
    table.add_row({label, support::format_double(m.legacy_per_sec, 0),
                   support::format_double(m.kernel_per_sec, 0),
                   support::format_double(m.kernel_speedup, 2) + "x",
                   support::format_double(m.evaluator_per_sec, 0),
                   support::format_double(m.evaluator_speedup, 2) + "x",
                   m.identical ? "yes" : "NO"});
  };
  row("0.00", clean);
  row("0.03", noisy);
  std::cout << table.to_markdown() << "\n";

  bench::BenchJson out("probe_throughput");
  out.set("probes", io::Json(static_cast<double>(probes)));
  out.set("legacy_probes_per_sec", io::Json(clean.legacy_per_sec));
  out.set("kernel_probes_per_sec", io::Json(clean.kernel_per_sec));
  out.set("evaluator_probes_per_sec", io::Json(clean.evaluator_per_sec));
  out.set("speedup", io::Json(clean.kernel_speedup));
  out.set("noisy_speedup", io::Json(noisy.kernel_speedup));
  out.set("evaluator_speedup", io::Json(clean.evaluator_speedup));
  out.set("bit_identical", io::Json(clean.identical && noisy.identical));
  out.write();
  std::cout << "wrote " << out.path() << "\n";

  // Acceptance: bit-identity on both noise settings, the headline kernel
  // speedup, near-parity on the noisy case, and a conservative absolute
  // floor so CI catches throughput regressions even if the legacy replica
  // also got slower.  The noisy case is structurally bound by per-stream
  // mt19937_64 setup (seeding plus the first twist, ~3us of ~3.5us per
  // probe) that bit-identity forces both paths to pay, so the kernel can
  // only reach parity there; the gate guards against a real regression
  // while tolerating timing jitter around 1.0x.
  const double speedup_bar = smoke ? 6.0 : 10.0;
  const double noisy_parity_bar = 0.85;
  const double floor_probes_per_sec = 100000.0;
  const bool pass = clean.identical && noisy.identical &&
                    clean.kernel_speedup >= speedup_bar &&
                    noisy.kernel_speedup >= noisy_parity_bar &&
                    clean.kernel_per_sec >= floor_probes_per_sec;
  std::cout << "probe throughput acceptance: "
            << support::format_double(clean.kernel_speedup, 2) << "x (bar "
            << support::format_double(speedup_bar, 1) << "x), "
            << support::format_double(clean.kernel_per_sec, 0) << " probes/s (floor "
            << support::format_double(floor_probes_per_sec, 0) << ") : "
            << (pass ? "PASS" : "FAIL") << "\n";
  return pass ? 0 : 1;
}
