// Micro-benchmarks of the framework's own hot paths (google-benchmark):
// critical-path extraction, detour enumeration, the simulated executor, GP
// fitting/prediction, and a full AARC scheduling pass.

#include <benchmark/benchmark.h>

#include "aarc/scheduler.h"
#include "baselines/bo/gp.h"
#include "dag/critical_path.h"
#include "dag/detour.h"
#include "platform/executor.h"
#include "support/rng.h"
#include "workloads/catalog.h"
#include "workloads/synthetic.h"

namespace {

using namespace aarc;

workloads::Workload synthetic(std::size_t layers, std::size_t width) {
  workloads::SyntheticOptions opts;
  opts.pattern = workloads::Pattern::Random;
  opts.layers = layers;
  opts.width = width;
  opts.seed = 11;
  return workloads::make_synthetic(opts);
}

void BM_CriticalPath(benchmark::State& state) {
  const auto w = synthetic(static_cast<std::size_t>(state.range(0)),
                           static_cast<std::size_t>(state.range(1)));
  dag::Graph g = w.workflow.graph();
  support::Rng rng(1);
  for (dag::NodeId id = 0; id < g.node_count(); ++id) g.set_weight(id, rng.uniform(1, 10));
  for (auto _ : state) {
    benchmark::DoNotOptimize(dag::find_critical_path(g));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.node_count()));
}
BENCHMARK(BM_CriticalPath)->Args({3, 3})->Args({6, 6})->Args({10, 10});

void BM_DetourEnumeration(benchmark::State& state) {
  const auto w = synthetic(static_cast<std::size_t>(state.range(0)),
                           static_cast<std::size_t>(state.range(1)));
  dag::Graph g = w.workflow.graph();
  support::Rng rng(1);
  for (dag::NodeId id = 0; id < g.node_count(); ++id) g.set_weight(id, rng.uniform(1, 10));
  const auto cp = dag::find_critical_path(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dag::find_detour_subpaths(g, cp));
  }
}
BENCHMARK(BM_DetourEnumeration)->Args({3, 3})->Args({6, 6});

void BM_ExecuteWorkflow(benchmark::State& state) {
  const auto w = workloads::make_by_name("video_analysis");
  const platform::Executor ex;
  const auto cfg = platform::uniform_config(w.workflow.function_count(), {4.0, 5120.0});
  support::Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ex.execute(w.workflow, cfg, 1.0, rng));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(w.workflow.function_count()));
}
BENCHMARK(BM_ExecuteWorkflow);

void BM_GpFitPredict(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  support::Rng rng(3);
  std::vector<std::vector<double>> x(n, std::vector<double>(14));
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (double& v : x[i]) v = rng.uniform(0.0, 1.0);
    y[i] = rng.uniform(0.0, 100.0);
  }
  const std::vector<double> query(14, 0.5);
  for (auto _ : state) {
    baselines::GaussianProcess gp(std::make_unique<baselines::Matern52Kernel>(1.0, 0.2),
                                  1e-3);
    gp.fit(x, y);
    benchmark::DoNotOptimize(gp.predict(query));
  }
}
BENCHMARK(BM_GpFitPredict)->Arg(25)->Arg(50)->Arg(100);

void BM_AarcFullSchedule(benchmark::State& state) {
  const auto w = workloads::make_by_name("chatbot");
  const platform::Executor ex;
  const core::GraphCentricScheduler scheduler(ex, platform::ConfigGrid{});
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheduler.schedule(w.workflow, w.slo_seconds));
  }
}
BENCHMARK(BM_AarcFullSchedule)->Unit(benchmark::kMillisecond);

}  // namespace
