// Fig. 3 — "Bayesian Optimization Search for Chatbot" (challenge).
//
// Runs the workflow-adapted BO baseline on Chatbot for 100 rounds and prints
// the per-sample cost/runtime series plus the paper's instability metrics:
//   * total sampling wall time (paper: 9.76 h);
//   * cost reduction over the run (paper: 32.13%, not converged);
//   * fraction of cost changes that are increases (paper: over half);
//   * mean absolute fluctuation as % of the mean (paper: 18.3%).

#include <algorithm>
#include <iostream>

#include "baselines/bo/bo_optimizer.h"
#include "platform/executor.h"
#include "report/comparison.h"
#include "report/ascii_chart.h"
#include "support/statistics.h"
#include "support/table.h"
#include "workloads/catalog.h"

int main() {
  using namespace aarc;

  std::cout << "# Fig. 3 — BO search trace on Chatbot\n\n";

  const workloads::Workload w = workloads::make_by_name("chatbot");
  const platform::Executor ex;
  const platform::ConfigGrid grid;

  search::Evaluator ev(w.workflow, ex, w.slo_seconds, 1.0, 3101);
  baselines::BoOptions opts;  // 100 samples, as in the paper
  const auto result = baselines::bayesian_optimization(ev, grid, opts);

  const auto costs = result.trace.raw_cost_series();
  const auto runtimes = result.trace.raw_runtime_series();

  std::cout << "## per-sample series (every 5th sample)\n";
  std::cout << report::series_table({"cost", "runtime (s)"}, {costs, runtimes}, 5)
                   .to_markdown()
            << "\n";
  std::cout << "## raw per-sample cost (the instability the paper shows)\n"
            << report::ascii_chart({"cost"}, {costs}) << "\n";

  const double first = costs.front();
  const double best = *std::min_element(costs.begin(), costs.end());
  const double mean_cost = support::mean(costs);
  const double fluctuation = support::mean_abs_delta(costs);

  support::Table table({"metric", "this reproduction", "paper"});
  table.add_row({"samples", std::to_string(result.samples()), "100"});
  table.add_row({"total sampling runtime (s)",
                 support::format_double(result.trace.total_sampling_runtime(), 0),
                 "9.76 h (authors' testbed)"});
  table.add_row({"best-cost reduction vs first sample",
                 report::reduction_percent(best, first), "32.13%"});
  table.add_row({"fraction of cost changes that increase",
                 support::format_percent(support::fraction_increases(costs)),
                 "> 50%"});
  table.add_row({"mean |delta cost| / mean cost",
                 support::format_percent(fluctuation / mean_cost), "18.3%"});
  std::cout << "## instability metrics\n" << table.to_markdown();
  return 0;
}
