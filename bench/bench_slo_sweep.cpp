// SLO sensitivity (extension): the cost-vs-SLO frontier.
//
// Sweeps the end-to-end SLO from tight (just above the fastest possible
// makespan) to loose (4x) and reports each method's validated mean cost.
// The interesting shapes:
//   * every method's cost falls as the SLO loosens (latency headroom is
//     traded for cheaper allocations);
//   * AARC tracks the oracle frontier across the whole range;
//   * MAFF's coupled knob flattens out early — extra headroom it cannot
//     convert into savings is the price of coupling.

#include <iostream>

#include "baselines/oracle.h"
#include "harness.h"

int main() {
  using namespace aarc;

  std::cout << "# Cost vs SLO frontier (extension)\n\n";

  const platform::Executor ex;
  const platform::ConfigGrid grid;
  const platform::Profiler profiler(ex);

  for (const auto& name : workloads::paper_workload_names()) {
    const workloads::Workload w = workloads::make_by_name(name);

    // The fastest possible makespan: everything at the grid maximum.
    const auto base = platform::uniform_config(w.workflow.function_count(),
                                               grid.max_config());
    const double fastest = ex.execute_mean(w.workflow, base).makespan;

    support::Table table({"SLO (s)", "AARC", "MAFF", "oracle"});
    for (double factor : {1.15, 1.5, 2.0, 3.0, 4.0}) {
      const double slo = fastest * factor;

      workloads::Workload variant(w.workflow.clone());
      variant.slo_seconds = slo;

      auto validated = [&](const search::SearchResult& r) -> std::string {
        if (!r.found_feasible) return "infeasible";
        support::Rng rng(4242);
        return support::format_double(
            profiler.profile(variant.workflow, r.best_config, 50, rng).cost.mean, 1);
      };

      const auto aarc = bench::run_method("AARC", variant, ex, grid, {});
      const auto maff = bench::run_method("MAFF", variant, ex, grid, {});
      const auto oracle =
          baselines::oracle_search(variant.workflow, ex, grid, slo);

      table.add_row({support::format_double(slo, 0), validated(aarc), validated(maff),
                     oracle.feasible ? support::format_double(oracle.mean_cost, 1)
                                     : "infeasible"});
    }
    std::cout << "## " << name << " (fastest possible: "
              << support::format_double(fastest, 1) << " s)\n"
              << table.to_markdown() << "\n";
  }
  return 0;
}
