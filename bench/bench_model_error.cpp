// Model-error robustness (extension): schedule on *fitted* models.
//
// Real adopters fit performance models from a handful of noisy measurements
// (workloads/calibrated.h).  This bench measures each paper workload on the
// default 7-point plan, fits per-function AnalyticModels, runs AARC against
// the *fitted* workflow, and then validates the resulting configuration on
// the *true* workflow: how much of the cost saving survives model error,
// and does the configuration still meet the SLO?

#include <iostream>

#include "aarc/scheduler.h"
#include "platform/profiler.h"
#include "support/table.h"
#include "workloads/calibrated.h"
#include "workloads/catalog.h"

int main() {
  using namespace aarc;

  std::cout << "# Scheduling on calibrated (fitted) models (extension)\n\n";

  const platform::Executor ex;
  const platform::ConfigGrid grid;
  const platform::Profiler profiler(ex);
  const core::GraphCentricScheduler scheduler(ex, grid);

  support::Table table({"workload", "fit MSLE (max)", "measurements",
                        "cost (true models)", "cost (fitted models)", "penalty",
                        "meets SLO"});

  for (const auto& name : workloads::paper_workload_names()) {
    const workloads::Workload w = workloads::make_by_name(name);

    // Baseline: AARC on the ground-truth models.
    const auto truth_report = scheduler.schedule(w.workflow, w.slo_seconds);

    // Calibrated: measure + fit, schedule on the fits, validate on truth.
    const auto calibration = workloads::calibrate_workflow(w.workflow, ex);
    const auto fitted_report =
        scheduler.schedule(calibration.workflow, w.slo_seconds);

    double worst_fit = 0.0;
    for (double e : calibration.fit_errors) worst_fit = std::max(worst_fit, e);

    if (!truth_report.result.found_feasible || !fitted_report.result.found_feasible) {
      table.add_row({name, support::format_double(worst_fit, 3),
                     std::to_string(calibration.measurements), "-", "-", "-",
                     "infeasible"});
      continue;
    }

    support::Rng rng(4242);
    const auto truth_val =
        profiler.profile(w.workflow, truth_report.result.best_config, 100, rng);
    support::Rng rng2(4242);
    const auto fitted_val =
        profiler.profile(w.workflow, fitted_report.result.best_config, 100, rng2);
    if (fitted_val.failures > 0) {
      table.add_row({name, support::format_double(worst_fit, 3),
                     std::to_string(calibration.measurements),
                     support::format_double(truth_val.cost.mean, 1), "OOM on truth",
                     "-", "NO"});
      continue;
    }

    table.add_row(
        {name, support::format_double(worst_fit, 3),
         std::to_string(calibration.measurements),
         support::format_double(truth_val.cost.mean, 1),
         support::format_double(fitted_val.cost.mean, 1),
         support::format_percent(fitted_val.cost.mean / truth_val.cost.mean - 1.0, 1),
         fitted_val.makespan.mean <= w.slo_seconds ? "yes" : "NO"});
  }

  std::cout << table.to_markdown();
  std::cout << "\n(penalty = extra validated cost of the configuration found on fitted\n"
               "models, relative to scheduling on the ground-truth models)\n";
  return 0;
}
