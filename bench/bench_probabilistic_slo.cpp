// Probabilistic SLOs (doc/SLO.md): percentile-with-confidence bounds vs the
// paper's mean/point checks, on a noisy platform.
//
// The paper's protocol accepts a configuration when a single noisy probe
// lands under the SLO — which centers the *mean* near the deadline and
// leaves the tail on the wrong side of it.  This campaign runs AARC twice
// per paper workload on a high-noise executor:
//
//   * mean arm: the default bound (mean, confidence 1.0) — bit-identical to
//     every earlier release;
//   * p95 arm:  SloBound{p95, 0.95} — every accept/revert verdict probes
//     min_replicates() times and judges the empirical distribution.
//
// Each arm's accepted configuration is then validated with noisy
// executions, and validated SLO attainment (failure-aware: an OOM run never
// met the deadline) is compared against the configured confidence.
//
// The paper deadlines leave the cost minimum far below the SLO, so both
// arms would trivially attain it; each workload's deadline is first
// *tightened* to the grid-max configuration's noisy p95 times a small
// headroom, making it binding wherever resources buy latency (see
// tightened_slo below).
//
// Headline acceptance (checked, nonzero exit on regression):
//   1. the p95 arm's validated attainment >= its configured confidence on
//      EVERY workload, and
//   2. the mean arm misses p95 attainment on at least one workload — the
//      point estimate is not merely more expensive to fix, it is wrong.
//
// A confidence frontier (p95 at 0.50/0.80/0.95/0.99 on video_analysis)
// maps billed samples against achieved attainment: confidence is bought
// with replicates, linearly in ln(1/beta).
//
// `--smoke` shrinks the campaign to video_analysis and two frontier points
// for CTest.

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "aarc/scheduler.h"
#include "bench_json.h"
#include "harness.h"
#include "platform/profiler.h"
#include "search/slo.h"

using namespace aarc;

namespace {

/// Table II reports ~3% noise; this campaign cranks it to 25% so the mean
/// and the p95 of the makespan distribution visibly disagree.
constexpr double kNoiseSigma = 0.25;
constexpr std::uint64_t kValidationSeed = 4242;

platform::Executor make_noisy_executor() {
  platform::ExecutorOptions opts;
  opts.noise = perf::NoiseModel(kNoiseSigma);
  return platform::Executor(std::make_unique<platform::DecoupledLinearPricing>(),
                            opts);
}

struct ArmResult {
  bool feasible = false;
  std::size_t billed_samples = 0;
  double attainment = 0.0;  ///< validated fraction of runs within the SLO
  double mean_makespan = 0.0;
  double mean_cost = 0.0;
};

ArmResult run_arm(const workloads::Workload& w, const search::SloBound& bound,
                  std::size_t validation_runs) {
  const platform::ConfigGrid grid;
  const platform::Executor ex = make_noisy_executor();
  core::SchedulerOptions opts;
  opts.configurator.slo = bound;
  const core::GraphCentricScheduler scheduler(ex, grid, opts);
  const auto result = scheduler.schedule(w.workflow, w.slo_seconds).result;

  ArmResult arm;
  arm.feasible = result.found_feasible;
  arm.billed_samples = result.samples();
  if (!arm.feasible) return arm;  // attainment 0: nothing deployable

  const platform::Profiler profiler(ex);
  support::Rng rng(kValidationSeed);
  const platform::ProfileReport report =
      profiler.profile(w.workflow, result.best_config, validation_runs, rng);
  arm.attainment = 1.0 - report.slo_violation_rate(w.slo_seconds);
  arm.mean_makespan = report.makespan.mean;
  arm.mean_cost = report.cost.mean;
  return arm;
}

/// Multiplied onto the grid-max configuration's noisy p95 to form the bench
/// deadline: enough headroom that a percentile bound is satisfiable at all,
/// tight enough that the deadline binds wherever resources actually buy
/// latency (video_analysis; the chatbot's critical path barely responds).
constexpr double kSloHeadroom = 1.32;

/// The paper deadlines leave the cost minimum far below the SLO — no amount
/// of noise makes either arm violate there.  The interesting regime is a
/// *binding* deadline: derive it from the fastest (grid-max) configuration's
/// noisy p95, so the point-check search is pushed to the boundary while the
/// p95 bound must hold the tail under it.
double tightened_slo(const workloads::Workload& w) {
  const platform::Executor ex = make_noisy_executor();
  const platform::Profiler profiler(ex);
  const platform::WorkflowConfig grid_max = platform::uniform_config(
      w.workflow.function_count(), platform::ConfigGrid().max_config());
  support::Rng rng(kValidationSeed);
  const platform::ProfileReport report =
      profiler.profile(w.workflow, grid_max, 200, rng);
  search::LatencyDistribution dist;
  for (const double m : report.makespans) dist.add(m);
  return dist.quantile(0.95) * kSloHeadroom;
}

io::Json arm_json(const ArmResult& arm) {
  io::JsonObject o;
  o["feasible"] = arm.feasible;
  o["billed_samples"] = arm.billed_samples;
  o["attainment"] = arm.attainment;
  o["mean_makespan"] = arm.mean_makespan;
  o["mean_cost"] = arm.mean_cost;
  return io::Json(std::move(o));
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;

  std::cout << "# Probabilistic SLOs: p95-with-confidence vs the mean point check\n\n"
            << "Executor noise sigma " << kNoiseSigma
            << "; attainment validated over noisy runs (failures count as\n"
               "violations).  See doc/SLO.md for the verdict semantics.\n\n";

  // video_analysis is the workload where resources genuinely buy latency, so
  // it carries the smoke gate; the full run covers all paper workloads.
  const std::vector<std::string> workload_names =
      smoke ? std::vector<std::string>{"video_analysis"}
            : workloads::paper_workload_names();
  const std::size_t validation_runs = smoke ? 60 : 100;

  search::SloBound p95_bound;
  p95_bound.metric = search::SloMetric::P95;
  p95_bound.confidence = 0.95;
  const search::SloBound mean_bound;  // legacy default

  bench::BenchJson out("probabilistic_slo");
  out.set("smoke", smoke);
  out.set("noise_sigma", kNoiseSigma);
  out.set("validation_runs", validation_runs);
  out.set("p95_replicates_per_verdict", p95_bound.min_replicates());

  support::Table table({"workload", "SLO (s)", "arm", "feasible", "billed",
                        "validated attainment", "mean makespan"});
  io::JsonArray rows;
  bool p95_meets_everywhere = true;
  bool mean_misses_somewhere = false;
  for (const auto& name : workload_names) {
    workloads::Workload w = workloads::make_by_name(name);
    const double default_slo = w.slo_seconds;
    w.slo_seconds = tightened_slo(w);
    const ArmResult mean_arm = run_arm(w, mean_bound, validation_runs);
    const ArmResult p95_arm = run_arm(w, p95_bound, validation_runs);

    p95_meets_everywhere = p95_meets_everywhere && p95_arm.feasible &&
                           p95_arm.attainment >= p95_bound.confidence;
    mean_misses_somewhere =
        mean_misses_somewhere || !mean_arm.feasible ||
        mean_arm.attainment < p95_bound.confidence;

    const auto add_arm_row = [&](const char* label, const ArmResult& arm) {
      table.add_row({name, support::format_double(w.slo_seconds, 1), label,
                     arm.feasible ? "yes" : "no", std::to_string(arm.billed_samples),
                     support::format_percent(arm.attainment, 1),
                     support::format_double(arm.mean_makespan, 1)});
    };
    add_arm_row("mean", mean_arm);
    add_arm_row("p95@0.95", p95_arm);
    io::JsonObject row;
    row["workload"] = name;
    row["default_slo_seconds"] = default_slo;
    row["slo_seconds"] = w.slo_seconds;
    row["mean"] = arm_json(mean_arm);
    row["p95"] = arm_json(p95_arm);
    rows.emplace_back(std::move(row));
  }
  out.set("workloads", io::Json(std::move(rows)));
  std::cout << table.to_markdown() << "\n";

  // Confidence frontier: attainment is bought with billed replicates.
  std::cout << "## Frontier: billed samples vs attainment (video_analysis, p95)\n\n";
  const std::vector<double> confidences =
      smoke ? std::vector<double>{0.80, 0.95}
            : std::vector<double>{0.50, 0.80, 0.95, 0.99};
  workloads::Workload frontier_workload = workloads::make_by_name("video_analysis");
  frontier_workload.slo_seconds = tightened_slo(frontier_workload);
  support::Table frontier_table(
      {"confidence", "replicates/verdict", "billed", "validated attainment"});
  io::JsonArray frontier_rows;
  for (const double confidence : confidences) {
    search::SloBound bound;
    bound.metric = search::SloMetric::P95;
    bound.confidence = confidence;
    const ArmResult arm = run_arm(frontier_workload, bound, validation_runs);
    frontier_table.add_row({support::format_double(confidence, 2),
                            std::to_string(bound.min_replicates()),
                            std::to_string(arm.billed_samples),
                            support::format_percent(arm.attainment, 1)});
    io::JsonObject row;
    row["confidence"] = confidence;
    row["replicates_per_verdict"] = bound.min_replicates();
    row["billed_samples"] = arm.billed_samples;
    row["attainment"] = arm.attainment;
    frontier_rows.emplace_back(std::move(row));
  }
  out.set("frontier", io::Json(std::move(frontier_rows)));
  std::cout << frontier_table.to_markdown() << "\n";

  const bool pass = p95_meets_everywhere && mean_misses_somewhere;
  std::cout << "\nprobabilistic SLO acceptance: p95 arm >= "
            << support::format_percent(p95_bound.confidence, 0)
            << " attainment on every workload ("
            << (p95_meets_everywhere ? "yes" : "NO") << "), mean arm misses it "
            << "on at least one (" << (mean_misses_somewhere ? "yes" : "NO")
            << ") : " << (pass ? "PASS" : "FAIL") << "\n";
  out.set("acceptance_pass", pass);
  out.write();
  std::cout << "wrote " << out.path() << "\n";
  return pass ? 0 : 1;
}
