// Table II — "Average Runtime and Cost Comparison".
//
// Executes each method's final configuration 100 times (the paper's
// protocol) and reports mean +/- std runtime plus total cost, per workload.
// Paper shapes to look for:
//   * every method's mean runtime is below the SLO;
//   * AARC is the cheapest on all three workflows, with reductions vs
//     BO / MAFF of 44.0%/31.2% (Chatbot), 49.6%/61.7% (ML Pipeline) and
//     34.9%/45.7% (Video Analysis).

#include <iostream>

#include "harness.h"

int main() {
  using namespace aarc;

  std::cout << "# Table II — 100-run validation of the final configurations\n\n";

  const platform::Executor ex;
  const platform::ConfigGrid grid;

  std::vector<report::ValidationRun> rows;
  support::Table reductions({"workload", "AARC cost vs BO", "AARC cost vs MAFF",
                             "paper (BO / MAFF)"});
  const std::vector<std::string> paper{"-44.0% / -31.2%", "-49.6% / -61.7%",
                                       "-34.9% / -45.7%"};

  const auto names = workloads::paper_workload_names();
  for (std::size_t i = 0; i < names.size(); ++i) {
    const workloads::Workload w = workloads::make_by_name(names[i]);
    const auto results = bench::run_all_methods(w, ex, grid);
    double aarc_cost = 0.0;
    double bo_cost = 0.0;
    double maff_cost = 0.0;
    for (const auto& mr : results) {
      report::ValidationRun v;
      v.method = mr.method;
      v.workload = names[i];
      v.slo_seconds = w.slo_seconds;
      v.profile = mr.validation;
      rows.push_back(std::move(v));
      if (mr.method == "AARC") aarc_cost = mr.validation.cost.sum;
      if (mr.method == "BO") bo_cost = mr.validation.cost.sum;
      if (mr.method == "MAFF") maff_cost = mr.validation.cost.sum;
    }
    reductions.add_row({names[i],
                        "-" + report::reduction_percent(aarc_cost, bo_cost),
                        "-" + report::reduction_percent(aarc_cost, maff_cost),
                        paper[i]});
  }

  std::cout << report::validation_table(rows).to_markdown() << "\n";
  std::cout << "## cost reductions achieved by AARC\n" << reductions.to_markdown();
  std::cout << "\n(cost column = sum over the 100 validation runs, in the paper's\n"
               "cost units: t * (0.512 * vCPU + 0.001 * MB); absolute magnitudes\n"
               "differ from the paper's testbed, shapes are the comparison target)\n";
  return 0;
}
