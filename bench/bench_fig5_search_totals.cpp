// Fig. 5 — "Overall Sample Cost and Runtime Comparison".
//
// Total sampling runtime (sum of execution makespans over all probes) and
// total sampling cost for AARC / BO / MAFF on the three workflows.  Paper
// shapes to look for:
//   * AARC beats BO on every workload (up to 85.8% runtime / 90.1% cost on
//     Video Analysis);
//   * MAFF probes few configurations (its coupled knob shrinks the space),
//     so it can undercut AARC's sampling bill — on ML Pipeline the paper
//     reports MAFF needing only ~15 samples by hitting a local optimum.

#include <iostream>

#include "harness.h"

int main() {
  using namespace aarc;
  using bench::run_all_methods;

  std::cout << "# Fig. 5 — total sampling runtime and cost of the search\n\n";

  const platform::Executor ex;
  const platform::ConfigGrid grid;

  std::vector<report::MethodRun> rows;
  std::vector<bench::MethodResult> per_workload[3];
  const auto names = workloads::paper_workload_names();
  for (std::size_t i = 0; i < names.size(); ++i) {
    const workloads::Workload w = workloads::make_by_name(names[i]);
    per_workload[i] = run_all_methods(w, ex, grid);
    for (const auto& mr : per_workload[i]) {
      rows.push_back({mr.method, names[i], mr.search});
    }
  }
  std::cout << report::search_totals_table(rows).to_markdown() << "\n";

  std::cout << "## AARC reductions vs baselines\n";
  support::Table table({"workload", "vs", "sampling runtime", "sampling cost"});
  for (std::size_t i = 0; i < names.size(); ++i) {
    const auto& aarc = per_workload[i][0].search.trace;
    for (std::size_t b = 1; b < per_workload[i].size(); ++b) {
      const auto& other = per_workload[i][b].search.trace;
      table.add_row({names[i], per_workload[i][b].method,
                     report::reduction_percent(aarc.total_sampling_runtime(),
                                               other.total_sampling_runtime()),
                     report::reduction_percent(aarc.total_sampling_cost(),
                                               other.total_sampling_cost())});
    }
  }
  std::cout << table.to_markdown();
  std::cout << "\npaper anchors: Video Analysis vs BO: -85.8% runtime / -90.1% cost;\n"
               "Chatbot vs MAFF: -31.9% runtime / -13.4% cost (AARC 64 vs MAFF 61 "
               "samples);\nML Pipeline: MAFF exits early (~15 samples, local optimum) "
               "and undercuts AARC's sampling bill there.\n";
  return 0;
}
