// Ablations of AARC's design choices (DESIGN.md §5):
//   1. priority ordering: cost-keyed max-heap vs FIFO;
//   2. step policy: proportional-headroom vs fixed-units initial steps;
//   3. accept-side step halving: on (geometric refinement) vs off (paper's
//      narrowest reading: only reverts shrink the step);
//   4. FUNC_TRIAL backoff budget;
//   5. robustness: execution-noise level and cold-start injection.
//
// Each variant reports samples spent, sampling runtime, and the final
// configuration's validated cost — so the table shows what each mechanism
// buys.

#include <iostream>

#include "aarc/scheduler.h"
#include "platform/profiler.h"
#include "support/table.h"
#include "workloads/catalog.h"

namespace {

using namespace aarc;

struct VariantOutcome {
  std::size_t samples = 0;
  double sampling_runtime = 0.0;
  double validated_cost = 0.0;
  bool feasible = false;
};

VariantOutcome run_variant(const workloads::Workload& w, const platform::Executor& ex,
                           const core::SchedulerOptions& opts) {
  const core::GraphCentricScheduler scheduler(ex, platform::ConfigGrid{}, opts);
  const auto report = scheduler.schedule(w.workflow, w.slo_seconds);
  VariantOutcome out;
  out.samples = report.result.samples();
  out.sampling_runtime = report.result.trace.total_sampling_runtime();
  out.feasible = report.result.found_feasible;
  if (out.feasible) {
    support::Rng rng(4242);
    const platform::Profiler profiler(ex);
    out.validated_cost =
        profiler.profile(w.workflow, report.result.best_config, 100, rng).cost.mean;
  }
  return out;
}

void emit(support::Table& table, const std::string& name, const workloads::Workload& w,
          const platform::Executor& ex, const core::SchedulerOptions& opts) {
  const auto out = run_variant(w, ex, opts);
  table.add_row({name, std::to_string(out.samples),
                 support::format_double(out.sampling_runtime, 0),
                 out.feasible ? support::format_double(out.validated_cost, 1) : "infeasible"});
}

}  // namespace

int main() {
  std::cout << "# AARC ablations (per-workload; validated cost = mean of 100 runs)\n\n";

  const platform::Executor default_ex;

  for (const auto& name : workloads::paper_workload_names()) {
    const workloads::Workload w = workloads::make_by_name(name);
    support::Table table({"variant", "samples", "sampling runtime (s)",
                          "validated mean cost"});

    core::SchedulerOptions base;
    emit(table, "default (cost-priority, proportional, accept-halving)", w, default_ex,
         base);

    core::SchedulerOptions fifo = base;
    fifo.configurator.fifo_priority = true;
    emit(table, "FIFO queue (no cost priorities)", w, default_ex, fifo);

    core::SchedulerOptions fixed = base;
    fixed.configurator.step_policy = core::StepPolicy::FixedUnits;
    fixed.configurator.fixed_step_units = 32;
    emit(table, "fixed 32-unit initial steps", w, default_ex, fixed);

    core::SchedulerOptions no_accept_halving = base;
    no_accept_halving.configurator.halve_step_on_accept = false;
    emit(table, "no accept-side halving (reverts only)", w, default_ex,
         no_accept_halving);

    core::SchedulerOptions tight_trials = base;
    tight_trials.configurator.func_trial = 2;
    emit(table, "FUNC_TRIAL = 2", w, default_ex, tight_trials);

    core::SchedulerOptions many_trials = base;
    many_trials.configurator.func_trial = 10;
    emit(table, "FUNC_TRIAL = 10", w, default_ex, many_trials);

    core::SchedulerOptions polish = base;
    polish.configurator.polish_allocate = true;
    polish.configurator.max_trail = 140;  // headroom for the extra round
    emit(table, "+ allocate-direction polish round", w, default_ex, polish);

    // Robustness: 10% execution noise.
    platform::ExecutorOptions noisy_opts;
    noisy_opts.noise = perf::NoiseModel(0.10);
    const platform::Executor noisy_ex(
        std::make_unique<platform::DecoupledLinearPricing>(), noisy_opts);
    emit(table, "10% execution noise", w, noisy_ex, base);

    // Robustness: cold starts on 10% of invocations (0.5-2 s penalty).
    platform::ExecutorOptions cold_opts;
    cold_opts.cold_start = platform::ColdStartModel(0.10, 0.5, 2.0);
    const platform::Executor cold_ex(
        std::make_unique<platform::DecoupledLinearPricing>(), cold_opts);
    emit(table, "cold starts (p=0.1, 0.5-2 s)", w, cold_ex, base);

    std::cout << "## " << name << "\n" << table.to_markdown() << "\n";
  }
  return 0;
}
