// Fig. 2 — "Runtime and Cost with Decoupled Resources" (motivation).
//
// Sweeps decoupled (vCPU, memory) grids for the three workflows and prints
// runtime and cost surfaces.  The paper's observations to look for:
//   * Chatbot / ML Pipeline runtime is flat in memory (compute-bound);
//   * Chatbot's cost minimum is at ~1 vCPU / 512 MB;
//   * ML Pipeline's cost minimum is at ~4 vCPU / 512 MB — an 87.5% memory
//     cut versus the coupled 4 vCPU / 4096 MB point;
//   * Video Analysis's cost minimum is at ~8 vCPU / 5120 MB.

#include <iostream>

#include "platform/executor.h"
#include "report/comparison.h"
#include "support/table.h"
#include "workloads/catalog.h"

namespace {

using namespace aarc;

void sweep(const workloads::Workload& w, const std::vector<double>& cpus,
           const std::vector<double>& mems) {
  platform::ExecutorOptions opts;
  opts.noise = perf::NoiseModel(0.0);  // mean surfaces, as in the paper's sweep
  const platform::Executor ex(std::make_unique<platform::DecoupledLinearPricing>(), opts);

  std::vector<std::string> header{"vCPU \\ MB"};
  for (double m : mems) header.push_back(support::format_double(m, 0));
  support::Table runtime_table(header);
  support::Table cost_table(header);

  double best_cost = 0.0;
  double best_cpu = 0.0;
  double best_mem = 0.0;
  bool first = true;
  for (double c : cpus) {
    std::vector<std::string> rrow{support::format_double(c, 0)};
    std::vector<std::string> crow{support::format_double(c, 0)};
    for (double m : mems) {
      const auto cfg =
          platform::uniform_config(w.workflow.function_count(), {c, m});
      const auto res = ex.execute_mean(w.workflow, cfg);
      if (res.failed) {
        rrow.emplace_back("OOM");
        crow.emplace_back("OOM");
        continue;
      }
      rrow.push_back(support::format_double(res.makespan, 1));
      crow.push_back(support::format_double(res.total_cost, 0));
      if (first || res.total_cost < best_cost) {
        best_cost = res.total_cost;
        best_cpu = c;
        best_mem = m;
        first = false;
      }
    }
    runtime_table.add_row(std::move(rrow));
    cost_table.add_row(std::move(crow));
  }

  std::cout << "### " << w.workflow.name() << " — runtime (s)\n"
            << runtime_table.to_markdown() << "\n";
  std::cout << "### " << w.workflow.name() << " — cost\n"
            << cost_table.to_markdown() << "\n";
  std::cout << "cost minimum on this sweep grid: " << support::format_double(best_cpu, 0)
            << " vCPU / " << support::format_double(best_mem, 0) << " MB (cost "
            << support::format_double(best_cost, 0) << ")\n\n";
}

}  // namespace

int main() {
  std::cout << "# Fig. 2 — runtime & cost with decoupled resources\n\n";

  const std::vector<double> cpus{1, 2, 4, 6, 8, 10};
  const std::vector<double> small_mems{256, 512, 1024, 2048, 4096};
  const std::vector<double> big_mems{2048, 3072, 4096, 5120, 7168, 10240};

  sweep(workloads::make_by_name("chatbot"), cpus, small_mems);
  sweep(workloads::make_by_name("ml_pipeline"), cpus, small_mems);
  sweep(workloads::make_by_name("video_analysis"), cpus, big_mems);

  // The paper's headline motivation numbers.
  {
    const auto w = workloads::make_by_name("ml_pipeline");
    platform::ExecutorOptions opts;
    opts.noise = perf::NoiseModel(0.0);
    const platform::Executor ex(std::make_unique<platform::DecoupledLinearPricing>(),
                                opts);
    const auto n = w.workflow.function_count();
    const auto coupled = ex.execute_mean(w.workflow,
                                         platform::uniform_config(n, {4.0, 4096.0}));
    const auto decoupled = ex.execute_mean(w.workflow,
                                           platform::uniform_config(n, {4.0, 512.0}));
    std::cout << "ML Pipeline, coupled 4 vCPU/4096 MB -> decoupled 4 vCPU/512 MB:\n";
    std::cout << "  memory reduction: 87.5% (by construction of the grid point)\n";
    std::cout << "  runtime: " << support::format_double(coupled.makespan, 1) << " s -> "
              << support::format_double(decoupled.makespan, 1) << " s (unchanged)\n";
    std::cout << "  cost reduction: "
              << report::reduction_percent(decoupled.total_cost, coupled.total_cost)
              << " (paper motivates 'substantially decreasing the overall cost')\n";
  }
  return 0;
}
