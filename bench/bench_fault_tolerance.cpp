// Fault tolerance (robustness extension): search and serving under injected
// platform faults.
//
// Sweeps the transient-crash rate against the resilience stack (invocation
// retries + evaluator probe re-sampling + configurator transient re-probes)
// switched off (the paper's protocol, which assumes a well-behaved platform)
// and on.  Two experiments:
//
//   1. Search: AARC schedules each paper workload under a faulty executor.
//      Reported per arm: found-feasible rate over seeds and the mean clean
//      (fault-free) cost of the final configuration, charging infeasible
//      runs the over-provisioned base configuration cost — that is what a
//      deployment falls back to when the search fails.
//   2. Serving: a Poisson request stream through the DES with the same fault
//      rates, with and without retries.  Reported: failure-aware SLO
//      violation rate, request failure rate, retries, timeouts, cost.
//
// The headline property (checked, nonzero exit on regression): at a 5%
// crash rate the resilient arm finds feasible configurations strictly more
// often AND at strictly lower effective cost than the paper protocol.
//
// `--smoke` shrinks the sweep to seconds for CTest.

#include <cstring>
#include <iostream>
#include <vector>

#include "bench_json.h"
#include "harness.h"
#include "serving/simulator.h"

using namespace aarc;

namespace {

platform::Executor make_executor(double crash_rate, bool resilient) {
  platform::ExecutorOptions opts;
  platform::FaultRates rates;
  rates.transient_crash = crash_rate;
  opts.faults = platform::FaultModel{rates};
  if (resilient) {
    opts.retry.max_attempts = 3;
    opts.retry.backoff_initial_seconds = 0.1;  // backoff inflates wall time only
  }
  return platform::Executor(std::make_unique<platform::DecoupledLinearPricing>(), opts);
}

core::SchedulerOptions scheduler_options(bool resilient, std::uint64_t seed) {
  core::SchedulerOptions opts;
  opts.seed = seed;
  if (resilient) {
    opts.probe_resamples = 2;
  } else {
    // Paper protocol: one execution per probe, every error reverts.
    opts.probe_resamples = 0;
    opts.configurator.transient_probe_retries = 0;
  }
  return opts;
}

struct ArmSummary {
  std::size_t runs = 0;
  std::size_t feasible = 0;
  double total_cost = 0.0;  ///< clean cost; base config charged when infeasible

  double feasible_rate() const { return static_cast<double>(feasible) / runs; }
  double mean_cost() const { return total_cost / runs; }
};

ArmSummary run_search_arm(const std::vector<std::string>& workload_names,
                          const std::vector<std::uint64_t>& seeds, double crash_rate,
                          bool resilient) {
  const platform::ConfigGrid grid;
  const platform::Executor clean;  // cost accounting is fault-free
  ArmSummary summary;
  for (const auto& name : workload_names) {
    const workloads::Workload w = workloads::make_by_name(name);
    const auto base =
        platform::uniform_config(w.workflow.function_count(), grid.max_config());
    const double base_cost = clean.execute_mean(w.workflow, base).total_cost;
    for (const auto seed : seeds) {
      const platform::Executor ex = make_executor(crash_rate, resilient);
      const core::GraphCentricScheduler scheduler(ex, grid,
                                                  scheduler_options(resilient, seed));
      const auto result = scheduler.schedule(w.workflow, w.slo_seconds).result;
      ++summary.runs;
      if (result.found_feasible) {
        ++summary.feasible;
        summary.total_cost +=
            clean.execute_mean(w.workflow, result.best_config).total_cost;
      } else {
        summary.total_cost += base_cost;  // deployment falls back to base
      }
    }
  }
  return summary;
}

void serving_sweep(const std::vector<double>& rates, std::size_t request_count,
                   bench::BenchJson& out) {
  const workloads::Workload w = workloads::make_by_name("chatbot");
  const platform::ConfigGrid grid;
  const platform::Executor clean;
  const core::GraphCentricScheduler scheduler(clean, grid);
  const auto schedule = scheduler.schedule(w.workflow, w.slo_seconds);
  if (!schedule.result.found_feasible) {
    std::cout << "(serving sweep skipped: no feasible clean config)\n";
    return;
  }
  const auto stream = serving::poisson_stream(request_count, 0.02, 1.0, 1.0,
                                              schedule.result.best_config, 77);
  const platform::DecoupledLinearPricing pricing;

  support::Table table({"crash rate", "retries", "SLO viol.", "p95 (s)", "p99 (s)",
                        "failure rate", "retried", "timeouts", "lost", "cost"});
  io::JsonArray rows;
  for (const double rate : rates) {
    for (const bool resilient : {false, true}) {
      serving::ServingOptions sopts;
      platform::FaultRates fr;
      fr.transient_crash = rate;
      sopts.faults = platform::FaultModel{fr};
      if (resilient) {
        sopts.retry.max_attempts = 3;
        sopts.retry.backoff_initial_seconds = 0.1;
      }
      const serving::ServingSimulator sim(w.workflow, pricing, sopts);
      const auto report = sim.serve(stream);
      table.add_row({support::format_percent(rate, 0), resilient ? "on" : "off",
                     support::format_percent(report.slo_violation_rate(w.slo_seconds), 1),
                     support::format_double(report.latency_p95(), 1),
                     support::format_double(report.latency_p99(), 1),
                     support::format_percent(report.request_failure_rate(), 1),
                     std::to_string(report.retries), std::to_string(report.timeouts),
                     std::to_string(report.failed_after_retries),
                     support::format_double(report.total_cost, 0)});
      io::JsonObject row;
      row["crash_rate"] = rate;
      row["retries_enabled"] = resilient;
      row["slo_violation_rate"] = report.slo_violation_rate(w.slo_seconds);
      row["latency_p95"] = report.latency_p95();
      row["latency_p99"] = report.latency_p99();
      row["request_failure_rate"] = report.request_failure_rate();
      row["retries"] = report.retries;
      row["timeouts"] = report.timeouts;
      row["failed_after_retries"] = report.failed_after_retries;
      row["total_cost"] = report.total_cost;
      rows.emplace_back(std::move(row));
    }
  }
  out.set("serving", io::Json(std::move(rows)));
  std::cout << table.to_markdown();
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;

  std::cout << "# Fault tolerance: search and serving under injected faults\n\n";

  const std::vector<std::string> workload_names =
      smoke ? std::vector<std::string>{"chatbot"} : workloads::paper_workload_names();
  const std::vector<std::uint64_t> seeds =
      smoke ? std::vector<std::uint64_t>{2025, 2026}
            : std::vector<std::uint64_t>{2025, 2026, 2027, 2028, 2029};
  const std::vector<double> rates =
      smoke ? std::vector<double>{0.0, 0.05} : std::vector<double>{0.0, 0.02, 0.05, 0.10};

  std::cout << "## Search: found-feasible rate and effective cost\n\n"
            << "Infeasible runs are charged the base-configuration cost (the\n"
            << "fallback a deployment actually pays).\n\n";
  support::Table table({"crash rate", "retries", "feasible", "mean cost"});
  bench::BenchJson out("fault_tolerance");
  io::JsonArray search_rows;
  ArmSummary at5_off, at5_on;
  for (const double rate : rates) {
    for (const bool resilient : {false, true}) {
      const ArmSummary s = run_search_arm(workload_names, seeds, rate, resilient);
      if (rate == 0.05) (resilient ? at5_on : at5_off) = s;
      table.add_row({support::format_percent(rate, 0), resilient ? "on" : "off",
                     support::format_percent(s.feasible_rate(), 0),
                     support::format_double(s.mean_cost(), 1)});
      io::JsonObject row;
      row["crash_rate"] = rate;
      row["resilient"] = resilient;
      row["runs"] = s.runs;
      row["feasible_rate"] = s.feasible_rate();
      row["mean_cost"] = s.mean_cost();
      search_rows.emplace_back(std::move(row));
    }
  }
  out.set("smoke", smoke);
  out.set("search", io::Json(std::move(search_rows)));
  std::cout << table.to_markdown() << "\n";

  std::cout << "## Serving: request stream under faults (chatbot)\n\n";
  serving_sweep(rates, smoke ? 60 : 200, out);

  // Headline acceptance property at the 5% tier.
  bool pass = true;
  if (at5_off.runs > 0 && at5_on.runs > 0) {
    const bool better_feasibility = at5_on.feasible_rate() > at5_off.feasible_rate();
    const bool better_cost = at5_on.mean_cost() < at5_off.mean_cost();
    pass = better_feasibility && better_cost;
    std::cout << "\nacceptance at 5% crash rate: feasible "
              << support::format_percent(at5_off.feasible_rate(), 0) << " -> "
              << support::format_percent(at5_on.feasible_rate(), 0) << ", cost "
              << support::format_double(at5_off.mean_cost(), 1) << " -> "
              << support::format_double(at5_on.mean_cost(), 1) << " : "
              << (pass ? "PASS" : "FAIL") << "\n";
  }
  out.set("acceptance_pass", pass);
  out.write();
  std::cout << "wrote " << out.path() << "\n";
  return pass ? 0 : 1;
}
