// Machine-readable bench results.
//
// Every bench binary prints markdown tables for humans; campaigns that feed
// CI gates or notebooks also mirror their headline numbers into a
// `BENCH_<name>.json` file in the working directory.  One flat JSON object
// per bench, written through io::Json so the output round-trips through the
// same parser the rest of the platform uses.
#pragma once

#include <string>
#include <utility>

#include "io/json.h"
#include "io/workflow_io.h"

namespace aarc::bench {

/// Accumulates one bench run's results and writes `BENCH_<name>.json`.
class BenchJson {
 public:
  explicit BenchJson(std::string name) : name_(std::move(name)) {}

  /// Top-level field; overwrites an existing key of the same name.
  void set(const std::string& key, io::Json value) {
    root_[key] = std::move(value);
  }

  std::string path() const { return "BENCH_" + name_ + ".json"; }

  /// Serialize (2-space indent, trailing newline) to path().
  void write() const {
    io::write_text_file(path(), io::Json(root_).dump(2) + "\n");
  }

 private:
  std::string name_;
  io::JsonObject root_;
};

}  // namespace aarc::bench
