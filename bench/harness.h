// Shared experiment harness for the bench binaries: runs the three search
// methods (AARC / BO / MAFF) on a workload with the paper's Section IV-A
// setup and returns their results plus Table-II-style validations.
#pragma once

#include <string>
#include <vector>

#include "aarc/scheduler.h"
#include "baselines/bo/bo_optimizer.h"
#include "baselines/maff/maff.h"
#include "platform/profiler.h"
#include "report/comparison.h"
#include "workloads/catalog.h"

namespace aarc::bench {

struct MethodResult {
  std::string method;
  search::SearchResult search;
  platform::ProfileReport validation;  ///< 100 noisy runs of the final config
};

struct ExperimentSeeds {
  std::uint64_t aarc = 2025;
  std::uint64_t bo = 3101;
  std::uint64_t maff = 3202;
  std::uint64_t validation = 4242;
};

/// Evaluation-engine knobs shared by every method in a sweep.  The defaults
/// reproduce the serial, cache-less setup of the original benches; the
/// determinism guarantee makes `threads` a pure wall-clock knob.
struct HarnessOptions {
  std::size_t threads = 1;        ///< evaluator worker threads
  bool probe_cache = false;       ///< memoize repeated configurations
  std::size_t bo_batch_size = 1;  ///< BO acquisition probes per round
};

/// Run one method by name ("AARC", "BO", "MAFF") at the given input scale.
inline search::SearchResult run_method(const std::string& method,
                                       const workloads::Workload& w,
                                       const platform::Executor& executor,
                                       const platform::ConfigGrid& grid,
                                       const ExperimentSeeds& seeds,
                                       double input_scale = 1.0,
                                       const HarnessOptions& harness = {}) {
  search::EvaluatorOptions eval_opts;
  eval_opts.threads = harness.threads;
  eval_opts.probe_cache = harness.probe_cache;
  if (method == "AARC") {
    core::SchedulerOptions opts;
    opts.seed = seeds.aarc;
    opts.evaluator_threads = harness.threads;
    opts.probe_cache = harness.probe_cache;
    const core::GraphCentricScheduler scheduler(executor, grid, opts);
    return scheduler.schedule(w.workflow, w.slo_seconds, input_scale).result;
  }
  if (method == "BO") {
    search::Evaluator ev(w.workflow, executor, w.slo_seconds, input_scale, seeds.bo,
                         eval_opts);
    baselines::BoOptions opts;
    opts.seed = seeds.bo;
    opts.batch_size = harness.bo_batch_size;
    return baselines::bayesian_optimization(ev, grid, opts);
  }
  search::Evaluator ev(w.workflow, executor, w.slo_seconds, input_scale, seeds.maff,
                       eval_opts);
  return baselines::maff_gradient_descent(ev, grid);
}

/// Run all three methods and validate each final configuration with the
/// paper's protocol (100 noisy executions).
inline std::vector<MethodResult> run_all_methods(const workloads::Workload& w,
                                                 const platform::Executor& executor,
                                                 const platform::ConfigGrid& grid,
                                                 const ExperimentSeeds& seeds = {},
                                                 double input_scale = 1.0,
                                                 const HarnessOptions& harness = {}) {
  std::vector<MethodResult> out;
  const platform::Profiler profiler(executor);
  for (const std::string& method : {"AARC", "BO", "MAFF"}) {
    MethodResult mr;
    mr.method = method;
    mr.search = run_method(method, w, executor, grid, seeds, input_scale, harness);
    if (mr.search.found_feasible) {
      support::Rng rng(seeds.validation);
      mr.validation =
          profiler.profile(w.workflow, mr.search.best_config, 100, rng, input_scale);
    }
    out.push_back(std::move(mr));
  }
  return out;
}

}  // namespace aarc::bench
