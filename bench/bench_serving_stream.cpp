// Serving-stream study (extension of Fig. 8 / §IV-D to a served system).
//
// A Poisson stream of Video Analysis requests with mixed input sizes is
// served end-to-end on the discrete-event serving simulator (warm container
// reuse, cold starts, per-function concurrency).  Three serving policies:
//   * AARC + input-aware engine — per-class configurations, dispatch by
//     input features;
//   * AARC fixed — one middle-tuned AARC configuration for every request;
//   * MAFF fixed — one middle-tuned coupled configuration.
// Reported: latency distribution, SLO violations, cost, cold-start share.

#include <functional>
#include <iostream>

#include "harness.h"
#include "inputaware/engine.h"
#include "serving/simulator.h"

int main() {
  using namespace aarc;

  std::cout << "# Serving a mixed request stream (extension)\n\n";

  workloads::Workload w = workloads::make_by_name("video_analysis");
  // Provision classes at their upper scale bound (continuous stream).
  w.input_classes = {{workloads::InputClass::Light, 0.5},
                     {workloads::InputClass::Middle, 1.5},
                     {workloads::InputClass::Heavy, 1.8}};
  const platform::Executor ex;
  const platform::ConfigGrid grid;

  // Policy configurations.
  inputaware::InputAwareEngine engine(w, ex, grid);
  engine.build();
  const auto middle_config =
      engine.configuration(workloads::InputClass::Middle).report.result.best_config;
  const auto maff = bench::run_method("MAFF", w, ex, grid, {});

  // One shared arrival pattern (times + scales), configs assigned per policy.
  const std::size_t kRequests = 60;
  const double kRate = 1.0 / 120.0;  // one request every ~2 minutes
  auto base_stream = serving::poisson_stream(kRequests, kRate, 0.1, 1.8,
                                             middle_config, 77);

  const platform::DecoupledLinearPricing pricing;
  serving::ServingOptions sopts;
  sopts.keep_alive_seconds = 600.0;
  sopts.cold_start_min_seconds = 0.5;
  sopts.cold_start_max_seconds = 2.0;
  const serving::ServingSimulator sim(w.workflow, pricing, sopts);

  const inputaware::ReferenceInput ref;
  auto serve_policy = [&](const std::string& name,
                          const std::function<platform::WorkflowConfig(double)>& pick) {
    std::vector<serving::Request> stream = base_stream;
    for (auto& r : stream) r.config = pick(r.input_scale);
    const auto report = sim.serve(stream);
    return std::pair<std::string, serving::ServingReport>(name, report);
  };

  std::vector<std::pair<std::string, serving::ServingReport>> results;
  results.push_back(serve_policy("engine (per-class AARC)", [&](double scale) {
    inputaware::InputDescriptor in = ref.descriptor;
    in.size_mb *= scale;
    in.bitrate_kbps *= scale;
    in.duration_seconds *= scale;
    return engine.dispatch(in).report.result.best_config;
  }));
  results.push_back(serve_policy("AARC fixed (middle)",
                                 [&](double) { return middle_config; }));
  results.push_back(serve_policy("MAFF fixed (middle)",
                                 [&](double) { return maff.best_config; }));

  support::Table table({"policy", "p50 latency (s)", "p95 latency (s)",
                        "mean latency (s)", "SLO attainment", "total cost",
                        "cold-start share", "peak containers"});
  for (const auto& [name, report] : results) {
    const double total_starts =
        static_cast<double>(report.cold_starts + report.warm_starts);
    table.add_row(
        {name, support::format_double(report.latency_p50(), 1),
         support::format_double(report.latency_p95(), 1),
         support::format_double(report.latency.mean, 1),
         support::format_percent(report.slo_attainment(w.slo_seconds), 1),
         support::format_double(report.total_cost, 0),
         support::format_percent(static_cast<double>(report.cold_starts) / total_starts,
                                 1),
         std::to_string(report.peak_containers)});
  }
  std::cout << table.to_markdown();
  std::cout << "\n(" << kRequests << " Poisson arrivals, scales U[0.1, 1.8], SLO "
            << support::format_double(w.slo_seconds, 0)
            << " s; same arrival pattern for every policy)\n";
  return 0;
}
