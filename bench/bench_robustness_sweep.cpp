// Robustness sweep (ISSUE 8 headline): AARC vs BO vs MAFF across a seeded
// random-scenario corpus, with the invariant auditor running on every
// scenario.
//
// The paper demonstrates AARC on three hand-written workflows; this campaign
// asks whether the win holds across the structure taxonomy (chain, fan-out,
// fan-in, diamond, layered-mixed) on workloads nobody hand-wrote, with a
// fraction of scenarios carrying chaos overlays into the serving-path
// audits.  Per scenario, all three methods search under their billed-sample
// budgets, accepted configurations are validated with noisy executions, and
// the auditor checks: grid feasibility of returned configs, budget caps,
// SLO accounting vs the report layer, streaming-vs-heap bit-identity, and
// threads-8-vs-1 bit-identity (scenario/audit.h).
//
// Acceptance (nonzero exit on regression): zero audit violations AND an
// AARC win-rate at or above the checked-in floor.  Everything is
// deterministic under (--seed, --scenarios): reruns produce byte-identical
// BENCH_robustness_sweep.json files.
//
// `--smoke` shrinks the corpus to seconds for CTest; CI runs 25 scenarios
// (see .github/workflows/ci.yml), the acceptance protocol 100:
//
//   bench_robustness_sweep --scenarios 100 --seed 42

#include <cstring>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "bench_json.h"
#include "scenario/sweep.h"
#include "support/statistics.h"
#include "support/strings.h"
#include "support/table.h"

using namespace aarc;

namespace {

/// AARC must win at least this fraction of scenarios (cost within the sweep's
/// slack of every baseline, or baseline infeasible).  Observed win rate on
/// the reference corpus (seed 42, 100 scenarios) is well above this; the
/// floor leaves room for grid/search tweaks without masking a collapse.
constexpr double kWinRateFloor = 0.80;

struct CliArgs {
  std::size_t scenarios = 100;
  std::uint64_t seed = 42;
  std::size_t threads = 1;
  double chaos_probability = 0.2;
  bool smoke = false;
};

CliArgs parse_args(int argc, char** argv) {
  CliArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string token = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) throw std::runtime_error("missing value for " + token);
      return argv[++i];
    };
    if (token == "--smoke") {
      args.smoke = true;
      args.scenarios = 12;
    } else if (token == "--scenarios") {
      args.scenarios = static_cast<std::size_t>(std::stoul(value()));
    } else if (token == "--seed") {
      args.seed = static_cast<std::uint64_t>(std::stoull(value()));
    } else if (token == "--threads") {
      args.threads = static_cast<std::size_t>(std::stoul(value()));
    } else if (token == "--chaos-prob") {
      args.chaos_probability = std::stod(value());
    } else {
      throw std::runtime_error("unknown flag: " + token);
    }
  }
  return args;
}

struct MethodAggregate {
  std::size_t feasible = 0;
  support::Accumulator cost;
  support::Accumulator attainment;
  support::Accumulator samples;

  void add(const scenario::MethodOutcome& outcome) {
    if (outcome.feasible) {
      ++feasible;
      cost.add(outcome.mean_cost);
      attainment.add(outcome.slo_attainment);
    }
    samples.add(static_cast<double>(outcome.billed_samples));
  }
};

void add_method_row(support::Table& table, const std::string& name,
                    const MethodAggregate& agg, std::size_t total) {
  const auto cost = agg.cost.summary();
  const auto att = agg.attainment.summary();
  const auto samples = agg.samples.summary();
  table.add_row({name, std::to_string(agg.feasible) + "/" + std::to_string(total),
                 cost.count > 0 ? support::format_double(cost.mean, 1) : "-",
                 att.count > 0 ? support::format_percent(att.mean, 1) : "-",
                 support::format_double(samples.mean, 1)});
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args = parse_args(argc, argv);

  std::cout << "# Robustness sweep: AARC vs BO vs MAFF on random scenarios\n\n"
            << "corpus seed " << args.seed << ", " << args.scenarios
            << " scenarios, chaos probability "
            << support::format_percent(args.chaos_probability, 0) << "\n\n";

  scenario::SweepOptions opts;
  opts.scenario_count = args.scenarios;
  opts.seed = args.seed;
  opts.threads = args.threads;
  opts.generator.chaos_probability = args.chaos_probability;
  if (args.smoke) {
    // Keep the CTest smoke run in seconds without losing audit coverage.
    opts.validation_runs = 20;
    opts.deep_audit_stride = 4;
  }
  opts.validate();

  std::size_t done = 0;
  const auto result =
      scenario::run_sweep(opts, [&done, &args](const scenario::ScenarioOutcome& o) {
        ++done;
        if (!args.smoke && done % 10 == 0) {
          std::cout << "  ... " << done << "/" << args.scenarios << " ("
                    << o.name << ")\n";
        }
      });

  // Per-topology wins.
  std::map<scenario::TopologyKind, std::pair<std::size_t, std::size_t>> by_topology;
  MethodAggregate aarc, bo, maff;
  std::size_t chaos_scenarios = 0;
  for (const auto& o : result.scenarios) {
    auto& [wins, total] = by_topology[o.topology];
    total += 1;
    if (o.aarc_win) wins += 1;
    if (o.has_chaos) ++chaos_scenarios;
    aarc.add(o.aarc);
    bo.add(o.bo);
    maff.add(o.maff);
  }

  std::cout << "## Win rate by topology class\n\n";
  support::Table topo_table({"topology", "scenarios", "AARC wins", "win rate"});
  for (const auto& [kind, counts] : by_topology) {
    topo_table.add_row(
        {scenario::to_string(kind), std::to_string(counts.second),
         std::to_string(counts.first),
         support::format_percent(
             static_cast<double>(counts.first) / counts.second, 1)});
  }
  std::cout << topo_table.to_markdown() << "\n";

  std::cout << "## Method aggregates (feasible scenarios)\n\n";
  support::Table method_table(
      {"method", "feasible", "mean cost", "mean SLO attainment", "mean samples"});
  add_method_row(method_table, "AARC", aarc, result.scenarios.size());
  add_method_row(method_table, "BO", bo, result.scenarios.size());
  add_method_row(method_table, "MAFF", maff, result.scenarios.size());
  std::cout << method_table.to_markdown() << "\n";

  std::cout << "scenarios with chaos overlay: " << chaos_scenarios << "\n";
  std::cout << "audit violations: " << result.violations.size() << "\n";
  for (const auto& v : result.violations) {
    std::cout << "  " << scenario::to_string(v) << "\n";
  }

  bench::BenchJson out("robustness_sweep");
  out.set("smoke", args.smoke);
  out.set("sweep", scenario::sweep_to_json(opts, result));
  out.set("win_rate_floor", kWinRateFloor);
  out.write();
  std::cout << "wrote " << out.path() << "\n";

  const double win_rate = result.aarc_win_rate();
  const bool audits_clean = result.violations.empty();
  const bool wins_hold = win_rate >= kWinRateFloor;
  const bool pass = audits_clean && wins_hold;
  std::cout << "\nrobustness sweep acceptance: win rate "
            << support::format_percent(win_rate, 1) << " (floor "
            << support::format_percent(kWinRateFloor, 0) << "), "
            << result.violations.size() << " audit violations : "
            << (pass ? "PASS" : "FAIL") << "\n";
  return pass ? 0 : 1;
}
