// Fig. 6 — "Runtime Changing with Sample Counts of Different Methods under
// Different Workflows".
//
// For each workload, prints the incumbent configuration's observed runtime
// after each sample, per method.  Paper shapes to look for:
//   * AARC's runtime trends upward toward (but not past) the SLO — it trades
//     latency headroom for cost;
//   * BO's incumbent jumps around (large decoupled search space);
//   * MAFF moves in a few coarse steps and then freezes (local optimum).

#include <iostream>

#include "harness.h"
#include "report/ascii_chart.h"

int main() {
  using namespace aarc;

  std::cout << "# Fig. 6 — incumbent runtime vs sample count\n\n";

  const platform::Executor ex;
  const platform::ConfigGrid grid;

  for (const auto& name : workloads::paper_workload_names()) {
    const workloads::Workload w = workloads::make_by_name(name);
    std::vector<std::string> labels;
    std::vector<std::vector<double>> series;
    for (const std::string& method : {"AARC", "BO", "MAFF"}) {
      const auto result = bench::run_method(method, w, ex, grid, {});
      labels.push_back(method);
      series.push_back(result.trace.incumbent_runtime_series());
    }
    std::cout << "## " << name << " (SLO " << support::format_double(w.slo_seconds, 0)
              << " s)\n"
              << report::series_table(labels, series, 5, 1).to_markdown() << "\n";
    std::cout << report::ascii_chart(labels, series) << "\n";
  }
  return 0;
}
