// Resilience campaign (robustness extension): chaos incidents against the
// serving path's graceful-degradation stack.
//
// Serves the chatbot workload (AARC-scheduled configuration) through the
// streaming engine under the three reference incident profiles that also
// ship under data/chaos/ — a targeted outage, a platform-wide brownout and a
// throttle storm with a correlated two-function outage — with the
// resilience stack (circuit breakers, hedged requests, priority shedding)
// off and on.  Every profile is round-tripped through the chaos JSON codec
// first, so the campaign exercises exactly what `aarc_cli serve --chaos`
// loads.
//
// Reported per arm, from the engine's windowed time series: SLO attainment
// during the incident, time-to-recovery — the delay from incident end until
// the first window whose attainment is back within 5% of a no-incident
// baseline run of the same seeded stream — and the post-recovery steady
// state (attainment from that window onward; the recovery transient itself
// is what the TTR measures).
//
// The headline property (checked, nonzero exit on regression): under the
// reference outage with resilience on, time-to-recovery is finite and
// post-recovery attainment lands within 5% of the no-incident baseline —
// and a second identical run reproduces every counter bit-for-bit from the
// seed.  Results also land in BENCH_resilience.json and in the obs gauges
// resilience.time_to_recovery_seconds / resilience.post_incident_slo_attainment.
//
// `--smoke` compresses simulated time 4x for CTest.

#include <cstring>
#include <iostream>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "aarc/scheduler.h"
#include "bench_json.h"
#include "chaos/incident.h"
#include "io/chaos_io.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "platform/executor.h"
#include "platform/pricing.h"
#include "serving/engine.h"
#include "support/table.h"
#include "workloads/catalog.h"

using namespace aarc;

namespace {

struct Profile {
  std::string name;
  chaos::IncidentSchedule schedule;
};

chaos::Incident incident(chaos::IncidentKind kind, double start, double end,
                         double ramp, double severity,
                         std::vector<dag::NodeId> targets = {}) {
  chaos::Incident i;
  i.kind = kind;
  i.start_seconds = start;
  i.end_seconds = end;
  i.ramp_seconds = ramp;
  i.severity = severity;
  i.targets = std::move(targets);
  return i;
}

/// The three reference profiles (mirrors of data/chaos/*.json), with all
/// times scaled by `t` so --smoke compresses the campaign.
std::vector<Profile> reference_profiles(const platform::Workflow& wf, double t) {
  const dag::NodeId svm = wf.function_id("train_svm");
  const dag::NodeId nb = wf.function_id("train_nb");
  const dag::NodeId lr = wf.function_id("train_lr");

  std::vector<Profile> profiles;
  Profile outage{"outage", {}};
  outage.schedule.add(incident(chaos::IncidentKind::Outage, 600 * t, 1200 * t,
                               0.0, 0.95, {svm}));
  profiles.push_back(std::move(outage));

  Profile brownout{"brownout", {}};
  brownout.schedule.add(
      incident(chaos::IncidentKind::Brownout, 300 * t, 1500 * t, 240 * t, 0.6));
  profiles.push_back(std::move(brownout));

  Profile storm{"throttle_storm", {}};
  storm.schedule.add(
      incident(chaos::IncidentKind::ThrottleStorm, 400 * t, 1000 * t, 60 * t, 0.8));
  storm.schedule.add(
      incident(chaos::IncidentKind::Outage, 700 * t, 900 * t, 0.0, 0.9, {nb, lr}));
  profiles.push_back(std::move(storm));

  // Round-trip through the JSON codec: the campaign must measure exactly
  // what `aarc_cli serve --chaos` would load from a profile file.
  for (Profile& p : profiles) {
    p.schedule = io::chaos_profile_from_json(
        wf, io::chaos_profile_to_json(wf, p.schedule, p.name));
  }
  return profiles;
}

serving::ResilienceOptions resilience_stack() {
  serving::ResilienceOptions r;
  r.breaker.enabled = true;
  r.breaker.window = 20;
  r.breaker.min_attempts = 10;
  r.breaker.failure_threshold = 0.5;
  r.breaker.open_seconds = 30.0;
  // Above the slowest clean attempt (~40 s for train_svm incl. cold start)
  // but below a 4x straggler: only genuinely stuck attempts hedge.
  r.hedge.delay_seconds = 60.0;
  r.shed.queue_high_watermark = 50;
  return r;
}

struct ArmResult {
  serving::StreamingReport report;
  double attainment_during = 1.0;
  /// From incident end — includes the recovery transient the TTR measures.
  double attainment_post_incident = 1.0;
  /// From the first recovered window — the restored steady state.
  double attainment_post_recovery = 1.0;
  std::optional<double> time_to_recovery;  ///< nullopt = never recovered
};

/// Attainment of the windows overlapping [begin, end).
double windowed_attainment(const serving::StreamingReport& report, double begin,
                           double end) {
  std::size_t finished = 0;
  std::size_t violations = 0;
  for (const serving::WindowStat& w : report.windows) {
    if (w.start + w.width <= begin || w.start >= end) continue;
    finished += w.finished();
    violations += w.slo_violations;
  }
  return finished > 0
             ? 1.0 - static_cast<double>(violations) / static_cast<double>(finished)
             : 1.0;
}

ArmResult run_arm(const serving::ServingEngine& engine,
                  const platform::WorkflowConfig& config, std::size_t requests,
                  double rate, const chaos::IncidentSchedule& chaos_schedule,
                  double baseline_attainment) {
  serving::ArrivalLimits limits;
  limits.max_requests = requests;
  serving::PoissonProcess arrivals(rate, serving::ScaleSpec{}, limits, 404);
  ArmResult arm;
  arm.report = engine.run(arrivals, config);
  if (chaos_schedule.empty()) return arm;

  const double begin = chaos_schedule.first_start();
  const double end = chaos_schedule.last_end();
  const double inf = std::numeric_limits<double>::infinity();
  arm.attainment_during = windowed_attainment(arm.report, begin, end);
  arm.attainment_post_incident = windowed_attainment(arm.report, end, inf);
  arm.attainment_post_recovery = arm.attainment_post_incident;
  for (const serving::WindowStat& w : arm.report.windows) {
    if (w.start < end || w.finished() == 0) continue;
    if (w.slo_attainment() >= baseline_attainment - 0.05) {
      arm.time_to_recovery = (w.start + w.width) - end;
      // Steady state: everything from the recovered window onward, so a
      // later relapse still drags this below the acceptance bar.
      arm.attainment_post_recovery = windowed_attainment(arm.report, w.start, inf);
      break;
    }
  }
  return arm;
}

std::string format_ttr(const std::optional<double>& ttr) {
  return ttr ? support::format_double(*ttr, 0) + " s" : "never";
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const double t = smoke ? 0.25 : 1.0;  // simulated-time compression
  const std::size_t requests = smoke ? 300 : 1200;
  const double rate = 0.5;

  std::cout << "# Resilience: chaos incidents vs the graceful-degradation stack\n\n";

  const workloads::Workload w = workloads::make_by_name("chatbot");
  const platform::ConfigGrid grid;
  const platform::Executor executor;
  const core::GraphCentricScheduler scheduler(executor, grid);
  const auto schedule = scheduler.schedule(w.workflow, w.slo_seconds);
  const platform::WorkflowConfig config =
      schedule.result.found_feasible
          ? schedule.result.best_config
          : platform::uniform_config(w.workflow.function_count(), grid.max_config());

  serving::EngineOptions base;
  base.seed = 2026;
  base.slo_seconds = w.slo_seconds;
  base.window_seconds = 30.0;
  const platform::DecoupledLinearPricing pricing;

  // No-incident baseline of the same seeded stream: the recovery target.
  const serving::ServingEngine baseline_engine(w.workflow, pricing, base);
  const ArmResult baseline =
      run_arm(baseline_engine, config, requests, rate, {}, 1.0);
  const double baseline_attainment = baseline.report.slo_attainment();
  std::cout << "no-incident baseline attainment: "
            << support::format_percent(baseline_attainment, 1) << " over "
            << requests << " requests\n\n";

  support::Table table({"profile", "resilience", "during", "post-recovery",
                        "recovery", "fast-failed", "shed", "hedges",
                        "breaker opens"});
  bench::BenchJson out("resilience");
  io::JsonArray rows;
  bool outage_pass = false;
  double outage_ttr = -1.0;
  double outage_post = 0.0;

  for (const Profile& profile : reference_profiles(w.workflow, t)) {
    for (const bool resilient : {false, true}) {
      serving::EngineOptions opts = base;
      opts.chaos = profile.schedule;
      if (resilient) opts.resilience = resilience_stack();
      const serving::ServingEngine engine(w.workflow, pricing, opts);
      const ArmResult arm = run_arm(engine, config, requests, rate,
                                    profile.schedule, baseline_attainment);

      table.add_row({profile.name, resilient ? "on" : "off",
                     support::format_percent(arm.attainment_during, 1),
                     support::format_percent(arm.attainment_post_recovery, 1),
                     format_ttr(arm.time_to_recovery),
                     std::to_string(arm.report.breaker_fastfail_requests),
                     std::to_string(arm.report.shed_requests),
                     std::to_string(arm.report.hedges),
                     std::to_string(arm.report.breaker_opens)});

      io::JsonObject row;
      row["profile"] = profile.name;
      row["resilient"] = resilient;
      row["attainment_during_incident"] = arm.attainment_during;
      row["attainment_post_incident"] = arm.attainment_post_incident;
      row["attainment_post_recovery"] = arm.attainment_post_recovery;
      row["time_to_recovery_seconds"] =
          arm.time_to_recovery ? io::Json(*arm.time_to_recovery) : io::Json(nullptr);
      row["chaos_modulated_attempts"] = arm.report.chaos_modulated_attempts;
      row["breaker_opens"] = arm.report.breaker_opens;
      row["breaker_fastfail_requests"] = arm.report.breaker_fastfail_requests;
      row["shed_requests"] = arm.report.shed_requests;
      row["hedges"] = arm.report.hedges;
      row["hedge_wins"] = arm.report.hedge_wins;
      row["failed_requests"] = arm.report.failed_requests;
      row["total_cost"] = arm.report.total_cost;
      rows.emplace_back(std::move(row));

      if (profile.name == "outage" && resilient) {
        // Reproducibility leg of the acceptance property: an identical run
        // must match bit-for-bit from the seed.
        const ArmResult again = run_arm(engine, config, requests, rate,
                                        profile.schedule, baseline_attainment);
        const bool reproducible =
            again.report.total_cost == arm.report.total_cost &&
            again.report.breaker_fastfail_requests ==
                arm.report.breaker_fastfail_requests &&
            again.report.completed == arm.report.completed;
        outage_post = arm.attainment_post_recovery;
        outage_ttr = arm.time_to_recovery.value_or(-1.0);
        outage_pass = reproducible && arm.time_to_recovery.has_value() &&
                      arm.attainment_post_recovery >= baseline_attainment - 0.05;

        auto& reg = obs::MetricsRegistry::global();
        if (arm.time_to_recovery) {
          reg.gauge(obs::metric::kResilienceTimeToRecoverySeconds)
              .set(*arm.time_to_recovery);
        }
        reg.gauge(obs::metric::kResiliencePostIncidentAttainment)
            .set(arm.attainment_post_recovery);
      }
    }
  }
  std::cout << table.to_markdown() << "\n";

  out.set("smoke", smoke);
  out.set("requests", requests);
  out.set("baseline_attainment", baseline_attainment);
  out.set("profiles", io::Json(std::move(rows)));
  out.set("acceptance_pass", outage_pass);
  out.write();
  std::cout << "wrote " << out.path() << "\n";

  std::cout << "\nresilience acceptance (reference outage): recovery "
            << (outage_ttr >= 0.0 ? support::format_double(outage_ttr, 0) + " s"
                                  : std::string("never"))
            << ", post-incident attainment "
            << support::format_percent(outage_post, 1) << " vs baseline "
            << support::format_percent(baseline_attainment, 1) << " : "
            << (outage_pass ? "PASS" : "FAIL") << "\n";
  return outage_pass ? 0 : 1;
}
