// Optimality gap (extension): how close does each black-box method get to a
// white-box oracle that reads the mean response surfaces directly?
//
// The oracle performs exhaustive per-function coordinate descent on the
// noiseless model (baselines/oracle.h) — a bound no sampling method can
// beat.  For each paper workload we report each method's validated mean
// cost as a multiple of the oracle's, plus random search as the classic
// sanity control for BO.

#include <iostream>

#include "baselines/oracle.h"
#include "baselines/random_search.h"
#include "harness.h"

int main() {
  using namespace aarc;

  std::cout << "# Optimality gap vs white-box oracle (extension)\n\n";

  const platform::Executor ex;
  const platform::ConfigGrid grid;
  const platform::Profiler profiler(ex);

  support::Table table({"workload", "oracle cost", "AARC", "BO", "MAFF", "random"});

  for (const auto& name : workloads::paper_workload_names()) {
    const workloads::Workload w = workloads::make_by_name(name);

    const auto oracle = baselines::oracle_search(w.workflow, ex, grid, w.slo_seconds);
    if (!oracle.feasible) {
      table.add_row({name, "infeasible", "-", "-", "-", "-"});
      continue;
    }

    auto validated_ratio = [&](const search::SearchResult& r) -> std::string {
      if (!r.found_feasible) return "infeasible";
      support::Rng rng(4242);
      const auto profile = profiler.profile(w.workflow, r.best_config, 100, rng);
      return support::format_double(profile.cost.mean / oracle.mean_cost, 2) + "x";
    };

    const auto aarc = bench::run_method("AARC", w, ex, grid, {});
    const auto bo = bench::run_method("BO", w, ex, grid, {});
    const auto maff = bench::run_method("MAFF", w, ex, grid, {});
    search::Evaluator rnd_ev(w.workflow, ex, w.slo_seconds, 1.0, 3303);
    const auto rnd = baselines::random_search(rnd_ev, grid);

    table.add_row({name, support::format_double(oracle.mean_cost, 1),
                   validated_ratio(aarc), validated_ratio(bo), validated_ratio(maff),
                   validated_ratio(rnd)});
  }

  std::cout << table.to_markdown();
  std::cout << "\n(cells = validated mean cost / oracle mean cost; the oracle uses "
               "the model directly\nand is a lower bound for every sampling method)\n";
  return 0;
}
