// Generalization study (extension): the full method comparison on the
// Data Analytics workload — a MapReduce-style DAG that is *not* in the
// paper, with mixed affinities inside one workflow (cpu-bound mappers,
// a memory-bound shuffle, an io-bound report stage).  If AARC's wins were
// an artifact of the paper's three applications, they would not transfer.

#include <iostream>

#include "baselines/oracle.h"
#include "harness.h"
#include "workloads/data_analytics.h"

int main() {
  using namespace aarc;

  std::cout << "# Generalization: Data Analytics (extension workload)\n\n";

  const workloads::Workload w = workloads::make_data_analytics();
  const platform::Executor ex;
  const platform::ConfigGrid grid;

  const auto results = bench::run_all_methods(w, ex, grid);

  std::vector<report::MethodRun> rows;
  std::vector<report::ValidationRun> validations;
  for (const auto& mr : results) {
    rows.push_back({mr.method, "data_analytics", mr.search});
    if (mr.search.found_feasible) {
      report::ValidationRun v;
      v.method = mr.method;
      v.workload = "data_analytics";
      v.slo_seconds = w.slo_seconds;
      v.profile = mr.validation;
      validations.push_back(std::move(v));
    }
  }

  std::cout << "## search totals\n"
            << report::search_totals_table(rows).to_markdown() << "\n";
  std::cout << "## 100-run validation\n"
            << report::validation_table(validations).to_markdown() << "\n";

  const auto oracle = baselines::oracle_search(w.workflow, ex, grid, w.slo_seconds);
  if (oracle.feasible) {
    std::cout << "## optimality\n";
    for (const auto& mr : results) {
      if (!mr.search.found_feasible) continue;
      std::cout << mr.method << ": "
                << support::format_double(mr.validation.cost.mean / oracle.mean_cost, 2)
                << "x the oracle cost\n";
    }
  }
  return 0;
}
