// Serving-engine throughput: calendar-queue engine vs legacy event-heap.
//
// The tentpole claim behind src/serving/engine.h is quantitative: the
// streaming engine serves >= 1M simulated requests in a single run within
// bounded memory (online aggregation, no per-request retention) and at
// >= 5x the simulated-requests/sec of the legacy ServingSimulator.  The
// comparison runs bursty (MMPP) traffic — the production regime the
// serving subsystem exists for — where the legacy engine's costs compound:
// it materializes the whole request vector (one WorkflowConfig copy per
// request), seeds a binary heap with every arrival up front, and rescans
// the entire warm-container pool on every invocation start, which after a
// burst strands tens of thousands of idle containers in every scan.  The
// engine streams arrivals one at a time, pops a calendar queue, and keeps
// warm pools sorted by release time so pool maintenance is O(1).
//
// Both arms consume the same seeded MMPP stream (the legacy arm a shorter
// prefix — the metric is simulated-requests/sec, which normalizes).
//
// A second pass runs the online-reconfiguration loop (drift injected
// mid-stream) so serving + reconfiguration is exercised end to end: the
// acceptance line fails unless at least one reconfiguration activates.
//
// `--smoke` shrinks the streams (engine arm stays >= 100k requests) so the
// CTest smoke finishes in seconds, sanitizer builds included.

#include <algorithm>
#include <chrono>
#include <cstring>
#include <iostream>
#include <vector>

#include "aarc/scheduler.h"
#include "platform/executor.h"
#include "platform/pricing.h"
#include "serving/engine.h"
#include "serving/reconfigurator.h"
#include "serving/simulator.h"
#include "support/table.h"
#include "workloads/catalog.h"

using namespace aarc;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

serving::MmppParams bursty_traffic() {
  serving::MmppParams params;
  params.base_rate = 10.0;
  params.burst_rate = 150.0;
  params.mean_base_seconds = 60.0;
  params.mean_burst_seconds = 20.0;
  return params;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;

  std::cout << "# Serving throughput: calendar-queue engine vs legacy heap\n\n";

  const workloads::Workload w = workloads::make_by_name("chatbot");
  const platform::ConfigGrid grid;
  const platform::Executor executor;
  const core::GraphCentricScheduler scheduler(executor, grid);
  const auto schedule = scheduler.schedule(w.workflow, w.slo_seconds);
  const platform::WorkflowConfig config =
      schedule.result.found_feasible
          ? schedule.result.best_config
          : platform::uniform_config(w.workflow.function_count(), grid.max_config());

  const std::uint64_t kSeed = 77;
  const serving::MmppParams traffic = bursty_traffic();
  serving::ScaleSpec scales;
  scales.scale_min = 0.9;
  scales.scale_max = 1.1;
  const std::size_t engine_requests = smoke ? 150'000 : 1'000'000;
  const std::size_t legacy_requests = smoke ? 30'000 : 100'000;

  const platform::DecoupledLinearPricing pricing;

  // Legacy arm: materialization is part of the protocol (the simulator
  // cannot run without the full request vector), so it is timed too.
  serving::ServingOptions legacy_options;
  const serving::ServingSimulator legacy(w.workflow, pricing, legacy_options);
  serving::ArrivalLimits legacy_limits;
  legacy_limits.max_requests = legacy_requests;
  serving::MmppProcess legacy_arrivals(traffic, scales, legacy_limits, kSeed);
  const auto legacy_start = std::chrono::steady_clock::now();
  const auto legacy_trace = serving::materialize(legacy_arrivals, legacy_requests);
  std::vector<serving::Request> legacy_stream;
  legacy_stream.reserve(legacy_trace.size());
  for (const auto& a : legacy_trace) {
    legacy_stream.push_back({a.time, a.input_scale, config});
  }
  const serving::ServingReport legacy_report = legacy.serve(legacy_stream);
  const double legacy_wall = std::max(seconds_since(legacy_start), 1e-9);
  const double legacy_rps = static_cast<double>(legacy_requests) / legacy_wall;

  // Engine arm: the same seeded stream, pulled one arrival at a time,
  // aggregated online — no per-request retention.
  serving::EngineOptions engine_options;
  engine_options.seed = legacy_options.seed;
  engine_options.slo_seconds = w.slo_seconds;
  const serving::ServingEngine engine(w.workflow, pricing, engine_options);
  serving::ArrivalLimits engine_limits;
  engine_limits.max_requests = engine_requests;
  serving::MmppProcess engine_arrivals(traffic, scales, engine_limits, kSeed);
  const auto engine_start = std::chrono::steady_clock::now();
  const serving::StreamingReport engine_report = engine.run(engine_arrivals, config);
  const double engine_wall = std::max(seconds_since(engine_start), 1e-9);
  const double engine_rps = static_cast<double>(engine_requests) / engine_wall;

  support::Table table({"engine", "requests", "events", "wall (s)",
                        "sim req/s", "p95 latency (s)", "SLO attainment"});
  table.add_row({"legacy heap", std::to_string(legacy_requests), "-",
                 support::format_double(legacy_wall, 3),
                 support::format_double(legacy_rps, 0),
                 support::format_double(legacy_report.latency_p95(), 1),
                 support::format_percent(legacy_report.slo_attainment(w.slo_seconds), 1)});
  table.add_row({"calendar queue", std::to_string(engine_requests),
                 std::to_string(engine_report.events_processed),
                 support::format_double(engine_wall, 3),
                 support::format_double(engine_rps, 0),
                 support::format_double(engine_report.latency_p95(), 1),
                 support::format_percent(engine_report.slo_attainment(), 1)});
  std::cout << table.to_markdown() << "\n";

  const double speedup = engine_rps / legacy_rps;
  std::cout << "speedup: " << support::format_double(speedup, 1)
            << "x simulated-requests/sec over the legacy heap (bursty MMPP, "
            << "peak " << engine_report.peak_containers << " containers)\n\n";

  // Online-reconfiguration pass: drift mid-stream, assert the loop closes.
  serving::ScaleSpec drifting;
  drifting.drift_time = 100.0;
  drifting.drift_factor = 1.5;
  serving::ArrivalLimits reconfig_limits;
  reconfig_limits.max_requests = 400;
  serving::PoissonProcess drifting_arrivals(0.5, drifting, reconfig_limits, kSeed);
  serving::ReconfigOptions reconfig_options;
  reconfig_options.min_outcomes_between_reconfigs = 40;
  reconfig_options.attainment_window = 40;
  serving::OnlineReconfigurator reconfigurator(
      w, executor, grid, config,
      executor.execute_mean(w.workflow, config).makespan, reconfig_options);
  const auto reconfig_report = engine.run(drifting_arrivals, reconfigurator);
  std::cout << "online reconfiguration: " << reconfigurator.reconfigurations()
            << " swaps over " << reconfig_report.requests << " drifting requests ("
            << reconfigurator.scheduling_samples() << " probe samples)\n";

  const bool scale_ok = engine_requests >= (smoke ? 100'000u : 1'000'000u);
  const bool speedup_ok = speedup >= 5.0;
  const bool reconfig_ok = reconfigurator.reconfigurations() >= 1;
  std::cout << "\nserving throughput acceptance: "
            << support::format_double(engine_rps, 0) << " req/s vs "
            << support::format_double(legacy_rps, 0) << " req/s ("
            << support::format_double(speedup, 1) << "x, need 5x), "
            << engine_requests << " requests, reconfigs="
            << reconfigurator.reconfigurations() << " : "
            << (scale_ok && speedup_ok && reconfig_ok ? "PASS" : "FAIL") << "\n";
  return scale_ok && speedup_ok && reconfig_ok ? 0 : 1;
}
