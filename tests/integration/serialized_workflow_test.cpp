// Integration: the full developer loop over serialized artifacts — export a
// workload to JSON, re-load it, schedule it, serialize the configuration,
// re-load that, and validate.  This is exactly what `aarc_cli` does; here it
// runs through the library API so failures localize.
#include <gtest/gtest.h>

#include "aarc/scheduler.h"
#include "io/workflow_io.h"
#include "platform/profiler.h"
#include "workloads/catalog.h"

namespace aarc {
namespace {

class SerializedLoop : public ::testing::TestWithParam<std::string> {};

TEST_P(SerializedLoop, ExportScheduleSimulate) {
  // 1. Export and re-import the workload.
  const workloads::Workload original = workloads::make_by_name(GetParam());
  const workloads::Workload loaded =
      io::workload_from_string(io::workload_to_string(original));

  // 2. Schedule the re-imported workflow.
  const platform::Executor ex;
  const core::GraphCentricScheduler scheduler(ex, platform::ConfigGrid{});
  const auto report = scheduler.schedule(loaded.workflow, loaded.slo_seconds);
  ASSERT_TRUE(report.result.found_feasible);

  // 3. Round-trip the configuration through JSON.
  const auto config_doc = io::config_to_json(loaded.workflow, report.result.best_config);
  const auto config = io::config_from_json(loaded.workflow,
                                           io::parse_json(config_doc.dump(2)));

  // 4. Validate on the *original* workload: serialization must not have
  // changed behaviour.
  support::Rng rng(4242);
  const platform::Profiler profiler(ex);
  const auto validation = profiler.profile(original.workflow, config, 50, rng);
  EXPECT_EQ(validation.failures, 0u);
  EXPECT_LE(validation.makespan.mean, original.slo_seconds);
}

TEST_P(SerializedLoop, ScheduleIsIdenticalOnOriginalAndReloaded) {
  const workloads::Workload original = workloads::make_by_name(GetParam());
  const workloads::Workload loaded =
      io::workload_from_string(io::workload_to_string(original));
  const platform::Executor ex;
  const core::GraphCentricScheduler scheduler(ex, platform::ConfigGrid{});
  const auto a = scheduler.schedule(original.workflow, original.slo_seconds);
  const auto b = scheduler.schedule(loaded.workflow, loaded.slo_seconds);
  ASSERT_EQ(a.result.best_config.size(), b.result.best_config.size());
  for (std::size_t i = 0; i < a.result.best_config.size(); ++i) {
    EXPECT_EQ(a.result.best_config[i], b.result.best_config[i]);
  }
  EXPECT_EQ(a.result.samples(), b.result.samples());
}

INSTANTIATE_TEST_SUITE_P(PaperWorkloads, SerializedLoop,
                         ::testing::Values("chatbot", "ml_pipeline", "video_analysis"));

}  // namespace
}  // namespace aarc
