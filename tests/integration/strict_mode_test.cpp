// "Strict paper mode": the most literal reading of Algorithm 2 — no
// accept-side step halving, no diminishing-returns pruning, no polish round,
// no SLO safety margin.  The calibrated defaults must only be *efficiency*
// improvements: the strict mode has to remain correct (SLO-compliant,
// cheaper than base) on every paper workload, just more sample-hungry.
#include <gtest/gtest.h>

#include "aarc/scheduler.h"
#include "platform/executor.h"
#include "workloads/catalog.h"

namespace aarc {
namespace {

core::SchedulerOptions strict_options() {
  core::SchedulerOptions opts;
  opts.configurator.halve_step_on_accept = false;
  opts.configurator.min_gain_fraction = 0.0;
  opts.configurator.polish_allocate = false;
  opts.configurator.slo_safety_margin = 0.0;
  opts.configurator.max_trail = 400;  // strict mode needs more budget
  return opts;
}

class StrictMode : public ::testing::TestWithParam<std::string> {};

TEST_P(StrictMode, RemainsCorrectJustMoreExpensive) {
  const workloads::Workload w = workloads::make_by_name(GetParam());
  const platform::Executor ex;
  const platform::ConfigGrid grid;

  const core::GraphCentricScheduler strict(ex, grid, strict_options());
  const core::GraphCentricScheduler tuned(ex, grid);  // calibrated defaults

  const auto strict_report = strict.schedule(w.workflow, w.slo_seconds);
  const auto tuned_report = tuned.schedule(w.workflow, w.slo_seconds);
  ASSERT_TRUE(strict_report.result.found_feasible);
  ASSERT_TRUE(tuned_report.result.found_feasible);

  platform::ExecutorOptions mean_opts;
  mean_opts.noise = perf::NoiseModel(0.0);
  const platform::Executor mean_ex(std::make_unique<platform::DecoupledLinearPricing>(),
                                   mean_opts);

  // Correctness: SLO met in expectation, cost beaten vs base.
  const auto strict_run =
      mean_ex.execute_mean(w.workflow, strict_report.result.best_config);
  EXPECT_FALSE(strict_run.failed);
  EXPECT_LE(strict_run.makespan, w.slo_seconds * 1.02);
  const auto base = platform::uniform_config(w.workflow.function_count(),
                                             grid.max_config());
  EXPECT_LT(strict_run.total_cost,
            0.75 * mean_ex.execute_mean(w.workflow, base).total_cost);

  // The calibrated defaults buy samples, not correctness: strict mode uses
  // materially more probes for a comparable (within 2x) final cost.
  EXPECT_GT(strict_report.result.samples(), tuned_report.result.samples());
  const auto tuned_run =
      mean_ex.execute_mean(w.workflow, tuned_report.result.best_config);
  EXPECT_LT(strict_run.total_cost, 2.0 * tuned_run.total_cost);
  EXPECT_LT(tuned_run.total_cost, 2.0 * strict_run.total_cost);
}

INSTANTIATE_TEST_SUITE_P(PaperWorkloads, StrictMode,
                         ::testing::Values("chatbot", "ml_pipeline", "video_analysis"));

}  // namespace
}  // namespace aarc
