// Full-stack integration tests: the three paper workloads through all three
// search methods, validated with the paper's Table II protocol.  These are
// the tests that pin the reproduction's headline shapes.
#include <gtest/gtest.h>

#include "aarc/scheduler.h"
#include "baselines/bo/bo_optimizer.h"
#include "baselines/maff/maff.h"
#include "inputaware/engine.h"
#include "platform/profiler.h"
#include "workloads/catalog.h"

namespace aarc {
namespace {

struct MethodOutcome {
  search::SearchResult result;
  platform::ProfileReport validation;
};

class EndToEnd : public ::testing::TestWithParam<std::string> {
 protected:
  static MethodOutcome run_aarc(const workloads::Workload& w,
                                const platform::Executor& ex) {
    const core::GraphCentricScheduler scheduler(ex, platform::ConfigGrid{});
    auto report = scheduler.schedule(w.workflow, w.slo_seconds);
    return validate(w, ex, std::move(report.result));
  }

  static MethodOutcome run_bo(const workloads::Workload& w, const platform::Executor& ex) {
    search::Evaluator ev(w.workflow, ex, w.slo_seconds, 1.0, 1001);
    return validate(w, ex, baselines::bayesian_optimization(ev, platform::ConfigGrid{}));
  }

  static MethodOutcome run_maff(const workloads::Workload& w,
                                const platform::Executor& ex) {
    search::Evaluator ev(w.workflow, ex, w.slo_seconds, 1.0, 1002);
    return validate(w, ex, baselines::maff_gradient_descent(ev, platform::ConfigGrid{}));
  }

  static MethodOutcome validate(const workloads::Workload& w, const platform::Executor& ex,
                                search::SearchResult result) {
    MethodOutcome out;
    support::Rng rng(4242);
    const platform::Profiler profiler(ex);
    EXPECT_TRUE(result.found_feasible);
    out.validation = profiler.profile(w.workflow, result.best_config, 100, rng);
    out.result = std::move(result);
    return out;
  }
};

TEST_P(EndToEnd, AllMethodsMeetTheSloOnAverage) {
  // Table II(a): "All methods meet the SLO constraints."
  const workloads::Workload w = workloads::make_by_name(GetParam());
  const platform::Executor ex;
  for (const auto& outcome : {run_aarc(w, ex), run_bo(w, ex), run_maff(w, ex)}) {
    EXPECT_EQ(outcome.validation.failures, 0u);
    EXPECT_LE(outcome.validation.makespan.mean, w.slo_seconds);
  }
}

TEST_P(EndToEnd, AarcIsCheapestOfTheThreeMethods) {
  // Table II(b): AARC reduces cost versus both baselines on all workloads.
  const workloads::Workload w = workloads::make_by_name(GetParam());
  const platform::Executor ex;
  const auto aarc = run_aarc(w, ex);
  const auto bo = run_bo(w, ex);
  const auto maff = run_maff(w, ex);
  EXPECT_LT(aarc.validation.cost.mean, bo.validation.cost.mean);
  EXPECT_LT(aarc.validation.cost.mean, maff.validation.cost.mean);
}

TEST_P(EndToEnd, AarcSamplingIsCheaperThanBo) {
  // Fig. 5: AARC's total sampling runtime and cost beat BO on every
  // workload ("total search time reductions of 85.8%...").
  const workloads::Workload w = workloads::make_by_name(GetParam());
  const platform::Executor ex;
  const auto aarc = run_aarc(w, ex);
  const auto bo = run_bo(w, ex);
  EXPECT_LT(aarc.result.trace.total_sampling_runtime(),
            bo.result.trace.total_sampling_runtime());
  EXPECT_LT(aarc.result.trace.total_sampling_cost(),
            bo.result.trace.total_sampling_cost());
}

TEST_P(EndToEnd, AarcCostSeriesConvergesDownward) {
  // Fig. 7: "Using AARC, cost shows a downward trend and converges."
  const workloads::Workload w = workloads::make_by_name(GetParam());
  const platform::Executor ex;
  const auto aarc = run_aarc(w, ex);
  const auto series = aarc.result.trace.incumbent_cost_series();
  ASSERT_GT(series.size(), 4u);
  EXPECT_LT(series.back(), 0.6 * series.front());
  for (std::size_t i = 1; i < series.size(); ++i) EXPECT_LE(series[i], series[i - 1]);
}

TEST_P(EndToEnd, AarcRuntimeTrendsUpTowardTheSlo) {
  // Fig. 6: "runtime shows an upward trend using AARC" — trading latency
  // headroom for cost until the SLO (or the cost optimum) binds.
  const workloads::Workload w = workloads::make_by_name(GetParam());
  const platform::Executor ex;
  const auto aarc = run_aarc(w, ex);
  const auto series = aarc.result.trace.incumbent_runtime_series();
  ASSERT_GT(series.size(), 4u);
  EXPECT_GT(series.back(), series.front());
  EXPECT_LE(series.back(), w.slo_seconds);
}

INSTANTIATE_TEST_SUITE_P(PaperWorkloads, EndToEnd,
                         ::testing::Values("chatbot", "ml_pipeline", "video_analysis"));

TEST(EndToEndInputAware, EngineBeatsFixedConfigOnLightInputs) {
  // Fig. 8(b): per-class configurations cut cost on light inputs versus a
  // fixed (middle-tuned) configuration.
  const workloads::Workload w = workloads::make_by_name("video_analysis");
  const platform::Executor ex;
  inputaware::InputAwareEngine engine(w, ex, platform::ConfigGrid{});
  engine.build();

  const auto& light = engine.configuration(workloads::InputClass::Light);
  const auto& middle = engine.configuration(workloads::InputClass::Middle);

  support::Rng rng(7);
  const platform::Profiler profiler(ex);
  const double light_scale = w.scale_for(workloads::InputClass::Light);
  const auto with_engine = profiler.profile(
      w.workflow, light.report.result.best_config, 30, rng, light_scale);
  const auto with_fixed = profiler.profile(
      w.workflow, middle.report.result.best_config, 30, rng, light_scale);
  EXPECT_LT(with_engine.cost.mean, with_fixed.cost.mean);
}

TEST(EndToEndInputAware, HeavyInputsStayWithinSloWithEngine) {
  // Fig. 8(a): the engine's heavy-class configuration stays within the SLO
  // where a fixed coupled configuration may violate it.
  const workloads::Workload w = workloads::make_by_name("video_analysis");
  const platform::Executor ex;
  inputaware::InputAwareEngine engine(w, ex, platform::ConfigGrid{});
  engine.build();
  const auto& heavy = engine.configuration(workloads::InputClass::Heavy);
  support::Rng rng(8);
  const platform::Profiler profiler(ex);
  const auto report = profiler.profile(w.workflow, heavy.report.result.best_config, 30, rng,
                                       w.scale_for(workloads::InputClass::Heavy));
  EXPECT_EQ(report.failures, 0u);
  EXPECT_LE(report.makespan.mean, w.slo_seconds);
}

}  // namespace
}  // namespace aarc
