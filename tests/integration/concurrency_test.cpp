// Thread-safety: the scheduler, executor, and baselines share no mutable
// state across calls (everything flows through locals and value copies), so
// concurrent scheduling of independent workloads must be race-free and give
// bit-identical results to serial runs.  Run under TSan for full value; even
// without it, divergent results would fail deterministically here.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "aarc/scheduler.h"
#include "platform/executor.h"
#include "workloads/catalog.h"

namespace aarc {
namespace {

platform::WorkflowConfig schedule_once(const std::string& name) {
  const workloads::Workload w = workloads::make_by_name(name);
  const platform::Executor ex;
  const core::GraphCentricScheduler scheduler(ex, platform::ConfigGrid{});
  return scheduler.schedule(w.workflow, w.slo_seconds).result.best_config;
}

TEST(Concurrency, ParallelSchedulesMatchSerialOnes) {
  const std::vector<std::string> names{"chatbot", "ml_pipeline", "chatbot",
                                       "ml_pipeline"};
  // Serial reference.
  std::vector<platform::WorkflowConfig> serial;
  for (const auto& n : names) serial.push_back(schedule_once(n));

  // Concurrent runs.
  std::vector<platform::WorkflowConfig> parallel(names.size());
  std::vector<std::thread> threads;
  threads.reserve(names.size());
  for (std::size_t i = 0; i < names.size(); ++i) {
    threads.emplace_back([&, i] { parallel[i] = schedule_once(names[i]); });
  }
  for (auto& t : threads) t.join();

  for (std::size_t i = 0; i < names.size(); ++i) {
    ASSERT_EQ(parallel[i].size(), serial[i].size()) << names[i];
    for (std::size_t f = 0; f < serial[i].size(); ++f) {
      EXPECT_EQ(parallel[i][f], serial[i][f]) << names[i] << " fn " << f;
    }
  }
}

TEST(Concurrency, SharedExecutorAcrossThreadsIsSafe) {
  // One Executor instance used by several threads concurrently (it is
  // const-stateless per call; rngs are thread-local by construction).
  const workloads::Workload w = workloads::make_by_name("chatbot");
  const platform::Executor ex;
  const auto cfg = platform::uniform_config(w.workflow.function_count(), {1.0, 512.0});

  std::vector<double> results(8, 0.0);
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < results.size(); ++i) {
    threads.emplace_back([&, i] {
      support::Rng rng(100 + i);
      results[i] = ex.execute(w.workflow, cfg, 1.0, rng).makespan;
    });
  }
  for (auto& t : threads) t.join();

  for (std::size_t i = 0; i < results.size(); ++i) {
    support::Rng rng(100 + i);
    EXPECT_DOUBLE_EQ(results[i], ex.execute(w.workflow, cfg, 1.0, rng).makespan);
  }
}

}  // namespace
}  // namespace aarc
