#include "support/table.h"

#include <gtest/gtest.h>

#include "support/contracts.h"

namespace aarc::support {
namespace {

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(Table(std::vector<std::string>{}), ContractViolation);
}

TEST(Table, RejectsMismatchedRow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ContractViolation);
}

TEST(Table, CountsRowsAndColumns) {
  Table t({"a", "b", "c"});
  t.add_row({"1", "2", "3"});
  t.add_row({"4", "5", "6"});
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.columns(), 3u);
}

TEST(Table, MarkdownHasHeaderSeparatorAndRows) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  const std::string md = t.to_markdown();
  EXPECT_NE(md.find("| name"), std::string::npos);
  EXPECT_NE(md.find("| ----"), std::string::npos);
  EXPECT_NE(md.find("| x"), std::string::npos);
}

TEST(Table, MarkdownColumnsAligned) {
  Table t({"a", "long-header"});
  t.add_row({"wide-cell-content", "x"});
  const std::string md = t.to_markdown();
  // Each line has the same length when columns are padded.
  std::size_t first_len = md.find('\n');
  std::size_t pos = first_len + 1;
  while (pos < md.size()) {
    const std::size_t next = md.find('\n', pos);
    EXPECT_EQ(next - pos, first_len) << md;
    pos = next + 1;
  }
}

TEST(Table, CsvBasic) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\n");
}

TEST(Table, CsvEscapesCommasAndQuotes) {
  Table t({"a"});
  t.add_row({"hello, \"world\""});
  EXPECT_EQ(t.to_csv(), "a\n\"hello, \"\"world\"\"\"\n");
}

TEST(Table, CsvEscapesNewlines) {
  Table t({"a"});
  t.add_row({"two\nlines"});
  EXPECT_EQ(t.to_csv(), "a\n\"two\nlines\"\n");
}

TEST(FormatDouble, FixedPrecision) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(3.0, 0), "3");
  EXPECT_EQ(format_double(-1.005, 1), "-1.0");
}

TEST(FormatKilo, MatchesTableIIStyle) {
  EXPECT_EQ(format_kilo(2390900.0), "2390.9k");
  EXPECT_EQ(format_kilo(53600.0), "53.6k");
}

TEST(FormatMeanStd, PlusMinus) {
  EXPECT_EQ(format_mean_std(103.7, 3.2), "103.7 ± 3.2");
}

TEST(FormatPercent, SignedPercentage) {
  EXPECT_EQ(format_percent(0.496), "49.6%");
  EXPECT_EQ(format_percent(-0.1), "-10.0%");
}

}  // namespace
}  // namespace aarc::support
