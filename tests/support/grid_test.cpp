#include "support/grid.h"

#include <gtest/gtest.h>

#include "support/contracts.h"

namespace aarc::support {
namespace {

// The paper's two grids (Section IV-A).
ValueGrid cpu_grid() { return ValueGrid(0.1, 10.0, 0.1); }
ValueGrid mem_grid() { return ValueGrid(128.0, 10240.0, 64.0); }

TEST(ValueGrid, PaperCpuGridHas100Points) { EXPECT_EQ(cpu_grid().size(), 100u); }

TEST(ValueGrid, PaperMemoryGridHas159Points) { EXPECT_EQ(mem_grid().size(), 159u); }

TEST(ValueGrid, EndpointsAreExact) {
  EXPECT_DOUBLE_EQ(cpu_grid().value(0), 0.1);
  EXPECT_DOUBLE_EQ(cpu_grid().value(99), 10.0);
  EXPECT_DOUBLE_EQ(mem_grid().value(0), 128.0);
  EXPECT_DOUBLE_EQ(mem_grid().value(158), 10240.0);
}

TEST(ValueGrid, RejectsNonIntegralRange) {
  EXPECT_THROW(ValueGrid(0.0, 1.0, 0.3), ContractViolation);
}

TEST(ValueGrid, RejectsNonPositiveStep) {
  EXPECT_THROW(ValueGrid(0.0, 1.0, 0.0), ContractViolation);
  EXPECT_THROW(ValueGrid(0.0, 1.0, -1.0), ContractViolation);
}

TEST(ValueGrid, RejectsInvertedRange) {
  EXPECT_THROW(ValueGrid(2.0, 1.0, 0.5), ContractViolation);
}

TEST(ValueGrid, SingletonGrid) {
  const ValueGrid g(5.0, 5.0, 1.0);
  EXPECT_EQ(g.size(), 1u);
  EXPECT_DOUBLE_EQ(g.snap(100.0), 5.0);
  EXPECT_DOUBLE_EQ(g.snap(-100.0), 5.0);
}

TEST(ValueGrid, SnapToNearest) {
  const ValueGrid g = mem_grid();
  EXPECT_DOUBLE_EQ(g.snap(520.0), 512.0);
  EXPECT_DOUBLE_EQ(g.snap(545.0), 576.0);
}

TEST(ValueGrid, SnapClampsOutOfRange) {
  const ValueGrid g = mem_grid();
  EXPECT_DOUBLE_EQ(g.snap(1.0), 128.0);
  EXPECT_DOUBLE_EQ(g.snap(999999.0), 10240.0);
}

TEST(ValueGrid, IndexOfRoundTrips) {
  const ValueGrid g = mem_grid();
  for (std::size_t i = 0; i < g.size(); i += 7) {
    EXPECT_EQ(g.index_of(g.value(i)), i);
  }
}

TEST(ValueGrid, ContainsGridPointsOnly) {
  const ValueGrid g = mem_grid();
  EXPECT_TRUE(g.contains(512.0));
  EXPECT_FALSE(g.contains(513.0));
  EXPECT_FALSE(g.contains(64.0));     // below range
  EXPECT_FALSE(g.contains(20480.0));  // above range
}

TEST(ValueGrid, StepDownMovesExactUnits) {
  const ValueGrid g = mem_grid();
  EXPECT_DOUBLE_EQ(g.step_down(1024.0, 1), 960.0);
  EXPECT_DOUBLE_EQ(g.step_down(1024.0, 14), 128.0);
}

TEST(ValueGrid, StepDownClampsAtMin) {
  const ValueGrid g = mem_grid();
  EXPECT_DOUBLE_EQ(g.step_down(256.0, 100), 128.0);
  EXPECT_DOUBLE_EQ(g.step_down(128.0, 1), 128.0);
}

TEST(ValueGrid, StepUpClampsAtMax) {
  const ValueGrid g = cpu_grid();
  EXPECT_DOUBLE_EQ(g.step_up(9.9, 5), 10.0);
  EXPECT_DOUBLE_EQ(g.step_up(1.0, 1), 1.1);
}

TEST(ValueGrid, ClampWithoutSnapping) {
  const ValueGrid g = mem_grid();
  EXPECT_DOUBLE_EQ(g.clamp(515.0), 515.0);
  EXPECT_DOUBLE_EQ(g.clamp(1.0), 128.0);
  EXPECT_DOUBLE_EQ(g.clamp(1e9), 10240.0);
}

TEST(ValueGrid, ValuesMaterializesWholeGrid) {
  const ValueGrid g(0.0, 10.0, 2.5);
  const std::vector<double> expected{0.0, 2.5, 5.0, 7.5, 10.0};
  EXPECT_EQ(g.values(), expected);
}

TEST(ValueGrid, ValueIndexOutOfRangeThrows) {
  EXPECT_THROW(cpu_grid().value(100), ContractViolation);
}

/// Property: snap is idempotent and stays on the grid for arbitrary inputs.
class SnapProperty : public ::testing::TestWithParam<double> {};

TEST_P(SnapProperty, IdempotentAndOnGrid) {
  const ValueGrid g = mem_grid();
  const double snapped = g.snap(GetParam());
  EXPECT_TRUE(g.contains(snapped));
  EXPECT_DOUBLE_EQ(g.snap(snapped), snapped);
}

INSTANTIATE_TEST_SUITE_P(Values, SnapProperty,
                         ::testing::Values(-5.0, 0.0, 127.9, 128.0, 128.1, 500.0, 512.0,
                                           5120.3, 10239.9, 10240.0, 99999.0));

}  // namespace
}  // namespace aarc::support
