#include "support/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

namespace aarc::support {
namespace {

TEST(ThreadPool, RunsEveryItemExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(hits.size(), [&](std::size_t item, std::size_t) {
    hits[item].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, WorkerIdsStayInRange) {
  const std::size_t workers = 3;
  ThreadPool pool(workers);
  std::atomic<bool> in_range{true};
  pool.parallel_for(64, [&](std::size_t, std::size_t worker) {
    if (worker >= workers) in_range = false;
  });
  EXPECT_TRUE(in_range.load());
}

TEST(ThreadPool, EmptyBatchIsANoop) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.parallel_for(0, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, PropagatesTheFirstException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(8,
                                 [&](std::size_t item, std::size_t) {
                                   if (item == 3) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
  // The pool survives a throwing batch and runs the next one normally.
  std::atomic<int> calls{0};
  pool.parallel_for(8, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 8);
}

TEST(ThreadPool, ReusableAcrossManyBatches) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  for (int round = 0; round < 20; ++round) {
    pool.parallel_for(16, [&](std::size_t, std::size_t) { ++total; });
  }
  EXPECT_EQ(total.load(), 20 * 16);
}

TEST(ThreadPool, DefaultWorkersIsPositive) {
  EXPECT_GE(ThreadPool::default_workers(), 1u);
}

}  // namespace
}  // namespace aarc::support
