#include "support/strings.h"

#include <gtest/gtest.h>

namespace aarc::support {
namespace {

TEST(Join, EmptyVector) { EXPECT_EQ(join({}, ", "), ""); }

TEST(Join, SingleElement) { EXPECT_EQ(join({"a"}, ", "), "a"); }

TEST(Join, MultipleElements) { EXPECT_EQ(join({"a", "b", "c"}, "->"), "a->b->c"); }

TEST(Split, BasicFields) {
  const std::vector<std::string> expected{"a", "b", "c"};
  EXPECT_EQ(split("a,b,c", ','), expected);
}

TEST(Split, PreservesEmptyFields) {
  const std::vector<std::string> expected{"", "x", ""};
  EXPECT_EQ(split(",x,", ','), expected);
}

TEST(Split, NoSeparator) {
  const std::vector<std::string> expected{"abc"};
  EXPECT_EQ(split("abc", ','), expected);
}

TEST(Split, RoundTripsWithJoin) {
  const std::string original = "one,two,three";
  EXPECT_EQ(join(split(original, ','), ","), original);
}

TEST(Trim, RemovesSurroundingWhitespace) {
  EXPECT_EQ(trim("  hello \t\n"), "hello");
}

TEST(Trim, AllWhitespaceBecomesEmpty) { EXPECT_EQ(trim(" \t "), ""); }

TEST(Trim, InteriorWhitespaceKept) { EXPECT_EQ(trim(" a b "), "a b"); }

TEST(StartsWith, Basics) {
  EXPECT_TRUE(starts_with("workflow", "work"));
  EXPECT_FALSE(starts_with("work", "workflow"));
  EXPECT_TRUE(starts_with("x", ""));
}

TEST(ToLower, AsciiOnly) { EXPECT_EQ(to_lower("AbC-123"), "abc-123"); }

}  // namespace
}  // namespace aarc::support
