#include "support/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "support/contracts.h"
#include "support/statistics.h"

namespace aarc::support {
namespace {

TEST(SplitMix, IsDeterministic) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix, DifferentSeedsDiffer) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(DeriveSeed, IsPure) {
  EXPECT_EQ(derive_seed(7, 3), derive_seed(7, 3));
}

TEST(DeriveSeed, StreamsDecorrelate) {
  EXPECT_NE(derive_seed(7, 0), derive_seed(7, 1));
  EXPECT_NE(derive_seed(7, 0), 7u);  // stream 0 must not echo the parent
}

TEST(Rng, SameSeedSameSequence) {
  Rng a(11);
  Rng b(11);
  for (int i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
  }
}

TEST(Rng, UniformStaysInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, UniformRejectsInvertedRange) {
  Rng rng(5);
  EXPECT_THROW(rng.uniform(3.0, 2.0), ContractViolation);
}

TEST(Rng, UniformIntCoversBounds) {
  Rng rng(6);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.uniform_int(0, 3));
  EXPECT_EQ(seen.size(), 4u);
  EXPECT_TRUE(seen.count(0) == 1 && seen.count(3) == 1);
}

TEST(Rng, LognormalUnitMeanIsUnbiased) {
  Rng rng(7);
  Accumulator acc;
  for (int i = 0; i < 20000; ++i) acc.add(rng.lognormal_unit_mean(0.1));
  EXPECT_NEAR(acc.mean(), 1.0, 0.01);
}

TEST(Rng, LognormalZeroSigmaIsExactlyOne) {
  Rng rng(8);
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(rng.lognormal_unit_mean(0.0), 1.0);
}

TEST(Rng, LognormalRejectsNegativeSigma) {
  Rng rng(8);
  EXPECT_THROW(rng.lognormal_unit_mean(-0.1), ContractViolation);
}

TEST(Rng, BernoulliRespectsProbability) {
  Rng rng(9);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.25) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

TEST(Rng, BernoulliRejectsOutOfRange) {
  Rng rng(9);
  EXPECT_THROW(rng.bernoulli(-0.1), ContractViolation);
  EXPECT_THROW(rng.bernoulli(1.1), ContractViolation);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(10);
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, IndexWithinBounds) {
  Rng rng(11);
  for (int i = 0; i < 200; ++i) EXPECT_LT(rng.index(7), 7u);
}

TEST(Rng, IndexRejectsEmptyRange) {
  Rng rng(11);
  EXPECT_THROW(rng.index(0), ContractViolation);
}

TEST(Rng, PermutationIsAPermutation) {
  Rng rng(12);
  const auto perm = rng.permutation(50);
  std::set<std::size_t> unique(perm.begin(), perm.end());
  EXPECT_EQ(unique.size(), 50u);
  EXPECT_EQ(*unique.begin(), 0u);
  EXPECT_EQ(*unique.rbegin(), 49u);
}

TEST(Rng, PermutationOfZeroIsEmpty) {
  Rng rng(12);
  EXPECT_TRUE(rng.permutation(0).empty());
}

TEST(Rng, SplitProducesIndependentStreams) {
  Rng parent(13);
  Rng c0 = parent.split(0);
  Rng c1 = parent.split(1);
  EXPECT_NE(c0.seed(), c1.seed());
  EXPECT_NE(c0.uniform(0.0, 1.0), c1.uniform(0.0, 1.0));
}

TEST(Rng, SplitIsStable) {
  Rng parent(13);
  EXPECT_EQ(parent.split(4).seed(), parent.split(4).seed());
}

TEST(Rng, NormalMatchesMoments) {
  Rng rng(14);
  Accumulator acc;
  for (int i = 0; i < 20000; ++i) acc.add(rng.normal(5.0, 2.0));
  EXPECT_NEAR(acc.mean(), 5.0, 0.08);
  EXPECT_NEAR(acc.stddev(), 2.0, 0.08);
}

}  // namespace
}  // namespace aarc::support
