#include "support/log.h"

#include <gtest/gtest.h>

namespace aarc::support {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log_level()) {}
  ~LogLevelGuard() { set_log_level(saved_); }
  LogLevelGuard(const LogLevelGuard&) = delete;
  LogLevelGuard& operator=(const LogLevelGuard&) = delete;

 private:
  LogLevel saved_;
};

TEST(Log, LevelRoundTrips) {
  const LogLevelGuard guard;
  set_log_level(LogLevel::Debug);
  EXPECT_EQ(log_level(), LogLevel::Debug);
  set_log_level(LogLevel::Error);
  EXPECT_EQ(log_level(), LogLevel::Error);
}

TEST(Log, EmitsToStderr) {
  const LogLevelGuard guard;
  set_log_level(LogLevel::Debug);
  ::testing::internal::CaptureStderr();
  log_info("value=", 42, " name=", "x");
  const std::string out = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("[INFO] value=42 name=x"), std::string::npos);
}

TEST(Log, SuppressedBelowLevel) {
  const LogLevelGuard guard;
  set_log_level(LogLevel::Error);
  ::testing::internal::CaptureStderr();
  log_debug("hidden");
  log_info("hidden");
  log_warn("hidden");
  EXPECT_TRUE(::testing::internal::GetCapturedStderr().empty());
}

TEST(Log, OffSilencesEverything) {
  const LogLevelGuard guard;
  set_log_level(LogLevel::Off);
  ::testing::internal::CaptureStderr();
  log_error("hidden");
  EXPECT_TRUE(::testing::internal::GetCapturedStderr().empty());
}

}  // namespace
}  // namespace aarc::support
