#include "support/statistics.h"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <vector>

#include "support/contracts.h"

namespace aarc::support {
namespace {

TEST(Accumulator, EmptySummary) {
  Accumulator acc;
  const Summary s = acc.summary();
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(Accumulator, SingleValue) {
  Accumulator acc;
  acc.add(3.5);
  EXPECT_EQ(acc.count(), 1u);
  EXPECT_DOUBLE_EQ(acc.mean(), 3.5);
  EXPECT_DOUBLE_EQ(acc.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(acc.min(), 3.5);
  EXPECT_DOUBLE_EQ(acc.max(), 3.5);
}

TEST(Accumulator, KnownMeanAndStd) {
  Accumulator acc;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(v);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  // Sample variance with n-1: sum sq dev = 32, / 7.
  EXPECT_NEAR(acc.variance(), 32.0 / 7.0, 1e-12);
}

TEST(Accumulator, MinMaxTracking) {
  Accumulator acc;
  for (double v : {5.0, -2.0, 8.0, 0.0}) acc.add(v);
  EXPECT_DOUBLE_EQ(acc.min(), -2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 8.0);
  EXPECT_DOUBLE_EQ(acc.sum(), 11.0);
}

TEST(Accumulator, MinMaxOnEmptyThrows) {
  Accumulator acc;
  EXPECT_THROW(acc.min(), ContractViolation);
  EXPECT_THROW(acc.max(), ContractViolation);
}

TEST(Accumulator, MergeMatchesSequential) {
  Accumulator all;
  Accumulator left;
  Accumulator right;
  for (int i = 0; i < 50; ++i) {
    const double v = std::sin(i) * 10.0;
    all.add(v);
    (i % 2 == 0 ? left : right).add(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(Accumulator, MergeWithEmptyIsIdentity) {
  Accumulator acc;
  acc.add(1.0);
  acc.add(2.0);
  Accumulator empty;
  acc.merge(empty);
  EXPECT_EQ(acc.count(), 2u);
  empty.merge(acc);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.5);
}

TEST(Summarize, MatchesAccumulator) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  const Summary s = summarize(v);
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.sum, 10.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
}

TEST(Percentile, MedianOfOddSample) {
  const std::vector<double> v{3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 2.0);
}

TEST(Percentile, InterpolatesBetweenPoints) {
  const std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(v, 25.0), 2.5);
}

TEST(Percentile, Extremes) {
  const std::vector<double> v{5.0, 1.0, 9.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 9.0);
}

TEST(Percentile, SingleElement) {
  const std::vector<double> v{42.0};
  EXPECT_DOUBLE_EQ(percentile(v, 73.0), 42.0);
}

TEST(Percentile, RejectsEmptyAndBadP) {
  const std::vector<double> empty;
  const std::vector<double> one{1.0};
  EXPECT_THROW(percentile(empty, 50.0), ContractViolation);
  EXPECT_THROW(percentile(one, -1.0), ContractViolation);
  EXPECT_THROW(percentile(one, 101.0), ContractViolation);
}

TEST(MeanAbsDelta, PaperFluctuationMetric) {
  // Fig. 3's "average fluctuation amplitude": mean |x_i - x_{i-1}|.
  const std::vector<double> v{10.0, 12.0, 9.0, 9.0};
  EXPECT_DOUBLE_EQ(mean_abs_delta(v), (2.0 + 3.0 + 0.0) / 3.0);
}

TEST(MeanAbsDelta, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(mean_abs_delta(std::vector<double>{}), 0.0);
  EXPECT_DOUBLE_EQ(mean_abs_delta(std::vector<double>{5.0}), 0.0);
}

TEST(FractionIncreases, CountsStrictIncreases) {
  const std::vector<double> v{1.0, 2.0, 2.0, 1.0, 3.0};
  // deltas: +1, 0, -1, +2 -> 2 of 4 increases.
  EXPECT_DOUBLE_EQ(fraction_increases(v), 0.5);
}

TEST(RunningMin, IsMonotoneNonIncreasing) {
  const std::vector<double> v{5.0, 7.0, 3.0, 4.0, 1.0};
  const auto r = running_min(v);
  const std::vector<double> expected{5.0, 5.0, 3.0, 3.0, 1.0};
  EXPECT_EQ(r, expected);
}

TEST(RunningMax, IsMonotoneNonDecreasing) {
  const std::vector<double> v{5.0, 7.0, 3.0, 9.0};
  const auto r = running_max(v);
  const std::vector<double> expected{5.0, 7.0, 7.0, 9.0};
  EXPECT_EQ(r, expected);
}

TEST(RunningMin, EmptyInput) { EXPECT_TRUE(running_min(std::vector<double>{}).empty()); }

TEST(QuantileSketch, EmptySketchReportsZero) {
  const QuantileSketch sketch;
  EXPECT_EQ(sketch.count(), 0u);
  EXPECT_DOUBLE_EQ(sketch.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(sketch.p99(), 0.0);
}

TEST(QuantileSketch, TracksExactPercentileWithinGrowthBound) {
  // The sketch's documented relative error is growth - 1 (2% by default).
  QuantileSketch sketch;
  std::vector<double> values;
  for (int i = 0; i < 5000; ++i) {
    // A spread of latencies over three decades: 0.01 s .. 20 s.
    const double v = 0.01 * std::pow(10.0, 3.3 * (std::sin(i * 0.37) + 1.0) / 2.0);
    values.push_back(v);
    sketch.add(v);
  }
  EXPECT_EQ(sketch.count(), values.size());
  for (double q : {0.50, 0.95, 0.99}) {
    const double exact = percentile(values, q * 100.0);
    const double approx = sketch.quantile(q);
    EXPECT_NEAR(approx, exact, exact * 0.03) << "q=" << q;
  }
}

TEST(QuantileSketch, QuantilesAreMonotoneInQ) {
  QuantileSketch sketch;
  for (int i = 1; i <= 1000; ++i) sketch.add(0.002 * i);
  double prev = 0.0;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    const double v = sketch.quantile(q);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(QuantileSketch, MergeMatchesSequentialFeed) {
  QuantileSketch all;
  QuantileSketch left;
  QuantileSketch right;
  for (int i = 0; i < 2000; ++i) {
    const double v = 0.05 + 0.01 * i;
    all.add(v);
    (i % 2 == 0 ? left : right).add(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  for (double q : {0.5, 0.95, 0.99}) {
    EXPECT_DOUBLE_EQ(left.quantile(q), all.quantile(q));
  }
}

TEST(QuantileSketch, OutOfRangeValuesClampToTheEdges) {
  QuantileSketch sketch(0.1, 100.0, 1.05);
  sketch.add(1e-9);   // below min_value: first bucket
  sketch.add(1e9);    // above max_value: overflow bucket
  EXPECT_EQ(sketch.count(), 2u);
  EXPECT_LE(sketch.quantile(0.0), 0.1 * 1.05);
  // The overflow bucket reports max_value up to grid rounding (one growth
  // step), never the actual out-of-range magnitude.
  EXPECT_GE(sketch.quantile(1.0), 100.0);
  EXPECT_LE(sketch.quantile(1.0), 100.0 * 1.05);
}

/// Property: for any sample, stddev >= 0 and min <= mean <= max.
class SummaryProperty : public ::testing::TestWithParam<int> {};

TEST_P(SummaryProperty, BasicInequalities) {
  std::vector<double> v;
  const int seed = GetParam();
  for (int i = 0; i < 100; ++i) {
    v.push_back(std::sin(seed * 100 + i) * std::cos(i * 0.7) * 50.0);
  }
  const Summary s = summarize(v);
  EXPECT_GE(s.stddev, 0.0);
  EXPECT_LE(s.min, s.mean);
  EXPECT_GE(s.max, s.mean);
  EXPECT_NEAR(s.sum, s.mean * static_cast<double>(s.count), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SummaryProperty, ::testing::Range(0, 10));

}  // namespace
}  // namespace aarc::support
