#include "support/contracts.h"

#include <gtest/gtest.h>

namespace aarc::support {
namespace {

TEST(Contracts, ExpectsPassesOnTrue) { EXPECT_NO_THROW(expects(true, "ok")); }

TEST(Contracts, ExpectsThrowsOnFalse) {
  EXPECT_THROW(expects(false, "boom"), ContractViolation);
}

TEST(Contracts, EnsuresThrowsOnFalse) {
  EXPECT_THROW(ensures(false, "post"), ContractViolation);
}

TEST(Contracts, InvariantThrowsOnFalse) {
  EXPECT_THROW(invariant(false, "inv"), ContractViolation);
}

TEST(Contracts, MessageIsPreserved) {
  try {
    expects(false, "the message");
    FAIL() << "expected throw";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("the message"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("precondition"), std::string::npos);
  }
}

TEST(Contracts, FileAndLineAppearWhenGiven) {
  try {
    ensures(false, "msg", "file.cpp", 42);
    FAIL() << "expected throw";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("file.cpp:42"), std::string::npos);
    EXPECT_NE(what.find("postcondition"), std::string::npos);
  }
}

TEST(Contracts, ViolationIsLogicError) {
  try {
    invariant(false, "x");
    FAIL() << "expected throw";
  } catch (const std::logic_error&) {
    SUCCEED();
  }
}

}  // namespace
}  // namespace aarc::support
