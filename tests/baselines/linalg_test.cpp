#include "baselines/bo/linalg.h"

#include <gtest/gtest.h>

#include <cmath>

#include "support/contracts.h"

namespace aarc::baselines {
namespace {

Matrix spd3() {
  // A = B B^T for B = [[2,0,0],[1,3,0],[0,1,1]]: guaranteed SPD.
  Matrix a(3, 3);
  const double b[3][3] = {{2, 0, 0}, {1, 3, 0}, {0, 1, 1}};
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k < 3; ++k) acc += b[i][k] * b[j][k];
      a.at(i, j) = acc;
    }
  }
  return a;
}

TEST(Matrix, ConstructionAndAccess) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m.at(1, 2), 1.5);
  m.at(0, 0) = 7.0;
  EXPECT_DOUBLE_EQ(m.at(0, 0), 7.0);
}

TEST(Matrix, RejectsZeroDimensions) {
  EXPECT_THROW(Matrix(0, 3), support::ContractViolation);
}

TEST(Matrix, RejectsOutOfRangeAccess) {
  Matrix m(2, 2);
  EXPECT_THROW(m.at(2, 0), support::ContractViolation);
  EXPECT_THROW(m.at(0, 2), support::ContractViolation);
}

TEST(Matrix, MultiplyVector) {
  Matrix m(2, 3);
  m.at(0, 0) = 1;
  m.at(0, 1) = 2;
  m.at(0, 2) = 3;
  m.at(1, 0) = 4;
  m.at(1, 1) = 5;
  m.at(1, 2) = 6;
  const auto y = m.multiply({1.0, 1.0, 1.0});
  EXPECT_EQ(y, (std::vector<double>{6.0, 15.0}));
}

TEST(Matrix, MultiplyRejectsSizeMismatch) {
  Matrix m(2, 3);
  EXPECT_THROW(m.multiply({1.0, 2.0}), support::ContractViolation);
}

TEST(Cholesky, RecoversKnownFactor) {
  const Matrix l = cholesky(spd3(), 0.0);
  // The factor of B B^T is B itself (for lower-triangular positive B).
  const double expected[3][3] = {{2, 0, 0}, {1, 3, 0}, {0, 1, 1}};
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_NEAR(l.at(i, j), expected[i][j], 1e-9) << i << "," << j;
    }
  }
}

TEST(Cholesky, RejectsNonSquare) {
  EXPECT_THROW(cholesky(Matrix(2, 3)), support::ContractViolation);
}

TEST(Cholesky, RejectsIndefinite) {
  Matrix a(2, 2);
  a.at(0, 0) = 1.0;
  a.at(0, 1) = 2.0;
  a.at(1, 0) = 2.0;
  a.at(1, 1) = 1.0;  // eigenvalues 3, -1
  EXPECT_THROW(cholesky(a, 0.0), support::ContractViolation);
}

TEST(Cholesky, JitterRescuesNearSingular) {
  Matrix a(2, 2);
  a.at(0, 0) = 1.0;
  a.at(0, 1) = 1.0;
  a.at(1, 0) = 1.0;
  a.at(1, 1) = 1.0;  // rank 1
  EXPECT_NO_THROW(cholesky(a, 1e-6));
}

TEST(TriangularSolves, RoundTrip) {
  const Matrix a = spd3();
  const Matrix l = cholesky(a, 0.0);
  const std::vector<double> x_true{1.0, -2.0, 3.0};
  const std::vector<double> b = a.multiply(x_true);
  const auto x = cholesky_solve(l, b);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-9);
}

TEST(TriangularSolves, LowerThenTranspose) {
  const Matrix l = cholesky(spd3(), 0.0);
  const std::vector<double> b{1.0, 2.0, 3.0};
  const auto y = solve_lower(l, b);
  // L y = b.
  for (std::size_t i = 0; i < 3; ++i) {
    double acc = 0.0;
    for (std::size_t k = 0; k <= i; ++k) acc += l.at(i, k) * y[k];
    EXPECT_NEAR(acc, b[i], 1e-9);
  }
  const auto x = solve_lower_transpose(l, y);
  // L^T x = y.
  for (std::size_t i = 0; i < 3; ++i) {
    double acc = 0.0;
    for (std::size_t k = i; k < 3; ++k) acc += l.at(k, i) * x[k];
    EXPECT_NEAR(acc, y[i], 1e-9);
  }
}

TEST(TriangularSolves, RejectSizeMismatch) {
  const Matrix l = cholesky(spd3(), 0.0);
  EXPECT_THROW(solve_lower(l, {1.0, 2.0}), support::ContractViolation);
  EXPECT_THROW(solve_lower_transpose(l, {1.0}), support::ContractViolation);
}

TEST(Dot, BasicAndMismatch) {
  EXPECT_DOUBLE_EQ(dot({1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}), 32.0);
  EXPECT_THROW(dot({1.0}, {1.0, 2.0}), support::ContractViolation);
}

TEST(LogDiagonalSum, MatchesHandComputation) {
  const Matrix l = cholesky(spd3(), 0.0);
  EXPECT_NEAR(log_diagonal_sum(l), std::log(2.0) + std::log(3.0) + std::log(1.0), 1e-9);
}

}  // namespace
}  // namespace aarc::baselines
