#include "baselines/oracle.h"

#include <gtest/gtest.h>

#include "perf/analytic.h"
#include "support/contracts.h"

namespace aarc::baselines {
namespace {

std::unique_ptr<perf::PerfModel> fn(double serial, double parallel, double max_par,
                                    double ws = 400.0, double min_mem = 192.0) {
  perf::AnalyticParams p;
  p.io_seconds = 1.0;
  p.serial_seconds = serial;
  p.parallel_seconds = parallel;
  p.max_parallelism = max_par;
  p.working_set_mb = ws;
  p.min_memory_mb = min_mem;
  p.pressure_coeff = 3.0;
  return std::make_unique<perf::AnalyticModel>(p);
}

platform::Workflow pair() {
  platform::Workflow wf("pair");
  wf.add_function("a", fn(6.0, 0.0, 1.0));
  wf.add_function("b", fn(2.0, 16.0, 4.0));
  wf.add_edge("a", "b");
  return wf;
}

/// Small grid keeps the exhaustive scan fast in tests.
platform::ConfigGrid small_grid() {
  return platform::ConfigGrid(support::ValueGrid(0.5, 4.0, 0.5),
                              support::ValueGrid(256.0, 2048.0, 256.0));
}

TEST(Oracle, FindsFeasibleConfigOnGrid) {
  const platform::Workflow wf = pair();
  const platform::Executor ex;
  const auto grid = small_grid();
  const auto result = oracle_search(wf, ex, grid, 60.0);
  ASSERT_TRUE(result.feasible);
  for (const auto& rc : result.config) EXPECT_TRUE(grid.contains(rc));
  EXPECT_LE(result.mean_makespan, 60.0);
  EXPECT_GT(result.evaluations, 0u);
  EXPECT_GE(result.passes, 1u);
}

TEST(Oracle, BeatsOrMatchesEveryUniformConfig) {
  // The oracle's cost must be <= the best uniform configuration on the
  // grid (uniform configs are a subset of its search space reachable by
  // coordinate descent from the base).
  const platform::Workflow wf = pair();
  const platform::Executor ex;
  const auto grid = small_grid();
  const double slo = 60.0;
  const auto result = oracle_search(wf, ex, grid, slo);
  ASSERT_TRUE(result.feasible);

  double best_uniform = std::numeric_limits<double>::infinity();
  for (double cpu : grid.cpu().values()) {
    for (double mem : grid.memory().values()) {
      const auto cfg = platform::uniform_config(2, {cpu, mem});
      const auto run = ex.execute_mean(wf, cfg);
      if (run.failed || run.makespan > slo) continue;
      best_uniform = std::min(best_uniform, run.total_cost);
    }
  }
  EXPECT_LE(result.mean_cost, best_uniform + 1e-9);
}

TEST(Oracle, RespectsTheSloConstraint) {
  const platform::Workflow wf = pair();
  const platform::Executor ex;
  // Tight but feasible: base makespan ~ 1+6 + 1+2+4 = 14.
  const auto result = oracle_search(wf, ex, small_grid(), 16.0);
  ASSERT_TRUE(result.feasible);
  EXPECT_LE(result.mean_makespan, 16.0);
}

TEST(Oracle, InfeasibleSloReported) {
  const platform::Workflow wf = pair();
  const platform::Executor ex;
  const auto result = oracle_search(wf, ex, small_grid(), 1.0);
  EXPECT_FALSE(result.feasible);
}

TEST(Oracle, MarginTightensTheConstraint) {
  const platform::Workflow wf = pair();
  const platform::Executor ex;
  OracleOptions opts;
  opts.slo_margin = 0.2;
  const auto result = oracle_search(wf, ex, small_grid(), 30.0, 1.0, opts);
  ASSERT_TRUE(result.feasible);
  EXPECT_LE(result.mean_makespan, 30.0 * 0.8 + 1e-9);
}

TEST(Oracle, CheaperSloMeansCheaperConfig) {
  // Loosening the SLO can only reduce (or keep) the optimal cost.
  const platform::Workflow wf = pair();
  const platform::Executor ex;
  const auto tight = oracle_search(wf, ex, small_grid(), 16.0);
  const auto loose = oracle_search(wf, ex, small_grid(), 120.0);
  ASSERT_TRUE(tight.feasible && loose.feasible);
  EXPECT_LE(loose.mean_cost, tight.mean_cost + 1e-9);
}

TEST(Oracle, InputScaleShiftsTheOptimum) {
  const platform::Workflow wf = pair();
  const platform::Executor ex;
  const auto small = oracle_search(wf, ex, small_grid(), 120.0, 0.5);
  const auto big = oracle_search(wf, ex, small_grid(), 120.0, 2.0);
  ASSERT_TRUE(small.feasible && big.feasible);
  EXPECT_LT(small.mean_cost, big.mean_cost);
}

TEST(Oracle, RejectsBadArguments) {
  const platform::Workflow wf = pair();
  const platform::Executor ex;
  EXPECT_THROW(oracle_search(wf, ex, small_grid(), 0.0), support::ContractViolation);
  OracleOptions opts;
  opts.max_passes = 0;
  EXPECT_THROW(oracle_search(wf, ex, small_grid(), 10.0, 1.0, opts),
               support::ContractViolation);
}

}  // namespace
}  // namespace aarc::baselines
