#include "baselines/random_search.h"

#include <gtest/gtest.h>

#include "perf/analytic.h"
#include "platform/executor.h"
#include "support/contracts.h"

namespace aarc::baselines {
namespace {

std::unique_ptr<perf::PerfModel> fn(double serial) {
  perf::AnalyticParams p;
  p.io_seconds = 1.0;
  p.serial_seconds = serial;
  p.working_set_mb = 400.0;
  p.min_memory_mb = 192.0;
  p.pressure_coeff = 2.0;
  return std::make_unique<perf::AnalyticModel>(p);
}

platform::Workflow pair() {
  platform::Workflow wf("pair");
  wf.add_function("a", fn(5.0));
  wf.add_function("b", fn(7.0));
  wf.add_edge("a", "b");
  return wf;
}

TEST(RandomSearch, UsesExactlyTheBudget) {
  const platform::Workflow wf = pair();
  const platform::Executor ex;
  search::Evaluator ev(wf, ex, 100.0, 1.0, 1);
  RandomSearchOptions opts;
  opts.max_samples = 25;
  const auto result = random_search(ev, platform::ConfigGrid{}, opts);
  EXPECT_EQ(result.samples(), 25u);
}

TEST(RandomSearch, WarmStartGuaranteesFeasibility) {
  const platform::Workflow wf = pair();
  const platform::Executor ex;
  search::Evaluator ev(wf, ex, 100.0, 1.0, 2);
  RandomSearchOptions opts;
  opts.max_samples = 3;  // tiny budget: the warm start must carry it
  const auto result = random_search(ev, platform::ConfigGrid{}, opts);
  EXPECT_TRUE(result.found_feasible);
}

TEST(RandomSearch, ProbesStayOnTheGrid) {
  const platform::Workflow wf = pair();
  const platform::Executor ex;
  const platform::ConfigGrid grid;
  search::Evaluator ev(wf, ex, 100.0, 1.0, 3);
  const auto result = random_search(ev, grid);
  for (const auto& s : result.trace.samples()) {
    for (const auto& rc : s.config) EXPECT_TRUE(grid.contains(rc));
  }
}

TEST(RandomSearch, BestConfigIsCheapestSafeProbe) {
  const platform::Workflow wf = pair();
  const platform::Executor ex;
  search::Evaluator ev(wf, ex, 100.0, 1.0, 4);
  RandomSearchOptions opts;
  const auto result = random_search(ev, platform::ConfigGrid{}, opts);
  ASSERT_TRUE(result.found_feasible);
  const double safe = 100.0 * (1.0 - opts.slo_margin);
  double best = std::numeric_limits<double>::infinity();
  for (const auto& s : result.trace.samples()) {
    if (!s.failed && s.makespan <= safe) best = std::min(best, s.cost);
  }
  // The returned config must be the argmin (compare by re-finding it).
  bool found = false;
  for (const auto& s : result.trace.samples()) {
    if (s.cost == best && s.config == result.best_config) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(RandomSearch, DeterministicForSeed) {
  const platform::Workflow wf = pair();
  const platform::Executor ex;
  search::Evaluator ev1(wf, ex, 100.0, 1.0, 5);
  search::Evaluator ev2(wf, ex, 100.0, 1.0, 5);
  const auto a = random_search(ev1, platform::ConfigGrid{});
  const auto b = random_search(ev2, platform::ConfigGrid{});
  ASSERT_EQ(a.samples(), b.samples());
  for (std::size_t i = 0; i < a.samples(); ++i) {
    EXPECT_EQ(a.trace.samples()[i].config, b.trace.samples()[i].config);
  }
}

TEST(RandomSearch, RejectsBadOptions) {
  const platform::Workflow wf = pair();
  const platform::Executor ex;
  search::Evaluator ev(wf, ex, 100.0, 1.0, 6);
  RandomSearchOptions opts;
  opts.max_samples = 0;
  EXPECT_THROW(random_search(ev, platform::ConfigGrid{}, opts),
               support::ContractViolation);
}

}  // namespace
}  // namespace aarc::baselines
