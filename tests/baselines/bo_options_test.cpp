// Coverage of the BO baseline's option surface: warm start, kernel choice,
// lengthscale refitting, penalty shaping, and margin behaviour.
#include <gtest/gtest.h>

#include "baselines/bo/bo_optimizer.h"
#include "perf/analytic.h"
#include "platform/executor.h"

namespace aarc::baselines {
namespace {

std::unique_ptr<perf::PerfModel> fn(double serial) {
  perf::AnalyticParams p;
  p.io_seconds = 1.0;
  p.serial_seconds = serial;
  p.working_set_mb = 400.0;
  p.min_memory_mb = 192.0;
  p.pressure_coeff = 2.0;
  return std::make_unique<perf::AnalyticModel>(p);
}

platform::Workflow pair() {
  platform::Workflow wf("pair");
  wf.add_function("a", fn(8.0));
  wf.add_function("b", fn(6.0));
  wf.add_edge("a", "b");
  return wf;
}

BoOptions quick() {
  BoOptions opts;
  opts.max_samples = 24;
  opts.init_samples = 6;
  opts.candidate_pool = 64;
  opts.local_candidates = 8;
  return opts;
}

TEST(BoOptions, WarmStartProbesTheBaseFirst) {
  const platform::Workflow wf = pair();
  const platform::Executor ex;
  const platform::ConfigGrid grid;
  search::Evaluator ev(wf, ex, 100.0, 1.0, 1);
  (void)bayesian_optimization(ev, grid, quick());
  const auto& first = ev.trace().samples().front().config;
  for (const auto& rc : first) EXPECT_EQ(rc, grid.max_config());
}

TEST(BoOptions, WarmStartCanBeDisabled) {
  const platform::Workflow wf = pair();
  const platform::Executor ex;
  const platform::ConfigGrid grid;
  BoOptions opts = quick();
  opts.warm_start_with_base = false;
  opts.seed = 3;
  search::Evaluator ev(wf, ex, 100.0, 1.0, 1);
  (void)bayesian_optimization(ev, grid, opts);
  // With LHS-only init the first probe is (almost surely) not the maximum.
  const auto& first = ev.trace().samples().front().config;
  bool all_max = true;
  for (const auto& rc : first) all_max = all_max && rc == grid.max_config();
  EXPECT_FALSE(all_max);
}

TEST(BoOptions, KernelChoiceChangesTheSearchPath) {
  const platform::Workflow wf = pair();
  const platform::Executor ex;
  BoOptions matern = quick();
  BoOptions rbf = quick();
  rbf.kernel = KernelChoice::Rbf;
  search::Evaluator ev1(wf, ex, 100.0, 1.0, 5);
  search::Evaluator ev2(wf, ex, 100.0, 1.0, 5);
  const auto a = bayesian_optimization(ev1, platform::ConfigGrid{}, matern);
  const auto b = bayesian_optimization(ev2, platform::ConfigGrid{}, rbf);
  // Same seeds and init; the model-guided phases should diverge somewhere.
  bool diverged = false;
  for (std::size_t i = 0; i < a.samples(); ++i) {
    if (!(a.trace.samples()[i].config == b.trace.samples()[i].config)) diverged = true;
  }
  EXPECT_TRUE(diverged);
}

TEST(BoOptions, LengthscaleRefitCanBeDisabled) {
  const platform::Workflow wf = pair();
  const platform::Executor ex;
  BoOptions opts = quick();
  opts.lengthscale_every = 0;
  search::Evaluator ev(wf, ex, 100.0, 1.0, 7);
  const auto result = bayesian_optimization(ev, platform::ConfigGrid{}, opts);
  EXPECT_EQ(result.samples(), opts.max_samples);
  EXPECT_TRUE(result.found_feasible);
}

TEST(BoOptions, MarginSelectsSaferConfigs) {
  const platform::Workflow wf = pair();  // ~16 s at 1 vCPU
  const platform::Executor ex;
  const double slo = 30.0;
  BoOptions tight = quick();
  tight.slo_margin = 0.2;
  search::Evaluator ev(wf, ex, slo, 1.0, 9);
  const auto result = bayesian_optimization(ev, platform::ConfigGrid{}, tight);
  ASSERT_TRUE(result.found_feasible);
  // The selected config's observed makespan sat within the margin.
  bool found = false;
  for (const auto& s : result.trace.samples()) {
    if (s.config == result.best_config && !s.failed && s.makespan <= slo * 0.8 + 1e-9) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(BoOptions, OomPenaltyKeepsSearchAlive) {
  // A workflow with a high OOM floor: many random probes fail, yet BO must
  // finish its budget and return something feasible (via the warm start).
  perf::AnalyticParams p;
  p.serial_seconds = 5.0;
  p.working_set_mb = 8192.0;
  p.min_memory_mb = 8192.0;
  platform::Workflow wf("oomy");
  wf.add_function("big", std::make_unique<perf::AnalyticModel>(p));
  wf.add_function("big2", std::make_unique<perf::AnalyticModel>(p));
  wf.add_edge("big", "big2");

  const platform::Executor ex;
  search::Evaluator ev(wf, ex, 100.0, 1.0, 11);
  const auto result = bayesian_optimization(ev, platform::ConfigGrid{}, quick());
  EXPECT_EQ(result.samples(), quick().max_samples);
  ASSERT_TRUE(result.found_feasible);
  for (const auto& rc : result.best_config) EXPECT_GE(rc.memory_mb, 8192.0);
}

}  // namespace
}  // namespace aarc::baselines
