#include "baselines/bo/kernel.h"

#include <gtest/gtest.h>

#include <cmath>

#include "support/contracts.h"

namespace aarc::baselines {
namespace {

TEST(RbfKernel, UnitAtZeroDistance) {
  const RbfKernel k(2.0, 0.5);
  EXPECT_DOUBLE_EQ(k({0.3, 0.7}, {0.3, 0.7}), 2.0);
}

TEST(RbfKernel, KnownValue) {
  const RbfKernel k(1.0, 1.0);
  // r^2 = 1 -> exp(-0.5).
  EXPECT_NEAR(k({0.0}, {1.0}), std::exp(-0.5), 1e-12);
}

TEST(RbfKernel, DecaysWithDistance) {
  const RbfKernel k(1.0, 0.3);
  const std::vector<double> origin{0.0, 0.0};
  double prev = k(origin, origin);
  for (double d = 0.1; d <= 1.0; d += 0.1) {
    const double v = k(origin, {d, 0.0});
    EXPECT_LT(v, prev);
    prev = v;
  }
}

TEST(RbfKernel, IsSymmetric) {
  const RbfKernel k(1.5, 0.4);
  EXPECT_DOUBLE_EQ(k({0.1, 0.9}, {0.8, 0.2}), k({0.8, 0.2}, {0.1, 0.9}));
}

TEST(RbfKernel, RejectsBadHyperparams) {
  EXPECT_THROW(RbfKernel(0.0, 1.0), support::ContractViolation);
  EXPECT_THROW(RbfKernel(1.0, 0.0), support::ContractViolation);
}

TEST(RbfKernel, RejectsDimensionMismatch) {
  const RbfKernel k(1.0, 1.0);
  EXPECT_THROW(k({1.0}, {1.0, 2.0}), support::ContractViolation);
}

TEST(RbfKernel, LengthscaleRebuild) {
  const RbfKernel k(1.0, 0.2);
  const auto wider = k.with_lengthscale(0.8);
  EXPECT_DOUBLE_EQ(wider->lengthscale(), 0.8);
  // Wider lengthscale -> higher correlation at the same distance.
  EXPECT_GT((*wider)({0.0}, {0.5}), k({0.0}, {0.5}));
}

TEST(Matern52Kernel, UnitAtZeroDistance) {
  const Matern52Kernel k(3.0, 0.5);
  EXPECT_DOUBLE_EQ(k({0.1}, {0.1}), 3.0);
}

TEST(Matern52Kernel, KnownValue) {
  const Matern52Kernel k(1.0, 1.0);
  const double r = 1.0;
  const double s = std::sqrt(5.0) * r;
  EXPECT_NEAR(k({0.0}, {1.0}), (1.0 + s + s * s / 3.0) * std::exp(-s), 1e-12);
}

TEST(Matern52Kernel, DecaysMonotonically) {
  const Matern52Kernel k(1.0, 0.3);
  double prev = k({0.0}, {0.0});
  for (double d = 0.1; d <= 2.0; d += 0.1) {
    const double v = k({0.0}, {d});
    EXPECT_LT(v, prev);
    prev = v;
  }
}

TEST(Matern52Kernel, HeavierTailsThanRbf) {
  // At large distance the Matern kernel keeps more correlation than RBF.
  const Matern52Kernel matern(1.0, 0.2);
  const RbfKernel rbf(1.0, 0.2);
  EXPECT_GT(matern({0.0}, {1.0}), rbf({0.0}, {1.0}));
}

TEST(Matern52Kernel, CloneIsEquivalent) {
  const Matern52Kernel k(1.0, 0.4);
  const auto c = k.clone();
  EXPECT_DOUBLE_EQ((*c)({0.2, 0.3}, {0.7, 0.1}), k({0.2, 0.3}, {0.7, 0.1}));
}

}  // namespace
}  // namespace aarc::baselines
