#include "baselines/bo/lhs.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "support/contracts.h"

namespace aarc::baselines {
namespace {

TEST(LatinHypercube, ShapeIsCorrect) {
  support::Rng rng(1);
  const auto pts = latin_hypercube(8, 3, rng);
  ASSERT_EQ(pts.size(), 8u);
  for (const auto& p : pts) EXPECT_EQ(p.size(), 3u);
}

TEST(LatinHypercube, PointsInUnitCube) {
  support::Rng rng(2);
  for (const auto& p : latin_hypercube(20, 5, rng)) {
    for (double v : p) {
      EXPECT_GE(v, 0.0);
      EXPECT_LT(v, 1.0);
    }
  }
}

TEST(LatinHypercube, OnePointPerStratumPerDimension) {
  support::Rng rng(3);
  const std::size_t n = 10;
  const auto pts = latin_hypercube(n, 2, rng);
  for (std::size_t d = 0; d < 2; ++d) {
    std::vector<bool> stratum_hit(n, false);
    for (const auto& p : pts) {
      const auto s = static_cast<std::size_t>(p[d] * static_cast<double>(n));
      EXPECT_FALSE(stratum_hit[s]) << "two points in stratum " << s;
      stratum_hit[s] = true;
    }
    EXPECT_TRUE(std::all_of(stratum_hit.begin(), stratum_hit.end(), [](bool b) { return b; }));
  }
}

TEST(LatinHypercube, DeterministicForSeed) {
  support::Rng a(4);
  support::Rng b(4);
  EXPECT_EQ(latin_hypercube(5, 2, a), latin_hypercube(5, 2, b));
}

TEST(LatinHypercube, DifferentSeedsDiffer) {
  support::Rng a(4);
  support::Rng b(5);
  EXPECT_NE(latin_hypercube(5, 2, a), latin_hypercube(5, 2, b));
}

TEST(LatinHypercube, RejectsDegenerateArguments) {
  support::Rng rng(6);
  EXPECT_THROW(latin_hypercube(0, 2, rng), support::ContractViolation);
  EXPECT_THROW(latin_hypercube(2, 0, rng), support::ContractViolation);
}

TEST(LatinHypercube, SinglePointIsAnywhereInCube) {
  support::Rng rng(7);
  const auto pts = latin_hypercube(1, 4, rng);
  ASSERT_EQ(pts.size(), 1u);
}

}  // namespace
}  // namespace aarc::baselines
