#include "baselines/bo/acquisition.h"

#include <gtest/gtest.h>

#include <cmath>

namespace aarc::baselines {
namespace {

TEST(NormalFunctions, PdfPeakAtZero) {
  EXPECT_NEAR(normal_pdf(0.0), 1.0 / std::sqrt(2.0 * 3.14159265358979), 1e-6);
  EXPECT_GT(normal_pdf(0.0), normal_pdf(1.0));
  EXPECT_DOUBLE_EQ(normal_pdf(2.0), normal_pdf(-2.0));
}

TEST(NormalFunctions, CdfKnownValues) {
  EXPECT_DOUBLE_EQ(normal_cdf(0.0), 0.5);
  EXPECT_NEAR(normal_cdf(1.96), 0.975, 1e-3);
  EXPECT_NEAR(normal_cdf(-1.96), 0.025, 1e-3);
  EXPECT_NEAR(normal_cdf(5.0), 1.0, 1e-6);
}

TEST(ExpectedImprovement, ZeroVarianceBelowBest) {
  // Deterministic prediction below best: improvement is exact.
  GpPrediction p{3.0, 0.0};
  EXPECT_DOUBLE_EQ(expected_improvement(p, 5.0), 2.0);
}

TEST(ExpectedImprovement, ZeroVarianceAboveBest) {
  GpPrediction p{7.0, 0.0};
  EXPECT_DOUBLE_EQ(expected_improvement(p, 5.0), 0.0);
}

TEST(ExpectedImprovement, AlwaysNonNegative) {
  for (double mean : {-2.0, 0.0, 3.0, 10.0}) {
    for (double var : {0.0, 0.5, 4.0}) {
      EXPECT_GE(expected_improvement({mean, var}, 1.0), 0.0);
    }
  }
}

TEST(ExpectedImprovement, GrowsWithUncertaintyAtEqualMean) {
  // Mean equals best: only uncertainty creates improvement potential.
  const double lo = expected_improvement({5.0, 0.01}, 5.0);
  const double hi = expected_improvement({5.0, 1.0}, 5.0);
  EXPECT_GT(hi, lo);
}

TEST(ExpectedImprovement, PrefersLowerMeanAtEqualVariance) {
  const double better = expected_improvement({2.0, 1.0}, 5.0);
  const double worse = expected_improvement({4.0, 1.0}, 5.0);
  EXPECT_GT(better, worse);
}

TEST(ExpectedImprovement, XiShrinksGreedyImprovement) {
  const double plain = expected_improvement({3.0, 0.25}, 5.0, 0.0);
  const double explored = expected_improvement({3.0, 0.25}, 5.0, 1.0);
  EXPECT_GT(plain, explored);
}

TEST(ExpectedImprovement, MatchesClosedFormAtKnownPoint) {
  // mu=0, sigma=1, best=0: EI = phi(0) = 1/sqrt(2 pi).
  EXPECT_NEAR(expected_improvement({0.0, 1.0}, 0.0), normal_pdf(0.0), 1e-12);
}

TEST(Lcb, HigherVarianceScoresBetter) {
  const double certain = negative_lower_confidence_bound({5.0, 0.0}, 2.0);
  const double uncertain = negative_lower_confidence_bound({5.0, 4.0}, 2.0);
  EXPECT_GT(uncertain, certain);
}

TEST(Lcb, LowerMeanScoresBetter) {
  EXPECT_GT(negative_lower_confidence_bound({1.0, 1.0}),
            negative_lower_confidence_bound({3.0, 1.0}));
}

}  // namespace
}  // namespace aarc::baselines
