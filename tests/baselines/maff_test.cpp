#include "baselines/maff/maff.h"

#include <gtest/gtest.h>

#include "perf/analytic.h"
#include "platform/executor.h"
#include "support/contracts.h"

namespace aarc::baselines {
namespace {

std::unique_ptr<perf::PerfModel> fn(double serial, double parallel, double max_par) {
  perf::AnalyticParams p;
  p.io_seconds = 1.0;
  p.serial_seconds = serial;
  p.parallel_seconds = parallel;
  p.max_parallelism = max_par;
  p.working_set_mb = 400.0;
  p.min_memory_mb = 192.0;
  p.pressure_coeff = 3.0;
  return std::make_unique<perf::AnalyticModel>(p);
}

platform::Workflow pair() {
  platform::Workflow wf("pair");
  wf.add_function("a", fn(6.0, 0.0, 1.0));
  wf.add_function("b", fn(4.0, 16.0, 4.0));
  wf.add_edge("a", "b");
  return wf;
}

TEST(Maff, EveryProbeIsOnTheCouplingDiagonal) {
  const platform::Workflow wf = pair();
  const platform::Executor ex;
  const platform::ConfigGrid grid;
  search::Evaluator ev(wf, ex, 100.0, 1.0, 1);
  const auto result = maff_gradient_descent(ev, grid);
  for (const auto& s : result.trace.samples()) {
    for (const auto& rc : s.config) {
      EXPECT_DOUBLE_EQ(rc.vcpu, grid.coupled_vcpu_for_memory(rc.memory_mb))
          << platform::to_string(rc);
    }
  }
}

TEST(Maff, FindsAFeasibleCheaperConfig) {
  const platform::Workflow wf = pair();
  const platform::Executor ex;
  const platform::ConfigGrid grid;
  search::Evaluator ev(wf, ex, 100.0, 1.0, 2);
  const auto result = maff_gradient_descent(ev, grid);
  ASSERT_TRUE(result.found_feasible);
  const double start_cost = result.trace.samples().front().cost;
  const auto idx = result.trace.best_feasible_index();
  ASSERT_TRUE(idx.has_value());
  EXPECT_LT(result.trace.samples()[*idx].cost, start_cost);
}

TEST(Maff, MemoryOnlyDecreases) {
  const platform::Workflow wf = pair();
  const platform::Executor ex;
  search::Evaluator ev(wf, ex, 100.0, 1.0, 3);
  const auto result = maff_gradient_descent(ev, platform::ConfigGrid{});
  for (const auto& s : result.trace.samples()) {
    for (const auto& rc : s.config) EXPECT_LE(rc.memory_mb, 10240.0);
  }
  // The final best config is below the starting point on every function.
  ASSERT_TRUE(result.found_feasible);
  for (const auto& rc : result.best_config) EXPECT_LT(rc.memory_mb, 10240.0);
}

TEST(Maff, RespectsSampleCap) {
  const platform::Workflow wf = pair();
  const platform::Executor ex;
  MaffOptions opts;
  opts.max_samples = 5;
  search::Evaluator ev(wf, ex, 100.0, 1.0, 4);
  const auto result = maff_gradient_descent(ev, platform::ConfigGrid{}, opts);
  EXPECT_LE(result.samples(), 5u);
}

TEST(Maff, UsesFewSamplesOverall) {
  // MAFF's coupled knob keeps the search space tiny (Fig. 5's story).
  const platform::Workflow wf = pair();
  const platform::Executor ex;
  search::Evaluator ev(wf, ex, 100.0, 1.0, 5);
  const auto result = maff_gradient_descent(ev, platform::ConfigGrid{});
  EXPECT_LE(result.samples(), 40u);
}

TEST(Maff, InfeasibleStartTerminatesQuickly) {
  const platform::Workflow wf = pair();
  const platform::Executor ex;
  search::Evaluator ev(wf, ex, 0.5, 1.0, 6);  // impossible SLO
  const auto result = maff_gradient_descent(ev, platform::ConfigGrid{});
  EXPECT_FALSE(result.found_feasible);
  EXPECT_LE(result.samples(), 2u);
}

TEST(Maff, SloViolationTerminatesTheFunctionDescent) {
  // Tight-but-feasible SLO: descent must stop above the violating memory.
  const platform::Workflow wf = pair();
  const platform::Executor ex;
  const double slo = 20.0;  // base makespan ~16 at 10 vCPU
  search::Evaluator ev(wf, ex, slo, 1.0, 7);
  const auto result = maff_gradient_descent(ev, platform::ConfigGrid{});
  ASSERT_TRUE(result.found_feasible);
  EXPECT_LE(ex.execute_mean(wf, result.best_config).makespan, slo * 1.05);
}

TEST(Maff, DeterministicForSeed) {
  const platform::Workflow wf = pair();
  const platform::Executor ex;
  search::Evaluator ev1(wf, ex, 100.0, 1.0, 8);
  search::Evaluator ev2(wf, ex, 100.0, 1.0, 8);
  const auto r1 = maff_gradient_descent(ev1, platform::ConfigGrid{});
  const auto r2 = maff_gradient_descent(ev2, platform::ConfigGrid{});
  ASSERT_EQ(r1.samples(), r2.samples());
  for (std::size_t i = 0; i < r1.samples(); ++i) {
    EXPECT_EQ(r1.trace.samples()[i].config, r2.trace.samples()[i].config);
  }
}

TEST(Maff, RejectsBadOptions) {
  const platform::Workflow wf = pair();
  const platform::Executor ex;
  search::Evaluator ev(wf, ex, 100.0, 1.0, 9);
  MaffOptions opts;
  opts.mb_per_vcpu = 0.0;
  EXPECT_THROW(maff_gradient_descent(ev, platform::ConfigGrid{}, opts),
               support::ContractViolation);
  opts = MaffOptions{};
  opts.initial_step_mb = 32.0;  // below min step
  EXPECT_THROW(maff_gradient_descent(ev, platform::ConfigGrid{}, opts),
               support::ContractViolation);
}

TEST(Maff, CustomCouplingRatioRespected) {
  const platform::Workflow wf = pair();
  const platform::Executor ex;
  const platform::ConfigGrid grid;
  MaffOptions opts;
  opts.mb_per_vcpu = 2048.0;
  search::Evaluator ev(wf, ex, 100.0, 1.0, 10);
  const auto result = maff_gradient_descent(ev, grid, opts);
  for (const auto& s : result.trace.samples()) {
    for (const auto& rc : s.config) {
      EXPECT_DOUBLE_EQ(rc.vcpu, grid.coupled_vcpu_for_memory(rc.memory_mb, 2048.0));
    }
  }
}

}  // namespace
}  // namespace aarc::baselines
