#include "baselines/bo/gp.h"

#include <gtest/gtest.h>

#include <cmath>

#include "support/contracts.h"

namespace aarc::baselines {
namespace {

GaussianProcess make_gp(double noise = 1e-6) {
  return GaussianProcess(std::make_unique<RbfKernel>(1.0, 0.3), noise);
}

TEST(GaussianProcess, RequiresKernel) {
  EXPECT_THROW(GaussianProcess(nullptr), support::ContractViolation);
}

TEST(GaussianProcess, RequiresPositiveNoise) {
  EXPECT_THROW(GaussianProcess(std::make_unique<RbfKernel>(1.0, 0.3), 0.0),
               support::ContractViolation);
}

TEST(GaussianProcess, PredictBeforeFitThrows) {
  const GaussianProcess gp = make_gp();
  EXPECT_THROW(gp.predict({0.5}), support::ContractViolation);
}

TEST(GaussianProcess, FitRejectsInconsistentShapes) {
  GaussianProcess gp = make_gp();
  EXPECT_THROW(gp.fit({{0.1}, {0.2, 0.3}}, {1.0, 2.0}), support::ContractViolation);
  EXPECT_THROW(gp.fit({{0.1}}, {1.0, 2.0}), support::ContractViolation);
  EXPECT_THROW(gp.fit({}, {}), support::ContractViolation);
}

TEST(GaussianProcess, InterpolatesTrainingPoints) {
  GaussianProcess gp = make_gp();
  const std::vector<std::vector<double>> x{{0.0}, {0.5}, {1.0}};
  const std::vector<double> y{1.0, 3.0, 2.0};
  gp.fit(x, y);
  for (std::size_t i = 0; i < x.size(); ++i) {
    const auto p = gp.predict(x[i]);
    EXPECT_NEAR(p.mean, y[i], 1e-3);
    EXPECT_LT(p.variance, 1e-3);
  }
}

TEST(GaussianProcess, UncertaintyGrowsAwayFromData) {
  GaussianProcess gp = make_gp();
  gp.fit({{0.0}, {0.2}}, {1.0, 2.0});
  const double var_near = gp.predict({0.1}).variance;
  const double var_far = gp.predict({3.0}).variance;
  EXPECT_GT(var_far, var_near);
}

TEST(GaussianProcess, FarFromDataRevertsToPriorMean) {
  GaussianProcess gp = make_gp();
  gp.fit({{0.0}, {0.1}}, {10.0, 12.0});
  // Standardized prior mean 0 maps back to the target mean (11).
  EXPECT_NEAR(gp.predict({50.0}).mean, 11.0, 0.1);
}

TEST(GaussianProcess, VarianceIsNeverNegative) {
  GaussianProcess gp = make_gp(1e-4);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 30; ++i) {
    x.push_back({i / 30.0});
    y.push_back(std::sin(i / 5.0));
  }
  gp.fit(x, y);
  for (double q = -0.5; q <= 1.5; q += 0.05) {
    EXPECT_GE(gp.predict({q}).variance, 0.0);
  }
}

TEST(GaussianProcess, ConstantTargetsHandled) {
  // Degenerate y (zero variance) must not divide by zero.
  GaussianProcess gp = make_gp();
  gp.fit({{0.0}, {0.5}, {1.0}}, {4.0, 4.0, 4.0});
  EXPECT_NEAR(gp.predict({0.25}).mean, 4.0, 1e-6);
}

TEST(GaussianProcess, PredictRejectsWrongDimension) {
  GaussianProcess gp = make_gp();
  gp.fit({{0.0, 0.0}}, {1.0});
  EXPECT_THROW(gp.predict({0.5}), support::ContractViolation);
}

TEST(GaussianProcess, LogMarginalLikelihoodPrefersTrueLengthscale) {
  // Data sampled from a smooth function: a mid lengthscale should beat a
  // tiny one on marginal likelihood.
  GaussianProcess smooth(std::make_unique<RbfKernel>(1.0, 0.3), 1e-4);
  GaussianProcess wiggly(std::make_unique<RbfKernel>(1.0, 0.01), 1e-4);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i <= 20; ++i) {
    x.push_back({i / 20.0});
    y.push_back(std::sin(3.0 * i / 20.0));
  }
  smooth.fit(x, y);
  wiggly.fit(x, y);
  EXPECT_GT(smooth.log_marginal_likelihood(), wiggly.log_marginal_likelihood());
}

TEST(GaussianProcess, SelectLengthscalePicksBestCandidate) {
  GaussianProcess gp(std::make_unique<RbfKernel>(1.0, 0.01), 1e-4);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i <= 20; ++i) {
    x.push_back({i / 20.0});
    y.push_back(std::sin(3.0 * i / 20.0));
  }
  gp.fit(x, y);
  const double before = gp.log_marginal_likelihood();
  gp.select_lengthscale({0.01, 0.1, 0.3, 0.8});
  EXPECT_GE(gp.log_marginal_likelihood(), before - 1e-9);
}

TEST(GaussianProcess, WorksWithMatern) {
  GaussianProcess gp(std::make_unique<Matern52Kernel>(1.0, 0.3), 1e-6);
  gp.fit({{0.0}, {1.0}}, {0.0, 1.0});
  EXPECT_NEAR(gp.predict({0.0}).mean, 0.0, 1e-3);
  EXPECT_NEAR(gp.predict({1.0}).mean, 1.0, 1e-3);
}

}  // namespace
}  // namespace aarc::baselines
