#include "baselines/bo/bo_optimizer.h"

#include <gtest/gtest.h>

#include "perf/analytic.h"
#include "platform/executor.h"
#include "support/contracts.h"

namespace aarc::baselines {
namespace {

std::unique_ptr<perf::PerfModel> fn(double serial) {
  perf::AnalyticParams p;
  p.io_seconds = 1.0;
  p.serial_seconds = serial;
  p.max_parallelism = 1.0;
  p.working_set_mb = 256.0;
  p.min_memory_mb = 128.0;
  p.pressure_coeff = 2.0;
  return std::make_unique<perf::AnalyticModel>(p);
}

platform::Workflow pair() {
  platform::Workflow wf("pair");
  wf.add_function("a", fn(8.0));
  wf.add_function("b", fn(6.0));
  wf.add_edge("a", "b");
  return wf;
}

BoOptions quick_options() {
  BoOptions opts;
  opts.max_samples = 30;
  opts.init_samples = 6;
  opts.candidate_pool = 64;
  opts.local_candidates = 16;
  return opts;
}

TEST(BayesianOptimization, UsesExactlyMaxSamples) {
  const platform::Workflow wf = pair();
  const platform::Executor ex;
  search::Evaluator ev(wf, ex, 100.0, 1.0, 1);
  const auto result = bayesian_optimization(ev, platform::ConfigGrid{}, quick_options());
  EXPECT_EQ(result.samples(), 30u);
}

TEST(BayesianOptimization, FindsAFeasibleConfig) {
  const platform::Workflow wf = pair();
  const platform::Executor ex;
  search::Evaluator ev(wf, ex, 100.0, 1.0, 1);
  const auto result = bayesian_optimization(ev, platform::ConfigGrid{}, quick_options());
  ASSERT_TRUE(result.found_feasible);
  ASSERT_EQ(result.best_config.size(), 2u);
  EXPECT_FALSE(ex.execute_mean(wf, result.best_config).failed);
  EXPECT_LE(ex.execute_mean(wf, result.best_config).makespan, 100.0 * 1.05);
}

TEST(BayesianOptimization, BestConfigBeatsWorstFeasibleProbe) {
  const platform::Workflow wf = pair();
  const platform::Executor ex;
  search::Evaluator ev(wf, ex, 100.0, 1.0, 1);
  const auto result = bayesian_optimization(ev, platform::ConfigGrid{}, quick_options());
  double worst = 0.0;
  double best = 1e18;
  for (const auto& s : result.trace.samples()) {
    if (!s.feasible) continue;
    worst = std::max(worst, s.cost);
    best = std::min(best, s.cost);
  }
  EXPECT_LT(best, worst);
  const auto idx = result.trace.best_feasible_index();
  ASSERT_TRUE(idx.has_value());
  EXPECT_DOUBLE_EQ(result.trace.samples()[*idx].cost, best);
}

TEST(BayesianOptimization, ProbesStayOnTheGrid) {
  const platform::Workflow wf = pair();
  const platform::Executor ex;
  const platform::ConfigGrid grid;
  search::Evaluator ev(wf, ex, 100.0, 1.0, 2);
  const auto result = bayesian_optimization(ev, grid, quick_options());
  for (const auto& s : result.trace.samples()) {
    for (const auto& rc : s.config) EXPECT_TRUE(grid.contains(rc));
  }
}

TEST(BayesianOptimization, DeterministicForSeeds) {
  const platform::Workflow wf = pair();
  const platform::Executor ex;
  search::Evaluator ev1(wf, ex, 100.0, 1.0, 3);
  search::Evaluator ev2(wf, ex, 100.0, 1.0, 3);
  const auto r1 = bayesian_optimization(ev1, platform::ConfigGrid{}, quick_options());
  const auto r2 = bayesian_optimization(ev2, platform::ConfigGrid{}, quick_options());
  ASSERT_EQ(r1.samples(), r2.samples());
  for (std::size_t i = 0; i < r1.samples(); ++i) {
    EXPECT_EQ(r1.trace.samples()[i].config, r2.trace.samples()[i].config);
  }
}

TEST(BayesianOptimization, TightSloYieldsNoFeasibleConfig) {
  const platform::Workflow wf = pair();
  const platform::Executor ex;
  search::Evaluator ev(wf, ex, 0.5, 1.0, 4);  // impossible SLO
  const auto result = bayesian_optimization(ev, platform::ConfigGrid{}, quick_options());
  EXPECT_FALSE(result.found_feasible);
  EXPECT_TRUE(result.best_config.empty());
}

TEST(BayesianOptimization, RejectsBadOptions) {
  const platform::Workflow wf = pair();
  const platform::Executor ex;
  search::Evaluator ev(wf, ex, 100.0, 1.0, 5);
  BoOptions opts = quick_options();
  opts.init_samples = 40;  // > max_samples
  EXPECT_THROW(bayesian_optimization(ev, platform::ConfigGrid{}, opts),
               support::ContractViolation);
  opts = quick_options();
  opts.init_samples = 1;
  EXPECT_THROW(bayesian_optimization(ev, platform::ConfigGrid{}, opts),
               support::ContractViolation);
}

TEST(BayesianOptimization, RbfKernelVariantRuns) {
  const platform::Workflow wf = pair();
  const platform::Executor ex;
  search::Evaluator ev(wf, ex, 100.0, 1.0, 6);
  BoOptions opts = quick_options();
  opts.kernel = KernelChoice::Rbf;
  const auto result = bayesian_optimization(ev, platform::ConfigGrid{}, opts);
  EXPECT_EQ(result.samples(), opts.max_samples);
}

TEST(BayesianOptimization, ImprovesOverInitialDesign) {
  // The model-guided phase should find something at least as cheap as the
  // best random initial sample (almost surely strictly cheaper).
  const platform::Workflow wf = pair();
  const platform::Executor ex;
  BoOptions opts = quick_options();
  opts.max_samples = 40;
  search::Evaluator ev(wf, ex, 100.0, 1.0, 7);
  const auto result = bayesian_optimization(ev, platform::ConfigGrid{}, opts);
  double best_init = 1e18;
  for (std::size_t i = 0; i < opts.init_samples; ++i) {
    const auto& s = result.trace.samples()[i];
    if (s.feasible) best_init = std::min(best_init, s.cost);
  }
  const auto idx = result.trace.best_feasible_index();
  ASSERT_TRUE(idx.has_value());
  EXPECT_LE(result.trace.samples()[*idx].cost, best_init);
}

}  // namespace
}  // namespace aarc::baselines
