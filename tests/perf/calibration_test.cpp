#include "perf/calibration.h"

#include <gtest/gtest.h>

#include <cmath>

#include "support/contracts.h"

namespace aarc::perf {
namespace {

/// Samples drawn from a known analytic surface.
std::vector<CalibrationSample> samples_from(const AnalyticModel& truth) {
  std::vector<CalibrationSample> out;
  for (double c : {0.5, 1.0, 2.0, 4.0, 8.0}) {
    for (double m : {512.0, 1024.0, 2048.0, 4096.0}) {
      if (!truth.fits_memory(m, 1.0)) continue;
      out.push_back({c, m, 1.0, truth.mean_runtime(c, m, 1.0)});
    }
  }
  return out;
}

AnalyticModel ground_truth() {
  AnalyticParams p;
  p.io_seconds = 2.0;
  p.serial_seconds = 8.0;
  p.parallel_seconds = 32.0;
  p.max_parallelism = 4.0;
  p.working_set_mb = 1024.0;
  p.min_memory_mb = 256.0;
  p.pressure_coeff = 2.0;
  return AnalyticModel(p);
}

TEST(CalibrationLoss, ZeroOnPerfectParams) {
  const AnalyticModel truth = ground_truth();
  EXPECT_NEAR(calibration_loss(truth.params(), samples_from(truth)), 0.0, 1e-12);
}

TEST(CalibrationLoss, PositiveOnWrongParams) {
  const AnalyticModel truth = ground_truth();
  AnalyticParams wrong = truth.params();
  wrong.serial_seconds *= 3.0;
  EXPECT_GT(calibration_loss(wrong, samples_from(truth)), 0.01);
}

TEST(CalibrationLoss, PenalizesOomViolations) {
  const AnalyticModel truth = ground_truth();
  AnalyticParams oomy = truth.params();
  oomy.min_memory_mb = 4096.0;
  oomy.working_set_mb = 4096.0;
  EXPECT_GT(calibration_loss(oomy, samples_from(truth)),
            calibration_loss(truth.params(), samples_from(truth)));
}

TEST(Calibrate, RecoversSurfaceWithinTolerance) {
  const AnalyticModel truth = ground_truth();
  const auto samples = samples_from(truth);
  CalibrationOptions opts;
  opts.restarts = 6;
  opts.iterations_per_restart = 400;
  const CalibrationResult result = calibrate(samples, opts);

  // The fit must reproduce the observed runtimes well in log space
  // (parameters themselves may be non-identifiable; the surface is what
  // matters to the simulator).
  EXPECT_LT(result.mean_squared_log_error, 0.02);
  const AnalyticModel fitted(result.params);
  for (const auto& s : samples) {
    if (!fitted.fits_memory(s.memory_mb, s.input_scale)) continue;
    const double predicted = fitted.mean_runtime(s.vcpu, s.memory_mb, s.input_scale);
    EXPECT_NEAR(std::log(predicted), std::log(s.runtime_seconds), 0.5);
  }
}

TEST(Calibrate, IsDeterministicForFixedSeed) {
  const AnalyticModel truth = ground_truth();
  const auto samples = samples_from(truth);
  CalibrationOptions opts;
  opts.restarts = 2;
  opts.iterations_per_restart = 50;
  const auto a = calibrate(samples, opts);
  const auto b = calibrate(samples, opts);
  EXPECT_DOUBLE_EQ(a.mean_squared_log_error, b.mean_squared_log_error);
  EXPECT_DOUBLE_EQ(a.params.serial_seconds, b.params.serial_seconds);
}

TEST(Calibrate, CountsEvaluations) {
  const AnalyticModel truth = ground_truth();
  CalibrationOptions opts;
  opts.restarts = 2;
  opts.iterations_per_restart = 50;
  const auto result = calibrate(samples_from(truth), opts);
  EXPECT_EQ(result.evaluations, 2u * (50u + 1u));
}

TEST(Calibrate, RejectsTooFewSamples) {
  std::vector<CalibrationSample> few{{1.0, 512.0, 1.0, 10.0}, {2.0, 512.0, 1.0, 8.0},
                                     {1.0, 1024.0, 1.0, 9.0}};
  EXPECT_THROW(calibrate(few), support::ContractViolation);
}

TEST(Calibrate, RejectsDegenerateSpans) {
  // Four samples but only one cpu value.
  std::vector<CalibrationSample> flat{{1.0, 512.0, 1.0, 10.0},
                                      {1.0, 1024.0, 1.0, 9.0},
                                      {1.0, 2048.0, 1.0, 9.0},
                                      {1.0, 4096.0, 1.0, 9.0}};
  EXPECT_THROW(calibrate(flat), support::ContractViolation);
}

TEST(Calibrate, RejectsNonPositiveSamples) {
  std::vector<CalibrationSample> bad{{1.0, 512.0, 1.0, 10.0},
                                     {2.0, 1024.0, 1.0, 9.0},
                                     {4.0, 2048.0, 1.0, 9.0},
                                     {8.0, 4096.0, 1.0, -1.0}};
  EXPECT_THROW(calibrate(bad), support::ContractViolation);
}

}  // namespace
}  // namespace aarc::perf
