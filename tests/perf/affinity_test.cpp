#include "perf/affinity.h"

#include <gtest/gtest.h>

#include <cmath>

#include "perf/analytic.h"
#include "support/contracts.h"

namespace aarc::perf {
namespace {

AnalyticModel cpu_heavy() {
  AnalyticParams p;
  p.io_seconds = 0.5;
  p.serial_seconds = 2.0;
  p.parallel_seconds = 60.0;
  p.max_parallelism = 8.0;
  p.working_set_mb = 256.0;
  p.min_memory_mb = 128.0;
  p.pressure_coeff = 2.0;
  return AnalyticModel(p);
}

AnalyticModel memory_heavy() {
  AnalyticParams p;
  p.io_seconds = 1.0;
  p.serial_seconds = 10.0;
  p.parallel_seconds = 0.0;
  p.max_parallelism = 1.0;
  p.working_set_mb = 4096.0;
  p.min_memory_mb = 1024.0;
  p.pressure_coeff = 5.0;
  return AnalyticModel(p);
}

AnalyticModel io_heavy() {
  AnalyticParams p;
  p.io_seconds = 20.0;
  p.serial_seconds = 0.5;
  p.parallel_seconds = 0.0;
  p.max_parallelism = 1.0;
  p.working_set_mb = 256.0;
  p.min_memory_mb = 128.0;
  p.pressure_coeff = 1.0;
  return AnalyticModel(p);
}

TEST(Affinity, ClassNames) {
  EXPECT_EQ(to_string(AffinityClass::CpuBound), "cpu-bound");
  EXPECT_EQ(to_string(AffinityClass::MemoryBound), "memory-bound");
  EXPECT_EQ(to_string(AffinityClass::IoBound), "io-bound");
  EXPECT_EQ(to_string(AffinityClass::Balanced), "balanced");
}

TEST(Affinity, ElasticitiesAreNonPositive) {
  const auto m = cpu_heavy();
  const auto e = elasticity(m, 2.0, 1024.0);
  EXPECT_LE(e.cpu, 0.0);
  EXPECT_LE(e.memory, 0.0);
}

TEST(Affinity, CpuHeavyInParallelRegionIsCpuBound) {
  // At 2 vCPU with ample memory, the parallel work dominates: strong CPU
  // elasticity, zero memory elasticity.
  const auto m = cpu_heavy();
  const auto e = elasticity(m, 2.0, 2048.0);
  EXPECT_LT(e.cpu, -0.5);
  EXPECT_NEAR(e.memory, 0.0, 1e-9);
  EXPECT_EQ(affinity_of(m, 2.0, 2048.0), AffinityClass::CpuBound);
}

TEST(Affinity, CpuHeavyBeyondParallelismBecomesIoBound) {
  // Beyond max_parallelism extra cores do nothing: both elasticities ~0.
  const auto m = cpu_heavy();
  EXPECT_EQ(affinity_of(m, 10.0, 2048.0), AffinityClass::IoBound);
}

TEST(Affinity, MemoryPressureRegionIsMemoryBound) {
  // Below the 4096 MB working set the pressure term dominates.
  const auto m = memory_heavy();
  const auto e = elasticity(m, 2.0, 2048.0);
  EXPECT_LT(e.memory, -0.3);
  EXPECT_EQ(affinity_of(m, 2.0, 2048.0), AffinityClass::MemoryBound);
}

TEST(Affinity, AboveWorkingSetMemoryElasticityVanishes) {
  const auto m = memory_heavy();
  const auto e = elasticity(m, 2.0, 8192.0);
  EXPECT_NEAR(e.memory, 0.0, 1e-9);
}

TEST(Affinity, IoFloorDominatedIsIoBound) {
  EXPECT_EQ(affinity_of(io_heavy(), 2.0, 1024.0), AffinityClass::IoBound);
}

TEST(Affinity, SubCoreRegionShowsCpuElasticityNearMinusOne) {
  // Below 1 vCPU everything scales ~1/cpu: elasticity ~ -1.
  AnalyticParams p;
  p.serial_seconds = 30.0;
  p.working_set_mb = 256.0;
  p.min_memory_mb = 128.0;
  const AnalyticModel serial(p);
  const auto e = elasticity(serial, 0.5, 1024.0, 1.0, 0.1);
  EXPECT_NEAR(e.cpu, -1.0, 0.05);
}

TEST(Affinity, ClassifyThresholdsRespected) {
  AffinityThresholds t;
  t.significant = 0.05;
  t.dominance = 3.0;
  EXPECT_EQ(classify({-0.01, -0.01}, t), AffinityClass::IoBound);
  EXPECT_EQ(classify({-0.9, -0.01}, t), AffinityClass::CpuBound);
  EXPECT_EQ(classify({-0.01, -0.9}, t), AffinityClass::MemoryBound);
  EXPECT_EQ(classify({-0.5, -0.4}, t), AffinityClass::Balanced);
  // Both significant but one dominates 3x.
  EXPECT_EQ(classify({-0.9, -0.2}, t), AffinityClass::CpuBound);
}

TEST(Affinity, MemoryProbeRespectsOomFloor) {
  // Operating exactly at the floor: the downward probe is clipped, but the
  // elasticity is still finite and well-defined.
  const auto m = memory_heavy();
  const auto e = elasticity(m, 1.0, 1024.0);
  EXPECT_TRUE(std::isfinite(e.memory));
  EXPECT_LT(e.memory, 0.0);  // pressure region: memory matters
}

TEST(Affinity, RejectsBadArguments) {
  const auto m = cpu_heavy();
  EXPECT_THROW(elasticity(m, 0.0, 1024.0), support::ContractViolation);
  EXPECT_THROW(elasticity(m, 1.0, 1024.0, 1.0, 0.0), support::ContractViolation);
  EXPECT_THROW(elasticity(m, 1.0, 1024.0, 1.0, 1.0), support::ContractViolation);
  EXPECT_THROW(elasticity(m, 1.0, 64.0), support::ContractViolation);  // below floor
}

}  // namespace
}  // namespace aarc::perf
