#include "perf/noise.h"

#include <gtest/gtest.h>

#include "support/contracts.h"
#include "support/statistics.h"

namespace aarc::perf {
namespace {

TEST(Noise, RejectsNegativeSigma) {
  EXPECT_THROW(NoiseModel(-0.01), support::ContractViolation);
}

TEST(Noise, ZeroSigmaIsDeterministic) {
  const NoiseModel noise(0.0);
  support::Rng rng(1);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(noise.noisy_runtime(42.0, rng), 42.0);
  }
}

TEST(Noise, FactorsArePositive) {
  const NoiseModel noise(0.2);
  support::Rng rng(2);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(noise.sample_factor(rng), 0.0);
}

TEST(Noise, MeanIsUnbiased) {
  const NoiseModel noise(0.05);
  support::Rng rng(3);
  support::Accumulator acc;
  for (int i = 0; i < 30000; ++i) acc.add(noise.noisy_runtime(100.0, rng));
  EXPECT_NEAR(acc.mean(), 100.0, 0.3);
}

TEST(Noise, RelativeStdMatchesSigmaApproximately) {
  // For small sigma, a lognormal's relative std ~ sigma (Table II shows
  // ~2-3% run-to-run variation; the default executor uses sigma = 0.03).
  const NoiseModel noise(0.03);
  support::Rng rng(4);
  support::Accumulator acc;
  for (int i = 0; i < 30000; ++i) acc.add(noise.noisy_runtime(1.0, rng));
  EXPECT_NEAR(acc.stddev() / acc.mean(), 0.03, 0.005);
}

TEST(Noise, DeterministicUnderSameSeed) {
  const NoiseModel noise(0.1);
  support::Rng a(5);
  support::Rng b(5);
  for (int i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(noise.noisy_runtime(7.0, a), noise.noisy_runtime(7.0, b));
  }
}

TEST(Noise, RejectsNonPositiveRuntime) {
  const NoiseModel noise(0.1);
  support::Rng rng(6);
  EXPECT_THROW(noise.noisy_runtime(0.0, rng), support::ContractViolation);
}

}  // namespace
}  // namespace aarc::perf
