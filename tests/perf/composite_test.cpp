#include "perf/composite.h"

#include <gtest/gtest.h>

#include "perf/analytic.h"
#include "support/contracts.h"

namespace aarc::perf {
namespace {

std::unique_ptr<PerfModel> stage(double serial, double min_mem, double ws) {
  AnalyticParams p;
  p.io_seconds = 1.0;
  p.serial_seconds = serial;
  p.parallel_seconds = 0.0;
  p.max_parallelism = 1.0;
  p.working_set_mb = ws;
  p.min_memory_mb = min_mem;
  p.pressure_coeff = 0.0;
  return std::make_unique<AnalyticModel>(p);
}

TEST(Composite, RejectsEmptyStageList) {
  EXPECT_THROW(CompositeModel(std::vector<std::unique_ptr<PerfModel>>{}),
               support::ContractViolation);
}

TEST(Composite, RejectsNullStage) {
  std::vector<std::unique_ptr<PerfModel>> stages;
  stages.push_back(nullptr);
  EXPECT_THROW(CompositeModel(std::move(stages)), support::ContractViolation);
}

TEST(Composite, RuntimeIsSumOfStages) {
  std::vector<std::unique_ptr<PerfModel>> stages;
  stages.push_back(stage(5.0, 128.0, 256.0));
  stages.push_back(stage(7.0, 128.0, 256.0));
  const CompositeModel m(std::move(stages));
  EXPECT_EQ(m.stage_count(), 2u);
  // Each stage: 1 io + serial.
  EXPECT_DOUBLE_EQ(m.mean_runtime(1.0, 1024.0, 1.0), (1.0 + 5.0) + (1.0 + 7.0));
}

TEST(Composite, OomFloorIsMaxOfStages) {
  std::vector<std::unique_ptr<PerfModel>> stages;
  stages.push_back(stage(1.0, 128.0, 256.0));
  stages.push_back(stage(1.0, 512.0, 1024.0));
  const CompositeModel m(std::move(stages));
  EXPECT_DOUBLE_EQ(m.min_memory_mb(1.0), 512.0);
  EXPECT_FALSE(m.fits_memory(256.0, 1.0));
  EXPECT_TRUE(m.fits_memory(512.0, 1.0));
}

TEST(Composite, CloneReproducesBehaviour) {
  std::vector<std::unique_ptr<PerfModel>> stages;
  stages.push_back(stage(3.0, 128.0, 256.0));
  const CompositeModel m(std::move(stages));
  const auto c = m.clone();
  EXPECT_DOUBLE_EQ(c->mean_runtime(2.0, 512.0, 2.0), m.mean_runtime(2.0, 512.0, 2.0));
  EXPECT_DOUBLE_EQ(c->min_memory_mb(1.0), m.min_memory_mb(1.0));
}

TEST(Composite, SingleStageEqualsThatStage) {
  const auto lone = stage(9.0, 128.0, 256.0);
  const double expected = lone->mean_runtime(1.0, 512.0, 1.0);
  std::vector<std::unique_ptr<PerfModel>> stages;
  stages.push_back(stage(9.0, 128.0, 256.0));
  const CompositeModel m(std::move(stages));
  EXPECT_DOUBLE_EQ(m.mean_runtime(1.0, 512.0, 1.0), expected);
}

}  // namespace
}  // namespace aarc::perf
