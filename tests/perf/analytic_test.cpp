#include "perf/analytic.h"

#include <gtest/gtest.h>

#include "support/contracts.h"

namespace aarc::perf {
namespace {

using support::ContractViolation;

AnalyticParams base_params() {
  AnalyticParams p;
  p.io_seconds = 2.0;
  p.serial_seconds = 10.0;
  p.parallel_seconds = 40.0;
  p.max_parallelism = 4.0;
  p.working_set_mb = 1024.0;
  p.min_memory_mb = 512.0;
  p.pressure_coeff = 2.0;
  p.input_work_exp = 1.0;
  p.input_memory_exp = 0.5;
  return p;
}

TEST(AnalyticParams, ValidatesGoodParams) { EXPECT_NO_THROW(base_params().validate()); }

TEST(AnalyticParams, RejectsNoWork) {
  AnalyticParams p = base_params();
  p.io_seconds = p.serial_seconds = p.parallel_seconds = 0.0;
  EXPECT_THROW(p.validate(), ContractViolation);
}

TEST(AnalyticParams, RejectsSubUnitParallelism) {
  AnalyticParams p = base_params();
  p.max_parallelism = 0.5;
  EXPECT_THROW(p.validate(), ContractViolation);
}

TEST(AnalyticParams, RejectsFloorAboveWorkingSet) {
  AnalyticParams p = base_params();
  p.min_memory_mb = 2048.0;
  EXPECT_THROW(p.validate(), ContractViolation);
}

TEST(AnalyticModel, BaselinePoint) {
  // 1 vCPU, ample memory, unit scale: io + serial + parallel.
  const AnalyticModel m(base_params());
  EXPECT_DOUBLE_EQ(m.mean_runtime(1.0, 4096.0, 1.0), 2.0 + 10.0 + 40.0);
}

TEST(AnalyticModel, AmdahlSpeedup) {
  const AnalyticModel m(base_params());
  // At 4 cores: serial unchanged, parallel / 4.
  EXPECT_DOUBLE_EQ(m.mean_runtime(4.0, 4096.0, 1.0), 2.0 + 10.0 + 10.0);
  // Beyond max_parallelism: no further speedup.
  EXPECT_DOUBLE_EQ(m.mean_runtime(8.0, 4096.0, 1.0), 2.0 + 10.0 + 10.0);
}

TEST(AnalyticModel, SubCoreThrottlesEverything) {
  const AnalyticModel m(base_params());
  // 0.5 cores: serial/0.5 + parallel/0.5.
  EXPECT_DOUBLE_EQ(m.mean_runtime(0.5, 4096.0, 1.0), 2.0 + 20.0 + 80.0);
}

TEST(AnalyticModel, MemoryPressureBelowWorkingSet) {
  const AnalyticModel m(base_params());
  // At half the working set: factor = 1 + 2*(2-1) = 3 on compute only.
  EXPECT_DOUBLE_EQ(m.mean_runtime(1.0, 512.0, 1.0), 2.0 + 50.0 * 3.0);
}

TEST(AnalyticModel, NoPressureAtOrAboveWorkingSet) {
  const AnalyticModel m(base_params());
  EXPECT_DOUBLE_EQ(m.mean_runtime(1.0, 1024.0, 1.0), m.mean_runtime(1.0, 8192.0, 1.0));
}

TEST(AnalyticModel, OomFloorScalesWithInput) {
  const AnalyticModel m(base_params());
  EXPECT_DOUBLE_EQ(m.min_memory_mb(1.0), 512.0);
  EXPECT_DOUBLE_EQ(m.min_memory_mb(4.0), 1024.0);  // 512 * 4^0.5
  EXPECT_TRUE(m.fits_memory(512.0, 1.0));
  EXPECT_FALSE(m.fits_memory(511.0, 1.0));
  EXPECT_FALSE(m.fits_memory(512.0, 4.0));
}

TEST(AnalyticModel, RuntimeBelowFloorIsAContractViolation) {
  const AnalyticModel m(base_params());
  EXPECT_THROW(m.mean_runtime(1.0, 256.0, 1.0), ContractViolation);
}

TEST(AnalyticModel, InputScaleMultipliesWork) {
  const AnalyticModel m(base_params());
  const double t1 = m.mean_runtime(2.0, 4096.0, 1.0);
  const double t2 = m.mean_runtime(2.0, 4096.0, 2.0);
  EXPECT_DOUBLE_EQ(t2, 2.0 * t1);  // input_work_exp = 1
}

TEST(AnalyticModel, InputScaleGrowsWorkingSet) {
  const AnalyticModel m(base_params());
  // scale 4 -> working set 2048; at 1024 MB the function is now pressured.
  const double unpressured = m.mean_runtime(1.0, 8192.0, 4.0);
  const double pressured = m.mean_runtime(1.0, 1100.0, 4.0);
  EXPECT_GT(pressured, unpressured);
}

TEST(AnalyticModel, RejectsNonPositiveArguments) {
  const AnalyticModel m(base_params());
  EXPECT_THROW(m.mean_runtime(0.0, 1024.0, 1.0), ContractViolation);
  EXPECT_THROW(m.mean_runtime(1.0, 0.0, 1.0), ContractViolation);
  EXPECT_THROW(m.mean_runtime(1.0, 1024.0, 0.0), ContractViolation);
}

TEST(AnalyticModel, CloneIsIndependentAndEqual) {
  const AnalyticModel m(base_params());
  const auto c = m.clone();
  EXPECT_DOUBLE_EQ(c->mean_runtime(2.0, 2048.0, 1.5), m.mean_runtime(2.0, 2048.0, 1.5));
}

/// Monotonicity contract of PerfModel, swept over a grid of points.
class AnalyticMonotonicity : public ::testing::TestWithParam<double> {};

TEST_P(AnalyticMonotonicity, NonIncreasingInCpu) {
  const AnalyticModel m(base_params());
  const double mem = 1024.0 + 512.0 * GetParam();
  double prev = m.mean_runtime(0.2, mem, 1.0);
  for (double c = 0.4; c <= 10.0; c += 0.2) {
    const double t = m.mean_runtime(c, mem, 1.0);
    EXPECT_LE(t, prev + 1e-12);
    prev = t;
  }
}

TEST_P(AnalyticMonotonicity, NonIncreasingInMemory) {
  const AnalyticModel m(base_params());
  const double cpu = 0.5 + GetParam();
  double prev = m.mean_runtime(cpu, 512.0, 1.0);
  for (double mem = 640.0; mem <= 8192.0; mem += 128.0) {
    const double t = m.mean_runtime(cpu, mem, 1.0);
    EXPECT_LE(t, prev + 1e-12);
    prev = t;
  }
}

TEST_P(AnalyticMonotonicity, NonDecreasingInInputScale) {
  const AnalyticModel m(base_params());
  const double cpu = 0.5 + GetParam();
  double prev = m.mean_runtime(cpu, 8192.0, 0.5);
  for (double s = 1.0; s <= 4.0; s += 0.5) {
    const double t = m.mean_runtime(cpu, 8192.0, s);
    EXPECT_GE(t, prev - 1e-12);
    prev = t;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, AnalyticMonotonicity, ::testing::Values(0.0, 1.0, 2.0, 4.0));

}  // namespace
}  // namespace aarc::perf
