#include "perf/profile_table.h"

#include <gtest/gtest.h>

#include "support/contracts.h"

namespace aarc::perf {
namespace {

using support::ContractViolation;

/// 2x2 grid: cpu {1, 2} x mem {512, 1024}.
ProfileTableModel small_table() {
  return ProfileTableModel({1.0, 2.0}, {512.0, 1024.0},
                           {/*c1m512*/ 40.0, /*c1m1024*/ 30.0,
                            /*c2m512*/ 24.0, /*c2m1024*/ 20.0});
}

TEST(ProfileTable, ExactGridPoints) {
  const auto m = small_table();
  EXPECT_DOUBLE_EQ(m.mean_runtime(1.0, 512.0, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(m.mean_runtime(1.0, 1024.0, 1.0), 30.0);
  EXPECT_DOUBLE_EQ(m.mean_runtime(2.0, 512.0, 1.0), 24.0);
  EXPECT_DOUBLE_EQ(m.mean_runtime(2.0, 1024.0, 1.0), 20.0);
}

TEST(ProfileTable, BilinearMidpoint) {
  const auto m = small_table();
  EXPECT_DOUBLE_EQ(m.mean_runtime(1.5, 768.0, 1.0), (40.0 + 30.0 + 24.0 + 20.0) / 4.0);
}

TEST(ProfileTable, LinearAlongOneAxis) {
  const auto m = small_table();
  EXPECT_DOUBLE_EQ(m.mean_runtime(1.0, 768.0, 1.0), 35.0);
  EXPECT_DOUBLE_EQ(m.mean_runtime(1.5, 512.0, 1.0), 32.0);
}

TEST(ProfileTable, ClampsOutsideGrid) {
  const auto m = small_table();
  EXPECT_DOUBLE_EQ(m.mean_runtime(0.5, 512.0, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(m.mean_runtime(4.0, 2048.0, 1.0), 20.0);
}

TEST(ProfileTable, InputScalePowerLaw) {
  const ProfileTableModel m({1.0, 2.0}, {512.0, 1024.0}, {40.0, 30.0, 24.0, 20.0}, 2.0);
  EXPECT_DOUBLE_EQ(m.mean_runtime(1.0, 512.0, 3.0), 40.0 * 9.0);
}

TEST(ProfileTable, MinMemoryIsGridFloor) {
  EXPECT_DOUBLE_EQ(small_table().min_memory_mb(1.0), 512.0);
}

TEST(ProfileTable, CloneBehavesSame) {
  const auto m = small_table();
  const auto c = m.clone();
  EXPECT_DOUBLE_EQ(c->mean_runtime(1.3, 700.0, 1.0), m.mean_runtime(1.3, 700.0, 1.0));
}

TEST(ProfileTable, RejectsBadShapes) {
  EXPECT_THROW(ProfileTableModel({1.0}, {512.0, 1024.0}, {1.0, 2.0}), ContractViolation);
  EXPECT_THROW(ProfileTableModel({1.0, 2.0}, {512.0}, {1.0, 2.0}), ContractViolation);
  EXPECT_THROW(ProfileTableModel({1.0, 2.0}, {512.0, 1024.0}, {1.0, 2.0, 3.0}),
               ContractViolation);
}

TEST(ProfileTable, RejectsUnsortedGrids) {
  EXPECT_THROW(ProfileTableModel({2.0, 1.0}, {512.0, 1024.0}, {1.0, 2.0, 3.0, 4.0}),
               ContractViolation);
  EXPECT_THROW(ProfileTableModel({1.0, 1.0}, {512.0, 1024.0}, {1.0, 2.0, 3.0, 4.0}),
               ContractViolation);
}

TEST(ProfileTable, RejectsNonPositiveRuntimes) {
  EXPECT_THROW(ProfileTableModel({1.0, 2.0}, {512.0, 1024.0}, {1.0, 0.0, 3.0, 4.0}),
               ContractViolation);
}

}  // namespace
}  // namespace aarc::perf
