#include "platform/resource.h"

#include <gtest/gtest.h>

#include "support/contracts.h"

namespace aarc::platform {
namespace {

TEST(ResourceConfig, ToStringFormat) {
  EXPECT_EQ(to_string(ResourceConfig{1.0, 1024.0}), "1.0 vCPU / 1024 MB");
  EXPECT_EQ(to_string(ResourceConfig{0.5, 128.0}), "0.5 vCPU / 128 MB");
}

TEST(ConfigGrid, PaperDefaults) {
  const ConfigGrid grid;
  EXPECT_DOUBLE_EQ(grid.cpu().min(), 0.1);
  EXPECT_DOUBLE_EQ(grid.cpu().max(), 10.0);
  EXPECT_DOUBLE_EQ(grid.cpu().step(), 0.1);
  EXPECT_DOUBLE_EQ(grid.memory().min(), 128.0);
  EXPECT_DOUBLE_EQ(grid.memory().max(), 10240.0);
  EXPECT_DOUBLE_EQ(grid.memory().step(), 64.0);
  EXPECT_EQ(grid.size(), 100u * 159u);
}

TEST(ConfigGrid, SnapBothAxes) {
  const ConfigGrid grid;
  const ResourceConfig snapped = grid.snap({1.234, 1000.0});
  EXPECT_DOUBLE_EQ(snapped.vcpu, 1.2);
  EXPECT_DOUBLE_EQ(snapped.memory_mb, 1024.0);
}

TEST(ConfigGrid, ContainsRequiresBothOnGrid) {
  const ConfigGrid grid;
  EXPECT_TRUE(grid.contains({1.0, 1024.0}));
  EXPECT_FALSE(grid.contains({1.05, 1024.0}));
  EXPECT_FALSE(grid.contains({1.0, 1000.0}));
}

TEST(ConfigGrid, MaxMinConfigs) {
  const ConfigGrid grid;
  EXPECT_EQ(grid.max_config(), (ResourceConfig{10.0, 10240.0}));
  EXPECT_EQ(grid.min_config(), (ResourceConfig{0.1, 128.0}));
}

TEST(ConfigGrid, CoupledVcpuMatchesMaffRule) {
  // 1 core per 1024 MB (Section IV-A(b)).
  const ConfigGrid grid;
  EXPECT_DOUBLE_EQ(grid.coupled_vcpu_for_memory(1024.0), 1.0);
  EXPECT_DOUBLE_EQ(grid.coupled_vcpu_for_memory(2048.0), 2.0);
  EXPECT_DOUBLE_EQ(grid.coupled_vcpu_for_memory(512.0), 0.5);
  // Snaps to the cpu grid and clamps at its bounds.
  EXPECT_DOUBLE_EQ(grid.coupled_vcpu_for_memory(128.0), 0.1);
  EXPECT_DOUBLE_EQ(grid.coupled_vcpu_for_memory(10240.0 * 2), 10.0);
}

TEST(ConfigGrid, CoupledRatioConfigurable) {
  const ConfigGrid grid;
  // AWS's actual ratio is ~1769 MB per vCPU.
  EXPECT_NEAR(grid.coupled_vcpu_for_memory(1769.0, 1769.0), 1.0, 1e-9);
}

TEST(ConfigGrid, CoupledRejectsBadRatio) {
  const ConfigGrid grid;
  EXPECT_THROW(grid.coupled_vcpu_for_memory(1024.0, 0.0), support::ContractViolation);
}

TEST(UniformConfig, ReplicatesEntry) {
  const auto cfg = uniform_config(3, {2.0, 512.0});
  ASSERT_EQ(cfg.size(), 3u);
  for (const auto& rc : cfg) EXPECT_EQ(rc, (ResourceConfig{2.0, 512.0}));
}

TEST(UniformConfig, ZeroNodes) { EXPECT_TRUE(uniform_config(0, {1.0, 128.0}).empty()); }

}  // namespace
}  // namespace aarc::platform
