// Edge-case and cross-check tests for the executor beyond the basics in
// executor_test.cpp: pricing cross-checks, coupled pricing, scale extremes,
// wide fan-outs, and noise statistics at the workflow level.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "perf/analytic.h"
#include "platform/executor.h"
#include "platform/profiler.h"
#include "support/statistics.h"

namespace aarc::platform {
namespace {

std::unique_ptr<perf::PerfModel> fn(double serial, double parallel = 0.0,
                                    double max_par = 1.0) {
  perf::AnalyticParams p;
  p.io_seconds = 0.5;
  p.serial_seconds = serial;
  p.parallel_seconds = parallel;
  p.max_parallelism = max_par;
  p.working_set_mb = 300.0;
  p.min_memory_mb = 160.0;
  p.pressure_coeff = 2.0;
  return std::make_unique<perf::AnalyticModel>(p);
}

Executor noiseless(std::unique_ptr<PricingModel> pricing =
                       std::make_unique<DecoupledLinearPricing>()) {
  ExecutorOptions opts;
  opts.noise = perf::NoiseModel(0.0);
  return Executor(std::move(pricing), opts);
}

TEST(ExecutorEdge, WideFanOutRunsFullyParallel) {
  platform::Workflow wf("wide");
  const auto src = wf.add_function("src", fn(1.0));
  for (int i = 0; i < 16; ++i) {
    const auto b = wf.add_function("b" + std::to_string(i), fn(5.0));
    wf.add_edge(src, b);
  }
  const auto res = noiseless().execute_mean(wf, uniform_config(17, {1.0, 512.0}));
  // All 16 branches overlap: makespan = src + one branch.
  EXPECT_DOUBLE_EQ(res.makespan, 1.5 + 5.5);
}

TEST(ExecutorEdge, CoupledPricingBillsMemoryOnly) {
  platform::Workflow wf("one");
  wf.add_function("f", fn(10.0));
  const Executor ex = noiseless(std::make_unique<CoupledMemoryPricing>(0.002));
  const auto cheap_cpu = ex.execute_mean(wf, uniform_config(1, {0.5, 1024.0}));
  const auto rich_cpu = ex.execute_mean(wf, uniform_config(1, {8.0, 1024.0}));
  // Same memory: the per-second rate is identical; only runtime differs.
  EXPECT_GT(cheap_cpu.makespan, rich_cpu.makespan);
  EXPECT_NEAR(cheap_cpu.total_cost / cheap_cpu.makespan,
              rich_cpu.total_cost / rich_cpu.makespan, 1e-9);
}

TEST(ExecutorEdge, ExtremeInputScales) {
  platform::Workflow wf("one");
  wf.add_function("f", fn(10.0));
  const Executor ex = noiseless();
  const auto tiny = ex.execute_mean(wf, uniform_config(1, {1.0, 512.0}), 0.01);
  const auto huge = ex.execute_mean(wf, uniform_config(1, {1.0, 512.0}), 100.0);
  EXPECT_GT(tiny.makespan, 0.0);
  EXPECT_NEAR(huge.makespan / tiny.makespan, 10000.0, 1e-6);  // linear work exp
}

TEST(ExecutorEdge, MakespanNoiseIsSmallerThanPerFunctionNoise) {
  // Independent per-function noise partially averages out along a chain:
  // relative std of the makespan < relative std of one function.
  platform::Workflow wf("chain");
  dag::NodeId prev = wf.add_function("f0", fn(5.0));
  for (int i = 1; i < 8; ++i) {
    const auto next = wf.add_function("f" + std::to_string(i), fn(5.0));
    wf.add_edge(prev, next);
    prev = next;
  }
  const Executor ex;  // 3% noise
  const Profiler profiler(ex);
  support::Rng rng(55);
  const auto report = profiler.profile(wf, uniform_config(8, {1.0, 512.0}), 200, rng);
  const double makespan_rel = report.makespan.stddev / report.makespan.mean;
  const double fn_rel =
      report.function_runtime[0].stddev / report.function_runtime[0].mean;
  EXPECT_LT(makespan_rel, fn_rel);
  EXPECT_NEAR(fn_rel, 0.03, 0.01);
}

TEST(ExecutorEdge, TotalCostEqualsPricingOverRuntimes) {
  platform::Workflow wf("pair");
  wf.add_function("a", fn(3.0));
  wf.add_function("b", fn(4.0, 8.0, 4.0));
  wf.add_edge("a", "b");
  const Executor ex;  // noisy
  support::Rng rng(66);
  WorkflowConfig cfg{{1.5, 768.0}, {3.0, 1024.0}};
  const auto res = ex.execute(wf, cfg, 1.0, rng);
  double expected = 0.0;
  for (const auto& inv : res.invocations) {
    expected += ex.pricing().invocation_cost(cfg[inv.node], inv.runtime);
  }
  EXPECT_NEAR(res.total_cost, expected, 1e-9);
}

TEST(ExecutorEdge, SplitStreamsAreIndependent) {
  // Two executions with rngs split from the same parent differ, but are
  // each reproducible.
  platform::Workflow wf("one");
  wf.add_function("f", fn(10.0));
  const Executor ex;
  support::Rng parent(9);
  support::Rng a = parent.split(0);
  support::Rng b = parent.split(1);
  support::Rng a2 = parent.split(0);
  const auto cfg = uniform_config(1, {1.0, 512.0});
  const double ra = ex.execute(wf, cfg, 1.0, a).makespan;
  const double rb = ex.execute(wf, cfg, 1.0, b).makespan;
  const double ra2 = ex.execute(wf, cfg, 1.0, a2).makespan;
  EXPECT_NE(ra, rb);
  EXPECT_DOUBLE_EQ(ra, ra2);
}

TEST(ExecutorEdge, ProfilerScalesPropagate) {
  platform::Workflow wf("one");
  wf.add_function("f", fn(10.0));
  const Executor ex;
  const Profiler profiler(ex);
  support::Rng rng1(7);
  support::Rng rng2(7);
  const auto cfg = uniform_config(1, {1.0, 512.0});
  const auto small = profiler.profile(wf, cfg, 30, rng1, 1.0);
  const auto big = profiler.profile(wf, cfg, 30, rng2, 2.0);
  EXPECT_NEAR(big.makespan.mean / small.makespan.mean, 2.0, 0.05);
}

}  // namespace
}  // namespace aarc::platform
