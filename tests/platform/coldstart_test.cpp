#include "platform/coldstart.h"

#include <gtest/gtest.h>

#include "support/contracts.h"

namespace aarc::platform {
namespace {

TEST(ColdStart, DefaultIsDisabled) {
  const ColdStartModel m;
  EXPECT_FALSE(m.enabled());
  support::Rng rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(m.sample_delay(rng), 0.0);
}

TEST(ColdStart, AlwaysColdSamplesWithinRange) {
  const ColdStartModel m(1.0, 2.0, 4.0);
  support::Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    const double d = m.sample_delay(rng);
    EXPECT_GE(d, 2.0);
    EXPECT_LE(d, 4.0);
  }
}

TEST(ColdStart, ProbabilityRespected) {
  const ColdStartModel m(0.3, 1.0, 1.0);
  support::Rng rng(3);
  int cold = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) cold += m.sample_delay(rng) > 0.0 ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(cold) / n, 0.3, 0.03);
}

TEST(ColdStart, RejectsBadParameters) {
  EXPECT_THROW(ColdStartModel(-0.1, 1.0, 2.0), support::ContractViolation);
  EXPECT_THROW(ColdStartModel(1.1, 1.0, 2.0), support::ContractViolation);
  EXPECT_THROW(ColdStartModel(0.5, -1.0, 2.0), support::ContractViolation);
  EXPECT_THROW(ColdStartModel(0.5, 3.0, 2.0), support::ContractViolation);
}

TEST(ColdStart, ZeroProbabilityNeverCold) {
  const ColdStartModel m(0.0, 1.0, 2.0);
  EXPECT_FALSE(m.enabled());
}

}  // namespace
}  // namespace aarc::platform
