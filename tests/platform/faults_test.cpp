#include "platform/faults.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "perf/analytic.h"
#include "platform/executor.h"
#include "support/contracts.h"

namespace aarc::platform {
namespace {

std::unique_ptr<perf::PerfModel> model(double serial, double min_mem = 128.0) {
  perf::AnalyticParams p;
  p.serial_seconds = serial;
  p.working_set_mb = std::max(min_mem, 256.0);
  p.min_memory_mb = min_mem;
  p.pressure_coeff = 0.0;
  return std::make_unique<perf::AnalyticModel>(p);
}

Workflow chain() {
  Workflow wf("chain");
  wf.add_function("a", model(4.0));
  wf.add_function("b", model(6.0));
  wf.add_edge("a", "b");
  return wf;
}

WorkflowConfig ones(std::size_t n) { return uniform_config(n, {1.0, 1024.0}); }

Executor executor_with(ExecutorOptions opts) {
  return Executor(std::make_unique<DecoupledLinearPricing>(), opts);
}

ExecutorOptions noiseless() {
  ExecutorOptions opts;
  opts.noise = perf::NoiseModel(0.0);
  return opts;
}

TEST(FaultRates, ValidateRejectsBadFields) {
  FaultRates r;
  r.transient_crash = 1.5;
  EXPECT_THROW(r.validate(), support::ContractViolation);
  r = FaultRates{};
  r.straggler_multiplier = 0.5;
  EXPECT_THROW(r.validate(), support::ContractViolation);
  r = FaultRates{};
  r.cold_spike_max_seconds = -1.0;
  EXPECT_THROW(r.validate(), support::ContractViolation);
  EXPECT_NO_THROW(FaultRates{}.validate());
}

TEST(FaultModel, DisabledModelConsumesNoRandomness) {
  const FaultModel faults;
  support::Rng a(42);
  support::Rng b(42);
  const FaultOutcome out = faults.sample(0, a);
  EXPECT_FALSE(out.crashed);
  EXPECT_DOUBLE_EQ(out.runtime_multiplier, 1.0);
  EXPECT_DOUBLE_EQ(out.extra_delay_seconds, 0.0);
  // a drew nothing: its next draw matches a fresh generator's first draw.
  EXPECT_DOUBLE_EQ(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
}

TEST(FaultModel, PerFunctionOverridesApply) {
  FaultRates defaults;
  defaults.transient_crash = 0.0;
  FaultModel faults(defaults);
  EXPECT_FALSE(faults.enabled());

  FaultRates flaky;
  flaky.transient_crash = 1.0;
  faults.set_function_rates(1, flaky);
  EXPECT_TRUE(faults.enabled());
  EXPECT_DOUBLE_EQ(faults.rates(1).transient_crash, 1.0);
  EXPECT_DOUBLE_EQ(faults.rates(0).transient_crash, 0.0);

  support::Rng rng(7);
  EXPECT_FALSE(faults.sample(0, rng).crashed);
  EXPECT_TRUE(faults.sample(1, rng).crashed);
}

TEST(FaultModel, DeterministicStragglerAndDelays) {
  FaultRates r;
  r.straggler = 1.0;
  r.straggler_multiplier = 3.0;
  r.cold_spike = 1.0;
  r.cold_spike_min_seconds = 5.0;
  r.cold_spike_max_seconds = 5.0;
  r.throttle = 1.0;
  r.throttle_min_seconds = 2.0;
  r.throttle_max_seconds = 2.0;
  const FaultModel faults{r};
  support::Rng rng(1);
  const FaultOutcome out = faults.sample(0, rng);
  EXPECT_FALSE(out.crashed);
  EXPECT_DOUBLE_EQ(out.runtime_multiplier, 3.0);
  EXPECT_DOUBLE_EQ(out.extra_delay_seconds, 7.0);
}

TEST(RetryPolicy, BackoffGrowsExponentiallyWithBoundedJitter) {
  RetryPolicy retry;
  retry.max_attempts = 4;
  retry.backoff_initial_seconds = 1.0;
  retry.backoff_multiplier = 2.0;
  retry.backoff_jitter_fraction = 0.2;
  support::Rng rng(11);
  for (std::size_t k = 1; k <= 3; ++k) {
    const double base = std::pow(2.0, static_cast<double>(k - 1));
    const double d = retry.backoff_seconds(k, rng);
    EXPECT_GE(d, base * 0.8);
    EXPECT_LE(d, base * 1.2);
  }
}

TEST(RetryPolicy, ValidateRejectsBadFields) {
  RetryPolicy retry;
  retry.max_attempts = 0;
  EXPECT_THROW(retry.validate(), support::ContractViolation);
  retry = RetryPolicy{};
  retry.backoff_multiplier = 0.5;
  EXPECT_THROW(retry.validate(), support::ContractViolation);
  retry = RetryPolicy{};
  retry.backoff_jitter_fraction = 1.0;
  EXPECT_THROW(retry.validate(), support::ContractViolation);
  retry = RetryPolicy{};
  retry.timeout_seconds = -1.0;
  EXPECT_THROW(retry.validate(), support::ContractViolation);
}

TEST(ExecutorFaults, CleanOptionsMatchLegacyBehaviorExactly) {
  // Disabled faults/retries must not perturb the RNG stream: results are
  // bit-identical to an executor that predates the fault layer.
  const Workflow wf = chain();
  const Executor legacy;  // default options
  ExecutorOptions with_layer;
  with_layer.faults = FaultModel{};
  with_layer.retry = RetryPolicy{};
  const Executor layered = executor_with(with_layer);
  support::Rng a(123);
  support::Rng b(123);
  const auto ra = legacy.execute(wf, ones(2), 1.0, a);
  const auto rb = layered.execute(wf, ones(2), 1.0, b);
  EXPECT_DOUBLE_EQ(ra.makespan, rb.makespan);
  EXPECT_DOUBLE_EQ(ra.total_cost, rb.total_cost);
}

TEST(ExecutorFaults, TimeoutMarksRecordAndBillsTimeoutDuration) {
  const Workflow wf = chain();
  ExecutorOptions opts = noiseless();
  opts.retry.timeout_seconds = 2.0;  // below both mean runtimes (4 s, 6 s)
  opts.retry.max_attempts = 3;
  opts.retry.backoff_initial_seconds = 0.0;
  opts.retry.backoff_jitter_fraction = 0.0;
  const Executor ex = executor_with(opts);
  support::Rng rng(5);
  const auto res = ex.execute(wf, ones(2), 1.0, rng);
  EXPECT_TRUE(res.failed);
  EXPECT_TRUE(res.transient_failure());
  EXPECT_FALSE(res.oom_failure());
  EXPECT_TRUE(std::isinf(res.makespan));
  const auto& inv = res.invocations[0];
  EXPECT_TRUE(inv.timed_out);
  EXPECT_TRUE(inv.failed);
  EXPECT_EQ(inv.attempts, 3u);
  EXPECT_EQ(inv.transient_failures, 3u);
  // Every attempt is billed for exactly the timeout duration.
  EXPECT_DOUBLE_EQ(inv.billed_seconds, 3 * 2.0);
  EXPECT_GT(res.observed_cost(), 0.0);
  EXPECT_TRUE(std::isfinite(res.observed_cost()));
  EXPECT_EQ(res.timed_out_invocations(), 2u);
}

TEST(ExecutorFaults, TimeoutAppliesToMeanExecutionDeterministically) {
  const Workflow wf = chain();
  ExecutorOptions opts = noiseless();
  opts.retry.timeout_seconds = 5.0;  // "a" (4 s) fits, "b" (6 s) does not
  const Executor ex = executor_with(opts);
  const auto res = ex.execute_mean(wf, ones(2));
  EXPECT_FALSE(res.invocations[0].timed_out);
  EXPECT_TRUE(res.invocations[1].timed_out);
  EXPECT_TRUE(res.failed);
}

TEST(ExecutorFaults, StragglerSlowdownFeedsTimeout) {
  const Workflow wf = chain();
  ExecutorOptions opts = noiseless();
  FaultRates r;
  r.straggler = 1.0;
  r.straggler_multiplier = 10.0;
  opts.faults = FaultModel{r};
  opts.retry.timeout_seconds = 20.0;  // 4 s fits only un-straggled
  const Executor ex = executor_with(opts);
  support::Rng rng(5);
  const auto res = ex.execute(wf, ones(2), 1.0, rng);
  // Both functions straggle to 10x and hit the timeout (40 s, 60 s > 20 s).
  EXPECT_TRUE(res.failed);
  EXPECT_EQ(res.timed_out_invocations(), 2u);
}

TEST(ExecutorFaults, RetriesAreDeterministicUnderSeed) {
  const Workflow wf = chain();
  ExecutorOptions opts;  // default 3% noise
  FaultRates r;
  r.transient_crash = 0.5;
  opts.faults = FaultModel{r};
  opts.retry.max_attempts = 4;
  const Executor ex = executor_with(opts);
  support::Rng a(99);
  support::Rng b(99);
  const auto ra = ex.execute(wf, ones(2), 1.0, a);
  const auto rb = ex.execute(wf, ones(2), 1.0, b);
  ASSERT_EQ(ra.invocations.size(), rb.invocations.size());
  for (std::size_t i = 0; i < ra.invocations.size(); ++i) {
    const auto& ia = ra.invocations[i];
    const auto& ib = rb.invocations[i];
    EXPECT_EQ(ia.attempts, ib.attempts);
    EXPECT_EQ(ia.transient_failures, ib.transient_failures);
    EXPECT_EQ(ia.timed_out, ib.timed_out);
    EXPECT_EQ(ia.failed, ib.failed);
    EXPECT_DOUBLE_EQ(ia.runtime, ib.runtime);
    EXPECT_DOUBLE_EQ(ia.billed_seconds, ib.billed_seconds);
    EXPECT_DOUBLE_EQ(ia.billed_cost, ib.billed_cost);
  }
  EXPECT_DOUBLE_EQ(ra.makespan, rb.makespan);
  EXPECT_DOUBLE_EQ(ra.total_cost, rb.total_cost);
}

TEST(ExecutorFaults, RetriesRecoverFromTransientCrashes) {
  const Workflow wf = chain();
  ExecutorOptions opts;
  FaultRates r;
  r.transient_crash = 0.4;
  opts.faults = FaultModel{r};
  opts.retry.max_attempts = 8;  // enough budget to virtually always recover
  const Executor ex = executor_with(opts);
  std::size_t crashes_seen = 0;
  std::size_t failures = 0;
  support::Rng rng(2024);
  for (int i = 0; i < 50; ++i) {
    const auto res = ex.execute(wf, ones(2), 1.0, rng);
    crashes_seen += res.transient_failures();
    if (res.failed) ++failures;
  }
  EXPECT_GT(crashes_seen, 0u);  // faults actually fired...
  EXPECT_EQ(failures, 0u);      // ...and retries absorbed every one of them
}

TEST(ExecutorFaults, FailedAttemptsAreBilledAndDelaySuccessors) {
  const Workflow wf = chain();
  ExecutorOptions opts;
  FaultRates r;
  r.transient_crash = 0.6;
  opts.faults = FaultModel{r};
  opts.retry.max_attempts = 10;
  opts.retry.backoff_initial_seconds = 1.0;
  const Executor ex = executor_with(opts);
  // Find a seeded run that retried at least once, then check billing.
  support::Rng rng(31);
  for (int i = 0; i < 20; ++i) {
    const auto res = ex.execute(wf, ones(2), 1.0, rng);
    if (res.failed || res.total_attempts() == 2) continue;
    for (const auto& inv : res.invocations) {
      if (inv.attempts == 1) continue;
      // Multiple attempts: billed cost covers them all, and the elapsed
      // runtime includes the failed attempts plus backoff waits.
      EXPECT_GT(inv.billed_seconds, 0.0);
      EXPECT_DOUBLE_EQ(inv.cost, inv.billed_cost);
      EXPECT_GT(inv.runtime, inv.billed_seconds);  // backoff adds wall time
      EXPECT_DOUBLE_EQ(inv.finish, inv.start + inv.runtime);
    }
    return;  // one retried run is enough
  }
  FAIL() << "no seeded run with retries found";
}

TEST(ExecutorFaults, OomIsNeverRetried) {
  const Workflow wf = chain();
  ExecutorOptions opts = noiseless();
  opts.retry.max_attempts = 5;
  const Executor ex = executor_with(opts);
  WorkflowConfig cfg = ones(2);
  cfg[0].memory_mb = 100.0;  // below the 128 MB floor
  support::Rng rng(3);
  const auto res = ex.execute(wf, cfg, 1.0, rng);
  EXPECT_TRUE(res.failed);
  EXPECT_TRUE(res.oom_failure());
  EXPECT_FALSE(res.transient_failure());
  EXPECT_EQ(res.invocations[0].attempts, 1u);
  EXPECT_EQ(res.invocations[0].transient_failures, 0u);
  EXPECT_TRUE(std::isinf(res.makespan));
  EXPECT_TRUE(std::isinf(res.total_cost));
}

TEST(ExecutorFaults, MeanExecutionIgnoresFaults) {
  const Workflow wf = chain();
  ExecutorOptions opts = noiseless();
  FaultRates r;
  r.transient_crash = 1.0;
  opts.faults = FaultModel{r};
  opts.retry.max_attempts = 2;
  const Executor ex = executor_with(opts);
  const auto res = ex.execute_mean(wf, ones(2));
  EXPECT_FALSE(res.failed);
  EXPECT_DOUBLE_EQ(res.makespan, 10.0);
}

}  // namespace
}  // namespace aarc::platform
