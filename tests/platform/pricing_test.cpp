#include "platform/pricing.h"

#include <gtest/gtest.h>

#include "support/contracts.h"

namespace aarc::platform {
namespace {

TEST(DecoupledPricing, PaperConstantsByDefault) {
  const DecoupledLinearPricing p;
  EXPECT_DOUBLE_EQ(p.mu0(), 0.512);
  EXPECT_DOUBLE_EQ(p.mu1(), 0.001);
  EXPECT_DOUBLE_EQ(p.mu2(), 0.0);
}

TEST(DecoupledPricing, MatchesPaperFormula) {
  // cost = t * (mu0 * cpu + mu1 * mem) + mu2.
  const DecoupledLinearPricing p;
  EXPECT_DOUBLE_EQ(p.invocation_cost({1.0, 1024.0}, 10.0),
                   10.0 * (0.512 * 1.0 + 0.001 * 1024.0));
}

TEST(DecoupledPricing, RequestFeeAddsOnce) {
  const DecoupledLinearPricing p(0.5, 0.001, 2.0);
  EXPECT_DOUBLE_EQ(p.invocation_cost({1.0, 1000.0}, 0.0), 2.0);
}

TEST(DecoupledPricing, LinearInDuration) {
  const DecoupledLinearPricing p;
  const ResourceConfig rc{2.0, 2048.0};
  EXPECT_DOUBLE_EQ(p.invocation_cost(rc, 20.0), 2.0 * p.invocation_cost(rc, 10.0));
}

TEST(DecoupledPricing, MoreResourcesCostMore) {
  const DecoupledLinearPricing p;
  EXPECT_GT(p.invocation_cost({2.0, 1024.0}, 10.0), p.invocation_cost({1.0, 1024.0}, 10.0));
  EXPECT_GT(p.invocation_cost({1.0, 2048.0}, 10.0), p.invocation_cost({1.0, 1024.0}, 10.0));
}

TEST(DecoupledPricing, RejectsNegativeInputs) {
  const DecoupledLinearPricing p;
  EXPECT_THROW(p.invocation_cost({1.0, 1024.0}, -1.0), support::ContractViolation);
  EXPECT_THROW(p.invocation_cost({0.0, 1024.0}, 1.0), support::ContractViolation);
}

TEST(DecoupledPricing, RejectsAllZeroPrices) {
  EXPECT_THROW(DecoupledLinearPricing(0.0, 0.0, 0.0), support::ContractViolation);
}

TEST(DecoupledPricing, CloneIsEquivalent) {
  const DecoupledLinearPricing p(0.3, 0.002, 1.0);
  const auto c = p.clone();
  EXPECT_DOUBLE_EQ(c->invocation_cost({1.5, 512.0}, 7.0),
                   p.invocation_cost({1.5, 512.0}, 7.0));
}

TEST(CoupledPricing, BillsMemoryOnly) {
  const CoupledMemoryPricing p(0.002, 0.0);
  // Same memory, different cpu: identical bill (AWS-Lambda semantics).
  EXPECT_DOUBLE_EQ(p.invocation_cost({1.0, 1024.0}, 10.0),
                   p.invocation_cost({8.0, 1024.0}, 10.0));
  EXPECT_DOUBLE_EQ(p.invocation_cost({1.0, 1024.0}, 10.0), 10.0 * 0.002 * 1024.0);
}

TEST(CoupledPricing, RejectsZeroPrice) {
  EXPECT_THROW(CoupledMemoryPricing(0.0), support::ContractViolation);
}

TEST(CoupledPricing, RequestFee) {
  const CoupledMemoryPricing p(0.001, 3.0);
  EXPECT_DOUBLE_EQ(p.invocation_cost({1.0, 1000.0}, 0.0), 3.0);
}

}  // namespace
}  // namespace aarc::platform
