#include "platform/profiler.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "perf/analytic.h"
#include "support/contracts.h"

namespace aarc::platform {
namespace {

std::unique_ptr<perf::PerfModel> model(double serial, double min_mem = 128.0) {
  perf::AnalyticParams p;
  p.serial_seconds = serial;
  p.working_set_mb = std::max(256.0, min_mem);
  p.min_memory_mb = min_mem;
  p.pressure_coeff = 0.0;
  return std::make_unique<perf::AnalyticModel>(p);
}

Workflow chain() {
  Workflow wf("chain");
  wf.add_function("a", model(4.0));
  wf.add_function("b", model(6.0));
  wf.add_edge("a", "b");
  return wf;
}

TEST(Profiler, AggregatesRuns) {
  const Executor ex;
  const Profiler profiler(ex);
  support::Rng rng(10);
  const Workflow wf = chain();
  const auto report = profiler.profile(wf, uniform_config(2, {1.0, 512.0}), 50, rng);
  EXPECT_EQ(report.runs, 50u);
  EXPECT_EQ(report.failures, 0u);
  EXPECT_EQ(report.makespans.size(), 50u);
  EXPECT_NEAR(report.makespan.mean, 10.0, 0.3);
  EXPECT_GT(report.makespan.stddev, 0.0);
  ASSERT_EQ(report.function_runtime.size(), 2u);
  EXPECT_NEAR(report.function_runtime[0].mean, 4.0, 0.2);
  EXPECT_NEAR(report.function_runtime[1].mean, 6.0, 0.2);
}

TEST(Profiler, CountsOomFailures) {
  const Executor ex;
  const Profiler profiler(ex);
  support::Rng rng(11);
  Workflow wf("oom");
  wf.add_function("a", model(1.0, 512.0));
  wf.add_function("b", model(1.0));
  wf.add_edge("a", "b");
  WorkflowConfig cfg = uniform_config(2, {1.0, 1024.0});
  cfg[0].memory_mb = 256.0;  // always OOM
  const auto report = profiler.profile(wf, cfg, 10, rng);
  EXPECT_EQ(report.failures, 10u);
  EXPECT_EQ(report.makespan.count, 0u);
  EXPECT_TRUE(report.makespans.empty());
}

TEST(Profiler, SloViolationRate) {
  ProfileReport report;
  report.makespans = {10.0, 12.0, 9.0, 15.0};
  EXPECT_DOUBLE_EQ(report.slo_violation_rate(11.0), 0.5);
  EXPECT_DOUBLE_EQ(report.slo_violation_rate(20.0), 0.0);
  EXPECT_DOUBLE_EQ(report.slo_violation_rate(5.0), 1.0);
}

TEST(Profiler, SloViolationRateRejectsBadSlo) {
  ProfileReport report;
  EXPECT_THROW(report.slo_violation_rate(0.0), support::ContractViolation);
}

TEST(Profiler, SloViolationRateEmptyIsZero) {
  ProfileReport report;
  EXPECT_DOUBLE_EQ(report.slo_violation_rate(10.0), 0.0);
}

TEST(Profiler, RejectsZeroRuns) {
  const Executor ex;
  const Profiler profiler(ex);
  support::Rng rng(12);
  const Workflow wf = chain();
  EXPECT_THROW(profiler.profile(wf, uniform_config(2, {1.0, 512.0}), 0, rng),
               support::ContractViolation);
}

TEST(Profiler, ProfileIntoWeightsStoresRuntimes) {
  const Executor ex;
  const Profiler profiler(ex);
  support::Rng rng(13);
  Workflow wf = chain();
  const auto res = profiler.profile_into_weights(wf, uniform_config(2, {1.0, 512.0}), rng);
  EXPECT_FALSE(res.failed);
  EXPECT_DOUBLE_EQ(wf.graph().weight(0), res.invocations[0].runtime);
  EXPECT_DOUBLE_EQ(wf.graph().weight(1), res.invocations[1].runtime);
}

TEST(Profiler, ProfileIntoWeightsThrowsOnOom) {
  const Executor ex;
  const Profiler profiler(ex);
  support::Rng rng(14);
  Workflow wf = chain();
  WorkflowConfig cfg = uniform_config(2, {1.0, 100.0});  // below floor
  EXPECT_THROW(profiler.profile_into_weights(wf, cfg, rng), support::ContractViolation);
}

TEST(Profiler, CostStatisticsArePositive) {
  const Executor ex;
  const Profiler profiler(ex);
  support::Rng rng(15);
  const Workflow wf = chain();
  const auto report = profiler.profile(wf, uniform_config(2, {2.0, 1024.0}), 20, rng);
  EXPECT_GT(report.cost.mean, 0.0);
  EXPECT_NEAR(report.cost.sum, report.cost.mean * 20.0, 1e-6);
}

}  // namespace
}  // namespace aarc::platform
