#include "platform/workflow.h"

#include <gtest/gtest.h>

#include "perf/analytic.h"
#include "support/contracts.h"

namespace aarc::platform {
namespace {

std::unique_ptr<perf::PerfModel> simple_model(double serial = 5.0) {
  perf::AnalyticParams p;
  p.serial_seconds = serial;
  p.working_set_mb = 256.0;
  p.min_memory_mb = 128.0;
  return std::make_unique<perf::AnalyticModel>(p);
}

Workflow two_step() {
  Workflow wf("two_step");
  wf.add_function("first", simple_model(3.0));
  wf.add_function("second", simple_model(4.0));
  wf.add_edge("first", "second");
  return wf;
}

TEST(Workflow, AddFunctionReturnsSequentialIds) {
  Workflow wf("w");
  EXPECT_EQ(wf.add_function("a", simple_model()), 0u);
  EXPECT_EQ(wf.add_function("b", simple_model()), 1u);
  EXPECT_EQ(wf.function_count(), 2u);
}

TEST(Workflow, RejectsNullModel) {
  Workflow wf("w");
  EXPECT_THROW(wf.add_function("a", nullptr), support::ContractViolation);
}

TEST(Workflow, FunctionLookupByName) {
  const Workflow wf = two_step();
  EXPECT_EQ(wf.function_id("second"), 1u);
  EXPECT_EQ(wf.function_name(0), "first");
  EXPECT_THROW(wf.function_id("nope"), support::ContractViolation);
}

TEST(Workflow, EdgesByNameAndId) {
  Workflow wf("w");
  const auto a = wf.add_function("a", simple_model());
  const auto b = wf.add_function("b", simple_model());
  wf.add_edge(a, b);
  EXPECT_TRUE(wf.graph().has_edge(a, b));
}

TEST(Workflow, ModelAccessors) {
  const Workflow wf = two_step();
  EXPECT_DOUBLE_EQ(wf.model(0).mean_runtime(1.0, 1024.0, 1.0), 3.0);
  EXPECT_DOUBLE_EQ(wf.model(1).mean_runtime(1.0, 1024.0, 1.0), 4.0);
  EXPECT_THROW(wf.model(5), support::ContractViolation);
}

TEST(Workflow, ValidatePassesOnWellFormed) { EXPECT_NO_THROW(two_step().validate()); }

TEST(Workflow, ValidateRejectsDisconnected) {
  Workflow wf("w");
  wf.add_function("a", simple_model());
  wf.add_function("b", simple_model());
  EXPECT_THROW(wf.validate(), support::ContractViolation);
}

TEST(Workflow, CloneIsDeepAndEquivalent) {
  const Workflow wf = two_step();
  const Workflow copy = wf.clone();
  EXPECT_EQ(copy.name(), wf.name());
  EXPECT_EQ(copy.function_count(), wf.function_count());
  EXPECT_TRUE(copy.graph().has_edge(0, 1));
  EXPECT_DOUBLE_EQ(copy.model(0).mean_runtime(1.0, 512.0, 1.0),
                   wf.model(0).mean_runtime(1.0, 512.0, 1.0));
  // The clone's models are distinct objects.
  EXPECT_NE(&copy.model(0), &wf.model(0));
}

TEST(Workflow, WeightsLiveInGraph) {
  Workflow wf = two_step();
  wf.mutable_graph().set_weights({7.0, 8.0});
  EXPECT_DOUBLE_EQ(wf.graph().weight(1), 8.0);
}

}  // namespace
}  // namespace aarc::platform
