#include "platform/executor.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "dag/critical_path.h"
#include "perf/analytic.h"
#include "support/contracts.h"

namespace aarc::platform {
namespace {

std::unique_ptr<perf::PerfModel> model(double serial, double min_mem = 128.0) {
  perf::AnalyticParams p;
  p.serial_seconds = serial;
  p.working_set_mb = std::max(min_mem, 256.0);
  p.min_memory_mb = min_mem;
  p.pressure_coeff = 0.0;
  return std::make_unique<perf::AnalyticModel>(p);
}

/// src -> {fast, slow} -> sink.
Workflow diamond() {
  Workflow wf("diamond");
  wf.add_function("src", model(1.0));
  wf.add_function("fast", model(2.0));
  wf.add_function("slow", model(10.0));
  wf.add_function("sink", model(3.0));
  wf.add_edge("src", "fast");
  wf.add_edge("src", "slow");
  wf.add_edge("fast", "sink");
  wf.add_edge("slow", "sink");
  return wf;
}

Executor noiseless_executor() {
  ExecutorOptions opts;
  opts.noise = perf::NoiseModel(0.0);
  return Executor(std::make_unique<DecoupledLinearPricing>(), opts);
}

WorkflowConfig ones(std::size_t n) { return uniform_config(n, {1.0, 1024.0}); }

TEST(Executor, MakespanFollowsDagSemantics) {
  const Workflow wf = diamond();
  const auto res = noiseless_executor().execute_mean(wf, ones(4));
  // src(1) -> slow(10) -> sink(3): makespan 14; fast branch overlaps.
  EXPECT_DOUBLE_EQ(res.makespan, 14.0);
  EXPECT_DOUBLE_EQ(res.invocations[1].start, 1.0);
  EXPECT_DOUBLE_EQ(res.invocations[2].start, 1.0);
  EXPECT_DOUBLE_EQ(res.invocations[3].start, 11.0);
}

TEST(Executor, MakespanEqualsWeightedCriticalPath) {
  const Workflow wf = diamond();
  const auto res = noiseless_executor().execute_mean(wf, ones(4));
  dag::Graph g = wf.graph();
  g.set_weights(res.runtimes());
  EXPECT_NEAR(res.makespan, dag::critical_path_length(g), 1e-9);
}

TEST(Executor, CostIsSumOfInvocationCosts) {
  const Workflow wf = diamond();
  const Executor ex = noiseless_executor();
  const auto res = ex.execute_mean(wf, ones(4));
  double expected = 0.0;
  for (const auto& inv : res.invocations) {
    expected += ex.pricing().invocation_cost({1.0, 1024.0}, inv.runtime);
  }
  EXPECT_DOUBLE_EQ(res.total_cost, expected);
}

TEST(Executor, NoiseIsSeededAndReproducible) {
  const Workflow wf = diamond();
  const Executor ex;  // default: 3% noise
  support::Rng a(77);
  support::Rng b(77);
  const auto ra = ex.execute(wf, ones(4), 1.0, a);
  const auto rb = ex.execute(wf, ones(4), 1.0, b);
  EXPECT_DOUBLE_EQ(ra.makespan, rb.makespan);
  EXPECT_DOUBLE_EQ(ra.total_cost, rb.total_cost);
}

TEST(Executor, NoisyRuntimesDifferAcrossRuns) {
  const Workflow wf = diamond();
  const Executor ex;
  support::Rng rng(77);
  const auto r1 = ex.execute(wf, ones(4), 1.0, rng);
  const auto r2 = ex.execute(wf, ones(4), 1.0, rng);
  EXPECT_NE(r1.makespan, r2.makespan);
}

TEST(Executor, OomPoisonsResultWithoutThrowing) {
  const Workflow wf = diamond();
  WorkflowConfig cfg = ones(4);
  cfg[2].memory_mb = 100.0;  // below the 128 MB floor of "slow"
  const auto res = noiseless_executor().execute_mean(wf, cfg);
  EXPECT_TRUE(res.failed);
  EXPECT_TRUE(std::isinf(res.makespan));
  EXPECT_TRUE(std::isinf(res.total_cost));
  EXPECT_EQ(res.oom_nodes(), (std::vector<dag::NodeId>{2}));
  EXPECT_TRUE(res.invocations[2].oom);
  EXPECT_FALSE(res.invocations[1].oom);
}

TEST(Executor, ObservedWallAndCostStayFiniteOnFailure) {
  const Workflow wf = diamond();
  WorkflowConfig cfg = ones(4);
  cfg[2].memory_mb = 100.0;
  const auto res = noiseless_executor().execute_mean(wf, cfg);
  // The fast branch still ran: src(1) + fast(2) = 3 seconds of wall clock.
  EXPECT_DOUBLE_EQ(res.observed_wall_seconds(), 3.0);
  EXPECT_GT(res.observed_cost(), 0.0);
  EXPECT_TRUE(std::isfinite(res.observed_cost()));
}

TEST(Executor, DownstreamOfOomIsAlsoPoisoned) {
  Workflow wf("chain");
  wf.add_function("a", model(1.0, 512.0));
  wf.add_function("b", model(1.0));
  wf.add_edge("a", "b");
  WorkflowConfig cfg = ones(2);
  cfg[0].memory_mb = 256.0;  // a OOMs
  const auto res = noiseless_executor().execute_mean(wf, cfg);
  EXPECT_TRUE(res.failed);
  // b starts after a's (infinite) finish.
  EXPECT_TRUE(std::isinf(res.invocations[1].start));
}

TEST(Executor, RejectsWrongConfigSize) {
  const Workflow wf = diamond();
  support::Rng rng(1);
  EXPECT_THROW(noiseless_executor().execute(wf, ones(3), 1.0, rng),
               support::ContractViolation);
}

TEST(Executor, RejectsNonPositiveAllocations) {
  const Workflow wf = diamond();
  WorkflowConfig cfg = ones(4);
  cfg[0].vcpu = 0.0;
  EXPECT_THROW(noiseless_executor().execute_mean(wf, cfg), support::ContractViolation);
}

TEST(Executor, RejectsNonPositiveInputScale) {
  const Workflow wf = diamond();
  EXPECT_THROW(noiseless_executor().execute_mean(wf, ones(4), 0.0),
               support::ContractViolation);
}

TEST(Executor, RejectsNullPricing) {
  EXPECT_THROW(Executor(nullptr), support::ContractViolation);
}

TEST(Executor, InputScaleSlowsEveryFunction) {
  const Workflow wf = diamond();
  const Executor ex = noiseless_executor();
  const auto r1 = ex.execute_mean(wf, ones(4), 1.0);
  const auto r2 = ex.execute_mean(wf, ones(4), 2.0);
  EXPECT_DOUBLE_EQ(r2.makespan, 2.0 * r1.makespan);
}

TEST(Executor, ColdStartAddsDelay) {
  const Workflow wf = diamond();
  ExecutorOptions opts;
  opts.noise = perf::NoiseModel(0.0);
  opts.cold_start = ColdStartModel(1.0, 5.0, 5.0);  // always, exactly 5 s
  const Executor ex(std::make_unique<DecoupledLinearPricing>(), opts);
  support::Rng rng(3);
  const auto res = ex.execute(wf, ones(4), 1.0, rng);
  for (const auto& inv : res.invocations) EXPECT_DOUBLE_EQ(inv.cold_start_delay, 5.0);
  EXPECT_DOUBLE_EQ(res.makespan, 14.0 + 3 * 5.0);  // three functions on the path
}

TEST(Executor, MeanExecutionIgnoresColdStart) {
  const Workflow wf = diamond();
  ExecutorOptions opts;
  opts.noise = perf::NoiseModel(0.0);
  opts.cold_start = ColdStartModel(1.0, 5.0, 5.0);
  const Executor ex(std::make_unique<DecoupledLinearPricing>(), opts);
  EXPECT_DOUBLE_EQ(ex.execute_mean(wf, ones(4)).makespan, 14.0);
}

}  // namespace
}  // namespace aarc::platform
