#include "report/ascii_chart.h"

#include <gtest/gtest.h>

#include <limits>

#include "support/contracts.h"

namespace aarc::report {
namespace {

TEST(AsciiChart, RendersSingleSeriesWithAxesAndLegend) {
  std::vector<double> ramp;
  for (int i = 0; i <= 20; ++i) ramp.push_back(static_cast<double>(i));
  const std::string chart = ascii_chart({"ramp"}, {ramp});
  EXPECT_NE(chart.find('*'), std::string::npos);
  EXPECT_NE(chart.find("20.0 |"), std::string::npos);  // top y label
  EXPECT_NE(chart.find(" 0.0 |"), std::string::npos);  // bottom y label
  EXPECT_NE(chart.find("* = ramp"), std::string::npos);
  EXPECT_NE(chart.find("(sample)"), std::string::npos);
}

TEST(AsciiChart, IncreasingSeriesClimbsAcrossRows) {
  std::vector<double> ramp;
  for (int i = 0; i <= 40; ++i) ramp.push_back(static_cast<double>(i));
  ChartOptions opts;
  opts.width = 40;
  opts.height = 8;
  const std::string chart = ascii_chart({"r"}, {ramp}, opts);
  // Top row's glyph must sit to the right of the bottom row's glyph.
  std::vector<std::string> lines;
  std::size_t pos = 0;
  while (pos < chart.size()) {
    const auto nl = chart.find('\n', pos);
    lines.push_back(chart.substr(pos, nl - pos));
    pos = nl + 1;
  }
  const auto top_col = lines[0].find('*');
  const auto bottom_col = lines[7].find('*');
  ASSERT_NE(top_col, std::string::npos);
  ASSERT_NE(bottom_col, std::string::npos);
  EXPECT_GT(top_col, bottom_col);
}

TEST(AsciiChart, MultipleSeriesUseDistinctGlyphs) {
  const std::vector<double> a{1, 2, 3, 4, 5};
  const std::vector<double> b{5, 4, 3, 2, 1};
  const std::string chart = ascii_chart({"up", "down"}, {a, b});
  EXPECT_NE(chart.find('*'), std::string::npos);
  EXPECT_NE(chart.find('o'), std::string::npos);
  EXPECT_NE(chart.find("o = down"), std::string::npos);
}

TEST(AsciiChart, ShorterSeriesPadWithLastValue) {
  const std::vector<double> longer{0, 0, 0, 0, 0, 0, 0, 0, 0, 10};
  const std::vector<double> shorter{5.0};
  ChartOptions opts;
  opts.width = 20;
  opts.height = 5;
  const std::string chart = ascii_chart({"l", "s"}, {longer, shorter}, opts);
  // The short series must span the full width at its (padded) level: count
  // its glyph occurrences.
  const std::size_t count = static_cast<std::size_t>(
      std::count(chart.begin(), chart.end(), 'o'));
  EXPECT_GE(count, 19u);  // one column may be overdrawn by the other series
}

TEST(AsciiChart, FlatSeriesStillRenders) {
  const std::vector<double> flat(10, 7.0);
  const std::string chart = ascii_chart({"flat"}, {flat});
  EXPECT_NE(chart.find('*'), std::string::npos);
}

TEST(AsciiChart, SkipsNonFiniteValues) {
  std::vector<double> with_inf{1.0, std::numeric_limits<double>::infinity(), 3.0};
  const std::string chart = ascii_chart({"x"}, {with_inf});
  EXPECT_NE(chart.find('*'), std::string::npos);
  EXPECT_NE(chart.find("3.0"), std::string::npos);  // range from finite values
}

TEST(AsciiChart, EmptyDataHandled) {
  EXPECT_EQ(ascii_chart({"e"}, {{}}), "(no data)\n");
  const std::vector<double> only_inf{std::numeric_limits<double>::infinity()};
  EXPECT_EQ(ascii_chart({"i"}, {only_inf}), "(no finite data)\n");
}

TEST(AsciiChart, YFromZeroAnchorsTheAxis) {
  const std::vector<double> high{100.0, 101.0, 102.0};
  ChartOptions opts;
  opts.y_from_zero = true;
  const std::string chart = ascii_chart({"h"}, {high}, opts);
  EXPECT_NE(chart.find("0.0 |"), std::string::npos);
}

TEST(AsciiChart, RejectsBadArguments) {
  EXPECT_THROW(ascii_chart({"a"}, {{1.0}, {2.0}}), support::ContractViolation);
  EXPECT_THROW(ascii_chart({}, {}), support::ContractViolation);
  ChartOptions tiny;
  tiny.width = 2;
  EXPECT_THROW(ascii_chart({"a"}, {{1.0}}, tiny), support::ContractViolation);
}

}  // namespace
}  // namespace aarc::report
