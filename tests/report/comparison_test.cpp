#include "report/comparison.h"

#include <gtest/gtest.h>

#include "support/contracts.h"

namespace aarc::report {
namespace {

search::SearchResult result_with(std::vector<double> costs, double makespan = 10.0) {
  search::SearchResult r;
  for (std::size_t i = 0; i < costs.size(); ++i) {
    search::Sample s;
    s.index = i;
    s.cost = costs[i];
    s.makespan = makespan;
    s.wall_seconds = makespan;
    s.wall_cost = costs[i];
    s.feasible = true;
    r.trace.add(s);
  }
  r.found_feasible = true;
  return r;
}

TEST(SearchTotalsTable, OneRowPerRun) {
  std::vector<MethodRun> runs;
  runs.push_back({"AARC", "chatbot", result_with({5.0, 4.0})});
  runs.push_back({"BO", "chatbot", result_with({9.0})});
  const auto table = search_totals_table(runs);
  EXPECT_EQ(table.rows(), 2u);
  const std::string md = table.to_markdown();
  EXPECT_NE(md.find("AARC"), std::string::npos);
  EXPECT_NE(md.find("20.0"), std::string::npos);  // 2 samples x 10 s
  EXPECT_NE(md.find("yes"), std::string::npos);
}

TEST(SeriesTable, AlignsAndPadsSeries) {
  const auto table =
      series_table({"a", "b"}, {{1.0, 2.0, 3.0, 4.0, 5.0, 6.0}, {10.0}}, 5);
  // Rows at samples 1 and 6.
  EXPECT_EQ(table.rows(), 2u);
  const std::string csv = table.to_csv();
  EXPECT_NE(csv.find("1,1.00,10.00"), std::string::npos);
  EXPECT_NE(csv.find("6,6.00,10.00"), std::string::npos);  // b padded
}

TEST(SeriesTable, EmptySeriesRendersDash) {
  const auto table = series_table({"a", "b"}, {{1.0}, {}}, 1);
  EXPECT_NE(table.to_csv().find("1,1.00,-"), std::string::npos);
}

TEST(SeriesTable, RejectsLabelMismatch) {
  EXPECT_THROW(series_table({"a"}, {{1.0}, {2.0}}), support::ContractViolation);
}

TEST(SeriesTable, RejectsZeroStride) {
  EXPECT_THROW(series_table({"a"}, {{1.0}}, 0), support::ContractViolation);
}

TEST(ValidationTable, FormatsTableIIStyle) {
  ValidationRun run;
  run.method = "AARC";
  run.workload = "chatbot";
  run.slo_seconds = 120.0;
  support::Accumulator acc;
  acc.add(103.0);
  acc.add(104.4);
  run.profile.makespan = acc.summary();
  support::Accumulator cost;
  cost.add(23909.0);
  cost.add(23909.0);
  run.profile.cost = cost.summary();
  const auto table = validation_table({run});
  const std::string md = table.to_markdown();
  EXPECT_NE(md.find("103.7 ± 1.0"), std::string::npos);
  EXPECT_NE(md.find("47.8k"), std::string::npos);  // sum of costs / 1000
  EXPECT_NE(md.find("yes"), std::string::npos);
}

TEST(ValidationTable, FlagsSloViolation) {
  ValidationRun run;
  run.method = "MAFF";
  run.workload = "video";
  run.slo_seconds = 100.0;
  support::Accumulator acc;
  acc.add(150.0);
  run.profile.makespan = acc.summary();
  const auto table = validation_table({run});
  EXPECT_NE(table.to_markdown().find("NO"), std::string::npos);
}

TEST(ReductionPercent, MatchesPaperArithmetic) {
  // Paper: AARC 435.0k vs BO 863.5k on ML Pipeline -> 49.6% cheaper.
  EXPECT_EQ(reduction_percent(435.0, 863.5), "49.6%");
  EXPECT_EQ(reduction_percent(200.0, 100.0), "-100.0%");
}

TEST(ReductionPercent, RejectsZeroBaseline) {
  EXPECT_THROW(reduction_percent(1.0, 0.0), support::ContractViolation);
}

}  // namespace
}  // namespace aarc::report
