#include "report/advisory.h"

#include <gtest/gtest.h>

#include "perf/analytic.h"
#include "platform/executor.h"
#include "support/contracts.h"

namespace aarc::report {
namespace {

std::unique_ptr<perf::PerfModel> fn(double serial) {
  perf::AnalyticParams p;
  p.io_seconds = 1.0;
  p.serial_seconds = serial;
  p.working_set_mb = 400.0;
  p.min_memory_mb = 192.0;
  return std::make_unique<perf::AnalyticModel>(p);
}

platform::Workflow chain() {
  platform::Workflow wf("chain");
  wf.add_function("first", fn(4.0));
  wf.add_function("second", fn(6.0));
  wf.add_edge("first", "second");
  return wf;
}

core::AdvisoryReport make_report(const platform::Workflow& wf) {
  platform::ExecutorOptions opts;
  opts.noise = perf::NoiseModel(0.0);
  const platform::Executor ex(std::make_unique<platform::DecoupledLinearPricing>(), opts);
  return core::advise(wf, platform::uniform_config(2, {1.0, 512.0}), ex, 30.0);
}

TEST(AdvisoryTable, OneRowPerFunctionWithNames) {
  const auto wf = chain();
  const auto table = advisory_table(make_report(wf), wf);
  EXPECT_EQ(table.rows(), 2u);
  const std::string md = table.to_markdown();
  EXPECT_NE(md.find("first"), std::string::npos);
  EXPECT_NE(md.find("second"), std::string::npos);
  EXPECT_NE(md.find("affinity"), std::string::npos);
  // A chain: both functions on the critical path.
  EXPECT_NE(md.find("yes"), std::string::npos);
}

TEST(AdvisoryTable, RejectsMismatchedWorkflow) {
  const auto wf = chain();
  platform::Workflow other("other");
  other.add_function("solo", fn(1.0));
  EXPECT_THROW(advisory_table(make_report(wf), other), support::ContractViolation);
}

TEST(AdvisoryHeadline, MentionsRuntimeSloAndCost) {
  const auto wf = chain();
  const std::string line = advisory_headline(make_report(wf));
  EXPECT_NE(line.find("mean runtime 12.0 s"), std::string::npos);
  EXPECT_NE(line.find("SLO 30 s"), std::string::npos);
  EXPECT_NE(line.find("headroom 60.0%"), std::string::npos);
  EXPECT_NE(line.find("mean cost"), std::string::npos);
}

}  // namespace
}  // namespace aarc::report
