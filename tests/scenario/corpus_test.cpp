// The checked-in corpus (data/scenarios/) must stay byte-identical to what
// the generator produces for its recorded (seed, index) provenance — the
// on-disk proof of the determinism contract, and a tripwire for accidental
// generator changes (which must regenerate the corpus, see doc/SCENARIOS.md).
#include <gtest/gtest.h>

#include <string>

#include "io/workflow_io.h"
#include "scenario/generator.h"
#include "scenario/scenario_io.h"

namespace aarc::scenario {
namespace {

std::string repo_root() {
  const std::string self = __FILE__;
  return self.substr(0, self.rfind("/tests/"));
}

/// Options data/scenarios was generated with:
///   aarc_cli gen-scenarios data/scenarios --count 10 --seed 42 --chaos-prob 0.2
GeneratorOptions corpus_options() {
  GeneratorOptions options;
  options.chaos_probability = 0.2;
  return options;
}

TEST(Corpus, CheckedInScenariosMatchTheirProvenance) {
  const std::string dir = repo_root() + "/data/scenarios/";
  std::size_t verified = 0;
  for (std::size_t index = 0; index < 10; ++index) {
    const Scenario expected = generate_scenario(42, index, corpus_options());
    const std::string path = dir + expected.name + ".json";
    const std::string on_disk = io::read_text_file(path);  // throws if missing
    EXPECT_EQ(on_disk, scenario_to_string(expected))
        << path << " drifted from generate_scenario(42, " << index << ")";
    ++verified;
  }
  EXPECT_EQ(verified, 10u);
}

TEST(Corpus, CheckedInScenariosParse) {
  const std::string dir = repo_root() + "/data/scenarios/";
  for (std::size_t index = 0; index < 10; ++index) {
    const Scenario expected = generate_scenario(42, index, corpus_options());
    const Scenario loaded =
        scenario_from_string(io::read_text_file(dir + expected.name + ".json"));
    EXPECT_EQ(loaded.name, expected.name);
    EXPECT_EQ(loaded.index, index);
    EXPECT_EQ(loaded.corpus_seed, 42u);
    EXPECT_GT(loaded.workload.workflow.function_count(), 0u);
  }
}

}  // namespace
}  // namespace aarc::scenario
