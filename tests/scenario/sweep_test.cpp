// Robustness-sweep harness contracts: clean audits, determinism across runs
// and thread counts, and a sane win rule on a small corpus.
#include "scenario/sweep.h"

#include <gtest/gtest.h>

#include "support/contracts.h"

namespace aarc::scenario {
namespace {

SweepOptions small_sweep() {
  SweepOptions opts;
  opts.scenario_count = 3;
  opts.seed = 42;
  opts.bo_max_samples = 30;
  opts.maff_max_samples = 30;
  opts.validation_runs = 10;
  opts.deep_audit_stride = 2;  // scenario 0 and 2 get the expensive audits
  opts.generator.chaos_probability = 0.5;
  return opts;
}

TEST(Sweep, SmallSweepAuditsCleanAndReproducesByteIdentically) {
  const SweepOptions opts = small_sweep();
  const SweepResult first = run_sweep(opts);
  const SweepResult second = run_sweep(opts);

  ASSERT_EQ(first.scenarios.size(), opts.scenario_count);
  for (const auto& v : first.violations) ADD_FAILURE() << to_string(v);
  EXPECT_EQ(sweep_to_json(opts, first).dump(2), sweep_to_json(opts, second).dump(2));
}

TEST(Sweep, ThreadCountDoesNotChangeResults) {
  SweepOptions opts = small_sweep();
  opts.scenario_count = 2;
  opts.deep_audit_stride = 0;  // thread determinism is the property under test
  const std::string single = sweep_to_json(opts, run_sweep(opts)).dump(2);
  opts.threads = 4;
  SweepOptions reference = opts;
  reference.threads = 1;
  // The options echo includes the thread count, so compare scenario rows via
  // the result of the 4-thread run rendered with the 1-thread options echo.
  const std::string parallel = sweep_to_json(reference, run_sweep(opts)).dump(2);
  EXPECT_EQ(single, parallel);
}

TEST(Sweep, ProgressCallbackSeesEveryScenarioInOrder) {
  const SweepOptions opts = small_sweep();
  std::vector<std::string> names;
  const SweepResult result = run_sweep(
      opts, [&names](const ScenarioOutcome& o) { names.push_back(o.name); });
  ASSERT_EQ(names.size(), result.scenarios.size());
  for (std::size_t i = 0; i < names.size(); ++i) {
    EXPECT_EQ(names[i], result.scenarios[i].name);
  }
}

TEST(Sweep, WinAccountingIsConsistent) {
  const SweepResult result = run_sweep(small_sweep());
  EXPECT_LE(result.wins(), result.scenarios.size());
  EXPECT_GE(result.aarc_win_rate(), 0.0);
  EXPECT_LE(result.aarc_win_rate(), 1.0);
  std::size_t wins = 0;
  for (const auto& o : result.scenarios) {
    if (o.aarc_win) ++wins;
    // A win requires AARC feasibility by definition.
    if (o.aarc_win) EXPECT_TRUE(o.aarc.feasible);
  }
  EXPECT_EQ(wins, result.wins());
}

TEST(Sweep, OptionsValidate) {
  SweepOptions opts;
  opts.scenario_count = 0;
  EXPECT_THROW(opts.validate(), support::ContractViolation);
  opts = {};
  opts.win_cost_slack = 0.5;
  EXPECT_THROW(opts.validate(), support::ContractViolation);
  opts = {};
  opts.validation_runs = 0;
  EXPECT_THROW(opts.validate(), support::ContractViolation);
}

}  // namespace
}  // namespace aarc::scenario
