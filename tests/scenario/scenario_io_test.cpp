// Scenario document schema: round trips, provenance, and error paths.
#include "scenario/scenario_io.h"

#include <gtest/gtest.h>

#include "scenario/generator.h"

namespace aarc::scenario {
namespace {

TEST(ScenarioIo, RoundTripPreservesEverything) {
  GeneratorOptions options;
  options.chaos_probability = 1.0;
  const Scenario original = generate_scenario(42, 2, options);
  const Scenario restored = scenario_from_string(scenario_to_string(original));

  EXPECT_EQ(restored.name, original.name);
  EXPECT_EQ(restored.corpus_seed, original.corpus_seed);
  EXPECT_EQ(restored.index, original.index);
  EXPECT_EQ(restored.topology, original.topology);
  EXPECT_EQ(restored.workload.workflow.function_count(),
            original.workload.workflow.function_count());
  EXPECT_DOUBLE_EQ(restored.workload.slo_seconds, original.workload.slo_seconds);
  EXPECT_EQ(restored.chaos.size(), original.chaos.size());
  // Byte-stability: print(parse(print(s))) == print(s).
  EXPECT_EQ(scenario_to_string(restored), scenario_to_string(original));
}

TEST(ScenarioIo, OmitsChaosKeyWhenEmpty) {
  const Scenario s = generate_scenario(42, 0);  // chaos_probability defaults to 0
  ASSERT_TRUE(s.chaos.empty());
  EXPECT_FALSE(scenario_to_json(s).contains("chaos"));
}

TEST(ScenarioIo, RejectsWrongOrMissingSchemaTag) {
  const Scenario s = generate_scenario(42, 0);
  io::Json doc = scenario_to_json(s);
  doc.as_object()["schema"] = "aarc-scenario-v999";
  EXPECT_THROW(scenario_from_json(doc), io::JsonError);
  doc.as_object().erase("schema");
  EXPECT_THROW(scenario_from_json(doc), io::JsonError);
}

TEST(ScenarioIo, RejectsMissingWorkload) {
  io::Json doc = scenario_to_json(generate_scenario(42, 0));
  doc.as_object().erase("workload");
  EXPECT_THROW(scenario_from_json(doc), io::JsonError);
}

TEST(ScenarioIo, RejectsMalformedProvenance) {
  io::Json doc = scenario_to_json(generate_scenario(42, 0));
  doc.as_object()["seed"] = "not-a-number";
  EXPECT_THROW(scenario_from_json(doc), io::JsonError);
}

}  // namespace
}  // namespace aarc::scenario
