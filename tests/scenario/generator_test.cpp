// Determinism and taxonomy-coverage contracts of the scenario generator
// (ISSUE 8 satellite): same seed => byte-identical scenario JSON across runs
// and thread counts; different seeds => every taxonomy class sampled with
// roughly uniform frequency.
#include "scenario/generator.h"

#include <gtest/gtest.h>

#include <map>

#include "platform/executor.h"
#include "platform/resource.h"
#include "scenario/audit.h"
#include "scenario/scenario_io.h"
#include "support/contracts.h"

namespace aarc::scenario {
namespace {

TEST(Generator, SameSeedIsByteIdentical) {
  GeneratorOptions options;
  options.chaos_probability = 0.5;  // exercise the chaos branch too
  for (std::size_t index = 0; index < 6; ++index) {
    const std::string a =
        scenario_to_string(generate_scenario(42, index, options));
    const std::string b =
        scenario_to_string(generate_scenario(42, index, options));
    EXPECT_EQ(a, b) << "scenario (42, " << index << ") not reproducible";
  }
}

TEST(Generator, CorpusMatchesOneShotGeneration) {
  // Order independence: scenario (seed, i) is the same bytes whether
  // generated alone or as part of a corpus.
  const auto corpus = generate_corpus(42, 6);
  for (std::size_t index = 0; index < corpus.size(); ++index) {
    EXPECT_EQ(scenario_to_string(corpus[index]),
              scenario_to_string(generate_scenario(42, index)));
  }
}

TEST(Generator, DifferentSeedsAndIndicesDiffer) {
  const std::string base = scenario_to_string(generate_scenario(42, 0));
  EXPECT_NE(base, scenario_to_string(generate_scenario(43, 0)));
  EXPECT_NE(base, scenario_to_string(generate_scenario(42, 1)));
}

TEST(Generator, CoversEveryTopologyClass) {
  // Chi-squared-style uniformity check over one seeded corpus: every class
  // present, and the frequency spread consistent with uniform sampling
  // (critical value for df=4 at alpha=0.001 is 18.47; the statistic is
  // deterministic for the fixed seed, so this cannot flake).
  constexpr std::size_t kCount = 60;
  std::map<TopologyKind, std::size_t> counts;
  for (const auto& s : generate_corpus(1234, kCount)) counts[s.topology] += 1;

  ASSERT_EQ(counts.size(), kTopologyKindCount) << "some taxonomy class never sampled";
  const double expected =
      static_cast<double>(kCount) / static_cast<double>(kTopologyKindCount);
  double chi_squared = 0.0;
  for (const auto kind : all_topology_kinds()) {
    ASSERT_GT(counts[kind], 0u) << "missing class " << to_string(kind);
    const double delta = static_cast<double>(counts[kind]) - expected;
    chi_squared += delta * delta / expected;
  }
  EXPECT_LT(chi_squared, 18.47);
}

TEST(Generator, SloIsFeasibleAtBaseConfigByConstruction) {
  const platform::Executor ex;
  const platform::ConfigGrid grid;
  for (std::size_t index = 0; index < 8; ++index) {
    const Scenario s = generate_scenario(7, index);
    const auto base = platform::uniform_config(
        s.workload.workflow.function_count(), grid.max_config());
    const auto run = ex.execute_mean(s.workload.workflow, base);
    ASSERT_FALSE(run.failed);
    EXPECT_LT(run.makespan, s.workload.slo_seconds)
        << s.name << ": SLO not feasible at the base configuration";
  }
}

TEST(Generator, ChaosOverlayIsValidAndWithinHorizon) {
  GeneratorOptions options;
  options.chaos_probability = 1.0;
  for (std::size_t index = 0; index < 5; ++index) {
    const Scenario s = generate_scenario(99, index, options);
    ASSERT_FALSE(s.chaos.empty());
    s.chaos.validate();  // throws on malformed incidents
    for (const auto& incident : s.chaos.incidents()) {
      EXPECT_GE(incident.start_seconds, 0.0);
      EXPECT_LE(incident.end_seconds, options.chaos_horizon_seconds);
    }
  }
}

TEST(Generator, RoundTripAuditIsClean) {
  GeneratorOptions options;
  options.chaos_probability = 0.5;
  options.input_sensitive_probability = 1.0;
  std::vector<AuditViolation> violations;
  for (std::size_t index = 0; index < 10; ++index) {
    audit_roundtrip(generate_scenario(11, index, options), violations);
  }
  for (const auto& v : violations) ADD_FAILURE() << to_string(v);
}

TEST(Generator, SchedulerThreadsAreBitIdentical) {
  // The --threads 1/8 contract on generated (not hand-written) workloads:
  // audit_thread_determinism runs AARC both ways and compares bitwise.
  const platform::Executor ex;
  const platform::ConfigGrid grid;
  std::vector<AuditViolation> violations;
  audit_thread_determinism(generate_scenario(42, 3), ex, grid, 2025, violations);
  for (const auto& v : violations) ADD_FAILURE() << to_string(v);
}

TEST(Generator, OptionsValidate) {
  GeneratorOptions options;
  options.max_depth = 1;
  options.min_depth = 3;
  EXPECT_THROW(options.validate(), support::ContractViolation);
  options = {};
  options.edge_density = 1.5;
  EXPECT_THROW(options.validate(), support::ContractViolation);
  options = {};
  options.slo_headroom_min = 0.9;  // < 1 would generate infeasible scenarios
  EXPECT_THROW(options.validate(), support::ContractViolation);
  options = {};
  options.chaos_probability = -0.1;
  EXPECT_THROW(options.validate(), support::ContractViolation);
}

TEST(Generator, TopologyNamesRoundTrip) {
  for (const auto kind : all_topology_kinds()) {
    EXPECT_EQ(topology_kind_from_string(to_string(kind)), kind);
  }
  EXPECT_THROW(topology_kind_from_string("moebius"), support::ContractViolation);
}

}  // namespace
}  // namespace aarc::scenario
