// Integration: the Input-Aware engine driving the serving simulator — the
// §IV-D loop end to end on a small synthetic workload.
#include <gtest/gtest.h>

#include "inputaware/engine.h"
#include "perf/analytic.h"
#include "serving/simulator.h"
#include "workloads/synthetic.h"

namespace aarc::serving {
namespace {

workloads::Workload sensitive_workload() {
  workloads::SyntheticOptions opts;
  opts.pattern = workloads::Pattern::Scatter;
  opts.layers = 2;
  opts.width = 2;
  opts.seed = 21;
  opts.slo_headroom = 3.0;
  workloads::Workload w = workloads::make_synthetic(opts);
  w.input_sensitive = true;
  // Upper-bound scales per class, as a continuous stream requires.
  w.input_classes = {{workloads::InputClass::Light, 0.5},
                     {workloads::InputClass::Middle, 1.2},
                     {workloads::InputClass::Heavy, 1.6}};
  return w;
}

TEST(EngineServing, EngineDispatchedStreamMeetsTheSlo) {
  const workloads::Workload w = sensitive_workload();
  const platform::Executor ex;
  inputaware::InputAwareEngine engine(w, ex, platform::ConfigGrid{});
  engine.build();

  // Requests spread out enough to avoid queueing noise; scales cover all
  // classes up to each class's provisioned bound.
  const inputaware::ReferenceInput ref;
  support::Rng rng(31);
  std::vector<Request> stream;
  double t = 0.0;
  for (int i = 0; i < 15; ++i) {
    t += rng.uniform(1.0, 10.0);
    Request r;
    r.arrival_seconds = t;
    r.input_scale = rng.uniform(0.2, 1.6);
    inputaware::InputDescriptor in = ref.descriptor;
    in.size_mb *= r.input_scale;
    in.bitrate_kbps *= r.input_scale;
    in.duration_seconds *= r.input_scale;
    r.config = engine.dispatch(in).report.result.best_config;
    stream.push_back(std::move(r));
  }

  const platform::DecoupledLinearPricing pricing;
  ServingOptions opts;
  opts.noise = perf::NoiseModel(0.0);
  opts.cold_start_min_seconds = 0.0;
  opts.cold_start_max_seconds = 0.0;
  const ServingSimulator sim(w.workflow, pricing, opts);
  const auto report = sim.serve(stream);

  EXPECT_EQ(report.failed_requests, 0u);
  // Without queueing/cold-starts, per-class provisioning guarantees the SLO.
  EXPECT_DOUBLE_EQ(report.slo_violation_rate(w.slo_seconds), 0.0);
  EXPECT_GT(report.warm_starts + report.cold_starts, 0u);
}

/// A workload whose memory footprint grows with the input (like Video
/// Analysis): per-class configurations genuinely differ.
workloads::Workload memory_scaling_workload() {
  perf::AnalyticParams p;
  p.io_seconds = 2.0;
  p.serial_seconds = 5.0;
  p.parallel_seconds = 30.0;
  p.max_parallelism = 4.0;
  p.working_set_mb = 2048.0;
  p.min_memory_mb = 1024.0;
  p.pressure_coeff = 4.0;
  p.input_memory_exp = 0.6;
  platform::Workflow wf("memscale");
  wf.add_function("a", std::make_unique<perf::AnalyticModel>(p));
  p.serial_seconds = 3.0;
  wf.add_function("b", std::make_unique<perf::AnalyticModel>(p));
  wf.add_edge("a", "b");
  workloads::Workload w(std::move(wf));
  w.slo_seconds = 200.0;
  w.input_sensitive = true;
  w.input_classes = {{workloads::InputClass::Light, 0.5},
                     {workloads::InputClass::Middle, 1.2},
                     {workloads::InputClass::Heavy, 1.6}};
  return w;
}

TEST(EngineServing, EngineIsCheaperThanWorstCaseProvisioningOnSmallInputs) {
  const workloads::Workload w = memory_scaling_workload();
  const platform::Executor ex;
  inputaware::InputAwareEngine engine(w, ex, platform::ConfigGrid{});
  engine.build();
  const auto& light = engine.configuration(workloads::InputClass::Light);
  const auto& heavy = engine.configuration(workloads::InputClass::Heavy);

  const platform::DecoupledLinearPricing pricing;
  ServingOptions opts;
  opts.noise = perf::NoiseModel(0.0);
  opts.cold_start_min_seconds = 0.0;
  opts.cold_start_max_seconds = 0.0;
  const ServingSimulator sim(w.workflow, pricing, opts);

  auto cost_with = [&](const platform::WorkflowConfig& cfg) {
    Request r;
    r.arrival_seconds = 0.0;
    r.input_scale = 0.3;  // a light request
    r.config = cfg;
    return sim.serve({r}).total_cost;
  };
  EXPECT_LT(cost_with(light.report.result.best_config),
            cost_with(heavy.report.result.best_config));
}

}  // namespace
}  // namespace aarc::serving
