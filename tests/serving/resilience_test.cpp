// Unit coverage of the graceful-degradation primitives: the circuit-breaker
// state machine (trip threshold, hold-off, half-open probe accounting, stale
// completions), the deterministic shed lottery, and option validation.
#include <gtest/gtest.h>

#include <cstddef>

#include "serving/resilience.h"
#include "support/contracts.h"

namespace aarc::serving {
namespace {

BreakerOptions small_breaker() {
  BreakerOptions opts;
  opts.enabled = true;
  opts.window = 8;
  opts.min_attempts = 4;
  opts.failure_threshold = 0.5;
  opts.open_seconds = 30.0;
  opts.half_open_probes = 1;
  return opts;
}

TEST(CircuitBreaker, DisabledBreakerAlwaysAllowsAndNeverTrips) {
  CircuitBreaker breaker{BreakerOptions{}};
  for (int i = 0; i < 100; ++i) breaker.record_failure(static_cast<double>(i));
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::Closed);
  EXPECT_TRUE(breaker.allow(1000.0));
  EXPECT_EQ(breaker.times_opened(), 0u);
}

TEST(CircuitBreaker, StaysClosedBelowMinAttempts) {
  CircuitBreaker breaker{small_breaker()};
  breaker.record_failure(1.0);
  breaker.record_failure(2.0);
  breaker.record_failure(3.0);  // 3 failures < min_attempts = 4
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::Closed);
  EXPECT_TRUE(breaker.allow(4.0));
}

TEST(CircuitBreaker, TripsAtTheWindowedFailureThreshold) {
  CircuitBreaker breaker{small_breaker()};
  breaker.record_success(1.0);
  breaker.record_success(2.0);
  breaker.record_failure(3.0);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::Closed);  // 1/3, below min
  breaker.record_failure(4.0);  // 2/4 failures >= threshold 0.5 at min attempts
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::Open);
  EXPECT_EQ(breaker.times_opened(), 1u);
  EXPECT_FALSE(breaker.allow(4.0));
}

TEST(CircuitBreaker, SlidingWindowForgetsOldOutcomes) {
  BreakerOptions opts = small_breaker();
  opts.window = 2;
  opts.min_attempts = 2;
  opts.failure_threshold = 1.0;  // trip only on an all-failure window
  CircuitBreaker breaker{opts};
  breaker.record_failure(1.0);
  breaker.record_success(2.0);
  breaker.record_success(3.0);
  breaker.record_failure(4.0);  // window is now {success, failure}: no trip
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::Closed);
  breaker.record_failure(5.0);  // window {failure, failure}: trips
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::Open);
}

TEST(CircuitBreaker, HoldOffThenHalfOpenProbeBudget) {
  CircuitBreaker breaker{small_breaker()};
  for (int i = 0; i < 4; ++i) breaker.record_failure(100.0);
  ASSERT_EQ(breaker.state(), CircuitBreaker::State::Open);

  EXPECT_FALSE(breaker.allow(129.9));  // hold-off (30 s) not yet elapsed
  // allow() is a pure admission query: repeated calls do not burn probes.
  EXPECT_TRUE(breaker.allow(130.0));
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::HalfOpen);
  EXPECT_TRUE(breaker.allow(130.5));

  breaker.on_attempt_start();          // the probe actually launches
  EXPECT_FALSE(breaker.allow(131.0));  // probe budget (1) exhausted
}

TEST(CircuitBreaker, HealthyProbeClosesOnAFreshWindow) {
  CircuitBreaker breaker{small_breaker()};
  for (int i = 0; i < 4; ++i) breaker.record_failure(100.0);
  ASSERT_TRUE(breaker.allow(130.0));
  breaker.on_attempt_start();
  breaker.record_success(131.0);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::Closed);
  EXPECT_TRUE(breaker.allow(131.0));
  // The window restarted: it takes a full min_attempts of failures to
  // re-trip, not a leftover from before the outage.
  breaker.record_failure(132.0);
  breaker.record_failure(133.0);
  breaker.record_failure(134.0);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::Closed);
  breaker.record_failure(135.0);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::Open);
  EXPECT_EQ(breaker.times_opened(), 2u);
}

TEST(CircuitBreaker, FailedProbeReopensImmediately) {
  CircuitBreaker breaker{small_breaker()};
  for (int i = 0; i < 4; ++i) breaker.record_failure(100.0);
  ASSERT_TRUE(breaker.allow(130.0));
  breaker.on_attempt_start();
  breaker.record_failure(140.0);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::Open);
  EXPECT_EQ(breaker.times_opened(), 2u);
  EXPECT_FALSE(breaker.allow(169.9));  // hold-off restarts from the re-open
  EXPECT_TRUE(breaker.allow(170.0));
}

TEST(CircuitBreaker, StaleCompletionsWhileOpenAreIgnored) {
  CircuitBreaker breaker{small_breaker()};
  for (int i = 0; i < 4; ++i) breaker.record_failure(100.0);
  ASSERT_EQ(breaker.state(), CircuitBreaker::State::Open);
  // In-flight attempts from before the trip finish while the breaker is
  // open; they must not pollute the post-recovery window or close anything.
  breaker.record_success(101.0);
  breaker.record_failure(102.0);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::Open);
  EXPECT_EQ(breaker.times_opened(), 1u);
}

TEST(BreakerOptions, ValidateRejectsBadKnobsWithValues) {
  BreakerOptions opts = small_breaker();
  opts.failure_threshold = 0.0;
  EXPECT_THROW(opts.validate(), support::ContractViolation);
  opts = small_breaker();
  opts.failure_threshold = 1.5;
  try {
    opts.validate();
    FAIL() << "expected ContractViolation";
  } catch (const support::ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("1.5"), std::string::npos) << e.what();
  }
  opts = small_breaker();
  opts.min_attempts = 20;  // > window
  EXPECT_THROW(opts.validate(), support::ContractViolation);
  opts = small_breaker();
  opts.half_open_probes = 0;
  EXPECT_THROW(opts.validate(), support::ContractViolation);
  // Disabled options skip validation entirely (nothing can fire).
  opts = BreakerOptions{};
  opts.failure_threshold = -3.0;
  EXPECT_NO_THROW(opts.validate());
}

TEST(ShedOptions, LotteryIsDeterministicAndSeedIndependent) {
  ShedOptions opts;
  opts.queue_high_watermark = 100;
  opts.sheddable_fraction = 0.5;
  std::size_t shed = 0;
  for (std::size_t index = 0; index < 10000; ++index) {
    const bool first = opts.sheddable(index);
    EXPECT_EQ(first, opts.sheddable(index));  // pure function of the index
    if (first) ++shed;
  }
  // The Knuth hash spreads the lottery near the requested fraction.
  EXPECT_NEAR(static_cast<double>(shed) / 10000.0, 0.5, 0.05);

  opts.sheddable_fraction = 0.0;
  EXPECT_FALSE(opts.sheddable(7));
  opts.sheddable_fraction = 1.0;
  EXPECT_TRUE(opts.sheddable(7));
}

TEST(ShedOptions, WatermarksDefaultAndValidate) {
  ShedOptions opts;
  opts.queue_high_watermark = 64;
  EXPECT_EQ(opts.effective_low_watermark(), 32u);  // default: half the high
  opts.queue_low_watermark = 8;
  EXPECT_EQ(opts.effective_low_watermark(), 8u);
  EXPECT_NO_THROW(opts.validate());
  opts.queue_low_watermark = 65;
  EXPECT_THROW(opts.validate(), support::ContractViolation);
  opts.queue_low_watermark = 0;
  opts.sheddable_fraction = 1.2;
  EXPECT_THROW(opts.validate(), support::ContractViolation);
}

TEST(ResilienceOptions, DefaultIsFullyDisabled) {
  const ResilienceOptions opts;
  EXPECT_FALSE(opts.any_enabled());
  EXPECT_FALSE(opts.hedge.enabled());
  EXPECT_FALSE(opts.shed.enabled());
  EXPECT_NO_THROW(opts.validate());

  ResilienceOptions hedged;
  hedged.hedge.delay_seconds = 12.0;
  EXPECT_TRUE(hedged.any_enabled());
  hedged.hedge.delay_seconds = -1.0;
  EXPECT_THROW(hedged.validate(), support::ContractViolation);
}

}  // namespace
}  // namespace aarc::serving
