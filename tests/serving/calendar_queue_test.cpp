// CalendarQueue vs a reference binary heap: identical (time, sequence) pop
// order under DES-shaped workloads (monotone "now", events pushed into the
// future), across resizes, sparse far-future jumps and full drains.
#include "serving/calendar_queue.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <queue>
#include <vector>

#include "support/rng.h"

namespace aarc::serving {
namespace {

struct Ev {
  double time = 0.0;
  std::uint64_t sequence = 0;
};

struct Later {
  bool operator()(const Ev& a, const Ev& b) const {
    if (a.time != b.time) return a.time > b.time;
    return a.sequence > b.sequence;
  }
};

using ReferenceHeap = std::priority_queue<Ev, std::vector<Ev>, Later>;

/// Interleaved pushes and pops mimicking a simulation loop: seed events
/// arrive in time order (like a sorted arrival stream), then each popped
/// event may schedule a few more at now + positive offset.  This is the
/// queue's contract — a resize re-anchors the current day at the earliest
/// live event, so pushes must never go behind it.
void run_des_workload(double mean_offset, std::size_t initial, std::uint64_t seed) {
  CalendarQueue<Ev> queue;
  ReferenceHeap heap;
  support::Rng rng(seed);
  std::uint64_t sequence = 0;

  std::vector<double> seed_times;
  for (std::size_t i = 0; i < initial; ++i) {
    seed_times.push_back(rng.uniform(0.0, mean_offset));
  }
  std::sort(seed_times.begin(), seed_times.end());
  for (double t : seed_times) {
    Ev ev{t, sequence++};
    queue.push(ev);
    heap.push(ev);
  }

  std::size_t popped = 0;
  while (!queue.empty()) {
    ASSERT_FALSE(heap.empty());
    const Ev expected = heap.top();
    heap.pop();
    const Ev got = queue.pop();
    ASSERT_EQ(expected.time, got.time) << "pop #" << popped;
    ASSERT_EQ(expected.sequence, got.sequence) << "pop #" << popped;
    ++popped;

    // Schedule follow-ups while the stream is young, like completions do.
    if (popped < initial * 3 && rng.uniform(0.0, 1.0) < 0.6) {
      const std::size_t fanout = rng.uniform(0.0, 1.0) < 0.2 ? 2 : 1;
      for (std::size_t j = 0; j < fanout; ++j) {
        Ev ev{got.time + rng.uniform(1e-6, mean_offset), sequence++};
        queue.push(ev);
        heap.push(ev);
      }
    }
  }
  EXPECT_TRUE(heap.empty());
  EXPECT_EQ(queue.size(), 0u);
}

TEST(CalendarQueue, MatchesHeapOnDenseTraffic) { run_des_workload(2.0, 500, 11); }

TEST(CalendarQueue, MatchesHeapOnSparseTraffic) {
  // Offsets far beyond the initial day width force the empty-year jump.
  run_des_workload(5000.0, 200, 12);
}

TEST(CalendarQueue, MatchesHeapAcrossResizes) {
  // Enough simultaneous events to trigger several growth resizes, then a
  // full drain through the shrink path.
  run_des_workload(50.0, 5000, 13);
}

TEST(CalendarQueue, TieBreaksBySequence) {
  CalendarQueue<Ev> queue;
  queue.push({1.0, 2});
  queue.push({1.0, 0});
  queue.push({1.0, 1});
  EXPECT_EQ(queue.pop().sequence, 0u);
  EXPECT_EQ(queue.pop().sequence, 1u);
  EXPECT_EQ(queue.pop().sequence, 2u);
}

TEST(CalendarQueue, PopOnEmptyViolatesContract) {
  CalendarQueue<Ev> queue;
  EXPECT_THROW(queue.pop(), support::ContractViolation);
}

TEST(CalendarQueue, PushIntoThePastViolatesContract) {
  CalendarQueue<Ev> queue(1.0, 16);
  queue.push({100.0, 0});
  (void)queue.pop();  // the current day has advanced well past zero
  EXPECT_THROW(queue.push({0.5, 1}), support::ContractViolation);
}

}  // namespace
}  // namespace aarc::serving
