// The serving engine under chaos incidents and the graceful-degradation
// stack: an inactive schedule changes nothing bit-for-bit, an outage trips
// circuit breakers into fast-fails and the function recovers after the
// window, shedding bounds the queue under overload, and hedging cuts the
// straggler tail — all deterministic from the engine seed.
#include <gtest/gtest.h>

#include <memory>

#include "chaos/incident.h"
#include "perf/analytic.h"
#include "platform/pricing.h"
#include "serving/engine.h"

namespace aarc::serving {
namespace {

std::unique_ptr<perf::PerfModel> fn(double serial) {
  perf::AnalyticParams p;
  p.serial_seconds = serial;
  p.working_set_mb = 256.0;
  p.min_memory_mb = 128.0;
  p.pressure_coeff = 0.0;
  return std::make_unique<perf::AnalyticModel>(p);
}

platform::Workflow solo(double serial = 1.0) {
  platform::Workflow wf("solo");
  wf.add_function("only", fn(serial));
  return wf;
}

const platform::DecoupledLinearPricing kPricing;

chaos::Incident outage(double start, double end, double severity = 1.0) {
  chaos::Incident incident;
  incident.kind = chaos::IncidentKind::Outage;
  incident.start_seconds = start;
  incident.end_seconds = end;
  incident.severity = severity;
  return incident;
}

StreamingReport run_poisson(const platform::Workflow& wf, const EngineOptions& opts,
                            std::size_t count, double rate,
                            std::uint64_t arrival_seed) {
  ArrivalLimits limits;
  limits.max_requests = count;
  PoissonProcess arrivals(rate, ScaleSpec{}, limits, arrival_seed);
  const ServingEngine engine(wf, kPricing, opts);
  return engine.run(arrivals,
                    platform::uniform_config(wf.function_count(), {1.0, 512.0}));
}

TEST(ChaosServing, InactiveScheduleIsBitIdenticalToNoChaos) {
  // A schedule whose only incident lies far beyond the traffic horizon must
  // not change a single bit of the run: same RNG consumption, same outcomes.
  const platform::Workflow wf = solo();
  EngineOptions base;
  base.seed = 404;
  base.retain_outcomes = true;
  platform::FaultRates rates;
  rates.transient_crash = 0.1;
  rates.straggler = 0.1;
  base.faults = platform::FaultModel{rates};
  base.retry.max_attempts = 2;

  EngineOptions with_chaos = base;
  with_chaos.chaos.add(outage(1e7, 1e7 + 100.0));

  const StreamingReport a = run_poisson(wf, base, 300, 0.3, 99);
  const StreamingReport b = run_poisson(wf, with_chaos, 300, 0.3, 99);

  EXPECT_EQ(b.chaos_modulated_attempts, 0u);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.failed_requests, b.failed_requests);
  EXPECT_EQ(a.cold_starts, b.cold_starts);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.total_cost, b.total_cost);  // exact: identical event order
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_EQ(a.outcomes[i].completion, b.outcomes[i].completion) << "request " << i;
    EXPECT_EQ(a.outcomes[i].cost, b.outcomes[i].cost) << "request " << i;
  }
}

TEST(ChaosServing, OutageTripsBreakersFastFailsAndRecovers) {
  const platform::Workflow wf = solo();
  EngineOptions opts;
  opts.seed = 7;
  opts.retain_outcomes = true;
  opts.chaos.add(outage(100.0, 400.0));  // severity 1: every attempt crashes
  opts.resilience.breaker.enabled = true;
  opts.resilience.breaker.window = 10;
  opts.resilience.breaker.min_attempts = 5;
  opts.resilience.breaker.failure_threshold = 0.6;
  opts.resilience.breaker.open_seconds = 50.0;

  const StreamingReport report = run_poisson(wf, opts, 400, 0.5, 21);

  EXPECT_GT(report.chaos_modulated_attempts, 0u);
  EXPECT_GE(report.breaker_opens, 1u);
  EXPECT_GT(report.breaker_fastfail_requests, 0u);
  EXPECT_GT(report.completed, 0u);

  bool recovered = false;
  for (const RequestOutcome& out : report.outcomes) {
    if (out.breaker_fastfail) {
      // Fast-fails never touch the platform: no attempts, no bill.
      EXPECT_TRUE(out.failed);
      EXPECT_EQ(out.invocations, 0u);
      EXPECT_DOUBLE_EQ(out.cost, 0.0);
    }
    // Past the incident plus one hold-off, the half-open probe has closed
    // the breaker and traffic flows again.
    if (!out.failed && out.arrival > 500.0) recovered = true;
  }
  EXPECT_TRUE(recovered);

  // Deterministic from the seed: an identical run reproduces every counter.
  const StreamingReport again = run_poisson(wf, opts, 400, 0.5, 21);
  EXPECT_EQ(again.breaker_fastfail_requests, report.breaker_fastfail_requests);
  EXPECT_EQ(again.breaker_opens, report.breaker_opens);
  EXPECT_EQ(again.completed, report.completed);
  EXPECT_EQ(again.total_cost, report.total_cost);
}

TEST(ChaosServing, WithoutBreakersTheOutageBurnsAttemptsInstead) {
  // Control run for the breaker test: same outage, breakers off — every
  // in-window request burns real (billed) attempts and there are no
  // fast-fails.  This is the cost the breaker exists to avoid.
  const platform::Workflow wf = solo();
  EngineOptions opts;
  opts.seed = 7;
  opts.chaos.add(outage(100.0, 400.0));
  opts.retry.max_attempts = 3;

  const StreamingReport report = run_poisson(wf, opts, 400, 0.5, 21);
  EXPECT_EQ(report.breaker_fastfail_requests, 0u);
  EXPECT_EQ(report.breaker_opens, 0u);
  EXPECT_GT(report.failed_after_retries, 0u);
  EXPECT_GT(report.retries, 0u);
}

TEST(ChaosServing, SheddingBoundsTheQueueUnderOverload) {
  // One container serving 2 s work against 2 rps arrivals: the queue grows
  // without bound unless shedding drops the low-priority half at the door.
  const platform::Workflow wf = solo(2.0);
  EngineOptions base;
  base.seed = 11;
  base.retain_outcomes = true;
  base.max_containers_per_function = 1;

  EngineOptions shedding = base;
  shedding.resilience.shed.queue_high_watermark = 20;
  shedding.resilience.shed.sheddable_fraction = 0.5;

  const StreamingReport unshed = run_poisson(wf, base, 300, 2.0, 5);
  const StreamingReport shed = run_poisson(wf, shedding, 300, 2.0, 5);

  EXPECT_EQ(unshed.shed_requests, 0u);
  EXPECT_GT(shed.shed_requests, 0u);
  EXPECT_LT(shed.shed_requests, shed.requests);  // high-priority half survives
  EXPECT_LE(shed.peak_queue_depth, unshed.peak_queue_depth);

  for (const RequestOutcome& out : shed.outcomes) {
    if (!out.shed) continue;
    // Dropped at the door: failed, never invoked, never billed.
    EXPECT_TRUE(out.failed);
    EXPECT_EQ(out.invocations, 0u);
    EXPECT_DOUBLE_EQ(out.cost, 0.0);
  }
}

TEST(ChaosServing, HedgingCutsTheStragglerTail) {
  // 20% stragglers at 10x runtime; a hedge fires once a clean attempt's
  // sampled duration exceeds 2 s, so only stragglers hedge.  A request stays
  // slow only when primary AND hedge both straggle (4%), so the p95 falls
  // from the ~10 s straggler plateau to the hedge's cold start + runtime.
  const platform::Workflow wf = solo();
  EngineOptions base;
  base.seed = 31;
  platform::FaultRates rates;
  rates.straggler = 0.2;
  rates.straggler_multiplier = 10.0;
  base.faults = platform::FaultModel{rates};

  EngineOptions hedged = base;
  hedged.resilience.hedge.delay_seconds = 2.0;

  const StreamingReport plain = run_poisson(wf, base, 500, 0.05, 77);
  const StreamingReport fast = run_poisson(wf, hedged, 500, 0.05, 77);

  EXPECT_EQ(plain.hedges, 0u);
  EXPECT_GT(fast.hedges, 0u);
  EXPECT_GT(fast.hedge_wins, 0u);
  EXPECT_GT(fast.hedge_win_rate(), 0.5);  // most hedges beat a 10x straggler
  EXPECT_EQ(fast.completed, fast.requests);  // hedging never fails a request
  EXPECT_LT(fast.latency_p95(), 0.7 * plain.latency_p95());
  EXPECT_LT(fast.latency.mean, plain.latency.mean);
}

}  // namespace
}  // namespace aarc::serving
