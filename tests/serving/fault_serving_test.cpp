// Fault-injection behavior of the serving simulator: retries, timeouts,
// failure accounting, and byte-identical determinism under a fixed seed.
#include <gtest/gtest.h>

#include <algorithm>

#include "perf/analytic.h"
#include "platform/executor.h"
#include "serving/simulator.h"

namespace aarc::serving {
namespace {

std::unique_ptr<perf::PerfModel> fn(double serial) {
  perf::AnalyticParams p;
  p.serial_seconds = serial;
  p.working_set_mb = 256.0;
  p.min_memory_mb = 128.0;
  p.pressure_coeff = 0.0;
  return std::make_unique<perf::AnalyticModel>(p);
}

platform::Workflow chain() {
  platform::Workflow wf("chain");
  wf.add_function("a", fn(4.0));
  wf.add_function("b", fn(6.0));
  wf.add_edge("a", "b");
  return wf;
}

ServingOptions clean_options() {
  ServingOptions opts;
  opts.noise = perf::NoiseModel(0.0);
  opts.cold_start_min_seconds = 1.0;
  opts.cold_start_max_seconds = 1.0;
  return opts;
}

Request request_at(double t) {
  Request r;
  r.arrival_seconds = t;
  r.input_scale = 1.0;
  r.config = platform::uniform_config(2, {1.0, 512.0});
  return r;
}

const platform::DecoupledLinearPricing kPricing;

platform::FaultRates crash_rate(double p) {
  platform::FaultRates r;
  r.transient_crash = p;
  return r;
}

TEST(ServingFaults, CertainCrashWithoutRetriesFailsEveryRequest) {
  const platform::Workflow wf = chain();
  ServingOptions opts = clean_options();
  opts.faults = platform::FaultModel{crash_rate(1.0)};
  const ServingSimulator sim(wf, kPricing, opts);
  const auto report = sim.serve({request_at(0.0), request_at(30.0)});
  EXPECT_EQ(report.failed_requests, 2u);
  EXPECT_EQ(report.failed_after_retries, 2u);
  EXPECT_EQ(report.retries, 0u);
  EXPECT_DOUBLE_EQ(report.request_failure_rate(), 1.0);
  EXPECT_DOUBLE_EQ(report.slo_violation_rate(60.0), 1.0);
  // Crashed attempts are still billed for the time they burned.
  EXPECT_GT(report.total_cost, 0.0);
}

TEST(ServingFaults, RetriesRecoverCrashedRequests) {
  const platform::Workflow wf = chain();
  ServingOptions opts = clean_options();
  opts.faults = platform::FaultModel{crash_rate(0.3)};
  opts.retry.max_attempts = 6;
  opts.seed = 17;
  const ServingSimulator sim(wf, kPricing, opts);
  std::vector<Request> stream;
  for (int i = 0; i < 40; ++i) stream.push_back(request_at(40.0 * i));
  const auto report = sim.serve(stream);
  EXPECT_GT(report.retries, 0u);  // faults fired and were retried
  EXPECT_EQ(report.failed_requests, 0u);
  EXPECT_EQ(report.failed_after_retries, 0u);
  // Every retry is an extra attempt on some request.
  std::size_t attempts = 0;
  for (const auto& r : report.requests) attempts += r.invocations;
  EXPECT_EQ(attempts, 2 * stream.size() + report.retries);
}

TEST(ServingFaults, RetriesReduceFailureRateVersusNoRetries) {
  const platform::Workflow wf = chain();
  std::vector<Request> stream;
  for (int i = 0; i < 60; ++i) stream.push_back(request_at(40.0 * i));

  ServingOptions no_retry = clean_options();
  no_retry.faults = platform::FaultModel{crash_rate(0.2)};
  no_retry.seed = 5;
  ServingOptions with_retry = no_retry;
  with_retry.retry.max_attempts = 4;

  const auto base = ServingSimulator(wf, kPricing, no_retry).serve(stream);
  const auto hardened = ServingSimulator(wf, kPricing, with_retry).serve(stream);
  EXPECT_GT(base.failed_requests, 0u);
  EXPECT_LT(hardened.failed_requests, base.failed_requests);
  EXPECT_LT(hardened.slo_violation_rate(60.0), base.slo_violation_rate(60.0));
}

TEST(ServingFaults, TimeoutCutsRunawayAttempts) {
  const platform::Workflow wf = chain();
  ServingOptions opts = clean_options();
  platform::FaultRates r;
  r.straggler = 1.0;
  r.straggler_multiplier = 10.0;  // every attempt runs 10x: 40 s and 60 s
  opts.faults = platform::FaultModel{r};
  opts.retry.timeout_seconds = 8.0;
  opts.retry.max_attempts = 2;
  opts.retry.backoff_initial_seconds = 0.0;
  opts.retry.backoff_jitter_fraction = 0.0;
  const ServingSimulator sim(wf, kPricing, opts);
  const auto report = sim.serve({request_at(0.0)});
  EXPECT_EQ(report.failed_requests, 1u);
  EXPECT_EQ(report.timeouts, 2u);  // both attempts of "a" timed out
  EXPECT_EQ(report.requests[0].timeouts, 2u);
  // Billed exactly the timeout (plus the 1 s cold start) per attempt.
  const double expected = 2 * kPricing.invocation_cost({1.0, 512.0}, 8.0 + 1.0);
  EXPECT_NEAR(report.requests[0].cost, expected, 1e-9);
}

TEST(ServingFaults, DeterministicByteIdenticalReportsUnderSeed) {
  const platform::Workflow wf = chain();
  ServingOptions opts;  // default 3% noise, random cold starts
  platform::FaultRates r = crash_rate(0.15);
  r.straggler = 0.1;
  r.cold_spike = 0.1;
  r.throttle = 0.1;
  opts.faults = platform::FaultModel{r};
  opts.retry.max_attempts = 3;
  opts.retry.timeout_seconds = 90.0;
  opts.seed = 31;
  const ServingSimulator sim(wf, kPricing, opts);
  const auto stream = poisson_stream(
      50, 0.05, 0.5, 1.5, platform::uniform_config(2, {1.0, 512.0}), 7);
  const auto a = sim.serve(stream);
  const auto b = sim.serve(stream);
  ASSERT_EQ(a.requests.size(), b.requests.size());
  for (std::size_t i = 0; i < a.requests.size(); ++i) {
    const auto& ra = a.requests[i];
    const auto& rb = b.requests[i];
    EXPECT_DOUBLE_EQ(ra.completion, rb.completion);
    EXPECT_DOUBLE_EQ(ra.cost, rb.cost);
    EXPECT_EQ(ra.cold_starts, rb.cold_starts);
    EXPECT_EQ(ra.invocations, rb.invocations);
    EXPECT_EQ(ra.retries, rb.retries);
    EXPECT_EQ(ra.timeouts, rb.timeouts);
    EXPECT_EQ(ra.failed, rb.failed);
  }
  EXPECT_DOUBLE_EQ(a.total_cost, b.total_cost);
  EXPECT_EQ(a.cold_starts, b.cold_starts);
  EXPECT_EQ(a.warm_starts, b.warm_starts);
  EXPECT_EQ(a.failed_requests, b.failed_requests);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.timeouts, b.timeouts);
  EXPECT_EQ(a.failed_after_retries, b.failed_after_retries);
  EXPECT_EQ(a.peak_containers, b.peak_containers);
  EXPECT_DOUBLE_EQ(a.latency.mean, b.latency.mean);
}

TEST(ServingFaults, FaultsOffMatchesLegacyStreamExactly) {
  // A fault model with all-zero rates must not consume randomness: reports
  // are bit-identical with and without the (disabled) fault layer.
  const platform::Workflow wf = chain();
  ServingOptions plain;
  plain.seed = 77;
  ServingOptions layered = plain;
  layered.faults = platform::FaultModel{platform::FaultRates{}};
  layered.retry = platform::RetryPolicy{};
  const auto stream = poisson_stream(
      25, 0.1, 0.8, 1.2, platform::uniform_config(2, {1.0, 512.0}), 3);
  const auto a = ServingSimulator(wf, kPricing, plain).serve(stream);
  const auto b = ServingSimulator(wf, kPricing, layered).serve(stream);
  ASSERT_EQ(a.requests.size(), b.requests.size());
  for (std::size_t i = 0; i < a.requests.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.requests[i].completion, b.requests[i].completion);
    EXPECT_DOUBLE_EQ(a.requests[i].cost, b.requests[i].cost);
  }
  EXPECT_DOUBLE_EQ(a.total_cost, b.total_cost);
}

}  // namespace
}  // namespace aarc::serving
