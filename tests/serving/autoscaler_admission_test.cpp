// The two overload-era controls of the serving engine: reactive autoscaling
// (pre-warm toward demand, retire idle capacity, hold a warm floor) and
// admission control (bounded per-function queues => bounded latency, with
// rejections counted as failures and SLO violations).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "perf/analytic.h"
#include "platform/pricing.h"
#include "serving/engine.h"

namespace aarc::serving {
namespace {

std::unique_ptr<perf::PerfModel> fn(double serial) {
  perf::AnalyticParams p;
  p.serial_seconds = serial;
  p.working_set_mb = 256.0;
  p.min_memory_mb = 128.0;
  p.pressure_coeff = 0.0;
  return std::make_unique<perf::AnalyticModel>(p);
}

platform::Workflow chain() {
  platform::Workflow wf("chain");
  wf.add_function("a", fn(4.0));
  wf.add_function("b", fn(6.0));
  wf.add_edge("a", "b");
  return wf;
}

const platform::DecoupledLinearPricing kPricing;
const platform::WorkflowConfig kConfig = platform::uniform_config(2, {1.0, 512.0});

EngineOptions quiet_options() {
  EngineOptions opts;
  opts.noise = perf::NoiseModel(0.0);
  opts.cold_start_min_seconds = 1.0;
  opts.cold_start_max_seconds = 1.0;
  return opts;
}

StreamingReport run(const platform::Workflow& wf, const EngineOptions& opts,
                    ArrivalProcess& arrivals) {
  arrivals.reset();
  const ServingEngine engine(wf, kPricing, opts);
  return engine.run(arrivals, kConfig);
}

TEST(Autoscaler, ScaleUpPrewarmsAndCutsRequestColdStarts) {
  const platform::Workflow wf = chain();
  // Bursts spaced beyond keep-alive: without the autoscaler every burst
  // re-provisions its containers from scratch and the requests pay for it.
  std::vector<Arrival> trace;
  for (int burst = 0; burst < 5; ++burst) {
    for (int i = 0; i < 30; ++i) trace.push_back({120.0 * burst + 0.2 * i, 1.0});
  }
  TraceReplayProcess arrivals(trace);

  EngineOptions off = quiet_options();
  off.keep_alive_seconds = 60.0;
  const StreamingReport base = run(wf, off, arrivals);

  EngineOptions on = off;
  on.autoscaler.enabled = true;
  on.autoscaler.interval_seconds = 5.0;
  on.autoscaler.min_warm = 30;  // the floor re-provisions between bursts
  const StreamingReport scaled = run(wf, on, arrivals);

  EXPECT_GT(scaled.prewarmed_containers, 0u);
  EXPECT_GT(scaled.autoscale_ups, 0u);
  // Pre-warms pay the platform's cold starts so requests don't: only the
  // very first burst (before the first control tick) still pays its own.
  EXPECT_LT(scaled.cold_starts, base.cold_starts / 2);
  EXPECT_EQ(scaled.completed, base.completed);
  EXPECT_EQ(scaled.failed_requests, 0u);
}

TEST(Autoscaler, ScaleDownRetiresIdleCapacityAfterABurst) {
  const platform::Workflow wf = chain();
  // A tight burst strands warm containers, then sparse stragglers keep the
  // clock (and the control loop) running long after demand has collapsed.
  std::vector<Arrival> trace;
  for (int i = 0; i < 40; ++i) trace.push_back({0.1 * i, 1.0});
  for (int i = 0; i < 10; ++i) trace.push_back({100.0 + 30.0 * i, 1.0});
  TraceReplayProcess arrivals(trace);

  EngineOptions opts = quiet_options();
  opts.keep_alive_seconds = 10'000.0;  // keep-alive alone would never drain
  opts.autoscaler.enabled = true;
  opts.autoscaler.interval_seconds = 5.0;
  const StreamingReport report = run(wf, opts, arrivals);

  EXPECT_GT(report.retired_containers, 0u);
  EXPECT_GT(report.autoscale_downs, 0u);
  EXPECT_EQ(report.failed_requests, 0u);
}

TEST(Autoscaler, MinWarmHoldsAFloorOfWarmContainers) {
  const platform::Workflow wf = chain();
  std::vector<Arrival> trace{{0.0, 1.0}, {60.0, 1.0}};
  TraceReplayProcess arrivals(trace);

  EngineOptions opts = quiet_options();
  opts.autoscaler.enabled = true;
  opts.autoscaler.interval_seconds = 5.0;
  opts.autoscaler.min_warm = 4;
  const StreamingReport report = run(wf, opts, arrivals);

  // Two near-idle requests can never need 8 containers; the floor does.
  // (The first request's own cold start covers one of the 4-per-function.)
  EXPECT_GE(report.prewarmed_containers, 7u);
  EXPECT_GE(report.peak_containers, 8u);
}

TEST(Admission, OverloadRejectsInsteadOfQueueingUnboundedly) {
  const platform::Workflow wf = chain();
  ArrivalLimits limits;
  limits.max_requests = 120;
  PoissonProcess arrivals(2.0, {}, limits, 33);

  EngineOptions opts = quiet_options();
  opts.max_containers_per_function = 1;
  opts.admission.max_queue_per_function = 2;
  opts.slo_seconds = 30.0;
  const StreamingReport report = run(wf, opts, arrivals);

  EXPECT_GT(report.rejected_requests, 0u);
  EXPECT_LE(report.peak_queue_depth, 2u);
  // Every rejection is a failure and an SLO violation.
  EXPECT_GE(report.failed_requests, report.rejected_requests);
  EXPECT_GE(report.slo_violations, report.rejected_requests);
}

TEST(Admission, BoundedQueueBoundsSuccessfulLatency) {
  const platform::Workflow wf = chain();
  ArrivalLimits limits;
  limits.max_requests = 120;
  PoissonProcess arrivals(2.0, {}, limits, 33);

  EngineOptions unbounded = quiet_options();
  unbounded.max_containers_per_function = 1;
  unbounded.retain_outcomes = true;
  const StreamingReport base = run(wf, unbounded, arrivals);

  EngineOptions bounded = unbounded;
  bounded.admission.max_queue_per_function = 2;
  const StreamingReport capped = run(wf, bounded, arrivals);

  auto max_latency = [](const StreamingReport& report) {
    double worst = 0.0;
    for (const auto& out : report.outcomes) {
      if (!out.failed) worst = std::max(worst, out.latency());
    }
    return worst;
  };
  // Unbounded FIFO latency grows with the backlog; a 2-deep queue caps the
  // wait at a few service times.
  EXPECT_GT(max_latency(base), 10.0 * max_latency(capped));
  EXPECT_EQ(base.rejected_requests, 0u);
  EXPECT_GT(capped.rejected_requests, 0u);
}

}  // namespace
}  // namespace aarc::serving
