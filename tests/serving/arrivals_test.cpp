// Arrival processes: determinism, reset, limits, drift, and draw-for-draw
// equivalence between PoissonProcess and the legacy poisson_stream helper.
#include "serving/arrivals.h"

#include <gtest/gtest.h>

#include "platform/resource.h"
#include "serving/simulator.h"
#include "support/contracts.h"

namespace aarc::serving {
namespace {

TEST(PoissonProcess, MatchesLegacyPoissonStreamDrawForDraw) {
  const platform::WorkflowConfig config =
      platform::uniform_config(3, {2.0, 1024.0});
  const auto legacy = poisson_stream(200, 0.8, 0.5, 1.5, config, 42);

  ScaleSpec scales;
  scales.scale_min = 0.5;
  scales.scale_max = 1.5;
  ArrivalLimits limits;
  limits.max_requests = 200;
  PoissonProcess process(0.8, scales, limits, 42);

  for (const auto& request : legacy) {
    const auto arrival = process.next();
    ASSERT_TRUE(arrival.has_value());
    EXPECT_EQ(arrival->time, request.arrival_seconds);
    EXPECT_EQ(arrival->input_scale, request.input_scale);
  }
  EXPECT_FALSE(process.next().has_value());
}

TEST(PoissonProcess, ResetReplaysTheExactStream) {
  ArrivalLimits limits;
  limits.max_requests = 50;
  PoissonProcess process(2.0, {0.8, 1.2}, limits, 7);
  const auto first = materialize(process, 50);
  process.reset();
  const auto second = materialize(process, 50);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].time, second[i].time);
    EXPECT_EQ(first[i].input_scale, second[i].input_scale);
  }
}

TEST(PoissonProcess, HorizonBoundsTheStream) {
  ArrivalLimits limits;
  limits.horizon_seconds = 10.0;
  PoissonProcess process(5.0, {}, limits, 7);
  const auto arrivals = materialize(process, 1000);
  ASSERT_FALSE(arrivals.empty());
  for (const auto& a : arrivals) EXPECT_LE(a.time, 10.0);
  EXPECT_FALSE(process.next().has_value());
}

TEST(ArrivalLimits, UnboundedGeneratedStreamIsRejected) {
  // A generated process with neither a request cap nor a horizon would keep
  // the engine running forever; the constructor refuses it outright.
  EXPECT_THROW(PoissonProcess(1.0, {}, ArrivalLimits{}, 1),
               support::ContractViolation);
}

TEST(ScaleSpec, DriftMultipliesOnlyAfterTheDriftTime) {
  ScaleSpec spec;
  spec.scale_min = 1.0;
  spec.scale_max = 1.0;
  spec.drift_time = 100.0;
  spec.drift_factor = 1.5;
  EXPECT_DOUBLE_EQ(spec.apply_drift(1.0, 99.9), 1.0);
  EXPECT_DOUBLE_EQ(spec.apply_drift(1.0, 100.0), 1.5);
  EXPECT_DOUBLE_EQ(spec.apply_drift(2.0, 500.0), 3.0);
}

TEST(ScaleSpec, DriftDoesNotChangeArrivalTimes) {
  ArrivalLimits limits;
  limits.max_requests = 100;
  PoissonProcess clean(1.0, {0.5, 1.5, 0.0, 1.0}, limits, 9);
  PoissonProcess drifted(1.0, {0.5, 1.5, 20.0, 2.0}, limits, 9);
  const auto a = materialize(clean, 100);
  const auto b = materialize(drifted, 100);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].time, b[i].time);
    if (a[i].time >= 20.0) {
      EXPECT_DOUBLE_EQ(b[i].input_scale, a[i].input_scale * 2.0);
    } else {
      EXPECT_EQ(b[i].input_scale, a[i].input_scale);
    }
  }
}

TEST(MmppProcess, DeterministicSortedAndBounded) {
  MmppParams params;
  params.base_rate = 1.0;
  params.burst_rate = 20.0;
  params.mean_base_seconds = 30.0;
  params.mean_burst_seconds = 5.0;
  ArrivalLimits limits;
  limits.max_requests = 300;
  MmppProcess process(params, {0.9, 1.1}, limits, 17);
  const auto first = materialize(process, 300);
  ASSERT_EQ(first.size(), 300u);
  for (std::size_t i = 1; i < first.size(); ++i) {
    EXPECT_LE(first[i - 1].time, first[i].time);
  }
  process.reset();
  const auto second = materialize(process, 300);
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].time, second[i].time);
  }
}

TEST(MmppProcess, BurstsArriveFasterThanBaseline) {
  // With an extreme burst rate, the mean inter-arrival gap must sit far
  // below the pure-baseline gap.
  MmppParams params;
  params.base_rate = 0.1;
  params.burst_rate = 100.0;
  params.mean_base_seconds = 10.0;
  params.mean_burst_seconds = 10.0;
  ArrivalLimits limits;
  limits.max_requests = 2000;
  MmppProcess process(params, {}, limits, 23);
  const auto arrivals = materialize(process, 2000);
  const double span = arrivals.back().time - arrivals.front().time;
  const double mean_gap = span / static_cast<double>(arrivals.size() - 1);
  EXPECT_LT(mean_gap, 1.0 / 0.1);  // far denser than baseline-only traffic
}

TEST(DiurnalProcess, DeterministicAndSorted) {
  DiurnalParams params;
  params.base_rate = 2.0;
  params.amplitude = 0.8;
  params.period_seconds = 100.0;
  ArrivalLimits limits;
  limits.max_requests = 500;
  DiurnalProcess process(params, {}, limits, 5);
  const auto first = materialize(process, 500);
  ASSERT_EQ(first.size(), 500u);
  for (std::size_t i = 1; i < first.size(); ++i) {
    EXPECT_LE(first[i - 1].time, first[i].time);
  }
  process.reset();
  const auto second = materialize(process, 500);
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].time, second[i].time);
  }
}

TEST(TraceReplayProcess, ReplaysTheTraceWithOptionalDrift) {
  std::vector<Arrival> trace{{1.0, 1.0}, {2.0, 2.0}, {30.0, 1.0}};
  TraceReplayProcess process(trace);
  const auto plain = materialize(process, 10);
  ASSERT_EQ(plain.size(), 3u);
  EXPECT_EQ(plain[1].input_scale, 2.0);

  ScaleSpec drift;
  drift.drift_time = 10.0;
  drift.drift_factor = 3.0;
  TraceReplayProcess drifted(trace, {}, drift);
  const auto out = materialize(drifted, 10);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_DOUBLE_EQ(out[0].input_scale, 1.0);
  EXPECT_DOUBLE_EQ(out[2].input_scale, 3.0);
}

TEST(TraceReplayProcess, UnsortedTraceViolatesContract) {
  std::vector<Arrival> trace{{5.0, 1.0}, {1.0, 1.0}};
  EXPECT_THROW(TraceReplayProcess{trace}, support::ContractViolation);
}

}  // namespace
}  // namespace aarc::serving
