// Bit-identity of the calendar-queue engine against the legacy event-heap
// simulator: with autoscaling and admission off, both engines consume one
// seeded RNG in the same event order, so every per-request outcome and every
// aggregate counter must match EXACTLY (== on doubles, no tolerance).  This
// is the contract that lets the streaming engine replace the heap as the
// platform's reference semantics.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "chaos/incident.h"
#include "perf/analytic.h"
#include "platform/pricing.h"
#include "serving/engine.h"
#include "serving/simulator.h"

namespace aarc::serving {
namespace {

std::unique_ptr<perf::PerfModel> fn(double serial) {
  perf::AnalyticParams p;
  p.serial_seconds = serial;
  p.working_set_mb = 256.0;
  p.min_memory_mb = 128.0;
  p.pressure_coeff = 0.0;
  return std::make_unique<perf::AnalyticModel>(p);
}

platform::Workflow diamond() {
  platform::Workflow wf("diamond");
  wf.add_function("a", fn(2.0));
  wf.add_function("b", fn(3.0));
  wf.add_function("c", fn(1.5));
  wf.add_function("d", fn(2.5));
  wf.add_edge("a", "b");
  wf.add_edge("a", "c");
  wf.add_edge("b", "d");
  wf.add_edge("c", "d");
  return wf;
}

const platform::DecoupledLinearPricing kPricing;

EngineOptions mirror(const ServingOptions& legacy) {
  EngineOptions opts;
  opts.keep_alive_seconds = legacy.keep_alive_seconds;
  opts.cold_start_min_seconds = legacy.cold_start_min_seconds;
  opts.cold_start_max_seconds = legacy.cold_start_max_seconds;
  opts.max_containers_per_function = legacy.max_containers_per_function;
  opts.noise = legacy.noise;
  opts.faults = legacy.faults;
  opts.retry = legacy.retry;
  opts.seed = legacy.seed;
  opts.chaos = legacy.chaos;
  opts.retain_outcomes = true;
  return opts;
}

/// Run both engines on the same seeded Poisson stream and demand exact
/// equality of every outcome and every aggregate.
void expect_bit_identical(const platform::Workflow& wf, const ServingOptions& legacy_opts,
                          const platform::WorkflowConfig& config, std::size_t count,
                          double rate, std::uint64_t arrival_seed) {
  const auto stream =
      poisson_stream(count, rate, 0.7, 1.4, config, arrival_seed);
  const ServingSimulator legacy(wf, kPricing, legacy_opts);
  const ServingReport want = legacy.serve(stream);

  ScaleSpec scales;
  scales.scale_min = 0.7;
  scales.scale_max = 1.4;
  ArrivalLimits limits;
  limits.max_requests = count;
  PoissonProcess arrivals(rate, scales, limits, arrival_seed);
  const ServingEngine engine(wf, kPricing, mirror(legacy_opts));
  const StreamingReport got = engine.run(arrivals, config);

  // Aggregates first: any divergence shows up here cheaply.
  EXPECT_EQ(got.requests, stream.size());
  EXPECT_EQ(got.cold_starts, want.cold_starts);
  EXPECT_EQ(got.warm_starts, want.warm_starts);
  EXPECT_EQ(got.failed_requests, want.failed_requests);
  EXPECT_EQ(got.failed_after_retries, want.failed_after_retries);
  EXPECT_EQ(got.retries, want.retries);
  EXPECT_EQ(got.timeouts, want.timeouts);
  EXPECT_EQ(got.peak_containers, want.peak_containers);
  EXPECT_EQ(got.rejected_requests, 0u);
  // Aggregate sums are accumulated in completion order, which can differ
  // between the engines when queueing reorders emissions; per-request values
  // below are still exact, so only summation order (ULPs) differs here.
  EXPECT_NEAR(got.total_cost, want.total_cost, 1e-9 * (1.0 + want.total_cost));
  EXPECT_NEAR(got.latency.mean, want.latency.mean, 1e-9);

  // Then request by request.  The engine retains outcomes in completion
  // order; re-sort by request index to line up with the legacy vector.
  ASSERT_EQ(got.outcomes.size(), want.requests.size());
  std::vector<RequestOutcome> outcomes = got.outcomes;
  std::sort(outcomes.begin(), outcomes.end(),
            [](const RequestOutcome& a, const RequestOutcome& b) {
              return a.index < b.index;
            });
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const RequestOutcome& a = outcomes[i];
    const RequestOutcome& b = want.requests[i];
    ASSERT_EQ(a.index, b.index);
    EXPECT_EQ(a.arrival, b.arrival) << "request " << i;
    EXPECT_EQ(a.completion, b.completion) << "request " << i;
    EXPECT_EQ(a.cost, b.cost) << "request " << i;
    EXPECT_EQ(a.cold_starts, b.cold_starts) << "request " << i;
    EXPECT_EQ(a.invocations, b.invocations) << "request " << i;
    EXPECT_EQ(a.retries, b.retries) << "request " << i;
    EXPECT_EQ(a.timeouts, b.timeouts) << "request " << i;
    EXPECT_EQ(a.failed, b.failed) << "request " << i;
  }
}

TEST(EngineVsHeap, CleanOverlappingTraffic) {
  // Default noise and random cold starts; rate high enough that requests
  // overlap and warm reuse, queueing, and keep-alive expiry all trigger.
  ServingOptions opts;
  opts.seed = 2026;
  expect_bit_identical(diamond(), opts, platform::uniform_config(4, {1.0, 512.0}),
                       400, 0.2, 123);
}

TEST(EngineVsHeap, ConcurrencyCappedTraffic) {
  ServingOptions opts;
  opts.seed = 9;
  opts.max_containers_per_function = 2;  // forces FIFO queueing per function
  expect_bit_identical(diamond(), opts, platform::uniform_config(4, {1.0, 512.0}),
                       300, 0.3, 31);
}

TEST(EngineVsHeap, FaultyTrafficWithRetriesAndTimeouts) {
  ServingOptions opts;
  opts.seed = 41;
  platform::FaultRates rates;
  rates.transient_crash = 0.15;
  rates.straggler = 0.1;
  rates.cold_spike = 0.1;
  rates.throttle = 0.1;
  opts.faults = platform::FaultModel{rates};
  opts.retry.max_attempts = 3;
  opts.retry.timeout_seconds = 60.0;
  expect_bit_identical(diamond(), opts, platform::uniform_config(4, {1.0, 512.0}),
                       300, 0.15, 57);
}

TEST(EngineVsHeap, ChaosIncidentsModulateBothEnginesIdentically) {
  // Time-varying fault rates on top of base faults and retries: both engines
  // must sample the modulated rates at the same instants and stay exact.
  ServingOptions opts;
  opts.seed = 77;
  platform::FaultRates rates;
  rates.transient_crash = 0.05;
  rates.straggler = 0.05;
  opts.faults = platform::FaultModel{rates};
  opts.retry.max_attempts = 3;
  opts.retry.timeout_seconds = 90.0;

  chaos::Incident brownout;
  brownout.kind = chaos::IncidentKind::Brownout;
  brownout.start_seconds = 200.0;
  brownout.end_seconds = 1200.0;
  brownout.ramp_seconds = 100.0;
  brownout.severity = 0.5;
  opts.chaos.add(brownout);

  chaos::Incident outage;
  outage.kind = chaos::IncidentKind::Outage;
  outage.start_seconds = 500.0;
  outage.end_seconds = 800.0;
  outage.severity = 0.7;
  outage.targets = {1, 2};  // correlated failure of the diamond's middle pair
  opts.chaos.add(outage);

  expect_bit_identical(diamond(), opts, platform::uniform_config(4, {1.0, 512.0}),
                       300, 0.2, 43);
}

TEST(EngineVsHeap, OutOfMemoryConfigurations) {
  // 64 MB is below the analytic model's 128 MB floor: every invocation OOMs
  // and both engines must agree on the (cold-start-only) RNG consumption.
  ServingOptions opts;
  opts.seed = 13;
  expect_bit_identical(diamond(), opts, platform::uniform_config(4, {1.0, 64.0}),
                       100, 0.1, 11);
}

TEST(EngineVsHeap, SparseKeepAliveExpiryTraffic) {
  // Arrivals spaced far beyond keep-alive: every request cold-starts and the
  // idle pools drain via expiry rather than reuse.
  ServingOptions opts;
  opts.seed = 3;
  opts.keep_alive_seconds = 30.0;
  expect_bit_identical(diamond(), opts, platform::uniform_config(4, {1.0, 512.0}),
                       150, 0.01, 19);
}

}  // namespace
}  // namespace aarc::serving
