#include "serving/simulator.h"

#include <gtest/gtest.h>

#include "perf/analytic.h"
#include "platform/executor.h"
#include "support/contracts.h"

namespace aarc::serving {
namespace {

std::unique_ptr<perf::PerfModel> fn(double serial, double min_mem = 128.0) {
  perf::AnalyticParams p;
  p.serial_seconds = serial;
  p.working_set_mb = std::max(256.0, min_mem);
  p.min_memory_mb = min_mem;
  p.pressure_coeff = 0.0;
  return std::make_unique<perf::AnalyticModel>(p);
}

platform::Workflow chain() {
  platform::Workflow wf("chain");
  wf.add_function("a", fn(4.0));
  wf.add_function("b", fn(6.0));
  wf.add_edge("a", "b");
  return wf;
}

ServingOptions clean_options() {
  ServingOptions opts;
  opts.noise = perf::NoiseModel(0.0);
  opts.cold_start_min_seconds = 1.0;
  opts.cold_start_max_seconds = 1.0;  // deterministic cold starts
  return opts;
}

Request request_at(double t, std::size_t functions, double scale = 1.0) {
  Request r;
  r.arrival_seconds = t;
  r.input_scale = scale;
  r.config = platform::uniform_config(functions, {1.0, 512.0});
  return r;
}

const platform::DecoupledLinearPricing kPricing;

TEST(Serving, SingleRequestMatchesExecutorPlusColdStarts) {
  const platform::Workflow wf = chain();
  const ServingSimulator sim(wf, kPricing, clean_options());
  const auto report = sim.serve({request_at(0.0, 2)});
  ASSERT_EQ(report.requests.size(), 1u);
  const auto& r = report.requests[0];
  EXPECT_FALSE(r.failed);
  // a: 1 s cold + 4 s run; b: 1 s cold + 6 s run -> latency 12.
  EXPECT_DOUBLE_EQ(r.latency(), 12.0);
  EXPECT_EQ(r.cold_starts, 2u);
  EXPECT_EQ(r.invocations, 2u);
  EXPECT_EQ(report.warm_starts, 0u);
  EXPECT_EQ(report.peak_containers, 2u);
}

TEST(Serving, BilledCostMatchesPricing) {
  const platform::Workflow wf = chain();
  const ServingSimulator sim(wf, kPricing, clean_options());
  const auto report = sim.serve({request_at(0.0, 2)});
  // (4+1) + (6+1) = 12 billed seconds at 1 vCPU / 512 MB.
  const double expected = kPricing.invocation_cost({1.0, 512.0}, 12.0);
  EXPECT_NEAR(report.total_cost, expected, 1e-9);
}

TEST(Serving, SequentialRequestsReuseWarmContainers) {
  const platform::Workflow wf = chain();
  const ServingSimulator sim(wf, kPricing, clean_options());
  // Second request arrives after the first fully drained.
  const auto report = sim.serve({request_at(0.0, 2), request_at(50.0, 2)});
  EXPECT_EQ(report.cold_starts, 2u);  // only the first request provisions
  EXPECT_EQ(report.warm_starts, 2u);
  EXPECT_EQ(report.requests[1].cold_starts, 0u);
  // Warm request is faster by the two cold starts.
  EXPECT_DOUBLE_EQ(report.requests[1].latency(), 10.0);
  EXPECT_EQ(report.peak_containers, 2u);
}

TEST(Serving, KeepAliveExpiryForcesColdStarts) {
  const platform::Workflow wf = chain();
  ServingOptions opts = clean_options();
  opts.keep_alive_seconds = 5.0;  // containers die before the second request
  const ServingSimulator sim(wf, kPricing, opts);
  const auto report = sim.serve({request_at(0.0, 2), request_at(100.0, 2)});
  EXPECT_EQ(report.cold_starts, 4u);
  EXPECT_EQ(report.warm_starts, 0u);
}

TEST(Serving, ConcurrentRequestsNeedMoreContainers) {
  const platform::Workflow wf = chain();
  const ServingSimulator sim(wf, kPricing, clean_options());
  // Both arrive together: no sharing possible.
  const auto report = sim.serve({request_at(0.0, 2), request_at(0.0, 2)});
  EXPECT_EQ(report.cold_starts, 4u);
  EXPECT_EQ(report.peak_containers, 4u);
  EXPECT_DOUBLE_EQ(report.requests[0].latency(), 12.0);
  EXPECT_DOUBLE_EQ(report.requests[1].latency(), 12.0);
}

TEST(Serving, ConcurrencyCapQueuesInvocations) {
  const platform::Workflow wf = chain();
  ServingOptions opts = clean_options();
  opts.max_containers_per_function = 1;
  const ServingSimulator sim(wf, kPricing, opts);
  const auto report = sim.serve({request_at(0.0, 2), request_at(0.0, 2)});
  // Request 2's "a" waits for request 1's "a" (done at 5), runs warm to 9;
  // its "b" then waits for request 1's "b" (5..12) and runs warm to 18.
  EXPECT_DOUBLE_EQ(report.requests[0].latency(), 12.0);
  EXPECT_DOUBLE_EQ(report.requests[1].latency(), 18.0);
  EXPECT_EQ(report.peak_containers, 2u);  // one per function
}

TEST(Serving, ParallelBranchesOverlap) {
  platform::Workflow wf("diamond");
  wf.add_function("src", fn(1.0));
  wf.add_function("x", fn(5.0));
  wf.add_function("y", fn(5.0));
  wf.add_function("sink", fn(1.0));
  wf.add_edge("src", "x");
  wf.add_edge("src", "y");
  wf.add_edge("x", "sink");
  wf.add_edge("y", "sink");
  const ServingSimulator sim(wf, kPricing, clean_options());
  const auto report = sim.serve({request_at(0.0, 4)});
  // src 1+1, branches in parallel 1+5, sink 1+1: 2 + 6 + 2 = 10.
  EXPECT_DOUBLE_EQ(report.requests[0].latency(), 10.0);
}

TEST(Serving, OomRequestFailsWithoutSpawningDownstream) {
  const platform::Workflow wf = chain();
  const ServingSimulator sim(wf, kPricing, clean_options());
  Request bad = request_at(0.0, 2);
  bad.config[0].memory_mb = 100.0;  // below the 128 MB floor of "a"
  const auto report = sim.serve({bad});
  EXPECT_EQ(report.failed_requests, 1u);
  EXPECT_TRUE(report.requests[0].failed);
  EXPECT_EQ(report.requests[0].invocations, 1u);  // "b" never ran
  EXPECT_EQ(report.latency.count, 0u);
}

TEST(Serving, FailedRequestDoesNotBlockOthers) {
  const platform::Workflow wf = chain();
  const ServingSimulator sim(wf, kPricing, clean_options());
  Request bad = request_at(0.0, 2);
  bad.config[0].memory_mb = 100.0;
  const auto report = sim.serve({bad, request_at(0.0, 2)});
  EXPECT_EQ(report.failed_requests, 1u);
  EXPECT_FALSE(report.requests[1].failed);
  EXPECT_DOUBLE_EQ(report.requests[1].latency(), 12.0);
}

TEST(Serving, DeterministicUnderSeed) {
  const platform::Workflow wf = chain();
  ServingOptions opts;  // default noise on
  opts.seed = 9;
  const ServingSimulator sim(wf, kPricing, opts);
  const auto stream = poisson_stream(20, 0.1, 0.5, 1.5,
                                     platform::uniform_config(2, {1.0, 512.0}), 3);
  const auto a = sim.serve(stream);
  const auto b = sim.serve(stream);
  ASSERT_EQ(a.requests.size(), b.requests.size());
  for (std::size_t i = 0; i < a.requests.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.requests[i].completion, b.requests[i].completion);
    EXPECT_DOUBLE_EQ(a.requests[i].cost, b.requests[i].cost);
  }
  EXPECT_DOUBLE_EQ(a.total_cost, b.total_cost);
}

TEST(Serving, RejectsUnsortedOrMalformedRequests) {
  const platform::Workflow wf = chain();
  const ServingSimulator sim(wf, kPricing, clean_options());
  EXPECT_THROW(sim.serve({request_at(5.0, 2), request_at(1.0, 2)}),
               support::ContractViolation);
  EXPECT_THROW(sim.serve({request_at(0.0, 1)}), support::ContractViolation);
  Request zero_scale = request_at(0.0, 2);
  zero_scale.input_scale = 0.0;
  EXPECT_THROW(sim.serve({zero_scale}), support::ContractViolation);
}

TEST(Serving, SloViolationRateCountsFailuresAsViolations) {
  ServingReport report;
  RequestOutcome ok;
  ok.arrival = 0.0;
  ok.completion = 5.0;
  RequestOutcome slow;
  slow.arrival = 0.0;
  slow.completion = 20.0;
  RequestOutcome failed;
  failed.failed = true;
  report.requests = {ok, slow, failed};
  report.failed_requests = 1;
  // Failure-aware accounting over ALL requests: slow and failed violate.
  EXPECT_DOUBLE_EQ(report.slo_violation_rate(10.0), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(report.request_failure_rate(), 1.0 / 3.0);
  EXPECT_THROW(report.slo_violation_rate(0.0), support::ContractViolation);
}

TEST(Serving, AllFailedReportsFullViolationNotZero) {
  ServingReport report;
  RequestOutcome failed;
  failed.failed = true;
  report.requests = {failed, failed};
  report.failed_requests = 2;
  // The old semantics reported 0 here ("no successful request violated") —
  // dashboards must not mistake "all failures" for "no violations".
  EXPECT_DOUBLE_EQ(report.slo_violation_rate(10.0), 1.0);
  EXPECT_DOUBLE_EQ(report.request_failure_rate(), 1.0);
  EXPECT_EQ(report.latency.count, 0u);
}

TEST(PoissonStream, PropertiesHold) {
  const auto cfg = platform::uniform_config(2, {1.0, 512.0});
  const auto stream = poisson_stream(200, 0.5, 0.5, 2.0, cfg, 11);
  ASSERT_EQ(stream.size(), 200u);
  double prev = 0.0;
  double total_gap = 0.0;
  for (const auto& r : stream) {
    EXPECT_GE(r.arrival_seconds, prev);
    EXPECT_GE(r.input_scale, 0.5);
    EXPECT_LE(r.input_scale, 2.0);
    total_gap += r.arrival_seconds - prev;
    prev = r.arrival_seconds;
  }
  // Mean inter-arrival ~ 1/rate = 2 s.
  EXPECT_NEAR(total_gap / 200.0, 2.0, 0.4);
}

TEST(PoissonStream, DeterministicAndSeedSensitive) {
  const auto cfg = platform::uniform_config(2, {1.0, 512.0});
  const auto a = poisson_stream(10, 1.0, 1.0, 1.0, cfg, 5);
  const auto b = poisson_stream(10, 1.0, 1.0, 1.0, cfg, 5);
  const auto c = poisson_stream(10, 1.0, 1.0, 1.0, cfg, 6);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(a[i].arrival_seconds, b[i].arrival_seconds);
  }
  EXPECT_NE(a[0].arrival_seconds, c[0].arrival_seconds);
}

}  // namespace
}  // namespace aarc::serving
