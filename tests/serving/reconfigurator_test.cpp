// Drift -> online reconfiguration, end to end: a mid-stream input-scale
// drift trips the DriftMonitor, the reconfigurator re-runs AARC, the swap
// activates after the simulated scheduling lag, and the post-swap SLO
// attainment and post-drift tail latency beat a fixed-config run of the
// same seeded stream.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "aarc/scheduler.h"
#include "platform/executor.h"
#include "platform/pricing.h"
#include "serving/engine.h"
#include "serving/reconfigurator.h"
#include "support/contracts.h"
#include "support/statistics.h"
#include "workloads/catalog.h"

namespace aarc::serving {
namespace {

struct Harness {
  workloads::Workload workload = workloads::make_by_name("chatbot");
  platform::ConfigGrid grid;
  platform::Executor executor;
  platform::WorkflowConfig config;
  double expected_makespan = 0.0;

  Harness() {
    const core::GraphCentricScheduler scheduler(executor, grid);
    const auto schedule = scheduler.schedule(workload.workflow, workload.slo_seconds);
    config = schedule.result.found_feasible
                 ? schedule.result.best_config
                 : platform::uniform_config(workload.workflow.function_count(),
                                            grid.max_config());
    expected_makespan = executor.execute_mean(workload.workflow, config).makespan;
  }

  PoissonProcess drifting_arrivals() const {
    ScaleSpec drift;
    drift.drift_time = 100.0;
    drift.drift_factor = 1.5;
    ArrivalLimits limits;
    limits.max_requests = 400;
    return PoissonProcess(0.5, drift, limits, 77);
  }

  ReconfigOptions reconfig_options() const {
    ReconfigOptions opts;
    opts.min_outcomes_between_reconfigs = 40;
    opts.attainment_window = 40;
    return opts;
  }

  EngineOptions engine_options() const {
    EngineOptions opts;
    opts.slo_seconds = workload.slo_seconds;
    opts.retain_outcomes = true;
    return opts;
  }
};

TEST(OnlineReconfig, DriftTriggersLaggedActivatedSwaps) {
  const Harness h;
  // The engine keeps a pointer to the pricing model: it must outlive the run.
  const platform::DecoupledLinearPricing pricing;
  const ServingEngine engine(h.workload.workflow, pricing, h.engine_options());
  OnlineReconfigurator reconfigurator(h.workload, h.executor, h.grid, h.config,
                                      h.expected_makespan, h.reconfig_options());
  auto arrivals = h.drifting_arrivals();
  const StreamingReport report = engine.run(arrivals, reconfigurator);

  ASSERT_GE(reconfigurator.reconfigurations(), 1u);
  EXPECT_GT(reconfigurator.scheduling_samples(), 0u);

  bool saw_activated = false;
  for (const ReconfigEvent& ev : reconfigurator.events()) {
    EXPECT_GT(ev.trigger_time, 100.0);  // nothing fires before the drift
    if (!ev.activated) continue;
    saw_activated = true;
    // The swap is never instantaneous: lag = base + samples * per-sample.
    EXPECT_GT(ev.lag_seconds, 0.0);
    EXPECT_DOUBLE_EQ(ev.activation_time, ev.trigger_time + ev.lag_seconds);
    EXPECT_GT(ev.samples_used, 0u);
    EXPECT_GT(ev.new_scale, 1.0);  // the re-run saw the drifted inputs
  }
  EXPECT_TRUE(saw_activated);
  // The active config is a real hot-swap, not the initial deployment.
  EXPECT_NE(reconfigurator.active_config(), h.config);
  EXPECT_EQ(report.requests, 400u);
}

TEST(OnlineReconfig, SwapRecoversSloAttainmentAfterDrift) {
  const Harness h;
  const platform::DecoupledLinearPricing pricing;
  const ServingEngine engine(h.workload.workflow, pricing, h.engine_options());
  OnlineReconfigurator reconfigurator(h.workload, h.executor, h.grid, h.config,
                                      h.expected_makespan, h.reconfig_options());
  auto arrivals = h.drifting_arrivals();
  (void)engine.run(arrivals, reconfigurator);

  // At least one activated swap must measurably lift attainment: the fixed
  // post-swap window beats the rolling pre-trigger window.
  bool recovered = false;
  for (const ReconfigEvent& ev : reconfigurator.events()) {
    if (ev.activated && ev.post_window_complete &&
        ev.post_slo_attainment > ev.pre_slo_attainment) {
      recovered = true;
    }
  }
  EXPECT_TRUE(recovered);
}

TEST(OnlineReconfig, ReconfigurationBeatsFixedConfigOnPostDriftTail) {
  const Harness h;
  const platform::DecoupledLinearPricing pricing;
  const ServingEngine engine(h.workload.workflow, pricing, h.engine_options());

  auto arrivals = h.drifting_arrivals();
  FixedConfigSource fixed(h.config);
  const StreamingReport fixed_report = engine.run(arrivals, fixed);

  arrivals.reset();
  OnlineReconfigurator reconfigurator(h.workload, h.executor, h.grid, h.config,
                                      h.expected_makespan, h.reconfig_options());
  const StreamingReport swapped_report = engine.run(arrivals, reconfigurator);
  ASSERT_GE(reconfigurator.reconfigurations(), 1u);

  // Compare the post-drift tail, after the first activated swap went live:
  // both runs served the identical seeded arrival stream up to that point.
  double first_swap = 0.0;
  for (const ReconfigEvent& ev : reconfigurator.events()) {
    if (ev.activated) {
      first_swap = ev.activation_time;
      break;
    }
  }
  ASSERT_GT(first_swap, 0.0);
  auto tail_p95 = [&](const StreamingReport& report) {
    std::vector<double> latencies;
    for (const auto& out : report.outcomes) {
      if (!out.failed && out.arrival >= first_swap) {
        latencies.push_back(out.latency());
      }
    }
    return support::percentile(latencies, 95.0);
  };
  const double fixed_p95 = tail_p95(fixed_report);
  const double swapped_p95 = tail_p95(swapped_report);
  EXPECT_LT(swapped_p95, fixed_p95);
  // And the headline attainment moves the same way.
  EXPECT_GT(swapped_report.slo_attainment(), fixed_report.slo_attainment());
}

TEST(OnlineReconfig, InfeasibleDriftDeploysDegradedFallback) {
  // A 40x input-scale drift makes the SLO unreachable at any configuration.
  // Without the fallback the reconfigurator keeps the drifted config; with it
  // a degraded configuration (relaxed SLO or grid-max) is deployed instead.
  Harness h;
  ScaleSpec drift;
  drift.drift_time = 100.0;
  drift.drift_factor = 40.0;
  ArrivalLimits limits;
  limits.max_requests = 400;

  const platform::DecoupledLinearPricing pricing;
  const ServingEngine engine(h.workload.workflow, pricing, h.engine_options());

  ReconfigOptions opts = h.reconfig_options();
  opts.fallback_degraded = true;
  // The infeasible re-runs burn thousands of probes; a per-sample lag would
  // push activation past the end of the stream.  This test is about the
  // fallback logic, not lag modeling.
  opts.lag_per_sample_seconds = 0.0;
  OnlineReconfigurator reconfigurator(h.workload, h.executor, h.grid, h.config,
                                      h.expected_makespan, opts);
  PoissonProcess arrivals(0.5, drift, limits, 77);
  (void)engine.run(arrivals, reconfigurator);

  ASSERT_GE(reconfigurator.reconfigurations(), 1u);
  EXPECT_GE(reconfigurator.degraded_fallbacks(), 1u);
  // The drift never reverts, so recovery attempts keep failing and the run
  // ends still serving the degraded fallback.
  EXPECT_TRUE(reconfigurator.degraded());

  bool saw_degraded_swap = false;
  for (const ReconfigEvent& ev : reconfigurator.events()) {
    if (ev.degraded) {
      saw_degraded_swap = true;
      EXPECT_TRUE(ev.activated);  // the fallback really went live
    }
  }
  EXPECT_TRUE(saw_degraded_swap);

  // Same stream without the fallback: nothing degraded is ever deployed.
  OnlineReconfigurator keeper(h.workload, h.executor, h.grid, h.config,
                              h.expected_makespan, h.reconfig_options());
  arrivals.reset();
  (void)engine.run(arrivals, keeper);
  EXPECT_EQ(keeper.degraded_fallbacks(), 0u);
  EXPECT_FALSE(keeper.degraded());
}

TEST(OnlineReconfig, DegradedOptionsValidate) {
  ReconfigOptions opts;
  opts.fallback_degraded = true;
  opts.degraded_slo_factor = 0.9;  // a "relaxed" SLO tighter than the real one
  EXPECT_THROW(opts.validate(), support::ContractViolation);
  opts.degraded_slo_factor = 1.0;
  EXPECT_NO_THROW(opts.validate());
}

}  // namespace
}  // namespace aarc::serving
