// Property tests over generated DAG populations: the structural invariants
// the AARC scheduler relies on must hold for every synthetic topology.
#include <gtest/gtest.h>

#include "dag/critical_path.h"
#include "dag/detour.h"
#include "support/rng.h"

namespace aarc::dag {
namespace {

/// Random layered DAG (pure dag-level generator; independent from the
/// workloads module so this test exercises dag/ in isolation).
Graph random_layered(std::uint64_t seed) {
  support::Rng rng(seed);
  Graph g("random_" + std::to_string(seed));
  const std::size_t layers = 2 + rng.index(4);
  const std::size_t width = 1 + rng.index(4);

  std::vector<NodeId> prev{g.add_node("src", rng.uniform(0.5, 10.0))};
  for (std::size_t l = 0; l < layers; ++l) {
    std::vector<NodeId> cur;
    for (std::size_t w = 0; w < width; ++w) {
      cur.push_back(g.add_node("n" + std::to_string(l) + "_" + std::to_string(w),
                               rng.uniform(0.5, 10.0)));
    }
    for (NodeId c : cur) g.add_edge(prev[rng.index(prev.size())], c);
    for (NodeId p : prev) {
      if (g.successors(p).empty()) g.add_edge(p, cur[rng.index(cur.size())]);
    }
    // extra random edges for diamonds
    for (std::size_t k = 0; k < width; ++k) {
      if (rng.bernoulli(0.4)) g.add_edge(prev[rng.index(prev.size())], cur[rng.index(cur.size())]);
    }
    prev = std::move(cur);
  }
  const NodeId sink = g.add_node("sink", rng.uniform(0.5, 10.0));
  for (NodeId p : prev) g.add_edge(p, sink);
  return g;
}

class DagProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DagProperty, GeneratedGraphIsValid) {
  const Graph g = random_layered(GetParam());
  EXPECT_NO_THROW(g.validate());
}

TEST_P(DagProperty, CriticalPathIsLongestOverDetours) {
  // Every detour's total weight must be <= the critical-path interval it
  // spans — otherwise the "critical" path would not be critical.
  const Graph g = random_layered(GetParam());
  const Path cp = find_critical_path(g);
  const auto detours = find_detour_subpaths(g, cp);
  for (const auto& d : detours) {
    const double interval = cp.weight_between(g, d.start_anchor(), d.end_anchor());
    EXPECT_LE(d.path.total_weight(g), interval + 1e-9)
        << "detour " << d.path.to_string(g) << " beats the critical path";
  }
}

TEST_P(DagProperty, CriticalPathLengthEqualsMakespan) {
  const Graph g = random_layered(GetParam());
  EXPECT_NEAR(critical_path_length(g), compute_schedule(g).makespan, 1e-9);
}

TEST_P(DagProperty, CriticalPathNodesHaveZeroSlack) {
  const Graph g = random_layered(GetParam());
  const Path cp = find_critical_path(g);
  const Schedule s = compute_schedule(g);
  for (NodeId id : cp.nodes()) EXPECT_NEAR(s.slack(id), 0.0, 1e-9);
}

TEST_P(DagProperty, SlackIsNonNegative) {
  const Graph g = random_layered(GetParam());
  const Schedule s = compute_schedule(g);
  for (NodeId id = 0; id < g.node_count(); ++id) EXPECT_GE(s.slack(id), -1e-9);
}

TEST_P(DagProperty, DetourInteriorsAreDisjointFromCp) {
  const Graph g = random_layered(GetParam());
  const Path cp = find_critical_path(g);
  for (const auto& d : find_detour_subpaths(g, cp)) {
    for (NodeId id : d.interior()) EXPECT_FALSE(cp.contains(id));
    EXPECT_TRUE(cp.contains(d.start_anchor()));
    EXPECT_TRUE(cp.contains(d.end_anchor()));
    EXPECT_LT(cp.index_of(d.start_anchor()), cp.index_of(d.end_anchor()));
  }
}

TEST_P(DagProperty, EveryNodeIsCoveredInSingleSourceSinkGraphs) {
  // With one source and one sink, CP + detours must cover all nodes.
  const Graph g = random_layered(GetParam());
  if (g.sources().size() != 1 || g.sinks().size() != 1) GTEST_SKIP();
  const Path cp = find_critical_path(g);
  const auto detours = find_detour_subpaths(g, cp);
  EXPECT_TRUE(uncovered_nodes(g, cp, detours).empty());
}

TEST_P(DagProperty, TopologicalOrderIsAValidSchedule) {
  const Graph g = random_layered(GetParam());
  const auto order = g.topological_order();
  std::vector<std::size_t> pos(g.node_count());
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  for (NodeId id = 0; id < g.node_count(); ++id) {
    for (NodeId next : g.successors(id)) EXPECT_LT(pos[id], pos[next]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DagProperty, ::testing::Range<std::uint64_t>(1, 26));

}  // namespace
}  // namespace aarc::dag
