#include "dag/critical_path.h"

#include <gtest/gtest.h>

#include "support/contracts.h"

namespace aarc::dag {
namespace {

Graph diamond(double top, double bottom) {
  Graph g("diamond");
  g.add_node("src", 1.0);
  g.add_node("top", top);
  g.add_node("bottom", bottom);
  g.add_node("sink", 2.0);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  return g;
}

TEST(CriticalPath, SingleNode) {
  Graph g;
  g.add_node("only", 5.0);
  const Path p = find_critical_path(g);
  EXPECT_EQ(p.nodes(), std::vector<NodeId>{0});
  EXPECT_DOUBLE_EQ(critical_path_length(g), 5.0);
}

TEST(CriticalPath, ChainTakesAllNodes) {
  Graph g;
  g.add_node("a", 1.0);
  g.add_node("b", 2.0);
  g.add_node("c", 3.0);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  const Path p = find_critical_path(g);
  EXPECT_EQ(p.nodes(), (std::vector<NodeId>{0, 1, 2}));
  EXPECT_DOUBLE_EQ(p.total_weight(g), 6.0);
}

TEST(CriticalPath, PicksHeavierBranch) {
  const Graph g = diamond(10.0, 3.0);
  const Path p = find_critical_path(g);
  EXPECT_EQ(p.nodes(), (std::vector<NodeId>{0, 1, 3}));

  const Graph g2 = diamond(3.0, 10.0);
  EXPECT_EQ(find_critical_path(g2).nodes(), (std::vector<NodeId>{0, 2, 3}));
}

TEST(CriticalPath, TieBreaksDeterministically) {
  const Graph g = diamond(5.0, 5.0);
  const Path p1 = find_critical_path(g);
  const Path p2 = find_critical_path(g);
  EXPECT_EQ(p1, p2);
  // Smallest-id predecessor wins the tie: the "top" branch (node 1).
  EXPECT_EQ(p1.nodes(), (std::vector<NodeId>{0, 1, 3}));
}

TEST(CriticalPath, LengthEqualsMakespan) {
  const Graph g = diamond(7.0, 4.0);
  const Schedule s = compute_schedule(g);
  EXPECT_DOUBLE_EQ(critical_path_length(g), s.makespan);
}

TEST(CriticalPath, SpansSourceToSink) {
  const Graph g = diamond(2.0, 9.0);
  const Path p = find_critical_path(g);
  EXPECT_TRUE(g.predecessors(p.front()).empty());
  EXPECT_TRUE(g.successors(p.back()).empty());
}

TEST(CriticalPath, ZeroWeightsStillValid) {
  Graph g;
  g.add_node("a", 0.0);
  g.add_node("b", 0.0);
  g.add_edge(0, 1);
  const Path p = find_critical_path(g);
  EXPECT_EQ(p.size(), 2u);
  EXPECT_DOUBLE_EQ(p.total_weight(g), 0.0);
}

TEST(CriticalPath, RejectsInvalidGraph) {
  Graph g;  // empty
  EXPECT_THROW(find_critical_path(g), support::ContractViolation);
}

TEST(Schedule, ChainTimesAccumulate) {
  Graph g;
  g.add_node("a", 2.0);
  g.add_node("b", 3.0);
  g.add_edge(0, 1);
  const Schedule s = compute_schedule(g);
  EXPECT_DOUBLE_EQ(s.earliest_start[0], 0.0);
  EXPECT_DOUBLE_EQ(s.earliest_finish[0], 2.0);
  EXPECT_DOUBLE_EQ(s.earliest_start[1], 2.0);
  EXPECT_DOUBLE_EQ(s.earliest_finish[1], 5.0);
  EXPECT_DOUBLE_EQ(s.makespan, 5.0);
}

TEST(Schedule, ParallelBranchesOverlap) {
  const Graph g = diamond(10.0, 3.0);
  const Schedule s = compute_schedule(g);
  EXPECT_DOUBLE_EQ(s.earliest_start[1], 1.0);
  EXPECT_DOUBLE_EQ(s.earliest_start[2], 1.0);
  EXPECT_DOUBLE_EQ(s.earliest_start[3], 11.0);  // waits for the heavy branch
  EXPECT_DOUBLE_EQ(s.makespan, 13.0);
}

TEST(Schedule, SlackZeroOnCriticalPathOnly) {
  const Graph g = diamond(10.0, 3.0);
  const Schedule s = compute_schedule(g);
  EXPECT_DOUBLE_EQ(s.slack(0), 0.0);
  EXPECT_DOUBLE_EQ(s.slack(1), 0.0);
  EXPECT_DOUBLE_EQ(s.slack(3), 0.0);
  EXPECT_DOUBLE_EQ(s.slack(2), 7.0);  // light branch: 10 - 3
}

TEST(Schedule, LatestTimesBoundEarliest) {
  const Graph g = diamond(6.0, 2.0);
  const Schedule s = compute_schedule(g);
  for (NodeId id = 0; id < g.node_count(); ++id) {
    EXPECT_LE(s.earliest_start[id], s.latest_start[id] + 1e-12);
    EXPECT_LE(s.earliest_finish[id], s.latest_finish[id] + 1e-12);
    EXPECT_DOUBLE_EQ(s.earliest_finish[id] - s.earliest_start[id], g.weight(id));
  }
}

}  // namespace
}  // namespace aarc::dag
