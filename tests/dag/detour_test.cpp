#include "dag/detour.h"

#include <gtest/gtest.h>

#include "dag/critical_path.h"
#include "support/contracts.h"

namespace aarc::dag {
namespace {

/// Fan-out/fan-in like the paper's Chatbot: src -> {b0..b2} -> sink, with b0
/// the heaviest (critical) branch.
Graph scatter() {
  Graph g("scatter");
  g.add_node("src", 1.0);
  g.add_node("b0", 9.0);
  g.add_node("b1", 4.0);
  g.add_node("b2", 2.0);
  g.add_node("sink", 1.0);
  for (NodeId b : {1u, 2u, 3u}) {
    g.add_edge(0, b);
    g.add_edge(b, 4);
  }
  return g;
}

TEST(Detour, ScatterYieldsOneDetourPerLightBranch) {
  const Graph g = scatter();
  const Path cp = find_critical_path(g);
  EXPECT_EQ(cp.nodes(), (std::vector<NodeId>{0, 1, 4}));

  const auto detours = find_detour_subpaths(g, cp);
  ASSERT_EQ(detours.size(), 2u);
  EXPECT_EQ(detours[0].path.nodes(), (std::vector<NodeId>{0, 2, 4}));
  EXPECT_EQ(detours[1].path.nodes(), (std::vector<NodeId>{0, 3, 4}));
}

TEST(Detour, AnchorsAreOnCriticalPathInteriorIsNot) {
  const Graph g = scatter();
  const Path cp = find_critical_path(g);
  for (const auto& d : find_detour_subpaths(g, cp)) {
    EXPECT_TRUE(cp.contains(d.start_anchor()));
    EXPECT_TRUE(cp.contains(d.end_anchor()));
    for (NodeId id : d.interior()) EXPECT_FALSE(cp.contains(id));
    EXPECT_FALSE(d.interior().empty());
    EXPECT_TRUE(d.path.is_valid_in(g));
  }
}

TEST(Detour, DirectEdgeBetweenCpNodesIsNotADetour) {
  Graph g;
  g.add_node("a", 5.0);
  g.add_node("b", 5.0);
  g.add_node("c", 5.0);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);  // shortcut between critical-path nodes
  const Path cp = find_critical_path(g);
  EXPECT_EQ(cp.size(), 3u);
  EXPECT_TRUE(find_detour_subpaths(g, cp).empty());
}

TEST(Detour, MultiHopInterior) {
  // a -> m -> b is critical (m heavy); a -> x -> y -> b is a two-node detour.
  Graph g;
  g.add_node("a", 5.0);
  g.add_node("m", 10.0);
  g.add_node("x", 1.0);
  g.add_node("y", 1.0);
  g.add_node("b", 5.0);
  g.add_edge(0, 1);
  g.add_edge(1, 4);
  g.add_edge(0, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  const Path cp = find_critical_path(g);
  EXPECT_EQ(cp.nodes(), (std::vector<NodeId>{0, 1, 4}));
  const auto detours = find_detour_subpaths(g, cp);
  ASSERT_EQ(detours.size(), 1u);
  EXPECT_EQ(detours[0].path.nodes(), (std::vector<NodeId>{0, 2, 3, 4}));
  EXPECT_EQ(detours[0].interior(), (std::vector<NodeId>{2, 3}));
}

TEST(Detour, BranchingOffPathNodesEnumeratesAllSimplePaths) {
  // Critical path src -> m -> sink; off-path p, q with p -> q give three
  // simple detours: src-p-sink, src-q-sink, src-p-q-sink.
  Graph g;
  g.add_node("src", 10.0);
  g.add_node("m", 8.0);
  g.add_node("p", 1.0);
  g.add_node("q", 1.0);
  g.add_node("sink", 10.0);
  g.add_edge(0, 1);
  g.add_edge(1, 4);
  g.add_edge(0, 2);
  g.add_edge(0, 3);
  g.add_edge(2, 4);
  g.add_edge(3, 4);
  g.add_edge(2, 3);
  const Path cp = find_critical_path(g);
  ASSERT_EQ(cp.nodes(), (std::vector<NodeId>{0, 1, 4}));
  const auto detours = find_detour_subpaths(g, cp);
  ASSERT_EQ(detours.size(), 3u);
  EXPECT_EQ(detours[0].path.nodes(), (std::vector<NodeId>{0, 2, 3, 4}));
  EXPECT_EQ(detours[1].path.nodes(), (std::vector<NodeId>{0, 2, 4}));
  EXPECT_EQ(detours[2].path.nodes(), (std::vector<NodeId>{0, 3, 4}));
}

TEST(Detour, ChainHasNoDetours) {
  Graph g;
  g.add_node("a", 1.0);
  g.add_node("b", 1.0);
  g.add_edge(0, 1);
  const Path cp = find_critical_path(g);
  EXPECT_TRUE(find_detour_subpaths(g, cp).empty());
}

TEST(Detour, DeterministicOrdering) {
  const Graph g = scatter();
  const Path cp = find_critical_path(g);
  const auto a = find_detour_subpaths(g, cp);
  const auto b = find_detour_subpaths(g, cp);
  EXPECT_EQ(a, b);
}

TEST(Detour, RejectsEmptyCriticalPath) {
  const Graph g = scatter();
  EXPECT_THROW(find_detour_subpaths(g, Path()), support::ContractViolation);
}

TEST(Detour, RejectsInvalidCriticalPath) {
  const Graph g = scatter();
  EXPECT_THROW(find_detour_subpaths(g, Path({0, 4})), support::ContractViolation);
}

TEST(Detour, MaxPathsGuard) {
  const Graph g = scatter();
  const Path cp = find_critical_path(g);
  EXPECT_THROW(find_detour_subpaths(g, cp, 1), support::ContractViolation);
}

TEST(Detour, UncoveredNodesEmptyForScatter) {
  const Graph g = scatter();
  const Path cp = find_critical_path(g);
  const auto detours = find_detour_subpaths(g, cp);
  EXPECT_TRUE(uncovered_nodes(g, cp, detours).empty());
}

TEST(Detour, UncoveredNodesFoundForStrayBranch) {
  // Second source that joins mid-path is a detour anchor only if it reaches
  // the critical path; a node hanging off a non-CP source stays uncovered.
  Graph g;
  g.add_node("a", 10.0);
  g.add_node("b", 10.0);
  g.add_node("stray", 1.0);
  g.add_edge(0, 1);
  g.add_edge(2, 1);  // stray source feeding the sink
  const Path cp = find_critical_path(g);
  ASSERT_EQ(cp.nodes(), (std::vector<NodeId>{0, 1}));
  const auto detours = find_detour_subpaths(g, cp);
  EXPECT_TRUE(detours.empty());
  EXPECT_EQ(uncovered_nodes(g, cp, detours), (std::vector<NodeId>{2}));
}

TEST(Detour, InteriorOfTwoNodePathIsEmpty) {
  DetourSubpath d{Path({1, 2})};
  EXPECT_TRUE(d.interior().empty());
}

}  // namespace
}  // namespace aarc::dag
