#include "dag/analysis.h"

#include <gtest/gtest.h>

#include "support/contracts.h"

namespace aarc::dag {
namespace {

Graph chain(std::size_t n) {
  Graph g("chain");
  for (std::size_t i = 0; i < n; ++i) g.add_node("n" + std::to_string(i), 1.0);
  for (std::size_t i = 1; i < n; ++i) g.add_edge(i - 1, i);
  return g;
}

/// src -> {b0, b1, b2} -> sink, each branch fan-in 1 (FanOut shape).
Graph fan_out() {
  Graph g("fan");
  g.add_node("src", 1.0);
  g.add_node("b0", 1.0);
  g.add_node("b1", 1.0);
  g.add_node("b2", 1.0);
  g.add_node("sink", 1.0);
  for (NodeId b : {1u, 2u, 3u}) {
    g.add_edge(0, b);
    g.add_edge(b, 4);
  }
  return g;
}

/// Two source producers each feeding both consumers (complete bipartite:
/// Coupled).  No single-parent fan-out stage anywhere.
Graph coupled() {
  Graph g("coupled");
  g.add_node("p0", 1.0);
  g.add_node("p1", 1.0);
  g.add_node("c0", 1.0);
  g.add_node("c1", 1.0);
  g.add_node("sink", 1.0);
  g.add_edge(0, 2);
  g.add_edge(0, 3);
  g.add_edge(1, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 4);
  g.add_edge(3, 4);
  return g;
}

TEST(Analysis, ToStringNames) {
  EXPECT_EQ(to_string(TopologyClass::Sequential), "sequential");
  EXPECT_EQ(to_string(TopologyClass::FanOut), "fan-out");
  EXPECT_EQ(to_string(TopologyClass::Coupled), "coupled");
  EXPECT_EQ(to_string(TopologyClass::Mixed), "mixed");
}

TEST(Analysis, LevelsOfChain) {
  const auto lv = levels(chain(4));
  EXPECT_EQ(lv, (std::vector<std::size_t>{0, 1, 2, 3}));
}

TEST(Analysis, LevelsUseLongestPath) {
  // Diamond with one long arm: the join's level follows the longer arm.
  Graph g("d");
  g.add_node("a", 1.0);
  g.add_node("b", 1.0);
  g.add_node("c", 1.0);
  g.add_node("d", 1.0);
  g.add_edge(0, 1);
  g.add_edge(1, 3);
  g.add_edge(0, 3);  // short arm
  g.add_edge(0, 2);
  g.add_edge(2, 3);
  EXPECT_EQ(levels(g)[3], 2u);
}

TEST(Analysis, WidthProfileOfFanOut) {
  EXPECT_EQ(width_profile(fan_out()), (std::vector<std::size_t>{1, 3, 1}));
}

TEST(Analysis, ChainMetrics) {
  const GraphMetrics m = analyze(chain(5));
  EXPECT_EQ(m.node_count, 5u);
  EXPECT_EQ(m.edge_count, 4u);
  EXPECT_EQ(m.depth, 5u);
  EXPECT_EQ(m.max_width, 1u);
  EXPECT_EQ(m.max_fan_out, 1u);
  EXPECT_EQ(m.max_fan_in, 1u);
  EXPECT_EQ(m.topology, TopologyClass::Sequential);
  EXPECT_DOUBLE_EQ(m.avg_degree, 0.8);
}

TEST(Analysis, FanOutClassified) {
  const GraphMetrics m = analyze(fan_out());
  EXPECT_EQ(m.topology, TopologyClass::FanOut);
  EXPECT_EQ(m.max_width, 3u);
  EXPECT_EQ(m.max_fan_out, 3u);
  EXPECT_EQ(m.max_fan_in, 3u);
}

TEST(Analysis, CoupledClassified) {
  const GraphMetrics m = analyze(coupled());
  EXPECT_EQ(m.topology, TopologyClass::Coupled);
}

TEST(Analysis, MixedClassified) {
  // Coupled front section plus a single-parent fan-out stage off the sink.
  Graph g = coupled();
  const NodeId s0 = g.add_node("t0", 1.0);
  const NodeId s1 = g.add_node("t1", 1.0);
  g.add_edge(4, s0);
  g.add_edge(4, s1);
  const NodeId sink2 = g.add_node("sink2", 1.0);
  g.add_edge(s0, sink2);
  g.add_edge(s1, sink2);
  EXPECT_EQ(analyze(g).topology, TopologyClass::Mixed);
}

TEST(Analysis, SingleNode) {
  Graph g("one");
  g.add_node("only", 1.0);
  const GraphMetrics m = analyze(g);
  EXPECT_EQ(m.depth, 1u);
  EXPECT_EQ(m.max_width, 1u);
  EXPECT_EQ(m.topology, TopologyClass::Sequential);
}

TEST(Analysis, RejectsInvalidGraph) {
  Graph g;
  EXPECT_THROW(analyze(g), support::ContractViolation);
}

}  // namespace
}  // namespace aarc::dag
