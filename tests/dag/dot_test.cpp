#include "dag/dot.h"

#include <gtest/gtest.h>

#include "dag/critical_path.h"

namespace aarc::dag {
namespace {

Graph small() {
  Graph g("demo");
  g.add_node("alpha", 1.5);
  g.add_node("beta", 2.0);
  g.add_edge(0, 1);
  return g;
}

TEST(Dot, ContainsDigraphHeaderAndName) {
  const std::string dot = to_dot(small());
  EXPECT_NE(dot.find("digraph \"demo\""), std::string::npos);
  EXPECT_NE(dot.find("rankdir=LR"), std::string::npos);
}

TEST(Dot, ContainsAllNodesAndEdges) {
  const std::string dot = to_dot(small());
  EXPECT_NE(dot.find("alpha"), std::string::npos);
  EXPECT_NE(dot.find("beta"), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
}

TEST(Dot, WeightsShownByDefaultAndSuppressible) {
  EXPECT_NE(to_dot(small()).find("w=1.50s"), std::string::npos);
  DotOptions opts;
  opts.show_weights = false;
  EXPECT_EQ(to_dot(small(), opts).find("w="), std::string::npos);
}

TEST(Dot, HighlightMarksPathNodesAndEdges) {
  const Graph g = small();
  const Path cp = find_critical_path(g);
  DotOptions opts;
  opts.highlight = &cp;
  const std::string dot = to_dot(g, opts);
  EXPECT_NE(dot.find("color=red"), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n1 [color=red"), std::string::npos);
}

TEST(Dot, RankdirConfigurable) {
  DotOptions opts;
  opts.rankdir = "TB";
  EXPECT_NE(to_dot(small(), opts).find("rankdir=TB"), std::string::npos);
}

TEST(Dot, BalancedBraces) {
  const std::string dot = to_dot(small());
  EXPECT_EQ(dot.front(), 'd');
  EXPECT_NE(dot.find("{"), std::string::npos);
  EXPECT_EQ(dot.rfind("}\n"), dot.size() - 2);
}

}  // namespace
}  // namespace aarc::dag
