#include "dag/path.h"

#include <gtest/gtest.h>

#include "support/contracts.h"

namespace aarc::dag {
namespace {

using support::ContractViolation;

Graph chain() {
  Graph g("chain");
  g.add_node("a", 10.0);
  g.add_node("b", 20.0);
  g.add_node("c", 30.0);
  g.add_node("d", 40.0);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  return g;
}

TEST(Path, EmptyBasics) {
  const Path p;
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.size(), 0u);
  EXPECT_THROW(p.front(), ContractViolation);
  EXPECT_THROW(p.back(), ContractViolation);
}

TEST(Path, FrontBackAt) {
  const Path p({0, 1, 2});
  EXPECT_EQ(p.front(), 0u);
  EXPECT_EQ(p.back(), 2u);
  EXPECT_EQ(p.at(1), 1u);
  EXPECT_THROW(p.at(3), ContractViolation);
}

TEST(Path, ContainsAndIndexOf) {
  const Path p({5, 3, 8});
  EXPECT_TRUE(p.contains(3));
  EXPECT_FALSE(p.contains(4));
  EXPECT_EQ(p.index_of(8), 2u);
  EXPECT_THROW(p.index_of(4), ContractViolation);
}

TEST(Path, ValidityInGraph) {
  const Graph g = chain();
  EXPECT_TRUE(Path({0, 1, 2, 3}).is_valid_in(g));
  EXPECT_TRUE(Path({1, 2}).is_valid_in(g));
  EXPECT_FALSE(Path({0, 2}).is_valid_in(g));     // skips b
  EXPECT_FALSE(Path({1, 0}).is_valid_in(g));     // wrong direction
  EXPECT_FALSE(Path({0, 99}).is_valid_in(g));    // unknown node
  EXPECT_TRUE(Path({2}).is_valid_in(g));         // single node
  EXPECT_TRUE(Path().is_valid_in(g));            // vacuous
}

TEST(Path, TotalWeight) {
  const Graph g = chain();
  EXPECT_DOUBLE_EQ(Path({0, 1, 2, 3}).total_weight(g), 100.0);
  EXPECT_DOUBLE_EQ(Path({1}).total_weight(g), 20.0);
  EXPECT_DOUBLE_EQ(Path().total_weight(g), 0.0);
}

TEST(Path, WeightBetweenIsInclusive) {
  // This is the paper's runtime_sum(path, start, end).
  const Graph g = chain();
  const Path p({0, 1, 2, 3});
  EXPECT_DOUBLE_EQ(p.weight_between(g, 1, 2), 50.0);
  EXPECT_DOUBLE_EQ(p.weight_between(g, 0, 3), 100.0);
  EXPECT_DOUBLE_EQ(p.weight_between(g, 2, 2), 30.0);
}

TEST(Path, WeightBetweenRejectsReversedInterval) {
  const Graph g = chain();
  const Path p({0, 1, 2, 3});
  EXPECT_THROW(p.weight_between(g, 2, 1), ContractViolation);
}

TEST(Path, WeightBetweenRejectsForeignNodes) {
  const Graph g = chain();
  const Path p({0, 1, 2});
  EXPECT_THROW(p.weight_between(g, 0, 3), ContractViolation);
}

TEST(Path, ToStringUsesNames) {
  const Graph g = chain();
  EXPECT_EQ(Path({0, 1, 2}).to_string(g), "a -> b -> c");
  EXPECT_EQ(Path({3}).to_string(g), "d");
  EXPECT_EQ(Path().to_string(g), "");
}

TEST(Path, EqualityIsStructural) {
  EXPECT_EQ(Path({1, 2}), Path({1, 2}));
  EXPECT_NE(Path({1, 2}), Path({2, 1}));
}

}  // namespace
}  // namespace aarc::dag
