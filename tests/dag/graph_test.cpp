#include "dag/graph.h"

#include <gtest/gtest.h>

#include "support/contracts.h"

namespace aarc::dag {
namespace {

using support::ContractViolation;

Graph diamond() {
  Graph g("diamond");
  const NodeId a = g.add_node("a", 1.0);
  const NodeId b = g.add_node("b", 2.0);
  const NodeId c = g.add_node("c", 3.0);
  const NodeId d = g.add_node("d", 4.0);
  g.add_edge(a, b);
  g.add_edge(a, c);
  g.add_edge(b, d);
  g.add_edge(c, d);
  return g;
}

TEST(Graph, StartsEmpty) {
  Graph g;
  EXPECT_TRUE(g.empty());
  EXPECT_EQ(g.node_count(), 0u);
  EXPECT_EQ(g.edge_count(), 0u);
}

TEST(Graph, AddNodeAssignsDenseIds) {
  Graph g;
  EXPECT_EQ(g.add_node("a"), 0u);
  EXPECT_EQ(g.add_node("b"), 1u);
  EXPECT_EQ(g.node_count(), 2u);
}

TEST(Graph, RejectsEmptyName) {
  Graph g;
  EXPECT_THROW(g.add_node(""), ContractViolation);
}

TEST(Graph, RejectsDuplicateName) {
  Graph g;
  g.add_node("a");
  EXPECT_THROW(g.add_node("a"), ContractViolation);
}

TEST(Graph, RejectsNegativeWeight) {
  Graph g;
  EXPECT_THROW(g.add_node("a", -1.0), ContractViolation);
}

TEST(Graph, FindNodeByName) {
  const Graph g = diamond();
  EXPECT_EQ(g.find_node("c"), std::optional<NodeId>(2u));
  EXPECT_FALSE(g.find_node("missing").has_value());
}

TEST(Graph, EdgeBookkeeping) {
  const Graph g = diamond();
  EXPECT_EQ(g.edge_count(), 4u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(1, 0));
  EXPECT_EQ(g.successors(0).size(), 2u);
  EXPECT_EQ(g.predecessors(3).size(), 2u);
}

TEST(Graph, DuplicateEdgeIsIdempotent) {
  Graph g = diamond();
  g.add_edge(0, 1);
  EXPECT_EQ(g.edge_count(), 4u);
  EXPECT_EQ(g.successors(0).size(), 2u);
}

TEST(Graph, RejectsSelfLoop) {
  Graph g = diamond();
  EXPECT_THROW(g.add_edge(1, 1), ContractViolation);
}

TEST(Graph, RejectsOutOfRangeIds) {
  Graph g = diamond();
  EXPECT_THROW(g.add_edge(0, 99), ContractViolation);
  EXPECT_THROW(g.weight(99), ContractViolation);
  EXPECT_THROW(g.node_name(99), ContractViolation);
}

TEST(Graph, WeightsRoundTrip) {
  Graph g = diamond();
  g.set_weight(2, 7.5);
  EXPECT_DOUBLE_EQ(g.weight(2), 7.5);
  const std::vector<double> w{1.0, 1.0, 1.0, 1.0};
  g.set_weights(w);
  EXPECT_EQ(g.weights(), w);
}

TEST(Graph, SetWeightsRejectsWrongSize) {
  Graph g = diamond();
  EXPECT_THROW(g.set_weights({1.0, 2.0}), ContractViolation);
}

TEST(Graph, SetWeightsRejectsNegative) {
  Graph g = diamond();
  EXPECT_THROW(g.set_weights({1.0, -2.0, 3.0, 4.0}), ContractViolation);
}

TEST(Graph, SourcesAndSinks) {
  const Graph g = diamond();
  EXPECT_EQ(g.sources(), std::vector<NodeId>{0});
  EXPECT_EQ(g.sinks(), std::vector<NodeId>{3});
}

TEST(Graph, TopologicalOrderRespectsEdges) {
  const Graph g = diamond();
  const auto order = g.topological_order();
  ASSERT_EQ(order.size(), 4u);
  std::vector<std::size_t> pos(4);
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  EXPECT_LT(pos[0], pos[1]);
  EXPECT_LT(pos[0], pos[2]);
  EXPECT_LT(pos[1], pos[3]);
  EXPECT_LT(pos[2], pos[3]);
}

TEST(Graph, CycleDetection) {
  Graph g;
  const NodeId a = g.add_node("a");
  const NodeId b = g.add_node("b");
  const NodeId c = g.add_node("c");
  g.add_edge(a, b);
  g.add_edge(b, c);
  EXPECT_TRUE(g.is_acyclic());
  g.add_edge(c, a);
  EXPECT_FALSE(g.is_acyclic());
  EXPECT_THROW(g.topological_order(), ContractViolation);
}

TEST(Graph, ConnectivityDetection) {
  Graph g;
  g.add_node("a");
  g.add_node("b");
  EXPECT_FALSE(g.is_connected());
  g.add_edge(0, 1);
  EXPECT_TRUE(g.is_connected());
}

TEST(Graph, EmptyGraphIsNotConnected) {
  const Graph g;
  EXPECT_FALSE(g.is_connected());
}

TEST(Graph, Reachability) {
  const Graph g = diamond();
  EXPECT_TRUE(g.reachable(0, 3));
  EXPECT_TRUE(g.reachable(1, 3));
  EXPECT_FALSE(g.reachable(1, 2));
  EXPECT_FALSE(g.reachable(3, 0));
  EXPECT_TRUE(g.reachable(2, 2));
}

TEST(Graph, ValidateAcceptsWellFormedDag) {
  EXPECT_NO_THROW(diamond().validate());
}

TEST(Graph, ValidateRejectsEmpty) {
  const Graph g;
  EXPECT_THROW(g.validate(), ContractViolation);
}

TEST(Graph, ValidateRejectsDisconnected) {
  Graph g;
  g.add_node("a");
  g.add_node("b");
  EXPECT_THROW(g.validate(), ContractViolation);
}

TEST(Graph, ValidationCacheInvalidatedByMutation) {
  // validate() caches the structural result; adding nodes/edges must drop
  // the cache so later corruption is still caught.
  Graph g = diamond();
  g.validate();          // caches success
  g.add_node("island");  // disconnects the graph
  EXPECT_THROW(g.validate(), ContractViolation);
  g.add_edge(3, 4);  // reconnect (sink -> island)
  EXPECT_NO_THROW(g.validate());
}

TEST(Graph, ValidationCacheSurvivesWeightUpdates) {
  Graph g = diamond();
  g.validate();
  g.set_weight(0, 99.0);  // weights can't break structure
  EXPECT_NO_THROW(g.validate());
}

TEST(Graph, ValidateRejectsCycle) {
  Graph g;
  g.add_node("a");
  g.add_node("b");
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  EXPECT_THROW(g.validate(), ContractViolation);
}

}  // namespace
}  // namespace aarc::dag
