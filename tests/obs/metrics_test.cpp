#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <limits>
#include <new>

#include "io/json.h"
#include "support/contracts.h"
#include "support/thread_pool.h"

namespace aarc {
namespace {

// Global allocation counter for the zero-allocation hot-path guard.  The
// override is per-binary, so it only affects obs_tests.
std::atomic<std::uint64_t> g_allocations{0};

}  // namespace
}  // namespace aarc

void* operator new(std::size_t size) {
  aarc::g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace aarc {
namespace {

TEST(Counter, StartsAtZeroAndAccumulates) {
  obs::Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Counter, DisabledMetricsDropIncrements) {
  obs::Counter c;
  obs::set_metrics_enabled(false);
  c.inc(100);
  obs::set_metrics_enabled(true);
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  EXPECT_EQ(c.value(), 1u);
}

TEST(Counter, HotPathDoesNotAllocate) {
  obs::Counter c;
  const std::uint64_t before = g_allocations.load();
  for (int i = 0; i < 100000; ++i) c.inc();
  EXPECT_EQ(g_allocations.load(), before) << "Counter::inc must not allocate";
  EXPECT_EQ(c.value(), 100000u);
}

#ifdef NDEBUG
TEST(Counter, HotPathIsCheap) {
  // Release-mode micro-bench guard: 10M relaxed increments should take well
  // under a second on any machine; the bound is generous to stay green on
  // loaded CI boxes while still catching an accidental lock or allocation.
  obs::Counter c;
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < 10'000'000; ++i) c.inc();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  EXPECT_EQ(c.value(), 10'000'000u);
  EXPECT_LT(elapsed, 2.0) << "Counter::inc hot path regressed";
}
#endif

TEST(Counter, ConcurrentIncrementsNeverLoseUpdates) {
  obs::Counter c;
  support::ThreadPool pool(4);
  constexpr std::size_t kItems = 1000;
  constexpr std::uint64_t kPerItem = 100;
  pool.parallel_for(kItems, [&](std::size_t, std::size_t) {
    for (std::uint64_t i = 0; i < kPerItem; ++i) c.inc();
  });
  EXPECT_EQ(c.value(), kItems * kPerItem);
}

TEST(Gauge, SetAddAndRecordMax) {
  obs::Gauge g;
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.add(1.5);
  EXPECT_DOUBLE_EQ(g.value(), 4.0);
  g.record_max(3.0);  // below current: no change
  EXPECT_DOUBLE_EQ(g.value(), 4.0);
  g.record_max(7.0);
  EXPECT_DOUBLE_EQ(g.value(), 7.0);
}

TEST(Gauge, ConcurrentAddIsExact) {
  obs::Gauge g;
  support::ThreadPool pool(4);
  pool.parallel_for(1000, [&](std::size_t, std::size_t) { g.add(1.0); });
  EXPECT_DOUBLE_EQ(g.value(), 1000.0);
}

TEST(Histogram, CountsSumAndBuckets) {
  obs::Histogram h({1.0, 2.0, 4.0});
  h.observe(0.5);
  h.observe(1.5);
  h.observe(3.0);
  h.observe(100.0);  // overflow
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 105.0);
  const auto buckets = h.bucket_counts();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0], 1u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 1u);
  EXPECT_EQ(buckets[3], 1u);
}

TEST(Histogram, QuantilesInterpolateWithinBuckets) {
  obs::Histogram h({10.0, 20.0});
  // 100 observations uniformly inside the first bucket.
  for (int i = 0; i < 100; ++i) h.observe(5.0);
  // p50 targets the 50th of 100 values, all in (0, 10]: interpolates to 5.
  EXPECT_NEAR(h.quantile(0.5), 5.0, 1e-9);
  EXPECT_NEAR(h.quantile(1.0), 10.0, 1e-9);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
}

TEST(Histogram, QuantileOfEmptyIsZeroAndOverflowClampsToLastBound) {
  obs::Histogram h({1.0, 2.0});
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  h.observe(50.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 2.0);  // overflow reports the last bound
}

TEST(Histogram, ExactQuantileOnKnownDistribution) {
  // 0..99 observed once each with unit-wide buckets: p95 must land in the
  // bucket holding 95 and interpolate inside it.
  std::vector<double> bounds;
  for (double b = 1.0; b <= 100.0; b += 1.0) bounds.push_back(b);
  obs::Histogram h(bounds);
  for (int i = 0; i < 100; ++i) h.observe(static_cast<double>(i) + 0.5);
  EXPECT_NEAR(h.quantile(0.95), 95.0, 1.0);
  EXPECT_NEAR(h.quantile(0.50), 50.0, 1.0);
}

TEST(Histogram, RejectsBadBounds) {
  EXPECT_THROW(obs::Histogram({}), support::ContractViolation);
  EXPECT_THROW(obs::Histogram({2.0, 1.0}), support::ContractViolation);
  EXPECT_THROW(obs::Histogram({1.0, 1.0}), support::ContractViolation);
}

TEST(Histogram, ConcurrentObserveKeepsTotals) {
  obs::Histogram h(obs::default_latency_buckets());
  support::ThreadPool pool(4);
  pool.parallel_for(1000, [&](std::size_t item, std::size_t) {
    h.observe(0.001 * static_cast<double>(item + 1));
  });
  EXPECT_EQ(h.count(), 1000u);
  std::uint64_t bucket_total = 0;
  for (const auto b : h.bucket_counts()) bucket_total += b;
  EXPECT_EQ(bucket_total, 1000u);
}

TEST(Registry, FindOrCreateReturnsStableReferences) {
  obs::MetricsRegistry reg;
  obs::Counter& a = reg.counter("test.a_total");
  obs::Counter& b = reg.counter("test.a_total");
  EXPECT_EQ(&a, &b);
  a.inc();
  EXPECT_EQ(b.value(), 1u);
}

TEST(Registry, KindCollisionIsAContractViolation) {
  obs::MetricsRegistry reg;
  reg.counter("test.mixed");
  EXPECT_THROW(reg.gauge("test.mixed"), support::ContractViolation);
  EXPECT_THROW(reg.histogram("test.mixed", {1.0}), support::ContractViolation);
}

TEST(Registry, SnapshotIsNameSortedAndComplete) {
  obs::MetricsRegistry reg;
  reg.counter("test.z_total").inc(3);
  reg.gauge("test.a_gauge").set(1.5);
  reg.histogram("test.m_hist", {1.0, 2.0}).observe(0.5);
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.metrics.size(), 3u);
  EXPECT_EQ(snap.metrics[0].name, "test.a_gauge");
  EXPECT_EQ(snap.metrics[1].name, "test.m_hist");
  EXPECT_EQ(snap.metrics[2].name, "test.z_total");
  EXPECT_DOUBLE_EQ(snap.value_or("test.z_total", -1.0), 3.0);
  EXPECT_DOUBLE_EQ(snap.value_or("test.absent", -1.0), -1.0);
  ASSERT_NE(snap.find("test.m_hist"), nullptr);
  EXPECT_EQ(snap.find("test.m_hist")->kind, obs::MetricKind::Histogram);
}

TEST(Registry, ResetZeroesValuesButKeepsRegistrations) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("test.c_total");
  c.inc(5);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(reg.names().size(), 1u);
}

TEST(Registry, SnapshotJsonIsValidAndRoundTrips) {
  obs::MetricsRegistry reg;
  reg.counter("test.count_total").inc(7);
  reg.gauge("test.level").set(2.25);
  obs::Histogram& h = reg.histogram("test.lat_seconds", {1.0, 2.0});
  h.observe(0.5);
  h.observe(1.5);
  const std::string json = reg.snapshot().to_json();
  const io::Json doc = io::parse_json(json);
  EXPECT_DOUBLE_EQ(doc.at("test.count_total").as_number(), 7.0);
  EXPECT_DOUBLE_EQ(doc.at("test.level").as_number(), 2.25);
  const io::Json& hist = doc.at("test.lat_seconds");
  EXPECT_DOUBLE_EQ(hist.at("count").as_number(), 2.0);
  EXPECT_DOUBLE_EQ(hist.at("sum").as_number(), 2.0);
  ASSERT_EQ(hist.at("bounds").as_array().size(), 2u);
  ASSERT_EQ(hist.at("buckets").as_array().size(), 3u);  // + overflow
}

TEST(Labels, LabeledComposesSeriesNames) {
  EXPECT_EQ(obs::labeled("search.worker_probes_total", "worker", "3"),
            "search.worker_probes_total{worker=3}");
}

TEST(Catalog, EveryNameIsCataloguedAndLabelsStrip) {
  for (const auto& info : obs::metric_catalog()) {
    EXPECT_TRUE(obs::is_catalogued_metric(info.name)) << info.name;
  }
  EXPECT_TRUE(obs::is_catalogued_metric("search.worker_probes_total{worker=7}"));
  EXPECT_FALSE(obs::is_catalogued_metric("search.not_a_metric_total"));
}

TEST(Catalog, GlobalRegistryOnlyEverSeesCataloguedBaseNames) {
  // The process-wide registry aggregates whatever instrumented code ran
  // before this test; every name must trace back to the catalog.
  for (const auto& name : obs::MetricsRegistry::global().names()) {
    EXPECT_TRUE(obs::is_catalogued_metric(name)) << name;
  }
}

TEST(JsonHelpers, StringEscapingAndNumbers) {
  std::string out;
  obs::append_json_string(out, "a\"b\\c\nd");
  EXPECT_EQ(out, "\"a\\\"b\\\\c\\nd\"");
  EXPECT_EQ(obs::json_number(3.0), "3");
  EXPECT_EQ(obs::json_number(0.5), "0.5");
  EXPECT_THROW(obs::json_number(std::numeric_limits<double>::infinity()),
               support::ContractViolation);
}

}  // namespace
}  // namespace aarc
