#include "obs/span.h"

#include <gtest/gtest.h>

#include <thread>

#include "io/json.h"

namespace aarc {
namespace {

obs::TraceEvent make_event(std::string name, std::string category,
                           std::uint32_t tid, std::uint64_t start_us,
                           std::uint64_t duration_us,
                           std::vector<std::pair<std::string, std::string>> args = {}) {
  obs::TraceEvent e;
  e.name = std::move(name);
  e.category = std::move(category);
  e.tid = tid;
  e.start_us = start_us;
  e.duration_us = duration_us;
  e.args = std::move(args);
  return e;
}

// Golden-file test: the Chrome trace_event export is byte-stable for a fixed
// event list.  Tracer::record is unconditional, so fixed timestamps can be
// injected without enabling the tracer.
TEST(TracerExport, TraceEventJsonGolden) {
  obs::Tracer tracer;
  tracer.record(make_event("search.probe", "search", 1, 904, 512,
                           {{"executions", "1"}}));
  tracer.record(make_event("aarc.schedule", "aarc", 0, 12, 88211));
  const std::string expected =
      "{\n"
      "\"displayTimeUnit\": \"ms\",\n"
      "\"traceEvents\": [\n"
      "{\"name\": \"aarc.schedule\", \"cat\": \"aarc\", \"ph\": \"X\", "
      "\"pid\": 1, \"tid\": 0, \"ts\": 12, \"dur\": 88211, \"args\": {}},\n"
      "{\"name\": \"search.probe\", \"cat\": \"search\", \"ph\": \"X\", "
      "\"pid\": 1, \"tid\": 1, \"ts\": 904, \"dur\": 512, "
      "\"args\": {\"executions\": \"1\"}}\n"
      "]\n"
      "}\n";
  EXPECT_EQ(tracer.to_trace_event_json(), expected);
}

TEST(TracerExport, JsonlGolden) {
  obs::Tracer tracer;
  tracer.record(make_event("bo.fit", "bo", 2, 100, 50, {{"observations", "8"}}));
  tracer.record(make_event("bo.run", "bo", 0, 0, 900));
  const std::string expected =
      "{\"name\": \"bo.run\", \"cat\": \"bo\", \"tid\": 0, \"ts_us\": 0, "
      "\"dur_us\": 900, \"args\": {}}\n"
      "{\"name\": \"bo.fit\", \"cat\": \"bo\", \"tid\": 2, \"ts_us\": 100, "
      "\"dur_us\": 50, \"args\": {\"observations\": \"8\"}}\n";
  EXPECT_EQ(tracer.to_jsonl(), expected);
}

TEST(TracerExport, TraceEventJsonParsesAndEscapes) {
  obs::Tracer tracer;
  tracer.record(make_event("weird \"name\"\n", "cat\\egory", 0, 1, 2,
                           {{"key", "va\"lue"}}));
  const io::Json doc = io::parse_json(tracer.to_trace_event_json());
  EXPECT_EQ(doc.at("displayTimeUnit").as_string(), "ms");
  const auto& events = doc.at("traceEvents").as_array();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].at("name").as_string(), "weird \"name\"\n");
  EXPECT_EQ(events[0].at("cat").as_string(), "cat\\egory");
  EXPECT_EQ(events[0].at("ph").as_string(), "X");
  EXPECT_DOUBLE_EQ(events[0].at("pid").as_number(), 1.0);
  EXPECT_EQ(events[0].at("args").at("key").as_string(), "va\"lue");
}

TEST(TracerExport, EventsSortedByStartThenTid) {
  obs::Tracer tracer;
  tracer.record(make_event("b", "t", 5, 10, 1));
  tracer.record(make_event("c", "t", 1, 20, 1));
  tracer.record(make_event("a", "t", 2, 10, 1));
  const io::Json doc = io::parse_json(tracer.to_trace_event_json());
  const auto& events = doc.at("traceEvents").as_array();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].at("name").as_string(), "a");  // ts 10, tid 2
  EXPECT_EQ(events[1].at("name").as_string(), "b");  // ts 10, tid 5
  EXPECT_EQ(events[2].at("name").as_string(), "c");  // ts 20
}

TEST(Span, DisabledTracerMakesSpansFree) {
  obs::Tracer tracer;  // enabled_ defaults to false
  {
    obs::Span span(tracer, "test.noop", "test");
    EXPECT_FALSE(span.active());
    span.arg("ignored", std::uint64_t{1});
  }
  EXPECT_EQ(tracer.size(), 0u);
}

TEST(Span, EnabledTracerRecordsOnScopeExit) {
  obs::Tracer tracer;
  tracer.set_enabled(true);
  {
    obs::Span span(tracer, "test.work", "test");
    EXPECT_TRUE(span.active());
    span.arg("items", std::uint64_t{42});
    span.arg("score", 0.5);
    span.arg("mode", "batch");
    EXPECT_EQ(tracer.size(), 0u);  // not yet recorded
  }
  ASSERT_EQ(tracer.size(), 1u);
  const obs::TraceEvent e = tracer.events()[0];
  EXPECT_EQ(e.name, "test.work");
  EXPECT_EQ(e.category, "test");
  ASSERT_EQ(e.args.size(), 3u);
  EXPECT_EQ(e.args[0].first, "items");
  EXPECT_EQ(e.args[0].second, "42");
  EXPECT_EQ(e.args[1].first, "score");
  EXPECT_EQ(e.args[2].second, "batch");
}

TEST(Span, FinishIsIdempotent) {
  obs::Tracer tracer;
  tracer.set_enabled(true);
  obs::Span span(tracer, "test.once", "test");
  span.finish();
  span.finish();
  EXPECT_EQ(tracer.size(), 1u);
}

TEST(Span, NestedSpansShareThreadAndContain) {
  obs::Tracer tracer;
  tracer.set_enabled(true);
  {
    obs::Span outer(tracer, "test.outer", "test");
    obs::Span inner(tracer, "test.inner", "test");
  }
  ASSERT_EQ(tracer.size(), 2u);
  const auto events = tracer.events();
  // Destruction order records inner first.
  const obs::TraceEvent& inner = events[0];
  const obs::TraceEvent& outer = events[1];
  EXPECT_EQ(inner.name, "test.inner");
  EXPECT_EQ(outer.name, "test.outer");
  EXPECT_EQ(inner.tid, outer.tid);
  EXPECT_GE(inner.start_us, outer.start_us);
  EXPECT_LE(inner.start_us + inner.duration_us,
            outer.start_us + outer.duration_us);
}

TEST(Tracer, ClearEmptiesTheBuffer) {
  obs::Tracer tracer;
  tracer.record(make_event("x", "t", 0, 0, 1));
  EXPECT_EQ(tracer.size(), 1u);
  tracer.clear();
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.to_jsonl(), "");
}

TEST(Tracer, LogicalThreadIdsAreSmallAndStable) {
  const std::uint32_t mine = obs::logical_thread_id();
  EXPECT_EQ(obs::logical_thread_id(), mine);  // stable within a thread
  std::uint32_t other = mine;
  std::thread([&other] { other = obs::logical_thread_id(); }).join();
  EXPECT_NE(other, mine);
}

}  // namespace
}  // namespace aarc
