#include "obs/manifest.h"

#include <gtest/gtest.h>

#include "io/json.h"

namespace aarc {
namespace {

TEST(RunManifest, JsonCarriesHeaderOptionsAndMetrics) {
  obs::MetricsRegistry reg;
  reg.counter("test.runs_total").inc(1);
  reg.gauge("test.level").set(1.5);

  obs::RunManifest manifest;
  manifest.command = "schedule";
  manifest.workload = "ml_pipeline";
  manifest.seed = 2025;
  manifest.add_option("threads", std::uint64_t{4});
  manifest.add_option("slo-factor", 1.2);
  manifest.add_option("trace", "probe.csv");

  const io::Json doc = io::parse_json(manifest.to_json(reg.snapshot()));
  EXPECT_EQ(doc.at("tool").as_string(), "aarc_cli");
  EXPECT_FALSE(doc.at("version").as_string().empty());
  EXPECT_EQ(doc.at("command").as_string(), "schedule");
  EXPECT_EQ(doc.at("workload").as_string(), "ml_pipeline");
  EXPECT_DOUBLE_EQ(doc.at("seed").as_number(), 2025.0);

  const io::Json& options = doc.at("options");
  EXPECT_EQ(options.at("threads").as_string(), "4");
  EXPECT_EQ(options.at("slo-factor").as_string(), "1.2");
  EXPECT_EQ(options.at("trace").as_string(), "probe.csv");

  const io::Json& metrics = doc.at("metrics");
  EXPECT_DOUBLE_EQ(metrics.at("test.runs_total").as_number(), 1.0);
  EXPECT_DOUBLE_EQ(metrics.at("test.level").as_number(), 1.5);
}

TEST(RunManifest, EmptyRegistrySnapshotStillParses) {
  obs::MetricsRegistry reg;
  obs::RunManifest manifest;
  manifest.command = "simulate";
  const io::Json doc = io::parse_json(manifest.to_json(reg.snapshot()));
  EXPECT_EQ(doc.at("command").as_string(), "simulate");
  EXPECT_EQ(doc.at("workload").as_string(), "");
  EXPECT_TRUE(doc.at("metrics").is_object());
  EXPECT_TRUE(doc.at("metrics").as_object().empty());
}

TEST(GitDescribe, NeverEmpty) {
  EXPECT_FALSE(obs::git_describe().empty());
}

}  // namespace
}  // namespace aarc
