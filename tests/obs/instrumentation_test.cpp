// End-to-end checks on the instrumentation itself:
//
//   * reconciliation — the global registry's search counters agree with the
//     search trace the run returned (the invariants documented in
//     doc/OBSERVABILITY.md);
//   * neutrality — metrics and tracing are write-only, so toggling them
//     cannot change a search result, and neither can the thread count.
#include <gtest/gtest.h>

#include <vector>

#include "aarc/scheduler.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "platform/executor.h"
#include "search/evaluator.h"
#include "workloads/catalog.h"

namespace aarc {
namespace {

search::SearchResult run_schedule(std::size_t threads, bool probe_cache) {
  const workloads::Workload w = workloads::make_by_name("ml_pipeline");
  const platform::Executor ex;
  const platform::ConfigGrid grid;
  core::SchedulerOptions opts;
  opts.evaluator_threads = threads;
  opts.probe_cache = probe_cache;
  const core::GraphCentricScheduler scheduler(ex, grid, opts);
  return scheduler.schedule(w.workflow, w.slo_seconds).result;
}

std::vector<double> makespans(const search::SearchResult& r) {
  std::vector<double> out;
  for (const auto& s : r.trace.samples()) out.push_back(s.makespan);
  return out;
}

double global_value(const char* name) {
  return obs::MetricsRegistry::global().snapshot().value_or(name, -1.0);
}

TEST(Reconciliation, RegistryCountersMatchTheSearchTrace) {
  obs::MetricsRegistry::global().reset();
  const search::SearchResult result = run_schedule(/*threads=*/2, /*cache=*/true);

  // The documented invariants, against this run's deltas.
  const double probes = global_value(obs::metric::kSearchProbes);
  const double executed = global_value(obs::metric::kSearchProbesExecuted);
  const double hits = global_value(obs::metric::kSearchCacheHits);
  EXPECT_EQ(probes, static_cast<double>(result.trace.size()));
  EXPECT_EQ(hits, static_cast<double>(result.trace.cache_hits()));
  EXPECT_EQ(executed, static_cast<double>(result.trace.billed_samples()));
  EXPECT_EQ(probes, executed + hits);

  // The scheduler ran exactly once and produced a feasible configuration.
  EXPECT_EQ(global_value(obs::metric::kAarcSchedules), 1.0);
  EXPECT_TRUE(result.found_feasible);
  EXPECT_GT(global_value(obs::metric::kAarcPathsConfigured), 0.0);
}

TEST(Reconciliation, PlatformExecutionsCoverEveryBilledProbe) {
  obs::MetricsRegistry::global().reset();
  const search::SearchResult result = run_schedule(/*threads=*/1, /*cache=*/false);
  const double platform_runs = global_value(obs::metric::kPlatformExecutions);
  // Every billed probe is at least one platform execution (re-samples and
  // the profiling run add more, never fewer).
  EXPECT_GE(platform_runs, static_cast<double>(result.trace.billed_samples()));
}

TEST(Neutrality, MetricsOnOffIsBitIdentical) {
  const search::SearchResult on = run_schedule(2, true);
  obs::set_metrics_enabled(false);
  const search::SearchResult off = run_schedule(2, true);
  obs::set_metrics_enabled(true);
  EXPECT_EQ(on.found_feasible, off.found_feasible);
  EXPECT_EQ(on.best_config, off.best_config);
  EXPECT_EQ(on.samples(), off.samples());
  EXPECT_EQ(makespans(on), makespans(off));
}

TEST(Neutrality, TracingOnOffIsBitIdentical) {
  obs::Tracer& tracer = obs::Tracer::global();
  const bool was_enabled = tracer.enabled();
  tracer.set_enabled(true);
  const search::SearchResult traced = run_schedule(2, true);
  tracer.set_enabled(false);
  const search::SearchResult plain = run_schedule(2, true);
  tracer.set_enabled(was_enabled);
  EXPECT_EQ(traced.best_config, plain.best_config);
  EXPECT_EQ(makespans(traced), makespans(plain));
}

TEST(Neutrality, ThreadCountWithMetricsIsBitIdentical) {
  const search::SearchResult serial = run_schedule(1, true);
  const search::SearchResult parallel = run_schedule(8, true);
  EXPECT_EQ(serial.best_config, parallel.best_config);
  EXPECT_EQ(serial.samples(), parallel.samples());
  EXPECT_EQ(makespans(serial), makespans(parallel));
}

TEST(Spans, ScheduleEmitsTheDocumentedHierarchyRoots) {
  obs::Tracer& tracer = obs::Tracer::global();
  tracer.clear();
  tracer.set_enabled(true);
  run_schedule(2, true);
  tracer.set_enabled(false);

  bool saw_schedule = false, saw_profile = false, saw_path = false,
       saw_batch = false, saw_finalize = false;
  for (const auto& e : tracer.events()) {
    if (e.name == "aarc.schedule") saw_schedule = true;
    if (e.name == "aarc.profile_base") saw_profile = true;
    if (e.name == "aarc.configure_path") saw_path = true;
    if (e.name == "search.batch") saw_batch = true;
    if (e.name == "aarc.finalize") saw_finalize = true;
  }
  EXPECT_TRUE(saw_schedule);
  EXPECT_TRUE(saw_profile);
  EXPECT_TRUE(saw_path);
  EXPECT_TRUE(saw_batch);
  EXPECT_TRUE(saw_finalize);
  tracer.clear();
}

}  // namespace
}  // namespace aarc
