#include "inputaware/engine.h"

#include <gtest/gtest.h>

#include "platform/executor.h"
#include "support/contracts.h"
#include "workloads/synthetic.h"
#include "workloads/video_analysis.h"

namespace aarc::inputaware {
namespace {

InputDescriptor input_of_scale(double scale) {
  const ReferenceInput ref;
  InputDescriptor in = ref.descriptor;
  in.size_mb *= scale;
  in.bitrate_kbps *= scale;
  in.duration_seconds *= scale;
  return in;
}

/// Small input-sensitive workload (cheaper to schedule than Video Analysis).
workloads::Workload small_sensitive() {
  workloads::SyntheticOptions opts;
  opts.pattern = workloads::Pattern::Chain;
  opts.layers = 1;
  opts.seed = 3;
  workloads::Workload w = workloads::make_synthetic(opts);
  w.input_sensitive = true;
  w.input_classes = {{workloads::InputClass::Light, 0.25},
                     {workloads::InputClass::Middle, 1.0},
                     {workloads::InputClass::Heavy, 2.0}};
  // Headroom so the heavy class stays feasible.
  w.slo_seconds *= 2.5;
  return w;
}

TEST(Engine, RejectsBadThresholds) {
  const workloads::Workload w = small_sensitive();
  const platform::Executor ex;
  ClassThresholds t;
  t.light_below = 2.0;
  t.heavy_above = 1.0;
  EXPECT_THROW(InputAwareEngine(w, ex, platform::ConfigGrid{}, {}, t),
               support::ContractViolation);
}

TEST(Engine, ClassifiesByScale) {
  const workloads::Workload w = small_sensitive();
  const platform::Executor ex;
  const InputAwareEngine engine(w, ex, platform::ConfigGrid{});
  EXPECT_EQ(engine.classify(input_of_scale(0.2)), workloads::InputClass::Light);
  EXPECT_EQ(engine.classify(input_of_scale(1.0)), workloads::InputClass::Middle);
  EXPECT_EQ(engine.classify(input_of_scale(3.0)), workloads::InputClass::Heavy);
}

TEST(Engine, ClassBoundariesAreHalfOpen) {
  const workloads::Workload w = small_sensitive();
  const platform::Executor ex;
  const InputAwareEngine engine(w, ex, platform::ConfigGrid{});
  EXPECT_EQ(engine.classify(input_of_scale(0.4999)), workloads::InputClass::Light);
  EXPECT_EQ(engine.classify(input_of_scale(0.5001)), workloads::InputClass::Middle);
  EXPECT_EQ(engine.classify(input_of_scale(1.5)), workloads::InputClass::Heavy);
}

TEST(Engine, ConfigurationBeforeBuildThrows) {
  const workloads::Workload w = small_sensitive();
  const platform::Executor ex;
  const InputAwareEngine engine(w, ex, platform::ConfigGrid{});
  EXPECT_FALSE(engine.built());
  EXPECT_THROW(engine.configuration(workloads::InputClass::Middle),
               support::ContractViolation);
}

TEST(Engine, BuildProducesPerClassConfigurations) {
  const workloads::Workload w = small_sensitive();
  const platform::Executor ex;
  InputAwareEngine engine(w, ex, platform::ConfigGrid{});
  const std::size_t samples = engine.build();
  EXPECT_TRUE(engine.built());
  EXPECT_GT(samples, 0u);
  for (auto c : {workloads::InputClass::Light, workloads::InputClass::Middle,
                 workloads::InputClass::Heavy}) {
    const auto& cc = engine.configuration(c);
    EXPECT_EQ(cc.input_class, c);
    EXPECT_TRUE(cc.report.result.found_feasible) << workloads::to_string(c);
    EXPECT_EQ(cc.report.result.best_config.size(), w.workflow.function_count());
  }
}

TEST(Engine, HeavyClassGetsMoreOrEqualResourcesThanLight) {
  const workloads::Workload w = small_sensitive();
  const platform::Executor ex;
  InputAwareEngine engine(w, ex, platform::ConfigGrid{});
  engine.build();
  const auto& light = engine.configuration(workloads::InputClass::Light);
  const auto& heavy = engine.configuration(workloads::InputClass::Heavy);
  double light_rate = 0.0;
  double heavy_rate = 0.0;
  for (std::size_t i = 0; i < w.workflow.function_count(); ++i) {
    light_rate += 0.512 * light.report.result.best_config[i].vcpu +
                  0.001 * light.report.result.best_config[i].memory_mb;
    heavy_rate += 0.512 * heavy.report.result.best_config[i].vcpu +
                  0.001 * heavy.report.result.best_config[i].memory_mb;
  }
  EXPECT_GE(heavy_rate, light_rate * 0.9);
}

TEST(Engine, DispatchRoutesToTheMatchingClass) {
  const workloads::Workload w = small_sensitive();
  const platform::Executor ex;
  InputAwareEngine engine(w, ex, platform::ConfigGrid{});
  engine.build();
  EXPECT_EQ(engine.dispatch(input_of_scale(0.2)).input_class,
            workloads::InputClass::Light);
  EXPECT_EQ(engine.dispatch(input_of_scale(1.0)).input_class,
            workloads::InputClass::Middle);
  EXPECT_EQ(engine.dispatch(input_of_scale(2.5)).input_class,
            workloads::InputClass::Heavy);
}

TEST(Engine, PerClassConfigsMeetTheSloAtTheirScale) {
  const workloads::Workload w = small_sensitive();
  platform::ExecutorOptions noiseless;
  noiseless.noise = perf::NoiseModel(0.0);
  const platform::Executor mean_ex(std::make_unique<platform::DecoupledLinearPricing>(),
                                   noiseless);
  const platform::Executor ex;
  InputAwareEngine engine(w, ex, platform::ConfigGrid{});
  engine.build();
  for (const auto& entry : w.input_classes) {
    const auto& cc = engine.configuration(entry.input_class);
    const auto run =
        mean_ex.execute_mean(w.workflow, cc.report.result.best_config, entry.scale);
    EXPECT_FALSE(run.failed);
    EXPECT_LE(run.makespan, w.slo_seconds * 1.001) << workloads::to_string(entry.input_class);
  }
}

}  // namespace
}  // namespace aarc::inputaware
