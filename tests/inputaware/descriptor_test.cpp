#include "inputaware/descriptor.h"

#include <gtest/gtest.h>

#include <cmath>

#include "support/contracts.h"

namespace aarc::inputaware {
namespace {

TEST(EstimateScale, ReferenceInputIsUnitScale) {
  const ReferenceInput ref;
  EXPECT_NEAR(estimate_scale(ref.descriptor, ref), 1.0, 1e-12);
}

TEST(EstimateScale, DoubleEverythingDoublesScale) {
  const ReferenceInput ref;
  InputDescriptor in = ref.descriptor;
  in.size_mb *= 2.0;
  in.bitrate_kbps *= 2.0;
  in.duration_seconds *= 2.0;
  EXPECT_NEAR(estimate_scale(in, ref), 2.0, 1e-12);
}

TEST(EstimateScale, GeometricMeanOfRatios) {
  const ReferenceInput ref;
  InputDescriptor in = ref.descriptor;
  in.size_mb *= 8.0;  // other two at 1x: scale = 8^(1/3) = 2.
  EXPECT_NEAR(estimate_scale(in, ref), 2.0, 1e-12);
}

TEST(EstimateScale, IgnoresZeroFeatures) {
  const ReferenceInput ref;
  InputDescriptor in;
  in.size_mb = ref.descriptor.size_mb * 4.0;  // only feature present
  EXPECT_NEAR(estimate_scale(in, ref), 4.0, 1e-12);
}

TEST(EstimateScale, RejectsAllZeroDescriptor) {
  EXPECT_THROW(estimate_scale(InputDescriptor{}), support::ContractViolation);
}

TEST(EstimateScale, SmallInputsScaleBelowOne) {
  const ReferenceInput ref;
  InputDescriptor in = ref.descriptor;
  in.size_mb /= 4.0;
  in.bitrate_kbps /= 4.0;
  in.duration_seconds /= 4.0;
  EXPECT_NEAR(estimate_scale(in, ref), 0.25, 1e-12);
}

}  // namespace
}  // namespace aarc::inputaware
