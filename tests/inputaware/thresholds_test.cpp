// Classification edge cases of the Input-Aware engine: custom thresholds,
// custom reference inputs, and partial feature vectors.
#include <gtest/gtest.h>

#include "inputaware/engine.h"
#include "platform/executor.h"
#include "workloads/synthetic.h"

namespace aarc::inputaware {
namespace {

workloads::Workload tiny_workload() {
  workloads::SyntheticOptions opts;
  opts.pattern = workloads::Pattern::Chain;
  opts.layers = 1;
  opts.seed = 8;
  return workloads::make_synthetic(opts);
}

InputDescriptor scaled(const ReferenceInput& ref, double f) {
  InputDescriptor in = ref.descriptor;
  in.size_mb *= f;
  in.bitrate_kbps *= f;
  in.duration_seconds *= f;
  return in;
}

TEST(Thresholds, CustomBoundariesShiftClassification) {
  const auto w = tiny_workload();
  const platform::Executor ex;
  ClassThresholds wide;
  wide.light_below = 0.9;
  wide.heavy_above = 1.1;
  const InputAwareEngine engine(w, ex, platform::ConfigGrid{}, {}, wide);
  const ReferenceInput ref;
  EXPECT_EQ(engine.classify(scaled(ref, 0.85)), workloads::InputClass::Light);
  EXPECT_EQ(engine.classify(scaled(ref, 1.0)), workloads::InputClass::Middle);
  EXPECT_EQ(engine.classify(scaled(ref, 1.15)), workloads::InputClass::Heavy);
}

TEST(Thresholds, CustomReferenceInputRescalesEverything) {
  const auto w = tiny_workload();
  const platform::Executor ex;
  const InputAwareEngine engine(w, ex, platform::ConfigGrid{});
  ReferenceInput big_ref;
  big_ref.descriptor = {2048.0, 16000.0, 480.0};
  // An input that is "middle" against the default reference is light
  // against a 4x larger one.
  const ReferenceInput default_ref;
  const auto in = scaled(default_ref, 1.0);
  EXPECT_EQ(engine.classify(in, default_ref), workloads::InputClass::Middle);
  EXPECT_EQ(engine.classify(in, big_ref), workloads::InputClass::Light);
}

TEST(Thresholds, PartialFeatureVectorsClassifyByAvailableFeatures) {
  const auto w = tiny_workload();
  const platform::Executor ex;
  const InputAwareEngine engine(w, ex, platform::ConfigGrid{});
  InputDescriptor only_size;
  only_size.size_mb = ReferenceInput{}.descriptor.size_mb * 3.0;
  EXPECT_EQ(engine.classify(only_size), workloads::InputClass::Heavy);
  only_size.size_mb = ReferenceInput{}.descriptor.size_mb * 0.2;
  EXPECT_EQ(engine.classify(only_size), workloads::InputClass::Light);
}

TEST(Thresholds, MixedFeaturesUseGeometricMean) {
  const auto w = tiny_workload();
  const platform::Executor ex;
  const InputAwareEngine engine(w, ex, platform::ConfigGrid{});
  const ReferenceInput ref;
  // 8x size but 1/8 duration at reference bitrate: geometric mean = 1.
  InputDescriptor in = ref.descriptor;
  in.size_mb *= 8.0;
  in.duration_seconds /= 8.0;
  EXPECT_EQ(engine.classify(in, ref), workloads::InputClass::Middle);
}

}  // namespace
}  // namespace aarc::inputaware
