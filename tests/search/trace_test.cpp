#include "search/trace.h"

#include <gtest/gtest.h>

#include <limits>

#include "support/contracts.h"

namespace aarc::search {
namespace {

Sample sample(std::size_t index, double makespan, double cost, bool feasible,
              bool failed = false) {
  Sample s;
  s.index = index;
  s.makespan = makespan;
  s.cost = cost;
  s.wall_seconds = failed ? makespan / 2.0 : makespan;
  s.wall_cost = failed ? cost / 2.0 : cost;
  s.failed = failed;
  s.feasible = feasible;
  return s;
}

TEST(SearchTrace, StartsEmpty) {
  const SearchTrace t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0u);
  EXPECT_DOUBLE_EQ(t.total_sampling_runtime(), 0.0);
  EXPECT_FALSE(t.best_feasible_index().has_value());
  EXPECT_TRUE(t.incumbent_cost_series().empty());
}

TEST(SearchTrace, EnforcesConsecutiveIndices) {
  SearchTrace t;
  t.add(sample(0, 10.0, 5.0, true));
  EXPECT_THROW(t.add(sample(2, 10.0, 5.0, true)), support::ContractViolation);
}

TEST(SearchTrace, TotalsSumWallQuantities) {
  SearchTrace t;
  t.add(sample(0, 10.0, 4.0, true));
  t.add(sample(1, 20.0, 6.0, true));
  EXPECT_DOUBLE_EQ(t.total_sampling_runtime(), 30.0);
  EXPECT_DOUBLE_EQ(t.total_sampling_cost(), 10.0);
}

TEST(SearchTrace, FailedProbesChargePartialWallTime) {
  SearchTrace t;
  t.add(sample(0, 40.0, 8.0, false, /*failed=*/true));
  EXPECT_DOUBLE_EQ(t.total_sampling_runtime(), 20.0);
  EXPECT_DOUBLE_EQ(t.total_sampling_cost(), 4.0);
}

TEST(SearchTrace, BestFeasiblePicksCheapest) {
  SearchTrace t;
  t.add(sample(0, 10.0, 9.0, true));
  t.add(sample(1, 10.0, 5.0, true));
  t.add(sample(2, 10.0, 7.0, true));
  EXPECT_EQ(t.best_feasible_index(), std::optional<std::size_t>(1));
}

TEST(SearchTrace, BestFeasibleIgnoresInfeasible) {
  SearchTrace t;
  t.add(sample(0, 10.0, 1.0, false));  // cheap but infeasible
  t.add(sample(1, 10.0, 9.0, true));
  EXPECT_EQ(t.best_feasible_index(), std::optional<std::size_t>(1));
}

TEST(SearchTrace, IncumbentCostSeriesIsNonIncreasing) {
  SearchTrace t;
  t.add(sample(0, 10.0, 9.0, true));
  t.add(sample(1, 10.0, 12.0, true));  // worse: incumbent unchanged
  t.add(sample(2, 10.0, 5.0, true));
  const std::vector<double> expected{9.0, 9.0, 5.0};
  EXPECT_EQ(t.incumbent_cost_series(), expected);
}

TEST(SearchTrace, IncumbentRuntimeTracksIncumbentNotMin) {
  SearchTrace t;
  t.add(sample(0, 10.0, 9.0, true));
  t.add(sample(1, 20.0, 5.0, true));  // cheaper but slower: becomes incumbent
  const std::vector<double> expected{10.0, 20.0};
  EXPECT_EQ(t.incumbent_runtime_series(), expected);
}

TEST(SearchTrace, IncumbentSeriesBackfillsPrefix) {
  SearchTrace t;
  t.add(sample(0, 200.0, 9.0, false));  // infeasible prefix
  t.add(sample(1, 10.0, 6.0, true));
  const std::vector<double> expected{6.0, 6.0};
  EXPECT_EQ(t.incumbent_cost_series(), expected);
}

TEST(SearchTrace, IncumbentSeriesEmptyWhenNeverFeasible) {
  SearchTrace t;
  t.add(sample(0, 200.0, 9.0, false));
  EXPECT_TRUE(t.incumbent_cost_series().empty());
  EXPECT_TRUE(t.incumbent_runtime_series().empty());
}

TEST(SearchTrace, RawSeriesSkipFailedProbes) {
  SearchTrace t;
  t.add(sample(0, 10.0, 9.0, true));
  t.add(sample(1, 40.0, 8.0, false, /*failed=*/true));
  t.add(sample(2, 12.0, 7.0, true));
  EXPECT_EQ(t.raw_cost_series(), (std::vector<double>{9.0, 7.0}));
  EXPECT_EQ(t.raw_runtime_series(), (std::vector<double>{10.0, 12.0}));
}

TEST(SearchTrace, RejectsInfiniteWallQuantities) {
  SearchTrace t;
  Sample s = sample(0, 10.0, 5.0, true);
  s.wall_seconds = -std::numeric_limits<double>::infinity();
  EXPECT_THROW(t.add(s), support::ContractViolation);
}

}  // namespace
}  // namespace aarc::search
