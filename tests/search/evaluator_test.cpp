#include "search/evaluator.h"

#include <gtest/gtest.h>

#include <cmath>

#include "perf/analytic.h"
#include "support/contracts.h"

namespace aarc::search {
namespace {

std::unique_ptr<perf::PerfModel> model(double serial, double min_mem = 128.0) {
  perf::AnalyticParams p;
  p.serial_seconds = serial;
  p.working_set_mb = 256.0;
  p.min_memory_mb = min_mem;
  p.pressure_coeff = 0.0;
  return std::make_unique<perf::AnalyticModel>(p);
}

platform::Workflow chain() {
  platform::Workflow wf("chain");
  wf.add_function("a", model(4.0));
  wf.add_function("b", model(6.0));
  wf.add_edge("a", "b");
  return wf;
}

TEST(Evaluator, RecordsEverySampleInOrder) {
  const platform::Workflow wf = chain();
  const platform::Executor ex;
  Evaluator ev(wf, ex, 100.0, 1.0, 42);
  const auto cfg = platform::uniform_config(2, {1.0, 512.0});
  ev.probe(cfg);
  ev.probe(cfg);
  EXPECT_EQ(ev.samples_used(), 2u);
  EXPECT_EQ(ev.trace().samples()[0].index, 0u);
  EXPECT_EQ(ev.trace().samples()[1].index, 1u);
}

TEST(Evaluator, FeasibilityAgainstSlo) {
  const platform::Workflow wf = chain();
  const platform::Executor ex;
  Evaluator tight(wf, ex, 5.0, 1.0, 42);   // makespan ~10 > 5
  Evaluator loose(wf, ex, 100.0, 1.0, 42);
  const auto cfg = platform::uniform_config(2, {1.0, 512.0});
  EXPECT_FALSE(tight.probe(cfg).sample.feasible);
  EXPECT_TRUE(loose.probe(cfg).sample.feasible);
}

TEST(Evaluator, CarriesFunctionRuntimesAndCosts) {
  const platform::Workflow wf = chain();
  const platform::Executor ex;
  Evaluator ev(wf, ex, 100.0, 1.0, 42);
  const auto eval = ev.probe(platform::uniform_config(2, {1.0, 512.0}));
  ASSERT_EQ(eval.function_runtimes.size(), 2u);
  ASSERT_EQ(eval.function_costs.size(), 2u);
  EXPECT_NEAR(eval.function_runtimes[0], 4.0, 0.5);
  EXPECT_NEAR(eval.function_runtimes[1], 6.0, 0.7);
  EXPECT_GT(eval.function_costs[0], 0.0);
  EXPECT_NEAR(eval.sample.makespan, eval.function_runtimes[0] + eval.function_runtimes[1],
              1e-9);
}

TEST(Evaluator, OomSampleIsFailedWithFiniteWallCharges) {
  const platform::Workflow wf = chain();
  const platform::Executor ex;
  Evaluator ev(wf, ex, 100.0, 1.0, 42);
  auto cfg = platform::uniform_config(2, {1.0, 512.0});
  cfg[1].memory_mb = 100.0;
  const auto eval = ev.probe(cfg);
  EXPECT_TRUE(eval.sample.failed);
  EXPECT_FALSE(eval.sample.feasible);
  EXPECT_TRUE(std::isinf(eval.sample.cost));
  EXPECT_TRUE(std::isfinite(eval.sample.wall_seconds));
  EXPECT_TRUE(std::isfinite(eval.sample.wall_cost));
}

TEST(Evaluator, DeterministicForSeed) {
  const platform::Workflow wf = chain();
  const platform::Executor ex;
  Evaluator a(wf, ex, 100.0, 1.0, 7);
  Evaluator b(wf, ex, 100.0, 1.0, 7);
  const auto cfg = platform::uniform_config(2, {1.0, 512.0});
  EXPECT_DOUBLE_EQ(a.probe(cfg).sample.makespan, b.probe(cfg).sample.makespan);
}

TEST(Evaluator, DifferentSeedsDiffer) {
  const platform::Workflow wf = chain();
  const platform::Executor ex;
  Evaluator a(wf, ex, 100.0, 1.0, 7);
  Evaluator b(wf, ex, 100.0, 1.0, 8);
  const auto cfg = platform::uniform_config(2, {1.0, 512.0});
  EXPECT_NE(a.probe(cfg).sample.makespan, b.probe(cfg).sample.makespan);
}

TEST(Evaluator, RejectsBadConstruction) {
  const platform::Workflow wf = chain();
  const platform::Executor ex;
  EXPECT_THROW(Evaluator(wf, ex, 0.0, 1.0, 1), support::ContractViolation);
  EXPECT_THROW(Evaluator(wf, ex, 10.0, 0.0, 1), support::ContractViolation);
}

platform::Executor flaky_executor(double crash_rate) {
  platform::ExecutorOptions opts;
  platform::FaultRates rates;
  rates.transient_crash = crash_rate;
  opts.faults = platform::FaultModel{rates};
  return platform::Executor(std::make_unique<platform::DecoupledLinearPricing>(), opts);
}

TEST(Evaluator, ResamplingRecoversTransientProbeFailures) {
  const platform::Workflow wf = chain();
  const platform::Executor ex = flaky_executor(0.3);
  ResampleOptions resample;
  resample.max_resamples = 12;
  Evaluator hardened(wf, ex, 100.0, 1.0, 42, resample);
  Evaluator naive(wf, ex, 100.0, 1.0, 42);
  const auto cfg = platform::uniform_config(2, {1.0, 512.0});
  std::size_t naive_failures = 0;
  std::size_t hardened_failures = 0;
  for (int i = 0; i < 30; ++i) {
    if (naive.probe(cfg).sample.failed) ++naive_failures;
    if (hardened.probe(cfg).sample.failed) ++hardened_failures;
  }
  EXPECT_GT(naive_failures, 0u);  // the fault rate actually bites
  EXPECT_EQ(hardened_failures, 0u);
  // Re-sampling consumed extra executions and the trace recorded them.
  EXPECT_GT(hardened.executions_used(), hardened.samples_used());
  EXPECT_GT(hardened.trace().resampled_probes(), 0u);
}

TEST(Evaluator, ResampledProbeAccumulatesWallCharges) {
  const platform::Workflow wf = chain();
  const platform::Executor ex = flaky_executor(1.0);  // every run crashes
  ResampleOptions resample;
  resample.max_resamples = 3;
  Evaluator ev(wf, ex, 100.0, 1.0, 7, resample);
  const auto cfg = platform::uniform_config(2, {1.0, 512.0});
  const auto eval = ev.probe(cfg);
  EXPECT_TRUE(eval.sample.failed);
  EXPECT_TRUE(eval.sample.transient);
  EXPECT_EQ(eval.sample.probe_attempts, 4u);  // 1 initial + 3 re-samples
  // Wall charges cover every execution, so the probe is ~4x a single run.
  Evaluator single(wf, ex, 100.0, 1.0, 7);
  const auto one = single.probe(cfg);
  EXPECT_GT(eval.sample.wall_cost, 2.0 * one.sample.wall_cost);
}

TEST(Evaluator, OomProbeIsNeverResampled) {
  const platform::Workflow wf = chain();
  const platform::Executor ex;
  ResampleOptions resample;
  resample.max_resamples = 5;
  Evaluator ev(wf, ex, 100.0, 1.0, 42, resample);
  auto cfg = platform::uniform_config(2, {1.0, 512.0});
  cfg[1].memory_mb = 100.0;  // deterministic OOM: re-running cannot help
  const auto eval = ev.probe(cfg);
  EXPECT_TRUE(eval.sample.failed);
  EXPECT_FALSE(eval.sample.transient);
  EXPECT_EQ(eval.sample.probe_attempts, 1u);
}

TEST(Evaluator, ResamplingIsDeterministicForSeed) {
  const platform::Workflow wf = chain();
  const platform::Executor ex = flaky_executor(0.4);
  ResampleOptions resample;
  resample.max_resamples = 4;
  resample.outlier_factor = 1.5;
  Evaluator a(wf, ex, 100.0, 1.0, 11, resample);
  Evaluator b(wf, ex, 100.0, 1.0, 11, resample);
  const auto cfg = platform::uniform_config(2, {1.0, 512.0});
  for (int i = 0; i < 10; ++i) {
    const auto ea = a.probe(cfg);
    const auto eb = b.probe(cfg);
    EXPECT_DOUBLE_EQ(ea.sample.makespan, eb.sample.makespan);
    EXPECT_DOUBLE_EQ(ea.sample.wall_cost, eb.sample.wall_cost);
    EXPECT_EQ(ea.sample.probe_attempts, eb.sample.probe_attempts);
  }
}

TEST(Evaluator, InputScalePropagates) {
  const platform::Workflow wf = chain();
  const platform::Executor ex;
  Evaluator small(wf, ex, 1000.0, 1.0, 7);
  Evaluator big(wf, ex, 1000.0, 3.0, 7);
  const auto cfg = platform::uniform_config(2, {1.0, 512.0});
  EXPECT_NEAR(big.probe(cfg).sample.makespan, 3.0 * small.probe(cfg).sample.makespan,
              1e-9);
}

}  // namespace
}  // namespace aarc::search
