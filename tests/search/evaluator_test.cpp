#include "search/evaluator.h"

#include <gtest/gtest.h>

#include <cmath>

#include "perf/analytic.h"
#include "support/contracts.h"

namespace aarc::search {
namespace {

std::unique_ptr<perf::PerfModel> model(double serial, double min_mem = 128.0) {
  perf::AnalyticParams p;
  p.serial_seconds = serial;
  p.working_set_mb = 256.0;
  p.min_memory_mb = min_mem;
  p.pressure_coeff = 0.0;
  return std::make_unique<perf::AnalyticModel>(p);
}

platform::Workflow chain() {
  platform::Workflow wf("chain");
  wf.add_function("a", model(4.0));
  wf.add_function("b", model(6.0));
  wf.add_edge("a", "b");
  return wf;
}

TEST(Evaluator, RecordsEverySampleInOrder) {
  const platform::Workflow wf = chain();
  const platform::Executor ex;
  Evaluator ev(wf, ex, 100.0, 1.0, 42);
  const auto cfg = platform::uniform_config(2, {1.0, 512.0});
  ev.evaluate(cfg);
  ev.evaluate(cfg);
  EXPECT_EQ(ev.samples_used(), 2u);
  EXPECT_EQ(ev.trace().samples()[0].index, 0u);
  EXPECT_EQ(ev.trace().samples()[1].index, 1u);
}

TEST(Evaluator, FeasibilityAgainstSlo) {
  const platform::Workflow wf = chain();
  const platform::Executor ex;
  Evaluator tight(wf, ex, 5.0, 1.0, 42);   // makespan ~10 > 5
  Evaluator loose(wf, ex, 100.0, 1.0, 42);
  const auto cfg = platform::uniform_config(2, {1.0, 512.0});
  EXPECT_FALSE(tight.evaluate(cfg).sample.feasible);
  EXPECT_TRUE(loose.evaluate(cfg).sample.feasible);
}

TEST(Evaluator, CarriesFunctionRuntimesAndCosts) {
  const platform::Workflow wf = chain();
  const platform::Executor ex;
  Evaluator ev(wf, ex, 100.0, 1.0, 42);
  const auto eval = ev.evaluate(platform::uniform_config(2, {1.0, 512.0}));
  ASSERT_EQ(eval.function_runtimes.size(), 2u);
  ASSERT_EQ(eval.function_costs.size(), 2u);
  EXPECT_NEAR(eval.function_runtimes[0], 4.0, 0.5);
  EXPECT_NEAR(eval.function_runtimes[1], 6.0, 0.7);
  EXPECT_GT(eval.function_costs[0], 0.0);
  EXPECT_NEAR(eval.sample.makespan, eval.function_runtimes[0] + eval.function_runtimes[1],
              1e-9);
}

TEST(Evaluator, OomSampleIsFailedWithFiniteWallCharges) {
  const platform::Workflow wf = chain();
  const platform::Executor ex;
  Evaluator ev(wf, ex, 100.0, 1.0, 42);
  auto cfg = platform::uniform_config(2, {1.0, 512.0});
  cfg[1].memory_mb = 100.0;
  const auto eval = ev.evaluate(cfg);
  EXPECT_TRUE(eval.sample.failed);
  EXPECT_FALSE(eval.sample.feasible);
  EXPECT_TRUE(std::isinf(eval.sample.cost));
  EXPECT_TRUE(std::isfinite(eval.sample.wall_seconds));
  EXPECT_TRUE(std::isfinite(eval.sample.wall_cost));
}

TEST(Evaluator, DeterministicForSeed) {
  const platform::Workflow wf = chain();
  const platform::Executor ex;
  Evaluator a(wf, ex, 100.0, 1.0, 7);
  Evaluator b(wf, ex, 100.0, 1.0, 7);
  const auto cfg = platform::uniform_config(2, {1.0, 512.0});
  EXPECT_DOUBLE_EQ(a.evaluate(cfg).sample.makespan, b.evaluate(cfg).sample.makespan);
}

TEST(Evaluator, DifferentSeedsDiffer) {
  const platform::Workflow wf = chain();
  const platform::Executor ex;
  Evaluator a(wf, ex, 100.0, 1.0, 7);
  Evaluator b(wf, ex, 100.0, 1.0, 8);
  const auto cfg = platform::uniform_config(2, {1.0, 512.0});
  EXPECT_NE(a.evaluate(cfg).sample.makespan, b.evaluate(cfg).sample.makespan);
}

TEST(Evaluator, RejectsBadConstruction) {
  const platform::Workflow wf = chain();
  const platform::Executor ex;
  EXPECT_THROW(Evaluator(wf, ex, 0.0, 1.0, 1), support::ContractViolation);
  EXPECT_THROW(Evaluator(wf, ex, 10.0, 0.0, 1), support::ContractViolation);
}

TEST(Evaluator, InputScalePropagates) {
  const platform::Workflow wf = chain();
  const platform::Executor ex;
  Evaluator small(wf, ex, 1000.0, 1.0, 7);
  Evaluator big(wf, ex, 1000.0, 3.0, 7);
  const auto cfg = platform::uniform_config(2, {1.0, 512.0});
  EXPECT_NEAR(big.evaluate(cfg).sample.makespan, 3.0 * small.evaluate(cfg).sample.makespan,
              1e-9);
}

}  // namespace
}  // namespace aarc::search
