// SoA probe batches and the vectorized lane kernel.
//
// The property under test is bit-identity: evaluate_batch() routed through
// platform::Executor::execute_lanes must reproduce the scalar execute() path
// operation for operation — same RNG stream per executed probe, same FP
// summation order — across every performance-model kind (analytic,
// composite, profile-table) and across the checked-in scenario corpus.
#include "search/probe_batch.h"

#include <gtest/gtest.h>

#include <cmath>

#include "perf/analytic.h"
#include "perf/composite.h"
#include "perf/profile_table.h"
#include "scenario/generator.h"
#include "search/evaluator.h"
#include "support/contracts.h"
#include "support/rng.h"

namespace aarc::search {
namespace {

std::unique_ptr<perf::PerfModel> analytic(double serial, double min_mem = 128.0) {
  perf::AnalyticParams p;
  p.serial_seconds = serial;
  p.parallel_seconds = serial / 2.0;
  p.max_parallelism = 4.0;
  p.working_set_mb = 256.0;
  p.min_memory_mb = min_mem;
  p.pressure_coeff = 0.3;
  return std::make_unique<perf::AnalyticModel>(p);
}

std::unique_ptr<perf::PerfModel> composite(double a, double b) {
  std::vector<std::unique_ptr<perf::PerfModel>> stages;
  stages.push_back(analytic(a));
  stages.push_back(analytic(b, 192.0));
  return std::make_unique<perf::CompositeModel>(std::move(stages));
}

std::unique_ptr<perf::PerfModel> table() {
  return std::make_unique<perf::ProfileTableModel>(
      std::vector<double>{1.0, 2.0, 4.0}, std::vector<double>{512.0, 1024.0, 2048.0},
      std::vector<double>{40.0, 30.0, 28.0, 24.0, 20.0, 18.0, 15.0, 12.0, 10.0});
}

/// One workflow exercising all three model kinds in a diamond.
platform::Workflow mixed_workflow() {
  platform::Workflow wf("mixed");
  wf.add_function("src", analytic(2.0));
  wf.add_function("left", composite(1.5, 2.5));
  wf.add_function("right", table());
  wf.add_function("sink", analytic(1.0));
  wf.add_edge("src", "left");
  wf.add_edge("src", "right");
  wf.add_edge("left", "sink");
  wf.add_edge("right", "sink");
  return wf;
}

/// A spread of configurations, including one that OOMs (mem below floor).
std::vector<platform::WorkflowConfig> config_spread(std::size_t functions) {
  const double cpus[] = {0.5, 1.0, 2.0, 4.0};
  const double mems[] = {512.0, 768.0, 1024.0, 1536.0};
  std::vector<platform::WorkflowConfig> configs;
  for (std::size_t i = 0; i < 12; ++i) {
    platform::WorkflowConfig cfg(functions);
    for (std::size_t f = 0; f < functions; ++f) {
      cfg[f].vcpu = cpus[(i + f) % 4];
      cfg[f].memory_mb = mems[(i * 3 + f) % 4];
    }
    configs.push_back(cfg);
  }
  platform::WorkflowConfig oom(functions);
  for (std::size_t f = 0; f < functions; ++f) oom[f] = {1.0, 100.0};
  configs.push_back(oom);
  return configs;
}

/// Replicate what the scalar path does for executed probe `stream`: a fresh
/// rng at the derived per-probe seed, one execute() call.
platform::ExecutionResult scalar_reference(const platform::Workflow& wf,
                                           const platform::Executor& ex,
                                           const platform::WorkflowConfig& cfg,
                                           double scale, std::uint64_t seed,
                                           std::uint64_t stream) {
  support::Rng rng(support::derive_seed(seed, stream));
  return ex.execute(wf, cfg, scale, rng);
}

void expect_bit_identical(const ProbeResult& pr, const platform::ExecutionResult& ref) {
  EXPECT_EQ(pr.sample.makespan, ref.makespan);
  EXPECT_EQ(pr.sample.cost, ref.total_cost);
  EXPECT_EQ(pr.sample.failed, ref.failed);
  EXPECT_EQ(pr.sample.wall_seconds, ref.observed_wall_seconds());
  EXPECT_EQ(pr.sample.wall_cost, ref.observed_cost());
  ASSERT_EQ(pr.function_runtimes.size(), ref.invocations.size());
  for (std::size_t f = 0; f < ref.invocations.size(); ++f) {
    EXPECT_EQ(pr.function_runtimes[f], ref.invocations[f].runtime);
    EXPECT_EQ(pr.function_costs[f], ref.invocations[f].cost);
  }
}

TEST(ProbeBatch, SoALayoutRoundTrips) {
  ProbeBatch batch(3, 2.0);
  EXPECT_TRUE(batch.empty());
  platform::WorkflowConfig cfg(3);
  for (std::size_t f = 0; f < 3; ++f) cfg[f] = {1.0 + static_cast<double>(f), 512.0};
  EXPECT_EQ(batch.add(cfg, 9), 0u);
  EXPECT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch.tag(0), 9u);
  EXPECT_EQ(batch.input_scale(), 2.0);
  for (std::size_t f = 0; f < 3; ++f) {
    EXPECT_EQ(batch.vcpu(0, f), cfg[f].vcpu);
    EXPECT_EQ(batch.memory_mb(0, f), cfg[f].memory_mb);
  }
  EXPECT_EQ(batch.config(0), cfg);
}

TEST(ProbeBatch, KernelMatchesScalarAcrossModelKinds) {
  const platform::Workflow wf = mixed_workflow();
  for (double sigma : {0.0, 0.03}) {
    platform::ExecutorOptions opts;
    opts.noise = perf::NoiseModel{sigma};
    const platform::Executor ex(std::make_unique<platform::DecoupledLinearPricing>(),
                                opts);
    ASSERT_TRUE(ex.supports_lane_execution());
    const std::uint64_t seed = 20240807;
    Evaluator ev(wf, ex, 1000.0, 1.0, seed);
    ProbeBatch batch = ev.make_batch();
    const auto configs = config_spread(wf.function_count());
    for (const auto& cfg : configs) batch.add(cfg);
    const auto results = ev.evaluate_batch(batch, ExecutionPolicy::threads(4));
    ASSERT_EQ(results.size(), configs.size());
    for (std::size_t i = 0; i < configs.size(); ++i) {
      expect_bit_identical(results[i],
                           scalar_reference(wf, ex, configs[i], 1.0, seed, i));
    }
  }
}

TEST(ProbeBatch, KernelMatchesScalarAtNonUnitInputScale) {
  const platform::Workflow wf = mixed_workflow();
  const platform::Executor ex;
  const std::uint64_t seed = 77;
  const double scale = 2.5;
  Evaluator ev(wf, ex, 1000.0, scale, seed);
  ProbeBatch batch = ev.make_batch();
  const auto configs = config_spread(wf.function_count());
  for (const auto& cfg : configs) batch.add(cfg);
  const auto results = ev.evaluate_batch(batch, ExecutionPolicy::serial());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    expect_bit_identical(results[i],
                         scalar_reference(wf, ex, configs[i], scale, seed, i));
  }
}

TEST(ProbeBatch, KernelMatchesScalarOnScenarioCorpus) {
  // The seeded scenario generator reproduces the checked-in corpus
  // (tests/scenario/corpus_test.cpp); sweeping it here covers generated
  // DAG shapes and model mixes beyond the handcrafted fixtures.
  for (std::size_t index = 0; index < 10; ++index) {
    const scenario::Scenario sc = scenario::generate_scenario(42, index);
    const platform::Workflow& wf = sc.workload.workflow;
    const std::size_t n = wf.function_count();
    const platform::Executor ex;
    const std::uint64_t seed = 1000 + index;
    Evaluator ev(wf, ex, sc.workload.slo_seconds, 1.0, seed);
    ProbeBatch batch = ev.make_batch();
    const auto configs = config_spread(n);
    for (const auto& cfg : configs) batch.add(cfg);
    const auto results = ev.evaluate_batch(batch, ExecutionPolicy::threads(8));
    for (std::size_t i = 0; i < configs.size(); ++i) {
      expect_bit_identical(results[i],
                           scalar_reference(wf, ex, configs[i], 1.0, seed, i));
    }
  }
}

TEST(ProbeBatch, RngStreamsContinueAcrossBatches) {
  // Stream ids are a property of the evaluator, not the batch: submitting
  // 2+2 lanes must draw the same per-probe streams as submitting 4, so
  // batch splitting never changes results.
  const platform::Workflow wf = mixed_workflow();
  const platform::Executor ex;
  const auto configs = config_spread(wf.function_count());
  Evaluator split(wf, ex, 1000.0, 1.0, 5);
  Evaluator whole(wf, ex, 1000.0, 1.0, 5);

  std::vector<ProbeResult> split_results;
  for (std::size_t begin = 0; begin < configs.size(); begin += 4) {
    ProbeBatch batch = split.make_batch();
    for (std::size_t i = begin; i < std::min(begin + 4, configs.size()); ++i) {
      batch.add(configs[i]);
    }
    auto part = split.evaluate_batch(batch, ExecutionPolicy::threads(2));
    for (auto& r : part) split_results.push_back(std::move(r));
  }

  ProbeBatch batch = whole.make_batch();
  for (const auto& cfg : configs) batch.add(cfg);
  const auto whole_results = whole.evaluate_batch(batch, ExecutionPolicy::threads(2));

  ASSERT_EQ(split_results.size(), whole_results.size());
  for (std::size_t i = 0; i < whole_results.size(); ++i) {
    EXPECT_EQ(split_results[i].sample.makespan, whole_results[i].sample.makespan);
    EXPECT_EQ(split_results[i].sample.cost, whole_results[i].sample.cost);
  }
}

TEST(ProbeBatch, MismatchedShapeIsRejected) {
  const platform::Workflow wf = mixed_workflow();
  const platform::Executor ex;
  Evaluator ev(wf, ex, 1000.0, 1.0, 1);
  ProbeBatch wrong(wf.function_count() + 1, 1.0);
  wrong.add(platform::WorkflowConfig(wf.function_count() + 1));
  EXPECT_THROW((void)ev.evaluate_batch(wrong, ExecutionPolicy::serial()),
               support::ContractViolation);
  ProbeBatch wrong_scale(wf.function_count(), 2.0);
  wrong_scale.add(platform::WorkflowConfig(wf.function_count()));
  EXPECT_THROW((void)ev.evaluate_batch(wrong_scale, ExecutionPolicy::serial()),
               support::ContractViolation);
}

}  // namespace
}  // namespace aarc::search
