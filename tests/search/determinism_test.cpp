// The headline guarantee of the concurrent evaluation engine: a search run
// with N evaluator threads is bit-identical to the same run with 1 thread —
// same best configuration, same sample totals, same per-sample makespans.
// Checked for all three search methods on two paper workloads.  The suite
// runs at 8 threads under CTest, so a ThreadSanitizer build
// (-DAARC_SANITIZE=thread) exercises the pool and the batch engine.
#include <gtest/gtest.h>

#include <vector>

#include "aarc/scheduler.h"
#include "baselines/bo/bo_optimizer.h"
#include "baselines/maff/maff.h"
#include "search/evaluator.h"
#include "workloads/catalog.h"

namespace aarc {
namespace {

constexpr std::size_t kThreads = 8;

std::vector<double> makespans(const search::SearchResult& r) {
  std::vector<double> out;
  for (const auto& s : r.trace.samples()) out.push_back(s.makespan);
  return out;
}

void expect_identical(const search::SearchResult& serial,
                      const search::SearchResult& parallel) {
  EXPECT_EQ(serial.found_feasible, parallel.found_feasible);
  EXPECT_EQ(serial.best_config, parallel.best_config);
  EXPECT_EQ(serial.samples(), parallel.samples());
  EXPECT_EQ(makespans(serial), makespans(parallel));
}

search::SearchResult run_aarc(const workloads::Workload& w, std::size_t threads) {
  const platform::Executor ex;
  const platform::ConfigGrid grid;
  core::SchedulerOptions opts;
  opts.evaluator_threads = threads;
  const core::GraphCentricScheduler scheduler(ex, grid, opts);
  return scheduler.schedule(w.workflow, w.slo_seconds).result;
}

search::SearchResult run_bo(const workloads::Workload& w, std::size_t threads) {
  const platform::Executor ex;
  const platform::ConfigGrid grid;
  search::EvaluatorOptions eval_opts;
  eval_opts.threads = threads;
  search::Evaluator ev(w.workflow, ex, w.slo_seconds, 1.0, 3101, eval_opts);
  baselines::BoOptions bo;
  bo.max_samples = 24;
  bo.init_samples = 8;
  bo.batch_size = 4;  // a real fan-out, not accidental batches of one
  bo.candidate_pool = 128;
  bo.local_candidates = 16;
  return baselines::bayesian_optimization(ev, grid, bo);
}

search::SearchResult run_maff(const workloads::Workload& w, std::size_t threads) {
  const platform::Executor ex;
  const platform::ConfigGrid grid;
  search::EvaluatorOptions eval_opts;
  eval_opts.threads = threads;
  search::Evaluator ev(w.workflow, ex, w.slo_seconds, 1.0, 3202, eval_opts);
  return baselines::maff_gradient_descent(ev, grid);
}

TEST(Determinism, AarcChatbot) {
  const auto w = workloads::make_by_name("chatbot");
  expect_identical(run_aarc(w, 1), run_aarc(w, kThreads));
}

TEST(Determinism, AarcDataAnalytics) {
  const auto w = workloads::make_by_name("data_analytics");
  expect_identical(run_aarc(w, 1), run_aarc(w, kThreads));
}

TEST(Determinism, BoChatbot) {
  const auto w = workloads::make_by_name("chatbot");
  expect_identical(run_bo(w, 1), run_bo(w, kThreads));
}

TEST(Determinism, BoDataAnalytics) {
  const auto w = workloads::make_by_name("data_analytics");
  expect_identical(run_bo(w, 1), run_bo(w, kThreads));
}

TEST(Determinism, MaffChatbot) {
  const auto w = workloads::make_by_name("chatbot");
  expect_identical(run_maff(w, 1), run_maff(w, kThreads));
}

TEST(Determinism, MaffDataAnalytics) {
  const auto w = workloads::make_by_name("data_analytics");
  expect_identical(run_maff(w, 1), run_maff(w, kThreads));
}

// The cache changes which probes execute (hits consume no rng stream), but
// each cache setting must itself be thread-count invariant.
TEST(Determinism, AarcWithProbeCache) {
  const auto w = workloads::make_by_name("chatbot");
  const platform::Executor ex;
  const platform::ConfigGrid grid;
  auto run = [&](std::size_t threads) {
    core::SchedulerOptions opts;
    opts.evaluator_threads = threads;
    opts.probe_cache = true;
    const core::GraphCentricScheduler scheduler(ex, grid, opts);
    return scheduler.schedule(w.workflow, w.slo_seconds).result;
  };
  expect_identical(run(1), run(kThreads));
}

}  // namespace
}  // namespace aarc
