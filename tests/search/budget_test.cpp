// Budget accounting: every search budget (MAX_TRAIL, max_samples) is
// denominated in *billed* samples — probes that consumed a platform
// execution.  A probe-cache hit appears in the trace but burns no budget, so
// enabling the cache can only widen the explored space, never shrink it.
#include <gtest/gtest.h>

#include "aarc/scheduler.h"
#include "baselines/maff/maff.h"
#include "baselines/random_search.h"
#include "perf/analytic.h"
#include "search/evaluator.h"
#include "support/grid.h"
#include "workloads/catalog.h"

namespace aarc {
namespace {

std::unique_ptr<perf::PerfModel> model(double serial) {
  perf::AnalyticParams p;
  p.serial_seconds = serial;
  p.working_set_mb = 256.0;
  p.min_memory_mb = 128.0;
  p.pressure_coeff = 0.0;
  return std::make_unique<perf::AnalyticModel>(p);
}

platform::Workflow chain() {
  platform::Workflow wf("chain");
  wf.add_function("a", model(4.0));
  wf.add_function("b", model(6.0));
  wf.add_edge("a", "b");
  return wf;
}

search::Evaluator cached_evaluator(const platform::Workflow& wf,
                                   const platform::Executor& ex) {
  search::EvaluatorOptions opts;
  opts.probe_cache = true;
  return search::Evaluator(wf, ex, 100.0, 1.0, 42, opts);
}

TEST(BilledSamples, CacheHitsAreFree) {
  const platform::Workflow wf = chain();
  const platform::Executor ex;
  search::Evaluator ev = cached_evaluator(wf, ex);
  const auto cfg = platform::uniform_config(2, {1.0, 512.0});
  ev.probe(cfg);
  ev.probe(cfg);  // served from cache
  EXPECT_EQ(ev.trace().size(), 2u);
  EXPECT_EQ(ev.trace().cache_hits(), 1u);
  EXPECT_EQ(ev.trace().billed_samples(), 1u);
  EXPECT_EQ(ev.billed_samples(), 1u);
}

TEST(BilledSamples, EqualTraceSizeWhenCacheOff) {
  const platform::Workflow wf = chain();
  const platform::Executor ex;
  search::Evaluator ev(wf, ex, 100.0, 1.0, 42);
  const auto cfg = platform::uniform_config(2, {1.0, 512.0});
  ev.probe(cfg);
  ev.probe(cfg);  // re-executed: no cache
  EXPECT_EQ(ev.trace().billed_samples(), ev.trace().size());
}

TEST(BilledSamples, SearchResultSamplesReportsBilledOnly) {
  const platform::Workflow wf = chain();
  const platform::Executor ex;
  search::Evaluator ev = cached_evaluator(wf, ex);
  const auto cfg = platform::uniform_config(2, {1.0, 512.0});
  ev.probe(cfg);
  ev.probe(cfg);
  search::SearchResult result;
  result.trace = ev.trace();
  EXPECT_EQ(result.samples(), 1u);
}

TEST(RandomSearch, CacheOffSpendsTheExactBudget) {
  const platform::Workflow wf = chain();
  const platform::Executor ex;
  search::Evaluator ev(wf, ex, 100.0, 1.0, 42);
  baselines::RandomSearchOptions opts;
  opts.max_samples = 25;
  const auto result = baselines::random_search(ev, platform::ConfigGrid{}, opts);
  EXPECT_EQ(result.samples(), 25u);
  EXPECT_EQ(result.trace.size(), 25u);
}

TEST(RandomSearch, CacheHitsDoNotBurnTheBudget) {
  // 4 grid points per function, 2 functions: 16 distinct workflow configs,
  // fewer than the 20-sample budget.  Random draws collide almost
  // immediately, so with the cache on the search keeps drawing until every
  // distinct configuration is billed, then terminates via the stale-round
  // guard instead of spinning forever on free cache hits.
  const platform::ConfigGrid tiny(support::ValueGrid(1.0, 2.0, 1.0),
                                  support::ValueGrid(512.0, 1024.0, 512.0));
  const platform::Workflow wf = chain();
  const platform::Executor ex;
  search::Evaluator ev = cached_evaluator(wf, ex);
  baselines::RandomSearchOptions opts;
  opts.max_samples = 20;
  const auto result = baselines::random_search(ev, tiny, opts);
  EXPECT_EQ(result.samples(), 16u);  // every joint grid point billed once
  EXPECT_GT(result.trace.size(), result.samples());  // further hits are free
  EXPECT_EQ(result.trace.size() - result.trace.cache_hits(), result.samples());
}

TEST(Maff, BudgetIsDenominatedInBilledSamples) {
  const workloads::Workload w = workloads::make_by_name("ml_pipeline");
  const platform::Executor ex;
  search::EvaluatorOptions eopts;
  eopts.probe_cache = true;
  search::Evaluator ev(w.workflow, ex, w.slo_seconds, 1.0, 42, eopts);
  baselines::MaffOptions opts;
  opts.max_samples = 30;
  const auto result = baselines::maff_gradient_descent(ev, platform::ConfigGrid{}, opts);
  EXPECT_LE(result.samples(), 30u);
  EXPECT_EQ(result.trace.size() - result.trace.cache_hits(), result.samples());
}

TEST(Scheduler, CacheOnlyAddsFreeProbes) {
  // Same workload, same options, cache on vs off.  With the cache on,
  // revisited configurations are free, so MAX_TRAIL binds later (or never):
  // the cached run pops at least as many operations — its trace is at least
  // as long — while billing at most as many samples as probes popped.
  const workloads::Workload w = workloads::make_by_name("video_analysis");
  const platform::Executor ex;
  const platform::ConfigGrid grid;

  core::SchedulerOptions off;
  off.probe_cache = false;
  const auto r_off =
      core::GraphCentricScheduler(ex, grid, off).schedule(w.workflow, w.slo_seconds);

  core::SchedulerOptions on;
  on.probe_cache = true;
  const auto r_on =
      core::GraphCentricScheduler(ex, grid, on).schedule(w.workflow, w.slo_seconds);

  EXPECT_EQ(r_off.result.trace.cache_hits(), 0u);
  EXPECT_EQ(r_off.result.samples(), r_off.result.trace.size());
  EXPECT_GE(r_on.result.trace.size(), r_off.result.trace.size());
  EXPECT_LE(r_on.result.samples(), r_on.result.trace.size());
  EXPECT_EQ(r_on.result.trace.size() - r_on.result.trace.cache_hits(),
            r_on.result.samples());
  EXPECT_TRUE(r_on.result.found_feasible);
}

}  // namespace
}  // namespace aarc
