// Probabilistic SLO semantics (doc/SLO.md): distribution edge cases, the
// sample-size bound, the verdict decision table, replicate determinism, and
// the bit-identity guarantee of the legacy default bound.
#include "search/slo.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "aarc/scheduler.h"
#include "search/evaluator.h"
#include "support/contracts.h"
#include "workloads/catalog.h"

namespace aarc::search {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// ---------------------------------------------------------------------------
// LatencyDistribution edge cases

TEST(LatencyDistribution, EmptyIsInfinite) {
  LatencyDistribution d;
  EXPECT_EQ(d.count(), 0u);
  EXPECT_EQ(d.failures(), 0u);
  EXPECT_EQ(d.mean(), kInf);
  EXPECT_EQ(d.quantile(0.95), kInf);
  EXPECT_EQ(d.stddev(), 0.0);
}

TEST(LatencyDistribution, SingleSampleIsEveryStatistic) {
  LatencyDistribution d;
  d.add(7.5);
  EXPECT_EQ(d.count(), 1u);
  EXPECT_DOUBLE_EQ(d.mean(), 7.5);
  EXPECT_DOUBLE_EQ(d.stddev(), 0.0);
  for (double q : {0.01, 0.50, 0.95, 1.0}) EXPECT_DOUBLE_EQ(d.quantile(q), 7.5);
}

TEST(LatencyDistribution, DuplicatesCollapse) {
  LatencyDistribution d;
  for (int i = 0; i < 50; ++i) d.add(3.0);
  EXPECT_DOUBLE_EQ(d.mean(), 3.0);
  EXPECT_DOUBLE_EQ(d.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(d.quantile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(d.quantile(0.99), 3.0);
}

TEST(LatencyDistribution, ConservativeQuantileRank) {
  // Samples 1..100: rank ceil(q * 100), 1-based — p95 is the 95th value.
  LatencyDistribution d;
  for (int i = 100; i >= 1; --i) d.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(d.quantile(0.95), 95.0);
  EXPECT_DOUBLE_EQ(d.quantile(0.50), 50.0);
  EXPECT_DOUBLE_EQ(d.quantile(1.0), 100.0);
  // Odd n: {1,2,3,4} at q=0.5 → rank ceil(2)=2 → 2 (conservative, not 2.5).
  LatencyDistribution e;
  for (double v : {4.0, 2.0, 1.0, 3.0}) e.add(v);
  EXPECT_DOUBLE_EQ(e.quantile(0.5), 2.0);
}

TEST(LatencyDistribution, FailuresPoisonMeanAndTopQuantiles) {
  LatencyDistribution d;
  for (int i = 0; i < 99; ++i) d.add(1.0);
  d.add(kInf);  // one failed replicate out of 100
  EXPECT_EQ(d.failures(), 1u);
  EXPECT_EQ(d.mean(), kInf);
  EXPECT_EQ(d.stddev(), kInf);
  EXPECT_EQ(d.quantile(1.0), kInf);   // the failure occupies the top rank
  EXPECT_DOUBLE_EQ(d.quantile(0.99), 1.0);  // rank 99 is still finite
}

// ---------------------------------------------------------------------------
// Sample-size bound

TEST(SloBound, LegacyDefaultIsOneSample) {
  const SloBound legacy;
  EXPECT_TRUE(legacy.is_legacy());
  EXPECT_EQ(legacy.min_replicates(), 1u);
}

TEST(SloBound, ScenarioApproachSampleSizes) {
  const auto n = [](SloMetric m, double c) {
    SloBound b;
    b.metric = m;
    b.confidence = c;
    return b.min_replicates();
  };
  // N = ceil((2/eps)(ln(1/beta) + 1)), eps = 1 - q, beta = 1 - confidence.
  EXPECT_EQ(n(SloMetric::P95, 0.80), 105u);
  EXPECT_EQ(n(SloMetric::P95, 0.95), 160u);
  EXPECT_EQ(n(SloMetric::P95, 0.99), 225u);
  EXPECT_EQ(n(SloMetric::P99, 0.95), 800u);
  // Mean with confidence < 1 uses the CLT floor, not the scenario bound.
  EXPECT_EQ(n(SloMetric::Mean, 0.95), kMeanMinReplicates);
  // Confidence 1.0 on a percentile clamps beta away from zero.
  EXPECT_EQ(n(SloMetric::P95, 1.0), 409u);
}

TEST(SloBound, MetricNamesRoundTrip) {
  for (SloMetric m :
       {SloMetric::Mean, SloMetric::P50, SloMetric::P95, SloMetric::P99}) {
    EXPECT_EQ(slo_metric_from_string(to_string(m)), m);
  }
  EXPECT_THROW(slo_metric_from_string("p90"), support::ContractViolation);
}

// ---------------------------------------------------------------------------
// Verdicts

TEST(SloVerdict, InsufficientSamplesNeverAccepts) {
  SloBound bound;
  bound.metric = SloMetric::P95;
  bound.confidence = 0.95;  // needs 160 replicates
  LatencyDistribution d;
  for (int i = 0; i < 159; ++i) d.add(0.001);  // far below any limit
  EXPECT_EQ(slo_verdict(d, bound, 100.0), SloVerdict::InsufficientSamples);
  d.add(0.001);  // the 160th sample flips it to a real verdict
  EXPECT_EQ(slo_verdict(d, bound, 100.0), SloVerdict::Accept);
}

TEST(SloVerdict, LegacySingleSampleIsThePointCheck) {
  const SloBound legacy;
  LatencyDistribution under;
  under.add(10.0);
  EXPECT_EQ(slo_verdict(under, legacy, 10.0), SloVerdict::Accept);  // == limit
  LatencyDistribution over;
  over.add(10.0 + 1e-9);
  EXPECT_EQ(slo_verdict(over, legacy, 10.0), SloVerdict::Reject);
}

TEST(SloVerdict, MeanConfidenceBoundWidensWithVariance) {
  SloBound bound;
  bound.confidence = 0.95;  // mean metric, UCB check
  LatencyDistribution tight;  // 30 identical samples right at the limit
  for (std::size_t i = 0; i < kMeanMinReplicates; ++i) tight.add(10.0);
  EXPECT_EQ(slo_verdict(tight, bound, 10.0), SloVerdict::Accept);
  LatencyDistribution noisy;  // same mean, nonzero spread → UCB exceeds
  for (std::size_t i = 0; i < kMeanMinReplicates; ++i)
    noisy.add(i % 2 == 0 ? 9.0 : 11.0);
  EXPECT_EQ(slo_verdict(noisy, bound, 10.0), SloVerdict::Reject);
}

TEST(SloVerdict, PercentileJudgesTheTailNotTheMean) {
  SloBound bound;
  bound.metric = SloMetric::P95;
  bound.confidence = 0.95;
  // 8/160 violations is exactly the 5% budget (floor(0.05 * 160) = 8): the
  // conservative rank-152 quantile still accepts.  One more violation tips
  // the empirical p95 to the tail value.
  LatencyDistribution within;
  for (int i = 0; i < 152; ++i) within.add(1.0);
  for (int i = 0; i < 8; ++i) within.add(100.0);
  EXPECT_EQ(slo_verdict(within, bound, 50.0), SloVerdict::Accept);
  LatencyDistribution over;  // mean ~6.6 but 9/160 samples at 100 → p95 = 100
  for (int i = 0; i < 151; ++i) over.add(1.0);
  for (int i = 0; i < 9; ++i) over.add(100.0);
  EXPECT_EQ(slo_verdict(over, bound, 50.0), SloVerdict::Reject);
  EXPECT_EQ(slo_verdict(over, bound, 100.0), SloVerdict::Accept);
}

TEST(SloVerdict, FailedReplicateInsideBudgetForcesReject) {
  SloBound bound;
  bound.metric = SloMetric::P95;
  bound.confidence = 0.95;
  LatencyDistribution d;
  for (int i = 0; i < 151; ++i) d.add(1.0);
  for (int i = 0; i < 9; ++i) d.add(kInf);  // 9/160 failures > 5% budget
  EXPECT_EQ(slo_verdict(d, bound, 1e9), SloVerdict::Reject);
}

// ---------------------------------------------------------------------------
// Replicates through the evaluator

TEST(ProbeReplicates, BitIdenticalAcrossThreadCounts) {
  const workloads::Workload w = workloads::make_by_name("chatbot");
  const platform::Executor ex;  // default executor has nonzero noise
  const auto config = platform::uniform_config(w.workflow.function_count(),
                                               platform::ConfigGrid().max_config());
  const auto run = [&](std::size_t threads) {
    EvaluatorOptions opts;
    opts.threads = threads;
    Evaluator ev(w.workflow, ex, w.slo_seconds, 1.0, 917, opts);
    std::vector<double> makespans;
    for (const ProbeResult& r : ev.probe_replicates(config, 12))
      makespans.push_back(r.sample.makespan);
    return makespans;
  };
  const std::vector<double> serial = run(1);
  EXPECT_EQ(serial.size(), 12u);
  EXPECT_EQ(serial, run(4));
  // Noise actually fires: replicates are not all identical.
  EXPECT_NE(serial.front(), serial.back());
}

TEST(ProbeReplicates, DistributionOfOneDegeneratesToProbe) {
  const workloads::Workload w = workloads::make_by_name("chatbot");
  const platform::Executor ex;
  const auto config = platform::uniform_config(w.workflow.function_count(),
                                               platform::ConfigGrid().max_config());
  Evaluator plain(w.workflow, ex, w.slo_seconds, 1.0, 917);
  const ProbeResult single = plain.probe(config);
  Evaluator dist(w.workflow, ex, w.slo_seconds, 1.0, 917);
  const ProbeResult wrapped = dist.probe_distribution(config, 1);
  EXPECT_EQ(single.sample.makespan, wrapped.sample.makespan);
  EXPECT_EQ(single.sample.cost, wrapped.sample.cost);
  ASSERT_NE(wrapped.makespan_distribution, nullptr);
  EXPECT_EQ(wrapped.makespan_distribution->count(), 1u);
  EXPECT_EQ(wrapped.makespan_distribution->quantile(1.0), wrapped.sample.makespan);
}

// ---------------------------------------------------------------------------
// Configurator integration

std::vector<double> trace_makespans(const SearchResult& r) {
  std::vector<double> out;
  for (const auto& s : r.trace.samples()) out.push_back(s.makespan);
  return out;
}

SearchResult schedule_with(const workloads::Workload& w,
                           const core::SchedulerOptions& opts) {
  const platform::Executor ex;
  const platform::ConfigGrid grid;
  const core::GraphCentricScheduler scheduler(ex, grid, opts);
  return scheduler.schedule(w.workflow, w.slo_seconds).result;
}

TEST(SloConfigurator, ExplicitLegacyBoundIsBitIdenticalToDefault) {
  const workloads::Workload w = workloads::make_by_name("ml_pipeline");
  const SearchResult base = schedule_with(w, {});
  core::SchedulerOptions explicit_opts;
  explicit_opts.configurator.slo.metric = SloMetric::Mean;
  explicit_opts.configurator.slo.confidence = 1.0;
  const SearchResult explicit_run = schedule_with(w, explicit_opts);
  EXPECT_EQ(base.found_feasible, explicit_run.found_feasible);
  EXPECT_EQ(base.best_config, explicit_run.best_config);
  EXPECT_EQ(base.samples(), explicit_run.samples());
  EXPECT_EQ(trace_makespans(base), trace_makespans(explicit_run));
}

TEST(SloConfigurator, PercentileBoundFindsAFeasibleConfig) {
  const workloads::Workload w = workloads::make_by_name("chatbot");
  core::SchedulerOptions opts;
  opts.configurator.slo.metric = SloMetric::P95;
  opts.configurator.slo.confidence = 0.80;
  const SearchResult r = schedule_with(w, opts);
  ASSERT_TRUE(r.found_feasible);
  // The accepted configuration's validated p95 clears the deadline.
  const platform::Executor ex;
  Evaluator ev(w.workflow, ex, w.slo_seconds, 1.0, 2025);
  const ProbeResult check =
      ev.probe_distribution(r.best_config, opts.configurator.slo.min_replicates());
  ASSERT_NE(check.makespan_distribution, nullptr);
  EXPECT_LE(check.makespan_distribution->quantile(0.95), w.slo_seconds);
}

TEST(SloConfigurator, CostBoundedDualModeRespectsTheBound) {
  const workloads::Workload w = workloads::make_by_name("chatbot");
  core::SchedulerOptions opts;
  opts.configurator.cost_bound = 600.0;
  const SearchResult r = schedule_with(w, opts);
  ASSERT_TRUE(r.found_feasible);
  const platform::Executor ex;
  Evaluator ev(w.workflow, ex, w.slo_seconds, 1.0, 2025);
  EXPECT_LE(ev.probe(r.best_config).sample.cost, opts.configurator.cost_bound);
}

}  // namespace
}  // namespace aarc::search
