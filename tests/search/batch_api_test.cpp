// Batch probe API and memoization cache: batches must commit in request
// order with thread-count-independent results, and a cache hit must return
// the exact cached ProbeResult without billing a second execution.
#include <gtest/gtest.h>

#include "perf/analytic.h"
#include "search/evaluator.h"

namespace aarc::search {
namespace {

std::unique_ptr<perf::PerfModel> model(double serial) {
  perf::AnalyticParams p;
  p.serial_seconds = serial;
  p.working_set_mb = 256.0;
  p.min_memory_mb = 128.0;
  p.pressure_coeff = 0.0;
  return std::make_unique<perf::AnalyticModel>(p);
}

platform::Workflow chain() {
  platform::Workflow wf("chain");
  wf.add_function("a", model(4.0));
  wf.add_function("b", model(6.0));
  wf.add_edge("a", "b");
  return wf;
}

std::vector<ProbeRequest> some_requests(std::size_t count) {
  std::vector<ProbeRequest> requests;
  for (std::size_t i = 0; i < count; ++i) {
    auto cfg = platform::uniform_config(2, {1.0, 512.0});
    cfg[0].memory_mb = 512.0 + 128.0 * static_cast<double>(i % 5);
    requests.emplace_back(std::move(cfg), i);
  }
  return requests;
}

ProbeBatch batch_of(Evaluator& ev, const std::vector<ProbeRequest>& requests) {
  ProbeBatch batch = ev.make_batch();
  for (const auto& r : requests) batch.add(r.config, r.tag);
  return batch;
}

EvaluatorOptions with_threads(std::size_t threads) {
  EvaluatorOptions opts;
  opts.threads = threads;
  return opts;
}

TEST(BatchApi, ResultsComeBackInRequestOrder) {
  const platform::Workflow wf = chain();
  const platform::Executor ex;
  Evaluator ev(wf, ex, 100.0, 1.0, 42, with_threads(4));
  const auto results = ev.evaluate_batch(some_requests(10));
  ASSERT_EQ(results.size(), 10u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].tag, i);
    EXPECT_EQ(results[i].sample_index, i);
    EXPECT_EQ(ev.trace().samples()[i].index, i);
  }
}

TEST(BatchApi, ThreadCountDoesNotChangeResults) {
  const platform::Workflow wf = chain();
  const platform::Executor ex;
  Evaluator serial(wf, ex, 100.0, 1.0, 42, with_threads(1));
  Evaluator parallel(wf, ex, 100.0, 1.0, 42, with_threads(8));
  const auto a = serial.evaluate_batch(some_requests(16));
  const auto b = parallel.evaluate_batch(some_requests(16));
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].sample.makespan, b[i].sample.makespan);
    EXPECT_DOUBLE_EQ(a[i].sample.cost, b[i].sample.cost);
  }
}

TEST(BatchApi, ExecutionPolicyOverridesTheDefaultThreadCount) {
  const platform::Workflow wf = chain();
  const platform::Executor ex;
  Evaluator serial(wf, ex, 100.0, 1.0, 42, with_threads(1));
  Evaluator parallel(wf, ex, 100.0, 1.0, 42, with_threads(1));
  const auto requests = some_requests(16);
  const auto a = serial.evaluate_batch(batch_of(serial, requests),
                                       ExecutionPolicy::serial());
  const auto b = parallel.evaluate_batch(batch_of(parallel, requests),
                                         ExecutionPolicy::threads(8));
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].sample.makespan, b[i].sample.makespan);
    EXPECT_DOUBLE_EQ(a[i].sample.cost, b[i].sample.cost);
    ASSERT_EQ(a[i].function_runtimes.size(), b[i].function_runtimes.size());
    for (std::size_t fn = 0; fn < a[i].function_runtimes.size(); ++fn) {
      EXPECT_DOUBLE_EQ(a[i].function_runtimes[fn], b[i].function_runtimes[fn]);
      EXPECT_DOUBLE_EQ(a[i].function_costs[fn], b[i].function_costs[fn]);
    }
  }
}

TEST(BatchApi, BatchAndOneByOneAgree) {
  const platform::Workflow wf = chain();
  const platform::Executor ex;
  Evaluator batched(wf, ex, 100.0, 1.0, 7, with_threads(4));
  Evaluator sequential(wf, ex, 100.0, 1.0, 7, with_threads(1));
  const auto requests = some_requests(6);
  const auto results = batched.evaluate_batch(requests);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const auto eval = sequential.probe(requests[i].config);
    EXPECT_DOUBLE_EQ(results[i].sample.makespan, eval.sample.makespan);
  }
}

TEST(BatchApi, ArenaOutlivesTheEvaluator) {
  const platform::Workflow wf = chain();
  const platform::Executor ex;
  std::vector<ProbeResult> results;
  {
    Evaluator ev(wf, ex, 100.0, 1.0, 42, with_threads(2));
    results = ev.evaluate_batch(some_requests(4));
  }
  // The spans point into a shared arena kept alive by the results themselves.
  for (const auto& r : results) {
    ASSERT_EQ(r.function_runtimes.size(), 2u);
    for (double v : r.function_runtimes) EXPECT_GT(v, 0.0);
    for (double v : r.function_costs) EXPECT_GT(v, 0.0);
  }
}

EvaluatorOptions with_cache() {
  EvaluatorOptions opts;
  opts.probe_cache = true;
  return opts;
}

TEST(ProbeCache, HitReturnsTheCachedResultUnbilled) {
  const platform::Workflow wf = chain();
  const platform::Executor ex;
  Evaluator ev(wf, ex, 100.0, 1.0, 42, with_cache());
  const auto cfg = platform::uniform_config(2, {1.0, 512.0});
  const auto first = ev.probe(cfg);
  const std::size_t executions_after_first = ev.executions_used();
  const auto second = ev.probe(cfg);

  // Bit-identical payload, served from memory.
  EXPECT_DOUBLE_EQ(second.sample.makespan, first.sample.makespan);
  EXPECT_DOUBLE_EQ(second.sample.cost, first.sample.cost);
  ASSERT_EQ(second.function_runtimes.size(), first.function_runtimes.size());
  for (std::size_t fn = 0; fn < first.function_runtimes.size(); ++fn) {
    EXPECT_DOUBLE_EQ(second.function_runtimes[fn], first.function_runtimes[fn]);
  }

  // The hit is a trace sample but not a platform execution or wall charge.
  EXPECT_EQ(ev.samples_used(), 2u);
  EXPECT_EQ(ev.cache_hits(), 1u);
  EXPECT_EQ(ev.executions_used(), executions_after_first);
  const auto& hit = ev.trace().samples()[1];
  EXPECT_TRUE(hit.cache_hit);
  EXPECT_EQ(hit.probe_attempts, 0u);
  EXPECT_DOUBLE_EQ(hit.wall_seconds, 0.0);
  EXPECT_DOUBLE_EQ(hit.wall_cost, 0.0);
}

TEST(ProbeCache, OffByDefault) {
  const platform::Workflow wf = chain();
  const platform::Executor ex;
  Evaluator ev(wf, ex, 100.0, 1.0, 42);
  const auto cfg = platform::uniform_config(2, {1.0, 512.0});
  ev.probe(cfg);
  ev.probe(cfg);
  EXPECT_EQ(ev.cache_hits(), 0u);
  EXPECT_EQ(ev.executions_used(), 2u);
}

TEST(ProbeCache, DeterministicOomIsCached) {
  const platform::Workflow wf = chain();
  const platform::Executor ex;
  Evaluator ev(wf, ex, 100.0, 1.0, 42, with_cache());
  auto cfg = platform::uniform_config(2, {1.0, 512.0});
  cfg[1].memory_mb = 100.0;  // below the OOM floor: a property of the config
  EXPECT_TRUE(ev.probe(cfg).sample.failed);
  EXPECT_TRUE(ev.probe(cfg).sample.failed);
  EXPECT_EQ(ev.cache_hits(), 1u);
}

TEST(ProbeCache, TransientFailuresAreNeverCached) {
  const platform::Workflow wf = chain();
  platform::ExecutorOptions opts;
  platform::FaultRates rates;
  rates.transient_crash = 1.0;  // every execution crashes
  opts.faults = platform::FaultModel{rates};
  const platform::Executor ex(std::make_unique<platform::DecoupledLinearPricing>(), opts);
  Evaluator ev(wf, ex, 100.0, 1.0, 42, with_cache());
  const auto cfg = platform::uniform_config(2, {1.0, 512.0});
  EXPECT_TRUE(ev.probe(cfg).sample.transient);
  EXPECT_TRUE(ev.probe(cfg).sample.transient);
  // A crash is platform noise, not an answer about the configuration.
  EXPECT_EQ(ev.cache_hits(), 0u);
  EXPECT_EQ(ev.executions_used(), 2u);
}

TEST(ProbeCache, DuplicatesInsideOneBatchExecuteOnce) {
  const platform::Workflow wf = chain();
  const platform::Executor ex;
  Evaluator ev(wf, ex, 100.0, 1.0, 42, with_cache());
  const auto cfg = platform::uniform_config(2, {1.0, 512.0});
  // Duplicate requests in one batch are the same deterministic question:
  // the first occurrence executes, later ones are served from its answer
  // and recorded as free cache hits — a batch bills each config once.
  const auto results = ev.evaluate_batch({ProbeRequest(cfg), ProbeRequest(cfg)});
  EXPECT_FALSE(results[0].cache_hit);
  EXPECT_TRUE(results[1].cache_hit);
  EXPECT_EQ(results[1].sample.makespan, results[0].sample.makespan);
  EXPECT_EQ(ev.executions_used(), 1u);
  // A later probe of the same config hits the committed entry.
  EXPECT_EQ(ev.evaluate_batch({ProbeRequest(cfg)}).front().cache_hit, true);
}

TEST(ProbeCache, DuplicatesBillOnceAndTraceAsFreeHits) {
  // Regression guard for the budget semantics of PR 4: a batch with many
  // duplicate lanes must bill exactly one sample, and each duplicate must
  // appear in the trace as a zero-cost, zero-attempt cache hit.
  const platform::Workflow wf = chain();
  const platform::Executor ex;
  Evaluator ev(wf, ex, 100.0, 1.0, 42, with_cache());
  const auto cfg = platform::uniform_config(2, {1.0, 512.0});
  ProbeBatch batch = ev.make_batch();
  for (std::size_t i = 0; i < 5; ++i) batch.add(cfg, /*tag=*/i);
  const auto results = ev.evaluate_batch(batch, ExecutionPolicy::threads(4));
  ASSERT_EQ(results.size(), 5u);
  EXPECT_EQ(ev.billed_samples(), 1u);
  EXPECT_EQ(ev.executions_used(), 1u);
  EXPECT_EQ(ev.cache_hits(), 4u);
  EXPECT_EQ(ev.samples_used(), 5u);
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_TRUE(results[i].cache_hit);
    EXPECT_EQ(results[i].tag, i);
    const auto& s = ev.trace().samples()[i];
    EXPECT_TRUE(s.cache_hit);
    EXPECT_EQ(s.probe_attempts, 0u);
    EXPECT_DOUBLE_EQ(s.wall_seconds, 0.0);
    EXPECT_DOUBLE_EQ(s.wall_cost, 0.0);
    EXPECT_DOUBLE_EQ(results[i].sample.makespan, results[0].sample.makespan);
  }
}

}  // namespace
}  // namespace aarc::search
