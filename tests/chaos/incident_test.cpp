// Unit coverage of the chaos incident engine: trapezoidal intensity,
// targeting, validation, and the fault-rate modulation rule (probabilities
// add and saturate; magnitudes stay the base model's; empty schedule is the
// identity).
#include <gtest/gtest.h>

#include "chaos/incident.h"
#include "support/contracts.h"

namespace aarc::chaos {
namespace {

Incident make(IncidentKind kind, double start, double end, double ramp = 0.0,
              double severity = 1.0, std::vector<dag::NodeId> targets = {}) {
  Incident incident;
  incident.kind = kind;
  incident.start_seconds = start;
  incident.end_seconds = end;
  incident.ramp_seconds = ramp;
  incident.severity = severity;
  incident.targets = std::move(targets);
  return incident;
}

TEST(Incident, SquareStepIntensity) {
  const Incident i = make(IncidentKind::Outage, 100.0, 200.0);
  EXPECT_DOUBLE_EQ(i.intensity_at(0.0), 0.0);
  EXPECT_DOUBLE_EQ(i.intensity_at(99.999), 0.0);
  EXPECT_DOUBLE_EQ(i.intensity_at(100.0), 1.0);  // start is inclusive
  EXPECT_DOUBLE_EQ(i.intensity_at(150.0), 1.0);
  EXPECT_DOUBLE_EQ(i.intensity_at(199.999), 1.0);
  EXPECT_DOUBLE_EQ(i.intensity_at(200.0), 0.0);  // end is exclusive
  EXPECT_DOUBLE_EQ(i.intensity_at(1e9), 0.0);
}

TEST(Incident, TrapezoidalRampIntensity) {
  const Incident i = make(IncidentKind::Brownout, 100.0, 200.0, 25.0);
  EXPECT_DOUBLE_EQ(i.intensity_at(100.0), 0.0);   // ramp starts from zero
  EXPECT_DOUBLE_EQ(i.intensity_at(112.5), 0.5);   // halfway up
  EXPECT_DOUBLE_EQ(i.intensity_at(125.0), 1.0);   // plateau begins
  EXPECT_DOUBLE_EQ(i.intensity_at(150.0), 1.0);
  EXPECT_DOUBLE_EQ(i.intensity_at(175.0), 1.0);   // plateau ends
  EXPECT_DOUBLE_EQ(i.intensity_at(187.5), 0.5);   // halfway down
  EXPECT_NEAR(i.intensity_at(199.999), 0.0, 1e-4);
}

TEST(Incident, FullWindowRampIsATriangle) {
  // ramp == window / 2: no plateau, peak exactly at the midpoint.
  const Incident i = make(IncidentKind::Brownout, 0.0, 100.0, 50.0);
  EXPECT_DOUBLE_EQ(i.intensity_at(25.0), 0.5);
  EXPECT_DOUBLE_EQ(i.intensity_at(50.0), 1.0);
  EXPECT_DOUBLE_EQ(i.intensity_at(75.0), 0.5);
}

TEST(Incident, EmptyTargetsMeansPlatformWide) {
  const Incident wide = make(IncidentKind::Outage, 0.0, 10.0);
  EXPECT_TRUE(wide.applies_to(0));
  EXPECT_TRUE(wide.applies_to(7));

  const Incident correlated = make(IncidentKind::Outage, 0.0, 10.0, 0.0, 1.0, {1, 3});
  EXPECT_FALSE(correlated.applies_to(0));
  EXPECT_TRUE(correlated.applies_to(1));
  EXPECT_FALSE(correlated.applies_to(2));
  EXPECT_TRUE(correlated.applies_to(3));
}

TEST(Incident, ValidateRejectsIllFormedEpisodes) {
  EXPECT_THROW(make(IncidentKind::Outage, -1.0, 10.0).validate(),
               support::ContractViolation);
  EXPECT_THROW(make(IncidentKind::Outage, 10.0, 10.0).validate(),
               support::ContractViolation);  // empty window
  EXPECT_THROW(make(IncidentKind::Outage, 10.0, 5.0).validate(),
               support::ContractViolation);  // inverted window
  EXPECT_THROW(make(IncidentKind::Outage, 0.0, 10.0, -1.0).validate(),
               support::ContractViolation);  // negative ramp
  EXPECT_THROW(make(IncidentKind::Outage, 0.0, 10.0, 6.0).validate(),
               support::ContractViolation);  // ramp doesn't fit twice
  EXPECT_THROW(make(IncidentKind::Outage, 0.0, 10.0, 0.0, 1.5).validate(),
               support::ContractViolation);  // severity out of [0, 1]
  EXPECT_NO_THROW(make(IncidentKind::Outage, 0.0, 10.0, 5.0, 1.0).validate());
}

TEST(Incident, ValidationErrorsNameTheOffendingValue) {
  try {
    make(IncidentKind::Outage, 0.0, 10.0, 0.0, 1.5).validate();
    FAIL() << "expected ContractViolation";
  } catch (const support::ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("1.5"), std::string::npos) << e.what();
  }
}

TEST(IncidentKind, RoundTripsThroughStrings) {
  for (const IncidentKind kind : {IncidentKind::Outage, IncidentKind::Brownout,
                                  IncidentKind::ThrottleStorm}) {
    EXPECT_EQ(incident_kind_from_string(to_string(kind)), kind);
  }
  EXPECT_THROW(incident_kind_from_string("meteor_strike"), support::ContractViolation);
}

TEST(IncidentSchedule, EmptyScheduleIsTheIdentity) {
  const IncidentSchedule schedule;
  EXPECT_TRUE(schedule.empty());
  EXPECT_FALSE(schedule.any_active(0.0));
  EXPECT_FALSE(schedule.active_for(0, 123.0));

  platform::FaultRates base;
  base.transient_crash = 0.2;
  base.straggler = 0.1;
  base.straggler_multiplier = 6.0;
  const platform::FaultRates out = schedule.modulate(base, 0, 500.0);
  EXPECT_DOUBLE_EQ(out.transient_crash, base.transient_crash);
  EXPECT_DOUBLE_EQ(out.straggler, base.straggler);
  EXPECT_DOUBLE_EQ(out.straggler_multiplier, base.straggler_multiplier);
}

TEST(IncidentSchedule, OutageDrivesCrashRateAndSaturates) {
  IncidentSchedule schedule;
  schedule.add(make(IncidentKind::Outage, 100.0, 200.0, 0.0, 0.95));

  platform::FaultRates base;
  base.transient_crash = 0.2;
  // Inside the window: 0.2 + 0.95 saturates at 1.
  EXPECT_DOUBLE_EQ(schedule.modulate(base, 0, 150.0).transient_crash, 1.0);
  // Outside: untouched.
  EXPECT_DOUBLE_EQ(schedule.modulate(base, 0, 50.0).transient_crash, 0.2);
  EXPECT_DOUBLE_EQ(schedule.modulate(base, 0, 250.0).transient_crash, 0.2);
}

TEST(IncidentSchedule, BrownoutRampScalesStragglerAndColdSpike) {
  IncidentSchedule schedule;
  schedule.add(make(IncidentKind::Brownout, 0.0, 100.0, 50.0, 0.8));

  const platform::FaultRates base;  // all-zero probabilities
  const platform::FaultRates mid = schedule.modulate(base, 2, 25.0);  // w = 0.5
  EXPECT_DOUBLE_EQ(mid.straggler, 0.5 * 0.8);
  EXPECT_DOUBLE_EQ(mid.cold_spike, 0.5 * 0.5 * 0.8);  // cold spikes at half weight
  EXPECT_DOUBLE_EQ(mid.transient_crash, 0.0);
  EXPECT_DOUBLE_EQ(mid.throttle, 0.0);
  // Magnitudes stay the base model's.
  EXPECT_DOUBLE_EQ(mid.straggler_multiplier, base.straggler_multiplier);
  EXPECT_DOUBLE_EQ(mid.cold_spike_max_seconds, base.cold_spike_max_seconds);
}

TEST(IncidentSchedule, ThrottleStormOnlyTouchesThrottle) {
  IncidentSchedule schedule;
  schedule.add(make(IncidentKind::ThrottleStorm, 0.0, 10.0, 0.0, 0.7));
  const platform::FaultRates out = schedule.modulate({}, 0, 5.0);
  EXPECT_DOUBLE_EQ(out.throttle, 0.7);
  EXPECT_DOUBLE_EQ(out.transient_crash, 0.0);
  EXPECT_DOUBLE_EQ(out.straggler, 0.0);
  EXPECT_DOUBLE_EQ(out.cold_spike, 0.0);
}

TEST(IncidentSchedule, OverlappingIncidentsAddPerTarget) {
  // A platform-wide storm plus a correlated outage on nodes 1 and 2.
  IncidentSchedule schedule;
  schedule.add(make(IncidentKind::ThrottleStorm, 0.0, 1000.0, 0.0, 0.3));
  schedule.add(make(IncidentKind::Outage, 100.0, 200.0, 0.0, 0.9, {1, 2}));

  EXPECT_TRUE(schedule.active_for(0, 150.0));   // storm hits everyone
  EXPECT_TRUE(schedule.active_for(1, 150.0));
  EXPECT_FALSE(schedule.active_for(0, 1500.0));  // nothing active after last_end

  const platform::FaultRates node0 = schedule.modulate({}, 0, 150.0);
  EXPECT_DOUBLE_EQ(node0.throttle, 0.3);
  EXPECT_DOUBLE_EQ(node0.transient_crash, 0.0);  // outage targets 1 and 2 only

  const platform::FaultRates node1 = schedule.modulate({}, 1, 150.0);
  EXPECT_DOUBLE_EQ(node1.throttle, 0.3);
  EXPECT_DOUBLE_EQ(node1.transient_crash, 0.9);

  EXPECT_DOUBLE_EQ(schedule.first_start(), 0.0);
  EXPECT_DOUBLE_EQ(schedule.last_end(), 1000.0);
}

TEST(IncidentSchedule, AddAndConstructorValidate) {
  IncidentSchedule schedule;
  EXPECT_THROW(schedule.add(make(IncidentKind::Outage, 5.0, 5.0)),
               support::ContractViolation);
  EXPECT_THROW(IncidentSchedule({make(IncidentKind::Outage, 5.0, 5.0)}),
               support::ContractViolation);
  EXPECT_EQ(schedule.size(), 0u);  // the rejected incident was not added
}

}  // namespace
}  // namespace aarc::chaos
