// Robustness fuzzing of the JSON parser and the typed loaders built on it:
// seeded random byte strings, random mutations of valid documents,
// truncations, type swaps and depth bombs must either load or throw
// JsonError / ContractViolation — never crash, hang, or throw anything else.
#include <gtest/gtest.h>

#include <string>

#include "io/chaos_io.h"
#include "io/json.h"
#include "io/trace_io.h"
#include "io/workflow_io.h"
#include "support/contracts.h"
#include "support/rng.h"
#include "workloads/catalog.h"

namespace aarc::io {
namespace {

/// Parse and require graceful behaviour; returns true when it parsed.
bool parse_gracefully(const std::string& text) {
  try {
    const Json doc = parse_json(text);
    // Whatever parsed must re-serialize and re-parse identically.
    const Json again = parse_json(doc.dump());
    EXPECT_EQ(doc, again);
    return true;
  } catch (const JsonError&) {
    return false;  // rejection is fine
  }
}

class JsonFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(JsonFuzz, RandomBytesNeverCrash) {
  support::Rng rng(GetParam());
  for (int doc = 0; doc < 200; ++doc) {
    std::string text;
    const std::size_t len = rng.index(60);
    for (std::size_t i = 0; i < len; ++i) {
      text += static_cast<char>(rng.uniform_int(32, 126));
    }
    (void)parse_gracefully(text);
  }
}

TEST_P(JsonFuzz, StructuredSoupNeverCrashes) {
  // Random soup from JSON-ish tokens: much higher parse rate than raw bytes,
  // exercising deeper parser states.
  static const char* kTokens[] = {"{",    "}",    "[",     "]",    ",",   ":",
                                  "\"a\"", "\"b\"", "1",     "-2.5", "1e3", "true",
                                  "false", "null", " ",     "\n"};
  support::Rng rng(GetParam() + 1000);
  for (int doc = 0; doc < 300; ++doc) {
    std::string text;
    const std::size_t len = 1 + rng.index(20);
    for (std::size_t i = 0; i < len; ++i) {
      text += kTokens[rng.index(std::size(kTokens))];
    }
    (void)parse_gracefully(text);
  }
}

TEST_P(JsonFuzz, MutatedValidDocumentsNeverCrash) {
  const std::string valid =
      R"({"name":"wf","slo":120.5,"fns":[{"n":"a","xs":[1,2,3]},{"n":"b","ok":true}]})";
  support::Rng rng(GetParam() + 2000);
  for (int doc = 0; doc < 300; ++doc) {
    std::string text = valid;
    const std::size_t edits = 1 + rng.index(4);
    for (std::size_t e = 0; e < edits; ++e) {
      const std::size_t pos = rng.index(text.size());
      switch (rng.index(3)) {
        case 0:
          text[pos] = static_cast<char>(rng.uniform_int(32, 126));
          break;
        case 1:
          text.erase(pos, 1);
          break;
        default:
          text.insert(pos, 1, static_cast<char>(rng.uniform_int(32, 126)));
          break;
      }
      if (text.empty()) break;
    }
    (void)parse_gracefully(text);
  }
}

TEST_P(JsonFuzz, DeepNestingParsesOrRejectsWithoutOverflow) {
  // Moderately deep nesting must round-trip; the recursive-descent parser's
  // depth is bounded by the input length, so this also guards stack use.
  support::Rng rng(GetParam() + 3000);
  const std::size_t depth = 50 + rng.index(100);
  std::string text(depth, '[');
  text += "1";
  text.append(depth, ']');
  EXPECT_TRUE(parse_gracefully(text));
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsonFuzz, ::testing::Range<std::uint64_t>(1, 6));

// --- End-to-end loader fuzzing -----------------------------------------------
//
// The typed loaders (workload, chaos profile, arrival trace) sit on top of
// the parser and add schema/semantic validation.  Mutated inputs must be
// loaded or rejected with JsonError / ContractViolation only; any other
// exception (or a crash under ASan/UBSan) is a bug in the loader, not the
// document.

/// Feed `text` to `load`; returns true when the loader accepted it.
template <typename LoadFn>
bool load_gracefully(const LoadFn& load, const std::string& text) {
  try {
    load(text);
    return true;
  } catch (const JsonError&) {
    return false;
  } catch (const support::ContractViolation&) {
    return false;
  } catch (const std::exception& e) {
    ADD_FAILURE() << "loader threw unexpected " << typeid(e).name() << ": "
                  << e.what() << "\n  input: " << text;
    return false;
  }
}

/// Mutate `text` in place with one random edit: byte flip, erase, insert,
/// truncation, or a type swap (replace a literal with one of another type).
void mutate(std::string& text, support::Rng& rng) {
  static const char* kSwaps[] = {"null", "true", "-1", "1e308", "\"\"",
                                 "[]",   "{}",   "[[[[[[[[[[1]]]]]]]]]]"};
  if (text.empty()) return;
  const std::size_t pos = rng.index(text.size());
  switch (rng.index(5)) {
    case 0:
      text[pos] = static_cast<char>(rng.uniform_int(32, 126));
      break;
    case 1:
      text.erase(pos, 1);
      break;
    case 2:
      text.insert(pos, 1, static_cast<char>(rng.uniform_int(32, 126)));
      break;
    case 3:  // truncation: keep a prefix
      text.resize(pos);
      break;
    default:  // type swap / depth bomb at a random position
      text.insert(pos, kSwaps[rng.index(std::size(kSwaps))]);
      break;
  }
}

template <typename LoadFn>
void fuzz_loader(const LoadFn& load, const std::string& valid,
                 std::uint64_t seed) {
  ASSERT_TRUE(load_gracefully(load, valid)) << "seed document must load";
  support::Rng rng(seed);
  for (int doc = 0; doc < 150; ++doc) {
    std::string text = valid;
    const std::size_t edits = 1 + rng.index(5);
    for (std::size_t e = 0; e < edits && !text.empty(); ++e) mutate(text, rng);
    (void)load_gracefully(load, text);
  }
  // Pure truncation sweep: every prefix of the valid document.
  for (std::size_t len = 0; len < valid.size(); ++len) {
    (void)load_gracefully(load, valid.substr(0, len));
  }
}

class LoaderFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LoaderFuzz, WorkloadLoaderNeverCrashes) {
  const std::string valid =
      workload_to_string(workloads::make_by_name("chatbot"));
  fuzz_loader([](const std::string& t) { (void)workload_from_string(t); },
              valid, GetParam() + 4000);
}

TEST_P(LoaderFuzz, ChaosProfileLoaderNeverCrashes) {
  const workloads::Workload w = workloads::make_by_name("chatbot");
  const std::string valid = R"({
    "name": "fuzz-profile",
    "incidents": [
      {"kind": "outage", "name": "zone down", "start_seconds": 600,
       "end_seconds": 1200, "ramp_seconds": 60, "severity": 0.95,
       "targets": ["preprocess", "aggregate"]},
      {"kind": "brownout", "start_seconds": 100, "end_seconds": 400},
      {"kind": "throttle_storm", "start_seconds": 50, "end_seconds": 80,
       "severity": 0.4}
    ]})";
  fuzz_loader(
      [&w](const std::string& t) {
        (void)chaos_profile_from_json(w.workflow, parse_json(t));
      },
      valid, GetParam() + 5000);
}

TEST_P(LoaderFuzz, ArrivalTraceLoaderNeverCrashes) {
  const std::string valid = R"({"arrivals": [
    {"t": 0.0, "scale": 1.0}, {"t": 0.5}, {"t": 1.25, "scale": 0.7},
    {"t": 2.0, "scale": 1.4}, {"t": 9.75}]})";
  fuzz_loader(
      [](const std::string& t) { (void)arrival_trace_from_json(parse_json(t)); },
      valid, GetParam() + 6000);
}

TEST(LoaderFuzz, DepthBombRejectedNotOverflowed) {
  // A pathological 20k-deep nesting wrapped in each loader's outer schema:
  // loaders must reject (or survive) without exhausting the stack.
  std::string bomb(20000, '[');
  bomb += "1";
  bomb.append(20000, ']');
  (void)load_gracefully(
      [](const std::string& t) { (void)workload_from_string(t); },
      R"({"name": "bomb", "slo_seconds": 10, "functions": )" + bomb +
          R"(, "edges": []})");
  (void)load_gracefully(
      [](const std::string& t) { (void)arrival_trace_from_json(parse_json(t)); },
      R"({"arrivals": )" + bomb + "}");
}

INSTANTIATE_TEST_SUITE_P(Seeds, LoaderFuzz, ::testing::Range<std::uint64_t>(1, 6));

}  // namespace
}  // namespace aarc::io
