// Robustness fuzzing of the JSON parser: seeded random byte strings and
// random mutations of valid documents must either parse or throw JsonError —
// never crash, hang, or throw anything else.
#include <gtest/gtest.h>

#include <string>

#include "io/json.h"
#include "support/rng.h"

namespace aarc::io {
namespace {

/// Parse and require graceful behaviour; returns true when it parsed.
bool parse_gracefully(const std::string& text) {
  try {
    const Json doc = parse_json(text);
    // Whatever parsed must re-serialize and re-parse identically.
    const Json again = parse_json(doc.dump());
    EXPECT_EQ(doc, again);
    return true;
  } catch (const JsonError&) {
    return false;  // rejection is fine
  }
}

class JsonFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(JsonFuzz, RandomBytesNeverCrash) {
  support::Rng rng(GetParam());
  for (int doc = 0; doc < 200; ++doc) {
    std::string text;
    const std::size_t len = rng.index(60);
    for (std::size_t i = 0; i < len; ++i) {
      text += static_cast<char>(rng.uniform_int(32, 126));
    }
    (void)parse_gracefully(text);
  }
}

TEST_P(JsonFuzz, StructuredSoupNeverCrashes) {
  // Random soup from JSON-ish tokens: much higher parse rate than raw bytes,
  // exercising deeper parser states.
  static const char* kTokens[] = {"{",    "}",    "[",     "]",    ",",   ":",
                                  "\"a\"", "\"b\"", "1",     "-2.5", "1e3", "true",
                                  "false", "null", " ",     "\n"};
  support::Rng rng(GetParam() + 1000);
  for (int doc = 0; doc < 300; ++doc) {
    std::string text;
    const std::size_t len = 1 + rng.index(20);
    for (std::size_t i = 0; i < len; ++i) {
      text += kTokens[rng.index(std::size(kTokens))];
    }
    (void)parse_gracefully(text);
  }
}

TEST_P(JsonFuzz, MutatedValidDocumentsNeverCrash) {
  const std::string valid =
      R"({"name":"wf","slo":120.5,"fns":[{"n":"a","xs":[1,2,3]},{"n":"b","ok":true}]})";
  support::Rng rng(GetParam() + 2000);
  for (int doc = 0; doc < 300; ++doc) {
    std::string text = valid;
    const std::size_t edits = 1 + rng.index(4);
    for (std::size_t e = 0; e < edits; ++e) {
      const std::size_t pos = rng.index(text.size());
      switch (rng.index(3)) {
        case 0:
          text[pos] = static_cast<char>(rng.uniform_int(32, 126));
          break;
        case 1:
          text.erase(pos, 1);
          break;
        default:
          text.insert(pos, 1, static_cast<char>(rng.uniform_int(32, 126)));
          break;
      }
      if (text.empty()) break;
    }
    (void)parse_gracefully(text);
  }
}

TEST_P(JsonFuzz, DeepNestingParsesOrRejectsWithoutOverflow) {
  // Moderately deep nesting must round-trip; the recursive-descent parser's
  // depth is bounded by the input length, so this also guards stack use.
  support::Rng rng(GetParam() + 3000);
  const std::size_t depth = 50 + rng.index(100);
  std::string text(depth, '[');
  text += "1";
  text.append(depth, ']');
  EXPECT_TRUE(parse_gracefully(text));
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsonFuzz, ::testing::Range<std::uint64_t>(1, 6));

}  // namespace
}  // namespace aarc::io
