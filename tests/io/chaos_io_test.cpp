// Chaos profile IO: the committed reference profiles under data/chaos/ must
// stay loadable against the workload they reference, round-trips must be
// stable, and a corpus of malformed documents must fail with JsonError /
// ContractViolation messages naming the field — never crash or throw
// anything else.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "io/chaos_io.h"
#include "io/json.h"
#include "io/workflow_io.h"
#include "support/contracts.h"
#include "workloads/catalog.h"

namespace aarc::io {
namespace {

/// data/ lives two levels above this source file (tests/io/ -> repo root).
std::string chaos_path(const std::string& name) {
  const std::string self = __FILE__;
  const auto pos = self.rfind("/tests/");
  return self.substr(0, pos) + "/data/chaos/" + name + ".json";
}

const platform::Workflow& chatbot() {
  static const workloads::Workload workload = workloads::make_by_name("chatbot");
  return workload.workflow;
}

class ReferenceProfiles : public ::testing::TestWithParam<std::string> {};

TEST_P(ReferenceProfiles, LoadAndRoundTripStably) {
  const Json doc = parse_json(read_text_file(chaos_path(GetParam())));
  const chaos::IncidentSchedule schedule = chaos_profile_from_json(chatbot(), doc);
  ASSERT_FALSE(schedule.empty());
  EXPECT_NO_THROW(schedule.validate());
  EXPECT_GT(schedule.last_end(), schedule.first_start());

  // Serialize -> parse -> serialize must be a fixed point.
  const Json once = chaos_profile_to_json(chatbot(), schedule, GetParam());
  const chaos::IncidentSchedule reloaded = chaos_profile_from_json(chatbot(), once);
  const Json twice = chaos_profile_to_json(chatbot(), reloaded, GetParam());
  EXPECT_EQ(once.dump(), twice.dump());
  ASSERT_EQ(reloaded.size(), schedule.size());
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    const chaos::Incident& a = schedule.incidents()[i];
    const chaos::Incident& b = reloaded.incidents()[i];
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.name, b.name);
    EXPECT_DOUBLE_EQ(a.start_seconds, b.start_seconds);
    EXPECT_DOUBLE_EQ(a.end_seconds, b.end_seconds);
    EXPECT_DOUBLE_EQ(a.ramp_seconds, b.ramp_seconds);
    EXPECT_DOUBLE_EQ(a.severity, b.severity);
    EXPECT_EQ(a.targets, b.targets);
  }
}

INSTANTIATE_TEST_SUITE_P(Fixtures, ReferenceProfiles,
                         ::testing::Values("outage", "brownout", "throttle_storm"));

/// Load a profile string, demanding graceful rejection: JsonError or
/// ContractViolation only, with `needle` somewhere in the message.
void expect_rejected(const std::string& text, const std::string& needle) {
  try {
    (void)chaos_profile_from_json(chatbot(), parse_json(text));
    FAIL() << "expected rejection of: " << text;
  } catch (const JsonError& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "JsonError message '" << e.what() << "' lacks '" << needle << "'";
  } catch (const support::ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "ContractViolation message '" << e.what() << "' lacks '" << needle << "'";
  } catch (const std::exception& e) {
    FAIL() << "wrong exception type for: " << text << " (" << e.what() << ")";
  }
}

TEST(ChaosProfileCorpus, MalformedDocumentsFailGracefully) {
  // Structurally broken JSON.
  EXPECT_THROW(parse_json(R"({"incidents": [)"), JsonError);
  EXPECT_THROW(parse_json(R"({"incidents": [], "incidents": []})"), JsonError);
  EXPECT_THROW(parse_json(R"({"incidents": [{"severity": 1e999}]})"), JsonError);

  // Wrong shapes and types, each named in the error.
  expect_rejected(R"([1, 2, 3])", "must be a JSON object");
  expect_rejected(R"({"name": "p"})", "incidents");
  expect_rejected(R"({"incidents": {}})", "'incidents' must be an array");
  expect_rejected(R"({"incidents": [42]})", "must be a JSON object");
  expect_rejected(R"({"incidents": [{}]})", "kind");
  expect_rejected(R"({"incidents": [{"kind": 3}]})", "'kind' must be a string");
  expect_rejected(
      R"({"incidents": [{"kind": "meteor", "start_seconds": 0, "end_seconds": 1}]})",
      "meteor");
  expect_rejected(R"({"incidents": [{"kind": "outage", "end_seconds": 1}]})",
                  "start_seconds");
  expect_rejected(R"({"incidents": [{"kind": "outage", "start_seconds": 0}]})",
                  "end_seconds");
  expect_rejected(
      R"({"incidents": [{"kind": "outage", "start_seconds": "soon", "end_seconds": 9}]})",
      "'start_seconds' must be a number");
  expect_rejected(
      R"({"incidents": [{"kind": "outage", "start_seconds": 0, "end_seconds": 9,
          "targets": "all"}]})",
      "'targets' must be an array");
  expect_rejected(
      R"({"incidents": [{"kind": "outage", "start_seconds": 0, "end_seconds": 9,
          "targets": [7]}]})",
      "targets must be strings");

  // Semantically invalid values and unknown target functions.
  expect_rejected(
      R"({"incidents": [{"kind": "outage", "start_seconds": 9, "end_seconds": 9}]})",
      "window");
  expect_rejected(
      R"({"incidents": [{"kind": "outage", "start_seconds": 0, "end_seconds": 9,
          "severity": 2.5}]})",
      "severity");
  expect_rejected(
      R"({"incidents": [{"kind": "outage", "start_seconds": 0, "end_seconds": 9,
          "targets": ["no_such_fn"]}]})",
      "no_such_fn");
}

TEST(ChaosProfileCorpus, HostileNestingHitsTheDepthCapNotTheStack) {
  std::string bomb = R"({"incidents": )";
  bomb.append(5000, '[');
  bomb.append(5000, ']');
  bomb += "}";
  try {
    (void)parse_json(bomb);
    FAIL() << "expected the depth cap to reject the document";
  } catch (const JsonError& e) {
    EXPECT_NE(std::string(e.what()).find("depth limit"), std::string::npos) << e.what();
  }
}

TEST(ChaosProfileCorpus, EmptyIncidentListIsAValidNoOpProfile) {
  const chaos::IncidentSchedule schedule =
      chaos_profile_from_json(chatbot(), parse_json(R"({"incidents": []})"));
  EXPECT_TRUE(schedule.empty());
}

}  // namespace
}  // namespace aarc::io
