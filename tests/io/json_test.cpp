#include "io/json.h"

#include <gtest/gtest.h>

#include <limits>

namespace aarc::io {
namespace {

TEST(Json, DefaultIsNull) {
  const Json j;
  EXPECT_TRUE(j.is_null());
  EXPECT_FALSE(j.is_object());
}

TEST(Json, TypedConstructionAndAccess) {
  EXPECT_TRUE(Json(true).as_bool());
  EXPECT_DOUBLE_EQ(Json(3.5).as_number(), 3.5);
  EXPECT_EQ(Json("hi").as_string(), "hi");
  EXPECT_EQ(Json(JsonArray{Json(1), Json(2)}).as_array().size(), 2u);
}

TEST(Json, TypeMismatchThrows) {
  EXPECT_THROW(Json(1.0).as_string(), JsonError);
  EXPECT_THROW(Json("x").as_number(), JsonError);
  EXPECT_THROW(Json(true).as_array(), JsonError);
  EXPECT_THROW(Json().as_object(), JsonError);
}

TEST(Json, ObjectFieldAccess) {
  JsonObject obj;
  obj["a"] = 1.0;
  obj["b"] = "text";
  const Json j(std::move(obj));
  EXPECT_DOUBLE_EQ(j.at("a").as_number(), 1.0);
  EXPECT_TRUE(j.contains("b"));
  EXPECT_FALSE(j.contains("c"));
  EXPECT_THROW(j.at("c"), JsonError);
}

TEST(Json, FieldDefaults) {
  JsonObject obj;
  obj["x"] = 2.0;
  obj["s"] = "v";
  obj["f"] = false;
  const Json j(std::move(obj));
  EXPECT_DOUBLE_EQ(j.number_or("x", 9.0), 2.0);
  EXPECT_DOUBLE_EQ(j.number_or("missing", 9.0), 9.0);
  EXPECT_EQ(j.string_or("s", "d"), "v");
  EXPECT_EQ(j.string_or("missing", "d"), "d");
  EXPECT_FALSE(j.bool_or("f", true));
  EXPECT_TRUE(j.bool_or("missing", true));
}

TEST(ParseJson, Scalars) {
  EXPECT_TRUE(parse_json("null").is_null());
  EXPECT_TRUE(parse_json("true").as_bool());
  EXPECT_FALSE(parse_json("false").as_bool());
  EXPECT_DOUBLE_EQ(parse_json("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(parse_json("-3.25e2").as_number(), -325.0);
  EXPECT_EQ(parse_json("\"hello\"").as_string(), "hello");
}

TEST(ParseJson, NestedStructure) {
  const Json j = parse_json(R"({"a": [1, 2, {"b": true}], "c": null})");
  EXPECT_EQ(j.at("a").as_array().size(), 3u);
  EXPECT_TRUE(j.at("a").as_array()[2].at("b").as_bool());
  EXPECT_TRUE(j.at("c").is_null());
}

TEST(ParseJson, StringEscapes) {
  EXPECT_EQ(parse_json(R"("line\nbreak\t\"q\" \\")").as_string(), "line\nbreak\t\"q\" \\");
  EXPECT_EQ(parse_json(R"("Aé")").as_string(), "A\xC3\xA9");
}

TEST(ParseJson, WhitespaceTolerant) {
  const Json j = parse_json("  { \"a\"\n :\t[ 1 , 2 ]  }  ");
  EXPECT_EQ(j.at("a").as_array().size(), 2u);
}

TEST(ParseJson, EmptyContainers) {
  EXPECT_TRUE(parse_json("{}").as_object().empty());
  EXPECT_TRUE(parse_json("[]").as_array().empty());
}

TEST(ParseJson, ErrorsCarryPosition) {
  try {
    parse_json("{\n  \"a\": tru\n}");
    FAIL() << "expected JsonError";
  } catch (const JsonError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(ParseJson, RejectsMalformedDocuments) {
  EXPECT_THROW(parse_json(""), JsonError);
  EXPECT_THROW(parse_json("{"), JsonError);
  EXPECT_THROW(parse_json("[1,]"), JsonError);
  EXPECT_THROW(parse_json("{\"a\" 1}"), JsonError);
  EXPECT_THROW(parse_json("{1: 2}"), JsonError);
  EXPECT_THROW(parse_json("\"unterminated"), JsonError);
  EXPECT_THROW(parse_json("12 34"), JsonError);
  EXPECT_THROW(parse_json("1.2.3"), JsonError);
  EXPECT_THROW(parse_json(R"({"a":1, "a":2})"), JsonError);
  EXPECT_THROW(parse_json(R"("bad \x escape")"), JsonError);
}

TEST(DumpJson, CompactAndStable) {
  JsonObject obj;
  obj["b"] = 2;
  obj["a"] = 1;
  EXPECT_EQ(Json(std::move(obj)).dump(), R"({"a":1,"b":2})");
}

TEST(DumpJson, PrettyPrinting) {
  JsonObject obj;
  obj["k"] = Json(JsonArray{Json(1)});
  const std::string pretty = Json(std::move(obj)).dump(2);
  EXPECT_EQ(pretty, "{\n  \"k\": [\n    1\n  ]\n}");
}

TEST(DumpJson, IntegersPrintWithoutDecimals) {
  EXPECT_EQ(Json(5.0).dump(), "5");
  EXPECT_EQ(Json(-12.0).dump(), "-12");
  EXPECT_EQ(Json(0.5).dump(), "0.5");
}

TEST(DumpJson, EscapesSpecials) {
  EXPECT_EQ(Json("a\"b\\c\nd").dump(), R"("a\"b\\c\nd")");
}

TEST(DumpJson, RejectsNonFiniteNumbers) {
  EXPECT_THROW(Json(std::numeric_limits<double>::infinity()).dump(), JsonError);
}

/// Round-trip property over a set of documents.
class JsonRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(JsonRoundTrip, ParseDumpParseIsIdentity) {
  const Json first = parse_json(GetParam());
  const Json second = parse_json(first.dump());
  EXPECT_EQ(first, second);
  EXPECT_EQ(first.dump(2), second.dump(2));
}

INSTANTIATE_TEST_SUITE_P(
    Documents, JsonRoundTrip,
    ::testing::Values("null", "true", "3.14159", "\"text with \\\"quotes\\\"\"",
                      "[1,[2,[3,[]]]]", R"({"nested":{"deep":{"x":[1,2,3]}}})",
                      R"({"mixed":[true,null,1.5,"s",{"k":[]}]})"));

}  // namespace
}  // namespace aarc::io
