#include "io/workflow_io.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "perf/analytic.h"
#include "perf/composite.h"
#include "perf/profile_table.h"
#include "platform/executor.h"
#include "support/contracts.h"
#include "workloads/catalog.h"

namespace aarc::io {
namespace {

TEST(ModelIo, AnalyticRoundTrip) {
  perf::AnalyticParams p;
  p.io_seconds = 2.5;
  p.serial_seconds = 7.0;
  p.parallel_seconds = 21.0;
  p.max_parallelism = 3.5;
  p.working_set_mb = 900.0;
  p.min_memory_mb = 300.0;
  p.pressure_coeff = 4.0;
  p.input_work_exp = 1.2;
  p.input_memory_exp = 0.4;
  const perf::AnalyticModel original(p);
  const auto restored = model_from_json(model_to_json(original));
  for (double cpu : {0.5, 2.0, 8.0}) {
    for (double mem : {512.0, 2048.0}) {
      EXPECT_DOUBLE_EQ(restored->mean_runtime(cpu, mem, 1.5),
                       original.mean_runtime(cpu, mem, 1.5));
    }
  }
  EXPECT_DOUBLE_EQ(restored->min_memory_mb(2.0), original.min_memory_mb(2.0));
}

TEST(ModelIo, CompositeRoundTrip) {
  std::vector<std::unique_ptr<perf::PerfModel>> stages;
  perf::AnalyticParams a;
  a.serial_seconds = 3.0;
  a.working_set_mb = 256.0;
  a.min_memory_mb = 128.0;
  stages.push_back(std::make_unique<perf::AnalyticModel>(a));
  a.serial_seconds = 5.0;
  stages.push_back(std::make_unique<perf::AnalyticModel>(a));
  const perf::CompositeModel original(std::move(stages));
  const auto restored = model_from_json(model_to_json(original));
  EXPECT_DOUBLE_EQ(restored->mean_runtime(1.0, 512.0, 1.0),
                   original.mean_runtime(1.0, 512.0, 1.0));
}

TEST(ModelIo, ProfileTableRoundTrip) {
  const perf::ProfileTableModel original({1.0, 2.0}, {512.0, 1024.0},
                                         {40.0, 30.0, 24.0, 20.0}, 1.5);
  const auto restored = model_from_json(model_to_json(original));
  EXPECT_DOUBLE_EQ(restored->mean_runtime(1.5, 768.0, 2.0),
                   original.mean_runtime(1.5, 768.0, 2.0));
}

TEST(ModelIo, UnknownTypeRejected) {
  EXPECT_THROW(model_from_json(parse_json(R"({"type": "magic"})")), JsonError);
  EXPECT_THROW(model_from_json(parse_json(R"({"no_type": 1})")), JsonError);
}

class WorkloadRoundTrip : public ::testing::TestWithParam<std::string> {};

TEST_P(WorkloadRoundTrip, PreservesStructureAndBehaviour) {
  const workloads::Workload original = workloads::make_by_name(GetParam());
  const workloads::Workload restored =
      workload_from_string(workload_to_string(original));

  EXPECT_EQ(restored.workflow.name(), original.workflow.name());
  EXPECT_EQ(restored.workflow.function_count(), original.workflow.function_count());
  EXPECT_EQ(restored.workflow.graph().edge_count(), original.workflow.graph().edge_count());
  EXPECT_DOUBLE_EQ(restored.slo_seconds, original.slo_seconds);
  EXPECT_EQ(restored.input_sensitive, original.input_sensitive);
  ASSERT_EQ(restored.input_classes.size(), original.input_classes.size());
  for (std::size_t i = 0; i < original.input_classes.size(); ++i) {
    EXPECT_EQ(restored.input_classes[i].input_class, original.input_classes[i].input_class);
    EXPECT_DOUBLE_EQ(restored.input_classes[i].scale, original.input_classes[i].scale);
  }

  // Behavioural equivalence: identical mean executions.
  platform::ExecutorOptions opts;
  opts.noise = perf::NoiseModel(0.0);
  const platform::Executor ex(std::make_unique<platform::DecoupledLinearPricing>(), opts);
  const auto cfg = platform::uniform_config(original.workflow.function_count(),
                                            {2.0, 2048.0});
  const auto a = ex.execute_mean(original.workflow, cfg);
  const auto b = ex.execute_mean(restored.workflow, cfg);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_DOUBLE_EQ(a.total_cost, b.total_cost);
}

INSTANTIATE_TEST_SUITE_P(PaperWorkloads, WorkloadRoundTrip,
                         ::testing::Values("chatbot", "ml_pipeline", "video_analysis"));

/// Run the loader on a bad document and return the JsonError message (the
/// loader must throw; anything else fails the test).
std::string load_error(const std::string& text) {
  try {
    workload_from_string(text);
  } catch (const JsonError& e) {
    return e.what();
  }
  ADD_FAILURE() << "document was accepted: " << text;
  return "";
}

TEST(WorkloadIo, RejectsBadDocuments) {
  EXPECT_THROW(workload_from_string("{}"), JsonError);
  // Non-positive SLO.
  EXPECT_THROW(workload_from_string(R"({
    "name": "bad", "slo_seconds": 0,
    "functions": [{"name": "a", "model": {"type": "analytic", "serial_seconds": 1}}],
    "edges": []})"),
               support::ContractViolation);
  // Bad input class name.
  EXPECT_THROW(workload_from_string(R"({
    "name": "bad", "slo_seconds": 10,
    "functions": [{"name": "a", "model": {"type": "analytic", "serial_seconds": 1}}],
    "edges": [], "input_classes": [{"class": "gigantic", "scale": 2}]})"),
               JsonError);
}

TEST(WorkloadIo, RejectsSchemaViolationsWithActionableMessages) {
  // Cyclic edges: named as such, not a bare DAG-layer contract failure.
  EXPECT_NE(load_error(R"({
    "name": "bad", "slo_seconds": 10,
    "functions": [
      {"name": "a", "model": {"type": "analytic", "serial_seconds": 1}},
      {"name": "b", "model": {"type": "analytic", "serial_seconds": 1}}],
    "edges": [["a", "b"], ["b", "a"]]})")
                .find("cyclic"),
            std::string::npos);
  // Unknown edge endpoint: the message names the offending function.
  EXPECT_NE(load_error(R"({
    "name": "bad", "slo_seconds": 10,
    "functions": [{"name": "a", "model": {"type": "analytic", "serial_seconds": 1}}],
    "edges": [["a", "ghost"]]})")
                .find("unknown function 'ghost'"),
            std::string::npos);
  // Duplicate function name.
  EXPECT_NE(load_error(R"({
    "name": "bad", "slo_seconds": 10,
    "functions": [
      {"name": "a", "model": {"type": "analytic", "serial_seconds": 1}},
      {"name": "a", "model": {"type": "analytic", "serial_seconds": 2}}],
    "edges": []})")
                .find("duplicate function name 'a'"),
            std::string::npos);
  // Self-loop.
  EXPECT_NE(load_error(R"({
    "name": "bad", "slo_seconds": 10,
    "functions": [{"name": "a", "model": {"type": "analytic", "serial_seconds": 1}}],
    "edges": [["a", "a"]]})")
                .find("self-loop"),
            std::string::npos);
  // Empty function list.
  EXPECT_NE(load_error(R"({
    "name": "bad", "slo_seconds": 10, "functions": [], "edges": []})")
                .find("no functions"),
            std::string::npos);
  // Empty function name.
  EXPECT_NE(load_error(R"({
    "name": "bad", "slo_seconds": 10,
    "functions": [{"name": "", "model": {"type": "analytic", "serial_seconds": 1}}],
    "edges": []})")
                .find("empty name"),
            std::string::npos);
}

/// The committed bad-workflow fixtures (mirroring bad_chaos_profile.json)
/// must keep failing for their intended reason.
std::string bad_fixture_path(const std::string& name) {
  const std::string self = __FILE__;
  const auto pos = self.rfind("/io/");
  return self.substr(0, pos) + "/data/" + name + ".json";
}

TEST(WorkloadIo, BadWorkflowFixturesFailForTheirIntendedReason) {
  EXPECT_NE(load_error(read_text_file(bad_fixture_path("bad_workflow_cycle")))
                .find("cyclic"),
            std::string::npos);
  EXPECT_NE(
      load_error(read_text_file(bad_fixture_path("bad_workflow_unknown_edge")))
          .find("unknown function"),
      std::string::npos);
  EXPECT_NE(
      load_error(read_text_file(bad_fixture_path("bad_workflow_duplicate_function")))
          .find("duplicate function name"),
      std::string::npos);
}

TEST(ConfigIo, RoundTrip) {
  const workloads::Workload w = workloads::make_by_name("chatbot");
  platform::WorkflowConfig config(w.workflow.function_count());
  for (std::size_t i = 0; i < config.size(); ++i) {
    config[i] = {1.0 + 0.1 * static_cast<double>(i), 512.0 + 64.0 * static_cast<double>(i)};
  }
  const auto restored =
      config_from_json(w.workflow, config_to_json(w.workflow, config));
  ASSERT_EQ(restored.size(), config.size());
  for (std::size_t i = 0; i < config.size(); ++i) EXPECT_EQ(restored[i], config[i]);
}

TEST(ConfigIo, MatchesByNameNotOrder) {
  const workloads::Workload w = workloads::make_by_name("chatbot");
  // A document listing only some functions, or twice, is rejected.
  const Json missing = parse_json(R"({"workflow": "chatbot", "functions": [
      {"name": "preprocess", "vcpu": 1, "memory_mb": 512}]})");
  EXPECT_THROW(config_from_json(w.workflow, missing), JsonError);
}

TEST(ConfigIo, RejectsDuplicatesAndUnknowns) {
  const workloads::Workload w = workloads::make_by_name("chatbot");
  const auto base = config_to_json(
      w.workflow, platform::uniform_config(w.workflow.function_count(), {1.0, 512.0}));
  // Duplicate entry.
  Json dup = base;
  dup.as_object()["functions"].as_array().push_back(
      parse_json(R"({"name": "preprocess", "vcpu": 2, "memory_mb": 1024})"));
  EXPECT_THROW(config_from_json(w.workflow, dup), JsonError);
  // Unknown function name.
  Json unknown = base;
  unknown.as_object()["functions"].as_array()[0].as_object()["name"] = "ghost";
  EXPECT_THROW(config_from_json(w.workflow, unknown), support::ContractViolation);
}

TEST(FileIo, WriteReadRoundTrip) {
  const std::string path = "/tmp/aarc_io_test_file.json";
  write_text_file(path, "{\"x\": 1}");
  EXPECT_EQ(read_text_file(path), "{\"x\": 1}");
  std::remove(path.c_str());
}

TEST(FileIo, MissingFileThrows) {
  EXPECT_THROW(read_text_file("/tmp/definitely_missing_aarc_file.json"), JsonError);
}

}  // namespace
}  // namespace aarc::io
