#include "io/trace_io.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "perf/analytic.h"
#include "support/contracts.h"

namespace aarc::io {
namespace {

std::unique_ptr<perf::PerfModel> model(double serial, double min_mem = 128.0) {
  perf::AnalyticParams p;
  p.serial_seconds = serial;
  p.working_set_mb = std::max(256.0, min_mem);
  p.min_memory_mb = min_mem;
  p.pressure_coeff = 0.0;
  return std::make_unique<perf::AnalyticModel>(p);
}

platform::Workflow chain() {
  platform::Workflow wf("chain");
  wf.add_function("first", model(4.0));
  wf.add_function("second", model(6.0));
  wf.add_edge("first", "second");
  return wf;
}

platform::Executor noiseless() {
  platform::ExecutorOptions opts;
  opts.noise = perf::NoiseModel(0.0);
  return platform::Executor(std::make_unique<platform::DecoupledLinearPricing>(), opts);
}

search::SearchTrace sample_trace() {
  search::SearchTrace trace;
  search::Sample s;
  s.index = 0;
  s.makespan = 10.0;
  s.cost = 5.5;
  s.wall_seconds = 10.0;
  s.wall_cost = 5.5;
  s.feasible = true;
  trace.add(s);
  s.index = 1;
  s.makespan = std::numeric_limits<double>::infinity();
  s.cost = std::numeric_limits<double>::infinity();
  s.wall_seconds = 3.0;
  s.wall_cost = 1.0;
  s.failed = true;
  s.feasible = false;
  trace.add(s);
  return trace;
}

TEST(TraceCsv, OneRowPerSampleWithHeader) {
  const std::string csv = trace_to_csv(sample_trace());
  EXPECT_NE(csv.find("index,makespan,cost"), std::string::npos);
  EXPECT_NE(csv.find("0,10.0000,5.5000,10.0000,5.5000,0,1"), std::string::npos);
  EXPECT_NE(csv.find("1,inf,inf,3.0000,1.0000,1,0"), std::string::npos);
}

TEST(TraceCsv, EmptyTraceIsJustHeader) {
  const std::string csv = trace_to_csv(search::SearchTrace{});
  EXPECT_EQ(csv,
            "index,makespan,cost,wall_seconds,wall_cost,failed,feasible,attempts,"
            "cache_hit\n");
}

TEST(ExecutionCsv, ReportsPerInvocationRows) {
  const platform::Workflow wf = chain();
  const auto res = noiseless().execute_mean(wf, platform::uniform_config(2, {1.0, 512.0}));
  const std::string csv = execution_to_csv(wf, res);
  EXPECT_NE(csv.find("first,0.0000,4.0000,4.0000"), std::string::npos);
  EXPECT_NE(csv.find("second,4.0000,6.0000,10.0000"), std::string::npos);
}

TEST(ExecutionCsv, MarksOomRows) {
  const platform::Workflow wf = chain();
  auto cfg = platform::uniform_config(2, {1.0, 512.0});
  cfg[1].memory_mb = 100.0;
  const auto res = noiseless().execute_mean(wf, cfg);
  const std::string csv = execution_to_csv(wf, res);
  EXPECT_NE(csv.find("second,4.0000,inf,inf,inf,1"), std::string::npos);
}

TEST(ExecutionCsv, RejectsMismatchedWorkflow) {
  const platform::Workflow wf = chain();
  platform::ExecutionResult wrong;
  wrong.invocations.resize(5);
  EXPECT_THROW(execution_to_csv(wf, wrong), support::ContractViolation);
}

TEST(Gantt, BarsSpanTheTimeline) {
  const platform::Workflow wf = chain();
  const auto res = noiseless().execute_mean(wf, platform::uniform_config(2, {1.0, 512.0}));
  const std::string gantt = execution_gantt(wf, res, 24);
  // Two lines, each naming a function and drawing #'s.
  EXPECT_NE(gantt.find("first"), std::string::npos);
  EXPECT_NE(gantt.find("second"), std::string::npos);
  EXPECT_NE(gantt.find('#'), std::string::npos);
  EXPECT_NE(gantt.find("0.0-4.0s"), std::string::npos);
  EXPECT_NE(gantt.find("4.0-10.0s"), std::string::npos);
}

TEST(Gantt, SequentialFunctionsDontOverlap) {
  const platform::Workflow wf = chain();
  const auto res = noiseless().execute_mean(wf, platform::uniform_config(2, {1.0, 512.0}));
  const std::string gantt = execution_gantt(wf, res, 24);
  // The second bar starts after the first ends: the "second" row begins with
  // spaces inside its lane.
  const auto second_line = gantt.find("second |");
  ASSERT_NE(second_line, std::string::npos);
  const std::string lane = gantt.substr(second_line + 8, 10);
  EXPECT_EQ(lane.substr(0, 5), "     ");
}

TEST(Gantt, MarksOomFunctions) {
  const platform::Workflow wf = chain();
  auto cfg = platform::uniform_config(2, {1.0, 512.0});
  cfg[1].memory_mb = 100.0;
  const auto res = noiseless().execute_mean(wf, cfg);
  EXPECT_NE(execution_gantt(wf, res).find("OOM"), std::string::npos);
}

TEST(Gantt, RejectsNarrowWidth) {
  const platform::Workflow wf = chain();
  const auto res = noiseless().execute_mean(wf, platform::uniform_config(2, {1.0, 512.0}));
  EXPECT_THROW(execution_gantt(wf, res, 5), support::ContractViolation);
}

}  // namespace
}  // namespace aarc::io
