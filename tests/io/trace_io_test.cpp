#include "io/trace_io.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "perf/analytic.h"
#include "support/contracts.h"

namespace aarc::io {
namespace {

std::unique_ptr<perf::PerfModel> model(double serial, double min_mem = 128.0) {
  perf::AnalyticParams p;
  p.serial_seconds = serial;
  p.working_set_mb = std::max(256.0, min_mem);
  p.min_memory_mb = min_mem;
  p.pressure_coeff = 0.0;
  return std::make_unique<perf::AnalyticModel>(p);
}

platform::Workflow chain() {
  platform::Workflow wf("chain");
  wf.add_function("first", model(4.0));
  wf.add_function("second", model(6.0));
  wf.add_edge("first", "second");
  return wf;
}

platform::Executor noiseless() {
  platform::ExecutorOptions opts;
  opts.noise = perf::NoiseModel(0.0);
  return platform::Executor(std::make_unique<platform::DecoupledLinearPricing>(), opts);
}

search::SearchTrace sample_trace() {
  search::SearchTrace trace;
  search::Sample s;
  s.index = 0;
  s.makespan = 10.0;
  s.cost = 5.5;
  s.wall_seconds = 10.0;
  s.wall_cost = 5.5;
  s.feasible = true;
  trace.add(s);
  s.index = 1;
  s.makespan = std::numeric_limits<double>::infinity();
  s.cost = std::numeric_limits<double>::infinity();
  s.wall_seconds = 3.0;
  s.wall_cost = 1.0;
  s.failed = true;
  s.feasible = false;
  trace.add(s);
  return trace;
}

TEST(TraceCsv, OneRowPerSampleWithHeader) {
  const std::string csv = trace_to_csv(sample_trace());
  EXPECT_NE(csv.find("index,makespan,cost"), std::string::npos);
  EXPECT_NE(csv.find("0,10.0000,5.5000,10.0000,5.5000,0,1"), std::string::npos);
  EXPECT_NE(csv.find("1,inf,inf,3.0000,1.0000,1,0"), std::string::npos);
}

TEST(TraceCsv, EmptyTraceIsJustHeader) {
  const std::string csv = trace_to_csv(search::SearchTrace{});
  EXPECT_EQ(csv,
            "index,makespan,cost,wall_seconds,wall_cost,failed,feasible,attempts,"
            "cache_hit\n");
}

TEST(ExecutionCsv, ReportsPerInvocationRows) {
  const platform::Workflow wf = chain();
  const auto res = noiseless().execute_mean(wf, platform::uniform_config(2, {1.0, 512.0}));
  const std::string csv = execution_to_csv(wf, res);
  EXPECT_NE(csv.find("first,0.0000,4.0000,4.0000"), std::string::npos);
  EXPECT_NE(csv.find("second,4.0000,6.0000,10.0000"), std::string::npos);
}

TEST(ExecutionCsv, MarksOomRows) {
  const platform::Workflow wf = chain();
  auto cfg = platform::uniform_config(2, {1.0, 512.0});
  cfg[1].memory_mb = 100.0;
  const auto res = noiseless().execute_mean(wf, cfg);
  const std::string csv = execution_to_csv(wf, res);
  EXPECT_NE(csv.find("second,4.0000,inf,inf,inf,1"), std::string::npos);
}

TEST(ExecutionCsv, RejectsMismatchedWorkflow) {
  const platform::Workflow wf = chain();
  platform::ExecutionResult wrong;
  wrong.invocations.resize(5);
  EXPECT_THROW(execution_to_csv(wf, wrong), support::ContractViolation);
}

TEST(ServingCsv, TimelineExportsOneRowPerRetainedOutcome) {
  serving::StreamingReport report;
  serving::RequestOutcome ok;
  ok.index = 0;
  ok.arrival = 1.0;
  ok.completion = 3.5;
  ok.cost = 0.25;
  ok.cold_starts = 1;
  ok.invocations = 2;
  serving::RequestOutcome bad;
  bad.index = 1;
  bad.arrival = 2.0;
  bad.completion = 2.0;
  bad.failed = true;
  bad.rejected = true;
  report.outcomes = {ok, bad};
  const std::string csv = serving_timeline_to_csv(report);
  EXPECT_NE(csv.find("index,arrival,completion,latency,cost"), std::string::npos);
  EXPECT_NE(csv.find("2.5000"), std::string::npos);  // ok's latency
  EXPECT_NE(csv.find(",1,1"), std::string::npos);    // bad: failed=1, rejected=1
  // Header plus one line per outcome.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
}

TEST(ServingCsv, WindowSeriesExportsDerivedColumns) {
  serving::StreamingReport report;
  serving::WindowStat w;
  w.start = 0.0;
  w.width = 10.0;
  w.arrivals = 5;
  w.completed = 4;
  w.failed = 1;
  w.slo_violations = 2;
  w.latency_sum = 8.0;
  w.max_latency = 4.0;
  report.windows = {w};
  const std::string csv = serving_windows_to_csv(report);
  EXPECT_NE(csv.find("start,width,arrivals,completed,failed"), std::string::npos);
  EXPECT_NE(csv.find("0.5000"), std::string::npos);  // throughput: 5 / 10 s
  EXPECT_NE(csv.find("2.0000"), std::string::npos);  // mean latency: 8 / 4
  EXPECT_NE(csv.find("0.6000"), std::string::npos);  // attainment: 1 - 2/5
}

TEST(ArrivalTrace, JsonRoundTripPreservesTheStream) {
  const std::vector<serving::Arrival> trace{{0.5, 1.0}, {1.25, 2.0}, {9.0, 0.75}};
  const auto round = arrival_trace_from_json(arrival_trace_to_json(trace));
  ASSERT_EQ(round.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_DOUBLE_EQ(round[i].time, trace[i].time);
    EXPECT_DOUBLE_EQ(round[i].input_scale, trace[i].input_scale);
  }
}

TEST(ArrivalTrace, ScaleDefaultsToOneWhenOmitted) {
  JsonObject entry;
  entry["t"] = Json(2.0);
  JsonArray arr;
  arr.push_back(Json(std::move(entry)));
  JsonObject root;
  root["arrivals"] = Json(std::move(arr));
  const auto trace = arrival_trace_from_json(Json(std::move(root)));
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_DOUBLE_EQ(trace[0].input_scale, 1.0);
}

TEST(ArrivalTrace, RejectsUnsortedAndNegativeInputs) {
  EXPECT_THROW(
      arrival_trace_from_json(arrival_trace_to_json({{5.0, 1.0}, {1.0, 1.0}})),
      support::ContractViolation);
  EXPECT_THROW(
      arrival_trace_from_json(arrival_trace_to_json({{-1.0, 1.0}})),
      support::ContractViolation);
  EXPECT_THROW(
      arrival_trace_from_json(arrival_trace_to_json({{1.0, -2.0}})),
      support::ContractViolation);
}

TEST(Gantt, BarsSpanTheTimeline) {
  const platform::Workflow wf = chain();
  const auto res = noiseless().execute_mean(wf, platform::uniform_config(2, {1.0, 512.0}));
  const std::string gantt = execution_gantt(wf, res, 24);
  // Two lines, each naming a function and drawing #'s.
  EXPECT_NE(gantt.find("first"), std::string::npos);
  EXPECT_NE(gantt.find("second"), std::string::npos);
  EXPECT_NE(gantt.find('#'), std::string::npos);
  EXPECT_NE(gantt.find("0.0-4.0s"), std::string::npos);
  EXPECT_NE(gantt.find("4.0-10.0s"), std::string::npos);
}

TEST(Gantt, SequentialFunctionsDontOverlap) {
  const platform::Workflow wf = chain();
  const auto res = noiseless().execute_mean(wf, platform::uniform_config(2, {1.0, 512.0}));
  const std::string gantt = execution_gantt(wf, res, 24);
  // The second bar starts after the first ends: the "second" row begins with
  // spaces inside its lane.
  const auto second_line = gantt.find("second |");
  ASSERT_NE(second_line, std::string::npos);
  const std::string lane = gantt.substr(second_line + 8, 10);
  EXPECT_EQ(lane.substr(0, 5), "     ");
}

TEST(Gantt, MarksOomFunctions) {
  const platform::Workflow wf = chain();
  auto cfg = platform::uniform_config(2, {1.0, 512.0});
  cfg[1].memory_mb = 100.0;
  const auto res = noiseless().execute_mean(wf, cfg);
  EXPECT_NE(execution_gantt(wf, res).find("OOM"), std::string::npos);
}

TEST(Gantt, RejectsNarrowWidth) {
  const platform::Workflow wf = chain();
  const auto res = noiseless().execute_mean(wf, platform::uniform_config(2, {1.0, 512.0}));
  EXPECT_THROW(execution_gantt(wf, res, 5), support::ContractViolation);
}

}  // namespace
}  // namespace aarc::io
