// The committed workload fixtures under data/ must stay loadable and
// behaviourally identical to the in-code builders — they are the files the
// README and CLI docs point users at.
#include <gtest/gtest.h>

#include <string>

#include "io/workflow_io.h"
#include "platform/executor.h"
#include "workloads/catalog.h"

namespace aarc::io {
namespace {

/// data/ lives two levels above this source file (tests/io/ -> repo root).
std::string data_path(const std::string& name) {
  const std::string self = __FILE__;
  const auto pos = self.rfind("/tests/");
  return self.substr(0, pos) + "/data/" + name + ".json";
}

class Fixtures : public ::testing::TestWithParam<std::string> {};

TEST_P(Fixtures, LoadsAndValidates) {
  const auto w = workload_from_string(read_text_file(data_path(GetParam())));
  EXPECT_NO_THROW(w.workflow.validate());
  EXPECT_EQ(w.workflow.name(), GetParam());
  EXPECT_GT(w.slo_seconds, 0.0);
}

TEST_P(Fixtures, MatchesTheBuilderBehaviourally) {
  const auto from_file = workload_from_string(read_text_file(data_path(GetParam())));
  const auto from_code = workloads::make_by_name(GetParam());

  ASSERT_EQ(from_file.workflow.function_count(), from_code.workflow.function_count());
  EXPECT_DOUBLE_EQ(from_file.slo_seconds, from_code.slo_seconds);

  platform::ExecutorOptions opts;
  opts.noise = perf::NoiseModel(0.0);
  const platform::Executor ex(std::make_unique<platform::DecoupledLinearPricing>(), opts);
  const auto cfg = platform::uniform_config(from_code.workflow.function_count(),
                                            {4.0, 4096.0});
  const auto a = ex.execute_mean(from_file.workflow, cfg);
  const auto b = ex.execute_mean(from_code.workflow, cfg);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_DOUBLE_EQ(a.total_cost, b.total_cost);
}

INSTANTIATE_TEST_SUITE_P(All, Fixtures,
                         ::testing::Values("chatbot", "ml_pipeline", "video_analysis",
                                           "data_analytics"));

}  // namespace
}  // namespace aarc::io
