#include "adaptive/controller.h"

#include <gtest/gtest.h>

#include "platform/executor.h"
#include "workloads/synthetic.h"

namespace aarc::adaptive {
namespace {

workloads::Workload small_workload() {
  workloads::SyntheticOptions opts;
  opts.pattern = workloads::Pattern::Chain;
  opts.layers = 1;
  opts.seed = 5;
  opts.slo_headroom = 3.0;
  return workloads::make_synthetic(opts);
}

ControllerOptions quick_options() {
  ControllerOptions opts;
  opts.monitor.min_observations = 3;
  opts.min_observations_between_reconfigs = 3;
  return opts;
}

TEST(Controller, DeploysAnInitialConfiguration) {
  const workloads::Workload w = small_workload();
  const platform::Executor ex;
  const AdaptiveController controller(w, ex, platform::ConfigGrid{}, quick_options());
  EXPECT_EQ(controller.current_config().size(), w.workflow.function_count());
  EXPECT_EQ(controller.reconfigurations(), 0u);
  EXPECT_GT(controller.scheduling_samples(), 0u);
  EXPECT_DOUBLE_EQ(controller.current_scale_estimate(), 1.0);
}

TEST(Controller, StableTrafficNeverReconfigures) {
  const workloads::Workload w = small_workload();
  const platform::Executor ex;
  AdaptiveController controller(w, ex, platform::ConfigGrid{}, quick_options());
  const double expected = controller.monitor().expected();
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(controller.observe(expected * (1.0 + 0.02 * ((i % 3) - 1))));
  }
  EXPECT_EQ(controller.reconfigurations(), 0u);
}

TEST(Controller, SustainedSlowdownTriggersReconfiguration) {
  const workloads::Workload w = small_workload();
  const platform::Executor ex;
  AdaptiveController controller(w, ex, platform::ConfigGrid{}, quick_options());
  const double expected = controller.monitor().expected();
  bool reconfigured = false;
  for (int i = 0; i < 50 && !reconfigured; ++i) {
    reconfigured = controller.observe(expected * 1.6);
  }
  EXPECT_TRUE(reconfigured);
  EXPECT_EQ(controller.reconfigurations(), 1u);
  // The controller's scale estimate grew to match the slowdown.
  EXPECT_GT(controller.current_scale_estimate(), 1.2);
}

TEST(Controller, SpeedupReclaimsResources) {
  const workloads::Workload w = small_workload();
  const platform::Executor ex;
  AdaptiveController controller(w, ex, platform::ConfigGrid{}, quick_options());
  const double expected = controller.monitor().expected();
  bool reconfigured = false;
  for (int i = 0; i < 50 && !reconfigured; ++i) {
    reconfigured = controller.observe(expected * 0.3);
  }
  EXPECT_TRUE(reconfigured);
  EXPECT_LT(controller.current_scale_estimate(), 0.7);
}

TEST(Controller, CoolDownLimitsReconfigurationRate) {
  const workloads::Workload w = small_workload();
  const platform::Executor ex;
  ControllerOptions opts = quick_options();
  opts.min_observations_between_reconfigs = 20;
  AdaptiveController controller(w, ex, platform::ConfigGrid{}, opts);
  const double expected = controller.monitor().expected();
  std::size_t reconfigs = 0;
  for (int i = 0; i < 60; ++i) {
    if (controller.observe(expected * 1.6)) ++reconfigs;
  }
  EXPECT_LE(reconfigs, 3u);
}

TEST(Controller, MonitorExpectationFollowsTheNewConfig) {
  const workloads::Workload w = small_workload();
  const platform::Executor ex;
  AdaptiveController controller(w, ex, platform::ConfigGrid{}, quick_options());
  const double before = controller.monitor().expected();
  bool reconfigured = false;
  for (int i = 0; i < 50 && !reconfigured; ++i) {
    reconfigured = controller.observe(before * 1.6);
  }
  ASSERT_TRUE(reconfigured);
  // After re-scheduling at a larger scale the expected level is above the
  // old one (more work per request).
  EXPECT_GT(controller.monitor().expected(), before);
  EXPECT_EQ(controller.monitor().observations(), 0u);
}

}  // namespace
}  // namespace aarc::adaptive
