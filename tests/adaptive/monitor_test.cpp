#include "adaptive/monitor.h"

#include <gtest/gtest.h>

#include "support/contracts.h"

namespace aarc::adaptive {
namespace {

MonitorOptions quick() {
  MonitorOptions opts;
  opts.min_observations = 3;
  return opts;
}

TEST(Monitor, VerdictNames) {
  EXPECT_STREQ(to_string(DriftVerdict::Healthy), "healthy");
  EXPECT_STREQ(to_string(DriftVerdict::SloRisk), "slo-risk");
  EXPECT_STREQ(to_string(DriftVerdict::DriftedSlower), "drifted-slower");
  EXPECT_STREQ(to_string(DriftVerdict::DriftedFaster), "drifted-faster");
}

TEST(Monitor, RejectsBadConstruction) {
  EXPECT_THROW(DriftMonitor(0.0, 100.0), support::ContractViolation);
  EXPECT_THROW(DriftMonitor(10.0, 0.0), support::ContractViolation);
  MonitorOptions bad;
  bad.ewma_alpha = 0.0;
  EXPECT_THROW(DriftMonitor(10.0, 100.0, bad), support::ContractViolation);
  bad = MonitorOptions{};
  bad.drift_up_factor = 1.0;
  EXPECT_THROW(DriftMonitor(10.0, 100.0, bad), support::ContractViolation);
  bad = MonitorOptions{};
  bad.drift_down_factor = 1.0;
  EXPECT_THROW(DriftMonitor(10.0, 100.0, bad), support::ContractViolation);
}

TEST(Monitor, HealthyUntilMinObservations) {
  DriftMonitor m(10.0, 100.0, quick());
  m.observe(95.0);  // way over, but only one observation
  EXPECT_EQ(m.verdict(), DriftVerdict::Healthy);
  EXPECT_DOUBLE_EQ(m.estimated_drift_ratio(), 1.0);
  m.observe(95.0);
  EXPECT_EQ(m.verdict(), DriftVerdict::Healthy);
  m.observe(95.0);
  EXPECT_NE(m.verdict(), DriftVerdict::Healthy);
}

TEST(Monitor, SustainedFailuresFlagSloRisk) {
  DriftMonitor m(50.0, 100.0, quick());
  // Only failures arrive: no runtime observations at all, yet the verdict
  // must escalate — a failed request is an SLO violation.
  for (int i = 0; i < 10; ++i) m.observe_failure();
  EXPECT_EQ(m.verdict(), DriftVerdict::SloRisk);
  EXPECT_TRUE(m.should_reconfigure());
  EXPECT_GT(m.failure_ewma(), 0.5);
}

TEST(Monitor, RareFailuresAmongSuccessesStayHealthy) {
  DriftMonitor m(50.0, 100.0, quick());
  for (int i = 0; i < 50; ++i) {
    if (i % 25 == 0) {
      m.observe_failure();
    } else {
      m.observe(50.0);
    }
  }
  // 2% failures, well under the 10% threshold: successes decay the level.
  EXPECT_EQ(m.verdict(), DriftVerdict::Healthy);
  EXPECT_LT(m.failure_ewma(), 0.1);
}

TEST(Monitor, ResetClearsFailureLevel) {
  DriftMonitor m(50.0, 100.0, quick());
  for (int i = 0; i < 10; ++i) m.observe_failure();
  EXPECT_EQ(m.verdict(), DriftVerdict::SloRisk);
  m.reset(50.0);
  EXPECT_DOUBLE_EQ(m.failure_ewma(), 0.0);
  EXPECT_EQ(m.verdict(), DriftVerdict::Healthy);
}

TEST(Monitor, RejectsBadFailureOptions) {
  MonitorOptions bad;
  bad.failure_ewma_alpha = 0.0;
  EXPECT_THROW(DriftMonitor(10.0, 100.0, bad), support::ContractViolation);
  bad = MonitorOptions{};
  bad.failure_rate_threshold = 0.0;
  EXPECT_THROW(DriftMonitor(10.0, 100.0, bad), support::ContractViolation);
}

TEST(Monitor, StableRuntimesStayHealthy) {
  DriftMonitor m(50.0, 100.0, quick());
  for (int i = 0; i < 20; ++i) m.observe(50.0 + (i % 2 == 0 ? 1.0 : -1.0));
  EXPECT_EQ(m.verdict(), DriftVerdict::Healthy);
  EXPECT_FALSE(m.should_reconfigure());
  EXPECT_NEAR(m.ewma(), 50.0, 1.5);
}

TEST(Monitor, SloRiskDetected) {
  DriftMonitor m(50.0, 100.0, quick());
  for (int i = 0; i < 20; ++i) m.observe(95.0);
  EXPECT_EQ(m.verdict(), DriftVerdict::SloRisk);
  EXPECT_TRUE(m.should_reconfigure());
}

TEST(Monitor, SlowDriftDetectedBelowSloRisk) {
  DriftMonitor m(50.0, 200.0, quick());  // loose SLO: drift fires first
  for (int i = 0; i < 20; ++i) m.observe(70.0);  // 1.4x expected
  EXPECT_EQ(m.verdict(), DriftVerdict::DriftedSlower);
  EXPECT_NEAR(m.estimated_drift_ratio(), 1.4, 0.05);
}

TEST(Monitor, FastDriftDetected) {
  DriftMonitor m(50.0, 200.0, quick());
  for (int i = 0; i < 20; ++i) m.observe(20.0);  // 0.4x expected
  EXPECT_EQ(m.verdict(), DriftVerdict::DriftedFaster);
  EXPECT_LT(m.estimated_drift_ratio(), 0.5);
}

TEST(Monitor, EwmaTracksLevelShift) {
  DriftMonitor m(50.0, 500.0, quick());
  for (int i = 0; i < 10; ++i) m.observe(50.0);
  EXPECT_NEAR(m.ewma(), 50.0, 0.1);
  for (int i = 0; i < 30; ++i) m.observe(100.0);
  EXPECT_NEAR(m.ewma(), 100.0, 2.0);
}

TEST(Monitor, SingleOutlierDoesNotTrip) {
  DriftMonitor m(50.0, 200.0, quick());
  for (int i = 0; i < 10; ++i) m.observe(50.0);
  m.observe(100.0);  // one spike, alpha 0.2 -> ewma = 60 < 1.25*50 = 62.5
  EXPECT_EQ(m.verdict(), DriftVerdict::Healthy);
}

TEST(Monitor, ResetReArms) {
  DriftMonitor m(50.0, 200.0, quick());
  for (int i = 0; i < 10; ++i) m.observe(80.0);
  EXPECT_TRUE(m.should_reconfigure());
  m.reset(80.0);
  EXPECT_EQ(m.observations(), 0u);
  EXPECT_EQ(m.verdict(), DriftVerdict::Healthy);
  for (int i = 0; i < 10; ++i) m.observe(80.0);
  EXPECT_FALSE(m.should_reconfigure());
}

TEST(Monitor, RejectsNonPositiveObservation) {
  DriftMonitor m(50.0, 200.0);
  EXPECT_THROW(m.observe(0.0), support::ContractViolation);
}

}  // namespace
}  // namespace aarc::adaptive
