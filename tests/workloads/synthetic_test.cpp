#include "workloads/synthetic.h"

#include <gtest/gtest.h>

#include "dag/critical_path.h"
#include "platform/executor.h"
#include "support/contracts.h"

namespace aarc::workloads {
namespace {

TEST(Synthetic, PatternNames) {
  EXPECT_EQ(to_string(Pattern::Scatter), "scatter");
  EXPECT_EQ(to_string(Pattern::Broadcast), "broadcast");
  EXPECT_EQ(to_string(Pattern::Chain), "chain");
  EXPECT_EQ(to_string(Pattern::Random), "random");
}

TEST(Synthetic, ChainHasLinearTopology) {
  SyntheticOptions opts;
  opts.pattern = Pattern::Chain;
  opts.layers = 3;
  const Workload w = make_synthetic(opts);
  const auto& g = w.workflow.graph();
  EXPECT_EQ(g.node_count(), 5u);  // source + 3 stages + sink
  EXPECT_EQ(g.edge_count(), 4u);
  for (dag::NodeId id = 0; id < g.node_count(); ++id) {
    EXPECT_LE(g.successors(id).size(), 1u);
    EXPECT_LE(g.predecessors(id).size(), 1u);
  }
}

TEST(Synthetic, BroadcastIsFullyConnectedBetweenLayers) {
  SyntheticOptions opts;
  opts.pattern = Pattern::Broadcast;
  opts.layers = 2;
  opts.width = 3;
  const Workload w = make_synthetic(opts);
  const auto& g = w.workflow.graph();
  // source->3 + 3x3 + 3->sink = 15 edges.
  EXPECT_EQ(g.edge_count(), 15u);
}

TEST(Synthetic, ScatterKeepsParallelLanes) {
  SyntheticOptions opts;
  opts.pattern = Pattern::Scatter;
  opts.layers = 3;
  opts.width = 4;
  const Workload w = make_synthetic(opts);
  const auto& g = w.workflow.graph();
  // Interior nodes have fan-in 1 (lanes), the sink gathers all lanes.
  EXPECT_EQ(g.predecessors(*g.find_node("sink")).size(), 4u);
  EXPECT_EQ(g.successors(*g.find_node("f_1_2")).size(), 1u);
}

TEST(Synthetic, GeneratedWorkflowsValidate) {
  for (auto pattern : {Pattern::Scatter, Pattern::Broadcast, Pattern::Chain, Pattern::Random}) {
    SyntheticOptions opts;
    opts.pattern = pattern;
    const Workload w = make_synthetic(opts);
    EXPECT_NO_THROW(w.workflow.validate()) << to_string(pattern);
  }
}

TEST(Synthetic, SloDerivedFromBaseMakespan) {
  SyntheticOptions opts;
  opts.slo_headroom = 2.0;
  const Workload w = make_synthetic(opts);
  platform::ExecutorOptions eo;
  eo.noise = perf::NoiseModel(0.0);
  const platform::Executor ex(std::make_unique<platform::DecoupledLinearPricing>(), eo);
  const auto cfg = platform::uniform_config(w.workflow.function_count(), {10.0, 10240.0});
  const double base = ex.execute_mean(w.workflow, cfg).makespan;
  EXPECT_NEAR(w.slo_seconds, 2.0 * base, 1e-9);
}

TEST(Synthetic, DeterministicForSeed) {
  SyntheticOptions opts;
  opts.seed = 99;
  const Workload a = make_synthetic(opts);
  const Workload b = make_synthetic(opts);
  EXPECT_EQ(a.workflow.name(), b.workflow.name());
  EXPECT_EQ(a.workflow.function_count(), b.workflow.function_count());
  EXPECT_EQ(a.workflow.graph().edge_count(), b.workflow.graph().edge_count());
  EXPECT_DOUBLE_EQ(a.slo_seconds, b.slo_seconds);
}

TEST(Synthetic, DifferentSeedsDiffer) {
  SyntheticOptions a;
  a.seed = 1;
  SyntheticOptions b;
  b.seed = 2;
  EXPECT_NE(make_synthetic(a).slo_seconds, make_synthetic(b).slo_seconds);
}

TEST(Synthetic, RejectsDegenerateOptions) {
  SyntheticOptions opts;
  opts.layers = 0;
  EXPECT_THROW(make_synthetic(opts), support::ContractViolation);
  opts.layers = 1;
  opts.width = 0;
  EXPECT_THROW(make_synthetic(opts), support::ContractViolation);
  opts.width = 1;
  opts.slo_headroom = 1.0;
  EXPECT_THROW(make_synthetic(opts), support::ContractViolation);
}

class SyntheticProperty
    : public ::testing::TestWithParam<std::tuple<Pattern, std::uint64_t>> {};

TEST_P(SyntheticProperty, AlwaysFeasibleConnectedDags) {
  SyntheticOptions opts;
  opts.pattern = std::get<0>(GetParam());
  opts.seed = std::get<1>(GetParam());
  opts.layers = 2 + opts.seed % 3;
  opts.width = 1 + opts.seed % 4;
  const Workload w = make_synthetic(opts);
  EXPECT_NO_THROW(w.workflow.validate());
  EXPECT_GT(w.slo_seconds, 0.0);
  EXPECT_EQ(w.workflow.graph().sinks().size(), 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Population, SyntheticProperty,
    ::testing::Combine(::testing::Values(Pattern::Scatter, Pattern::Broadcast,
                                         Pattern::Chain, Pattern::Random),
                       ::testing::Range<std::uint64_t>(1, 9)));

}  // namespace
}  // namespace aarc::workloads
