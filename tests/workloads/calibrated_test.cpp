#include "workloads/calibrated.h"

#include <gtest/gtest.h>

#include "aarc/scheduler.h"
#include "support/contracts.h"
#include "workloads/catalog.h"

namespace aarc::workloads {
namespace {

TEST(Calibrated, PreservesTopologyAndNames) {
  const Workload w = make_by_name("chatbot");
  const platform::Executor ex;
  const auto outcome = calibrate_workflow(w.workflow, ex);
  EXPECT_EQ(outcome.workflow.function_count(), w.workflow.function_count());
  EXPECT_EQ(outcome.workflow.graph().edge_count(), w.workflow.graph().edge_count());
  for (dag::NodeId id = 0; id < w.workflow.function_count(); ++id) {
    EXPECT_EQ(outcome.workflow.function_name(id), w.workflow.function_name(id));
    for (dag::NodeId next : w.workflow.graph().successors(id)) {
      EXPECT_TRUE(outcome.workflow.graph().has_edge(id, next));
    }
  }
  EXPECT_EQ(outcome.workflow.name(), "chatbot_calibrated");
}

TEST(Calibrated, CountsMeasurements) {
  const Workload w = make_by_name("chatbot");
  const platform::Executor ex;
  MeasurementPlan plan;
  plan.repeats = 2;
  const auto outcome = calibrate_workflow(w.workflow, ex, plan);
  // Bounded by (plan points + 3 floor-knee points) x repeats per function,
  // plus up to log2(grid) OOM bisection probes per function.
  const std::size_t functions = w.workflow.function_count();
  const std::size_t per_function = (plan.points.size() + 3) * plan.repeats + 8;
  EXPECT_LE(outcome.measurements, per_function * functions);
  EXPECT_GT(outcome.measurements, 0u);
  EXPECT_EQ(outcome.fit_errors.size(), functions);
}

TEST(Calibrated, FitsReasonablyWell) {
  const Workload w = make_by_name("ml_pipeline");
  const platform::Executor ex;
  MeasurementPlan plan;
  plan.fit.restarts = 6;
  plan.fit.iterations_per_restart = 300;
  const auto outcome = calibrate_workflow(w.workflow, ex, plan);
  for (double e : outcome.fit_errors) EXPECT_LT(e, 0.5);
}

TEST(Calibrated, FittedSurfacesTrackTruthOnPlanPoints) {
  const Workload w = make_by_name("chatbot");
  const platform::Executor ex;
  MeasurementPlan plan;
  plan.fit.restarts = 6;
  plan.fit.iterations_per_restart = 300;
  const auto outcome = calibrate_workflow(w.workflow, ex, plan);
  for (dag::NodeId id = 0; id < w.workflow.function_count(); ++id) {
    const auto& truth = w.workflow.model(id);
    const auto& fitted = outcome.workflow.model(id);
    for (const auto& point : plan.points) {
      if (!truth.fits_memory(point.memory_mb, 1.0)) continue;
      if (!fitted.fits_memory(point.memory_mb, 1.0)) continue;
      const double t = truth.mean_runtime(point.vcpu, point.memory_mb, 1.0);
      const double f = fitted.mean_runtime(point.vcpu, point.memory_mb, 1.0);
      EXPECT_LT(std::abs(std::log(f / t)), 1.0)
          << w.workflow.function_name(id) << " at " << platform::to_string(point);
    }
  }
}

TEST(Calibrated, DeterministicForSeed) {
  const Workload w = make_by_name("chatbot");
  const platform::Executor ex;
  MeasurementPlan plan;
  plan.fit.restarts = 2;
  plan.fit.iterations_per_restart = 50;
  const auto a = calibrate_workflow(w.workflow, ex, plan);
  const auto b = calibrate_workflow(w.workflow, ex, plan);
  ASSERT_EQ(a.fit_errors.size(), b.fit_errors.size());
  for (std::size_t i = 0; i < a.fit_errors.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.fit_errors[i], b.fit_errors[i]);
  }
}

TEST(Calibrated, SchedulingOnFitsStaysSloCompliantOnTruth) {
  // The headline robustness property: a configuration found on fitted
  // models still meets the SLO when validated against the true models.
  const Workload w = make_by_name("chatbot");
  const platform::Executor ex;
  const auto outcome = calibrate_workflow(w.workflow, ex);
  const core::GraphCentricScheduler scheduler(ex, platform::ConfigGrid{});
  const auto report = scheduler.schedule(outcome.workflow, w.slo_seconds);
  ASSERT_TRUE(report.result.found_feasible);

  platform::ExecutorOptions noiseless;
  noiseless.noise = perf::NoiseModel(0.0);
  const platform::Executor mean_ex(std::make_unique<platform::DecoupledLinearPricing>(),
                                   noiseless);
  const auto run = mean_ex.execute_mean(w.workflow, report.result.best_config);
  EXPECT_FALSE(run.failed);
  EXPECT_LE(run.makespan, w.slo_seconds * 1.05);
}

TEST(Calibrated, RejectsBadPlans) {
  const Workload w = make_by_name("chatbot");
  const platform::Executor ex;
  MeasurementPlan plan;
  plan.points.clear();
  EXPECT_THROW(calibrate_workflow(w.workflow, ex, plan), support::ContractViolation);
  plan = MeasurementPlan{};
  plan.repeats = 0;
  EXPECT_THROW(calibrate_workflow(w.workflow, ex, plan), support::ContractViolation);
  // A plan whose points all OOM for Video Analysis's extract functions.
  plan = MeasurementPlan{};
  plan.points = {{1.0, 128.0}, {1.0, 192.0}, {1.0, 256.0}, {1.0, 320.0}};
  const Workload video = make_by_name("video_analysis");
  EXPECT_THROW(calibrate_workflow(video.workflow, ex, plan),
               support::ContractViolation);
}

}  // namespace
}  // namespace aarc::workloads
