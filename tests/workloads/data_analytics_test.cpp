#include "workloads/data_analytics.h"

#include <gtest/gtest.h>

#include "aarc/advisor.h"
#include "aarc/scheduler.h"
#include "dag/analysis.h"
#include "platform/executor.h"
#include "workloads/catalog.h"

namespace aarc::workloads {
namespace {

platform::Executor noiseless() {
  platform::ExecutorOptions opts;
  opts.noise = perf::NoiseModel(0.0);
  return platform::Executor(std::make_unique<platform::DecoupledLinearPricing>(), opts);
}

TEST(DataAnalytics, InCatalogButNotAPaperWorkload) {
  const auto paper = paper_workload_names();
  EXPECT_EQ(paper.size(), 3u);
  const auto all = all_workload_names();
  ASSERT_EQ(all.size(), 4u);
  EXPECT_EQ(all.back(), "data_analytics");
  EXPECT_NO_THROW(make_by_name("data_analytics"));
}

TEST(DataAnalytics, MapReduceTopology) {
  const Workload w = make_data_analytics();
  EXPECT_NO_THROW(w.workflow.validate());
  const auto& g = w.workflow.graph();
  EXPECT_EQ(g.node_count(), 12u);  // ingest + 6 map + shuffle + 3 reduce + report
  EXPECT_EQ(g.successors(*g.find_node("ingest")).size(), 6u);
  EXPECT_EQ(g.predecessors(*g.find_node("shuffle")).size(), 6u);
  EXPECT_EQ(g.successors(*g.find_node("shuffle")).size(), 3u);
  EXPECT_EQ(g.predecessors(*g.find_node("report")).size(), 3u);
  const auto metrics = dag::analyze(g);
  EXPECT_EQ(metrics.max_width, 6u);
  EXPECT_EQ(metrics.depth, 5u);
}

TEST(DataAnalytics, MixedAffinitiesInsideOneDag) {
  // The point of the workload: mappers cpu-bound, shuffle memory-bound,
  // report io-bound — all at a uniform mid-grid operating point.
  const Workload w = make_data_analytics();
  const auto& wf = w.workflow;
  EXPECT_EQ(perf::affinity_of(wf.model(*wf.graph().find_node("map_0")), 2.0, 2048.0),
            perf::AffinityClass::CpuBound);
  EXPECT_EQ(perf::affinity_of(wf.model(*wf.graph().find_node("shuffle")), 3.0, 4096.0),
            perf::AffinityClass::MemoryBound);
  EXPECT_EQ(perf::affinity_of(wf.model(*wf.graph().find_node("report")), 2.0, 1024.0),
            perf::AffinityClass::IoBound);
}

TEST(DataAnalytics, BaseConfigMeetsSloWithHeadroom) {
  const Workload w = make_data_analytics();
  const auto ex = noiseless();
  const auto base = platform::uniform_config(w.workflow.function_count(),
                                             platform::ConfigGrid{}.max_config());
  const double makespan = ex.execute_mean(w.workflow, base).makespan;
  EXPECT_LT(makespan, w.slo_seconds);
  EXPECT_GT(w.slo_seconds, 1.5 * makespan);
}

TEST(DataAnalytics, AarcConfiguresItFeasiblyAndCheaply) {
  const Workload w = make_data_analytics();
  const platform::Executor ex;
  const core::GraphCentricScheduler scheduler(ex, platform::ConfigGrid{});
  const auto report = scheduler.schedule(w.workflow, w.slo_seconds);
  ASSERT_TRUE(report.result.found_feasible);

  const auto mean_ex = noiseless();
  const auto run = mean_ex.execute_mean(w.workflow, report.result.best_config);
  EXPECT_LE(run.makespan, w.slo_seconds);
  const auto base = platform::uniform_config(w.workflow.function_count(),
                                             platform::ConfigGrid{}.max_config());
  EXPECT_LT(run.total_cost, 0.4 * mean_ex.execute_mean(w.workflow, base).total_cost);
}

TEST(DataAnalytics, HeavyInputsRemainFeasible) {
  const Workload w = make_data_analytics();
  EXPECT_TRUE(w.input_sensitive);
  const auto ex = noiseless();
  const auto base = platform::uniform_config(w.workflow.function_count(),
                                             platform::ConfigGrid{}.max_config());
  const auto heavy = ex.execute_mean(w.workflow, base, w.scale_for(InputClass::Heavy));
  EXPECT_FALSE(heavy.failed);
  EXPECT_LT(heavy.makespan, w.slo_seconds);
}

TEST(DataAnalytics, SerializationRoundTrips) {
  const Workload w = make_data_analytics();
  // Covered in depth by io tests; here just the new models' parameters.
  EXPECT_GT(w.workflow.model(*w.workflow.graph().find_node("shuffle"))
                .min_memory_mb(w.scale_for(InputClass::Heavy)),
            w.workflow.model(*w.workflow.graph().find_node("shuffle")).min_memory_mb(1.0));
}

}  // namespace
}  // namespace aarc::workloads
