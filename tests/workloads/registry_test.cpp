// Runtime workload registration: loaded scenarios join the catalog.
#include <gtest/gtest.h>

#include <algorithm>

#include "support/contracts.h"
#include "workloads/catalog.h"

namespace aarc::workloads {
namespace {

Workload sample_workload(double slo) {
  Workload w = make_by_name("chatbot");
  w.slo_seconds = slo;
  return w;
}

TEST(Registry, RegisterLookupAndUnregister) {
  register_workload("registry_test_wl", sample_workload(123.0));

  const auto names = all_workload_names();
  EXPECT_NE(std::find(names.begin(), names.end(), "registry_test_wl"), names.end());

  const Workload loaded = make_by_name("registry_test_wl");
  EXPECT_DOUBLE_EQ(loaded.slo_seconds, 123.0);
  EXPECT_GT(loaded.workflow.function_count(), 0u);

  // Lookups hand out independent deep copies.
  Workload a = make_by_name("registry_test_wl");
  a.slo_seconds = 1.0;
  EXPECT_DOUBLE_EQ(make_by_name("registry_test_wl").slo_seconds, 123.0);

  unregister_workload("registry_test_wl");
  EXPECT_THROW(make_by_name("registry_test_wl"), support::ContractViolation);
  const auto after = all_workload_names();
  EXPECT_EQ(std::find(after.begin(), after.end(), "registry_test_wl"), after.end());
}

TEST(Registry, ReRegisteringReplaces) {
  register_workload("registry_test_replace", sample_workload(10.0));
  register_workload("registry_test_replace", sample_workload(20.0));
  EXPECT_DOUBLE_EQ(make_by_name("registry_test_replace").slo_seconds, 20.0);
  unregister_workload("registry_test_replace");
}

TEST(Registry, BuiltinsCannotBeShadowed) {
  EXPECT_THROW(register_workload("chatbot", sample_workload(1.0)),
               support::ContractViolation);
  EXPECT_THROW(register_workload("", sample_workload(1.0)),
               support::ContractViolation);
}

TEST(Registry, UnregisterUnknownIsANoOp) {
  unregister_workload("never_registered");  // must not throw
  const auto names = all_workload_names();
  EXPECT_GE(names.size(), 4u);  // built-ins intact
}

}  // namespace
}  // namespace aarc::workloads
