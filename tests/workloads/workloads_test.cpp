// Tests that the three paper workloads have the structure and resource
// affinities Section II-A / IV-A describe — these affinities are the inputs
// every downstream experiment depends on.
#include <gtest/gtest.h>

#include "dag/critical_path.h"
#include "dag/detour.h"
#include "platform/executor.h"
#include "support/contracts.h"
#include "workloads/catalog.h"
#include "workloads/chatbot.h"
#include "workloads/ml_pipeline.h"
#include "workloads/video_analysis.h"

namespace aarc::workloads {
namespace {

platform::Executor noiseless() {
  platform::ExecutorOptions opts;
  opts.noise = perf::NoiseModel(0.0);
  return platform::Executor(std::make_unique<platform::DecoupledLinearPricing>(), opts);
}

double mean_cost(const Workload& w, const platform::ResourceConfig& rc, double scale = 1.0) {
  const auto cfg = platform::uniform_config(w.workflow.function_count(), rc);
  return noiseless().execute_mean(w.workflow, cfg, scale).total_cost;
}

double mean_makespan(const Workload& w, const platform::ResourceConfig& rc,
                     double scale = 1.0) {
  const auto cfg = platform::uniform_config(w.workflow.function_count(), rc);
  return noiseless().execute_mean(w.workflow, cfg, scale).makespan;
}

TEST(Catalog, ListsThreePaperWorkloads) {
  const auto names = paper_workload_names();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "chatbot");
  EXPECT_EQ(names[1], "ml_pipeline");
  EXPECT_EQ(names[2], "video_analysis");
}

TEST(Catalog, MakeByNameMatchesDirectBuilders) {
  EXPECT_EQ(make_by_name("chatbot").workflow.name(), make_chatbot().workflow.name());
  EXPECT_THROW(make_by_name("unknown"), support::ContractViolation);
}

TEST(Catalog, MakePaperWorkloadsBuildsAll) {
  const auto all = make_paper_workloads();
  ASSERT_EQ(all.size(), 3u);
  for (const auto& w : all) EXPECT_NO_THROW(w.workflow.validate());
}

TEST(Catalog, SlosMatchSectionIVA) {
  EXPECT_DOUBLE_EQ(make_chatbot().slo_seconds, 120.0);
  EXPECT_DOUBLE_EQ(make_ml_pipeline().slo_seconds, 120.0);
  EXPECT_DOUBLE_EQ(make_video_analysis().slo_seconds, 600.0);
}

TEST(Catalog, InputClassNames) {
  EXPECT_EQ(to_string(InputClass::Light), "light");
  EXPECT_EQ(to_string(InputClass::Middle), "middle");
  EXPECT_EQ(to_string(InputClass::Heavy), "heavy");
}

TEST(Chatbot, HasScatterTopology) {
  const Workload w = make_chatbot();
  const auto& g = w.workflow.graph();
  // One source (preprocess) fanning out to four trainers.
  const auto sources = g.sources();
  ASSERT_EQ(sources.size(), 1u);
  EXPECT_EQ(g.successors(sources[0]).size(), 4u);
  EXPECT_EQ(g.sinks().size(), 1u);
}

TEST(Chatbot, BaseConfigMeetsSlo) {
  const Workload w = make_chatbot();
  EXPECT_LT(mean_makespan(w, {10.0, 10240.0}), w.slo_seconds);
}

TEST(Chatbot, AffinityFavorsOneVcpu512Mb) {
  // Section II-A: "Chatbot minimizes costs with 512 MB memory and 1 vCPU."
  const Workload w = make_chatbot();
  const double at_optimal = mean_cost(w, {1.0, 512.0});
  EXPECT_LT(at_optimal, mean_cost(w, {2.0, 512.0}));
  EXPECT_LT(at_optimal, mean_cost(w, {4.0, 1024.0}));
  EXPECT_LT(at_optimal, mean_cost(w, {1.0, 2048.0}));
  EXPECT_LT(at_optimal, mean_cost(w, {10.0, 10240.0}));
}

TEST(Chatbot, RuntimeInsensitiveToMemoryAboveWorkingSet) {
  // Fig. 2a: runtime flat as memory varies (compute-bound).
  const Workload w = make_chatbot();
  const double t1 = mean_makespan(w, {1.0, 1024.0});
  const double t2 = mean_makespan(w, {1.0, 10240.0});
  EXPECT_NEAR(t1, t2, 1e-9);
}

TEST(MlPipeline, HasBroadcastTopology) {
  const Workload w = make_ml_pipeline();
  const auto& g = w.workflow.graph();
  const auto pca = g.find_node("pca");
  ASSERT_TRUE(pca.has_value());
  EXPECT_EQ(g.successors(*pca).size(), 3u);  // broadcast to three trainers
}

TEST(MlPipeline, AffinityFavorsFourVcpu512Mb) {
  // Section II-A: "a decoupled configuration of 4 vCPUs and 512 MB memory
  // achieves the lowest cost."
  const Workload w = make_ml_pipeline();
  const double at_optimal = mean_cost(w, {4.0, 512.0});
  EXPECT_LT(at_optimal, mean_cost(w, {1.0, 512.0}));
  EXPECT_LT(at_optimal, mean_cost(w, {10.0, 512.0}));
  EXPECT_LT(at_optimal, mean_cost(w, {4.0, 4096.0}));  // the coupled point
}

TEST(MlPipeline, DecoupledBeatsCoupledByLargeMargin) {
  // The paper's headline motivation: 87.5% memory cut at equal runtime.
  const Workload w = make_ml_pipeline();
  const double decoupled = mean_cost(w, {4.0, 512.0});
  const double coupled = mean_cost(w, {4.0, 4096.0});
  EXPECT_LT(decoupled, 0.7 * coupled);
  EXPECT_NEAR(mean_makespan(w, {4.0, 512.0}), mean_makespan(w, {4.0, 4096.0}), 1e-9);
}

TEST(VideoAnalysis, HasScatterChains) {
  const Workload w = make_video_analysis();
  const auto& g = w.workflow.graph();
  const auto split = g.find_node("split");
  ASSERT_TRUE(split.has_value());
  EXPECT_EQ(g.successors(*split).size(), 4u);
  // Each extract feeds exactly one classify.
  for (const auto& name : {"extract_0", "extract_1", "extract_2", "extract_3"}) {
    const auto id = g.find_node(name);
    ASSERT_TRUE(id.has_value());
    EXPECT_EQ(g.successors(*id).size(), 1u);
  }
}

TEST(VideoAnalysis, AffinityFavorsEightVcpu5120Mb) {
  // Section II-A: "Video Analysis achieves cost efficiency with 5120 MB
  // memory and 8 vCPUs" (on Fig. 2's integer-vCPU sweep grid).
  const Workload w = make_video_analysis();
  const double at_optimal = mean_cost(w, {8.0, 5120.0});
  EXPECT_LT(at_optimal, mean_cost(w, {4.0, 5120.0}));
  EXPECT_LT(at_optimal, mean_cost(w, {8.0, 2048.0}));
  EXPECT_LT(at_optimal, mean_cost(w, {8.0, 10240.0}));
  EXPECT_LT(at_optimal, mean_cost(w, {2.0, 2048.0}));
}

TEST(VideoAnalysis, IsInputSensitive) {
  const Workload w = make_video_analysis();
  EXPECT_TRUE(w.input_sensitive);
  EXPECT_LT(w.scale_for(InputClass::Light), 1.0);
  EXPECT_DOUBLE_EQ(w.scale_for(InputClass::Middle), 1.0);
  EXPECT_GT(w.scale_for(InputClass::Heavy), 1.0);
}

TEST(VideoAnalysis, HeavyInputsNeedMoreMemory) {
  const Workload w = make_video_analysis();
  const auto& extract = w.workflow.model(*w.workflow.graph().find_node("extract_0"));
  EXPECT_GT(extract.min_memory_mb(2.0), extract.min_memory_mb(1.0));
}

TEST(VideoAnalysis, HeavyInputFeasibleUnderSloWithBigConfig) {
  const Workload w = make_video_analysis();
  EXPECT_LT(mean_makespan(w, {10.0, 10240.0}, w.scale_for(InputClass::Heavy)),
            w.slo_seconds);
}

TEST(ScaleFor, DefaultsToOneForUnknownClass) {
  Workload w = make_chatbot();
  w.input_classes.clear();
  EXPECT_DOUBLE_EQ(w.scale_for(InputClass::Heavy), 1.0);
}

class PaperWorkloadProperty : public ::testing::TestWithParam<std::string> {};

TEST_P(PaperWorkloadProperty, ValidatesAndHasSingleSourceSink) {
  const Workload w = make_by_name(GetParam());
  EXPECT_NO_THROW(w.workflow.validate());
  EXPECT_EQ(w.workflow.graph().sources().size(), 1u);
  EXPECT_EQ(w.workflow.graph().sinks().size(), 1u);
}

TEST_P(PaperWorkloadProperty, CriticalPathAndDetoursCoverEverything) {
  const Workload w = make_by_name(GetParam());
  dag::Graph g = w.workflow.graph();
  const auto cfg = platform::uniform_config(w.workflow.function_count(), {10.0, 10240.0});
  g.set_weights(noiseless().execute_mean(w.workflow, cfg).runtimes());
  const auto cp = dag::find_critical_path(g);
  const auto detours = dag::find_detour_subpaths(g, cp);
  EXPECT_TRUE(dag::uncovered_nodes(g, cp, detours).empty());
}

TEST_P(PaperWorkloadProperty, BaseConfigIsFeasibleAndOverProvisioned) {
  const Workload w = make_by_name(GetParam());
  const double base = mean_makespan(w, {10.0, 10240.0});
  EXPECT_LT(base, w.slo_seconds) << "base config must satisfy the SLO";
  // And over-provisioned: the SLO leaves real slack to trade for cost.
  EXPECT_GT(w.slo_seconds, 1.1 * base);
}

INSTANTIATE_TEST_SUITE_P(All, PaperWorkloadProperty,
                         ::testing::Values("chatbot", "ml_pipeline", "video_analysis"));

}  // namespace
}  // namespace aarc::workloads
