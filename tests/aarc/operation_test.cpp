#include "aarc/operation.h"

#include <gtest/gtest.h>

#include <limits>

#include "support/contracts.h"

namespace aarc::core {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

Operation op(dag::NodeId node, ResourceType type = ResourceType::Cpu) {
  Operation o;
  o.node = node;
  o.type = type;
  o.step = 4;
  o.trail = 3;
  return o;
}

TEST(ResourceTypeNames, Strings) {
  EXPECT_STREQ(to_string(ResourceType::Cpu), "cpu");
  EXPECT_STREQ(to_string(ResourceType::Memory), "mem");
}

TEST(OperationQueue, StartsEmpty) {
  OperationQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_THROW(q.pop(), support::ContractViolation);
  EXPECT_THROW(q.top_priority(), support::ContractViolation);
}

TEST(OperationQueue, PopsHighestPriorityFirst) {
  OperationQueue q;
  q.push(op(1), 5.0);
  q.push(op(2), 9.0);
  q.push(op(3), 1.0);
  EXPECT_DOUBLE_EQ(q.top_priority(), 9.0);
  EXPECT_EQ(q.pop().node, 2u);
  EXPECT_EQ(q.pop().node, 1u);
  EXPECT_EQ(q.pop().node, 3u);
  EXPECT_TRUE(q.empty());
}

TEST(OperationQueue, InfinityBeatsEverything) {
  OperationQueue q;
  q.push(op(1), 1e12);
  q.push(op(2), kInf);
  EXPECT_EQ(q.pop().node, 2u);
}

TEST(OperationQueue, FifoAmongEqualPriorities) {
  // Paper line 5: all fresh ops enter at +inf; the pop order must be the
  // deterministic insertion order.
  OperationQueue q;
  q.push(op(10), kInf);
  q.push(op(11), kInf);
  q.push(op(12), kInf);
  EXPECT_EQ(q.pop().node, 10u);
  EXPECT_EQ(q.pop().node, 11u);
  EXPECT_EQ(q.pop().node, 12u);
}

TEST(OperationQueue, RevertedOpsAtZeroComeAfterPositiveGains) {
  OperationQueue q;
  q.push(op(1), 0.0);   // reverted, retryable (line 17)
  q.push(op(2), 3.5);   // accepted with gain (line 20-21)
  EXPECT_EQ(q.pop().node, 2u);
  EXPECT_EQ(q.pop().node, 1u);
}

TEST(OperationQueue, PreservesOperationFields) {
  OperationQueue q;
  Operation o = op(7, ResourceType::Memory);
  o.step = 16;
  o.trail = 2;
  q.push(o, 1.0);
  const Operation out = q.pop();
  EXPECT_EQ(out.node, 7u);
  EXPECT_EQ(out.type, ResourceType::Memory);
  EXPECT_EQ(out.step, 16u);
  EXPECT_EQ(out.trail, 2u);
}

TEST(OperationQueue, RejectsInvalidOps) {
  OperationQueue q;
  Operation bad;
  bad.node = dag::kInvalidNode;
  EXPECT_THROW(q.push(bad, 1.0), support::ContractViolation);
  Operation zero_step = op(1);
  zero_step.step = 0;
  EXPECT_THROW(q.push(zero_step, 1.0), support::ContractViolation);
}

TEST(OperationQueue, SizeTracksPushPop) {
  OperationQueue q;
  q.push(op(1), 1.0);
  q.push(op(2), 2.0);
  EXPECT_EQ(q.size(), 2u);
  (void)q.pop();
  EXPECT_EQ(q.size(), 1u);
}

}  // namespace
}  // namespace aarc::core
