// Tests for Algorithm 1 (Graph-Centric Scheduler) on hand-built workflows.
#include "aarc/scheduler.h"

#include <gtest/gtest.h>

#include "perf/analytic.h"
#include "platform/executor.h"
#include "support/contracts.h"

namespace aarc::core {
namespace {

std::unique_ptr<perf::PerfModel> fn(double serial, double ws = 256.0,
                                    double min_mem = 128.0) {
  perf::AnalyticParams p;
  p.io_seconds = 1.0;
  p.serial_seconds = serial;
  p.parallel_seconds = 0.0;
  p.max_parallelism = 1.0;
  p.working_set_mb = ws;
  p.min_memory_mb = min_mem;
  p.pressure_coeff = 3.0;
  return std::make_unique<perf::AnalyticModel>(p);
}

/// src -> {heavy, light} -> sink: the classic detour shape.
platform::Workflow diamond() {
  platform::Workflow wf("diamond");
  wf.add_function("src", fn(4.0));
  wf.add_function("heavy", fn(20.0));
  wf.add_function("light", fn(5.0));
  wf.add_function("sink", fn(4.0));
  wf.add_edge("src", "heavy");
  wf.add_edge("src", "light");
  wf.add_edge("heavy", "sink");
  wf.add_edge("light", "sink");
  return wf;
}

platform::Executor noiseless() {
  platform::ExecutorOptions opts;
  opts.noise = perf::NoiseModel(0.0);
  return platform::Executor(std::make_unique<platform::DecoupledLinearPricing>(), opts);
}

TEST(Scheduler, RejectsNonPositiveSlo) {
  const platform::Executor ex = noiseless();
  const GraphCentricScheduler s(ex, platform::ConfigGrid{});
  EXPECT_THROW(s.schedule(diamond(), 0.0), support::ContractViolation);
}

TEST(Scheduler, FindsTheExpectedCriticalPath) {
  const platform::Executor ex = noiseless();
  const GraphCentricScheduler s(ex, platform::ConfigGrid{});
  const auto report = s.schedule(diamond(), 120.0);
  const auto& wf = diamond();
  std::vector<std::string> names;
  for (dag::NodeId id : report.critical_path) names.push_back(wf.function_name(id));
  EXPECT_EQ(names, (std::vector<std::string>{"src", "heavy", "sink"}));
}

TEST(Scheduler, ConfiguresEveryFunction) {
  const platform::Executor ex = noiseless();
  const GraphCentricScheduler s(ex, platform::ConfigGrid{});
  const auto report = s.schedule(diamond(), 120.0);
  ASSERT_TRUE(report.result.found_feasible);
  ASSERT_EQ(report.result.best_config.size(), 4u);
  // Everything should have moved off the over-provisioned base.
  for (const auto& rc : report.result.best_config) {
    EXPECT_LT(rc.memory_mb, 10240.0);
    EXPECT_LT(rc.vcpu, 10.0);
  }
  EXPECT_EQ(report.subpath_count, 1u);  // the light branch
  EXPECT_EQ(report.uncovered_count, 0u);
}

TEST(Scheduler, FinalConfigMeetsSloOnAverage) {
  const platform::Executor ex = noiseless();
  const GraphCentricScheduler s(ex, platform::ConfigGrid{});
  const double slo = 40.0;
  const auto report = s.schedule(diamond(), slo);
  ASSERT_TRUE(report.result.found_feasible);
  EXPECT_LE(ex.execute_mean(diamond(), report.result.best_config).makespan, slo);
}

TEST(Scheduler, FinalConfigIsMuchCheaperThanBase) {
  const platform::Executor ex = noiseless();
  const platform::ConfigGrid grid;
  const GraphCentricScheduler s(ex, grid);
  const auto report = s.schedule(diamond(), 120.0);
  const auto base = platform::uniform_config(4, grid.max_config());
  const double base_cost = ex.execute_mean(diamond(), base).total_cost;
  const double aarc_cost = ex.execute_mean(diamond(), report.result.best_config).total_cost;
  EXPECT_LT(aarc_cost, 0.25 * base_cost);
}

TEST(Scheduler, DetourBudgetKeepsCriticalPathCritical) {
  // After scheduling, the light branch must not have become the bottleneck:
  // src->light->sink must still fit within src->heavy->sink.
  const platform::Executor ex = noiseless();
  const GraphCentricScheduler s(ex, platform::ConfigGrid{});
  const auto wf = diamond();
  const auto report = s.schedule(wf, 60.0);
  ASSERT_TRUE(report.result.found_feasible);
  const auto res = ex.execute_mean(wf, report.result.best_config);
  const double heavy_path = res.invocations[0].runtime + res.invocations[1].runtime +
                            res.invocations[3].runtime;
  const double light_path = res.invocations[0].runtime + res.invocations[2].runtime +
                            res.invocations[3].runtime;
  EXPECT_LE(light_path, heavy_path * 1.05);
  EXPECT_NEAR(res.makespan, heavy_path, 1e-9);
}

TEST(Scheduler, TraceAccountsForEverySample) {
  const platform::Executor ex = noiseless();
  const GraphCentricScheduler s(ex, platform::ConfigGrid{});
  const auto report = s.schedule(diamond(), 120.0);
  EXPECT_GT(report.result.samples(), 2u);
  // Profiling run + configurator probes + final verification.
  EXPECT_EQ(report.result.trace.samples().front().index, 0u);
  EXPECT_EQ(report.result.trace.samples().back().index, report.result.samples() - 1);
  EXPECT_GT(report.result.trace.total_sampling_runtime(), 0.0);
}

TEST(Scheduler, InfeasibleWorkflowReportsNoConfig) {
  // SLO far below the fastest possible makespan.
  const platform::Executor ex = noiseless();
  const GraphCentricScheduler s(ex, platform::ConfigGrid{});
  const auto report = s.schedule(diamond(), 2.0);
  EXPECT_FALSE(report.result.found_feasible);
}

TEST(Scheduler, SingleFunctionWorkflow) {
  platform::Workflow wf("solo");
  wf.add_function("only", fn(10.0));
  const platform::Executor ex = noiseless();
  const GraphCentricScheduler s(ex, platform::ConfigGrid{});
  const auto report = s.schedule(wf, 60.0);
  ASSERT_TRUE(report.result.found_feasible);
  EXPECT_EQ(report.critical_path.size(), 1u);
  EXPECT_EQ(report.subpath_count, 0u);
  EXPECT_LT(report.result.best_config[0].memory_mb, 1024.0);
}

TEST(Scheduler, ChainWorkflowHasNoDetours) {
  platform::Workflow wf("chain");
  wf.add_function("a", fn(5.0));
  wf.add_function("b", fn(5.0));
  wf.add_function("c", fn(5.0));
  wf.add_edge("a", "b");
  wf.add_edge("b", "c");
  const platform::Executor ex = noiseless();
  const GraphCentricScheduler s(ex, platform::ConfigGrid{});
  const auto report = s.schedule(wf, 60.0);
  EXPECT_EQ(report.critical_path.size(), 3u);
  EXPECT_EQ(report.subpath_count, 0u);
  EXPECT_TRUE(report.result.found_feasible);
}

TEST(Scheduler, UncoveredNodesAreConfiguredWhenEnabled) {
  // A stray second source joining at the sink is on no detour.
  platform::Workflow wf("stray");
  wf.add_function("a", fn(10.0));
  wf.add_function("b", fn(10.0));
  wf.add_function("stray", fn(2.0));
  wf.add_edge("a", "b");
  wf.add_edge("stray", "b");
  const platform::Executor ex = noiseless();
  SchedulerOptions opts;
  const GraphCentricScheduler s(ex, platform::ConfigGrid{}, opts);
  const auto report = s.schedule(wf, 60.0);
  EXPECT_EQ(report.uncovered_count, 1u);
  const auto stray_id = wf.function_id("stray");
  EXPECT_LT(report.result.best_config[stray_id].memory_mb, 10240.0);
}

TEST(Scheduler, UncoveredNodesKeepBaseWhenDisabled) {
  platform::Workflow wf("stray");
  wf.add_function("a", fn(10.0));
  wf.add_function("b", fn(10.0));
  wf.add_function("stray", fn(2.0));
  wf.add_edge("a", "b");
  wf.add_edge("stray", "b");
  const platform::Executor ex = noiseless();
  SchedulerOptions opts;
  opts.configure_uncovered_nodes = false;
  const GraphCentricScheduler s(ex, platform::ConfigGrid{}, opts);
  const auto report = s.schedule(wf, 60.0);
  EXPECT_EQ(report.uncovered_count, 0u);
  const auto stray_id = wf.function_id("stray");
  EXPECT_EQ(report.result.best_config[stray_id], platform::ConfigGrid{}.max_config());
}

TEST(Scheduler, DeterministicForFixedSeed) {
  const platform::Executor ex;  // default noise, seeded via options
  SchedulerOptions opts;
  opts.seed = 77;
  const GraphCentricScheduler s(ex, platform::ConfigGrid{}, opts);
  const auto a = s.schedule(diamond(), 120.0);
  const auto b = s.schedule(diamond(), 120.0);
  ASSERT_EQ(a.result.best_config.size(), b.result.best_config.size());
  for (std::size_t i = 0; i < a.result.best_config.size(); ++i) {
    EXPECT_EQ(a.result.best_config[i], b.result.best_config[i]);
  }
  EXPECT_EQ(a.result.samples(), b.result.samples());
}

TEST(Scheduler, ProfiledMakespanMatchesBaseExecution) {
  const platform::Executor ex = noiseless();
  const GraphCentricScheduler s(ex, platform::ConfigGrid{});
  const auto report = s.schedule(diamond(), 120.0);
  const auto base = platform::uniform_config(4, platform::ConfigGrid{}.max_config());
  EXPECT_NEAR(report.profiled_makespan, ex.execute_mean(diamond(), base).makespan, 1e-9);
}

TEST(Scheduler, DoesNotMutateTheInputWorkflow) {
  platform::Workflow wf = diamond();
  const std::vector<double> before = wf.graph().weights();
  const platform::Executor ex = noiseless();
  const GraphCentricScheduler s(ex, platform::ConfigGrid{});
  (void)s.schedule(wf, 120.0);
  EXPECT_EQ(wf.graph().weights(), before);
}

}  // namespace
}  // namespace aarc::core
