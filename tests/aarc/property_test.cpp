// End-to-end properties of the AARC scheduler over a population of synthetic
// workflows: for every topology pattern and seed, the returned configuration
// must be on-grid, SLO-compliant in expectation, and cheaper than the base.
#include <gtest/gtest.h>

#include "aarc/scheduler.h"
#include "dag/path.h"
#include "platform/executor.h"
#include "workloads/synthetic.h"

namespace aarc::core {
namespace {

struct Case {
  workloads::Pattern pattern;
  std::uint64_t seed;
};

class SchedulerProperty : public ::testing::TestWithParam<Case> {
 protected:
  workloads::Workload workload() const {
    workloads::SyntheticOptions opts;
    opts.pattern = GetParam().pattern;
    opts.seed = GetParam().seed;
    opts.layers = 2 + GetParam().seed % 2;
    opts.width = 2 + GetParam().seed % 3;
    return workloads::make_synthetic(opts);
  }
};

TEST_P(SchedulerProperty, ProducesValidSloCompliantCheaperConfig) {
  const workloads::Workload w = workload();
  const platform::Executor ex;
  const platform::ConfigGrid grid;
  const GraphCentricScheduler scheduler(ex, grid);
  const auto report = scheduler.schedule(w.workflow, w.slo_seconds);

  ASSERT_TRUE(report.result.found_feasible)
      << "synthetic workloads are feasible by construction";
  ASSERT_EQ(report.result.best_config.size(), w.workflow.function_count());

  // Every allocation sits on the discrete grid.
  for (const auto& rc : report.result.best_config) {
    EXPECT_TRUE(grid.contains(rc)) << platform::to_string(rc);
  }

  // Mean behaviour: SLO met, cost beaten.
  platform::ExecutorOptions noiseless_opts;
  noiseless_opts.noise = perf::NoiseModel(0.0);
  const platform::Executor noiseless(
      std::make_unique<platform::DecoupledLinearPricing>(), noiseless_opts);
  const auto final_run = noiseless.execute_mean(w.workflow, report.result.best_config);
  EXPECT_FALSE(final_run.failed);
  EXPECT_LE(final_run.makespan, w.slo_seconds * 1.001);

  const auto base =
      platform::uniform_config(w.workflow.function_count(), grid.max_config());
  const auto base_run = noiseless.execute_mean(w.workflow, base);
  EXPECT_LT(final_run.total_cost, base_run.total_cost);
}

TEST_P(SchedulerProperty, SampleCountIsBounded) {
  const workloads::Workload w = workload();
  const platform::Executor ex;
  const GraphCentricScheduler scheduler(ex, platform::ConfigGrid{});
  const auto report = scheduler.schedule(w.workflow, w.slo_seconds);
  // 2 ops per function, each with <= ~(log2 grid + FUNC_TRIAL) probes, plus
  // profiling/verification overhead — 40 per function is a generous bound.
  EXPECT_LE(report.result.samples(), 40u * w.workflow.function_count() + 2u);
}

TEST_P(SchedulerProperty, CriticalPathIsValidInTheWorkflow) {
  const workloads::Workload w = workload();
  const platform::Executor ex;
  const GraphCentricScheduler scheduler(ex, platform::ConfigGrid{});
  const auto report = scheduler.schedule(w.workflow, w.slo_seconds);
  const dag::Path cp{report.critical_path};
  EXPECT_TRUE(cp.is_valid_in(w.workflow.graph()));
  EXPECT_TRUE(w.workflow.graph().predecessors(cp.front()).empty());
  EXPECT_TRUE(w.workflow.graph().successors(cp.back()).empty());
}

std::vector<Case> cases() {
  std::vector<Case> out;
  for (auto p : {workloads::Pattern::Scatter, workloads::Pattern::Broadcast,
                 workloads::Pattern::Chain, workloads::Pattern::Random}) {
    for (std::uint64_t s = 1; s <= 4; ++s) out.push_back({p, s});
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Population, SchedulerProperty, ::testing::ValuesIn(cases()),
                         [](const ::testing::TestParamInfo<Case>& info) {
                           return workloads::to_string(info.param.pattern) + "_s" +
                                  std::to_string(info.param.seed);
                         });

}  // namespace
}  // namespace aarc::core
