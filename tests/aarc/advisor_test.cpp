#include "aarc/advisor.h"

#include <gtest/gtest.h>

#include "perf/analytic.h"
#include "support/contracts.h"

namespace aarc::core {
namespace {

std::unique_ptr<perf::PerfModel> fn(double serial, double parallel = 0.0,
                                    double max_par = 1.0) {
  perf::AnalyticParams p;
  p.io_seconds = 1.0;
  p.serial_seconds = serial;
  p.parallel_seconds = parallel;
  p.max_parallelism = max_par;
  p.working_set_mb = 400.0;
  p.min_memory_mb = 192.0;
  p.pressure_coeff = 3.0;
  return std::make_unique<perf::AnalyticModel>(p);
}

/// src -> {heavy, light} -> sink.
platform::Workflow diamond() {
  platform::Workflow wf("diamond");
  wf.add_function("src", fn(3.0));
  wf.add_function("heavy", fn(20.0));
  wf.add_function("light", fn(5.0));
  wf.add_function("sink", fn(3.0));
  wf.add_edge("src", "heavy");
  wf.add_edge("src", "light");
  wf.add_edge("heavy", "sink");
  wf.add_edge("light", "sink");
  return wf;
}

platform::Executor noiseless() {
  platform::ExecutorOptions opts;
  opts.noise = perf::NoiseModel(0.0);
  return platform::Executor(std::make_unique<platform::DecoupledLinearPricing>(), opts);
}

TEST(Advisor, ReportsWholeWorkflowNumbers) {
  const auto wf = diamond();
  const auto ex = noiseless();
  const auto cfg = platform::uniform_config(4, {1.0, 512.0});
  const auto report = advise(wf, cfg, ex, 60.0);
  // Makespan: 4 + 21 + 4 = 29.
  EXPECT_DOUBLE_EQ(report.mean_makespan, 29.0);
  EXPECT_NEAR(report.slo_headroom_fraction, 1.0 - 29.0 / 60.0, 1e-12);
  EXPECT_GT(report.mean_cost, 0.0);
  ASSERT_EQ(report.functions.size(), 4u);
}

TEST(Advisor, CostSharesSumToOne) {
  const auto wf = diamond();
  const auto ex = noiseless();
  const auto report = advise(wf, platform::uniform_config(4, {1.0, 512.0}), ex, 60.0);
  double total = 0.0;
  for (const auto& f : report.functions) total += f.cost_share;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Advisor, CriticalPathAndSlackConsistent) {
  const auto wf = diamond();
  const auto ex = noiseless();
  const auto report = advise(wf, platform::uniform_config(4, {1.0, 512.0}), ex, 60.0);
  const auto heavy = wf.function_id("heavy");
  const auto light = wf.function_id("light");
  EXPECT_TRUE(report.functions[heavy].on_critical_path);
  EXPECT_FALSE(report.functions[light].on_critical_path);
  EXPECT_NEAR(report.functions[heavy].slack_seconds, 0.0, 1e-9);
  // Light branch slack = heavy runtime - light runtime = 21 - 6 = 15.
  EXPECT_NEAR(report.functions[light].slack_seconds, 15.0, 1e-9);
}

TEST(Advisor, RuntimesAndCostsMatchExecutor) {
  const auto wf = diamond();
  const auto ex = noiseless();
  const auto cfg = platform::uniform_config(4, {2.0, 1024.0});
  const auto report = advise(wf, cfg, ex, 60.0);
  const auto run = ex.execute_mean(wf, cfg);
  for (dag::NodeId id = 0; id < 4; ++id) {
    EXPECT_DOUBLE_EQ(report.functions[id].mean_runtime, run.invocations[id].runtime);
    EXPECT_DOUBLE_EQ(report.functions[id].mean_cost, run.invocations[id].cost);
  }
}

TEST(Advisor, NegativeHeadroomWhenViolating) {
  const auto wf = diamond();
  const auto ex = noiseless();
  const auto report = advise(wf, platform::uniform_config(4, {1.0, 512.0}), ex, 20.0);
  EXPECT_LT(report.slo_headroom_fraction, 0.0);
}

TEST(Advisor, AffinitiesAreComputedPerFunction) {
  platform::Workflow wf("mixed");
  wf.add_function("compute", fn(1.0, 40.0, 8.0));
  wf.add_function("io", fn(0.1));
  wf.add_edge("compute", "io");
  const auto ex = noiseless();
  const auto report = advise(wf, platform::uniform_config(2, {2.0, 1024.0}), ex, 60.0);
  EXPECT_EQ(report.functions[0].affinity, perf::AffinityClass::CpuBound);
  EXPECT_EQ(report.functions[1].affinity, perf::AffinityClass::IoBound);
}

TEST(Advisor, RejectsBadInputs) {
  const auto wf = diamond();
  const auto ex = noiseless();
  EXPECT_THROW(advise(wf, platform::uniform_config(4, {1.0, 512.0}), ex, 0.0),
               support::ContractViolation);
  EXPECT_THROW(advise(wf, platform::uniform_config(3, {1.0, 512.0}), ex, 60.0),
               support::ContractViolation);
  // OOM configuration.
  auto cfg = platform::uniform_config(4, {1.0, 512.0});
  cfg[0].memory_mb = 100.0;
  EXPECT_THROW(advise(wf, cfg, ex, 60.0), support::ContractViolation);
}

}  // namespace
}  // namespace aarc::core
