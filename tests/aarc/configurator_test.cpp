// Unit tests for Algorithm 2 (Priority Configurator) on small, hand-built
// workflows with noiseless execution so the decisions are exactly auditable.
#include "aarc/priority_configurator.h"

#include <gtest/gtest.h>

#include "perf/analytic.h"
#include "platform/executor.h"
#include "support/contracts.h"

namespace aarc::core {
namespace {

std::unique_ptr<perf::PerfModel> cpu_bound(double serial, double parallel, double max_par,
                                           double ws = 256.0, double min_mem = 128.0) {
  perf::AnalyticParams p;
  p.io_seconds = 1.0;
  p.serial_seconds = serial;
  p.parallel_seconds = parallel;
  p.max_parallelism = max_par;
  p.working_set_mb = ws;
  p.min_memory_mb = min_mem;
  p.pressure_coeff = 3.0;
  return std::make_unique<perf::AnalyticModel>(p);
}

platform::Executor noiseless() {
  platform::ExecutorOptions opts;
  opts.noise = perf::NoiseModel(0.0);
  return platform::Executor(std::make_unique<platform::DecoupledLinearPricing>(), opts);
}

/// One CPU-light function: optimum is (1.0 vCPU, 256 MB).
platform::Workflow single() {
  platform::Workflow wf("single");
  wf.add_function("only", cpu_bound(20.0, 0.0, 1.0));
  return wf;
}

search::ProbeResult baseline_of(search::Evaluator& ev, const platform::WorkflowConfig& cfg) {
  return ev.probe(cfg);
}

TEST(Configurator, RejectsBadOptions) {
  const platform::ConfigGrid grid;
  ConfiguratorOptions opts;
  opts.func_trial = 0;
  EXPECT_THROW(PriorityConfigurator(grid, opts), support::ContractViolation);
  opts = ConfiguratorOptions{};
  opts.max_trail = 0;
  EXPECT_THROW(PriorityConfigurator(grid, opts), support::ContractViolation);
  opts = ConfiguratorOptions{};
  opts.initial_step_fraction = 0.0;
  EXPECT_THROW(PriorityConfigurator(grid, opts), support::ContractViolation);
  opts = ConfiguratorOptions{};
  opts.slo_safety_margin = 1.0;
  EXPECT_THROW(PriorityConfigurator(grid, opts), support::ContractViolation);
}

TEST(Configurator, RejectsEmptyPath) {
  const platform::ConfigGrid grid;
  const PriorityConfigurator pc(grid, {});
  const platform::Workflow wf = single();
  const platform::Executor ex = noiseless();
  search::Evaluator ev(wf, ex, 100.0, 1.0, 1);
  auto cfg = platform::uniform_config(1, grid.max_config());
  const auto baseline = baseline_of(ev, cfg);
  EXPECT_THROW(pc.configure_path(ev, {}, 100.0, cfg, baseline),
               support::ContractViolation);
}

TEST(Configurator, DeallocatesTowardTheOptimum) {
  const platform::ConfigGrid grid;
  const PriorityConfigurator pc(grid, {});
  const platform::Workflow wf = single();
  const platform::Executor ex = noiseless();
  search::Evaluator ev(wf, ex, 200.0, 1.0, 1);
  auto cfg = platform::uniform_config(1, grid.max_config());
  const auto baseline = baseline_of(ev, cfg);
  const auto outcome = pc.configure_path(ev, {0}, 200.0, cfg, baseline);

  // Serial function: anything above 1 vCPU is waste; memory above the
  // 256 MB working set is waste.  SLO 200 is loose, so the optimum is
  // purely cost-driven.
  EXPECT_LE(cfg[0].vcpu, 1.5);
  EXPECT_GE(cfg[0].vcpu, 0.5);
  EXPECT_LE(cfg[0].memory_mb, 512.0);
  EXPECT_GE(cfg[0].memory_mb, 192.0);
  EXPECT_GT(outcome.ops_accepted, 0u);
}

TEST(Configurator, FinalConfigCostsLessThanBase) {
  const platform::ConfigGrid grid;
  const PriorityConfigurator pc(grid, {});
  const platform::Workflow wf = single();
  const platform::Executor ex = noiseless();
  search::Evaluator ev(wf, ex, 200.0, 1.0, 1);
  auto cfg = platform::uniform_config(1, grid.max_config());
  const auto baseline = baseline_of(ev, cfg);
  (void)pc.configure_path(ev, {0}, 200.0, cfg, baseline);
  const double base_cost = ex.execute_mean(wf, platform::uniform_config(1, grid.max_config()))
                               .total_cost;
  EXPECT_LT(ex.execute_mean(wf, cfg).total_cost, 0.5 * base_cost);
}

TEST(Configurator, RespectsThePathSlo) {
  // Tight SLO: the configurator must stop deallocating before the runtime
  // crosses it (with the default 5% safety margin).
  const platform::ConfigGrid grid;
  const PriorityConfigurator pc(grid, {});
  const platform::Workflow wf = single();  // ~21 s at 1 vCPU
  const platform::Executor ex = noiseless();
  const double slo = 22.0;
  search::Evaluator ev(wf, ex, slo, 1.0, 1);
  auto cfg = platform::uniform_config(1, grid.max_config());
  const auto baseline = baseline_of(ev, cfg);
  (void)pc.configure_path(ev, {0}, slo, cfg, baseline);
  EXPECT_LE(ex.execute_mean(wf, cfg).makespan, slo);
}

TEST(Configurator, NeverOomsTheFinalConfig) {
  const platform::ConfigGrid grid;
  const PriorityConfigurator pc(grid, {});
  platform::Workflow wf("memfloor");
  wf.add_function("f", cpu_bound(5.0, 0.0, 1.0, 2048.0, 1024.0));
  const platform::Executor ex = noiseless();
  search::Evaluator ev(wf, ex, 500.0, 1.0, 1);
  auto cfg = platform::uniform_config(1, grid.max_config());
  const auto baseline = baseline_of(ev, cfg);
  (void)pc.configure_path(ev, {0}, 500.0, cfg, baseline);
  EXPECT_GE(cfg[0].memory_mb, 1024.0);
  EXPECT_FALSE(ex.execute_mean(wf, cfg).failed);
}

TEST(Configurator, HonorsMaxTrail) {
  const platform::ConfigGrid grid;
  ConfiguratorOptions opts;
  opts.max_trail = 3;
  const PriorityConfigurator pc(grid, opts);
  const platform::Workflow wf = single();
  const platform::Executor ex = noiseless();
  search::Evaluator ev(wf, ex, 200.0, 1.0, 1);
  auto cfg = platform::uniform_config(1, grid.max_config());
  const auto baseline = baseline_of(ev, cfg);
  const auto outcome = pc.configure_path(ev, {0}, 200.0, cfg, baseline);
  EXPECT_LE(outcome.samples_used, 3u);
}

TEST(Configurator, SamplesAreBoundedByQueueDynamics) {
  // 2 ops, each with FUNC_TRIAL backoffs: the probe count has a hard
  // combinatorial bound even with an unbounded MAX_TRAIL.
  const platform::ConfigGrid grid;
  ConfiguratorOptions opts;
  opts.max_trail = 100000;
  opts.func_trial = 3;
  const PriorityConfigurator pc(grid, opts);
  const platform::Workflow wf = single();
  const platform::Executor ex = noiseless();
  search::Evaluator ev(wf, ex, 200.0, 1.0, 1);
  auto cfg = platform::uniform_config(1, grid.max_config());
  const auto baseline = baseline_of(ev, cfg);
  const auto outcome = pc.configure_path(ev, {0}, 200.0, cfg, baseline);
  EXPECT_LT(outcome.samples_used, 60u);
}

TEST(Configurator, AccountingIsConsistent) {
  const platform::ConfigGrid grid;
  const PriorityConfigurator pc(grid, {});
  const platform::Workflow wf = single();
  const platform::Executor ex = noiseless();
  search::Evaluator ev(wf, ex, 200.0, 1.0, 1);
  auto cfg = platform::uniform_config(1, grid.max_config());
  const auto baseline = baseline_of(ev, cfg);
  const std::size_t before = ev.samples_used();
  const auto outcome = pc.configure_path(ev, {0}, 200.0, cfg, baseline);
  EXPECT_EQ(ev.samples_used() - before, outcome.samples_used);
  EXPECT_EQ(outcome.ops_accepted + outcome.ops_reverted, outcome.samples_used);
  EXPECT_EQ(outcome.accepted_runtimes.size(), 1u);
  EXPECT_EQ(outcome.accepted_costs.size(), 1u);
}

TEST(Configurator, InfeasibleBudgetLeavesConfigAtBase) {
  // A path SLO below the fastest possible runtime: every deallocation (and
  // even the base) violates, so everything reverts.
  const platform::ConfigGrid grid;
  const PriorityConfigurator pc(grid, {});
  const platform::Workflow wf = single();
  const platform::Executor ex = noiseless();
  search::Evaluator ev(wf, ex, 1.0, 1.0, 1);
  auto cfg = platform::uniform_config(1, grid.max_config());
  const auto baseline = baseline_of(ev, cfg);
  const auto outcome = pc.configure_path(ev, {0}, 1.0, cfg, baseline);
  EXPECT_EQ(outcome.ops_accepted, 0u);
  EXPECT_EQ(cfg[0], grid.max_config());
}

TEST(Configurator, FixedStepPolicyWorks) {
  const platform::ConfigGrid grid;
  ConfiguratorOptions opts;
  opts.step_policy = StepPolicy::FixedUnits;
  opts.fixed_step_units = 8;
  const PriorityConfigurator pc(grid, opts);
  const platform::Workflow wf = single();
  const platform::Executor ex = noiseless();
  search::Evaluator ev(wf, ex, 200.0, 1.0, 1);
  auto cfg = platform::uniform_config(1, grid.max_config());
  const auto baseline = baseline_of(ev, cfg);
  const auto outcome = pc.configure_path(ev, {0}, 200.0, cfg, baseline);
  EXPECT_GT(outcome.ops_accepted, 0u);
  EXPECT_LT(cfg[0].memory_mb, 10240.0);
}

TEST(Configurator, FifoAblationStillConverges) {
  const platform::ConfigGrid grid;
  ConfiguratorOptions opts;
  opts.fifo_priority = true;
  const PriorityConfigurator pc(grid, opts);
  const platform::Workflow wf = single();
  const platform::Executor ex = noiseless();
  search::Evaluator ev(wf, ex, 200.0, 1.0, 1);
  auto cfg = platform::uniform_config(1, grid.max_config());
  const auto baseline = baseline_of(ev, cfg);
  (void)pc.configure_path(ev, {0}, 200.0, cfg, baseline);
  EXPECT_LT(cfg[0].memory_mb, 1024.0);
  EXPECT_LT(cfg[0].vcpu, 2.1);
}

TEST(Configurator, PolishRoundRecoversOvershoot) {
  // A function with high parallelism and a high-value knee: large first
  // deallocation steps overshoot the cpu cost minimum; the allocate-polish
  // round must climb back and end at least as cheap as without it.
  const platform::ConfigGrid grid;
  platform::Workflow wf("overshoot");
  wf.add_function("f", cpu_bound(2.0, 60.0, 8.5, 4096.0, 1024.0));
  const platform::Executor ex = noiseless();

  auto final_cost = [&](bool polish) {
    ConfiguratorOptions opts;
    opts.polish_allocate = polish;
    opts.max_trail = 200;
    const PriorityConfigurator pc(grid, opts);
    search::Evaluator ev(wf, ex, 500.0, 1.0, 1);
    auto cfg = platform::uniform_config(1, grid.max_config());
    const auto baseline = baseline_of(ev, cfg);
    (void)pc.configure_path(ev, {0}, 500.0, cfg, baseline);
    return ex.execute_mean(wf, cfg).total_cost;
  };

  EXPECT_LE(final_cost(true), final_cost(false) + 1e-9);
}

TEST(Configurator, PolishNeverViolatesTheSlo) {
  const platform::ConfigGrid grid;
  ConfiguratorOptions opts;
  opts.polish_allocate = true;
  opts.max_trail = 200;
  const PriorityConfigurator pc(grid, opts);
  const platform::Workflow wf = single();
  const platform::Executor ex = noiseless();
  const double slo = 25.0;
  search::Evaluator ev(wf, ex, slo, 1.0, 1);
  auto cfg = platform::uniform_config(1, grid.max_config());
  const auto baseline = baseline_of(ev, cfg);
  (void)pc.configure_path(ev, {0}, slo, cfg, baseline);
  EXPECT_LE(ex.execute_mean(wf, cfg).makespan, slo);
}

TEST(Configurator, MultiFunctionPathSharesTheBudget) {
  const platform::ConfigGrid grid;
  const PriorityConfigurator pc(grid, {});
  platform::Workflow wf("pair");
  wf.add_function("a", cpu_bound(10.0, 0.0, 1.0));
  wf.add_function("b", cpu_bound(10.0, 0.0, 1.0));
  wf.add_edge("a", "b");
  const platform::Executor ex = noiseless();
  const double slo = 24.0;  // each function ~11 s at 1 vCPU
  search::Evaluator ev(wf, ex, slo, 1.0, 1);
  auto cfg = platform::uniform_config(2, grid.max_config());
  const auto baseline = baseline_of(ev, cfg);
  (void)pc.configure_path(ev, {0, 1}, slo, cfg, baseline);
  EXPECT_LE(ex.execute_mean(wf, cfg).makespan, slo);
  // Both functions must have been shrunk from the base config.
  EXPECT_LT(cfg[0].memory_mb, 10240.0);
  EXPECT_LT(cfg[1].memory_mb, 10240.0);
}

}  // namespace
}  // namespace aarc::core
