// Coverage of the scheduler's option surface: polish round at scheduler
// level, input scale, custom grids, and MAX_TRAIL exhaustion behaviour.
#include <gtest/gtest.h>

#include "aarc/scheduler.h"
#include "perf/analytic.h"
#include "platform/executor.h"
#include "workloads/catalog.h"

namespace aarc::core {
namespace {

TEST(SchedulerOptions2, InputScaleChangesTheConfiguration) {
  const auto w = workloads::make_by_name("video_analysis");
  const platform::Executor ex;
  const GraphCentricScheduler s(ex, platform::ConfigGrid{});
  const auto light = s.schedule(w.workflow, w.slo_seconds, 0.25);
  const auto heavy = s.schedule(w.workflow, w.slo_seconds, 1.8);
  ASSERT_TRUE(light.result.found_feasible);
  ASSERT_TRUE(heavy.result.found_feasible);
  // Heavier inputs need more total memory (working sets scale with input).
  double light_mem = 0.0;
  double heavy_mem = 0.0;
  for (std::size_t i = 0; i < light.result.best_config.size(); ++i) {
    light_mem += light.result.best_config[i].memory_mb;
    heavy_mem += heavy.result.best_config[i].memory_mb;
  }
  EXPECT_GT(heavy_mem, light_mem);
}

TEST(SchedulerOptions2, PolishRoundNeverWorsensTheResult) {
  const auto w = workloads::make_by_name("video_analysis");
  const platform::Executor ex;
  platform::ExecutorOptions mean_opts;
  mean_opts.noise = perf::NoiseModel(0.0);
  const platform::Executor mean_ex(std::make_unique<platform::DecoupledLinearPricing>(),
                                   mean_opts);

  // The polish round keeps a step-up only when a noisy probe says it is
  // cheaper, so any single seed can be misled by one unlucky draw; the
  // property is about the expectation, so compare mean cost over seeds.
  double plain_total = 0.0;
  double polish_total = 0.0;
  for (const std::uint64_t seed : {2025u, 2026u, 2027u}) {
    SchedulerOptions base;
    base.seed = seed;
    SchedulerOptions polished = base;
    polished.configurator.polish_allocate = true;
    polished.configurator.max_trail = 160;

    const GraphCentricScheduler s1(ex, platform::ConfigGrid{}, base);
    const GraphCentricScheduler s2(ex, platform::ConfigGrid{}, polished);
    const auto plain = s1.schedule(w.workflow, w.slo_seconds);
    const auto polish = s2.schedule(w.workflow, w.slo_seconds);
    ASSERT_TRUE(plain.result.found_feasible && polish.result.found_feasible);

    plain_total += mean_ex.execute_mean(w.workflow, plain.result.best_config).total_cost;
    polish_total += mean_ex.execute_mean(w.workflow, polish.result.best_config).total_cost;
  }
  EXPECT_LE(polish_total, plain_total * 1.02);  // never meaningfully worse
}

TEST(SchedulerOptions2, CustomGridIsRespected) {
  // A coarse grid: every configured value must sit on it.
  const platform::ConfigGrid coarse(support::ValueGrid(1.0, 8.0, 1.0),
                                    support::ValueGrid(512.0, 8192.0, 512.0));
  const auto w = workloads::make_by_name("chatbot");
  const platform::Executor ex;
  const GraphCentricScheduler s(ex, coarse);
  const auto report = s.schedule(w.workflow, w.slo_seconds);
  ASSERT_TRUE(report.result.found_feasible);
  for (const auto& rc : report.result.best_config) {
    EXPECT_TRUE(coarse.contains(rc)) << platform::to_string(rc);
  }
}

TEST(SchedulerOptions2, TinyMaxTrailStillReturnsAValidConfig) {
  const auto w = workloads::make_by_name("chatbot");
  const platform::Executor ex;
  SchedulerOptions opts;
  opts.configurator.max_trail = 3;  // nearly no budget per path
  const GraphCentricScheduler s(ex, platform::ConfigGrid{}, opts);
  const auto report = s.schedule(w.workflow, w.slo_seconds);
  ASSERT_TRUE(report.result.found_feasible);
  // Very few samples: profiling + <= 3 per path + verification.
  EXPECT_LT(report.result.samples(), 20u);
  platform::ExecutorOptions mean_opts;
  mean_opts.noise = perf::NoiseModel(0.0);
  const platform::Executor mean_ex(std::make_unique<platform::DecoupledLinearPricing>(),
                                   mean_opts);
  EXPECT_LE(mean_ex.execute_mean(w.workflow, report.result.best_config).makespan,
            w.slo_seconds);
}

TEST(SchedulerOptions2, SeedChangesProbesNotFeasibility) {
  const auto w = workloads::make_by_name("ml_pipeline");
  const platform::Executor ex;
  SchedulerOptions a;
  a.seed = 1;
  SchedulerOptions b;
  b.seed = 2;
  const auto ra = GraphCentricScheduler(ex, platform::ConfigGrid{}, a)
                      .schedule(w.workflow, w.slo_seconds);
  const auto rb = GraphCentricScheduler(ex, platform::ConfigGrid{}, b)
                      .schedule(w.workflow, w.slo_seconds);
  EXPECT_TRUE(ra.result.found_feasible);
  EXPECT_TRUE(rb.result.found_feasible);
  // Different noise streams: traces differ somewhere.
  bool diverged = ra.result.samples() != rb.result.samples();
  if (!diverged) {
    for (std::size_t i = 0; i < ra.result.samples(); ++i) {
      if (ra.result.trace.samples()[i].makespan !=
          rb.result.trace.samples()[i].makespan) {
        diverged = true;
        break;
      }
    }
  }
  EXPECT_TRUE(diverged);
}

}  // namespace
}  // namespace aarc::core
