// Behavioural invariants of the AARC search read off its sampling trace.
// These pin Algorithm 1/2's observable behaviour without depending on any
// particular landscape: what the scheduler *probes* is as much part of its
// contract as what it returns.
#include <gtest/gtest.h>

#include "aarc/scheduler.h"
#include "platform/executor.h"
#include "workloads/catalog.h"
#include "workloads/synthetic.h"

namespace aarc::core {
namespace {

struct TraceCase {
  std::string name;
  workloads::Workload workload;
};

std::vector<std::string> case_names() {
  return {"chatbot", "ml_pipeline", "video_analysis", "synthetic"};
}

workloads::Workload load_case(const std::string& name) {
  if (name == "synthetic") {
    workloads::SyntheticOptions opts;
    opts.pattern = workloads::Pattern::Random;
    opts.layers = 2;
    opts.width = 3;
    opts.seed = 13;
    return workloads::make_synthetic(opts);
  }
  return workloads::make_by_name(name);
}

class TraceInvariants : public ::testing::TestWithParam<std::string> {
 protected:
  ScheduleReport run() const {
    const workloads::Workload w = load_case(GetParam());
    const platform::Executor ex;
    const GraphCentricScheduler scheduler(ex, platform::ConfigGrid{});
    return scheduler.schedule(w.workflow, w.slo_seconds);
  }
};

std::size_t coordinate_diff(const platform::WorkflowConfig& a,
                            const platform::WorkflowConfig& b) {
  std::size_t diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].vcpu != b[i].vcpu) ++diff;
    if (a[i].memory_mb != b[i].memory_mb) ++diff;
  }
  return diff;
}

TEST_P(TraceInvariants, FirstProbeIsTheOverProvisionedBase) {
  const auto report = run();
  const platform::ConfigGrid grid;
  const auto& first = report.result.trace.samples().front().config;
  for (const auto& rc : first) EXPECT_EQ(rc, grid.max_config());
}

TEST_P(TraceInvariants, EveryProbeIsOnTheGrid) {
  const auto report = run();
  const platform::ConfigGrid grid;
  for (const auto& s : report.result.trace.samples()) {
    for (const auto& rc : s.config) {
      EXPECT_TRUE(grid.contains(rc)) << platform::to_string(rc);
    }
  }
}

TEST_P(TraceInvariants, ConsecutiveProbesDifferInAtMostTwoCoordinates) {
  // Each probe applies exactly one deallocation to the current state; after
  // a revert the next probe restores one coordinate and moves another, so
  // consecutive sampled configs differ in 1 or 2 coordinates (0 only for
  // the final verification re-probe of the accepted state).
  const auto report = run();
  const auto& samples = report.result.trace.samples();
  for (std::size_t i = 1; i < samples.size(); ++i) {
    const std::size_t diff = coordinate_diff(samples[i - 1].config, samples[i].config);
    EXPECT_LE(diff, 2u) << "samples " << i - 1 << " -> " << i;
  }
}

TEST_P(TraceInvariants, ProbesNeverExceedTheBaseAllocation) {
  // Algorithm 2 only deallocates from the base configuration (the optional
  // polish round is off by default), so no probe allocates above it.
  const auto report = run();
  const platform::ConfigGrid grid;
  const auto base = grid.max_config();
  for (const auto& s : report.result.trace.samples()) {
    for (const auto& rc : s.config) {
      EXPECT_LE(rc.vcpu, base.vcpu);
      EXPECT_LE(rc.memory_mb, base.memory_mb);
    }
  }
}

TEST_P(TraceInvariants, FinalConfigWasActuallyProbed) {
  const auto report = run();
  if (!report.result.found_feasible) GTEST_SKIP();
  bool seen = false;
  for (const auto& s : report.result.trace.samples()) {
    if (s.config == report.result.best_config) seen = true;
  }
  EXPECT_TRUE(seen);
}

TEST_P(TraceInvariants, AcceptedCostsNeverGoBelowTheOracleFloor) {
  // Sanity: no probe can cost less than the sum of each function's cheapest
  // possible invocation at its fastest runtime (a loose physical floor).
  const auto report = run();
  const workloads::Workload w = load_case(GetParam());
  const platform::ConfigGrid grid;
  platform::ExecutorOptions opts;
  opts.noise = perf::NoiseModel(0.0);
  const platform::Executor ex(std::make_unique<platform::DecoupledLinearPricing>(), opts);
  const platform::DecoupledLinearPricing pricing;
  double floor = 0.0;
  for (dag::NodeId id = 0; id < w.workflow.function_count(); ++id) {
    // Cheapest conceivable: min-grid rate for the duration of the fastest
    // possible execution of that function.
    const double fastest = w.workflow.model(id).mean_runtime(10.0, 10240.0, 1.0);
    floor += pricing.invocation_cost(grid.min_config(), fastest) * 0.5;
  }
  for (const auto& s : report.result.trace.samples()) {
    if (!s.failed) EXPECT_GT(s.cost, floor * 0.1);
  }
}

INSTANTIATE_TEST_SUITE_P(Workloads, TraceInvariants, ::testing::ValuesIn(case_names()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

}  // namespace
}  // namespace aarc::core
