// ASCII rendering of a metrics snapshot: the `aarc_cli` run-summary table.
#pragma once

#include "obs/metrics.h"
#include "support/table.h"

namespace aarc::report {

/// One row per metric: name, kind, value (count for histograms) and the
/// p50/p95/p99 columns histograms fill in.  Zero-valued metrics are skipped
/// unless `include_zero` — an idle subsystem contributes noise, not signal.
support::Table metrics_summary(const obs::MetricsSnapshot& snapshot,
                               bool include_zero = false);

}  // namespace aarc::report
