#include "report/comparison.h"

#include <algorithm>

#include "support/contracts.h"

namespace aarc::report {

using support::expects;
using support::format_double;
using support::Table;

Table search_totals_table(const std::vector<MethodRun>& runs) {
  Table table({"workload", "method", "samples", "sampling runtime (s)",
               "sampling cost", "found feasible"});
  for (const auto& run : runs) {
    table.add_row({run.workload, run.method, std::to_string(run.result.samples()),
                   format_double(run.result.trace.total_sampling_runtime(), 1),
                   format_double(run.result.trace.total_sampling_cost(), 1),
                   run.result.found_feasible ? "yes" : "no"});
  }
  return table;
}

Table series_table(const std::vector<std::string>& labels,
                   const std::vector<std::vector<double>>& series, std::size_t stride,
                   int precision) {
  expects(labels.size() == series.size(), "one label per series");
  expects(stride >= 1, "stride must be >= 1");

  std::size_t longest = 0;
  for (const auto& s : series) longest = std::max(longest, s.size());

  std::vector<std::string> header{"sample"};
  header.insert(header.end(), labels.begin(), labels.end());
  Table table(std::move(header));

  for (std::size_t i = 0; i < longest; i += stride) {
    std::vector<std::string> row{std::to_string(i + 1)};
    for (const auto& s : series) {
      if (s.empty()) {
        row.emplace_back("-");
      } else {
        const std::size_t idx = std::min(i, s.size() - 1);
        row.push_back(format_double(s[idx], precision));
      }
    }
    table.add_row(std::move(row));
  }
  return table;
}

Table validation_table(const std::vector<ValidationRun>& runs) {
  Table table({"workload", "method", "runtime (s)", "cost", "SLO", "meets SLO (mean)"});
  for (const auto& run : runs) {
    const auto& m = run.profile.makespan;
    table.add_row({run.workload, run.method, support::format_mean_std(m.mean, m.stddev, 1),
                   support::format_kilo(run.profile.cost.sum, 1),
                   format_double(run.slo_seconds, 0),
                   m.mean <= run.slo_seconds ? "yes" : "NO"});
  }
  return table;
}

std::string reduction_percent(double ours, double theirs, int precision) {
  expects(theirs != 0.0, "cannot compute a reduction against zero");
  const double fraction = (theirs - ours) / theirs;
  return support::format_percent(fraction, precision);
}

}  // namespace aarc::report
