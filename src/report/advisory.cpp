#include "report/advisory.h"

#include "support/contracts.h"

namespace aarc::report {

using support::format_double;
using support::format_percent;

support::Table advisory_table(const core::AdvisoryReport& report,
                              const platform::Workflow& workflow) {
  support::expects(report.functions.size() == workflow.function_count(),
                   "advisory report does not match the workflow");
  support::Table table({"function", "vCPU", "MB", "runtime (s)", "cost share",
                        "affinity", "critical", "slack (s)"});
  for (const auto& f : report.functions) {
    table.add_row({workflow.function_name(f.node), format_double(f.config.vcpu, 1),
                   format_double(f.config.memory_mb, 0),
                   format_double(f.mean_runtime, 1), format_percent(f.cost_share, 1),
                   perf::to_string(f.affinity), f.on_critical_path ? "yes" : "",
                   format_double(f.slack_seconds, 1)});
  }
  return table;
}

std::string advisory_headline(const core::AdvisoryReport& report) {
  return "mean runtime " + format_double(report.mean_makespan, 1) + " s of SLO " +
         format_double(report.slo_seconds, 0) + " s (headroom " +
         format_percent(report.slo_headroom_fraction, 1) + "), mean cost " +
         format_double(report.mean_cost, 1);
}

}  // namespace aarc::report
