#include "report/metrics_report.h"

namespace aarc::report {

namespace {

const char* kind_name(obs::MetricKind kind) {
  switch (kind) {
    case obs::MetricKind::Counter: return "counter";
    case obs::MetricKind::Gauge: return "gauge";
    case obs::MetricKind::Histogram: return "histogram";
  }
  return "?";
}

std::string value_cell(const obs::MetricSample& m) {
  // Counters are integral; gauges and histogram sums keep decimals.
  if (m.kind == obs::MetricKind::Counter || m.kind == obs::MetricKind::Histogram) {
    return support::format_double(m.value, 0);
  }
  return support::format_double(m.value, 3);
}

}  // namespace

support::Table metrics_summary(const obs::MetricsSnapshot& snapshot,
                               bool include_zero) {
  support::Table table({"metric", "kind", "value", "p50", "p95", "p99"});
  for (const auto& m : snapshot.metrics) {
    if (!include_zero && m.value == 0.0) continue;
    std::vector<std::string> row{m.name, kind_name(m.kind), value_cell(m)};
    if (m.kind == obs::MetricKind::Histogram) {
      row.push_back(support::format_double(m.p50, 4));
      row.push_back(support::format_double(m.p95, 4));
      row.push_back(support::format_double(m.p99, 4));
    } else {
      row.insert(row.end(), {"-", "-", "-"});
    }
    table.add_row(std::move(row));
  }
  return table;
}

}  // namespace aarc::report
