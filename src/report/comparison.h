// Report builders shared by the bench harness: method-comparison tables
// (Fig. 5, Table II) and sample-series tables (Figs. 3, 6, 7).
#pragma once

#include <string>
#include <vector>

#include "platform/profiler.h"
#include "search/evaluator.h"
#include "support/table.h"

namespace aarc::report {

/// One search method's outcome on one workload.
struct MethodRun {
  std::string method;
  std::string workload;
  search::SearchResult result;
};

/// Fig. 5: per (workload, method) totals of the sampling phase.
support::Table search_totals_table(const std::vector<MethodRun>& runs);

/// Figs. 6/7: incumbent runtime/cost by sample count.  Series are padded
/// with their final value so rows align; `stride` thins the rows.
support::Table series_table(const std::vector<std::string>& labels,
                            const std::vector<std::vector<double>>& series,
                            std::size_t stride = 5, int precision = 2);

/// Table II row source: validation of a final configuration.
struct ValidationRun {
  std::string method;
  std::string workload;
  double slo_seconds = 0.0;
  platform::ProfileReport profile;
};

/// Table II: mean +/- std runtime and total cost per (workload, method).
support::Table validation_table(const std::vector<ValidationRun>& runs);

/// "-49.6%" style reduction of `ours` versus `theirs` (positive = cheaper).
std::string reduction_percent(double ours, double theirs, int precision = 1);

}  // namespace aarc::report
