#include "report/ascii_chart.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/contracts.h"
#include "support/table.h"

namespace aarc::report {

using support::expects;

std::string ascii_chart(const std::vector<std::string>& labels,
                        const std::vector<std::vector<double>>& series,
                        const ChartOptions& options) {
  expects(labels.size() == series.size(), "one label per series");
  expects(!series.empty(), "chart needs at least one series");
  expects(options.width >= 10 && options.height >= 3, "chart too small");

  static constexpr char kGlyphs[] = {'*', 'o', '+', 'x', '#', '@'};

  // Longest series defines the x extent.
  std::size_t longest = 0;
  for (const auto& s : series) longest = std::max(longest, s.size());
  if (longest == 0) return "(no data)\n";

  // Global y range over finite values.
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (const auto& s : series) {
    for (double v : s) {
      if (!std::isfinite(v)) continue;
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  if (!std::isfinite(lo)) return "(no finite data)\n";
  if (options.y_from_zero) lo = std::min(lo, 0.0);
  if (hi == lo) hi = lo + 1.0;  // flat series: give the range some height

  const std::size_t width = options.width;
  const std::size_t height = options.height;
  std::vector<std::string> canvas(height, std::string(width, ' '));

  auto row_of = [&](double v) {
    const double frac = (v - lo) / (hi - lo);
    const auto r = static_cast<std::size_t>(std::llround(
        frac * static_cast<double>(height - 1)));
    return height - 1 - std::min(r, height - 1);  // row 0 = top
  };

  for (std::size_t si = 0; si < series.size(); ++si) {
    const auto& s = series[si];
    if (s.empty()) continue;
    const char glyph = kGlyphs[si % std::size(kGlyphs)];
    for (std::size_t col = 0; col < width; ++col) {
      // Resample: x position -> sample index (padding with the last value).
      const std::size_t idx = longest == 1
                                  ? 0
                                  : col * (longest - 1) / (width - 1);
      const double v = idx < s.size() ? s[idx] : s.back();
      if (!std::isfinite(v)) continue;
      canvas[row_of(v)][col] = glyph;
    }
  }

  // Assemble with y labels on the left and an x axis underneath.
  std::string out;
  const std::string top_label = support::format_double(hi, 1);
  const std::string bottom_label = support::format_double(lo, 1);
  const std::size_t label_width = std::max(top_label.size(), bottom_label.size());

  for (std::size_t r = 0; r < height; ++r) {
    std::string label;
    if (r == 0) {
      label = top_label;
    } else if (r == height - 1) {
      label = bottom_label;
    }
    out.append(label_width - label.size(), ' ');
    out += label;
    out += " |";
    out += canvas[r];
    out += '\n';
  }
  out.append(label_width, ' ');
  out += " +";
  out.append(width, '-');
  out += "\n";
  out.append(label_width + 2, ' ');
  out += "1";
  const std::string xmax = std::to_string(longest);
  if (width > xmax.size() + 1) {
    out.append(width - 1 - xmax.size(), ' ');
    out += xmax;
  }
  out += "  (sample)\n";

  // Legend.
  for (std::size_t si = 0; si < series.size(); ++si) {
    out += "  ";
    out += kGlyphs[si % std::size(kGlyphs)];
    out += " = " + labels[si];
    out += '\n';
  }
  return out;
}

}  // namespace aarc::report
