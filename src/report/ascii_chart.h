// Terminal line charts.
//
// The paper's Figs. 3, 6 and 7 are line plots; the bench harness prints
// their data as tables for machine diffing, and uses this renderer to also
// *draw* them in the terminal so the shapes (convergence, instability,
// plateaus) are visible at a glance without leaving the shell.
#pragma once

#include <string>
#include <vector>

namespace aarc::report {

struct ChartOptions {
  std::size_t width = 70;   ///< plot columns (x resolution)
  std::size_t height = 12;  ///< plot rows (y resolution)
  bool y_from_zero = false; ///< anchor the y axis at 0 instead of the min
};

/// Render one or more series as an ASCII chart.  Series are drawn with
/// distinct glyphs ('*', 'o', '+', 'x', ...) over a shared y scale; x is the
/// sample index, resampled to the chart width.  Shorter series are padded
/// with their last value (matching the incumbent-series semantics).  A
/// legend and y-axis labels are included.  Non-finite values are skipped.
std::string ascii_chart(const std::vector<std::string>& labels,
                        const std::vector<std::vector<double>>& series,
                        const ChartOptions& options = {});

}  // namespace aarc::report
