// Rendering of advisory reports (aarc/advisor.h) as tables.
#pragma once

#include "aarc/advisor.h"
#include "platform/workflow.h"
#include "support/table.h"

namespace aarc::report {

/// One row per function: allocation, runtime, cost share, affinity,
/// critical-path membership, slack.
support::Table advisory_table(const core::AdvisoryReport& report,
                              const platform::Workflow& workflow);

/// One-line headline: runtime vs SLO with headroom, mean cost.
std::string advisory_headline(const core::AdvisoryReport& report);

}  // namespace aarc::report
