#include "perf/calibration.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <set>

#include "support/contracts.h"

namespace aarc::perf {

using support::expects;

namespace {

constexpr double kOomPenalty = 25.0;  // squared-log-error units per violated sample

double loss_impl(const AnalyticParams& params, const std::vector<CalibrationSample>& samples) {
  AnalyticParams p = params;
  try {
    p.validate();
  } catch (const support::ContractViolation&) {
    return std::numeric_limits<double>::infinity();
  }
  const AnalyticModel model(p);
  double total = 0.0;
  for (const auto& s : samples) {
    if (!model.fits_memory(s.memory_mb, s.input_scale)) {
      total += kOomPenalty;
      continue;
    }
    const double predicted = model.mean_runtime(s.vcpu, s.memory_mb, s.input_scale);
    const double e = std::log(predicted) - std::log(s.runtime_seconds);
    total += e * e;
  }
  return total / static_cast<double>(samples.size());
}

/// The tunable parameters as a flat vector (log-space for positive scales).
struct ParamVector {
  static constexpr std::size_t kDim = 8;

  static ParamVector from(const AnalyticParams& p) {
    ParamVector v;
    v.x = {std::log(std::max(p.io_seconds, 1e-3)),
           std::log(std::max(p.serial_seconds, 1e-3)),
           std::log(std::max(p.parallel_seconds, 1e-3)),
           std::log(p.max_parallelism),
           std::log(p.working_set_mb),
           std::log(p.min_memory_mb),
           std::log(std::max(p.pressure_coeff, 1e-3)),
           p.input_work_exp};
    return v;
  }

  AnalyticParams to_params() const {
    AnalyticParams p;
    p.io_seconds = std::exp(x[0]);
    p.serial_seconds = std::exp(x[1]);
    p.parallel_seconds = std::exp(x[2]);
    p.max_parallelism = std::max(1.0, std::exp(x[3]));
    p.working_set_mb = std::exp(x[4]);
    p.min_memory_mb = std::min(std::exp(x[5]), p.working_set_mb);
    p.pressure_coeff = std::exp(x[6]);
    p.input_work_exp = std::clamp(x[7], 0.0, 4.0);
    p.input_memory_exp = 0.0;
    return p;
  }

  std::array<double, kDim> x{};
};

ParamVector random_start(support::Rng& rng) {
  ParamVector v;
  v.x[0] = rng.uniform(std::log(0.01), std::log(60.0));    // io
  v.x[1] = rng.uniform(std::log(0.01), std::log(200.0));   // serial
  v.x[2] = rng.uniform(std::log(0.01), std::log(1000.0));  // parallel
  v.x[3] = rng.uniform(std::log(1.0), std::log(16.0));     // max parallelism
  v.x[4] = rng.uniform(std::log(64.0), std::log(8192.0));  // working set
  v.x[5] = rng.uniform(std::log(32.0), std::log(2048.0));  // min memory
  v.x[6] = rng.uniform(std::log(0.1), std::log(8.0));      // pressure
  v.x[7] = rng.uniform(0.0, 2.0);                          // work exp
  return v;
}

}  // namespace

double calibration_loss(const AnalyticParams& params,
                        const std::vector<CalibrationSample>& samples) {
  expects(!samples.empty(), "calibration requires samples");
  return loss_impl(params, samples);
}

CalibrationResult calibrate(const std::vector<CalibrationSample>& samples,
                            const CalibrationOptions& options) {
  expects(samples.size() >= 4, "calibration requires at least 4 samples");
  std::set<double> cpus;
  std::set<double> mems;
  for (const auto& s : samples) {
    expects(s.vcpu > 0.0 && s.memory_mb > 0.0 && s.input_scale > 0.0 &&
                s.runtime_seconds > 0.0,
            "calibration samples must be positive");
    cpus.insert(s.vcpu);
    mems.insert(s.memory_mb);
  }
  expects(cpus.size() >= 2, "samples must span >= 2 distinct cpu values");
  expects(mems.size() >= 2, "samples must span >= 2 distinct memory values");
  expects(options.restarts > 0 && options.iterations_per_restart > 0,
          "calibration budgets must be positive");

  support::Rng rng(options.seed);
  CalibrationResult best;
  best.mean_squared_log_error = std::numeric_limits<double>::infinity();

  for (std::size_t r = 0; r < options.restarts; ++r) {
    ParamVector current = random_start(rng);
    double current_loss = loss_impl(current.to_params(), samples);
    ++best.evaluations;
    double temperature = 0.5;
    for (std::size_t it = 0; it < options.iterations_per_restart; ++it) {
      // Coordinate proposal with shrinking magnitude.
      const std::size_t dim = rng.index(ParamVector::kDim);
      ParamVector proposal = current;
      proposal.x[dim] += rng.normal(0.0, temperature);
      const double proposal_loss = loss_impl(proposal.to_params(), samples);
      ++best.evaluations;
      if (proposal_loss < current_loss) {
        current = proposal;
        current_loss = proposal_loss;
      } else {
        temperature = std::max(0.02, temperature * 0.995);
      }
    }
    if (current_loss < best.mean_squared_log_error) {
      best.mean_squared_log_error = current_loss;
      best.params = current.to_params();
    }
  }
  return best;
}

}  // namespace aarc::perf
