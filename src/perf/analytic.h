// Analytic response-surface model: Amdahl CPU scaling x memory-pressure
// slowdown + I/O floor, with power-law input-size scaling.
#pragma once

#include "perf/model.h"

namespace aarc::perf {

/// Parameters of the analytic model.  All times are seconds at 1 vCPU with
/// ample memory and input_scale == 1.
struct AnalyticParams {
  double io_seconds = 0.0;         ///< incompressible floor (network/storage)
  double serial_seconds = 1.0;     ///< non-parallelizable compute
  double parallel_seconds = 0.0;   ///< perfectly parallelizable compute
  double max_parallelism = 1.0;    ///< cores beyond this are wasted (>= 1)
  double working_set_mb = 128.0;   ///< below this, pressure slowdown kicks in
  double min_memory_mb = 64.0;     ///< below this, OOM (<= working_set_mb)
  double pressure_coeff = 2.0;     ///< slowdown slope when mem < working set
  double input_work_exp = 1.0;     ///< compute & I/O scale as scale^exp
  double input_memory_exp = 0.0;   ///< working set / OOM floor scale as scale^exp

  /// Throws ContractViolation when parameters are inconsistent.
  void validate() const;
};

/// The standard function model used by the built-in workloads.
///
/// t(c, m, s) = s^we * io
///            + s^we * [ serial / min(c, 1) + parallel / min(c, P) ]
///              * (1 + k * max(0, ws(s)/m - 1))
/// where ws(s) = working_set_mb * s^me and the allocation OOMs below
/// min_memory_mb * s^me.
class AnalyticModel final : public PerfModel {
 public:
  explicit AnalyticModel(AnalyticParams params);

  double mean_runtime(double vcpu, double memory_mb, double input_scale) const override;
  /// SoA override: hoists the two input-scale powers once and streams the
  /// Amdahl + pressure arithmetic over lanes; bit-identical to the scalar.
  void mean_runtime_lanes(const double* vcpu, const double* memory_mb,
                          double input_scale, const unsigned char* active,
                          double* out, std::size_t lanes) const override;
  double min_memory_mb(double input_scale) const override;
  std::unique_ptr<PerfModel> clone() const override;

  const AnalyticParams& params() const { return params_; }

 private:
  AnalyticParams params_;
};

}  // namespace aarc::perf
