#include "perf/model.h"

namespace aarc::perf {

void PerfModel::mean_runtime_lanes(const double* vcpu, const double* memory_mb,
                                   double input_scale,
                                   const unsigned char* active, double* out,
                                   std::size_t lanes) const {
  for (std::size_t l = 0; l < lanes; ++l) {
    if (active[l] != 0) out[l] = mean_runtime(vcpu[l], memory_mb[l], input_scale);
  }
}

}  // namespace aarc::perf
