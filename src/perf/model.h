// Function performance models.
//
// The paper measures real functions in Docker containers; here (see DESIGN.md
// §2) each serverless function is described by a response surface
// t(vCPU, memory, input_scale) that captures the affinities the paper
// observes: CPU-bound functions speed up with cores until their parallelism
// is exhausted, memory-bound functions slow down sharply below their working
// set, and every function has an incompressible I/O floor.  The platform
// layer adds seeded multiplicative noise per invocation.
#pragma once

#include <memory>

namespace aarc::perf {

/// Deterministic mean-runtime model of one serverless function.
///
/// Contract for all implementations:
///  * vcpu > 0, memory_mb > 0, input_scale > 0;
///  * memory_mb >= min_memory_mb(input_scale), otherwise the configuration
///    is an out-of-memory failure and callers must not ask for a runtime;
///  * mean_runtime is finite, positive, non-increasing in vcpu and in
///    memory_mb, and non-decreasing in input_scale.
class PerfModel {
 public:
  virtual ~PerfModel() = default;

  /// Expected runtime in seconds under the given allocation and input scale.
  virtual double mean_runtime(double vcpu, double memory_mb, double input_scale) const = 0;

  /// Minimum memory below which the function OOMs for this input scale.
  virtual double min_memory_mb(double input_scale) const = 0;

  /// Deep copy (models are owned per workflow instance).
  virtual std::unique_ptr<PerfModel> clone() const = 0;

  /// Convenience: can this allocation run at all?
  bool fits_memory(double memory_mb, double input_scale) const {
    return memory_mb >= min_memory_mb(input_scale);
  }

 protected:
  PerfModel() = default;
  PerfModel(const PerfModel&) = default;
  PerfModel& operator=(const PerfModel&) = default;
};

}  // namespace aarc::perf
