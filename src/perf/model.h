// Function performance models.
//
// The paper measures real functions in Docker containers; here (see DESIGN.md
// §2) each serverless function is described by a response surface
// t(vCPU, memory, input_scale) that captures the affinities the paper
// observes: CPU-bound functions speed up with cores until their parallelism
// is exhausted, memory-bound functions slow down sharply below their working
// set, and every function has an incompressible I/O floor.  The platform
// layer adds seeded multiplicative noise per invocation.
#pragma once

#include <cstddef>
#include <memory>

namespace aarc::perf {

/// Deterministic mean-runtime model of one serverless function.
///
/// Contract for all implementations:
///  * vcpu > 0, memory_mb > 0, input_scale > 0;
///  * memory_mb >= min_memory_mb(input_scale), otherwise the configuration
///    is an out-of-memory failure and callers must not ask for a runtime;
///  * mean_runtime is finite, positive, non-increasing in vcpu and in
///    memory_mb, and non-decreasing in input_scale.
class PerfModel {
 public:
  virtual ~PerfModel() = default;

  /// Expected runtime in seconds under the given allocation and input scale.
  virtual double mean_runtime(double vcpu, double memory_mb, double input_scale) const = 0;

  /// Minimum memory below which the function OOMs for this input scale.
  virtual double min_memory_mb(double input_scale) const = 0;

  /// Batched mean_runtime over `lanes` parallel probe lanes of this
  /// function.  `vcpu`, `memory_mb` and `out` are contiguous arrays of
  /// `lanes` doubles; `active[l]` masks lanes whose allocation fits memory.
  /// `out[l]` is written only for active lanes and must be bit-identical to
  /// mean_runtime(vcpu[l], memory_mb[l], input_scale).  The default loops
  /// the scalar virtual; models override it with tight loops that hoist
  /// lane-invariant work (input-scale powers) so the compiler can vectorize.
  virtual void mean_runtime_lanes(const double* vcpu, const double* memory_mb,
                                  double input_scale,
                                  const unsigned char* active, double* out,
                                  std::size_t lanes) const;

  /// Deep copy (models are owned per workflow instance).
  virtual std::unique_ptr<PerfModel> clone() const = 0;

  /// Convenience: can this allocation run at all?
  bool fits_memory(double memory_mb, double input_scale) const {
    return memory_mb >= min_memory_mb(input_scale);
  }

 protected:
  PerfModel() = default;
  PerfModel(const PerfModel&) = default;
  PerfModel& operator=(const PerfModel&) = default;
};

}  // namespace aarc::perf
