// Per-invocation measurement noise.
//
// Real serverless invocations vary run to run (scheduling jitter, cache
// state, network).  Table II of the paper reports ~2-3% relative standard
// deviation; we model the observed runtime as mean * X with X lognormal and
// E[X] = 1, which keeps runtimes positive and the mean unbiased.
#pragma once

#include "support/rng.h"

namespace aarc::perf {

class NoiseModel {
 public:
  /// sigma is the lognormal shape parameter; 0 disables noise entirely.
  explicit NoiseModel(double sigma = 0.0);

  double sigma() const { return sigma_; }

  /// Draw one multiplicative factor (mean exactly 1).
  double sample_factor(support::Rng& rng) const;

  /// Apply noise to a mean runtime.
  double noisy_runtime(double mean_runtime, support::Rng& rng) const;

 private:
  double sigma_;
};

}  // namespace aarc::perf
