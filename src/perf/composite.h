// Composite model: a function whose body is a sequence of stages, each with
// its own response surface (e.g. "download, then decode, then upload").  The
// runtime is the sum of stage runtimes; the OOM floor is the max of stage
// floors.
#pragma once

#include <memory>
#include <vector>

#include "perf/model.h"

namespace aarc::perf {

class CompositeModel final : public PerfModel {
 public:
  /// Takes ownership of the stage models; at least one stage required.
  explicit CompositeModel(std::vector<std::unique_ptr<PerfModel>> stages);

  double mean_runtime(double vcpu, double memory_mb, double input_scale) const override;
  /// SoA override: accumulates stage lane-kernels in stage order, matching
  /// the scalar summation order bit for bit.
  void mean_runtime_lanes(const double* vcpu, const double* memory_mb,
                          double input_scale, const unsigned char* active,
                          double* out, std::size_t lanes) const override;
  double min_memory_mb(double input_scale) const override;
  std::unique_ptr<PerfModel> clone() const override;

  std::size_t stage_count() const { return stages_.size(); }
  /// Stage accessor (serialization, introspection).  i < stage_count().
  const PerfModel& stage(std::size_t i) const;

 private:
  std::vector<std::unique_ptr<PerfModel>> stages_;
};

}  // namespace aarc::perf
