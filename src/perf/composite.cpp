#include "perf/composite.h"

#include <algorithm>

#include "support/contracts.h"

namespace aarc::perf {

using support::expects;

CompositeModel::CompositeModel(std::vector<std::unique_ptr<PerfModel>> stages)
    : stages_(std::move(stages)) {
  expects(!stages_.empty(), "CompositeModel requires at least one stage");
  for (const auto& s : stages_) expects(s != nullptr, "CompositeModel stage must not be null");
}

double CompositeModel::mean_runtime(double vcpu, double memory_mb, double input_scale) const {
  double total = 0.0;
  for (const auto& s : stages_) total += s->mean_runtime(vcpu, memory_mb, input_scale);
  return total;
}

void CompositeModel::mean_runtime_lanes(const double* vcpu,
                                        const double* memory_mb,
                                        double input_scale,
                                        const unsigned char* active,
                                        double* out, std::size_t lanes) const {
  std::vector<double> stage_out(lanes, 0.0);
  for (std::size_t l = 0; l < lanes; ++l) {
    if (active[l] != 0) out[l] = 0.0;
  }
  for (const auto& s : stages_) {
    s->mean_runtime_lanes(vcpu, memory_mb, input_scale, active, stage_out.data(),
                          lanes);
    for (std::size_t l = 0; l < lanes; ++l) {
      if (active[l] != 0) out[l] += stage_out[l];
    }
  }
}

double CompositeModel::min_memory_mb(double input_scale) const {
  double floor = 0.0;
  for (const auto& s : stages_) floor = std::max(floor, s->min_memory_mb(input_scale));
  return floor;
}

const PerfModel& CompositeModel::stage(std::size_t i) const {
  expects(i < stages_.size(), "stage index out of range");
  return *stages_[i];
}

std::unique_ptr<PerfModel> CompositeModel::clone() const {
  std::vector<std::unique_ptr<PerfModel>> copies;
  copies.reserve(stages_.size());
  for (const auto& s : stages_) copies.push_back(s->clone());
  return std::make_unique<CompositeModel>(std::move(copies));
}

}  // namespace aarc::perf
