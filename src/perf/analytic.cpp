#include "perf/analytic.h"

#include <algorithm>
#include <cmath>

#include "support/contracts.h"

namespace aarc::perf {

using support::ensures;
using support::expects;

void AnalyticParams::validate() const {
  expects(io_seconds >= 0.0, "io_seconds must be >= 0");
  expects(serial_seconds >= 0.0, "serial_seconds must be >= 0");
  expects(parallel_seconds >= 0.0, "parallel_seconds must be >= 0");
  expects(io_seconds + serial_seconds + parallel_seconds > 0.0,
          "model must describe some work");
  expects(max_parallelism >= 1.0, "max_parallelism must be >= 1");
  expects(working_set_mb > 0.0, "working_set_mb must be > 0");
  expects(min_memory_mb > 0.0, "min_memory_mb must be > 0");
  expects(min_memory_mb <= working_set_mb, "min_memory_mb must be <= working_set_mb");
  expects(pressure_coeff >= 0.0, "pressure_coeff must be >= 0");
  expects(input_work_exp >= 0.0, "input_work_exp must be >= 0");
  expects(input_memory_exp >= 0.0, "input_memory_exp must be >= 0");
}

AnalyticModel::AnalyticModel(AnalyticParams params) : params_(params) { params_.validate(); }

double AnalyticModel::mean_runtime(double vcpu, double memory_mb, double input_scale) const {
  expects(vcpu > 0.0, "vcpu must be positive");
  expects(memory_mb > 0.0, "memory_mb must be positive");
  expects(input_scale > 0.0, "input_scale must be positive");
  expects(memory_mb >= min_memory_mb(input_scale),
          "allocation below OOM floor; check fits_memory first");

  const double work_scale = std::pow(input_scale, params_.input_work_exp);
  const double ws = params_.working_set_mb * std::pow(input_scale, params_.input_memory_exp);

  const double serial_rate = std::min(vcpu, 1.0);
  const double parallel_rate = std::min(vcpu, params_.max_parallelism);
  const double compute = params_.serial_seconds / serial_rate +
                         (params_.parallel_seconds > 0.0
                              ? params_.parallel_seconds / parallel_rate
                              : 0.0);
  const double pressure = 1.0 + params_.pressure_coeff * std::max(0.0, ws / memory_mb - 1.0);
  const double t = work_scale * (params_.io_seconds + compute * pressure);
  ensures(std::isfinite(t) && t > 0.0, "runtime must be finite and positive");
  return t;
}

void AnalyticModel::mean_runtime_lanes(const double* vcpu,
                                       const double* memory_mb,
                                       double input_scale,
                                       const unsigned char* active, double* out,
                                       std::size_t lanes) const {
  expects(input_scale > 0.0, "input_scale must be positive");
  // Lane-invariant terms hoisted; the per-lane body mirrors mean_runtime()
  // operation for operation so results stay bit-identical.
  const double work_scale = std::pow(input_scale, params_.input_work_exp);
  const double ws = params_.working_set_mb * std::pow(input_scale, params_.input_memory_exp);
  const double io = params_.io_seconds;
  const double serial = params_.serial_seconds;
  const double parallel = params_.parallel_seconds;
  const double max_parallelism = params_.max_parallelism;
  const double coeff = params_.pressure_coeff;
  for (std::size_t l = 0; l < lanes; ++l) {
    if (active[l] == 0) continue;
    const double serial_rate = std::min(vcpu[l], 1.0);
    const double parallel_rate = std::min(vcpu[l], max_parallelism);
    const double compute =
        serial / serial_rate + (parallel > 0.0 ? parallel / parallel_rate : 0.0);
    const double pressure = 1.0 + coeff * std::max(0.0, ws / memory_mb[l] - 1.0);
    out[l] = work_scale * (io + compute * pressure);
  }
}

double AnalyticModel::min_memory_mb(double input_scale) const {
  expects(input_scale > 0.0, "input_scale must be positive");
  return params_.min_memory_mb * std::pow(input_scale, params_.input_memory_exp);
}

std::unique_ptr<PerfModel> AnalyticModel::clone() const {
  return std::make_unique<AnalyticModel>(params_);
}

}  // namespace aarc::perf
