// Calibration: fit AnalyticParams to observed (cpu, mem, scale, runtime)
// samples.  Useful to port a real function's profile into the simulator and
// as a sanity check that the analytic family can represent measured surfaces.
//
// The fitter minimizes mean squared log-error with a seeded random-restart
// coordinate search (robust, derivative-free; the parameter space is tiny).
#pragma once

#include <vector>

#include "perf/analytic.h"
#include "support/rng.h"

namespace aarc::perf {

struct CalibrationSample {
  double vcpu = 1.0;
  double memory_mb = 1024.0;
  double input_scale = 1.0;
  double runtime_seconds = 1.0;
};

struct CalibrationResult {
  AnalyticParams params;
  double mean_squared_log_error = 0.0;
  std::size_t evaluations = 0;
};

struct CalibrationOptions {
  std::size_t restarts = 8;
  std::size_t iterations_per_restart = 200;
  std::uint64_t seed = 42;
};

/// Mean squared log-error of a parameter set against the samples; samples
/// whose memory is below the candidate OOM floor incur a fixed penalty.
double calibration_loss(const AnalyticParams& params,
                        const std::vector<CalibrationSample>& samples);

/// Fit the analytic family to the samples.  Requires >= 4 samples spanning
/// at least two distinct cpu values and two distinct memory values.
CalibrationResult calibrate(const std::vector<CalibrationSample>& samples,
                            const CalibrationOptions& options = {});

}  // namespace aarc::perf
