#include "perf/noise.h"

#include "support/contracts.h"

namespace aarc::perf {

using support::expects;

NoiseModel::NoiseModel(double sigma) : sigma_(sigma) {
  expects(sigma >= 0.0, "noise sigma must be >= 0");
}

double NoiseModel::sample_factor(support::Rng& rng) const {
  return rng.lognormal_unit_mean(sigma_);
}

double NoiseModel::noisy_runtime(double mean_runtime, support::Rng& rng) const {
  expects(mean_runtime > 0.0, "mean runtime must be positive");
  return mean_runtime * sample_factor(rng);
}

}  // namespace aarc::perf
