// Resource-affinity analysis.
//
// "AARC ... increases resource flexibility and efficiency through a
// comprehensive exploration of serverless workflows' resource affinities"
// (paper §I).  This module makes those affinities explicit: the local
// elasticity of a function's runtime with respect to each resource —
// d log t / d log r, measured by symmetric relative perturbation — and a
// classification into the archetypes the paper's motivation discusses
// (compute-intensive Chatbot/ML-Pipeline functions vs memory-hungry Video
// Analysis stages vs I/O floors).
#pragma once

#include <string>

#include "perf/model.h"

namespace aarc::perf {

/// Local log-log sensitivities at an operating point.  By the PerfModel
/// monotonicity contract both values are <= 0 (more resource never slows a
/// function down); magnitudes tell how much a resource still matters there.
struct ResourceElasticity {
  double cpu = 0.0;     ///< d log t / d log vcpu  (<= 0)
  double memory = 0.0;  ///< d log t / d log memory (<= 0)
};

enum class AffinityClass {
  CpuBound,     ///< runtime follows CPU, memory is slack
  MemoryBound,  ///< runtime follows memory (working-set pressure)
  IoBound,      ///< neither resource moves the runtime (floor-dominated)
  Balanced,     ///< both resources matter comparably
};

std::string to_string(AffinityClass c);

/// Thresholds for classify(): a resource "matters" when |elasticity| is at
/// least `significant`; the larger one dominates when it exceeds the other
/// by `dominance` times.
struct AffinityThresholds {
  double significant = 0.05;
  double dominance = 3.0;
};

/// Measure the elasticity of `model` at (vcpu, memory_mb, input_scale) with
/// a symmetric relative step `rel_step` (clipped to stay above the model's
/// OOM floor on the memory axis; the memory elasticity is 0 when no
/// downward perturbation is possible).
ResourceElasticity elasticity(const PerfModel& model, double vcpu, double memory_mb,
                              double input_scale = 1.0, double rel_step = 0.2);

/// Classify an operating point by its elasticities.
AffinityClass classify(const ResourceElasticity& e, const AffinityThresholds& t = {});

/// Convenience: elasticity + classify.
AffinityClass affinity_of(const PerfModel& model, double vcpu, double memory_mb,
                          double input_scale = 1.0, const AffinityThresholds& t = {});

}  // namespace aarc::perf
