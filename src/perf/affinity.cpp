#include "perf/affinity.h"

#include <algorithm>
#include <cmath>

#include "support/contracts.h"

namespace aarc::perf {

using support::expects;

std::string to_string(AffinityClass c) {
  switch (c) {
    case AffinityClass::CpuBound:
      return "cpu-bound";
    case AffinityClass::MemoryBound:
      return "memory-bound";
    case AffinityClass::IoBound:
      return "io-bound";
    case AffinityClass::Balanced:
      return "balanced";
  }
  return "?";
}

namespace {

/// Central log-log difference along one axis; `lo`/`hi` are the perturbed
/// resource values, `t_lo`/`t_hi` the runtimes there.
double log_log_slope(double lo, double hi, double t_lo, double t_hi) {
  return (std::log(t_hi) - std::log(t_lo)) / (std::log(hi) - std::log(lo));
}

}  // namespace

ResourceElasticity elasticity(const PerfModel& model, double vcpu, double memory_mb,
                              double input_scale, double rel_step) {
  expects(vcpu > 0.0 && memory_mb > 0.0 && input_scale > 0.0,
          "operating point must be positive");
  expects(rel_step > 0.0 && rel_step < 1.0, "rel_step must be in (0, 1)");
  expects(model.fits_memory(memory_mb, input_scale),
          "operating point must not be below the OOM floor");

  ResourceElasticity e;

  // CPU axis: symmetric in log space.
  {
    const double lo = vcpu * (1.0 - rel_step);
    const double hi = vcpu * (1.0 + rel_step);
    const double t_lo = model.mean_runtime(lo, memory_mb, input_scale);
    const double t_hi = model.mean_runtime(hi, memory_mb, input_scale);
    e.cpu = log_log_slope(lo, hi, t_lo, t_hi);
  }

  // Memory axis: keep the downward probe above the OOM floor (when the
  // operating point sits on the floor itself, no downward probe exists and
  // the elasticity degrades to the upward half-difference).
  {
    const double floor = model.min_memory_mb(input_scale);
    const double lo = std::max(memory_mb * (1.0 - rel_step), floor);
    const double hi = memory_mb * (1.0 + rel_step);
    if (lo < hi) {
      const double t_lo = model.mean_runtime(vcpu, lo, input_scale);
      const double t_hi = model.mean_runtime(vcpu, hi, input_scale);
      e.memory = log_log_slope(lo, hi, t_lo, t_hi);
    }
  }
  return e;
}

AffinityClass classify(const ResourceElasticity& e, const AffinityThresholds& t) {
  const double cpu = std::abs(e.cpu);
  const double mem = std::abs(e.memory);
  const bool cpu_matters = cpu >= t.significant;
  const bool mem_matters = mem >= t.significant;
  if (!cpu_matters && !mem_matters) return AffinityClass::IoBound;
  if (cpu_matters && (!mem_matters || cpu >= t.dominance * mem)) {
    return AffinityClass::CpuBound;
  }
  if (mem_matters && (!cpu_matters || mem >= t.dominance * cpu)) {
    return AffinityClass::MemoryBound;
  }
  return AffinityClass::Balanced;
}

AffinityClass affinity_of(const PerfModel& model, double vcpu, double memory_mb,
                          double input_scale, const AffinityThresholds& t) {
  return classify(elasticity(model, vcpu, memory_mb, input_scale), t);
}

}  // namespace aarc::perf
