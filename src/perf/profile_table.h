// Profile-table model: runtime measured (or precomputed) on a CPU x memory
// grid, evaluated by bilinear interpolation.  Used when a function's surface
// comes from real measurements rather than an analytic form, and by the
// calibration tests as ground truth.
#pragma once

#include <vector>

#include "perf/model.h"

namespace aarc::perf {

class ProfileTableModel final : public PerfModel {
 public:
  /// cpu_points and mem_points must be strictly increasing with >= 2 entries
  /// each; runtimes is row-major [cpu][mem] with positive entries.
  ProfileTableModel(std::vector<double> cpu_points, std::vector<double> mem_points,
                    std::vector<double> runtimes, double input_work_exp = 1.0);

  double mean_runtime(double vcpu, double memory_mb, double input_scale) const override;
  double min_memory_mb(double input_scale) const override;
  std::unique_ptr<PerfModel> clone() const override;

  /// Introspection for serialization.
  const std::vector<double>& cpu_points() const { return cpu_points_; }
  const std::vector<double>& mem_points() const { return mem_points_; }
  const std::vector<double>& runtime_matrix() const { return runtimes_; }
  double input_work_exp() const { return input_work_exp_; }

 private:
  double at(std::size_t ci, std::size_t mi) const;

  std::vector<double> cpu_points_;
  std::vector<double> mem_points_;
  std::vector<double> runtimes_;  // row-major [cpu][mem]
  double input_work_exp_;
};

}  // namespace aarc::perf
