#include "perf/profile_table.h"

#include <algorithm>
#include <cmath>

#include "support/contracts.h"

namespace aarc::perf {

using support::expects;

namespace {
/// Index i such that points[i] <= v < points[i+1], clamped to the grid.
std::size_t bracket(const std::vector<double>& points, double v) {
  if (v <= points.front()) return 0;
  if (v >= points[points.size() - 2]) return points.size() - 2;
  const auto it = std::upper_bound(points.begin(), points.end(), v);
  return static_cast<std::size_t>(it - points.begin()) - 1;
}

double clamp_to(const std::vector<double>& points, double v) {
  return std::clamp(v, points.front(), points.back());
}
}  // namespace

ProfileTableModel::ProfileTableModel(std::vector<double> cpu_points,
                                     std::vector<double> mem_points,
                                     std::vector<double> runtimes, double input_work_exp)
    : cpu_points_(std::move(cpu_points)),
      mem_points_(std::move(mem_points)),
      runtimes_(std::move(runtimes)),
      input_work_exp_(input_work_exp) {
  expects(cpu_points_.size() >= 2, "need >= 2 cpu grid points");
  expects(mem_points_.size() >= 2, "need >= 2 memory grid points");
  expects(runtimes_.size() == cpu_points_.size() * mem_points_.size(),
          "runtimes must be a full cpu x mem matrix");
  expects(std::is_sorted(cpu_points_.begin(), cpu_points_.end()) &&
              std::adjacent_find(cpu_points_.begin(), cpu_points_.end()) == cpu_points_.end(),
          "cpu grid must be strictly increasing");
  expects(std::is_sorted(mem_points_.begin(), mem_points_.end()) &&
              std::adjacent_find(mem_points_.begin(), mem_points_.end()) == mem_points_.end(),
          "memory grid must be strictly increasing");
  for (double t : runtimes_) expects(t > 0.0 && std::isfinite(t), "runtimes must be positive");
  expects(input_work_exp_ >= 0.0, "input_work_exp must be >= 0");
}

double ProfileTableModel::at(std::size_t ci, std::size_t mi) const {
  return runtimes_[ci * mem_points_.size() + mi];
}

double ProfileTableModel::mean_runtime(double vcpu, double memory_mb,
                                       double input_scale) const {
  expects(vcpu > 0.0 && memory_mb > 0.0 && input_scale > 0.0,
          "arguments must be positive");
  const double c = clamp_to(cpu_points_, vcpu);
  const double m = clamp_to(mem_points_, memory_mb);
  const std::size_t ci = bracket(cpu_points_, c);
  const std::size_t mi = bracket(mem_points_, m);
  const double cf = (c - cpu_points_[ci]) / (cpu_points_[ci + 1] - cpu_points_[ci]);
  const double mf = (m - mem_points_[mi]) / (mem_points_[mi + 1] - mem_points_[mi]);
  const double t00 = at(ci, mi);
  const double t01 = at(ci, mi + 1);
  const double t10 = at(ci + 1, mi);
  const double t11 = at(ci + 1, mi + 1);
  const double top = t00 + (t01 - t00) * mf;
  const double bottom = t10 + (t11 - t10) * mf;
  const double base = top + (bottom - top) * cf;
  return base * std::pow(input_scale, input_work_exp_);
}

double ProfileTableModel::min_memory_mb(double /*input_scale*/) const {
  return mem_points_.front();
}

std::unique_ptr<PerfModel> ProfileTableModel::clone() const {
  return std::make_unique<ProfileTableModel>(cpu_points_, mem_points_, runtimes_,
                                             input_work_exp_);
}

}  // namespace aarc::perf
