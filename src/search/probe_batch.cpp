#include "search/probe_batch.h"

#include "support/contracts.h"

namespace aarc::search {

using support::expects;

ProbeBatch::ProbeBatch(std::size_t function_count, double input_scale)
    : function_count_(function_count), input_scale_(input_scale) {
  expects(function_count > 0, "ProbeBatch needs at least one function");
  expects(input_scale > 0.0, "ProbeBatch input_scale must be positive");
}

std::size_t ProbeBatch::add(const platform::WorkflowConfig& config,
                            std::size_t tag) {
  expects(config.size() == function_count_,
          "ProbeBatch::add config size must match the batch function count");
  const std::size_t lane = tags_.size();
  vcpu_.resize(vcpu_.size() + function_count_);
  memory_mb_.resize(memory_mb_.size() + function_count_);
  double* cpu = vcpu_.data() + lane * function_count_;
  double* mem = memory_mb_.data() + lane * function_count_;
  for (std::size_t fn = 0; fn < function_count_; ++fn) {
    cpu[fn] = config[fn].vcpu;
    mem[fn] = config[fn].memory_mb;
  }
  tags_.push_back(tag);
  return lane;
}

platform::WorkflowConfig ProbeBatch::config(std::size_t lane) const {
  expects(lane < size(), "ProbeBatch lane out of range");
  platform::WorkflowConfig out(function_count_);
  const double* cpu = vcpu_.data() + lane * function_count_;
  const double* mem = memory_mb_.data() + lane * function_count_;
  for (std::size_t fn = 0; fn < function_count_; ++fn) {
    out[fn].vcpu = cpu[fn];
    out[fn].memory_mb = mem[fn];
  }
  return out;
}

void ProbeBatch::reserve(std::size_t lanes) {
  vcpu_.reserve(lanes * function_count_);
  memory_mb_.reserve(lanes * function_count_);
  tags_.reserve(lanes);
}

void ProbeBatch::clear() {
  vcpu_.clear();
  memory_mb_.clear();
  tags_.clear();
}

}  // namespace aarc::search
