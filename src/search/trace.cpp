#include "search/trace.h"

#include <cmath>
#include <limits>

#include "support/contracts.h"

namespace aarc::search {

using support::expects;

void SearchTrace::add(Sample sample) {
  expects(sample.index == samples_.size(), "sample indices must be consecutive");
  expects(std::isfinite(sample.wall_seconds) && sample.wall_seconds >= 0.0 &&
              std::isfinite(sample.wall_cost) && sample.wall_cost >= 0.0,
          "sampling wall time/cost must be finite and non-negative");
  expects(sample.cache_hit ? sample.probe_attempts == 0 : sample.probe_attempts >= 1,
          "a sample consumes at least one execution unless served from cache");
  expects(!sample.cache_hit || (sample.wall_seconds == 0.0 && sample.wall_cost == 0.0),
          "a cache hit must not be billed");
  samples_.push_back(std::move(sample));
}

double SearchTrace::total_sampling_runtime() const {
  double total = 0.0;
  for (const auto& s : samples_) total += s.wall_seconds;
  return total;
}

double SearchTrace::total_sampling_cost() const {
  double total = 0.0;
  for (const auto& s : samples_) total += s.wall_cost;
  return total;
}

std::size_t SearchTrace::total_probe_attempts() const {
  std::size_t total = 0;
  for (const auto& s : samples_) total += s.probe_attempts;
  return total;
}

std::size_t SearchTrace::resampled_probes() const {
  std::size_t total = 0;
  for (const auto& s : samples_) {
    if (s.probe_attempts > 1) ++total;
  }
  return total;
}

std::size_t SearchTrace::transient_failures() const {
  std::size_t total = 0;
  for (const auto& s : samples_) {
    if (s.failed && s.transient) ++total;
  }
  return total;
}

std::size_t SearchTrace::cache_hits() const {
  std::size_t total = 0;
  for (const auto& s : samples_) {
    if (s.cache_hit) ++total;
  }
  return total;
}

std::size_t SearchTrace::billed_samples() const {
  return samples_.size() - cache_hits();
}

std::optional<std::size_t> SearchTrace::best_feasible_index() const {
  std::optional<std::size_t> best;
  double best_cost = std::numeric_limits<double>::infinity();
  for (const auto& s : samples_) {
    if (s.feasible && s.cost < best_cost) {
      best_cost = s.cost;
      best = s.index;
    }
  }
  return best;
}

namespace {
enum class Field { Cost, Runtime };

std::vector<double> incumbent_series(const std::vector<Sample>& samples, Field field) {
  std::vector<double> out;
  double best_cost = std::numeric_limits<double>::infinity();
  double incumbent_value = 0.0;
  bool have_incumbent = false;
  std::size_t pending = 0;  // samples seen before the first feasible one
  for (const auto& s : samples) {
    if (s.feasible && s.cost < best_cost) {
      best_cost = s.cost;
      incumbent_value = field == Field::Cost ? s.cost : s.makespan;
      if (!have_incumbent) {
        have_incumbent = true;
        // Backfill the prefix so the series has one entry per sample.
        out.assign(pending, incumbent_value);
      }
    }
    if (have_incumbent) {
      out.push_back(incumbent_value);
    } else {
      ++pending;
    }
  }
  return out;
}
}  // namespace

std::vector<double> SearchTrace::incumbent_cost_series() const {
  return incumbent_series(samples_, Field::Cost);
}

std::vector<double> SearchTrace::incumbent_runtime_series() const {
  return incumbent_series(samples_, Field::Runtime);
}

std::vector<double> SearchTrace::raw_cost_series() const {
  std::vector<double> out;
  for (const auto& s : samples_) {
    if (!s.failed) out.push_back(s.cost);
  }
  return out;
}

std::vector<double> SearchTrace::raw_runtime_series() const {
  std::vector<double> out;
  for (const auto& s : samples_) {
    if (!s.failed) out.push_back(s.makespan);
  }
  return out;
}

}  // namespace aarc::search
