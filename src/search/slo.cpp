#include "search/slo.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "support/contracts.h"

namespace aarc::search {

using support::expects;

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct SloMetrics {
  obs::Counter& checks;
  obs::Counter& accepts;
  obs::Counter& rejects;
  obs::Counter& insufficient;
};

SloMetrics& slo_metrics() {
  auto& reg = obs::MetricsRegistry::global();
  static SloMetrics m{
      reg.counter(obs::metric::kSloChecks),
      reg.counter(obs::metric::kSloAccepts),
      reg.counter(obs::metric::kSloRejects),
      reg.counter(obs::metric::kSloInsufficientSamples),
  };
  return m;
}

}  // namespace

std::string to_string(SloMetric metric) {
  switch (metric) {
    case SloMetric::Mean:
      return "mean";
    case SloMetric::P50:
      return "p50";
    case SloMetric::P95:
      return "p95";
    case SloMetric::P99:
      return "p99";
  }
  return "?";
}

SloMetric slo_metric_from_string(std::string_view name) {
  for (SloMetric metric :
       {SloMetric::Mean, SloMetric::P50, SloMetric::P95, SloMetric::P99}) {
    if (to_string(metric) == name) return metric;
  }
  expects(false, "unknown SLO metric: " + std::string(name) +
                     " (mean | p50 | p95 | p99)");
  throw support::ContractViolation("unreachable");
}

double slo_metric_quantile(SloMetric metric) {
  switch (metric) {
    case SloMetric::Mean:
      break;
    case SloMetric::P50:
      return 0.50;
    case SloMetric::P95:
      return 0.95;
    case SloMetric::P99:
      return 0.99;
  }
  expects(false, "the mean metric has no quantile order");
  throw support::ContractViolation("unreachable");
}

std::string to_string(SloVerdict verdict) {
  switch (verdict) {
    case SloVerdict::Accept:
      return "accept";
    case SloVerdict::Reject:
      return "reject";
    case SloVerdict::InsufficientSamples:
      return "insufficient samples";
  }
  return "?";
}

void SloBound::validate() const {
  expects(confidence > 0.0 && confidence <= 1.0, "SLO confidence must be in (0, 1]");
}

std::size_t SloBound::min_replicates(std::size_t dimension) const {
  validate();
  expects(dimension >= 1, "verdict dimension must be >= 1");
  if (metric == SloMetric::Mean) {
    return confidence >= 1.0 ? 1 : kMeanMinReplicates;
  }
  // Scenario-approach bound (Campi & Garatti; Jolteon's PCPSolver
  // .sample_size): with N >= (2/eps) * (ln(1/beta) + d) samples, a decision
  // feasible on all of them violates the chance constraint with probability
  // at most eps, except on a beta-probability set of sample draws.
  const double eps = 1.0 - slo_metric_quantile(metric);
  const double beta = 1.0 - std::min(confidence, 0.9999);
  const double bound =
      (2.0 / eps) * (std::log(1.0 / beta) + static_cast<double>(dimension));
  return static_cast<std::size_t>(std::ceil(bound));
}

LatencyDistribution::LatencyDistribution() : sketch_() {}

void LatencyDistribution::add(double value) {
  expects(!(value < 0.0), "distribution samples must be non-negative");
  samples_.push_back(value);
  if (std::isfinite(value)) {
    finite_sum_ += value;
    sketch_.add(value);
  } else {
    ++failures_;
  }
}

double LatencyDistribution::mean() const {
  if (samples_.empty() || failures_ > 0) return kInf;
  return finite_sum_ / static_cast<double>(samples_.size());
}

double LatencyDistribution::stddev() const {
  if (failures_ > 0) return kInf;
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double m2 = 0.0;
  for (double v : samples_) m2 += (v - m) * (v - m);
  return std::sqrt(m2 / static_cast<double>(samples_.size() - 1));
}

double LatencyDistribution::quantile(double q) const {
  expects(q > 0.0 && q <= 1.0, "quantile order must be in (0, 1]");
  if (samples_.empty()) return kInf;
  std::vector<double> sorted(samples_);
  std::sort(sorted.begin(), sorted.end());
  // 1-based rank ceil(q * n): the smallest value v with at least ceil(q*n)
  // samples ≤ v.  Equivalent to "violations ≤ floor((1-q) * n)", the
  // empirical feasibility test of the scenario approach.
  const auto n = static_cast<double>(sorted.size());
  auto rank = static_cast<std::size_t>(std::ceil(q * n));
  rank = std::min(std::max<std::size_t>(rank, 1), sorted.size());
  return sorted[rank - 1];
}

double LatencyDistribution::metric_value(SloMetric metric) const {
  if (metric == SloMetric::Mean) return mean();
  return quantile(slo_metric_quantile(metric));
}

SloVerdict slo_verdict(const LatencyDistribution& distribution, const SloBound& bound,
                       double limit) {
  bound.validate();
  expects(limit > 0.0, "SLO verdict limit must be positive");
  SloMetrics& metrics = slo_metrics();
  metrics.checks.inc();
  if (distribution.count() < bound.min_replicates()) {
    metrics.insufficient.inc();
    return SloVerdict::InsufficientSamples;
  }
  bool accept = false;
  if (bound.metric == SloMetric::Mean && bound.confidence >= 1.0) {
    // Legacy point check: over one sample, mean() is the sample itself, so
    // this is exactly the classic `value > limit` reject rule.
    accept = !(distribution.mean() > limit);
  } else if (bound.metric == SloMetric::Mean) {
    // One-sided upper confidence bound on the true mean (normal
    // approximation; min_replicates() enforces the CLT floor).  A failed
    // replicate makes mean() +inf, so the comparison rejects.
    const double n = static_cast<double>(distribution.count());
    const double upper = distribution.mean() +
                         support::normal_quantile(bound.confidence) *
                             distribution.stddev() / std::sqrt(n);
    accept = !(upper > limit);
  } else {
    accept = !(distribution.quantile(slo_metric_quantile(bound.metric)) > limit);
  }
  (accept ? metrics.accepts : metrics.rejects).inc();
  return accept ? SloVerdict::Accept : SloVerdict::Reject;
}

}  // namespace aarc::search
