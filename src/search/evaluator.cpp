#include "search/evaluator.h"

#include <algorithm>
#include <cmath>

#include "support/contracts.h"
#include "support/rng.h"

namespace aarc::search {

using support::expects;

namespace {

/// Lower median of a non-empty vector (deterministic, no interpolation).
double lower_median(std::vector<double> values) {
  const std::size_t mid = (values.size() - 1) / 2;
  std::nth_element(values.begin(), values.begin() + static_cast<std::ptrdiff_t>(mid),
                   values.end());
  return values[mid];
}

}  // namespace

Evaluator::Evaluator(const platform::Workflow& workflow, const platform::Executor& executor,
                     double slo_seconds, double input_scale, std::uint64_t seed,
                     EvaluatorOptions options)
    : workflow_(&workflow),
      executor_(&executor),
      slo_(slo_seconds),
      input_scale_(input_scale),
      seed_(seed),
      options_(options),
      engine_(workflow, executor, input_scale, options.resample,
              std::max<std::size_t>(1, options.threads)) {
  expects(workflow_ != nullptr && executor_ != nullptr,
          "evaluator requires a workflow and an executor");
  expects(slo_seconds > 0.0, "SLO must be positive");
  expects(input_scale > 0.0, "input scale must be positive");
  expects(options.resample.outlier_factor >= 0.0, "outlier factor must be non-negative");
  workflow.validate();
}

std::vector<ProbeResult> Evaluator::evaluate_batch(const std::vector<ProbeRequest>& requests) {
  // --- Assembly (sequential): freeze every decision the workers must not
  // race on — cache answers, RNG stream ids, the outlier-median snapshot.
  const bool have_median = !success_makespans_.empty();
  const double median_snapshot = have_median ? lower_median(success_makespans_) : 0.0;

  std::vector<const Evaluation*> cached(requests.size(), nullptr);
  std::vector<ProbeJob> jobs;
  std::vector<std::size_t> job_of_request(requests.size(), 0);
  jobs.reserve(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    expects(requests[i].config.size() == workflow_->function_count(),
            "probe config must have one entry per function");
    if (options_.probe_cache) {
      cached[i] = cache_.find(ProbeCacheKey{requests[i].config, input_scale_, seed_});
      if (cached[i] != nullptr) continue;
    }
    ProbeJob job;
    job.config = &requests[i].config;
    job.rng_seed = support::derive_seed(seed_, next_stream_++);
    job.median_makespan = median_snapshot;
    job.have_median = have_median;
    job_of_request[i] = jobs.size();
    jobs.push_back(job);
  }

  // --- Execution: concurrent, deterministic (see batch_evaluator.h).
  const std::vector<ProbeOutcome> outcomes = engine_.run(jobs);

  // --- Commit (sequential, request order): billing, trace, cache inserts,
  // outlier history.
  std::vector<ProbeResult> results(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    ProbeResult& pr = results[i];
    pr.tag = requests[i].tag;
    pr.sample_index = trace_.size();
    if (cached[i] != nullptr) {
      pr.cache_hit = true;
      pr.evaluation = *cached[i];
      Sample& s = pr.evaluation.sample;
      s.index = pr.sample_index;
      s.cache_hit = true;
      s.wall_seconds = 0.0;  // served from memory: nothing billed,
      s.wall_cost = 0.0;     // no platform execution consumed
      s.probe_attempts = 0;
      trace_.add(s);
      continue;
    }

    const ProbeOutcome& outcome = outcomes[job_of_request[i]];
    const platform::ExecutionResult& result = outcome.representative;

    Evaluation& eval = pr.evaluation;
    eval.sample.index = pr.sample_index;
    eval.sample.config = requests[i].config;
    eval.sample.makespan = result.makespan;
    eval.sample.cost = result.total_cost;
    eval.sample.wall_seconds = outcome.wall_seconds;
    eval.sample.wall_cost = outcome.wall_cost;
    eval.sample.failed = result.failed;
    eval.sample.transient = result.transient_failure();
    eval.sample.feasible = !result.failed && result.makespan <= slo_;
    eval.sample.probe_attempts = outcome.attempts;
    eval.function_runtimes = result.runtimes();
    eval.function_costs.reserve(result.invocations.size());
    for (const auto& inv : result.invocations) eval.function_costs.push_back(inv.cost);

    if (!result.failed && std::isfinite(result.makespan)) {
      success_makespans_.push_back(result.makespan);
    }
    // Transient failures are weather, not configuration: caching one would
    // replay the hiccup forever.  Successes and deterministic OOMs memoize.
    if (options_.probe_cache && !eval.sample.transient) {
      cache_.insert(ProbeCacheKey{requests[i].config, input_scale_, seed_}, eval);
    }

    trace_.add(eval.sample);
  }
  return results;
}

}  // namespace aarc::search
