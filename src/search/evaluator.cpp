#include "search/evaluator.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

#include "obs/span.h"
#include "support/contracts.h"
#include "support/rng.h"

namespace aarc::search {

using support::expects;

namespace {

/// Lower median of a non-empty vector (deterministic, no interpolation).
double lower_median(std::vector<double> values) {
  const std::size_t mid = (values.size() - 1) / 2;
  std::nth_element(values.begin(), values.begin() + static_cast<std::ptrdiff_t>(mid),
                   values.end());
  return values[mid];
}

// Commit-phase handles (sequential path — contention-free by construction).
struct EvaluatorMetrics {
  obs::Counter& probes;
  obs::Counter& probes_executed;
  obs::Counter& cache_hits;
  obs::Counter& cache_misses;
  obs::Counter& probe_executions;
  obs::Histogram& probe_wall_seconds;
};

EvaluatorMetrics& evaluator_metrics() {
  auto& reg = obs::MetricsRegistry::global();
  static EvaluatorMetrics m{
      reg.counter(obs::metric::kSearchProbes),
      reg.counter(obs::metric::kSearchProbesExecuted),
      reg.counter(obs::metric::kSearchCacheHits),
      reg.counter(obs::metric::kSearchCacheMisses),
      reg.counter(obs::metric::kSearchProbeExecutions),
      reg.histogram(obs::metric::kSearchProbeWallSeconds,
                    obs::default_latency_buckets()),
  };
  return m;
}

/// Balanced contiguous partition: chunk `chunk` of `parts` over `count`.
std::pair<std::size_t, std::size_t> chunk_range(std::size_t chunk,
                                                std::size_t parts,
                                                std::size_t count) {
  const std::size_t base = count / parts;
  const std::size_t rem = count % parts;
  const std::size_t begin = chunk * base + std::min(chunk, rem);
  return {begin, begin + base + (chunk < rem ? 1 : 0)};
}

}  // namespace

Evaluator::Evaluator(const platform::Workflow& workflow, const platform::Executor& executor,
                     double slo_seconds, double input_scale, std::uint64_t seed,
                     EvaluatorOptions options)
    : workflow_(&workflow),
      executor_(&executor),
      slo_(slo_seconds),
      input_scale_(input_scale),
      seed_(seed),
      options_(options),
      schedule_(workflow.graph()),
      batches_metric_(obs::MetricsRegistry::global().counter(obs::metric::kSearchBatches)),
      batch_size_metric_(obs::MetricsRegistry::global().histogram(
          obs::metric::kSearchBatchSize, obs::default_size_buckets())),
      queue_depth_metric_(
          obs::MetricsRegistry::global().gauge(obs::metric::kSearchQueueDepth)),
      batch_lanes_metric_(
          obs::MetricsRegistry::global().counter(obs::metric::kProbeBatchLanes)),
      batch_kernel_calls_metric_(obs::MetricsRegistry::global().counter(
          obs::metric::kProbeBatchKernelCalls)),
      batch_scalar_fallbacks_metric_(obs::MetricsRegistry::global().counter(
          obs::metric::kProbeBatchScalarFallbacks)) {
  expects(slo_seconds > 0.0, "SLO must be positive");
  expects(input_scale > 0.0, "input scale must be positive");
  expects(options.resample.outlier_factor >= 0.0, "outlier factor must be non-negative");
  workflow.validate();
  ensure_workers(std::max<std::size_t>(1, options_.threads));
}

void Evaluator::ensure_workers(std::size_t n) {
  if (n < 1) n = 1;
  while (executors_.size() < n) executors_.push_back(executor_->clone());
  while (worker_probes_metric_.size() < n) {
    const std::string id = std::to_string(worker_probes_metric_.size());
    worker_probes_metric_.push_back(&obs::MetricsRegistry::global().counter(
        obs::labeled(obs::metric::kSearchWorkerProbes, "worker", id)));
    worker_busy_seconds_metric_.push_back(&obs::MetricsRegistry::global().gauge(
        obs::labeled(obs::metric::kSearchWorkerBusySeconds, "worker", id)));
  }
  if (n > 1 && (pool_ == nullptr || pool_->size() < n)) {
    pool_ = std::make_unique<support::ThreadPool>(n);
  }
}

std::vector<ProbeResult> Evaluator::evaluate_batch(const std::vector<ProbeRequest>& requests) {
  ProbeBatch batch = make_batch();
  batch.reserve(requests.size());
  for (const ProbeRequest& request : requests) batch.add(request.config, request.tag);
  return evaluate_batch(
      batch, ExecutionPolicy::threads(std::max<std::size_t>(1, options_.threads)));
}

ProbeResult Evaluator::probe(const platform::WorkflowConfig& config) {
  ProbeBatch batch = make_batch();
  batch.add(config);
  std::vector<ProbeResult> results = evaluate_batch(batch, ExecutionPolicy::serial());
  return std::move(results.front());
}

std::vector<ProbeResult> Evaluator::probe_replicates(
    const platform::WorkflowConfig& config, std::size_t replicates) {
  if (replicates <= 1) {
    std::vector<ProbeResult> one;
    one.push_back(probe(config));
    return one;
  }
  ProbeBatch batch = make_batch();
  batch.reserve(replicates);
  for (std::size_t r = 0; r < replicates; ++r) batch.add(config, r);
  obs::MetricsRegistry::global()
      .counter(obs::metric::kSloReplicates)
      .inc(replicates);
  // Replicate lanes are identical on purpose: bypass memoization and
  // in-batch dedup so each lane consumes its own derived RNG stream.
  return evaluate_batch_impl(
      batch, ExecutionPolicy::threads(std::max<std::size_t>(1, options_.threads)),
      /*use_cache=*/false);
}

const ProbeResult& Evaluator::representative(const std::vector<ProbeResult>& replicates) {
  expects(!replicates.empty(), "representative of an empty replicate set");
  std::vector<std::size_t> ok;
  for (std::size_t r = 0; r < replicates.size(); ++r) {
    if (!replicates[r].sample.failed) ok.push_back(r);
  }
  if (ok.empty()) return replicates.back();
  std::sort(ok.begin(), ok.end(), [&](std::size_t a, std::size_t b) {
    if (replicates[a].sample.makespan != replicates[b].sample.makespan) {
      return replicates[a].sample.makespan < replicates[b].sample.makespan;
    }
    return a < b;
  });
  return replicates[ok[(ok.size() - 1) / 2]];
}

ProbeResult Evaluator::probe_distribution(const platform::WorkflowConfig& config,
                                          std::size_t replicates) {
  const std::vector<ProbeResult> reps = probe_replicates(config, replicates);
  auto makespans = std::make_shared<LatencyDistribution>();
  auto costs = std::make_shared<LatencyDistribution>();
  constexpr double inf = std::numeric_limits<double>::infinity();
  for (const ProbeResult& r : reps) {
    makespans->add(r.sample.failed ? inf : r.sample.makespan);
    costs->add(r.sample.failed ? inf : r.sample.cost);
  }
  ProbeResult result = representative(reps);
  result.makespan_distribution = std::move(makespans);
  result.cost_distribution = std::move(costs);
  return result;
}

std::vector<ProbeResult> Evaluator::evaluate_batch(const ProbeBatch& batch,
                                                   ExecutionPolicy policy) {
  return evaluate_batch_impl(batch, policy, options_.probe_cache);
}

std::vector<ProbeResult> Evaluator::evaluate_batch_impl(const ProbeBatch& batch,
                                                        ExecutionPolicy policy,
                                                        bool use_cache) {
  expects(batch.function_count() == workflow_->function_count(),
          "probe batch must be shaped for this workflow");
  expects(batch.input_scale() == input_scale_,
          "probe batch input scale must match the evaluator");
  expects(schedule_.node_count() == workflow_->function_count(),
          "workflow topology changed after evaluator construction");
  const std::size_t count = batch.size();
  const std::size_t fns = workflow_->function_count();

  // --- Assembly (sequential): freeze every decision the workers must not
  // race on — cache answers, RNG stream ids, the outlier-median snapshot.
  const bool have_median = !success_makespans_.empty();
  const double median_snapshot = have_median ? lower_median(success_makespans_) : 0.0;

  constexpr std::size_t kNotDup = static_cast<std::size_t>(-1);
  std::vector<const ProbeResult*> cached(count, nullptr);
  std::vector<std::size_t> dup_of(count, kNotDup);
  std::vector<std::size_t> exec_of(count, 0);  ///< request -> executed index
  std::vector<std::size_t> exec_request;       ///< executed index -> request
  std::vector<std::uint64_t> exec_seed;        ///< per executed lane rng stream
  exec_request.reserve(count);
  exec_seed.reserve(count);
  // First pending occurrence of each key within this batch: a later duplicate
  // is the same deterministic question, so it is served from the first
  // occurrence's answer and billed nothing (cache semantics, batch-local).
  std::unordered_map<ProbeCacheKey, std::size_t, ProbeCacheKeyHash> pending;
  for (std::size_t i = 0; i < count; ++i) {
    if (use_cache) {
      ProbeCacheKey key{batch.config(i), input_scale_, seed_};
      cached[i] = cache_.find(key);
      if (cached[i] != nullptr) continue;
      const auto [first, inserted] = pending.try_emplace(std::move(key), i);
      if (!inserted) {
        dup_of[i] = first->second;
        continue;
      }
    }
    exec_of[i] = exec_request.size();
    exec_request.push_back(i);
    exec_seed.push_back(support::derive_seed(seed_, next_stream_++));
  }
  const std::size_t exec_count = exec_request.size();

  // --- Execution: concurrent, deterministic (chunked SoA kernel or
  // work-stealing scalar fallback — both pure functions of the lane list).
  batches_metric_.inc();
  batch_size_metric_.observe(static_cast<double>(exec_count));
  obs::Span batch_span("search.batch", "search");
  batch_span.arg("jobs", static_cast<std::uint64_t>(exec_count));

  const ResampleOptions& resample = options_.resample;
  struct Outcome {
    platform::ExecutionResult rep;  ///< representative run when !rep_is_lane
    bool rep_is_lane = false;       ///< representative is the lane's column
    double wall_seconds = 0.0;      ///< summed over all executions
    double wall_cost = 0.0;         ///< summed over all executions
    std::size_t attempts = 1;       ///< executions consumed (>= 1)
  };
  std::vector<Outcome> outcomes(exec_count);
  const std::size_t workers = std::max<std::size_t>(
      1, std::min(policy.thread_count, std::max<std::size_t>(exec_count, 1)));
  ensure_workers(workers);

  const bool use_kernel = executor_->supports_lane_execution();
  if (exec_count > 0 && use_kernel) {
    batch_lanes_metric_.inc(exec_count);
    // Transpose the executed lanes (only) into the function-major buffer,
    // function-outer so writes stream sequentially through each lane row.
    lanes_.resize(fns, exec_count);
    const std::vector<double>& cpu_src = batch.vcpu_lanes();
    const std::vector<double>& mem_src = batch.memory_lanes();
    for (std::size_t fn = 0; fn < fns; ++fn) {
      double* cpu_dst = lanes_.vcpu.data() + fn * exec_count;
      double* mem_dst = lanes_.memory_mb.data() + fn * exec_count;
      for (std::size_t k = 0; k < exec_count; ++k) {
        cpu_dst[k] = cpu_src[exec_request[k] * fns + fn];
        mem_dst[k] = mem_src[exec_request[k] * fns + fn];
      }
    }
    const bool noisy = executor_->options().noise.sigma() > 0.0;
    auto run_chunk = [&](std::size_t worker, std::size_t begin, std::size_t end) {
      if (begin == end) return;
      queue_depth_metric_.add(static_cast<double>(end - begin));
      const auto started = std::chrono::steady_clock::now();
      batch_kernel_calls_metric_.inc();
      executors_[worker].execute_lanes(*workflow_, schedule_, input_scale_, lanes_,
                                       begin, end,
                                       noisy ? exec_seed.data() : nullptr);
      worker_probes_metric_[worker]->inc(end - begin);
      worker_busy_seconds_metric_[worker]->add(
          std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
              .count());
      queue_depth_metric_.add(-static_cast<double>(end - begin));
    };
    if (workers <= 1 || exec_count <= 1) {
      run_chunk(0, 0, exec_count);
    } else {
      pool_->parallel_for(workers, [&](std::size_t chunk, std::size_t worker) {
        const auto [begin, end] = chunk_range(chunk, workers, exec_count);
        run_chunk(worker, begin, end);
      });
    }

    // Sequential pass: seed the outcome charges from the lane columns and
    // run any scalar re-samples (transient failures or outliers) on the
    // lane's own rng stream, continuing it exactly where the kernel left it.
    for (std::size_t k = 0; k < exec_count; ++k) {
      Outcome& oc = outcomes[k];
      oc.rep_is_lane = true;
      oc.wall_seconds = lanes_.wall_seconds[k];
      oc.wall_cost = lanes_.wall_cost[k];
      oc.attempts = 1;
      const bool failed0 = lanes_.failed[k] != 0;
      const bool oom0 = lanes_.oom[k] != 0;
      const double makespan0 = lanes_.makespan[k];
      auto needs_rerun = [&](bool failed, bool oom, double makespan) {
        // OOM is deterministic: re-running reproduces it, so don't waste
        // probes.
        if (failed) return !oom;
        return resample.outlier_factor > 0.0 && have_median &&
               makespan > resample.outlier_factor * median_snapshot;
      };
      if (resample.max_resamples == 0 || !needs_rerun(failed0, oom0, makespan0)) {
        continue;
      }
      const platform::WorkflowConfig config = batch.config(exec_request[k]);
      // Rebuild the lane's stream where the kernel left it.  Noise-free, the
      // kernel consumed no randomness, so a fresh stream at the lane's seed
      // is exactly the state the scalar path would carry.  Noisy, the kernel
      // drew one lognormal factor per node (rerun lanes never OOMed, so
      // every node was active) in topological order — replaying those draws
      // advances a fresh engine to the identical state, and keeps the kernel
      // free to scope its engines to a cache block.
      support::Rng rerun_rng(exec_seed[k]);
      if (noisy) {
        const double sigma = executor_->options().noise.sigma();
        for (std::size_t fn = 0; fn < fns; ++fn) {
          (void)rerun_rng.lognormal_unit_mean(sigma);
        }
      }
      support::Rng* rng = &rerun_rng;
      std::vector<platform::ExecutionResult> extra;
      std::size_t budget = resample.max_resamples;
      bool last_failed = failed0;
      bool last_oom = oom0;
      double last_makespan = makespan0;
      while (budget > 0 && needs_rerun(last_failed, last_oom, last_makespan)) {
        extra.push_back(executors_[0].execute(*workflow_, config, input_scale_, *rng));
        const platform::ExecutionResult& run = extra.back();
        last_failed = run.failed;
        last_oom = run.oom_failure();
        last_makespan = run.makespan;
        oc.wall_seconds += run.observed_wall_seconds();
        oc.wall_cost += run.observed_cost();
        --budget;
      }
      oc.attempts = 1 + extra.size();
      // Aggregate: the run with the median makespan among successful runs
      // (run 0 is the kernel lane); when every run failed, the last run.
      auto makespan_of = [&](std::size_t run) {
        return run == 0 ? makespan0 : extra[run - 1].makespan;
      };
      std::vector<std::size_t> ok;
      for (std::size_t run = 0; run <= extra.size(); ++run) {
        const bool failed = run == 0 ? failed0 : extra[run - 1].failed;
        if (!failed) ok.push_back(run);
      }
      std::size_t chosen = extra.size();
      if (!ok.empty()) {
        std::sort(ok.begin(), ok.end(), [&](std::size_t a, std::size_t b) {
          if (makespan_of(a) != makespan_of(b)) return makespan_of(a) < makespan_of(b);
          return a < b;
        });
        chosen = ok[(ok.size() - 1) / 2];
      }
      if (chosen != 0) {
        oc.rep_is_lane = false;
        oc.rep = std::move(extra[chosen - 1]);
      }
    }
  } else if (exec_count > 0) {
    // Scalar fallback: stochastic fault machinery is enabled, so each probe
    // runs the classic per-probe attempt/re-sample loop on a worker clone.
    batch_scalar_fallbacks_metric_.inc(exec_count);
    auto run_one = [&](std::size_t worker, std::size_t k) {
      const platform::WorkflowConfig config = batch.config(exec_request[k]);
      const platform::Executor& executor = executors_[worker];
      queue_depth_metric_.add(1.0);
      const auto started = std::chrono::steady_clock::now();
      obs::Span span("search.probe", "search");
      support::Rng rng(exec_seed[k]);

      std::vector<platform::ExecutionResult> runs;
      runs.push_back(executor.execute(*workflow_, config, input_scale_, rng));
      auto needs_rerun = [&](const platform::ExecutionResult& r) {
        if (r.failed) return !r.oom_failure();
        return resample.outlier_factor > 0.0 && have_median &&
               r.makespan > resample.outlier_factor * median_snapshot;
      };
      std::size_t budget = resample.max_resamples;
      while (budget > 0 && needs_rerun(runs.back())) {
        runs.push_back(executor.execute(*workflow_, config, input_scale_, rng));
        --budget;
      }
      std::vector<std::size_t> ok;
      for (std::size_t r = 0; r < runs.size(); ++r) {
        if (!runs[r].failed) ok.push_back(r);
      }
      std::size_t chosen = runs.size() - 1;
      if (!ok.empty()) {
        std::sort(ok.begin(), ok.end(), [&](std::size_t a, std::size_t b) {
          if (runs[a].makespan != runs[b].makespan) {
            return runs[a].makespan < runs[b].makespan;
          }
          return a < b;
        });
        chosen = ok[(ok.size() - 1) / 2];
      }
      Outcome& oc = outcomes[k];
      oc.attempts = runs.size();
      for (const auto& run : runs) {
        oc.wall_seconds += run.observed_wall_seconds();
        oc.wall_cost += run.observed_cost();
      }
      oc.rep = std::move(runs[chosen]);
      oc.rep_is_lane = false;
      span.arg("executions", static_cast<std::uint64_t>(oc.attempts));
      worker_probes_metric_[worker]->inc();
      worker_busy_seconds_metric_[worker]->add(
          std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
              .count());
      queue_depth_metric_.add(-1.0);
    };
    if (workers <= 1 || exec_count <= 1) {
      for (std::size_t k = 0; k < exec_count; ++k) run_one(0, k);
    } else {
      pool_->parallel_for(exec_count, [&](std::size_t item, std::size_t worker) {
        run_one(worker, item);
      });
    }
  }

  // --- Commit (sequential, request order): billing, trace, cache inserts,
  // outlier history.  One arena holds every executed probe's columns; the
  // results (and any cache entries) share it by reference count.
  auto arena = std::make_shared<ProbeResultArena>();
  arena->values.resize(2 * fns * exec_count);
  std::vector<ProbeResult> results(count);
  EvaluatorMetrics& metrics = evaluator_metrics();
  for (std::size_t i = 0; i < count; ++i) {
    ProbeResult& pr = results[i];
    pr.tag = batch.tag(i);
    pr.sample_index = trace_.size();
    metrics.probes.inc();
    if (cached[i] != nullptr || dup_of[i] != kNotDup) {
      metrics.cache_hits.inc();
      // A within-batch duplicate copies the first occurrence's committed
      // result (identical to what the cache would return; dup_of[i] < i, so
      // results[dup_of[i]] is final by now).
      const ProbeResult& src = cached[i] != nullptr ? *cached[i] : results[dup_of[i]];
      pr.sample = src.sample;
      pr.function_runtimes = src.function_runtimes;
      pr.function_costs = src.function_costs;
      pr.arena = src.arena;
      pr.cache_hit = true;
      pr.sample.index = pr.sample_index;
      pr.sample.cache_hit = true;
      pr.sample.wall_seconds = 0.0;  // served from memory: nothing billed,
      pr.sample.wall_cost = 0.0;     // no platform execution consumed
      pr.sample.probe_attempts = 0;
      trace_.add(pr.sample);
      continue;
    }

    const std::size_t k = exec_of[i];
    const Outcome& oc = outcomes[k];
    if (use_cache) metrics.cache_misses.inc();
    metrics.probes_executed.inc();
    metrics.probe_executions.inc(oc.attempts);
    metrics.probe_wall_seconds.observe(oc.wall_seconds);

    double* runtimes = arena->values.data() + 2 * fns * k;
    double* costs = runtimes + fns;
    double makespan = 0.0;
    double total_cost = 0.0;
    bool failed = false;
    bool transient = false;
    if (oc.rep_is_lane) {
      for (std::size_t fn = 0; fn < fns; ++fn) {
        runtimes[fn] = lanes_.runtime[fn * exec_count + k];
        costs[fn] = lanes_.cost[fn * exec_count + k];
      }
      makespan = lanes_.makespan[k];
      total_cost = lanes_.total_cost[k];
      failed = lanes_.failed[k] != 0;
      transient = failed && lanes_.oom[k] == 0;
    } else {
      const platform::ExecutionResult& rep = oc.rep;
      for (std::size_t fn = 0; fn < fns; ++fn) {
        runtimes[fn] = rep.invocations[fn].runtime;
        costs[fn] = rep.invocations[fn].cost;
      }
      makespan = rep.makespan;
      total_cost = rep.total_cost;
      failed = rep.failed;
      transient = rep.transient_failure();
    }
    pr.function_runtimes = std::span<const double>(runtimes, fns);
    pr.function_costs = std::span<const double>(costs, fns);
    pr.arena = arena;
    pr.sample.index = pr.sample_index;
    pr.sample.config = batch.config(i);
    pr.sample.makespan = makespan;
    pr.sample.cost = total_cost;
    pr.sample.wall_seconds = oc.wall_seconds;
    pr.sample.wall_cost = oc.wall_cost;
    pr.sample.failed = failed;
    pr.sample.transient = transient;
    pr.sample.feasible = !failed && makespan <= slo_;
    pr.sample.probe_attempts = oc.attempts;

    if (!failed && std::isfinite(makespan)) success_makespans_.push_back(makespan);
    // Transient failures are weather, not configuration: caching one would
    // replay the hiccup forever.  Successes and deterministic OOMs memoize.
    if (use_cache && !transient) {
      cache_.insert(ProbeCacheKey{pr.sample.config, input_scale_, seed_}, pr);
    }
    trace_.add(pr.sample);
  }
  return results;
}

}  // namespace aarc::search
