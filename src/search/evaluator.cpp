#include "search/evaluator.h"

#include <algorithm>
#include <cmath>

#include "support/contracts.h"

namespace aarc::search {

using support::expects;

namespace {

/// Lower median of a non-empty vector (deterministic, no interpolation).
double lower_median(std::vector<double> values) {
  const std::size_t mid = (values.size() - 1) / 2;
  std::nth_element(values.begin(), values.begin() + static_cast<std::ptrdiff_t>(mid),
                   values.end());
  return values[mid];
}

}  // namespace

Evaluator::Evaluator(const platform::Workflow& workflow, const platform::Executor& executor,
                     double slo_seconds, double input_scale, std::uint64_t seed,
                     ResampleOptions resample)
    : workflow_(&workflow),
      executor_(&executor),
      slo_(slo_seconds),
      input_scale_(input_scale),
      rng_(seed),
      resample_(resample) {
  expects(slo_seconds > 0.0, "SLO must be positive");
  expects(input_scale > 0.0, "input scale must be positive");
  expects(resample.outlier_factor >= 0.0, "outlier factor must be non-negative");
  workflow.validate();
}

Evaluation Evaluator::evaluate(const platform::WorkflowConfig& config) {
  std::vector<platform::ExecutionResult> runs;
  runs.push_back(executor_->execute(*workflow_, config, input_scale_, rng_));

  const bool have_median = !success_makespans_.empty();
  const double median_so_far = have_median ? lower_median(success_makespans_) : 0.0;
  auto needs_rerun = [&](const platform::ExecutionResult& r) {
    // OOM is deterministic: re-running reproduces it, so don't waste probes.
    if (r.failed) return !r.oom_failure();
    return resample_.outlier_factor > 0.0 && have_median &&
           r.makespan > resample_.outlier_factor * median_so_far;
  };

  std::size_t budget = resample_.max_resamples;
  while (budget > 0 && needs_rerun(runs.back())) {
    runs.push_back(executor_->execute(*workflow_, config, input_scale_, rng_));
    --budget;
  }

  // Aggregate: the run with the median makespan among successful runs; when
  // every run failed, the last run represents the probe.
  std::vector<std::size_t> ok;
  for (std::size_t i = 0; i < runs.size(); ++i) {
    if (!runs[i].failed) ok.push_back(i);
  }
  std::size_t chosen = runs.size() - 1;
  if (!ok.empty()) {
    std::sort(ok.begin(), ok.end(), [&](std::size_t a, std::size_t b) {
      if (runs[a].makespan != runs[b].makespan) {
        return runs[a].makespan < runs[b].makespan;
      }
      return a < b;
    });
    chosen = ok[(ok.size() - 1) / 2];
  }
  const platform::ExecutionResult& result = runs[chosen];

  Evaluation eval;
  eval.sample.index = trace_.size();
  eval.sample.config = config;
  eval.sample.makespan = result.makespan;
  eval.sample.cost = result.total_cost;
  for (const auto& run : runs) {
    eval.sample.wall_seconds += run.observed_wall_seconds();
    eval.sample.wall_cost += run.observed_cost();
  }
  eval.sample.failed = result.failed;
  eval.sample.transient = result.transient_failure();
  eval.sample.feasible = !result.failed && result.makespan <= slo_;
  eval.sample.probe_attempts = runs.size();
  eval.function_runtimes = result.runtimes();
  eval.function_costs.reserve(result.invocations.size());
  for (const auto& inv : result.invocations) eval.function_costs.push_back(inv.cost);

  if (!result.failed && std::isfinite(result.makespan)) {
    success_makespans_.push_back(result.makespan);
  }

  trace_.add(eval.sample);
  return eval;
}

}  // namespace aarc::search
