#include "search/evaluator.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "obs/metrics.h"
#include "support/contracts.h"
#include "support/rng.h"

namespace aarc::search {

using support::expects;

namespace {

/// Lower median of a non-empty vector (deterministic, no interpolation).
double lower_median(std::vector<double> values) {
  const std::size_t mid = (values.size() - 1) / 2;
  std::nth_element(values.begin(), values.begin() + static_cast<std::ptrdiff_t>(mid),
                   values.end());
  return values[mid];
}

// Commit-phase handles (sequential path — contention-free by construction).
struct EvaluatorMetrics {
  obs::Counter& probes;
  obs::Counter& probes_executed;
  obs::Counter& cache_hits;
  obs::Counter& cache_misses;
  obs::Counter& probe_executions;
  obs::Histogram& probe_wall_seconds;
};

EvaluatorMetrics& evaluator_metrics() {
  auto& reg = obs::MetricsRegistry::global();
  static EvaluatorMetrics m{
      reg.counter(obs::metric::kSearchProbes),
      reg.counter(obs::metric::kSearchProbesExecuted),
      reg.counter(obs::metric::kSearchCacheHits),
      reg.counter(obs::metric::kSearchCacheMisses),
      reg.counter(obs::metric::kSearchProbeExecutions),
      reg.histogram(obs::metric::kSearchProbeWallSeconds,
                    obs::default_latency_buckets()),
  };
  return m;
}

}  // namespace

Evaluator::Evaluator(const platform::Workflow& workflow, const platform::Executor& executor,
                     double slo_seconds, double input_scale, std::uint64_t seed,
                     EvaluatorOptions options)
    : workflow_(&workflow),
      executor_(&executor),
      slo_(slo_seconds),
      input_scale_(input_scale),
      seed_(seed),
      options_(options),
      engine_(workflow, executor, input_scale, options.resample,
              std::max<std::size_t>(1, options.threads)) {
  expects(workflow_ != nullptr && executor_ != nullptr,
          "evaluator requires a workflow and an executor");
  expects(slo_seconds > 0.0, "SLO must be positive");
  expects(input_scale > 0.0, "input scale must be positive");
  expects(options.resample.outlier_factor >= 0.0, "outlier factor must be non-negative");
  workflow.validate();
}

std::vector<ProbeResult> Evaluator::evaluate_batch(const std::vector<ProbeRequest>& requests) {
  // --- Assembly (sequential): freeze every decision the workers must not
  // race on — cache answers, RNG stream ids, the outlier-median snapshot.
  const bool have_median = !success_makespans_.empty();
  const double median_snapshot = have_median ? lower_median(success_makespans_) : 0.0;

  constexpr std::size_t kNotDup = static_cast<std::size_t>(-1);
  std::vector<const Evaluation*> cached(requests.size(), nullptr);
  std::vector<std::size_t> dup_of(requests.size(), kNotDup);
  std::vector<ProbeJob> jobs;
  std::vector<std::size_t> job_of_request(requests.size(), 0);
  jobs.reserve(requests.size());
  // First pending occurrence of each key within this batch: a later duplicate
  // is the same deterministic question, so it is served from the first
  // occurrence's answer and billed nothing (cache semantics, batch-local).
  std::unordered_map<ProbeCacheKey, std::size_t, ProbeCacheKeyHash> pending;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    expects(requests[i].config.size() == workflow_->function_count(),
            "probe config must have one entry per function");
    if (options_.probe_cache) {
      const ProbeCacheKey key{requests[i].config, input_scale_, seed_};
      cached[i] = cache_.find(key);
      if (cached[i] != nullptr) continue;
      const auto [first, inserted] = pending.try_emplace(key, i);
      if (!inserted) {
        dup_of[i] = first->second;
        continue;
      }
    }
    ProbeJob job;
    job.config = &requests[i].config;
    job.rng_seed = support::derive_seed(seed_, next_stream_++);
    job.median_makespan = median_snapshot;
    job.have_median = have_median;
    job_of_request[i] = jobs.size();
    jobs.push_back(job);
  }

  // --- Execution: concurrent, deterministic (see batch_evaluator.h).
  const std::vector<ProbeOutcome> outcomes = engine_.run(jobs);

  // --- Commit (sequential, request order): billing, trace, cache inserts,
  // outlier history.
  std::vector<ProbeResult> results(requests.size());
  EvaluatorMetrics& metrics = evaluator_metrics();
  for (std::size_t i = 0; i < requests.size(); ++i) {
    ProbeResult& pr = results[i];
    pr.tag = requests[i].tag;
    pr.sample_index = trace_.size();
    metrics.probes.inc();
    if (cached[i] != nullptr || dup_of[i] != kNotDup) {
      metrics.cache_hits.inc();
      pr.cache_hit = true;
      // A within-batch duplicate copies the first occurrence's committed
      // result (identical to what the cache would return; dup_of[i] < i, so
      // results[dup_of[i]] is final by now).
      pr.evaluation =
          cached[i] != nullptr ? *cached[i] : results[dup_of[i]].evaluation;
      Sample& s = pr.evaluation.sample;
      s.index = pr.sample_index;
      s.cache_hit = true;
      s.wall_seconds = 0.0;  // served from memory: nothing billed,
      s.wall_cost = 0.0;     // no platform execution consumed
      s.probe_attempts = 0;
      trace_.add(s);
      continue;
    }

    const ProbeOutcome& outcome = outcomes[job_of_request[i]];
    const platform::ExecutionResult& result = outcome.representative;
    if (options_.probe_cache) metrics.cache_misses.inc();
    metrics.probes_executed.inc();
    metrics.probe_executions.inc(outcome.attempts);
    metrics.probe_wall_seconds.observe(outcome.wall_seconds);

    Evaluation& eval = pr.evaluation;
    eval.sample.index = pr.sample_index;
    eval.sample.config = requests[i].config;
    eval.sample.makespan = result.makespan;
    eval.sample.cost = result.total_cost;
    eval.sample.wall_seconds = outcome.wall_seconds;
    eval.sample.wall_cost = outcome.wall_cost;
    eval.sample.failed = result.failed;
    eval.sample.transient = result.transient_failure();
    eval.sample.feasible = !result.failed && result.makespan <= slo_;
    eval.sample.probe_attempts = outcome.attempts;
    eval.function_runtimes = result.runtimes();
    eval.function_costs.reserve(result.invocations.size());
    for (const auto& inv : result.invocations) eval.function_costs.push_back(inv.cost);

    if (!result.failed && std::isfinite(result.makespan)) {
      success_makespans_.push_back(result.makespan);
    }
    // Transient failures are weather, not configuration: caching one would
    // replay the hiccup forever.  Successes and deterministic OOMs memoize.
    if (options_.probe_cache && !eval.sample.transient) {
      cache_.insert(ProbeCacheKey{requests[i].config, input_scale_, seed_}, eval);
    }

    trace_.add(eval.sample);
  }
  return results;
}

}  // namespace aarc::search
