#include "search/evaluator.h"

#include "support/contracts.h"

namespace aarc::search {

using support::expects;

Evaluator::Evaluator(const platform::Workflow& workflow, const platform::Executor& executor,
                     double slo_seconds, double input_scale, std::uint64_t seed)
    : workflow_(&workflow),
      executor_(&executor),
      slo_(slo_seconds),
      input_scale_(input_scale),
      rng_(seed) {
  expects(slo_seconds > 0.0, "SLO must be positive");
  expects(input_scale > 0.0, "input scale must be positive");
  workflow.validate();
}

Evaluation Evaluator::evaluate(const platform::WorkflowConfig& config) {
  const platform::ExecutionResult result =
      executor_->execute(*workflow_, config, input_scale_, rng_);

  Evaluation eval;
  eval.sample.index = trace_.size();
  eval.sample.config = config;
  eval.sample.makespan = result.makespan;
  eval.sample.cost = result.total_cost;
  eval.sample.wall_seconds = result.observed_wall_seconds();
  eval.sample.wall_cost = result.observed_cost();
  eval.sample.failed = result.failed;
  eval.sample.feasible = !result.failed && result.makespan <= slo_;
  eval.function_runtimes = result.runtimes();
  eval.function_costs.reserve(result.invocations.size());
  for (const auto& inv : result.invocations) eval.function_costs.push_back(inv.cost);

  trace_.add(eval.sample);
  return eval;
}

}  // namespace aarc::search
