// The evaluator: the single gateway through which every search algorithm
// probes the platform.
//
// One probe = one configuration question = one "sample" in the paper's
// terminology.  The evaluator owns the trace, so sampling totals and
// convergence series are recorded uniformly no matter which algorithm is
// searching.
//
// The API is batch-first: evaluate_batch() takes a SoA search::ProbeBatch
// (or a vector of ProbeRequests, which is converted) plus an
// ExecutionPolicy, and returns ProbeResults in request order.  probe() is a
// thin wrapper over a batch of one, kept for the sequential algorithms
// (AARC's priority queue, MAFF's coordinate descent) whose next probe
// depends on the last.
//
// Execution takes one of two paths behind the same accounting gateway:
//
//   * SoA kernel (the default): when the executor has no stochastic fault
//     machinery enabled (faults / cold starts / retries / timeouts — plain
//     noise is fine), executed lanes are transposed function-major and
//     evaluated by platform::Executor::execute_lanes — the vectorized
//     per-function model + DAG recurrence loop.  With an ExecutionPolicy of
//     N threads the lane range is split into N contiguous chunks, one per
//     worker clone.
//   * scalar fallback: with fault machinery enabled, each probe runs the
//     classic per-probe attempt loop on a worker clone (work-stealing pool).
//
// Both paths are bit-identical to each other and to every earlier release:
// probe i draws from Rng(derive_seed(seed, i)), where i counts executed
// probes in submission order, and every batch decision (cache lookup,
// outlier median) is frozen at batch assembly.  A run with threads = N is
// therefore bit-identical to threads = 1, and the kernel path reproduces
// the scalar arithmetic operation for operation.
//
// On a hostile platform (see platform/faults.h) a single execution is an
// unreliable measurement; optional probe re-sampling re-runs failed (or
// outlier) executions a bounded number of times and aggregates by the
// median successful run.  Every execution is billed — wall time and cost
// accumulate over re-samples — and the count is recorded in the trace.
//
// With the probe cache enabled, a configuration already answered under this
// (input_scale, seed-epoch) is served from memory: the trace records the
// sample as a cache hit with zero wall charges and zero executions, so
// repeated configurations — priority-configurator revert loops, BO
// re-visits, duplicates within one batch — stop being billed.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "dag/lane_schedule.h"
#include "obs/metrics.h"
#include "platform/executor.h"
#include "platform/lanes.h"
#include "search/evaluator_options.h"
#include "search/probe.h"
#include "search/probe_batch.h"
#include "search/probe_cache.h"
#include "search/trace.h"
#include "support/thread_pool.h"

namespace aarc::search {

class Evaluator {
 public:
  /// The evaluator keeps references; workflow and executor must outlive it.
  /// Construction asserts a well-formed workflow via contracts and the
  /// evaluator is non-copyable, so a dangling or aliased gateway fails
  /// loudly instead of silently probing the wrong platform.  The DAG
  /// structure is snapshotted here; the workflow's topology must not grow
  /// while the evaluator lives (weights may change freely).
  Evaluator(const platform::Workflow& workflow, const platform::Executor& executor,
            double slo_seconds, double input_scale, std::uint64_t seed,
            EvaluatorOptions options = {});

  /// Deprecated forwarding overload (pre-batch API): resample knobs only.
  /// Prefer the EvaluatorOptions constructor.
  inline Evaluator(const platform::Workflow& workflow, const platform::Executor& executor,
                   double slo_seconds, double input_scale, std::uint64_t seed,
                   ResampleOptions resample)
      : Evaluator(workflow, executor, slo_seconds, input_scale, seed,
                  EvaluatorOptions{resample, 1, false}) {}

  Evaluator(const Evaluator&) = delete;
  Evaluator& operator=(const Evaluator&) = delete;

  /// An empty batch shaped for this evaluator's workflow and input scale.
  ProbeBatch make_batch() const {
    return ProbeBatch(workflow_->function_count(), input_scale_);
  }

  /// Probe every lane of `batch` and return results in request (append)
  /// order.  Lanes in one batch are independent: they share the
  /// outlier-median snapshot and cache view taken at submission, and
  /// execute concurrently per `policy`.  Results are bit-identical for
  /// every policy.
  std::vector<ProbeResult> evaluate_batch(const ProbeBatch& batch,
                                          ExecutionPolicy policy);

  /// Convenience: convert `requests` into a ProbeBatch (preserving tags)
  /// and evaluate it under the evaluator's default thread count.
  std::vector<ProbeResult> evaluate_batch(const std::vector<ProbeRequest>& requests);

  /// Probe one configuration — a batch of one, for sequential algorithms.
  ProbeResult probe(const platform::WorkflowConfig& config);

  /// Probe one configuration `replicates` times and return every replicate
  /// (submission order).  Each replicate draws from its own derived RNG
  /// stream exactly as independent probes would, so results are
  /// bit-identical for every thread count.  Replicate batches bypass the
  /// probe memoization cache in both directions: a distribution needs
  /// `replicates` *fresh* draws (dedup/cache would collapse the identical
  /// lanes into one answer), and the replicates must not overwrite the
  /// cache's single-sample answers.  Every replicate is billed and traced.
  /// `replicates` <= 1 degenerates to exactly probe().
  std::vector<ProbeResult> probe_replicates(const platform::WorkflowConfig& config,
                                            std::size_t replicates);

  /// probe_replicates() aggregated for verdict-driven callers: the returned
  /// result is the representative replicate (median makespan among
  /// successful replicates, deterministic tie-break — the same rule probe
  /// re-sampling uses; the last replicate when every one failed) with
  /// `makespan_distribution` / `cost_distribution` attached over all
  /// replicates.  `replicates` <= 1 degenerates to exactly probe() (with
  /// single-sample distributions attached).
  ProbeResult probe_distribution(const platform::WorkflowConfig& config,
                                 std::size_t replicates);

  /// The representative of a non-empty replicate set: median-makespan
  /// successful replicate (lower median, earliest on ties), or the last
  /// replicate when all failed.
  static const ProbeResult& representative(const std::vector<ProbeResult>& replicates);

  /// Pre-batch scalar entry point; routes through probe() so memoization
  /// and budget accounting still flow through the one batch gateway.
  [[deprecated("use probe() or evaluate_batch()")]]
  ProbeResult evaluate(const platform::WorkflowConfig& config) {
    return probe(config);
  }

  const platform::Workflow& workflow() const { return *workflow_; }
  const platform::Executor& executor() const { return *executor_; }
  double slo_seconds() const { return slo_; }
  double input_scale() const { return input_scale_; }
  const EvaluatorOptions& options() const { return options_; }
  const ResampleOptions& resample_options() const { return options_.resample; }

  const SearchTrace& trace() const { return trace_; }
  std::size_t samples_used() const { return trace_.size(); }
  /// Probes that consumed at least one platform execution — the currency
  /// sample budgets (MAX_TRAIL, max_samples) are denominated in.  Equals
  /// samples_used() when the probe cache is off; trails it otherwise,
  /// because cached answers are free.
  std::size_t billed_samples() const { return trace_.billed_samples(); }
  /// Platform executions consumed, re-samples included; cache hits consume
  /// none, so this can trail samples_used() when the cache is on.
  std::size_t executions_used() const { return trace_.total_probe_attempts(); }
  /// Probes answered from the memoization cache.
  std::size_t cache_hits() const { return trace_.cache_hits(); }

 private:
  /// Grow the worker-clone pool (and its labeled metric handles) to `n`.
  void ensure_workers(std::size_t n);

  /// The one batch gateway.  `use_cache` gates memoization lookup, in-batch
  /// dedup and cache insertion; the public entry points pass the evaluator's
  /// probe_cache option, replicate batches pass false.
  std::vector<ProbeResult> evaluate_batch_impl(const ProbeBatch& batch,
                                               ExecutionPolicy policy, bool use_cache);

  const platform::Workflow* workflow_;
  const platform::Executor* executor_;
  double slo_;
  double input_scale_;
  std::uint64_t seed_;
  EvaluatorOptions options_;
  dag::LaneSchedule schedule_;  ///< DAG structure snapshot for the kernel
  ProbeCache cache_;
  std::uint64_t next_stream_ = 0;          ///< streams consumed by executed probes
  std::vector<double> success_makespans_;  ///< for the outlier median
  SearchTrace trace_;

  // Execution engine state (formerly BatchEvaluator), folded in so billing,
  // memoization and execution share exactly one gateway.
  std::vector<platform::Executor> executors_;  ///< one clone per worker
  std::unique_ptr<support::ThreadPool> pool_;  ///< null until threads > 1 used
  platform::ExecutionLanes lanes_;             ///< reused SoA buffer

  // Metric handles, resolved once so the per-probe cost is a handful of
  // relaxed atomic ops (write-only: results never read these).
  obs::Counter& batches_metric_;
  obs::Histogram& batch_size_metric_;
  obs::Gauge& queue_depth_metric_;
  obs::Counter& batch_lanes_metric_;
  obs::Counter& batch_kernel_calls_metric_;
  obs::Counter& batch_scalar_fallbacks_metric_;
  std::vector<obs::Counter*> worker_probes_metric_;      ///< one per worker
  std::vector<obs::Gauge*> worker_busy_seconds_metric_;  ///< one per worker
};

/// The outcome every search algorithm returns.
struct SearchResult {
  platform::WorkflowConfig best_config;  ///< empty when no feasible config found
  bool found_feasible = false;
  SearchTrace trace;

  /// Billed samples — probes that consumed a platform execution.  Cache hits
  /// appear in the trace but are free; identical to trace.size() when the
  /// probe cache is off.
  std::size_t samples() const { return trace.billed_samples(); }
};

}  // namespace aarc::search
