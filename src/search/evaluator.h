// The evaluator: the single gateway through which every search algorithm
// probes the platform.
//
// One evaluate() call = one workflow execution on the (simulated) platform =
// one "sample" in the paper's terminology.  The evaluator owns the trace, so
// sampling totals and convergence series are recorded uniformly no matter
// which algorithm is searching.
#pragma once

#include <cstdint>

#include "platform/executor.h"
#include "search/trace.h"
#include "support/rng.h"

namespace aarc::search {

/// Also carries the per-function observed runtimes of the latest probe,
/// which AARC's Algorithm 1/2 needs (path runtime sums).
struct Evaluation {
  Sample sample;
  std::vector<double> function_runtimes;  ///< by NodeId; inf where OOM
  std::vector<double> function_costs;     ///< by NodeId; inf where OOM
};

class Evaluator {
 public:
  /// The evaluator keeps references; workflow and executor must outlive it.
  Evaluator(const platform::Workflow& workflow, const platform::Executor& executor,
            double slo_seconds, double input_scale, std::uint64_t seed);

  /// Execute once under `config`, record and return the sample.
  Evaluation evaluate(const platform::WorkflowConfig& config);

  const platform::Workflow& workflow() const { return *workflow_; }
  const platform::Executor& executor() const { return *executor_; }
  double slo_seconds() const { return slo_; }
  double input_scale() const { return input_scale_; }

  const SearchTrace& trace() const { return trace_; }
  std::size_t samples_used() const { return trace_.size(); }

 private:
  const platform::Workflow* workflow_;
  const platform::Executor* executor_;
  double slo_;
  double input_scale_;
  support::Rng rng_;
  SearchTrace trace_;
};

/// The outcome every search algorithm returns.
struct SearchResult {
  platform::WorkflowConfig best_config;  ///< empty when no feasible config found
  bool found_feasible = false;
  SearchTrace trace;

  std::size_t samples() const { return trace.size(); }
};

}  // namespace aarc::search
