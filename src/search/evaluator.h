// The evaluator: the single gateway through which every search algorithm
// probes the platform.
//
// One probe = one configuration question = one "sample" in the paper's
// terminology.  The evaluator owns the trace, so sampling totals and
// convergence series are recorded uniformly no matter which algorithm is
// searching.
//
// The API is batch-first: evaluate_batch() takes any number of
// ProbeRequests, fans them out across the BatchEvaluator's worker pool
// (per-thread Executor clones, one private RNG stream per probe) and
// returns ProbeResults in request order.  evaluate() is a thin wrapper over
// a batch of one, kept for the sequential algorithms (AARC's priority
// queue, MAFF's coordinate descent) whose next probe depends on the last.
//
// Determinism guarantee: probe i draws from Rng(derive_seed(seed, i)),
// where i counts executed probes in submission order, and every batch
// decision (cache lookup, outlier median) is frozen at batch assembly.  A
// run with threads = N is therefore bit-identical to threads = 1.
//
// On a hostile platform (see platform/faults.h) a single execution is an
// unreliable measurement; optional probe re-sampling re-runs failed (or
// outlier) executions a bounded number of times and aggregates by the
// median successful run.  Every execution is billed — wall time and cost
// accumulate over re-samples — and the count is recorded in the trace.
//
// With the probe cache enabled, a configuration already answered under this
// (input_scale, seed-epoch) is served from memory: the trace records the
// sample as a cache hit with zero wall charges and zero executions, so
// repeated configurations — priority-configurator revert loops, BO
// re-visits — stop being billed.
#pragma once

#include <cstdint>

#include "platform/executor.h"
#include "search/batch_evaluator.h"
#include "search/evaluator_options.h"
#include "search/probe.h"
#include "search/probe_cache.h"
#include "search/trace.h"

namespace aarc::search {

class Evaluator {
 public:
  /// The evaluator keeps references; workflow and executor must outlive it.
  /// Construction asserts a well-formed workflow via contracts and the
  /// evaluator is non-copyable, so a dangling or aliased gateway fails
  /// loudly instead of silently probing the wrong platform.
  Evaluator(const platform::Workflow& workflow, const platform::Executor& executor,
            double slo_seconds, double input_scale, std::uint64_t seed,
            EvaluatorOptions options = {});

  /// Deprecated forwarding overload (pre-batch API): resample knobs only.
  /// Prefer the EvaluatorOptions constructor.
  inline Evaluator(const platform::Workflow& workflow, const platform::Executor& executor,
                   double slo_seconds, double input_scale, std::uint64_t seed,
                   ResampleOptions resample)
      : Evaluator(workflow, executor, slo_seconds, input_scale, seed,
                  EvaluatorOptions{resample, 1, false}) {}

  Evaluator(const Evaluator&) = delete;
  Evaluator& operator=(const Evaluator&) = delete;

  /// Probe every request and return results in request order.  Requests in
  /// one batch are independent: they share the outlier-median snapshot and
  /// cache view taken at submission, and execute concurrently when the
  /// evaluator was built with threads > 1.
  std::vector<ProbeResult> evaluate_batch(const std::vector<ProbeRequest>& requests);

  /// Probe one configuration — a batch of one, for sequential algorithms.
  Evaluation evaluate(const platform::WorkflowConfig& config) {
    return evaluate_batch({ProbeRequest(config)}).front().evaluation;
  }

  const platform::Workflow& workflow() const { return *workflow_; }
  const platform::Executor& executor() const { return *executor_; }
  double slo_seconds() const { return slo_; }
  double input_scale() const { return input_scale_; }
  const EvaluatorOptions& options() const { return options_; }
  const ResampleOptions& resample_options() const { return options_.resample; }

  const SearchTrace& trace() const { return trace_; }
  std::size_t samples_used() const { return trace_.size(); }
  /// Probes that consumed at least one platform execution — the currency
  /// sample budgets (MAX_TRAIL, max_samples) are denominated in.  Equals
  /// samples_used() when the probe cache is off; trails it otherwise,
  /// because cached answers are free.
  std::size_t billed_samples() const { return trace_.billed_samples(); }
  /// Platform executions consumed, re-samples included; cache hits consume
  /// none, so this can trail samples_used() when the cache is on.
  std::size_t executions_used() const { return trace_.total_probe_attempts(); }
  /// Probes answered from the memoization cache.
  std::size_t cache_hits() const { return trace_.cache_hits(); }

 private:
  const platform::Workflow* workflow_;
  const platform::Executor* executor_;
  double slo_;
  double input_scale_;
  std::uint64_t seed_;
  EvaluatorOptions options_;
  BatchEvaluator engine_;
  ProbeCache cache_;
  std::uint64_t next_stream_ = 0;          ///< streams consumed by executed probes
  std::vector<double> success_makespans_;  ///< for the outlier median
  SearchTrace trace_;
};

/// The outcome every search algorithm returns.
struct SearchResult {
  platform::WorkflowConfig best_config;  ///< empty when no feasible config found
  bool found_feasible = false;
  SearchTrace trace;

  /// Billed samples — probes that consumed a platform execution.  Cache hits
  /// appear in the trace but are free; identical to trace.size() when the
  /// probe cache is off.
  std::size_t samples() const { return trace.billed_samples(); }
};

}  // namespace aarc::search
