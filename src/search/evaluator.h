// The evaluator: the single gateway through which every search algorithm
// probes the platform.
//
// One evaluate() call = one probe of a configuration = one "sample" in the
// paper's terminology.  The evaluator owns the trace, so sampling totals and
// convergence series are recorded uniformly no matter which algorithm is
// searching.
//
// On a hostile platform (see platform/faults.h) a single execution is an
// unreliable measurement: a transient crash or a straggler would make the
// search abandon a perfectly good configuration.  The evaluator therefore
// supports optional probe re-sampling: a failed (or outlier) execution is
// re-run up to a bounded number of times and the probe is aggregated by the
// median successful run.  Every execution is billed — wall time and cost
// accumulate over re-samples — and the count is recorded in the trace.
#pragma once

#include <cstdint>

#include "platform/executor.h"
#include "search/trace.h"
#include "support/rng.h"

namespace aarc::search {

/// Also carries the per-function observed runtimes of the latest probe,
/// which AARC's Algorithm 1/2 needs (path runtime sums).
struct Evaluation {
  Sample sample;
  std::vector<double> function_runtimes;  ///< by NodeId; inf where failed
  std::vector<double> function_costs;     ///< by NodeId; inf where failed
};

/// Probe re-sampling knobs (disabled by default: one execution per probe).
struct ResampleOptions {
  /// Extra executions allowed per probe (0 disables re-sampling).
  std::size_t max_resamples = 0;
  /// When > 0, a successful execution whose makespan exceeds this factor
  /// times the median successful makespan seen so far also triggers a
  /// re-run (straggler smoothing).  0 disables the outlier check.
  double outlier_factor = 0.0;
};

class Evaluator {
 public:
  /// The evaluator keeps references; workflow and executor must outlive it.
  Evaluator(const platform::Workflow& workflow, const platform::Executor& executor,
            double slo_seconds, double input_scale, std::uint64_t seed,
            ResampleOptions resample = {});

  /// Probe `config`: execute once, re-sample on failure/outlier if enabled,
  /// aggregate by the median successful run, record and return the sample.
  Evaluation evaluate(const platform::WorkflowConfig& config);

  const platform::Workflow& workflow() const { return *workflow_; }
  const platform::Executor& executor() const { return *executor_; }
  double slo_seconds() const { return slo_; }
  double input_scale() const { return input_scale_; }
  const ResampleOptions& resample_options() const { return resample_; }

  const SearchTrace& trace() const { return trace_; }
  std::size_t samples_used() const { return trace_.size(); }
  /// Platform executions consumed, re-samples included (>= samples_used()).
  std::size_t executions_used() const { return trace_.total_probe_attempts(); }

 private:
  const platform::Workflow* workflow_;
  const platform::Executor* executor_;
  double slo_;
  double input_scale_;
  support::Rng rng_;
  ResampleOptions resample_;
  std::vector<double> success_makespans_;  ///< for the outlier median
  SearchTrace trace_;
};

/// The outcome every search algorithm returns.
struct SearchResult {
  platform::WorkflowConfig best_config;  ///< empty when no feasible config found
  bool found_feasible = false;
  SearchTrace trace;

  std::size_t samples() const { return trace.size(); }
};

}  // namespace aarc::search
