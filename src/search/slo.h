// Probabilistic SLO bounds: "metric ≤ bound with confidence c".
//
// AARC's Algorithm 2 accepts or reverts a configuration move against a
// *point* check — one (possibly noisy) observation compared to the SLO.
// Real serverless SLOs are percentile guarantees ("p95 latency ≤ 120 s"),
// and a single noisy sample says nothing about a tail.  This module adds
// the chance-constrained formulation of Jolteon's PCPSolver
// (`set_bound(bound_type, bound, service_level)`, SNIPPETS.md snippet 2):
//
//   * SloMetric — which statistic of the latency (or cost) distribution the
//     bound constrains: the mean, or an empirical percentile (p50/p95/p99);
//   * SloBound — the metric plus a confidence level.  `min_replicates()` is
//     the sample-size bound: how many independent probe replicates a verdict
//     needs before accept/reject is statistically trustworthy.  For
//     percentile metrics it is the scenario-approach bound
//     N = ceil((2/eps) * (ln(1/beta) + d)) with eps = 1 - q (the violation
//     budget of quantile q), beta = 1 - confidence and d the decision
//     dimension (Campi & Garatti; `PCPSolver.sample_size` uses the same
//     form).  For the mean with confidence < 1 it is a documented CLT floor.
//   * LatencyDistribution — the empirical distribution of one configuration:
//     exact replicate samples (failed replicates recorded as +inf) for
//     deterministic verdicts, plus a streaming support::QuantileSketch for
//     cheap observability export.  Despite the name it holds any
//     non-negative per-replicate statistic; the cost-bounded dual mode runs
//     verdicts over total-cost distributions through the same type.
//   * slo_verdict — Accept / Reject / InsufficientSamples.  Fewer samples
//     than `min_replicates()` NEVER accepts: an under-sampled verdict
//     reports InsufficientSamples, which every caller treats as a reject.
//
// The default bound (mean, confidence 1.0) is the legacy point check:
// verdicts over a single sample reproduce `value > limit` exactly, so every
// pre-existing code path is bit-identical.  doc/SLO.md is the semantics
// spec; the decision rules here and there must agree.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "support/statistics.h"

namespace aarc::search {

/// Which statistic of the empirical distribution an SLO bound constrains.
enum class SloMetric { Mean, P50, P95, P99 };

std::string to_string(SloMetric metric);
/// Inverse of to_string ("mean" | "p50" | "p95" | "p99"); throws
/// support::ContractViolation with the accepted spellings on unknown names.
SloMetric slo_metric_from_string(std::string_view name);
/// Quantile order q of a percentile metric (0.50 / 0.95 / 0.99).
/// Asserts the metric is not Mean.
double slo_metric_quantile(SloMetric metric);

/// Outcome of one probabilistic SLO check.
enum class SloVerdict {
  Accept,               ///< metric ≤ limit at the configured confidence
  Reject,               ///< metric exceeds the limit
  InsufficientSamples,  ///< fewer samples than min_replicates(); never accept
};

std::string to_string(SloVerdict verdict);

/// A chance-constrained bound: "metric ≤ limit with probability ≥
/// confidence".  The limit itself travels separately (it is the workload's
/// SLO or the configurator's cost bound); this struct carries the semantics.
struct SloBound {
  SloMetric metric = SloMetric::Mean;
  /// Confidence level in (0, 1].  1.0 with the Mean metric is the legacy
  /// single-sample point check; percentile metrics clamp the confidence to
  /// 0.9999 internally (beta = 0 needs infinitely many samples).
  double confidence = 1.0;

  /// True for the default (mean, confidence 1.0) bound — the bit-identical
  /// legacy path: one sample, point comparison.
  bool is_legacy() const { return metric == SloMetric::Mean && confidence >= 1.0; }

  /// Sample-size bound: replicates a probe needs before a verdict is
  /// trustworthy.  Legacy → 1.  Mean with confidence < 1 → kMeanMinReplicates
  /// (CLT floor for the normal-approximation confidence bound).  Percentile
  /// metrics → the scenario-approach bound with decision dimension
  /// `dimension` (default 1: one scalar threshold per verdict).
  std::size_t min_replicates(std::size_t dimension = 1) const;

  /// Throws support::ContractViolation on out-of-range fields.
  void validate() const;
};

/// Minimum replicates for mean-metric verdicts with confidence < 1 (the
/// normal-approximation upper confidence bound needs a CLT-sized sample).
inline constexpr std::size_t kMeanMinReplicates = 30;

/// Empirical distribution of one configuration's per-replicate statistic.
///
/// Exact samples drive the verdicts (deterministic, no sketch error); the
/// streaming sketch rides along for observability export and for callers
/// that aggregate across configurations.  Failed replicates are recorded as
/// +inf so they count against every quantile and poison the mean — a
/// configuration that sometimes fails cannot clear any bound with those
/// failures inside the violation budget.
class LatencyDistribution {
 public:
  LatencyDistribution();

  /// Record one replicate (+inf for a failed replicate).
  void add(double value);

  std::size_t count() const { return samples_.size(); }
  /// Replicates recorded as +inf (failures).
  std::size_t failures() const { return failures_; }

  /// Sample mean; +inf when empty or when any replicate failed.
  double mean() const;
  /// Sample standard deviation (n-1); 0 for fewer than two finite samples
  /// and +inf when any replicate failed.
  double stddev() const;
  /// Conservative empirical quantile, q in (0, 1]: the sample at 1-based
  /// rank ceil(q * n) of the sorted samples — the smallest observed value
  /// with at least a q-fraction of the sample at or below it.  +inf when
  /// empty; the single sample when n == 1.
  double quantile(double q) const;
  /// The statistic `metric` constrains: mean() or quantile(q).
  double metric_value(SloMetric metric) const;

  const std::vector<double>& samples() const { return samples_; }
  const support::QuantileSketch& sketch() const { return sketch_; }

 private:
  std::vector<double> samples_;
  support::QuantileSketch sketch_;
  std::size_t failures_ = 0;
  double finite_sum_ = 0.0;
};

/// The decision rule (see doc/SLO.md for the full table):
///
///   * count() < bound.min_replicates()      → InsufficientSamples
///   * legacy (mean, confidence 1.0)         → Accept iff mean() ≤ limit
///     (over one sample this is exactly the classic point check)
///   * mean, confidence < 1                  → Accept iff the one-sided
///     normal-approximation upper confidence bound clears the limit:
///     mean + z_confidence * stddev / sqrt(n) ≤ limit
///   * percentile q                          → Accept iff the conservative
///     empirical quantile(q) ≤ limit
///
/// Any failed replicate makes the mean +inf and occupies top quantile
/// ranks, so failures inside the violation budget force a reject.
/// Write-only `slo.*` metrics count every verdict by outcome.
SloVerdict slo_verdict(const LatencyDistribution& distribution, const SloBound& bound,
                       double limit);

}  // namespace aarc::search
