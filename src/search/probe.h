// The probe API: the one vocabulary every search algorithm speaks.
//
// A probe is one paid question to the platform — "what does this
// configuration cost and how fast is it?" — a "sample" in the paper's
// terminology.  Algorithms submit probes (a vector of ProbeRequest or a SoA
// search::ProbeBatch) to the search::Evaluator, the only gateway to the
// platform::Executor, and get ProbeResults back **in request order**:
// `results[i]` answers the i-th request and `results[i].tag` echoes the tag
// supplied with it, so batch submitters that interleave probes from several
// logical streams (e.g. BO mapping results onto candidate indices) can
// demultiplex without positional bookkeeping.  Nothing in aarc/, baselines/
// or inputaware/ touches the executor directly; that is what makes batching,
// concurrency and memoization transparent to every algorithm at once.
//
// Result storage is arena-backed: the per-function runtime/cost columns of a
// whole batch live in one shared ProbeResultArena and each ProbeResult holds
// `std::span<const double>` views into it.  Copying a ProbeResult copies two
// spans and a shared_ptr — never the payload — which removes the
// two-vectors-per-probe allocation churn of the old `Evaluation` type.  The
// arena is reference-counted, so results outlive the Evaluator that produced
// them.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "platform/resource.h"
#include "search/slo.h"
#include "search/trace.h"

namespace aarc::search {

/// Backing storage for the per-function columns of one or more ProbeResults.
/// Plain contiguous doubles; results hold spans into `values`.
struct ProbeResultArena {
  std::vector<double> values;
};

/// One configuration to probe.  `tag` is an opaque caller token carried
/// through to the matching ProbeResult.
struct ProbeRequest {
  platform::WorkflowConfig config;
  std::size_t tag = 0;

  ProbeRequest() = default;
  explicit ProbeRequest(platform::WorkflowConfig c, std::size_t t = 0)
      : config(std::move(c)), tag(t) {}
};

/// The answer to one probe.
///
/// `sample` carries the trace-level view (makespan, cost, wall charges,
/// feasibility); `function_runtimes` / `function_costs` are indexed by
/// dag::NodeId and hold +inf for functions that failed (OOM or exhausted
/// retries) — the per-function observations AARC's Algorithms 1/2 need
/// (path runtime sums, per-function cost deltas).  Both spans point into
/// `arena` and stay valid for the lifetime of this result object.
struct ProbeResult {
  Sample sample;
  std::span<const double> function_runtimes;  ///< by NodeId; inf where failed
  std::span<const double> function_costs;     ///< by NodeId; inf where failed
  /// The probe's position in the evaluator's trace (== sample.index).
  std::size_t sample_index = 0;
  /// Echo of ProbeRequest::tag / ProbeBatch lane tag.
  std::size_t tag = 0;
  /// Served from the probe cache or deduplicated within its batch — billed
  /// nothing.
  bool cache_hit = false;
  /// Keep-alive for the spans above.  Never null for results produced by the
  /// evaluator; may be null for default-constructed results.
  std::shared_ptr<const ProbeResultArena> arena;

  /// Empirical makespan distribution over the replicates of a
  /// multi-replicate probe (Evaluator::probe_distribution): one sample per
  /// replicate, +inf where the replicate failed.  Null for plain
  /// single-sample probes — the legacy path carries no distribution.
  std::shared_ptr<const LatencyDistribution> makespan_distribution;
  /// Total-workflow-cost distribution over the same replicates (the
  /// cost-bounded dual mode runs its verdicts over this).  Null alongside
  /// makespan_distribution.
  std::shared_ptr<const LatencyDistribution> cost_distribution;

  /// Build a self-owning result from explicit per-function columns.  Used by
  /// callers that synthesize baselines (e.g. the AARC scheduler's mean-run
  /// baseline) rather than probing.
  static ProbeResult owning(std::vector<double> runtimes,
                            std::vector<double> costs) {
    auto backing = std::make_shared<ProbeResultArena>();
    backing->values.reserve(runtimes.size() + costs.size());
    backing->values.insert(backing->values.end(), runtimes.begin(),
                           runtimes.end());
    backing->values.insert(backing->values.end(), costs.begin(), costs.end());
    ProbeResult result;
    result.function_runtimes =
        std::span<const double>(backing->values.data(), runtimes.size());
    result.function_costs = std::span<const double>(
        backing->values.data() + runtimes.size(), costs.size());
    result.arena = std::move(backing);
    return result;
  }
};

}  // namespace aarc::search
