// The probe API: the one vocabulary every search algorithm speaks.
//
// A probe is one paid question to the platform — "what does this
// configuration cost and how fast is it?" — a "sample" in the paper's
// terminology.  Algorithms submit ProbeRequests (alone or in batches) to the
// search::Evaluator, the only gateway to the platform::Executor, and get
// ProbeResults back in request order.  Nothing in aarc/, baselines/ or
// inputaware/ touches the executor directly; that is what makes batching,
// concurrency and memoization transparent to every algorithm at once.
#pragma once

#include <cstddef>
#include <vector>

#include "platform/resource.h"
#include "search/trace.h"

namespace aarc::search {

/// Per-function observations of one probe, which AARC's Algorithms 1/2 need
/// (path runtime sums, per-function cost deltas).
struct Evaluation {
  Sample sample;
  std::vector<double> function_runtimes;  ///< by NodeId; inf where failed
  std::vector<double> function_costs;     ///< by NodeId; inf where failed
};

/// One configuration to probe.  `tag` is an opaque caller token carried
/// through to the matching ProbeResult — handy for batch submitters that
/// fan results back out (e.g. BO mapping results onto candidate indices).
struct ProbeRequest {
  platform::WorkflowConfig config;
  std::size_t tag = 0;

  ProbeRequest() = default;
  explicit ProbeRequest(platform::WorkflowConfig c, std::size_t t = 0)
      : config(std::move(c)), tag(t) {}
};

/// The answer to one ProbeRequest.  Results always come back in request
/// order; `sample_index` is the probe's position in the evaluator's trace.
struct ProbeResult {
  Evaluation evaluation;
  std::size_t sample_index = 0;
  std::size_t tag = 0;
  bool cache_hit = false;  ///< served from the probe cache, not executed
};

}  // namespace aarc::search
