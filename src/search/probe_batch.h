// Structure-of-arrays probe batch: the zero-copy input side of the batch
// probe API.
//
// A ProbeBatch collects N probe "lanes" over a workflow with F functions.
// Instead of N WorkflowConfig vectors it stores two flat lane-major arrays
// (`vcpu`, `memory_mb`, laid out `[lane * F + fn]`) plus per-lane input
// scale and tag columns.  Appending a lane is two memcpy-sized writes; the
// evaluator transposes the columns it needs into function-major form once
// per batch so the SoA execution kernel can stream over contiguous lanes of
// each function.  Lanes are evaluated in append order, which is the request
// order ProbeResults come back in.
#pragma once

#include <cstddef>
#include <vector>

#include "platform/resource.h"

namespace aarc::search {

class ProbeBatch {
 public:
  /// A batch is fixed to one workflow shape (function count) and one input
  /// scale; every lane added must match.
  explicit ProbeBatch(std::size_t function_count, double input_scale = 1.0);

  /// Append one probe lane; returns its lane index.  `config.size()` must
  /// equal function_count().
  std::size_t add(const platform::WorkflowConfig& config, std::size_t tag = 0);

  std::size_t size() const { return tags_.size(); }
  bool empty() const { return tags_.empty(); }
  std::size_t function_count() const { return function_count_; }
  double input_scale() const { return input_scale_; }

  double vcpu(std::size_t lane, std::size_t fn) const {
    return vcpu_[lane * function_count_ + fn];
  }
  double memory_mb(std::size_t lane, std::size_t fn) const {
    return memory_mb_[lane * function_count_ + fn];
  }
  std::size_t tag(std::size_t lane) const { return tags_[lane]; }

  /// Materialize one lane back into the AoS WorkflowConfig form (used for
  /// trace records and cache keys).
  platform::WorkflowConfig config(std::size_t lane) const;

  /// Raw lane-major columns, `[lane * function_count() + fn]`.
  const std::vector<double>& vcpu_lanes() const { return vcpu_; }
  const std::vector<double>& memory_lanes() const { return memory_mb_; }

  void reserve(std::size_t lanes);
  void clear();

 private:
  std::size_t function_count_;
  double input_scale_;
  std::vector<double> vcpu_;       // lane-major
  std::vector<double> memory_mb_;  // lane-major
  std::vector<std::size_t> tags_;
};

}  // namespace aarc::search
