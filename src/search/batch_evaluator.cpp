#include "search/batch_evaluator.h"

#include <algorithm>

#include "support/contracts.h"
#include "support/rng.h"

namespace aarc::search {

using support::expects;

BatchEvaluator::BatchEvaluator(const platform::Workflow& workflow,
                               const platform::Executor& executor, double input_scale,
                               ResampleOptions resample, std::size_t threads)
    : workflow_(&workflow), input_scale_(input_scale), resample_(resample) {
  expects(threads >= 1, "batch evaluator needs at least one thread");
  executors_.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) executors_.push_back(executor.clone());
  if (threads > 1) pool_ = std::make_unique<support::ThreadPool>(threads);
}

std::vector<ProbeOutcome> BatchEvaluator::run(const std::vector<ProbeJob>& jobs) {
  std::vector<ProbeOutcome> outcomes(jobs.size());
  if (pool_ == nullptr || jobs.size() <= 1) {
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      outcomes[i] = run_one(executors_.front(), jobs[i]);
    }
    return outcomes;
  }
  pool_->parallel_for(jobs.size(), [&](std::size_t item, std::size_t worker) {
    outcomes[item] = run_one(executors_[worker], jobs[item]);
  });
  return outcomes;
}

ProbeOutcome BatchEvaluator::run_one(const platform::Executor& executor,
                                     const ProbeJob& job) const {
  expects(job.config != nullptr, "probe job without a configuration");
  support::Rng rng(job.rng_seed);

  std::vector<platform::ExecutionResult> runs;
  runs.push_back(executor.execute(*workflow_, *job.config, input_scale_, rng));

  auto needs_rerun = [&](const platform::ExecutionResult& r) {
    // OOM is deterministic: re-running reproduces it, so don't waste probes.
    if (r.failed) return !r.oom_failure();
    return resample_.outlier_factor > 0.0 && job.have_median &&
           r.makespan > resample_.outlier_factor * job.median_makespan;
  };

  std::size_t budget = resample_.max_resamples;
  while (budget > 0 && needs_rerun(runs.back())) {
    runs.push_back(executor.execute(*workflow_, *job.config, input_scale_, rng));
    --budget;
  }

  // Aggregate: the run with the median makespan among successful runs; when
  // every run failed, the last run represents the probe.
  std::vector<std::size_t> ok;
  for (std::size_t i = 0; i < runs.size(); ++i) {
    if (!runs[i].failed) ok.push_back(i);
  }
  std::size_t chosen = runs.size() - 1;
  if (!ok.empty()) {
    std::sort(ok.begin(), ok.end(), [&](std::size_t a, std::size_t b) {
      if (runs[a].makespan != runs[b].makespan) {
        return runs[a].makespan < runs[b].makespan;
      }
      return a < b;
    });
    chosen = ok[(ok.size() - 1) / 2];
  }

  ProbeOutcome outcome;
  outcome.attempts = runs.size();
  for (const auto& run : runs) {
    outcome.wall_seconds += run.observed_wall_seconds();
    outcome.wall_cost += run.observed_cost();
  }
  outcome.representative = std::move(runs[chosen]);
  return outcome;
}

}  // namespace aarc::search
