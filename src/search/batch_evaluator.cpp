#include "search/batch_evaluator.h"

#include <algorithm>
#include <chrono>

#include "obs/span.h"
#include "support/contracts.h"
#include "support/rng.h"

namespace aarc::search {

using support::expects;

BatchEvaluator::BatchEvaluator(const platform::Workflow& workflow,
                               const platform::Executor& executor, double input_scale,
                               ResampleOptions resample, std::size_t threads)
    : workflow_(&workflow),
      input_scale_(input_scale),
      resample_(resample),
      batches_metric_(obs::MetricsRegistry::global().counter(obs::metric::kSearchBatches)),
      batch_size_metric_(obs::MetricsRegistry::global().histogram(
          obs::metric::kSearchBatchSize, obs::default_size_buckets())),
      queue_depth_metric_(
          obs::MetricsRegistry::global().gauge(obs::metric::kSearchQueueDepth)) {
  expects(threads >= 1, "batch evaluator needs at least one thread");
  executors_.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) executors_.push_back(executor.clone());
  if (threads > 1) pool_ = std::make_unique<support::ThreadPool>(threads);
  worker_probes_metric_.reserve(threads);
  worker_busy_seconds_metric_.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    const std::string id = std::to_string(t);
    worker_probes_metric_.push_back(&obs::MetricsRegistry::global().counter(
        obs::labeled(obs::metric::kSearchWorkerProbes, "worker", id)));
    worker_busy_seconds_metric_.push_back(&obs::MetricsRegistry::global().gauge(
        obs::labeled(obs::metric::kSearchWorkerBusySeconds, "worker", id)));
  }
}

std::vector<ProbeOutcome> BatchEvaluator::run(const std::vector<ProbeJob>& jobs) {
  batches_metric_.inc();
  batch_size_metric_.observe(static_cast<double>(jobs.size()));
  obs::Span span("search.batch", "search");
  span.arg("jobs", static_cast<std::uint64_t>(jobs.size()));

  std::vector<ProbeOutcome> outcomes(jobs.size());
  if (pool_ == nullptr || jobs.size() <= 1) {
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      outcomes[i] = run_one(0, jobs[i]);
    }
    return outcomes;
  }
  pool_->parallel_for(jobs.size(), [&](std::size_t item, std::size_t worker) {
    outcomes[item] = run_one(worker, jobs[item]);
  });
  return outcomes;
}

ProbeOutcome BatchEvaluator::run_one(std::size_t worker, const ProbeJob& job) const {
  expects(job.config != nullptr, "probe job without a configuration");
  expects(worker < executors_.size(), "worker index out of range");
  const platform::Executor& executor = executors_[worker];
  queue_depth_metric_.add(1.0);
  const auto started = std::chrono::steady_clock::now();
  obs::Span span("search.probe", "search");
  support::Rng rng(job.rng_seed);

  std::vector<platform::ExecutionResult> runs;
  runs.push_back(executor.execute(*workflow_, *job.config, input_scale_, rng));

  auto needs_rerun = [&](const platform::ExecutionResult& r) {
    // OOM is deterministic: re-running reproduces it, so don't waste probes.
    if (r.failed) return !r.oom_failure();
    return resample_.outlier_factor > 0.0 && job.have_median &&
           r.makespan > resample_.outlier_factor * job.median_makespan;
  };

  std::size_t budget = resample_.max_resamples;
  while (budget > 0 && needs_rerun(runs.back())) {
    runs.push_back(executor.execute(*workflow_, *job.config, input_scale_, rng));
    --budget;
  }

  // Aggregate: the run with the median makespan among successful runs; when
  // every run failed, the last run represents the probe.
  std::vector<std::size_t> ok;
  for (std::size_t i = 0; i < runs.size(); ++i) {
    if (!runs[i].failed) ok.push_back(i);
  }
  std::size_t chosen = runs.size() - 1;
  if (!ok.empty()) {
    std::sort(ok.begin(), ok.end(), [&](std::size_t a, std::size_t b) {
      if (runs[a].makespan != runs[b].makespan) {
        return runs[a].makespan < runs[b].makespan;
      }
      return a < b;
    });
    chosen = ok[(ok.size() - 1) / 2];
  }

  ProbeOutcome outcome;
  outcome.attempts = runs.size();
  for (const auto& run : runs) {
    outcome.wall_seconds += run.observed_wall_seconds();
    outcome.wall_cost += run.observed_cost();
  }
  outcome.representative = std::move(runs[chosen]);

  span.arg("executions", static_cast<std::uint64_t>(outcome.attempts));
  worker_probes_metric_[worker]->inc();
  worker_busy_seconds_metric_[worker]->add(
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started).count());
  queue_depth_metric_.add(-1.0);
  return outcome;
}

}  // namespace aarc::search
