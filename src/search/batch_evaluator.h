// The concurrent probe-execution engine underneath search::Evaluator.
//
// A batch of probe jobs fans out across a pool of per-worker Executor
// clones; results come back indexed by job, so the outcome is a pure
// function of the job list and never of thread scheduling.  Determinism
// rests on two rules:
//
//   1. every job carries its own RNG seed, derived by the evaluator as
//      derive_seed(evaluator_seed, probe_stream) — no worker ever draws
//      from a shared stream, so a run at N threads is bit-identical to the
//      same run at 1 thread;
//   2. the outlier-median snapshot a job compares against is frozen at
//      batch assembly (by the evaluator), not read from mutable state, so
//      completion order cannot leak into any decision.
//
// The engine is intentionally ignorant of traces, caches and billing —
// those are the evaluator's sequential commit step.  It clones the executor
// once per worker (pricing models are deep-copied) and shares the workflow
// read-only, which Workflow's const interface guarantees is safe.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "obs/metrics.h"
#include "platform/executor.h"
#include "search/evaluator_options.h"
#include "support/thread_pool.h"

namespace aarc::search {

/// One unit of work: probe `config` with a private RNG stream.
struct ProbeJob {
  const platform::WorkflowConfig* config = nullptr;
  std::uint64_t rng_seed = 0;      ///< private stream for every execution of this probe
  double median_makespan = 0.0;    ///< outlier baseline snapshot (batch assembly time)
  bool have_median = false;
};

/// What one probe's executions produced, before billing/trace bookkeeping.
struct ProbeOutcome {
  platform::ExecutionResult representative;  ///< median successful run (or last run)
  double wall_seconds = 0.0;                 ///< summed over all executions
  double wall_cost = 0.0;                    ///< summed over all executions
  std::size_t attempts = 0;                  ///< executions consumed (>= 1)
};

class BatchEvaluator {
 public:
  /// Clones `executor` once per worker.  `threads == 1` runs jobs inline on
  /// the calling thread (no pool, no clones beyond the first).
  BatchEvaluator(const platform::Workflow& workflow, const platform::Executor& executor,
                 double input_scale, ResampleOptions resample, std::size_t threads);

  /// Execute every job (re-sampling failures/outliers per ResampleOptions)
  /// and return outcomes indexed like `jobs`.  Deterministic for any thread
  /// count.
  std::vector<ProbeOutcome> run(const std::vector<ProbeJob>& jobs);

  std::size_t threads() const { return executors_.size(); }

 private:
  ProbeOutcome run_one(std::size_t worker, const ProbeJob& job) const;

  const platform::Workflow* workflow_;
  double input_scale_;
  ResampleOptions resample_;
  std::vector<platform::Executor> executors_;  ///< one clone per worker
  std::unique_ptr<support::ThreadPool> pool_;  ///< null when threads() == 1

  // Metric handles, resolved once at construction so the per-probe cost is a
  // handful of relaxed atomic ops (write-only: results never read these).
  obs::Counter& batches_metric_;
  obs::Histogram& batch_size_metric_;
  obs::Gauge& queue_depth_metric_;
  std::vector<obs::Counter*> worker_probes_metric_;      ///< one per worker
  std::vector<obs::Gauge*> worker_busy_seconds_metric_;  ///< one per worker
};

}  // namespace aarc::search
