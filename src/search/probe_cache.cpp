#include "search/probe_cache.h"

#include <bit>

namespace aarc::search {

namespace {

/// SplitMix64-style avalanche, applied per 64-bit word.
std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  h *= 0xBF58476D1CE4E5B9ULL;
  return h ^ (h >> 31);
}

std::uint64_t double_bits(double v) { return std::bit_cast<std::uint64_t>(v); }

}  // namespace

std::size_t ProbeCacheKeyHash::operator()(const ProbeCacheKey& key) const {
  std::uint64_t h = 0x51'7C'C1'B7'27'22'0A'95ULL;
  h = mix(h, key.seed_epoch);
  h = mix(h, double_bits(key.input_scale));
  h = mix(h, key.config.size());
  for (const auto& rc : key.config) {
    h = mix(h, double_bits(rc.vcpu));
    h = mix(h, double_bits(rc.memory_mb));
  }
  return static_cast<std::size_t>(h);
}

const ProbeResult* ProbeCache::find(const ProbeCacheKey& key) {
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  return &it->second;
}

void ProbeCache::insert(const ProbeCacheKey& key, const ProbeResult& result) {
  entries_.emplace(key, result);
}

}  // namespace aarc::search
