// Search traces: the per-sample record every configuration-search algorithm
// (AARC, BO, MAFF) produces.
//
// The paper's evaluation reads directly off these traces:
//  * Fig. 5  — total sampling runtime and cost of the whole search;
//  * Fig. 6  — the incumbent configuration's runtime vs sample count;
//  * Fig. 7  — the incumbent configuration's cost vs sample count;
//  * Fig. 3  — raw per-sample cost series (fluctuation statistics).
#pragma once

#include <optional>
#include <vector>

#include "platform/resource.h"

namespace aarc::search {

/// One sampled execution during a configuration search.
struct Sample {
  std::size_t index = 0;                ///< 0-based sample number
  platform::WorkflowConfig config;      ///< configuration probed
  double makespan = 0.0;                ///< observed end-to-end runtime (inf on failure)
  double cost = 0.0;                    ///< observed total cost (inf on failure)
  double wall_seconds = 0.0;            ///< wall time the probe consumed (finite,
                                        ///< summed over re-sampled executions)
  double wall_cost = 0.0;               ///< billed cost the probe consumed (finite,
                                        ///< summed over re-sampled executions)
  bool failed = false;                  ///< probe failed (OOM or transient faults)
  bool transient = false;               ///< the failure was transient (no OOM) —
                                        ///< a retry of the probe may succeed
  bool feasible = false;                ///< !failed && makespan <= SLO
  std::size_t probe_attempts = 1;       ///< platform executions this sample consumed
                                        ///< (> 1 when the evaluator re-sampled,
                                        ///< 0 when served from the probe cache)
  bool cache_hit = false;               ///< served from the probe memoization cache:
                                        ///< zero executions, zero wall charges
};

class SearchTrace {
 public:
  void add(Sample sample);

  const std::vector<Sample>& samples() const { return samples_; }
  std::size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  /// Total wall-clock seconds spent sampling (Fig. 5 "runtime").
  double total_sampling_runtime() const;
  /// Total cost billed while sampling (Fig. 5 "cost").
  double total_sampling_cost() const;

  /// Platform executions consumed across all samples (re-samples included).
  std::size_t total_probe_attempts() const;
  /// Samples the evaluator had to re-run at least once (failure/outlier).
  std::size_t resampled_probes() const;
  /// Samples that ended in a transient (retryable) failure.
  std::size_t transient_failures() const;
  /// Samples served from the probe memoization cache (not billed).
  std::size_t cache_hits() const;
  /// Samples that consumed at least one platform execution — the budget
  /// currency every search algorithm spends.  size() minus cache_hits():
  /// cached answers are free, so they must not burn MAX_TRAIL-style budgets.
  std::size_t billed_samples() const;

  /// Index of the cheapest feasible sample so far (the incumbent), or
  /// nullopt if no feasible sample exists.
  std::optional<std::size_t> best_feasible_index() const;

  /// The incumbent's cost after each sample (Fig. 7 series).  Entries before
  /// the first feasible sample repeat the first feasible value once known;
  /// if the search never found a feasible sample the series is empty.
  std::vector<double> incumbent_cost_series() const;

  /// The incumbent's observed runtime after each sample (Fig. 6 series).
  std::vector<double> incumbent_runtime_series() const;

  /// Raw per-sample cost series with failed probes skipped (Fig. 3).
  std::vector<double> raw_cost_series() const;
  /// Raw per-sample runtime series with failed probes skipped.
  std::vector<double> raw_runtime_series() const;

 private:
  std::vector<Sample> samples_;
};

}  // namespace aarc::search
