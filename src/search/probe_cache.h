// Probe memoization: serve repeated configurations from memory.
//
// Priority-configurator revert/halving loops and BO acquisition re-visits
// probe the same WorkflowConfig many times.  On the real platform each
// re-visit is a paid execution; under a fixed seed epoch it is also a
// deterministic function of (config, input scale), so the evaluator can
// answer it from cache — recorded in the trace as a hit, billed nothing.
//
// The key is (WorkflowConfig, input_scale, seed-epoch).  The seed epoch ties
// cached draws to the RNG regime that produced them: entries from one seed
// must never answer probes of another (e.g. when a long-lived cache outlives
// one evaluator, or an adaptive controller re-seeds between rounds).
//
// Thread-safety: none needed by design.  The evaluator looks up at batch
// assembly and inserts at batch commit, both on the submitting thread; the
// worker pool never touches the cache.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>

#include "platform/resource.h"
#include "search/probe.h"

namespace aarc::search {

struct ProbeCacheKey {
  platform::WorkflowConfig config;
  double input_scale = 1.0;
  std::uint64_t seed_epoch = 0;

  friend bool operator==(const ProbeCacheKey&, const ProbeCacheKey&) = default;
};

struct ProbeCacheKeyHash {
  std::size_t operator()(const ProbeCacheKey& key) const;
};

class ProbeCache {
 public:
  /// The cached result for `key`, or nullptr on a miss.  Counts the lookup
  /// toward hits()/misses().
  const ProbeResult* find(const ProbeCacheKey& key);

  /// Memoize `result` under `key` (first write wins; re-inserting an
  /// existing key keeps the original so cached history never mutates).  The
  /// stored copy shares the result's arena, so caching is span-copy cheap.
  void insert(const ProbeCacheKey& key, const ProbeResult& result);

  std::size_t size() const { return entries_.size(); }
  std::size_t hits() const { return hits_; }
  std::size_t misses() const { return misses_; }

 private:
  std::unordered_map<ProbeCacheKey, ProbeResult, ProbeCacheKeyHash> entries_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

}  // namespace aarc::search
