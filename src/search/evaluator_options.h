// Knobs of the probe evaluation gateway (search::Evaluator).
#pragma once

#include <cstddef>

namespace aarc::search {

/// Probe re-sampling knobs (disabled by default: one execution per probe).
struct ResampleOptions {
  /// Extra executions allowed per probe (0 disables re-sampling).
  std::size_t max_resamples = 0;
  /// When > 0, a successful execution whose makespan exceeds this factor
  /// times the median successful makespan seen so far also triggers a
  /// re-run (straggler smoothing).  0 disables the outlier check.
  double outlier_factor = 0.0;
};

/// Per-call execution policy for Evaluator::evaluate_batch: run the batch
/// serially on the calling thread, or fan executed lanes across N worker
/// threads.  Results are bit-identical for every thread count; the policy
/// only trades wall clock.
struct ExecutionPolicy {
  std::size_t thread_count = 1;

  static ExecutionPolicy serial() { return ExecutionPolicy{1}; }
  static ExecutionPolicy threads(std::size_t n) {
    return ExecutionPolicy{n == 0 ? 1 : n};
  }
};

/// Evaluator construction knobs.
struct EvaluatorOptions {
  ResampleOptions resample{};

  /// Default ExecutionPolicy thread count for batched probes.  1 (the
  /// default) evaluates batches inline on the calling thread; N > 1 fans a
  /// batch across N per-thread executor clones.  Results are identical for
  /// every value — see DESIGN.md "Concurrent evaluation & probe cache".
  /// Callers can override per call via evaluate_batch's policy argument.
  std::size_t threads = 1;

  /// Probe memoization: a probe whose (config, input_scale, seed-epoch) was
  /// already answered is served from cache — recorded in the trace as a
  /// cache hit, billed zero wall time/cost.  Off by default (the paper's
  /// protocol re-executes every sample).
  bool probe_cache = false;
};

}  // namespace aarc::search
