// Graphviz DOT export — regenerates the paper's Fig. 1 architecture diagrams
// and annotates critical paths for debugging.
#pragma once

#include <string>

#include "dag/graph.h"
#include "dag/path.h"

namespace aarc::dag {

/// Options controlling DOT rendering.
struct DotOptions {
  bool show_weights = true;          ///< append "(w=...)" to node labels
  const Path* highlight = nullptr;   ///< path drawn bold/red (e.g. critical path)
  std::string rankdir = "LR";        ///< graph orientation
};

/// Render g as a DOT digraph.
std::string to_dot(const Graph& g, const DotOptions& options = {});

}  // namespace aarc::dag
