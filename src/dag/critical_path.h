// Critical-path analysis of a weighted workflow DAG.
//
// The critical path is the maximum-weight source-to-sink path where weights
// are per-node runtimes (find_critical_path(G) in the paper's Table I).  We
// also expose the classic forward/backward schedule (earliest/latest start
// and slack), which the executor and the sub-SLO derivation reuse.
#pragma once

#include <vector>

#include "dag/graph.h"
#include "dag/path.h"

namespace aarc::dag {

/// Earliest/latest schedule of a weighted DAG (all times in seconds).
struct Schedule {
  std::vector<double> earliest_start;   ///< per node
  std::vector<double> earliest_finish;  ///< per node
  std::vector<double> latest_start;     ///< per node, w.r.t. makespan
  std::vector<double> latest_finish;    ///< per node
  double makespan = 0.0;

  /// Slack of a node: latest_start - earliest_start.  Zero on the critical
  /// path (up to floating tolerance).
  double slack(NodeId id) const { return latest_start[id] - earliest_start[id]; }
};

/// Compute the earliest/latest schedule.  Requires a validated DAG.
Schedule compute_schedule(const Graph& g);

/// The critical path: maximum total-weight path from a source to a sink.
/// Ties are broken deterministically (smallest NodeId preferred at each hop).
/// Requires a validated DAG.
Path find_critical_path(const Graph& g);

/// Length (total node weight) of the critical path == schedule makespan.
double critical_path_length(const Graph& g);

}  // namespace aarc::dag
