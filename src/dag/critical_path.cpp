#include "dag/critical_path.h"

#include <algorithm>
#include <limits>

#include "support/contracts.h"

namespace aarc::dag {

using support::ensures;
using support::expects;

Schedule compute_schedule(const Graph& g) {
  g.validate();
  const auto order = g.topological_order();
  const std::size_t n = g.node_count();

  Schedule s;
  s.earliest_start.assign(n, 0.0);
  s.earliest_finish.assign(n, 0.0);
  for (NodeId id : order) {
    double start = 0.0;
    for (NodeId p : g.predecessors(id)) start = std::max(start, s.earliest_finish[p]);
    s.earliest_start[id] = start;
    s.earliest_finish[id] = start + g.weight(id);
    s.makespan = std::max(s.makespan, s.earliest_finish[id]);
  }

  s.latest_finish.assign(n, s.makespan);
  s.latest_start.assign(n, s.makespan);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId id = *it;
    double finish = s.makespan;
    for (NodeId nxt : g.successors(id)) finish = std::min(finish, s.latest_start[nxt]);
    s.latest_finish[id] = finish;
    s.latest_start[id] = finish - g.weight(id);
  }
  return s;
}

Path find_critical_path(const Graph& g) {
  g.validate();
  const auto order = g.topological_order();
  const std::size_t n = g.node_count();

  // dist[id]: max total weight of a path ending at id (inclusive).
  std::vector<double> dist(n, 0.0);
  std::vector<NodeId> parent(n, kInvalidNode);
  for (NodeId id : order) {
    double best = 0.0;
    NodeId best_parent = kInvalidNode;
    for (NodeId p : g.predecessors(id)) {
      // Deterministic tie-break: strictly-greater keeps the smallest-id
      // predecessor encountered first (predecessor lists are insertion
      // ordered, so equal-weight ties resolve to the earliest-added edge).
      if (dist[p] > best || best_parent == kInvalidNode) {
        if (dist[p] >= best) {
          best = dist[p];
          best_parent = p;
        }
      }
    }
    parent[id] = best_parent;
    dist[id] = best + g.weight(id);
  }

  NodeId tail = kInvalidNode;
  double best = -std::numeric_limits<double>::infinity();
  for (NodeId id = 0; id < n; ++id) {
    if (!g.successors(id).empty()) continue;  // only sinks terminate the path
    if (dist[id] > best) {
      best = dist[id];
      tail = id;
    }
  }
  expects(tail != kInvalidNode, "DAG has no sink");

  std::vector<NodeId> reversed;
  for (NodeId id = tail; id != kInvalidNode; id = parent[id]) reversed.push_back(id);
  std::reverse(reversed.begin(), reversed.end());

  Path path(std::move(reversed));
  ensures(path.is_valid_in(g), "critical path must be a valid path");
  ensures(g.predecessors(path.front()).empty(), "critical path must start at a source");
  return path;
}

double critical_path_length(const Graph& g) { return find_critical_path(g).total_weight(g); }

}  // namespace aarc::dag
