#include "dag/path.h"

#include <algorithm>

#include "support/contracts.h"

namespace aarc::dag {

using support::expects;

NodeId Path::front() const {
  expects(!nodes_.empty(), "front() of empty path");
  return nodes_.front();
}

NodeId Path::back() const {
  expects(!nodes_.empty(), "back() of empty path");
  return nodes_.back();
}

NodeId Path::at(std::size_t i) const {
  expects(i < nodes_.size(), "path index out of range");
  return nodes_[i];
}

bool Path::contains(NodeId id) const {
  return std::find(nodes_.begin(), nodes_.end(), id) != nodes_.end();
}

std::size_t Path::index_of(NodeId id) const {
  const auto it = std::find(nodes_.begin(), nodes_.end(), id);
  expects(it != nodes_.end(), "node not on path");
  return static_cast<std::size_t>(it - nodes_.begin());
}

bool Path::is_valid_in(const Graph& g) const {
  for (NodeId id : nodes_) {
    if (id >= g.node_count()) return false;
  }
  for (std::size_t i = 1; i < nodes_.size(); ++i) {
    if (!g.has_edge(nodes_[i - 1], nodes_[i])) return false;
  }
  return true;
}

double Path::total_weight(const Graph& g) const {
  double total = 0.0;
  for (NodeId id : nodes_) total += g.weight(id);
  return total;
}

double Path::weight_between(const Graph& g, NodeId start, NodeId end) const {
  const std::size_t i = index_of(start);
  const std::size_t j = index_of(end);
  expects(i <= j, "weight_between requires start before end along the path");
  double total = 0.0;
  for (std::size_t k = i; k <= j; ++k) total += g.weight(nodes_[k]);
  return total;
}

std::string Path::to_string(const Graph& g) const {
  std::string out;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (i > 0) out += " -> ";
    out += g.node_name(nodes_[i]);
  }
  return out;
}

}  // namespace aarc::dag
