#include "dag/graph.h"

#include <algorithm>
#include <queue>

#include "support/contracts.h"

namespace aarc::dag {

using support::expects;
using support::invariant;

Graph::Graph(const Graph& other)
    : name_(other.name_),
      names_(other.names_),
      weights_(other.weights_),
      succ_(other.succ_),
      pred_(other.pred_),
      edge_count_(other.edge_count_),
      validated_(other.validated_.load(std::memory_order_relaxed)) {}

Graph& Graph::operator=(const Graph& other) {
  if (this == &other) return *this;
  name_ = other.name_;
  names_ = other.names_;
  weights_ = other.weights_;
  succ_ = other.succ_;
  pred_ = other.pred_;
  edge_count_ = other.edge_count_;
  validated_.store(other.validated_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  return *this;
}

Graph::Graph(Graph&& other) noexcept
    : name_(std::move(other.name_)),
      names_(std::move(other.names_)),
      weights_(std::move(other.weights_)),
      succ_(std::move(other.succ_)),
      pred_(std::move(other.pred_)),
      edge_count_(other.edge_count_),
      validated_(other.validated_.load(std::memory_order_relaxed)) {}

Graph& Graph::operator=(Graph&& other) noexcept {
  if (this == &other) return *this;
  name_ = std::move(other.name_);
  names_ = std::move(other.names_);
  weights_ = std::move(other.weights_);
  succ_ = std::move(other.succ_);
  pred_ = std::move(other.pred_);
  edge_count_ = other.edge_count_;
  validated_.store(other.validated_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  return *this;
}

NodeId Graph::add_node(std::string name, double weight) {
  expects(!name.empty(), "node name must be non-empty");
  expects(!find_node(name).has_value(), "node names must be unique: " + name);
  expects(weight >= 0.0, "node weight must be non-negative");
  names_.push_back(std::move(name));
  weights_.push_back(weight);
  succ_.emplace_back();
  pred_.emplace_back();
  validated_ = false;
  return names_.size() - 1;
}

void Graph::add_edge(NodeId from, NodeId to) {
  check_node(from);
  check_node(to);
  expects(from != to, "self-loops are not allowed in a workflow DAG");
  if (has_edge(from, to)) return;
  succ_[from].push_back(to);
  pred_[to].push_back(from);
  ++edge_count_;
  validated_ = false;
}

const std::string& Graph::node_name(NodeId id) const {
  check_node(id);
  return names_[id];
}

std::optional<NodeId> Graph::find_node(std::string_view name) const {
  for (NodeId id = 0; id < names_.size(); ++id) {
    if (names_[id] == name) return id;
  }
  return std::nullopt;
}

double Graph::weight(NodeId id) const {
  check_node(id);
  return weights_[id];
}

void Graph::set_weight(NodeId id, double weight) {
  check_node(id);
  expects(weight >= 0.0, "node weight must be non-negative");
  weights_[id] = weight;
}

void Graph::set_weights(std::span<const double> weights) {
  expects(weights.size() == node_count(), "weights size must equal node count");
  for (double w : weights) expects(w >= 0.0, "node weight must be non-negative");
  weights_.assign(weights.begin(), weights.end());
}

std::vector<double> Graph::weights() const { return weights_; }

const std::vector<NodeId>& Graph::successors(NodeId id) const {
  check_node(id);
  return succ_[id];
}

const std::vector<NodeId>& Graph::predecessors(NodeId id) const {
  check_node(id);
  return pred_[id];
}

bool Graph::has_edge(NodeId from, NodeId to) const {
  check_node(from);
  check_node(to);
  return std::find(succ_[from].begin(), succ_[from].end(), to) != succ_[from].end();
}

std::vector<NodeId> Graph::sources() const {
  std::vector<NodeId> out;
  for (NodeId id = 0; id < node_count(); ++id) {
    if (pred_[id].empty()) out.push_back(id);
  }
  return out;
}

std::vector<NodeId> Graph::sinks() const {
  std::vector<NodeId> out;
  for (NodeId id = 0; id < node_count(); ++id) {
    if (succ_[id].empty()) out.push_back(id);
  }
  return out;
}

std::vector<NodeId> Graph::topological_order() const {
  std::vector<std::size_t> indegree(node_count());
  for (NodeId id = 0; id < node_count(); ++id) indegree[id] = pred_[id].size();
  std::queue<NodeId> ready;
  for (NodeId id = 0; id < node_count(); ++id) {
    if (indegree[id] == 0) ready.push(id);
  }
  std::vector<NodeId> order;
  order.reserve(node_count());
  while (!ready.empty()) {
    const NodeId id = ready.front();
    ready.pop();
    order.push_back(id);
    for (NodeId next : succ_[id]) {
      if (--indegree[next] == 0) ready.push(next);
    }
  }
  expects(order.size() == node_count(), "graph contains a cycle; not a DAG");
  return order;
}

bool Graph::is_acyclic() const {
  try {
    (void)topological_order();
    return true;
  } catch (const support::ContractViolation&) {
    return false;
  }
}

bool Graph::is_connected() const {
  if (empty()) return false;
  std::vector<bool> seen(node_count(), false);
  std::queue<NodeId> frontier;
  frontier.push(0);
  seen[0] = true;
  std::size_t visited = 1;
  while (!frontier.empty()) {
    const NodeId id = frontier.front();
    frontier.pop();
    auto visit = [&](NodeId next) {
      if (!seen[next]) {
        seen[next] = true;
        ++visited;
        frontier.push(next);
      }
    };
    for (NodeId n : succ_[id]) visit(n);
    for (NodeId n : pred_[id]) visit(n);
  }
  return visited == node_count();
}

bool Graph::reachable(NodeId from, NodeId to) const {
  check_node(from);
  check_node(to);
  if (from == to) return true;
  std::vector<bool> seen(node_count(), false);
  std::queue<NodeId> frontier;
  frontier.push(from);
  seen[from] = true;
  while (!frontier.empty()) {
    const NodeId id = frontier.front();
    frontier.pop();
    for (NodeId next : succ_[id]) {
      if (next == to) return true;
      if (!seen[next]) {
        seen[next] = true;
        frontier.push(next);
      }
    }
  }
  return false;
}

void Graph::validate() const {
  if (validated_) return;
  expects(!empty(), "workflow DAG must have at least one node");
  expects(is_acyclic(), "workflow graph must be acyclic");
  expects(is_connected(), "workflow graph must be connected");
  for (double w : weights_) {
    invariant(w >= 0.0, "node weights must be non-negative");
  }
  validated_ = true;
}

void Graph::check_node(NodeId id) const {
  expects(id < node_count(), "node id out of range");
}

}  // namespace aarc::dag
