// Paths through a workflow DAG and the interval arithmetic Algorithm 1 needs
// (runtime_sum over [start, end] along a path — Table I of the paper).
#pragma once

#include <string>
#include <vector>

#include "dag/graph.h"

namespace aarc::dag {

/// An ordered sequence of nodes connected by edges in the graph.
class Path {
 public:
  Path() = default;
  explicit Path(std::vector<NodeId> nodes) : nodes_(std::move(nodes)) {}

  const std::vector<NodeId>& nodes() const { return nodes_; }
  std::size_t size() const { return nodes_.size(); }
  bool empty() const { return nodes_.empty(); }

  NodeId front() const;
  NodeId back() const;
  NodeId at(std::size_t i) const;

  bool contains(NodeId id) const;
  /// Index of id within the path; throws if absent.
  std::size_t index_of(NodeId id) const;

  /// True when each consecutive pair is an edge of g.
  bool is_valid_in(const Graph& g) const;

  /// Sum of g's node weights over the whole path.
  double total_weight(const Graph& g) const;

  /// Sum of node weights over the closed interval [start, end] of the path
  /// (both endpoints included).  `start` must not come after `end` in the
  /// path.  This is the paper's runtime_sum(path, start, end).
  double weight_between(const Graph& g, NodeId start, NodeId end) const;

  /// Human-readable "a -> b -> c" using node names.
  std::string to_string(const Graph& g) const;

  friend bool operator==(const Path&, const Path&) = default;

 private:
  std::vector<NodeId> nodes_;
};

}  // namespace aarc::dag
