#include "dag/dot.h"

#include <sstream>

#include "support/table.h"

namespace aarc::dag {

namespace {
bool path_has_edge(const Path& p, NodeId from, NodeId to) {
  const auto& nodes = p.nodes();
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    if (nodes[i - 1] == from && nodes[i] == to) return true;
  }
  return false;
}
}  // namespace

std::string to_dot(const Graph& g, const DotOptions& options) {
  std::ostringstream os;
  os << "digraph \"" << g.name() << "\" {\n";
  os << "  rankdir=" << options.rankdir << ";\n";
  os << "  node [shape=box, style=rounded];\n";
  for (NodeId id = 0; id < g.node_count(); ++id) {
    os << "  n" << id << " [label=\"" << g.node_name(id);
    if (options.show_weights) {
      os << "\\n(w=" << support::format_double(g.weight(id), 2) << "s)";
    }
    os << "\"";
    if (options.highlight != nullptr && options.highlight->contains(id)) {
      os << ", color=red, penwidth=2";
    }
    os << "];\n";
  }
  for (NodeId id = 0; id < g.node_count(); ++id) {
    for (NodeId next : g.successors(id)) {
      os << "  n" << id << " -> n" << next;
      if (options.highlight != nullptr && path_has_edge(*options.highlight, id, next)) {
        os << " [color=red, penwidth=2]";
      }
      os << ";\n";
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace aarc::dag
