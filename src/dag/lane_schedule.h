// Flattened DAG schedule for the SoA probe kernel.
//
// Graph::topological_order() runs Kahn's algorithm and allocates a fresh
// order vector on every call — fine for one simulated execution, wasteful
// when the batch kernel walks the same DAG for millions of probe lanes.
// LaneSchedule snapshots the structure once: the topological order plus the
// predecessor lists in CSR form (one flat id array + offsets), so the
// critical-path recurrence `start[v] = max over preds p of finish[p]` is two
// contiguous array walks with no per-node indirection.
//
// The snapshot is structural only; it stays valid as long as no nodes/edges
// are added to the source graph (weights may change freely).  Holders check
// node_count() against the live graph to catch stale snapshots.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "dag/graph.h"

namespace aarc::dag {

class LaneSchedule {
 public:
  /// Validates the graph (non-empty, connected DAG) and snapshots its
  /// topological order and predecessor structure.
  explicit LaneSchedule(const Graph& graph);

  std::size_t node_count() const { return order_.size(); }

  /// Nodes in dependency order; identical to graph.topological_order().
  const std::vector<NodeId>& order() const { return order_; }

  /// Predecessors of `id`, in the same order Graph::predecessors returns.
  std::span<const NodeId> predecessors(NodeId id) const {
    return std::span<const NodeId>(pred_flat_.data() + pred_offset_[id],
                                   pred_offset_[id + 1] - pred_offset_[id]);
  }

 private:
  std::vector<NodeId> order_;
  std::vector<NodeId> pred_flat_;
  std::vector<std::size_t> pred_offset_;  // node_count()+1 entries
};

}  // namespace aarc::dag
