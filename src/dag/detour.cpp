#include "dag/detour.h"

#include <algorithm>

#include "support/contracts.h"

namespace aarc::dag {

using support::expects;

std::vector<NodeId> DetourSubpath::interior() const {
  const auto& nodes = path.nodes();
  if (nodes.size() <= 2) return {};
  return {nodes.begin() + 1, nodes.end() - 1};
}

namespace {

void dfs_detours(const Graph& g, const std::vector<bool>& on_cp, std::vector<NodeId>& current,
                 std::vector<bool>& visiting, std::vector<DetourSubpath>& out,
                 std::size_t max_paths) {
  const NodeId tail = current.back();
  for (NodeId next : g.successors(tail)) {
    if (on_cp[next]) {
      // Reached the critical path again: record if there is an interior.
      if (current.size() >= 2) {
        std::vector<NodeId> nodes = current;
        nodes.push_back(next);
        out.push_back(DetourSubpath{Path(std::move(nodes))});
        expects(out.size() <= max_paths, "detour enumeration exceeded max_paths");
      }
      continue;
    }
    if (visiting[next]) continue;  // keep paths simple
    visiting[next] = true;
    current.push_back(next);
    dfs_detours(g, on_cp, current, visiting, out, max_paths);
    current.pop_back();
    visiting[next] = false;
  }
}

}  // namespace

std::vector<DetourSubpath> find_detour_subpaths(const Graph& g, const Path& critical_path,
                                                std::size_t max_paths) {
  expects(!critical_path.empty(), "critical path must be non-empty");
  expects(critical_path.is_valid_in(g), "critical path must be a valid path of g");

  std::vector<bool> on_cp(g.node_count(), false);
  for (NodeId id : critical_path.nodes()) on_cp[id] = true;

  std::vector<DetourSubpath> out;
  std::vector<bool> visiting(g.node_count(), false);
  for (NodeId start : critical_path.nodes()) {
    std::vector<NodeId> current{start};
    dfs_detours(g, on_cp, current, visiting, out, max_paths);
  }

  // Only keep detours whose end anchor is on the critical path *after* the
  // start anchor; an end anchor at or before the start would imply a cycle
  // through the critical path, impossible in a DAG, but anchor positions are
  // still used for deterministic ordering.
  auto cp_index = [&](NodeId id) { return critical_path.index_of(id); };
  std::sort(out.begin(), out.end(), [&](const DetourSubpath& a, const DetourSubpath& b) {
    const auto sa = cp_index(a.start_anchor());
    const auto sb = cp_index(b.start_anchor());
    if (sa != sb) return sa < sb;
    const auto ea = cp_index(a.end_anchor());
    const auto eb = cp_index(b.end_anchor());
    if (ea != eb) return ea < eb;
    return a.path.nodes() < b.path.nodes();
  });
  return out;
}

std::vector<NodeId> uncovered_nodes(const Graph& g, const Path& critical_path,
                                    const std::vector<DetourSubpath>& subpaths) {
  std::vector<bool> covered(g.node_count(), false);
  for (NodeId id : critical_path.nodes()) covered[id] = true;
  for (const auto& sp : subpaths) {
    for (NodeId id : sp.path.nodes()) covered[id] = true;
  }
  std::vector<NodeId> out;
  for (NodeId id = 0; id < g.node_count(); ++id) {
    if (!covered[id]) out.push_back(id);
  }
  return out;
}

}  // namespace aarc::dag
