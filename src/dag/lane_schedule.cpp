#include "dag/lane_schedule.h"

namespace aarc::dag {

LaneSchedule::LaneSchedule(const Graph& graph) {
  graph.validate();
  order_ = graph.topological_order();
  const std::size_t n = graph.node_count();
  pred_offset_.resize(n + 1, 0);
  std::size_t total = 0;
  for (NodeId id = 0; id < n; ++id) {
    pred_offset_[id] = total;
    total += graph.predecessors(id).size();
  }
  pred_offset_[n] = total;
  pred_flat_.reserve(total);
  for (NodeId id = 0; id < n; ++id) {
    const auto& preds = graph.predecessors(id);
    pred_flat_.insert(pred_flat_.end(), preds.begin(), preds.end());
  }
}

}  // namespace aarc::dag
