// Directed acyclic graph of workflow functions.
//
// Nodes carry a name and a non-negative weight (profiled runtime in seconds,
// Algorithm 1 line 5: "execute G" then weight the DAG).  Edges encode
// happens-before: a function starts once every predecessor finished.  The
// graph is append-only (nodes/edges are added, never removed), which keeps
// NodeId stable and cheap (a dense index).
#pragma once

#include <atomic>
#include <cstddef>
#include <initializer_list>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace aarc::dag {

/// Dense node identifier; valid ids are 0 .. Graph::node_count()-1.
using NodeId = std::size_t;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

class Graph {
 public:
  Graph() = default;
  explicit Graph(std::string name) : name_(std::move(name)) {}

  // The validation cache is atomic (see below), which forfeits the implicit
  // copy/move operations; these reproduce them member-wise.
  Graph(const Graph& other);
  Graph& operator=(const Graph& other);
  Graph(Graph&& other) noexcept;
  Graph& operator=(Graph&& other) noexcept;
  ~Graph() = default;

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Add a node; returns its id.  Names must be unique and non-empty.
  NodeId add_node(std::string name, double weight = 0.0);

  /// Add a directed edge from -> to.  Both ids must exist; self-loops are
  /// rejected; duplicate edges are idempotent.  Cycle creation is detected
  /// lazily by validate()/topological_order().
  void add_edge(NodeId from, NodeId to);

  std::size_t node_count() const { return names_.size(); }
  std::size_t edge_count() const { return edge_count_; }
  bool empty() const { return names_.empty(); }

  const std::string& node_name(NodeId id) const;
  /// Look up a node by name; nullopt when absent.
  std::optional<NodeId> find_node(std::string_view name) const;

  double weight(NodeId id) const;
  void set_weight(NodeId id, double weight);
  /// Replace all weights at once; size must equal node_count().  Accepts any
  /// contiguous double range (vector, span, arena-backed probe columns).
  void set_weights(std::span<const double> weights);
  void set_weights(std::initializer_list<double> weights) {
    set_weights(std::span<const double>(weights.begin(), weights.size()));
  }
  /// All node weights, indexed by NodeId.
  std::vector<double> weights() const;

  const std::vector<NodeId>& successors(NodeId id) const;
  const std::vector<NodeId>& predecessors(NodeId id) const;

  bool has_edge(NodeId from, NodeId to) const;

  /// Nodes with no predecessors / successors.
  std::vector<NodeId> sources() const;
  std::vector<NodeId> sinks() const;

  /// Kahn topological order; throws ContractViolation if the graph has a
  /// cycle (and therefore is not a DAG).
  std::vector<NodeId> topological_order() const;

  /// True when the edge relation is acyclic.
  bool is_acyclic() const;

  /// True when every node is reachable from some source and reaches some
  /// sink (trivially true for acyclic graphs) and the underlying undirected
  /// graph is connected.  Empty graphs are not connected.
  bool is_connected() const;

  /// True when `to` is reachable from `from` following edges.
  bool reachable(NodeId from, NodeId to) const;

  /// Throws ContractViolation unless the graph is a non-empty, connected DAG
  /// with all weights >= 0 — the well-formedness the scheduler requires.
  /// The (structural) result is cached: repeated calls on an unmodified
  /// topology are O(1), which matters because the executor validates on
  /// every simulated execution.  Weight updates do not invalidate the cache
  /// (weights are checked non-negative at the setters).
  void validate() const;

 private:
  void check_node(NodeId id) const;

  std::string name_;
  std::vector<std::string> names_;
  std::vector<double> weights_;
  std::vector<std::vector<NodeId>> succ_;
  std::vector<std::vector<NodeId>> pred_;
  std::size_t edge_count_ = 0;
  /// Structural validation cache; atomic so concurrent validate() calls on
  /// a shared (otherwise immutable) graph are race-free.
  mutable std::atomic<bool> validated_{false};
};

}  // namespace aarc::dag
