// Detour sub-path enumeration (find_detour_subpath(G, critical_path) in the
// paper's Table I).
//
// A detour sub-path starts at a node of the critical path, ends at a (later)
// node of the critical path, and every interior node is off the critical
// path.  Algorithm 1 assigns each such sub-path the sub-SLO
// runtime_sum(critical_path, start, end) so that configuring the detour's
// functions can never delay the critical path.
#pragma once

#include <vector>

#include "dag/graph.h"
#include "dag/path.h"

namespace aarc::dag {

/// One detour: the full path including both anchors.
struct DetourSubpath {
  Path path;  ///< anchors included: front()/back() are on the critical path

  NodeId start_anchor() const { return path.front(); }
  NodeId end_anchor() const { return path.back(); }

  /// Interior nodes (everything strictly between the anchors).
  std::vector<NodeId> interior() const;

  friend bool operator==(const DetourSubpath&, const DetourSubpath&) = default;
};

/// Enumerate every simple detour sub-path of g with respect to the given
/// critical path.  Paths with an empty interior (direct edges between
/// critical-path nodes) carry no functions to configure and are omitted.
/// The result is deterministic: ordered by position of the start anchor on
/// the critical path, then by position of the end anchor, then by the node
/// sequence.  Throws if the enumeration exceeds `max_paths` (guards against
/// pathological dense DAGs).
std::vector<DetourSubpath> find_detour_subpaths(const Graph& g, const Path& critical_path,
                                                std::size_t max_paths = 10000);

/// Every node of g that lies on no detour and not on the critical path is
/// unreachable from the critical-path structure; for a connected DAG whose
/// critical path spans source to sink this set is empty unless the DAG has
/// multiple sources/sinks.  Returns those uncovered nodes (callers decide how
/// to configure them, typically by treating each as a single-node path).
std::vector<NodeId> uncovered_nodes(const Graph& g, const Path& critical_path,
                                    const std::vector<DetourSubpath>& subpaths);

}  // namespace aarc::dag
