// Structural analysis of workflow DAGs.
//
// Reports the metrics the CLI's `describe` command and the synthetic
// population studies use: depth, width profile, fan-in/out extremes, and a
// topological stage classification.  Note that the paper's "scatter vs
// broadcast" label (§IV-A(c)) is *data-semantic* — whether parallel branches
// receive slices or copies of the same payload — and cannot be recovered
// from topology alone; the classification here is purely structural:
//   * Sequential — a chain, no parallel section anywhere;
//   * FanOut     — parallel branches, each with a single parent (the shape
//                  of both scatter and single-source broadcast stages);
//   * Coupled    — a complete-bipartite stage (every producer feeds every
//                  consumer, as in the synthetic Broadcast generator);
//   * Mixed      — both FanOut and Coupled stages present.
#pragma once

#include <string>
#include <vector>

#include "dag/graph.h"

namespace aarc::dag {

/// Topological stage classification (see file comment).
enum class TopologyClass {
  Sequential,
  FanOut,
  Coupled,
  Mixed,
};

std::string to_string(TopologyClass pattern);

/// Structural metrics of a DAG.
struct GraphMetrics {
  std::size_t node_count = 0;
  std::size_t edge_count = 0;
  std::size_t depth = 0;          ///< number of levels (longest hop path)
  std::size_t max_width = 0;      ///< widest level
  std::size_t source_count = 0;
  std::size_t sink_count = 0;
  std::size_t max_fan_out = 0;
  std::size_t max_fan_in = 0;
  double avg_degree = 0.0;        ///< edges / nodes
  TopologyClass topology = TopologyClass::Sequential;
};

/// Compute all metrics.  Requires a validated DAG.
GraphMetrics analyze(const Graph& g);

/// Level of each node: the longest hop-distance from any source (sources are
/// level 0).  This is the layering used for width computation.
std::vector<std::size_t> levels(const Graph& g);

/// Number of functions that can run concurrently at each level.
std::vector<std::size_t> width_profile(const Graph& g);

}  // namespace aarc::dag
