#include "dag/analysis.h"

#include <algorithm>

#include "support/contracts.h"

namespace aarc::dag {

std::string to_string(TopologyClass pattern) {
  switch (pattern) {
    case TopologyClass::Sequential:
      return "sequential";
    case TopologyClass::FanOut:
      return "fan-out";
    case TopologyClass::Coupled:
      return "coupled";
    case TopologyClass::Mixed:
      return "mixed";
  }
  return "?";
}

std::vector<std::size_t> levels(const Graph& g) {
  g.validate();
  std::vector<std::size_t> level(g.node_count(), 0);
  for (NodeId id : g.topological_order()) {
    for (NodeId p : g.predecessors(id)) {
      level[id] = std::max(level[id], level[p] + 1);
    }
  }
  return level;
}

std::vector<std::size_t> width_profile(const Graph& g) {
  const auto level = levels(g);
  const std::size_t depth =
      level.empty() ? 0 : *std::max_element(level.begin(), level.end()) + 1;
  std::vector<std::size_t> widths(depth, 0);
  for (std::size_t l : level) ++widths[l];
  return widths;
}

namespace {

/// Coupled stage: this node fans out to >= 2 successors and at least one of
/// those successors has another predecessor that also feeds *all* siblings
/// (complete bipartite coupling between producer and consumer sets).
bool node_coupled(const Graph& g, NodeId id) {
  const auto& succ = g.successors(id);
  if (succ.size() < 2) return false;
  bool multi_parent = false;
  for (NodeId s : succ) {
    for (NodeId p : g.predecessors(s)) {
      if (p != id) multi_parent = true;
      for (NodeId other : succ) {
        if (!g.has_edge(p, other)) return false;
      }
    }
  }
  return multi_parent;
}

/// Fan-out stage: >= 2 successors, each consuming only this node's output.
bool node_fans_out(const Graph& g, NodeId id) {
  const auto& succ = g.successors(id);
  if (succ.size() < 2) return false;
  for (NodeId s : succ) {
    if (g.predecessors(s).size() != 1) return false;
  }
  return true;
}

}  // namespace

GraphMetrics analyze(const Graph& g) {
  g.validate();
  GraphMetrics m;
  m.node_count = g.node_count();
  m.edge_count = g.edge_count();
  m.source_count = g.sources().size();
  m.sink_count = g.sinks().size();
  m.avg_degree = static_cast<double>(m.edge_count) / static_cast<double>(m.node_count);

  const auto widths = width_profile(g);
  m.depth = widths.size();
  m.max_width = widths.empty() ? 0 : *std::max_element(widths.begin(), widths.end());

  bool any_fan_out = false;
  bool any_coupled = false;
  for (NodeId id = 0; id < g.node_count(); ++id) {
    m.max_fan_out = std::max(m.max_fan_out, g.successors(id).size());
    m.max_fan_in = std::max(m.max_fan_in, g.predecessors(id).size());
    if (node_coupled(g, id)) any_coupled = true;
    if (node_fans_out(g, id)) any_fan_out = true;
  }

  if (any_fan_out && any_coupled) {
    m.topology = TopologyClass::Mixed;
  } else if (any_coupled) {
    m.topology = TopologyClass::Coupled;
  } else if (any_fan_out) {
    m.topology = TopologyClass::FanOut;
  } else {
    m.topology = TopologyClass::Sequential;
  }
  return m;
}

}  // namespace aarc::dag
