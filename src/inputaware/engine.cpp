#include "inputaware/engine.h"

#include "support/contracts.h"

namespace aarc::inputaware {

using support::expects;

InputAwareEngine::InputAwareEngine(const workloads::Workload& workload,
                                   const platform::Executor& executor,
                                   platform::ConfigGrid grid,
                                   core::SchedulerOptions scheduler_options,
                                   ClassThresholds thresholds)
    : workload_(&workload),
      executor_(&executor),
      grid_(grid),
      scheduler_options_(scheduler_options),
      thresholds_(thresholds) {
  expects(thresholds_.light_below > 0.0, "light threshold must be positive");
  expects(thresholds_.heavy_above > thresholds_.light_below,
          "heavy threshold must exceed the light threshold");
}

std::size_t InputAwareEngine::build() {
  const core::GraphCentricScheduler scheduler(*executor_, grid_, scheduler_options_);
  std::size_t total_samples = 0;
  table_.clear();
  for (const auto& entry : workload_->input_classes) {
    ClassConfiguration cc;
    cc.input_class = entry.input_class;
    cc.scale = entry.scale;
    cc.report = scheduler.schedule(workload_->workflow, workload_->slo_seconds, entry.scale);
    total_samples += cc.report.result.samples();
    table_.emplace(entry.input_class, std::move(cc));
  }
  return total_samples;
}

workloads::InputClass InputAwareEngine::classify(const InputDescriptor& input,
                                                 const ReferenceInput& reference) const {
  const double scale = estimate_scale(input, reference);
  if (scale < thresholds_.light_below) return workloads::InputClass::Light;
  if (scale >= thresholds_.heavy_above) return workloads::InputClass::Heavy;
  return workloads::InputClass::Middle;
}

const ClassConfiguration& InputAwareEngine::configuration(workloads::InputClass c) const {
  const auto it = table_.find(c);
  expects(it != table_.end(), "engine has no configuration for this class; call build()");
  return it->second;
}

const ClassConfiguration& InputAwareEngine::dispatch(const InputDescriptor& input,
                                                     const ReferenceInput& reference) const {
  return configuration(classify(input, reference));
}

}  // namespace aarc::inputaware
