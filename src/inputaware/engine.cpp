#include "inputaware/engine.h"

#include <algorithm>
#include <vector>

#include "support/contracts.h"
#include "support/thread_pool.h"

namespace aarc::inputaware {

using support::expects;

InputAwareEngine::InputAwareEngine(const workloads::Workload& workload,
                                   const platform::Executor& executor,
                                   platform::ConfigGrid grid,
                                   core::SchedulerOptions scheduler_options,
                                   ClassThresholds thresholds)
    : workload_(&workload),
      executor_(&executor),
      grid_(grid),
      scheduler_options_(scheduler_options),
      thresholds_(thresholds) {
  expects(thresholds_.light_below > 0.0, "light threshold must be positive");
  expects(thresholds_.heavy_above > thresholds_.light_below,
          "heavy threshold must exceed the light threshold");
}

std::size_t InputAwareEngine::build() {
  table_.clear();
  const auto& classes = workload_->input_classes;
  std::vector<ClassConfiguration> configs(classes.size());

  // Per-class searches are fully independent (each owns its evaluator and a
  // cloned executor), so they can run concurrently.  Class-level concurrency
  // replaces probe-level concurrency here: the inner evaluator stays serial
  // so k classes cost k workers, not k * threads.  Either way each class's
  // search is deterministic, so the table is identical for any thread count.
  const std::size_t threads = std::min<std::size_t>(
      std::max<std::size_t>(scheduler_options_.evaluator_threads, 1), classes.size());

  auto build_class = [&](std::size_t i, const platform::Executor& executor) {
    core::SchedulerOptions options = scheduler_options_;
    if (threads > 1) options.evaluator_threads = 1;
    const core::GraphCentricScheduler scheduler(executor, grid_, options);
    ClassConfiguration cc;
    cc.input_class = classes[i].input_class;
    cc.scale = classes[i].scale;
    cc.report =
        scheduler.schedule(workload_->workflow, workload_->slo_seconds, classes[i].scale);
    configs[i] = std::move(cc);
  };

  if (threads > 1) {
    support::ThreadPool pool(threads);
    pool.parallel_for(classes.size(), [&](std::size_t i, std::size_t /*worker*/) {
      const platform::Executor local = executor_->clone();
      build_class(i, local);
    });
  } else {
    for (std::size_t i = 0; i < classes.size(); ++i) build_class(i, *executor_);
  }

  // Commit in workload order once every class has finished.
  std::size_t total_samples = 0;
  for (auto& cc : configs) {
    total_samples += cc.report.result.samples();
    table_.emplace(cc.input_class, std::move(cc));
  }
  return total_samples;
}

workloads::InputClass InputAwareEngine::classify(const InputDescriptor& input,
                                                 const ReferenceInput& reference) const {
  const double scale = estimate_scale(input, reference);
  if (scale < thresholds_.light_below) return workloads::InputClass::Light;
  if (scale >= thresholds_.heavy_above) return workloads::InputClass::Heavy;
  return workloads::InputClass::Middle;
}

const ClassConfiguration& InputAwareEngine::configuration(workloads::InputClass c) const {
  const auto it = table_.find(c);
  expects(it != table_.end(), "engine has no configuration for this class; call build()");
  return it->second;
}

const ClassConfiguration& InputAwareEngine::dispatch(const InputDescriptor& input,
                                                     const ReferenceInput& reference) const {
  return configuration(classify(input, reference));
}

}  // namespace aarc::inputaware
