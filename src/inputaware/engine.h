// Input-Aware Configuration Engine Plugin (Section IV-D).
//
// "If developers trigger the plugin, the Engine analyzes the characteristics
// of the input data ... sorts the inputs and invokes Graph-Centric Scheduler
// and Priority Configurator to determine the optimal resource configuration
// scheme for each input.  When a request arrives, the Engine analyzes the
// input scale and allocates the input to different configurations."
#pragma once

#include <map>
#include <optional>

#include "aarc/scheduler.h"
#include "inputaware/descriptor.h"
#include "workloads/workload.h"

namespace aarc::inputaware {

/// Classification thresholds on the estimated work scale.
struct ClassThresholds {
  double light_below = 0.5;   ///< scale < this  -> Light
  double heavy_above = 1.5;   ///< scale >= this -> Heavy; otherwise Middle
};

/// Per-class scheduling outcome.
struct ClassConfiguration {
  workloads::InputClass input_class = workloads::InputClass::Middle;
  double scale = 1.0;
  core::ScheduleReport report;
};

class InputAwareEngine {
 public:
  /// The engine keeps references to the workload and executor; both must
  /// outlive it.
  InputAwareEngine(const workloads::Workload& workload, const platform::Executor& executor,
                   platform::ConfigGrid grid, core::SchedulerOptions scheduler_options = {},
                   ClassThresholds thresholds = {});

  /// Run AARC once per input class (uses the workload's class scales).
  /// Returns total samples spent across classes.
  std::size_t build();

  bool built() const { return !table_.empty(); }

  /// Map an incoming input to its class by estimated scale.
  workloads::InputClass classify(const InputDescriptor& input,
                                 const ReferenceInput& reference = {}) const;

  /// The configuration scheduled for a class; build() must have run.
  const ClassConfiguration& configuration(workloads::InputClass c) const;

  /// Full dispatch: classify, then return the class's configuration.
  const ClassConfiguration& dispatch(const InputDescriptor& input,
                                     const ReferenceInput& reference = {}) const;

 private:
  const workloads::Workload* workload_;
  const platform::Executor* executor_;
  platform::ConfigGrid grid_;
  core::SchedulerOptions scheduler_options_;
  ClassThresholds thresholds_;
  std::map<workloads::InputClass, ClassConfiguration> table_;
};

}  // namespace aarc::inputaware
