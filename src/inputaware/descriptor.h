// Input descriptors for the Input-Aware Configuration Engine (Section IV-D).
//
// "The Engine analyzes the characteristics of the input data, such as video
// bitrate and duration."  A descriptor carries those scalar features; the
// engine maps them to a work scale relative to a reference input and from
// there to an input class.
#pragma once

namespace aarc::inputaware {

/// Scalar features of one request's input.
struct InputDescriptor {
  double size_mb = 0.0;
  double bitrate_kbps = 0.0;
  double duration_seconds = 0.0;
};

/// The reference ("middle") input against which scales are computed.
struct ReferenceInput {
  InputDescriptor descriptor{512.0, 4000.0, 120.0};
};

/// Estimated work scale of `input` relative to the reference: the geometric
/// mean of the per-feature ratios (features at 0 are ignored; at least one
/// feature must be positive).
double estimate_scale(const InputDescriptor& input, const ReferenceInput& reference = {});

}  // namespace aarc::inputaware
