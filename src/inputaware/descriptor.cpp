#include "inputaware/descriptor.h"

#include <cmath>

#include "support/contracts.h"

namespace aarc::inputaware {

using support::expects;

double estimate_scale(const InputDescriptor& input, const ReferenceInput& reference) {
  double log_sum = 0.0;
  int features = 0;
  auto consider = [&](double value, double ref) {
    if (value > 0.0) {
      expects(ref > 0.0, "reference feature must be positive when input feature is set");
      log_sum += std::log(value / ref);
      ++features;
    }
  };
  consider(input.size_mb, reference.descriptor.size_mb);
  consider(input.bitrate_kbps, reference.descriptor.bitrate_kbps);
  consider(input.duration_seconds, reference.descriptor.duration_seconds);
  expects(features > 0, "input descriptor must have at least one positive feature");
  return std::exp(log_sum / features);
}

}  // namespace aarc::inputaware
