#include "serving/resilience.h"

#include <string>

#include "support/contracts.h"

namespace aarc::serving {

using support::expects;

void BreakerOptions::validate() const {
  if (!enabled) return;
  expects(window >= 1, "breaker window must be >= 1");
  expects(min_attempts >= 1, "breaker min-attempts must be >= 1");
  expects(min_attempts <= window,
          "breaker min-attempts must be <= window (got " +
              std::to_string(min_attempts) + " > " + std::to_string(window) + ")");
  expects(failure_threshold > 0.0 && failure_threshold <= 1.0,
          "breaker failure threshold must be in (0, 1] (got " +
              std::to_string(failure_threshold) + ")");
  expects(open_seconds >= 0.0, "breaker open hold-off must be non-negative (got " +
                                   std::to_string(open_seconds) + ")");
  expects(half_open_probes >= 1, "breaker half-open probes must be >= 1");
}

void HedgeOptions::validate() const {
  expects(delay_seconds >= 0.0, "hedge delay must be non-negative (got " +
                                    std::to_string(delay_seconds) + ")");
}

std::size_t ShedOptions::effective_low_watermark() const {
  return queue_low_watermark > 0 ? queue_low_watermark : queue_high_watermark / 2;
}

bool ShedOptions::sheddable(std::size_t index) const {
  if (sheddable_fraction >= 1.0) return true;
  if (sheddable_fraction <= 0.0) return false;
  // Knuth multiplicative hash of the request index: a fixed, seed-independent
  // priority lottery, so shed runs replay exactly and priorities do not move
  // when unrelated knobs shift the RNG stream.
  const std::uint64_t mixed = (static_cast<std::uint64_t>(index) * 2654435761ull) >> 16;
  return static_cast<double>(mixed % 10000u) < sheddable_fraction * 10000.0;
}

void ShedOptions::validate() const {
  if (!enabled()) return;
  expects(effective_low_watermark() <= queue_high_watermark,
          "shed low watermark must be <= high watermark (got " +
              std::to_string(effective_low_watermark()) + " > " +
              std::to_string(queue_high_watermark) + ")");
  expects(sheddable_fraction >= 0.0 && sheddable_fraction <= 1.0,
          "sheddable fraction must be in [0, 1] (got " +
              std::to_string(sheddable_fraction) + ")");
}

void ResilienceOptions::validate() const {
  breaker.validate();
  hedge.validate();
  shed.validate();
}

CircuitBreaker::CircuitBreaker(const BreakerOptions& options) : options_(options) {
  options_.validate();
  ring_.assign(options_.enabled ? options_.window : std::size_t{1}, false);
}

bool CircuitBreaker::allow(double now) {
  if (!options_.enabled) return true;
  switch (state_) {
    case State::Closed:
      return true;
    case State::Open:
      if (now - opened_at_ < options_.open_seconds) return false;
      state_ = State::HalfOpen;
      half_open_in_flight_ = 0;
      [[fallthrough]];
    case State::HalfOpen:
      return half_open_in_flight_ < options_.half_open_probes;
  }
  return true;
}

void CircuitBreaker::on_attempt_start() {
  if (state_ == State::HalfOpen) ++half_open_in_flight_;
}

void CircuitBreaker::record_success(double now) {
  (void)now;
  if (!options_.enabled) return;
  if (state_ == State::HalfOpen) {
    // One healthy probe is evidence enough: close on a fresh window.
    state_ = State::Closed;
    half_open_in_flight_ = 0;
    reset_window();
    return;
  }
  if (state_ == State::Open) return;  // stale completion from before the trip
  push(false);
}

void CircuitBreaker::record_failure(double now) {
  if (!options_.enabled) return;
  if (state_ == State::HalfOpen) {
    trip(now);  // a failed probe re-opens immediately
    return;
  }
  if (state_ == State::Open) return;  // stale completion from before the trip
  push(true);
  if (ring_count_ >= options_.min_attempts &&
      static_cast<double>(ring_failures_) >=
          options_.failure_threshold * static_cast<double>(ring_count_)) {
    trip(now);
  }
}

void CircuitBreaker::push(bool failure) {
  if (ring_count_ == ring_.size()) {
    if (ring_[ring_next_]) --ring_failures_;
  } else {
    ++ring_count_;
  }
  ring_[ring_next_] = failure;
  if (failure) ++ring_failures_;
  ring_next_ = (ring_next_ + 1) % ring_.size();
}

void CircuitBreaker::trip(double now) {
  state_ = State::Open;
  opened_at_ = now;
  half_open_in_flight_ = 0;
  ++times_opened_;
  reset_window();
}

void CircuitBreaker::reset_window() {
  ring_.assign(ring_.size(), false);
  ring_next_ = 0;
  ring_count_ = 0;
  ring_failures_ = 0;
}

}  // namespace aarc::serving
