#include "serving/report.h"

#include "support/contracts.h"

namespace aarc::serving {

using support::expects;

double StreamingReport::slo_violation_rate() const {
  expects(slo_seconds > 0.0,
          "SLO accounting needs EngineOptions::slo_seconds set before the run");
  if (requests == 0) return 0.0;
  return static_cast<double>(slo_violations) / static_cast<double>(requests);
}

double StreamingReport::request_failure_rate() const {
  if (requests == 0) return 0.0;
  return static_cast<double>(failed_requests) / static_cast<double>(requests);
}

double StreamingReport::simulated_rps() const {
  if (duration_seconds <= 0.0) return 0.0;
  return static_cast<double>(completed + failed_requests) / duration_seconds;
}

}  // namespace aarc::serving
