// Graceful-degradation machinery for the serving path.
//
// The chaos engine (chaos/incident.h) makes the simulated platform fail in
// correlated episodes; this module is the serving engine's reaction side.
// Three controls, all disabled by default so the engine stays bit-identical
// to its pre-resilience behavior even with everything compiled in:
//
//   * CircuitBreaker — per-function closed/open/half-open state machine.
//     A function whose recent attempts mostly fail trips open; requests
//     needing it fail fast instead of burning containers, retries and
//     backoff on a dead dependency.  After a hold-off the breaker admits a
//     bounded number of half-open probe attempts; the first success closes
//     it, a failure re-opens it.  The state machine is driven purely by the
//     engine's deterministic event order — no randomness of its own.
//
//   * Hedged requests (HedgeOptions) — straggler cut-off.  When a clean
//     attempt's sampled runtime exceeds the hedge delay, a second attempt
//     of the same invocation launches after the delay; the faster one wins
//     and the loser is cancelled (and billed) at the winner's completion.
//
//   * Priority load shedding (ShedOptions) — under sustained overload
//     (total queued invocations past a high watermark), low-priority
//     arrivals are dropped at the door for the cost of nothing instead of
//     queueing everyone into SLO collapse.  Priority tiers are derived
//     deterministically from the request index, so a shed run is
//     reproducible from the seed.
//
// Semantics, metrics, and tuning guidance: doc/RESILIENCE.md.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace aarc::serving {

/// Per-function circuit-breaker knobs (disabled by default).
struct BreakerOptions {
  bool enabled = false;
  /// Sliding window of recent attempt outcomes the trip decision sees.
  std::size_t window = 20;
  /// Attempts that must accrue in the window before the breaker may trip.
  std::size_t min_attempts = 10;
  /// Trip when the windowed failure fraction reaches this threshold.
  double failure_threshold = 0.5;
  /// Hold-off in the open state before half-open probes are admitted.
  double open_seconds = 30.0;
  /// Concurrent trial attempts admitted while half-open.
  std::size_t half_open_probes = 1;

  void validate() const;
};

/// Hedged-request knobs; delay_seconds == 0 disables hedging.
struct HedgeOptions {
  /// Launch a hedge when a clean attempt runs longer than this (seconds).
  double delay_seconds = 0.0;

  bool enabled() const { return delay_seconds > 0.0; }
  void validate() const;
};

/// Priority load shedding; queue_high_watermark == 0 disables shedding.
struct ShedOptions {
  /// Shedding turns on when the total number of queued invocations across
  /// all functions reaches this level...
  std::size_t queue_high_watermark = 0;
  /// ...and off again when it drains to this level (default: half the high
  /// watermark; must be <= the high watermark).
  std::size_t queue_low_watermark = 0;
  /// Fraction of requests tagged low-priority (sheddable), assigned
  /// deterministically by request index.
  double sheddable_fraction = 0.5;

  bool enabled() const { return queue_high_watermark > 0; }
  std::size_t effective_low_watermark() const;
  /// Deterministic priority tag: true when request `index` is sheddable.
  bool sheddable(std::size_t index) const;
  void validate() const;
};

/// The serving engine's reaction stack, grouped (see EngineOptions).
struct ResilienceOptions {
  BreakerOptions breaker{};
  HedgeOptions hedge{};
  ShedOptions shed{};

  bool any_enabled() const {
    return breaker.enabled || hedge.enabled() || shed.enabled();
  }
  void validate() const;
};

/// Closed/open/half-open breaker over one function's attempt outcomes.
class CircuitBreaker {
 public:
  enum class State : std::uint8_t { Closed, Open, HalfOpen };

  explicit CircuitBreaker(const BreakerOptions& options);

  /// May work for this function be admitted at `now`?  Closed: always.
  /// Open: not until the hold-off elapses (the query itself then turns the
  /// breaker half-open).  Half-open: only while fewer than
  /// `half_open_probes` probe attempts are in flight.  Pure admission
  /// query — probe slots are reserved by on_attempt_start(), so an admitted
  /// request that is later abandoned in a queue cannot leak one.
  bool allow(double now);

  /// An attempt of this function actually started (occupies a probe slot
  /// while half-open).
  void on_attempt_start();

  /// Outcome feedback for one attempt of this function.  Callers must not
  /// report deterministic OOM failures here: OOM is a property of the
  /// configuration, not of platform health, and must not trip the breaker.
  void record_success(double now);
  void record_failure(double now);

  State state() const { return state_; }
  std::size_t times_opened() const { return times_opened_; }

 private:
  void push(bool failure);
  void trip(double now);
  void reset_window();

  BreakerOptions options_;
  State state_ = State::Closed;
  double opened_at_ = 0.0;
  std::size_t half_open_in_flight_ = 0;
  std::size_t times_opened_ = 0;

  // Sliding outcome window as a ring of booleans (true = failure).
  std::vector<bool> ring_;
  std::size_t ring_next_ = 0;
  std::size_t ring_count_ = 0;
  std::size_t ring_failures_ = 0;
};

}  // namespace aarc::serving
