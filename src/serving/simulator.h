// Discrete-event serving simulator.
//
// The executor in platform/ runs one workflow in isolation — that is all the
// paper's configuration-search experiments need.  A deployed platform serves
// a *stream* of workflow requests whose invocations overlap, reuse warm
// containers, suffer cold starts, and compete for per-function concurrency.
// This module simulates exactly that:
//
//   * requests arrive at given times with an input scale and a per-request
//     resource configuration (fixed, or chosen by the Input-Aware engine);
//   * every function invocation needs a container of that function; an idle
//     warm container (within keep-alive) is reused, otherwise a cold start
//     penalty applies;
//   * per-function concurrency can be capped; excess invocations queue FIFO;
//   * billing follows the platform pricing model over the billed duration
//     (cold-start initialization included, as providers bill provisioned
//     time);
//   * an optional fault model injects transient crashes, stragglers,
//     cold-start spikes and throttling; a retry policy re-runs failed
//     attempts with backoff.  Retried attempts occupy containers and queue
//     slots like any other invocation and are billed in full.
//
// The simulation is a classic event-heap DES, deterministic under a seed.
#pragma once

#include <cstdint>
#include <vector>

#include "chaos/incident.h"
#include "perf/noise.h"
#include "platform/faults.h"
#include "platform/pricing.h"
#include "platform/resource.h"
#include "platform/workflow.h"
#include "serving/report.h"
#include "support/rng.h"
#include "support/statistics.h"

namespace aarc::serving {

struct ServingOptions {
  double keep_alive_seconds = 600.0;  ///< container idle lifetime
  double cold_start_min_seconds = 0.5;
  double cold_start_max_seconds = 2.0;
  std::size_t max_containers_per_function = 0;  ///< 0 = unlimited
  perf::NoiseModel noise{0.03};
  platform::FaultModel faults{};  ///< disabled by default
  platform::RetryPolicy retry{};  ///< no retries, no timeout by default
  /// Incident calendar modulating the fault rates over simulated time
  /// (chaos/incident.h); empty = stationary faults, bit-identical behavior.
  chaos::IncidentSchedule chaos{};
  std::uint64_t seed = 2026;
};

/// One workflow request entering the system.
struct Request {
  double arrival_seconds = 0.0;
  double input_scale = 1.0;
  platform::WorkflowConfig config;  ///< allocation for this request
};

// RequestOutcome lives in serving/report.h, shared with the streaming engine.

struct ServingReport {
  std::vector<RequestOutcome> requests;
  double total_cost = 0.0;
  std::size_t cold_starts = 0;
  std::size_t warm_starts = 0;
  std::size_t failed_requests = 0;
  std::size_t retries = 0;             ///< failed attempts that were retried
  std::size_t timeouts = 0;            ///< attempts cut off by the timeout
  std::size_t failed_after_retries = 0; ///< requests lost to transient faults
                                        ///< despite exhausting the retry budget
  std::size_t peak_containers = 0;  ///< max simultaneously-alive containers
  support::Summary latency;  ///< over successful requests only — failed
                             ///< requests have no end-to-end latency and are
                             ///< EXCLUDED here; check request_failure_rate()
                             ///< before reading this as "user experience"

  /// Fraction of ALL requests that violated the SLO.  Failure-aware: a
  /// failed request never met its deadline, so it counts as a violation
  /// (SLAM-style SLO accounting).  A report where every request failed has
  /// violation rate 1, not 0.
  double slo_violation_rate(double slo_seconds) const;

  /// 1 - slo_violation_rate: fraction of requests that met the SLO.
  double slo_attainment(double slo_seconds) const {
    return 1.0 - slo_violation_rate(slo_seconds);
  }

  /// Fraction of requests that failed outright (OOM or retries exhausted).
  double request_failure_rate() const;

  /// Exact latency percentiles over successful requests (p in [0, 100]);
  /// 0 when none succeeded.  Small-scale runs only — the streaming engine's
  /// StreamingReport answers the same questions in bounded memory.
  double latency_percentile(double p) const;
  double latency_p50() const { return latency_percentile(50.0); }
  double latency_p95() const { return latency_percentile(95.0); }
  double latency_p99() const { return latency_percentile(99.0); }
};

class ServingSimulator {
 public:
  /// The workflow and pricing model must outlive the simulator.
  ServingSimulator(const platform::Workflow& workflow,
                   const platform::PricingModel& pricing, ServingOptions options = {});

  /// Serve the given requests (must be sorted by arrival time).  Each
  /// request's config must have one positive entry per function.
  ServingReport serve(const std::vector<Request>& requests) const;

  const ServingOptions& options() const { return options_; }

 private:
  const platform::Workflow* workflow_;
  const platform::PricingModel* pricing_;
  ServingOptions options_;
};

/// Build a Poisson request stream: exponential inter-arrivals with the given
/// rate, input scales drawn uniformly from [scale_min, scale_max], one fixed
/// configuration for every request.  Deterministic under the seed.
std::vector<Request> poisson_stream(std::size_t count, double arrivals_per_second,
                                    double scale_min, double scale_max,
                                    const platform::WorkflowConfig& config,
                                    std::uint64_t seed);

}  // namespace aarc::serving
