#include "serving/reconfigurator.h"

#include <algorithm>
#include <utility>

#include "aarc/priority_configurator.h"
#include "aarc/scheduler.h"
#include "dag/critical_path.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "search/evaluator.h"
#include "support/contracts.h"
#include "support/log.h"

namespace aarc::serving {

using support::expects;

void ReconfigOptions::validate() const {
  expects(min_outcomes_between_reconfigs >= 1,
          "reconfiguration cooldown must be at least one outcome");
  expects(lag_base_seconds >= 0.0 && lag_per_sample_seconds >= 0.0,
          "scheduling lag must be non-negative");
  expects(attainment_window >= 1, "attainment window must be at least one outcome");
  if (fallback_degraded) {
    expects(degraded_slo_factor >= 1.0,
            "degraded SLO factor must be >= 1 (got " +
                std::to_string(degraded_slo_factor) + ")");
  }
}

OnlineReconfigurator::OnlineReconfigurator(const workloads::Workload& workload,
                                           const platform::Executor& executor,
                                           platform::ConfigGrid grid,
                                           platform::WorkflowConfig initial_config,
                                           double expected_makespan,
                                           ReconfigOptions options)
    : workload_(&workload),
      executor_(&executor),
      grid_(grid),
      options_(std::move(options)),
      monitor_(expected_makespan, workload.slo_seconds, options_.monitor) {
  options_.validate();
  expects(workload.slo_seconds > 0.0, "online reconfiguration needs a workload SLO");
  expects(initial_config.size() == workload.workflow.function_count(),
          "initial config must cover every function");
  expects(expected_makespan > 0.0, "expected makespan must be positive");
  versions_.push_back(
      std::make_unique<platform::WorkflowConfig>(std::move(initial_config)));
  active_ = versions_.back().get();
}

const platform::WorkflowConfig& OnlineReconfigurator::config_for(const Arrival&) {
  return *active_;
}

void OnlineReconfigurator::advance_to(double now) {
  if (pending_ == nullptr || now < pending_activation_time_) return;
  // The re-run finished its simulated lag: hot-swap.  Requests already in
  // flight keep their old version (versions_ owns every one ever deployed).
  active_ = pending_;
  pending_ = nullptr;
  degraded_ = pending_degraded_;
  ++reconfigurations_;
  outcomes_since_reconfig_ = 0;
  post_window_event_ = pending_event_;
  post_window_remaining_ = options_.attainment_window;
  post_window_met_ = 0;
  post_window_size_ = 0;
  obs::MetricsRegistry::global()
      .counter(obs::metric::kReconfigReconfigurations)
      .inc();
}

void OnlineReconfigurator::on_outcome(const RequestOutcome& outcome, double now) {
  if (outcome.failed) {
    monitor_.observe_failure();
  } else {
    monitor_.observe(outcome.latency());
  }

  const bool met = !outcome.failed && outcome.latency() <= workload_->slo_seconds;
  recent_met_.push_back(met);
  if (recent_met_.size() > options_.attainment_window) recent_met_.pop_front();

  if (post_window_remaining_ > 0) {
    ++post_window_size_;
    if (met) ++post_window_met_;
    --post_window_remaining_;
    if (post_window_remaining_ == 0 && post_window_event_ < events_.size()) {
      ReconfigEvent& ev = events_[post_window_event_];
      ev.post_slo_attainment = static_cast<double>(post_window_met_) /
                               static_cast<double>(post_window_size_);
      ev.post_window_complete = true;
      obs::MetricsRegistry::global()
          .gauge(obs::metric::kReconfigPostSloAttainment)
          .set(ev.post_slo_attainment);
    }
  }

  ++outcomes_since_reconfig_;
  maybe_trigger(now);
}

double OnlineReconfigurator::rolling_attainment() const {
  if (recent_met_.empty()) return 1.0;
  const auto met = static_cast<std::size_t>(
      std::count(recent_met_.begin(), recent_met_.end(), true));
  return static_cast<double>(met) / static_cast<double>(recent_met_.size());
}

void OnlineReconfigurator::maybe_trigger(double now) {
  if (pending_ != nullptr) return;  // a re-run is already in flight
  if (outcomes_since_reconfig_ < options_.min_outcomes_between_reconfigs) return;
  // While serving on a degraded fallback, every cooldown expiry is a
  // recovery attempt at the original SLO, whatever the monitor thinks — the
  // deployed config meets a *relaxed* target, so the monitor alone would
  // happily stay degraded forever.
  const bool recovery_attempt = degraded_ && options_.fallback_degraded;
  if (!recovery_attempt && !monitor_.should_reconfigure()) return;

  obs::Span reschedule_span("reconfig.reschedule", "reconfig");
  const double new_scale =
      std::max(0.05, scale_estimate_ * monitor_.estimated_drift_ratio());
  if (recovery_attempt) {
    support::log_info("online reconfigurator: degraded, attempting recovery at t=",
                      now, "; rescheduling at scale ", new_scale);
  } else {
    support::log_info("online reconfigurator: ",
                      adaptive::to_string(monitor_.verdict()), " at t=", now,
                      "; rescheduling at scale ", new_scale);
  }

  bool feasible = false;
  std::size_t samples = 0;
  bool used_incremental = false;
  platform::WorkflowConfig candidate;
  if (options_.incremental) {
    candidate = incremental_reschedule(new_scale, feasible, samples);
    used_incremental = feasible;
  }
  if (!feasible) {
    std::size_t full_samples = 0;
    candidate = full_reschedule(new_scale, workload_->slo_seconds, feasible,
                                full_samples);
    samples += full_samples;
  }
  // Degraded fallback: rather than keep serving a configuration the drift
  // already invalidated, reschedule against a relaxed SLO; if even that is
  // infeasible, deploy the grid maximum uniformly — the least-bad config
  // the platform can express.  Never re-deploy a fallback over a fallback:
  // a failed *recovery* keeps the current degraded config.
  bool deploy_degraded = false;
  if (!feasible && options_.fallback_degraded && !degraded_) {
    std::size_t relaxed_samples = 0;
    bool relaxed_feasible = false;
    candidate =
        full_reschedule(new_scale, workload_->slo_seconds * options_.degraded_slo_factor,
                        relaxed_feasible, relaxed_samples);
    samples += relaxed_samples;
    if (!relaxed_feasible) {
      candidate.assign(workload_->workflow.function_count(), grid_.max_config());
    }
    deploy_degraded = true;
    feasible = true;
    ++degraded_fallbacks_;
    support::log_warn("online reconfigurator: no feasible config at scale ",
                      new_scale, "; deploying degraded fallback (",
                      relaxed_feasible ? "relaxed SLO" : "grid max", ")");
  }
  scheduling_samples_ += samples;

  ReconfigEvent event;
  event.trigger_time = now;
  event.new_scale = new_scale;
  event.samples_used = samples;
  event.incremental = used_incremental;
  event.degraded = deploy_degraded;
  event.pre_slo_attainment = rolling_attainment();
  event.lag_seconds =
      options_.lag_base_seconds +
      static_cast<double>(samples) * options_.lag_per_sample_seconds;
  event.activation_time = now + event.lag_seconds;

  auto& reg = obs::MetricsRegistry::global();
  reg.counter(obs::metric::kReconfigSamples).inc(samples);
  reg.gauge(obs::metric::kReconfigPreSloAttainment).set(event.pre_slo_attainment);

  if (!feasible) {
    // Nothing deployable (no-fallback mode, or a failed recovery while
    // already degraded): keep serving with the current configuration and
    // re-arm the monitor at the observed level so the trigger doesn't fire
    // every outcome.
    support::log_warn(
        "online reconfigurator: no feasible config at scale ", new_scale,
        "; keeping the deployed configuration");
    event.activated = false;
    events_.push_back(event);
    monitor_.reset(std::max(monitor_.ewma(), 1e-9));
    outcomes_since_reconfig_ = 0;
    return;
  }

  versions_.push_back(
      std::make_unique<platform::WorkflowConfig>(std::move(candidate)));
  pending_ = versions_.back().get();
  pending_activation_time_ = event.activation_time;
  pending_degraded_ = deploy_degraded;
  if (deploy_degraded) {
    obs::MetricsRegistry::global()
        .counter(obs::metric::kReconfigDegradedFallbacks)
        .inc();
  }
  event.activated = true;
  events_.push_back(event);
  pending_event_ = events_.size() - 1;
  reg.histogram(obs::metric::kReconfigLagSeconds, obs::default_latency_buckets())
      .observe(event.lag_seconds);

  reset_monitor_for(*pending_, new_scale);
  scale_estimate_ = new_scale;
}

void OnlineReconfigurator::reset_monitor_for(const platform::WorkflowConfig& config,
                                             double scale) {
  const auto expectation =
      executor_->execute_mean(workload_->workflow, config, scale);
  monitor_.reset(expectation.failed ? workload_->slo_seconds : expectation.makespan);
}

platform::WorkflowConfig OnlineReconfigurator::incremental_reschedule(
    double scale, bool& feasible, std::size_t& samples) const {
  obs::Span span("reconfig.incremental", "reconfig");
  feasible = false;
  samples = 0;
  const double slo = workload_->slo_seconds;

  platform::Workflow wf = workload_->workflow.clone();

  search::EvaluatorOptions eval_options;
  eval_options.resample.max_resamples = options_.scheduler.probe_resamples;
  eval_options.resample.outlier_factor = options_.scheduler.probe_outlier_factor;
  eval_options.threads = options_.scheduler.evaluator_threads;
  eval_options.probe_cache = options_.scheduler.probe_cache;
  search::Evaluator evaluator(wf, *executor_, slo, scale, options_.scheduler.seed,
                              eval_options);

  // Start from the deployed configuration: off-path functions keep their
  // tuned allocation, so only the critical path is re-searched.
  platform::WorkflowConfig config = *active_;

  // Weight the DAG at the new scale under the deployed configuration — one
  // probe tells us the new critical path and whether the deployed
  // allocation can run at this scale at all.
  search::ProbeResult baseline = evaluator.probe(config);
  for (std::size_t left = options_.scheduler.configurator.transient_probe_retries;
       left > 0 && baseline.sample.failed && baseline.sample.transient; --left) {
    baseline = evaluator.probe(config);
  }
  if (baseline.sample.failed) {
    samples = evaluator.billed_samples();
    return config;
  }
  wf.mutable_graph().set_weights(baseline.function_runtimes);
  const dag::Path critical_path = dag::find_critical_path(wf.graph());

  // Re-provision the (new) critical path to the grid maximum, then let the
  // Priority Configurator walk it back down against the full SLO — the
  // Algorithm 2 inner loop without re-running detours or stray nodes.
  for (dag::NodeId id : critical_path.nodes()) config[id] = grid_.max_config();
  search::ProbeResult reprov = evaluator.probe(config);
  for (std::size_t left = options_.scheduler.configurator.transient_probe_retries;
       left > 0 && reprov.sample.failed && reprov.sample.transient; --left) {
    reprov = evaluator.probe(config);
  }
  if (!reprov.sample.failed) {
    const core::PriorityConfigurator configurator(grid_,
                                                  options_.scheduler.configurator);
    configurator.configure_path(evaluator, critical_path.nodes(), slo, config, reprov);

    // Final verdict: same semantics as the scheduler's finalization — a
    // probabilistic bound (doc/SLO.md) validates with a replicate
    // distribution; the legacy default keeps the single-probe point check.
    const search::SloBound& bound = options_.scheduler.configurator.slo;
    auto final_probe = [&]() {
      return bound.is_legacy()
                 ? evaluator.probe(config)
                 : evaluator.probe_distribution(config, bound.min_replicates());
    };
    search::ProbeResult final_eval = final_probe();
    for (std::size_t left = options_.scheduler.configurator.transient_probe_retries;
         left > 0 && final_eval.sample.failed && final_eval.sample.transient; --left) {
      final_eval = final_probe();
    }
    feasible = bound.is_legacy()
                   ? final_eval.sample.feasible
                   : search::slo_verdict(*final_eval.makespan_distribution, bound,
                                         slo) == search::SloVerdict::Accept;
  }
  samples = evaluator.billed_samples();
  return config;
}

platform::WorkflowConfig OnlineReconfigurator::full_reschedule(
    double scale, double slo_seconds, bool& feasible, std::size_t& samples) const {
  obs::Span span("reconfig.full", "reconfig");
  core::GraphCentricScheduler scheduler(*executor_, grid_, options_.scheduler);
  const core::ScheduleReport report =
      scheduler.schedule(workload_->workflow, slo_seconds, scale);
  feasible = report.result.found_feasible;
  samples = report.result.samples();
  return report.result.best_config;
}

}  // namespace aarc::serving
