// Open-loop arrival processes for the serving engine.
//
// The legacy simulator took a pre-materialized std::vector<Request>; at a
// million requests that vector (one WorkflowConfig copy per request) *is*
// the memory bound.  The engine instead pulls arrivals one at a time from a
// generator, so a run's footprint is the in-flight state, not the stream
// length.  Four processes cover the workloads the serving experiments need:
//
//   * Poisson        — exponential inter-arrivals at a constant rate (the
//                      memoryless baseline; identical draws to the legacy
//                      poisson_stream helper);
//   * MMPP           — two-state Markov-modulated Poisson: a baseline state
//                      and a burst state with independent rates and
//                      exponential sojourn times (bursty production traffic);
//   * Diurnal        — sinusoidally rate-modulated Poisson via thinning
//                      (day/night load curves);
//   * TraceReplay    — replays recorded (time, scale) pairs, loaded from the
//                      JSON schema in io/trace_io.h.
//
// Every process is seeded and deterministic; reset() restarts the exact
// stream.  Input-scale drift can be injected mid-stream (scales multiply by
// `drift_factor` from `drift_time` on) to exercise the drift monitor and the
// online reconfigurator without touching the generator's random stream.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "support/rng.h"

namespace aarc::serving {

/// One request entering the system: when, and how big its input is.
struct Arrival {
  double time = 0.0;
  double input_scale = 1.0;
};

/// How long a generated stream runs.  Zero means "unlimited" for either
/// field, but at least one bound must be set (an open-loop process with no
/// bound never terminates the engine).
struct ArrivalLimits {
  std::size_t max_requests = 0;
  double horizon_seconds = 0.0;

  void validate() const;
  bool exhausted(std::size_t produced, double time) const;
};

/// Input-scale distribution shared by the generated processes, with optional
/// mid-stream drift: scales drawn after `drift_time` are multiplied by
/// `drift_factor` (1 = no drift; the multiplication consumes no randomness,
/// so a drifting stream has the same arrival times as a clean one).
struct ScaleSpec {
  double scale_min = 1.0;
  double scale_max = 1.0;
  double drift_time = 0.0;
  double drift_factor = 1.0;

  void validate() const;
  double apply_drift(double scale, double time) const;
};

/// A seeded stream of arrivals with non-decreasing times.
class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;

  /// The next arrival, or nullopt when the stream's limits are exhausted.
  virtual std::optional<Arrival> next() = 0;

  /// Restart the stream from the beginning (same seed, same arrivals).
  virtual void reset() = 0;
};

/// Constant-rate Poisson arrivals.  Draw-for-draw identical to the legacy
/// poisson_stream helper under the same seed.
class PoissonProcess final : public ArrivalProcess {
 public:
  PoissonProcess(double arrivals_per_second, ScaleSpec scales, ArrivalLimits limits,
                 std::uint64_t seed);

  std::optional<Arrival> next() override;
  void reset() override;

 private:
  double rate_;
  ScaleSpec scales_;
  ArrivalLimits limits_;
  std::uint64_t seed_;
  support::Rng rng_;
  double time_ = 0.0;
  std::size_t produced_ = 0;
};

/// Two-state Markov-modulated Poisson process: exponential sojourns in a
/// baseline state (rate `base_rate`) and a burst state (rate `burst_rate`).
struct MmppParams {
  double base_rate = 1.0;            ///< arrivals/s in the baseline state
  double burst_rate = 5.0;           ///< arrivals/s in the burst state
  double mean_base_seconds = 60.0;   ///< mean sojourn in the baseline state
  double mean_burst_seconds = 10.0;  ///< mean sojourn in the burst state

  void validate() const;
};

class MmppProcess final : public ArrivalProcess {
 public:
  MmppProcess(MmppParams params, ScaleSpec scales, ArrivalLimits limits,
              std::uint64_t seed);

  std::optional<Arrival> next() override;
  void reset() override;

 private:
  void restart();

  MmppParams params_;
  ScaleSpec scales_;
  ArrivalLimits limits_;
  std::uint64_t seed_;
  support::Rng rng_;
  double time_ = 0.0;
  double state_end_ = 0.0;
  bool bursting_ = false;
  std::size_t produced_ = 0;
};

/// Sinusoidally rate-modulated Poisson via Lewis-Shedler thinning:
/// rate(t) = base_rate * (1 + amplitude * sin(2 pi t / period_seconds)).
struct DiurnalParams {
  double base_rate = 1.0;
  double amplitude = 0.5;           ///< in [0, 1): peak/trough swing
  double period_seconds = 86400.0;  ///< one "day"

  void validate() const;
};

class DiurnalProcess final : public ArrivalProcess {
 public:
  DiurnalProcess(DiurnalParams params, ScaleSpec scales, ArrivalLimits limits,
                 std::uint64_t seed);

  std::optional<Arrival> next() override;
  void reset() override;

 private:
  DiurnalParams params_;
  ScaleSpec scales_;
  ArrivalLimits limits_;
  std::uint64_t seed_;
  support::Rng rng_;
  double time_ = 0.0;
  std::size_t produced_ = 0;
};

/// Replays a recorded trace (times must be non-decreasing).  The optional
/// ScaleSpec drift applies on top of the recorded scales, so a recorded
/// trace can still be used for drift experiments.
class TraceReplayProcess final : public ArrivalProcess {
 public:
  TraceReplayProcess(std::vector<Arrival> trace, ArrivalLimits limits = {},
                     ScaleSpec scales = {});

  std::optional<Arrival> next() override;
  void reset() override;

  std::size_t size() const { return trace_.size(); }

 private:
  std::vector<Arrival> trace_;
  ArrivalLimits limits_;
  ScaleSpec scales_;
  std::size_t index_ = 0;
};

/// Materialize up to `max_count` arrivals (testing and trace export).
std::vector<Arrival> materialize(ArrivalProcess& process, std::size_t max_count);

}  // namespace aarc::serving
