// Calendar queue: the O(1)-amortized event scheduler behind the serving
// engine.
//
// A classic binary-heap DES pays O(log n) comparisons plus pointer-chasing
// per operation.  A calendar queue (Brown 1988) hashes events into "days"
// (buckets) of a rotating "year": push is an append into the day computed
// from the timestamp, pop scans the current day for its earliest event and
// advances day by day.  With the day width tuned to the mean event spacing,
// both operations touch a handful of contiguous slots.
//
// The queue resizes itself: when occupancy outgrows (or far undershoots)
// the bucket count it rebuilds with a day width sampled from the live
// events, so throughput stays flat from smoke-test traffic to millions of
// requests.  Resizing depends only on queue content — runs are
// deterministic.
//
// Ordering contract: strict (time, sequence) order, identical to the
// legacy event-heap's comparator, which is what makes the engine
// bit-identical to the heap on the same event stream.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "support/contracts.h"

namespace aarc::serving {

/// Priority queue of `Event` ordered by (ev.time, ev.sequence) ascending.
/// Event must expose `double time` and `std::uint64_t sequence`.
template <typename Event>
class CalendarQueue {
 public:
  explicit CalendarQueue(double initial_day_width = 1.0,
                         std::size_t initial_buckets = 16)
      : day_width_(initial_day_width), buckets_(round_up_pow2(initial_buckets)) {
    support::expects(initial_day_width > 0.0, "day width must be positive");
    mask_ = buckets_.size() - 1;
  }

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  void push(const Event& ev) {
    support::expects(ev.time >= current_day_start(),
                     "calendar queue cannot schedule into the past");
    bucket_for(ev.time).push_back(ev);
    ++size_;
    if (size_ > buckets_.size() * kMaxOccupancy) resize(buckets_.size() * 2);
  }

  /// Remove and return the earliest event by (time, sequence).
  Event pop() {
    support::expects(size_ > 0, "pop from empty calendar queue");
    for (;;) {
      auto& bucket = buckets_[day_ & mask_];
      const double day_end = current_day_start() + day_width_;
      std::size_t best = bucket.size();
      for (std::size_t i = 0; i < bucket.size(); ++i) {
        const Event& ev = bucket[i];
        if (ev.time >= day_end) continue;  // later year, same day slot
        if (best == bucket.size() || earlier(ev, bucket[best])) best = i;
      }
      if (best != bucket.size()) {
        Event out = bucket[best];
        bucket[best] = bucket.back();
        bucket.pop_back();
        --size_;
        maybe_shrink();
        return out;
      }
      advance_day();
    }
  }

 private:
  static constexpr std::size_t kMaxOccupancy = 4;  ///< avg events per bucket

  static std::size_t round_up_pow2(std::size_t n) {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p;
  }

  static bool earlier(const Event& a, const Event& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.sequence < b.sequence;
  }

  double current_day_start() const { return static_cast<double>(day_) * day_width_; }

  std::vector<Event>& bucket_for(double time) {
    const auto day = static_cast<std::uint64_t>(time / day_width_);
    return buckets_[day & mask_];
  }

  void advance_day() {
    ++day_;
    ++empty_scans_;
    // A full empty year means every remaining event is far in the future:
    // jump straight to the earliest one instead of spinning day by day.
    if (empty_scans_ >= buckets_.size()) {
      empty_scans_ = 0;
      double min_time = std::numeric_limits<double>::infinity();
      for (const auto& bucket : buckets_) {
        for (const Event& ev : bucket) min_time = std::min(min_time, ev.time);
      }
      day_ = static_cast<std::uint64_t>(min_time / day_width_);
    }
  }

  void maybe_shrink() {
    empty_scans_ = 0;
    if (buckets_.size() > 16 && size_ * kMaxOccupancy * 4 < buckets_.size()) {
      resize(buckets_.size() / 2);
    }
  }

  /// Rebuild with `count` buckets and a day width matched to the current
  /// event spacing (span / size), preserving all events.
  void resize(std::size_t count) {
    std::vector<Event> events;
    events.reserve(size_);
    double min_time = std::numeric_limits<double>::infinity();
    double max_time = 0.0;
    for (auto& bucket : buckets_) {
      for (const Event& ev : bucket) {
        min_time = std::min(min_time, ev.time);
        max_time = std::max(max_time, ev.time);
        events.push_back(ev);
      }
      bucket.clear();
    }
    if (!events.empty()) {
      const double span = max_time - min_time;
      const double width = span / static_cast<double>(events.size());
      // Keep a sane floor: fully coincident events would give width 0.
      if (width > 1e-9) day_width_ = width;
      day_ = static_cast<std::uint64_t>(min_time / day_width_);
    }
    buckets_.assign(round_up_pow2(count), {});
    mask_ = buckets_.size() - 1;
    empty_scans_ = 0;
    for (const Event& ev : events) bucket_for(ev.time).push_back(ev);
  }

  double day_width_;
  std::vector<std::vector<Event>> buckets_;
  std::size_t mask_ = 0;
  std::uint64_t day_ = 0;
  std::size_t size_ = 0;
  std::size_t empty_scans_ = 0;
};

}  // namespace aarc::serving
