#include "serving/engine.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <deque>
#include <limits>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/span.h"
#include "serving/calendar_queue.h"
#include "support/contracts.h"
#include "support/rng.h"

namespace aarc::serving {

using support::expects;

void AutoscalerOptions::validate() const {
  expects(interval_seconds > 0.0, "autoscaler interval must be positive");
  expects(target_utilization > 0.0 && target_utilization <= 1.0,
          "autoscaler target utilization must be in (0, 1]");
}

ServingEngine::ServingEngine(const platform::Workflow& workflow,
                             const platform::PricingModel& pricing,
                             EngineOptions options)
    : workflow_(&workflow), pricing_(&pricing), options_(std::move(options)) {
  workflow.validate();
  expects(options_.keep_alive_seconds >= 0.0, "keep-alive must be non-negative");
  expects(options_.cold_start_min_seconds >= 0.0 &&
              options_.cold_start_max_seconds >= options_.cold_start_min_seconds,
          "cold-start range must be ordered and non-negative");
  expects(options_.slo_seconds >= 0.0, "SLO must be non-negative");
  expects(options_.window_seconds >= 0.0, "window width must be non-negative");
  options_.retry.validate();
  options_.autoscaler.validate();
  options_.chaos.validate();
  options_.resilience.validate();
}

namespace {

enum class EventKind : std::uint8_t { Arrival, Completion, Retry, AutoscaleTick };

/// 32 bytes: the calendar queue copies events in and out of buckets, so
/// the node id is narrowed to 32 bits (slot count is already capped there).
struct Event {
  double time = 0.0;
  std::uint64_t sequence = 0;  ///< deterministic tie-break, push order
  std::uint32_t slot = 0;
  std::uint32_t node = 0;
  EventKind kind = EventKind::Arrival;
  bool failed_attempt = false;  ///< completion of a crashed/timed-out attempt
  bool timed_out = false;       ///< the failure was the invocation timeout
  bool oomed = false;           ///< deterministic OOM (not breaker feedback)
};

struct FunctionPool {
  std::size_t busy = 0;
  /// Warm containers keyed by release time, kept sorted ascending.
  /// Completions release at the event clock, which never goes backwards, so
  /// the common append is O(1) at the back; expiry purges and coldest-first
  /// retirement pop the front; the hottest ready container is the back.
  /// Only autoscaler pre-warms (future release times, reusable once the
  /// clock passes them) can force a mid-deque insert, and scale-from-zero
  /// runs never contain them.  This is what keeps warm-pool maintenance
  /// O(1) per invocation where the legacy simulator scans the whole pool.
  std::deque<double> idle_release_times;
  std::deque<std::pair<std::uint32_t, dag::NodeId>> waiting;
};

/// Pooled per-request state.  The per-node arrays live in flat slabs owned
/// by the run (indexed slot * n + node), so recycling a slot allocates
/// nothing: millions of requests reuse the few hundred slots that are ever
/// simultaneously in flight.
struct Slot {
  RequestOutcome outcome;
  const platform::WorkflowConfig* config = nullptr;
  double input_scale = 1.0;
  std::uint32_t refs = 0;  ///< queue events + waiting entries naming this slot
  std::uint32_t nodes_done = 0;
  bool failed = false;
  bool transient_fail = false;  ///< failed on faults, not OOM/rejection
  bool live = false;
};

}  // namespace

StreamingReport ServingEngine::run(ArrivalProcess& arrivals,
                                   const platform::WorkflowConfig& config) const {
  FixedConfigSource source(config);
  return run(arrivals, source);
}

StreamingReport ServingEngine::run(ArrivalProcess& arrivals,
                                   ConfigSource& configs) const {
  obs::Span run_span("serving.engine_run", "serving");
  const dag::Graph& g = workflow_->graph();
  const std::size_t n = g.node_count();

  std::vector<std::uint32_t> pred_counts(n);
  for (dag::NodeId id = 0; id < n; ++id) {
    pred_counts[id] = static_cast<std::uint32_t>(g.predecessors(id).size());
  }
  const std::vector<dag::NodeId> source_nodes = g.sources();  // loop-invariant

  support::Rng rng(options_.seed);
  StreamingReport report;
  report.slo_seconds = options_.slo_seconds;
  report.window_seconds = options_.window_seconds;
  support::Accumulator latency_acc;

  auto& reg = obs::MetricsRegistry::global();
  obs::Histogram& latency_hist = reg.histogram(
      obs::metric::kServingRequestLatencySeconds, obs::default_latency_buckets());

  std::vector<FunctionPool> pools(n);
  std::size_t alive_containers = 0;

  // Resilience state (serving/resilience.h).  Breakers exist only when
  // enabled; shedding hysteresis tracks the total queue depth across all
  // functions incrementally (updated where pool.waiting changes).
  const ResilienceOptions& resilience = options_.resilience;
  std::vector<CircuitBreaker> breakers;
  if (resilience.breaker.enabled) {
    breakers.assign(n, CircuitBreaker(resilience.breaker));
  }
  std::size_t total_queued = 0;
  bool shedding_active = false;

  // Fault sampling, chaos-modulated when a schedule is present.  The empty
  // schedule short-circuits to the stationary model: same rates, same draw
  // order, bit-identical stream (see platform::sample_fault).
  auto sample_faults = [&](dag::NodeId node, double t) -> platform::FaultOutcome {
    if (options_.chaos.empty()) return options_.faults.sample(node, rng);
    if (options_.chaos.active_for(node, t)) {
      ++report.chaos_modulated_attempts;
      return platform::sample_fault(
          options_.chaos.modulate(options_.faults.rates(node), node, t), rng);
    }
    return options_.faults.sample(node, rng);
  };

  // Slot pool + flat per-node slabs (remaining predecessors / attempts).
  std::vector<Slot> slots;
  std::vector<std::uint32_t> remaining_preds;
  std::vector<std::uint32_t> attempts;
  std::vector<std::uint32_t> free_slots;
  std::size_t live_slot_count = 0;
  std::size_t next_request_index = 0;

  // Config validation is cached by pointer: sources hand out long-lived
  // configurations, so each distinct one is validated exactly once no
  // matter how many requests it serves.
  std::vector<const platform::WorkflowConfig*> seen_configs;
  auto validate_config = [&](const platform::WorkflowConfig& cfg) {
    for (const auto* seen : seen_configs) {
      if (seen == &cfg) return;
    }
    expects(cfg.size() == n, "request config must cover every function");
    for (const auto& rc : cfg) {
      expects(rc.vcpu > 0.0 && rc.memory_mb > 0.0, "allocations must be positive");
    }
    seen_configs.push_back(&cfg);
  };

  auto alloc_slot = [&](const Arrival& arrival,
                        const platform::WorkflowConfig& cfg) -> std::uint32_t {
    std::uint32_t s;
    if (!free_slots.empty()) {
      s = free_slots.back();
      free_slots.pop_back();
    } else {
      s = static_cast<std::uint32_t>(slots.size());
      slots.emplace_back();
      remaining_preds.resize(slots.size() * n);
      attempts.resize(slots.size() * n);
    }
    Slot& slot = slots[s];
    slot.outcome = RequestOutcome{};
    slot.outcome.index = next_request_index++;
    slot.outcome.arrival = arrival.time;
    slot.outcome.completion = arrival.time;
    slot.config = &cfg;
    slot.input_scale = arrival.input_scale;
    slot.refs = 0;
    slot.nodes_done = 0;
    slot.failed = false;
    slot.transient_fail = false;
    slot.live = true;
    std::copy(pred_counts.begin(), pred_counts.end(),
              remaining_preds.begin() + static_cast<std::ptrdiff_t>(s * n));
    std::fill_n(attempts.begin() + static_cast<std::ptrdiff_t>(s * n), n, 0u);
    ++live_slot_count;
    return s;
  };

  // Window series: completed/failed land in the completion-time window,
  // arrivals in the arrival-time window; gaps are filled so the series is
  // contiguous from t=0.
  auto window_at = [&](double t) -> WindowStat& {
    const double w = options_.window_seconds;
    const auto idx = static_cast<std::size_t>(t / w);
    while (report.windows.size() <= idx) {
      WindowStat ws;
      ws.start = static_cast<double>(report.windows.size()) * w;
      ws.width = w;
      report.windows.push_back(ws);
    }
    return report.windows[idx];
  };

  // A finished request leaves the system: fold its outcome into the
  // streaming aggregates and recycle the slot.
  auto emit = [&](std::uint32_t s, ConfigSource& source) {
    Slot& slot = slots[s];
    const RequestOutcome& out = slot.outcome;
    ++report.requests;
    report.total_cost += out.cost;
    bool violated = false;
    if (out.failed) {
      ++report.failed_requests;
      if (out.rejected) ++report.rejected_requests;
      if (out.shed) ++report.shed_requests;
      if (out.breaker_fastfail) ++report.breaker_fastfail_requests;
      if (slot.transient_fail) ++report.failed_after_retries;
      violated = true;  // failure-aware SLO: a failed request is always late
    } else {
      ++report.completed;
      const double l = out.latency();
      latency_acc.add(l);
      report.latency_quantiles.add(l);
      latency_hist.observe(l);
      violated = options_.slo_seconds > 0.0 && l > options_.slo_seconds;
    }
    if (options_.slo_seconds > 0.0 && violated) ++report.slo_violations;
    if (options_.window_seconds > 0.0) {
      WindowStat& ws = window_at(out.completion);
      if (out.failed) {
        ++ws.failed;
        if (out.rejected) ++ws.rejected;
      } else {
        ++ws.completed;
        ws.latency_sum += out.latency();
        ws.max_latency = std::max(ws.max_latency, out.latency());
      }
      if (violated) ++ws.slo_violations;
    }
    source.on_outcome(out, out.completion);
    if (options_.retain_outcomes &&
        report.outcomes.size() < options_.max_retained_outcomes) {
      report.outcomes.push_back(out);
    }
    slot.live = false;
    free_slots.push_back(s);
    --live_slot_count;
  };

  auto maybe_emit = [&](std::uint32_t s, ConfigSource& source) {
    Slot& slot = slots[s];
    if (!slot.live || slot.refs != 0) return;
    if (slot.failed || slot.nodes_done == n) emit(s, source);
  };

  CalendarQueue<Event> events;
  std::uint64_t sequence = 0;
  auto push = [&](Event ev) {
    ev.sequence = sequence++;
    events.push(ev);
  };

  // Release a container into the warm pool, preserving the sorted order.
  auto insert_idle = [&](FunctionPool& pool, double release) {
    auto& idle = pool.idle_release_times;
    if (idle.empty() || idle.back() <= release) {
      idle.push_back(release);
    } else {
      idle.insert(std::upper_bound(idle.begin(), idle.end(), release), release);
    }
  };

  auto purge_expired = [&](FunctionPool& pool, double now) {
    auto& idle = pool.idle_release_times;
    while (!idle.empty() && idle.front() + options_.keep_alive_seconds < now) {
      idle.pop_front();
      --alive_containers;
    }
  };

  // Start one invocation attempt now (the caller has checked capacity).
  // Semantics and RNG draw order are the legacy simulator's, verbatim:
  // cold-delay uniform (cold only) -> runtime noise -> fault sample.
  auto start_invocation = [&](std::uint32_t s, dag::NodeId node, double now) {
    Slot& slot = slots[s];
    FunctionPool& pool = pools[node];
    purge_expired(pool, now);

    double cold_delay = 0.0;
    auto& idle = pool.idle_release_times;
    // Reuse the most recently released *ready* container (LIFO keeps pools
    // small); autoscaler pre-warms still provisioning (release > now) don't
    // qualify yet.  Ready entries are a sorted prefix, so the hottest is
    // the last one <= now — the back, unless future pre-warms sit above it.
    bool warm = false;
    if (!idle.empty()) {
      if (idle.back() <= now) {
        idle.pop_back();
        warm = true;
      } else {
        const auto ub = std::upper_bound(idle.begin(), idle.end(), now);
        if (ub != idle.begin()) {
          idle.erase(ub - 1);
          warm = true;
        }
      }
    }
    if (warm) {
      ++report.warm_starts;
    } else {
      cold_delay =
          rng.uniform(options_.cold_start_min_seconds, options_.cold_start_max_seconds);
      ++report.cold_starts;
      ++slot.outcome.cold_starts;
      ++alive_containers;
      report.peak_containers = std::max(report.peak_containers, alive_containers);
    }
    ++pool.busy;

    double billed = cold_delay;
    bool attempt_failed = false;
    bool attempt_timed_out = false;
    bool attempt_oomed = false;
    const auto& model = workflow_->model(node);
    const auto& rc = (*slot.config)[node];
    if (!model.fits_memory(rc.memory_mb, slot.input_scale)) {
      // OOM: deterministic, never retried — the request fails; the container
      // is charged for the cold start only and frees immediately.  OOM is a
      // property of the configuration, so it is invisible to the breaker.
      slot.failed = true;
      slot.outcome.failed = true;
      attempt_oomed = true;
    } else {
      if (!breakers.empty()) breakers[node].on_attempt_start();
      double duration = options_.noise.noisy_runtime(
          model.mean_runtime(rc.vcpu, rc.memory_mb, slot.input_scale), rng);
      const platform::FaultOutcome fault = sample_faults(node, now);
      duration = duration * fault.runtime_multiplier + fault.extra_delay_seconds;
      if (fault.crashed) {
        duration *= fault.crash_fraction;
        attempt_failed = true;
      } else if (options_.retry.timeout_enabled() &&
                 duration > options_.retry.timeout_seconds) {
        duration = options_.retry.timeout_seconds;
        attempt_failed = true;
        attempt_timed_out = true;
      }
      billed += duration;
      if (!attempt_failed && resilience.hedge.enabled() &&
          duration > resilience.hedge.delay_seconds) {
        // Hedged straggler cut-off: a second attempt of this invocation
        // launches hedge-delay seconds into the primary's execution, always
        // on a fresh (cold) container; the faster one completes the node
        // and the loser is cancelled — and billed — at the winner's finish.
        // The hedge resolves inline (cold start, runtime noise and fault
        // sample draw from the same stream right here), so the composite
        // stays one completion event and the run stays deterministic.  The
        // hedge container is ephemeral burst capacity: it never joins the
        // warm pool and holds no concurrency slot, but counts in the peak.
        const double p_rel = billed;  // primary completes this far from now
        const double h_launch = cold_delay + resilience.hedge.delay_seconds;
        const double h_cold = rng.uniform(options_.cold_start_min_seconds,
                                          options_.cold_start_max_seconds);
        double h_duration = options_.noise.noisy_runtime(
            model.mean_runtime(rc.vcpu, rc.memory_mb, slot.input_scale), rng);
        const platform::FaultOutcome h_fault = sample_faults(node, now + h_launch);
        h_duration =
            h_duration * h_fault.runtime_multiplier + h_fault.extra_delay_seconds;
        bool hedge_ok = true;
        if (h_fault.crashed) {
          h_duration *= h_fault.crash_fraction;
          hedge_ok = false;
        } else if (options_.retry.timeout_enabled() &&
                   h_duration > options_.retry.timeout_seconds) {
          h_duration = options_.retry.timeout_seconds;
          hedge_ok = false;
        }
        const double h_rel = h_launch + h_cold + h_duration;
        const bool hedge_won = hedge_ok && h_rel < p_rel;
        const double winner_rel = hedge_won ? h_rel : p_rel;
        billed = winner_rel;  // primary runs (at most) to the winner's finish
        slot.outcome.cost +=
            pricing_->invocation_cost(rc, std::min(h_rel, winner_rel) - h_launch);
        ++slot.outcome.invocations;
        ++slot.outcome.cold_starts;
        ++report.cold_starts;
        ++report.hedges;
        if (hedge_won) ++report.hedge_wins;
        report.peak_containers =
            std::max(report.peak_containers, alive_containers + 1);
      }
    }
    // Every attempt is billed, failed or not: it occupied provisioned time.
    slot.outcome.cost += pricing_->invocation_cost(rc, billed);
    ++slot.outcome.invocations;
    ++attempts[s * n + node];
    Event done;
    done.time = now + billed;
    done.kind = EventKind::Completion;
    done.slot = s;
    done.node = static_cast<std::uint32_t>(node);
    done.failed_attempt = attempt_failed;
    done.timed_out = attempt_timed_out;
    done.oomed = attempt_oomed;
    ++slot.refs;
    push(done);
  };

  // Admit an invocation: start it, queue it at capacity, or — with
  // admission control on — reject the whole request when the queue is full.
  // An open circuit breaker fails the request fast before any of that: no
  // container, no queue slot, no retries against a function known to be
  // down.
  auto admit = [&](std::uint32_t s, dag::NodeId node, double now) {
    if (!breakers.empty() && !breakers[node].allow(now)) {
      Slot& slot = slots[s];
      if (!slot.failed) {
        slot.failed = true;
        slot.outcome.failed = true;
        slot.outcome.breaker_fastfail = true;
        slot.outcome.completion = std::max(slot.outcome.completion, now);
      }
      return;
    }
    FunctionPool& pool = pools[node];
    if (options_.max_containers_per_function != 0 &&
        pool.busy >= options_.max_containers_per_function) {
      if (options_.admission.max_queue_per_function != 0 &&
          pool.waiting.size() >= options_.admission.max_queue_per_function) {
        Slot& slot = slots[s];
        if (!slot.failed) {
          slot.failed = true;
          slot.outcome.failed = true;
          slot.outcome.rejected = true;
          slot.outcome.completion = std::max(slot.outcome.completion, now);
        }
        return;
      }
      pool.waiting.emplace_back(s, node);
      ++slots[s].refs;
      ++total_queued;
      report.peak_queue_depth = std::max(report.peak_queue_depth, pool.waiting.size());
      return;
    }
    start_invocation(s, node, now);
  };

  // Feed a queued invocation of this function, if any.  Entries abandoned
  // by failed requests are skipped — and dropping their reference may be
  // the last thing keeping the request alive, so check for emission.
  auto feed_waiting = [&](FunctionPool& pool, double now, ConfigSource& source) {
    while (!pool.waiting.empty()) {
      const auto [ws, wn] = pool.waiting.front();
      pool.waiting.pop_front();
      --total_queued;
      --slots[ws].refs;
      if (slots[ws].failed) {
        maybe_emit(ws, source);
        continue;
      }
      start_invocation(ws, wn, now);
      maybe_emit(ws, source);
      break;
    }
  };

  // One autoscaler control tick: pre-warm toward the demand target, retire
  // ready idle capacity above it (coldest first).
  auto autoscale_tick = [&](double now) {
    bool any_up = false;
    bool any_down = false;
    for (auto& pool : pools) {
      purge_expired(pool, now);
      const std::size_t demand = pool.busy + pool.waiting.size();
      auto desired = static_cast<std::size_t>(std::ceil(
          static_cast<double>(demand) / options_.autoscaler.target_utilization));
      desired = std::max(desired, options_.autoscaler.min_warm);
      if (options_.max_containers_per_function != 0) {
        desired = std::min(desired, options_.max_containers_per_function);
      }
      const std::size_t capacity = pool.busy + pool.idle_release_times.size();
      if (capacity < desired) {
        for (std::size_t i = capacity; i < desired; ++i) {
          // A pre-warm pays the cold start now so a later request doesn't:
          // it becomes reusable once its provisioning delay elapses.  Its
          // startup is platform overhead, billed to no request.
          const double delay = rng.uniform(options_.cold_start_min_seconds,
                                           options_.cold_start_max_seconds);
          insert_idle(pool, now + delay);
          ++alive_containers;
          ++report.prewarmed_containers;
          report.peak_containers = std::max(report.peak_containers, alive_containers);
        }
        any_up = true;
      } else if (capacity > desired) {
        auto& idle = pool.idle_release_times;
        std::size_t excess = capacity - desired;
        while (excess > 0 && !idle.empty() && idle.front() <= now) {
          idle.pop_front();  // coldest ready container; future = provisioning
          --alive_containers;
          ++report.retired_containers;
          --excess;
        }
        if (excess < capacity - desired) any_down = true;
      }
    }
    if (any_up) ++report.autoscale_ups;
    if (any_down) ++report.autoscale_downs;
  };

  const std::size_t max_attempts = std::max<std::size_t>(1, options_.retry.max_attempts);

  // Prime the loop: one pending arrival in the queue at a time (the next is
  // pulled when it pops), plus the first autoscaler tick.
  Arrival pending_arrival{};
  bool arrivals_done = true;
  if (auto first = arrivals.next()) {
    expects(first->time >= 0.0, "arrivals must have non-negative times");
    expects(first->input_scale > 0.0, "input scale must be positive");
    pending_arrival = *first;
    arrivals_done = false;
    Event ev;
    ev.time = first->time;
    ev.kind = EventKind::Arrival;
    push(ev);
  }
  if (options_.autoscaler.enabled) {
    Event tick;
    tick.time = options_.autoscaler.interval_seconds;
    tick.kind = EventKind::AutoscaleTick;
    push(tick);
  }

  double last_event_time = 0.0;
  while (!events.empty()) {
    const Event ev = events.pop();
    ++report.events_processed;
    last_event_time = std::max(last_event_time, ev.time);
    // Drive the control plane's clock from every event, not just arrivals:
    // a swap whose scheduling lag elapses in the completion tail (after the
    // last arrival) must still activate and be counted as deployed.
    configs.advance_to(ev.time);

    if (ev.kind == EventKind::AutoscaleTick) {
      autoscale_tick(ev.time);
      // Keep ticking only while the system still has (or can get) work, so
      // an idle tail doesn't spin the clock forever.
      if (live_slot_count > 0 || !arrivals_done) {
        Event next_tick;
        next_tick.time = ev.time + options_.autoscaler.interval_seconds;
        next_tick.kind = EventKind::AutoscaleTick;
        push(next_tick);
      }
      continue;
    }

    if (ev.kind == EventKind::Arrival) {
      const Arrival arrival = pending_arrival;
      const platform::WorkflowConfig& cfg = configs.config_for(arrival);
      validate_config(cfg);
      const std::uint32_t s = alloc_slot(arrival, cfg);
      if (options_.window_seconds > 0.0) ++window_at(arrival.time).arrivals;
      // Priority load shedding: under sustained overload (hysteresis on the
      // total queue depth), low-priority arrivals are dropped at the door at
      // zero cost instead of queueing everyone into SLO collapse.
      bool shed_now = false;
      if (resilience.shed.enabled()) {
        if (!shedding_active &&
            total_queued >= resilience.shed.queue_high_watermark) {
          shedding_active = true;
        } else if (shedding_active &&
                   total_queued <= resilience.shed.effective_low_watermark()) {
          shedding_active = false;
        }
        shed_now =
            shedding_active && resilience.shed.sheddable(slots[s].outcome.index);
      }
      if (shed_now) {
        Slot& slot = slots[s];
        slot.failed = true;
        slot.outcome.failed = true;
        slot.outcome.shed = true;
      } else {
        for (dag::NodeId src : source_nodes) admit(s, src, arrival.time);
      }
      maybe_emit(s, configs);  // shed or fully rejected: finishes on the spot
      if (auto next = arrivals.next()) {
        expects(next->time >= arrival.time, "arrivals must be sorted by time");
        expects(next->input_scale > 0.0, "input scale must be positive");
        pending_arrival = *next;
        Event nev;
        nev.time = next->time;
        nev.kind = EventKind::Arrival;
        push(nev);
      } else {
        arrivals_done = true;
      }
      continue;
    }

    Slot& slot = slots[ev.slot];
    --slot.refs;

    if (ev.kind == EventKind::Retry) {
      // Backoff elapsed: re-admit unless the request failed meanwhile (e.g.
      // a parallel branch OOMed).  Retries queue like any other invocation.
      if (!slot.failed) admit(ev.slot, ev.node, ev.time);
      maybe_emit(ev.slot, configs);
      continue;
    }

    // Completion of one attempt of (slot, node).
    FunctionPool& pool = pools[ev.node];
    --pool.busy;

    if (ev.failed_attempt) {
      // A crashed or timed-out attempt destroys its container (the sandbox
      // was killed); the concurrency slot frees for queued work either way.
      --alive_containers;
      feed_waiting(pool, ev.time, configs);
      if (!breakers.empty()) breakers[ev.node].record_failure(ev.time);
      if (ev.timed_out) {
        ++report.timeouts;
        ++slot.outcome.timeouts;
      }
      slot.outcome.completion = ev.time;
      if (slot.failed) {
        // The request already failed elsewhere; just drain.
      } else if (attempts[ev.slot * n + ev.node] < max_attempts) {
        ++report.retries;
        ++slot.outcome.retries;
        const double backoff =
            options_.retry.backoff_seconds(attempts[ev.slot * n + ev.node], rng);
        Event retry;
        retry.time = ev.time + backoff;
        retry.kind = EventKind::Retry;
        retry.slot = ev.slot;
        retry.node = ev.node;
        ++slot.refs;
        push(retry);
      } else {
        slot.failed = true;
        slot.transient_fail = true;
        slot.outcome.failed = true;
      }
      maybe_emit(ev.slot, configs);
      continue;
    }

    insert_idle(pool, ev.time);
    feed_waiting(pool, ev.time, configs);
    if (!breakers.empty() && !ev.oomed) breakers[ev.node].record_success(ev.time);

    slot.outcome.completion = ev.time;
    ++slot.nodes_done;
    if (!slot.failed) {
      for (dag::NodeId next : g.successors(ev.node)) {
        if (--remaining_preds[ev.slot * n + next] == 0) admit(ev.slot, next, ev.time);
      }
    }
    // Failed requests drain their in-flight work but spawn nothing new.
    maybe_emit(ev.slot, configs);
  }

  expects(live_slot_count == 0, "engine drained with live requests");
  report.duration_seconds = last_event_time;
  report.latency = latency_acc.summary();
  for (const CircuitBreaker& breaker : breakers) {
    report.breaker_opens += breaker.times_opened();
  }

  reg.counter(obs::metric::kServingRequests).inc(report.requests);
  reg.counter(obs::metric::kServingRequestFailures).inc(report.failed_requests);
  reg.counter(obs::metric::kServingRejectedRequests).inc(report.rejected_requests);
  reg.counter(obs::metric::kServingColdStarts).inc(report.cold_starts);
  reg.counter(obs::metric::kServingWarmStarts).inc(report.warm_starts);
  reg.counter(obs::metric::kServingRetries).inc(report.retries);
  reg.counter(obs::metric::kServingTimeouts).inc(report.timeouts);
  reg.counter(obs::metric::kServingAutoscaleUp).inc(report.autoscale_ups);
  reg.counter(obs::metric::kServingAutoscaleDown).inc(report.autoscale_downs);
  reg.counter(obs::metric::kServingEngineEvents).inc(report.events_processed);
  // Chaos/resilience metrics register only when the machinery is on, so a
  // disabled run leaves the metrics dump byte-identical to a pre-chaos one.
  if (!options_.chaos.empty()) {
    reg.counter(obs::metric::kChaosIncidents).inc(options_.chaos.size());
    reg.counter(obs::metric::kChaosModulatedAttempts)
        .inc(report.chaos_modulated_attempts);
  }
  if (resilience.breaker.enabled) {
    reg.counter(obs::metric::kResilienceBreakerOpens).inc(report.breaker_opens);
    reg.counter(obs::metric::kResilienceBreakerFastfails)
        .inc(report.breaker_fastfail_requests);
  }
  if (resilience.hedge.enabled()) {
    reg.counter(obs::metric::kResilienceHedges).inc(report.hedges);
    reg.counter(obs::metric::kResilienceHedgeWins).inc(report.hedge_wins);
  }
  if (resilience.shed.enabled()) {
    reg.counter(obs::metric::kResilienceShedRequests).inc(report.shed_requests);
  }
  run_span.arg("requests", static_cast<std::uint64_t>(report.requests));
  run_span.arg("failed", static_cast<std::uint64_t>(report.failed_requests));
  run_span.arg("events", report.events_processed);
  return report;
}

}  // namespace aarc::serving
