#include "serving/arrivals.h"

#include <cmath>

#include "support/contracts.h"

namespace aarc::serving {

using support::expects;

namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;

/// Exponential inter-arrival draw; matches the legacy poisson_stream
/// expression exactly so Poisson streams stay bit-identical across engines.
double exponential_gap(support::Rng& rng, double rate) {
  return -std::log(1.0 - rng.uniform(0.0, 1.0)) / rate;
}

/// A generated process needs some bound, or the engine never terminates.
void expect_bounded(const ArrivalLimits& limits) {
  expects(limits.max_requests != 0 || limits.horizon_seconds != 0.0,
          "generated arrival processes need max_requests or horizon_seconds");
}

}  // namespace

void ArrivalLimits::validate() const {
  expects(horizon_seconds >= 0.0, "arrival horizon must be non-negative");
}

bool ArrivalLimits::exhausted(std::size_t produced, double time) const {
  if (max_requests != 0 && produced >= max_requests) return true;
  if (horizon_seconds != 0.0 && time > horizon_seconds) return true;
  return false;
}

void ScaleSpec::validate() const {
  expects(scale_min > 0.0 && scale_max >= scale_min,
          "scale range must be ordered and positive");
  expects(drift_factor > 0.0, "drift factor must be positive");
  expects(drift_time >= 0.0, "drift time must be non-negative");
}

double ScaleSpec::apply_drift(double scale, double time) const {
  if (drift_factor != 1.0 && time >= drift_time) return scale * drift_factor;
  return scale;
}

// -- Poisson ----------------------------------------------------------------

PoissonProcess::PoissonProcess(double arrivals_per_second, ScaleSpec scales,
                               ArrivalLimits limits, std::uint64_t seed)
    : rate_(arrivals_per_second),
      scales_(scales),
      limits_(limits),
      seed_(seed),
      rng_(seed) {
  expects(rate_ > 0.0, "arrival rate must be positive");
  scales_.validate();
  limits_.validate();
  expect_bounded(limits_);
}

std::optional<Arrival> PoissonProcess::next() {
  if (limits_.exhausted(produced_, time_)) return std::nullopt;
  // Same draw order as the legacy poisson_stream: gap first, scale second.
  const double t = time_ + exponential_gap(rng_, rate_);
  const double scale = rng_.uniform(scales_.scale_min, scales_.scale_max);
  if (limits_.horizon_seconds != 0.0 && t > limits_.horizon_seconds) {
    time_ = t;
    return std::nullopt;
  }
  time_ = t;
  ++produced_;
  return Arrival{t, scales_.apply_drift(scale, t)};
}

void PoissonProcess::reset() {
  rng_ = support::Rng(seed_);
  time_ = 0.0;
  produced_ = 0;
}

// -- MMPP -------------------------------------------------------------------

void MmppParams::validate() const {
  expects(base_rate > 0.0 && burst_rate > 0.0, "MMPP rates must be positive");
  expects(mean_base_seconds > 0.0 && mean_burst_seconds > 0.0,
          "MMPP sojourn means must be positive");
}

MmppProcess::MmppProcess(MmppParams params, ScaleSpec scales, ArrivalLimits limits,
                         std::uint64_t seed)
    : params_(params), scales_(scales), limits_(limits), seed_(seed), rng_(seed) {
  params_.validate();
  scales_.validate();
  limits_.validate();
  expect_bounded(limits_);
  restart();
}

void MmppProcess::restart() {
  rng_ = support::Rng(seed_);
  time_ = 0.0;
  produced_ = 0;
  bursting_ = false;
  state_end_ = exponential_gap(rng_, 1.0 / params_.mean_base_seconds);
}

std::optional<Arrival> MmppProcess::next() {
  if (limits_.exhausted(produced_, time_)) return std::nullopt;
  double t = time_;
  for (;;) {
    const double rate = bursting_ ? params_.burst_rate : params_.base_rate;
    const double candidate = t + exponential_gap(rng_, rate);
    if (candidate <= state_end_) {
      t = candidate;
      break;
    }
    // The state flips before the candidate arrival: restart the exponential
    // clock in the new state (memorylessness makes the discard exact).
    t = state_end_;
    bursting_ = !bursting_;
    const double mean =
        bursting_ ? params_.mean_burst_seconds : params_.mean_base_seconds;
    state_end_ = t + exponential_gap(rng_, 1.0 / mean);
  }
  const double scale = rng_.uniform(scales_.scale_min, scales_.scale_max);
  if (limits_.horizon_seconds != 0.0 && t > limits_.horizon_seconds) {
    time_ = t;
    return std::nullopt;
  }
  time_ = t;
  ++produced_;
  return Arrival{t, scales_.apply_drift(scale, t)};
}

void MmppProcess::reset() { restart(); }

// -- Diurnal ----------------------------------------------------------------

void DiurnalParams::validate() const {
  expects(base_rate > 0.0, "diurnal base rate must be positive");
  expects(amplitude >= 0.0 && amplitude < 1.0, "diurnal amplitude must be in [0, 1)");
  expects(period_seconds > 0.0, "diurnal period must be positive");
}

DiurnalProcess::DiurnalProcess(DiurnalParams params, ScaleSpec scales,
                               ArrivalLimits limits, std::uint64_t seed)
    : params_(params), scales_(scales), limits_(limits), seed_(seed), rng_(seed) {
  params_.validate();
  scales_.validate();
  limits_.validate();
  expect_bounded(limits_);
}

std::optional<Arrival> DiurnalProcess::next() {
  if (limits_.exhausted(produced_, time_)) return std::nullopt;
  const double max_rate = params_.base_rate * (1.0 + params_.amplitude);
  double t = time_;
  for (;;) {
    t += exponential_gap(rng_, max_rate);
    const double rate =
        params_.base_rate *
        (1.0 + params_.amplitude * std::sin(kTwoPi * t / params_.period_seconds));
    // Lewis-Shedler thinning: accept with probability rate(t) / max_rate.
    if (rng_.uniform(0.0, 1.0) * max_rate <= rate) break;
  }
  const double scale = rng_.uniform(scales_.scale_min, scales_.scale_max);
  if (limits_.horizon_seconds != 0.0 && t > limits_.horizon_seconds) {
    time_ = t;
    return std::nullopt;
  }
  time_ = t;
  ++produced_;
  return Arrival{t, scales_.apply_drift(scale, t)};
}

void DiurnalProcess::reset() {
  rng_ = support::Rng(seed_);
  time_ = 0.0;
  produced_ = 0;
}

// -- Trace replay -----------------------------------------------------------

TraceReplayProcess::TraceReplayProcess(std::vector<Arrival> trace, ArrivalLimits limits,
                                       ScaleSpec scales)
    : trace_(std::move(trace)), limits_(limits), scales_(scales) {
  limits_.validate();
  scales_.validate();
  for (std::size_t i = 0; i < trace_.size(); ++i) {
    expects(trace_[i].time >= 0.0 && trace_[i].input_scale > 0.0,
            "trace arrivals need non-negative times and positive scales");
    expects(i == 0 || trace_[i - 1].time <= trace_[i].time,
            "trace arrivals must be sorted by time");
  }
}

std::optional<Arrival> TraceReplayProcess::next() {
  if (index_ >= trace_.size()) return std::nullopt;
  Arrival a = trace_[index_];
  if (limits_.exhausted(index_, a.time)) return std::nullopt;
  if (limits_.horizon_seconds != 0.0 && a.time > limits_.horizon_seconds) {
    return std::nullopt;
  }
  ++index_;
  a.input_scale = scales_.apply_drift(a.input_scale, a.time);
  return a;
}

void TraceReplayProcess::reset() { index_ = 0; }

std::vector<Arrival> materialize(ArrivalProcess& process, std::size_t max_count) {
  std::vector<Arrival> out;
  while (out.size() < max_count) {
    const auto a = process.next();
    if (!a) break;
    out.push_back(*a);
  }
  return out;
}

}  // namespace aarc::serving
