// Online reconfiguration under live traffic.
//
// The adaptive layer's AdaptiveController closes the drift loop for an
// offline request-by-request harness: observe, reschedule, swap — with the
// reschedule assumed instantaneous.  Under a live stream that assumption is
// the interesting part: an AARC re-run consumes profiling samples and wall
// time, and until it finishes the old configuration keeps serving.  The
// OnlineReconfigurator models exactly that as a ConfigSource plugged into
// the serving engine:
//
//   * every request outcome feeds the adaptive::DriftMonitor (latencies for
//     successes, failure marks otherwise);
//   * when the monitor flags drift or SLO risk (past a cooldown), a
//     reconfiguration *triggers*: AARC re-runs at the estimated new input
//     scale — incrementally by default (critical-path-only re-run seeded
//     from the deployed configuration; full Algorithm 1 as fallback) — and
//     the resulting configuration becomes *pending*;
//   * the swap *activates* only after a simulated scheduling lag
//     (base + per-sample cost of the re-run), driven by the engine's clock
//     through advance_to().  In-flight requests keep their old
//     configuration: every version ever deployed stays alive for the run;
//   * SLO attainment is tracked in a rolling window before each trigger and
//     a fixed-size window after each activation, so a run quantifies what
//     the swap bought (ReconfigEvent, also exported through obs as
//     reconfig.* metrics).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "aarc/options.h"
#include "adaptive/monitor.h"
#include "platform/executor.h"
#include "platform/resource.h"
#include "serving/engine.h"
#include "workloads/workload.h"

namespace aarc::serving {

struct ReconfigOptions {
  adaptive::MonitorOptions monitor;
  core::SchedulerOptions scheduler;
  /// Cooldown: outcomes that must accrue between a swap (or run start) and
  /// the next trigger.
  std::size_t min_outcomes_between_reconfigs = 50;
  /// Simulated scheduling lag: trigger-to-swap delay is
  /// lag_base_seconds + samples_used * lag_per_sample_seconds.
  double lag_base_seconds = 5.0;
  double lag_per_sample_seconds = 0.05;
  /// Critical-path-only incremental re-run (full Algorithm 1 on fallback).
  bool incremental = true;
  /// Outcomes per pre-trigger / post-swap SLO attainment window.
  std::size_t attainment_window = 200;

  /// Graceful degradation: when even full Algorithm 1 finds nothing feasible
  /// at the new scale, deploy a *degraded* fallback instead of keeping the
  /// drifted configuration — a reschedule at a relaxed SLO
  /// (degraded_slo_factor x the workload SLO), or the grid-max uniform
  /// configuration as last resort.  While degraded, every cooldown expiry
  /// retries the original SLO and recovers as soon as it is feasible again.
  bool fallback_degraded = false;
  double degraded_slo_factor = 1.5;

  void validate() const;
};

/// One trigger->swap cycle, for experiment reporting.
struct ReconfigEvent {
  double trigger_time = 0.0;
  double activation_time = 0.0;   ///< trigger_time + lag
  double lag_seconds = 0.0;
  double new_scale = 0.0;         ///< input-scale estimate the re-run used
  std::size_t samples_used = 0;   ///< billed probe samples of the re-run
  bool activated = false;         ///< swap went live (re-run was feasible)
  bool incremental = false;       ///< critical-path-only re-run sufficed
  bool degraded = false;          ///< swap deployed a degraded fallback config
  double pre_slo_attainment = 1.0;   ///< rolling window before the trigger
  double post_slo_attainment = 1.0;  ///< fixed window after the swap
  bool post_window_complete = false;
};

class OnlineReconfigurator final : public ConfigSource {
 public:
  /// `initial_config` is the currently deployed configuration and
  /// `expected_makespan` the level it was validated at (the drift monitor's
  /// baseline).  The workload and executor must outlive the reconfigurator.
  OnlineReconfigurator(const workloads::Workload& workload,
                       const platform::Executor& executor, platform::ConfigGrid grid,
                       platform::WorkflowConfig initial_config,
                       double expected_makespan, ReconfigOptions options = {});

  // ConfigSource:
  const platform::WorkflowConfig& config_for(const Arrival& arrival) override;
  void on_outcome(const RequestOutcome& outcome, double now) override;
  void advance_to(double now) override;

  const platform::WorkflowConfig& active_config() const { return *active_; }
  std::size_t reconfigurations() const { return reconfigurations_; }
  std::size_t scheduling_samples() const { return scheduling_samples_; }
  const std::vector<ReconfigEvent>& events() const { return events_; }
  const adaptive::DriftMonitor& monitor() const { return monitor_; }
  /// True while the *active* configuration is a degraded fallback.
  bool degraded() const { return degraded_; }
  std::size_t degraded_fallbacks() const { return degraded_fallbacks_; }

 private:
  void maybe_trigger(double now);
  /// Critical-path-only AARC re-run from the deployed configuration; falls
  /// back to nothing (feasible=false) when the path cannot meet the SLO.
  platform::WorkflowConfig incremental_reschedule(double scale, bool& feasible,
                                                  std::size_t& samples) const;
  /// Full Algorithm 1 re-run against an explicit SLO (the workload SLO for
  /// normal triggers, a relaxed one for degraded fallbacks).
  platform::WorkflowConfig full_reschedule(double scale, double slo_seconds,
                                           bool& feasible,
                                           std::size_t& samples) const;
  double rolling_attainment() const;
  void reset_monitor_for(const platform::WorkflowConfig& config, double scale);

  const workloads::Workload* workload_;
  const platform::Executor* executor_;
  platform::ConfigGrid grid_;
  ReconfigOptions options_;

  /// Every configuration version ever deployed, kept alive for in-flight
  /// requests that still point at an older one.
  std::deque<std::unique_ptr<platform::WorkflowConfig>> versions_;
  const platform::WorkflowConfig* active_ = nullptr;
  const platform::WorkflowConfig* pending_ = nullptr;
  double pending_activation_time_ = 0.0;
  bool pending_degraded_ = false;
  bool degraded_ = false;
  std::size_t degraded_fallbacks_ = 0;
  std::size_t pending_event_ = 0;      ///< events_ index of the pending swap
  std::size_t post_window_event_ = 0;  ///< events_ index the open window fills

  adaptive::DriftMonitor monitor_;
  double scale_estimate_ = 1.0;
  std::size_t outcomes_since_reconfig_ = 0;
  std::size_t reconfigurations_ = 0;
  std::size_t scheduling_samples_ = 0;

  std::deque<bool> recent_met_;         ///< rolling SLO window (pre-trigger)
  std::size_t post_window_remaining_ = 0;
  std::size_t post_window_met_ = 0;
  std::size_t post_window_size_ = 0;

  std::vector<ReconfigEvent> events_;
};

}  // namespace aarc::serving
