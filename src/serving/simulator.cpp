#include "serving/simulator.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <queue>

#include "obs/metrics.h"
#include "obs/span.h"
#include "serving/arrivals.h"
#include "support/contracts.h"
#include "support/statistics.h"

namespace aarc::serving {

using support::expects;

double ServingReport::slo_violation_rate(double slo_seconds) const {
  expects(slo_seconds > 0.0, "SLO must be positive");
  if (requests.empty()) return 0.0;
  std::size_t violations = 0;
  for (const auto& r : requests) {
    // Failure-aware accounting: a failed request never met its deadline.
    if (r.failed || r.latency() > slo_seconds) ++violations;
  }
  return static_cast<double>(violations) / static_cast<double>(requests.size());
}

double ServingReport::request_failure_rate() const {
  if (requests.empty()) return 0.0;
  return static_cast<double>(failed_requests) / static_cast<double>(requests.size());
}

double ServingReport::latency_percentile(double p) const {
  std::vector<double> latencies;
  latencies.reserve(requests.size());
  for (const auto& r : requests) {
    if (!r.failed) latencies.push_back(r.latency());
  }
  if (latencies.empty()) return 0.0;
  return support::percentile(latencies, p);
}

ServingSimulator::ServingSimulator(const platform::Workflow& workflow,
                                   const platform::PricingModel& pricing,
                                   ServingOptions options)
    : workflow_(&workflow), pricing_(&pricing), options_(options) {
  workflow.validate();
  expects(options_.keep_alive_seconds >= 0.0, "keep-alive must be non-negative");
  expects(options_.cold_start_min_seconds >= 0.0 &&
              options_.cold_start_max_seconds >= options_.cold_start_min_seconds,
          "cold-start range must be ordered and non-negative");
  options_.retry.validate();
  options_.chaos.validate();
}

namespace {

enum class EventKind { Arrival, Completion, Retry };

struct Event {
  double time = 0.0;
  EventKind kind = EventKind::Arrival;
  std::size_t request = 0;
  dag::NodeId node = dag::kInvalidNode;
  std::uint64_t sequence = 0;  ///< deterministic tie-break
  bool failed_attempt = false; ///< completion of a crashed/timed-out attempt
  bool timed_out = false;      ///< the failure was the invocation timeout

  friend bool operator>(const Event& a, const Event& b) {
    if (a.time != b.time) return a.time > b.time;
    return a.sequence > b.sequence;
  }
};

struct FunctionPool {
  std::size_t busy = 0;
  std::vector<double> idle_release_times;   ///< warm containers, by release time
  std::deque<std::pair<std::size_t, dag::NodeId>> waiting;  ///< capped overflow
};

struct RequestState {
  std::vector<std::size_t> remaining_preds;
  std::vector<std::size_t> attempts;  ///< per node, attempts started
  std::size_t nodes_done = 0;
  bool failed = false;
  bool transient_fail = false;  ///< failed on faults, not OOM
  double last_completion = 0.0;
};

}  // namespace

ServingReport ServingSimulator::serve(const std::vector<Request>& requests) const {
  obs::Span serve_span("serving.serve", "serving");
  const dag::Graph& g = workflow_->graph();
  const std::size_t n = g.node_count();
  for (std::size_t i = 0; i + 1 < requests.size(); ++i) {
    expects(requests[i].arrival_seconds <= requests[i + 1].arrival_seconds,
            "requests must be sorted by arrival time");
  }
  for (const auto& r : requests) {
    expects(r.config.size() == n, "request config must cover every function");
    expects(r.input_scale > 0.0, "input scale must be positive");
    for (const auto& rc : r.config) {
      expects(rc.vcpu > 0.0 && rc.memory_mb > 0.0, "allocations must be positive");
    }
  }

  support::Rng rng(options_.seed);
  ServingReport report;
  report.requests.resize(requests.size());
  std::vector<RequestState> state(requests.size());
  std::vector<FunctionPool> pools(n);
  std::size_t alive_containers = 0;

  std::priority_queue<Event, std::vector<Event>, std::greater<>> events;
  std::uint64_t sequence = 0;

  for (std::size_t i = 0; i < requests.size(); ++i) {
    report.requests[i].index = i;
    report.requests[i].arrival = requests[i].arrival_seconds;
    state[i].remaining_preds.resize(n);
    state[i].attempts.assign(n, 0);
    for (dag::NodeId id = 0; id < n; ++id) {
      state[i].remaining_preds[id] = g.predecessors(id).size();
    }
    events.push({requests[i].arrival_seconds, EventKind::Arrival, i, dag::kInvalidNode,
                 sequence++});
  }

  // Purge idle containers whose keep-alive lapsed before `now`.
  auto purge_expired = [&](FunctionPool& pool, double now) {
    auto& idle = pool.idle_release_times;
    const auto split = std::partition(idle.begin(), idle.end(), [&](double released) {
      return released + options_.keep_alive_seconds >= now;
    });
    alive_containers -= static_cast<std::size_t>(idle.end() - split);
    idle.erase(split, idle.end());
  };

  // Start one invocation attempt now (the caller has checked capacity).
  auto start_invocation = [&](std::size_t r, dag::NodeId node, double now) {
    FunctionPool& pool = pools[node];
    purge_expired(pool, now);

    double cold_delay = 0.0;
    if (!pool.idle_release_times.empty()) {
      // Reuse the most recently released container (LIFO keeps pools small).
      const auto hottest =
          std::max_element(pool.idle_release_times.begin(), pool.idle_release_times.end());
      pool.idle_release_times.erase(hottest);
      ++report.warm_starts;
    } else {
      cold_delay =
          rng.uniform(options_.cold_start_min_seconds, options_.cold_start_max_seconds);
      ++report.cold_starts;
      ++report.requests[r].cold_starts;
      ++alive_containers;
      report.peak_containers = std::max(report.peak_containers, alive_containers);
    }
    ++pool.busy;

    double billed = cold_delay;
    bool attempt_failed = false;
    bool attempt_timed_out = false;
    const auto& model = workflow_->model(node);
    const auto& rc = requests[r].config[node];
    if (!model.fits_memory(rc.memory_mb, requests[r].input_scale)) {
      // OOM: deterministic, never retried — the request fails; the container
      // is charged for the cold start only and frees immediately.
      state[r].failed = true;
      report.requests[r].failed = true;
    } else {
      double duration = options_.noise.noisy_runtime(
          model.mean_runtime(rc.vcpu, rc.memory_mb, requests[r].input_scale), rng);
      // Chaos-modulated faults: with an empty schedule this is exactly
      // options_.faults.sample — same rates, same draw order (bit-identical).
      const platform::FaultOutcome fault =
          options_.chaos.empty()
              ? options_.faults.sample(node, rng)
              : platform::sample_fault(
                    options_.chaos.modulate(options_.faults.rates(node), node, now),
                    rng);
      duration = duration * fault.runtime_multiplier + fault.extra_delay_seconds;
      if (fault.crashed) {
        duration *= fault.crash_fraction;
        attempt_failed = true;
      } else if (options_.retry.timeout_enabled() &&
                 duration > options_.retry.timeout_seconds) {
        duration = options_.retry.timeout_seconds;
        attempt_failed = true;
        attempt_timed_out = true;
      }
      billed += duration;
    }
    // Every attempt is billed, failed or not: it occupied provisioned time.
    report.requests[r].cost += pricing_->invocation_cost(rc, billed);
    ++report.requests[r].invocations;
    ++state[r].attempts[node];
    Event done{now + billed, EventKind::Completion, r, node, sequence++};
    done.failed_attempt = attempt_failed;
    done.timed_out = attempt_timed_out;
    events.push(done);
  };

  // Admit an invocation, or queue it when the function is at capacity.
  auto admit = [&](std::size_t r, dag::NodeId node, double now) {
    FunctionPool& pool = pools[node];
    if (options_.max_containers_per_function != 0 &&
        pool.busy >= options_.max_containers_per_function) {
      pool.waiting.emplace_back(r, node);
      return;
    }
    start_invocation(r, node, now);
  };

  // Feed a queued invocation of this function, if any.
  auto feed_waiting = [&](FunctionPool& pool, double now) {
    while (!pool.waiting.empty()) {
      const auto [wr, wn] = pool.waiting.front();
      pool.waiting.pop_front();
      if (state[wr].failed) continue;  // abandoned by a failed request
      start_invocation(wr, wn, now);
      break;
    }
  };

  const std::size_t max_attempts = std::max<std::size_t>(1, options_.retry.max_attempts);

  while (!events.empty()) {
    const Event ev = events.top();
    events.pop();

    if (ev.kind == EventKind::Arrival) {
      for (dag::NodeId src : g.sources()) admit(ev.request, src, ev.time);
      continue;
    }

    if (ev.kind == EventKind::Retry) {
      // Backoff elapsed: re-admit unless the request failed meanwhile (e.g.
      // a parallel branch OOMed).  Retries queue like any other invocation.
      if (!state[ev.request].failed) admit(ev.request, ev.node, ev.time);
      continue;
    }

    // Completion of one attempt of (request, node).
    FunctionPool& pool = pools[ev.node];
    --pool.busy;

    if (ev.failed_attempt) {
      // A crashed or timed-out attempt destroys its container (the sandbox
      // was killed); the concurrency slot frees for queued work either way.
      --alive_containers;
      feed_waiting(pool, ev.time);
      if (ev.timed_out) {
        ++report.timeouts;
        ++report.requests[ev.request].timeouts;
      }
      RequestState& rs = state[ev.request];
      rs.last_completion = ev.time;
      if (rs.failed) {
        // The request already failed elsewhere; just drain.
        report.requests[ev.request].completion = ev.time;
      } else if (rs.attempts[ev.node] < max_attempts) {
        ++report.retries;
        ++report.requests[ev.request].retries;
        const double backoff =
            options_.retry.backoff_seconds(rs.attempts[ev.node], rng);
        events.push({ev.time + backoff, EventKind::Retry, ev.request, ev.node,
                     sequence++});
      } else {
        rs.failed = true;
        rs.transient_fail = true;
        report.requests[ev.request].failed = true;
        report.requests[ev.request].completion = ev.time;
      }
      continue;
    }

    pool.idle_release_times.push_back(ev.time);
    feed_waiting(pool, ev.time);

    RequestState& rs = state[ev.request];
    rs.last_completion = ev.time;
    ++rs.nodes_done;
    if (!rs.failed) {
      for (dag::NodeId next : g.successors(ev.node)) {
        if (--rs.remaining_preds[next] == 0) admit(ev.request, next, ev.time);
      }
      if (rs.nodes_done == n) report.requests[ev.request].completion = ev.time;
    } else {
      // Failed requests drain their in-flight work but spawn nothing new.
      report.requests[ev.request].completion = ev.time;
    }
  }

  support::Accumulator latency;
  auto& reg = obs::MetricsRegistry::global();
  obs::Histogram& latency_hist = reg.histogram(
      obs::metric::kServingRequestLatencySeconds, obs::default_latency_buckets());
  for (std::size_t i = 0; i < report.requests.size(); ++i) {
    const auto& r = report.requests[i];
    report.total_cost += r.cost;
    if (r.failed) {
      ++report.failed_requests;
      if (state[i].transient_fail) ++report.failed_after_retries;
    } else {
      latency.add(r.latency());
      latency_hist.observe(r.latency());
    }
  }
  report.latency = latency.summary();

  reg.counter(obs::metric::kServingRequests).inc(report.requests.size());
  reg.counter(obs::metric::kServingRequestFailures).inc(report.failed_requests);
  reg.counter(obs::metric::kServingColdStarts).inc(report.cold_starts);
  reg.counter(obs::metric::kServingWarmStarts).inc(report.warm_starts);
  reg.counter(obs::metric::kServingRetries).inc(report.retries);
  reg.counter(obs::metric::kServingTimeouts).inc(report.timeouts);
  serve_span.arg("requests", static_cast<std::uint64_t>(report.requests.size()));
  serve_span.arg("failed", static_cast<std::uint64_t>(report.failed_requests));
  return report;
}

std::vector<Request> poisson_stream(std::size_t count, double arrivals_per_second,
                                    double scale_min, double scale_max,
                                    const platform::WorkflowConfig& config,
                                    std::uint64_t seed) {
  // Delegates to the engine's PoissonProcess, whose draws match this
  // function's historical expression exactly — both engines see the same
  // stream from the same seed.
  ScaleSpec scales;
  scales.scale_min = scale_min;
  scales.scale_max = scale_max;
  ArrivalLimits limits;
  limits.max_requests = count;
  PoissonProcess process(arrivals_per_second, scales, limits, seed);
  std::vector<Request> out;
  out.reserve(count);
  while (auto a = process.next()) {
    Request r;
    r.arrival_seconds = a->time;
    r.input_scale = a->input_scale;
    r.config = config;
    out.push_back(std::move(r));
  }
  return out;
}

}  // namespace aarc::serving
