// Serving outcome aggregation.
//
// Two consumers with opposite needs share these types:
//
//   * the legacy simulator and small experiments keep one RequestOutcome per
//     request (timeline exports, exact percentiles over a few thousand
//     requests);
//   * the high-throughput engine serves millions of requests and must
//     aggregate *online*: latency percentiles come from a bounded
//     QuantileSketch, SLO attainment and cost from counters, and the
//     optional per-window series is bounded by duration / window, never by
//     the request count.  Retaining per-request outcomes is opt-in
//     (EngineOptions::retain_outcomes) and meant for timeline exports of
//     moderate streams.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "support/statistics.h"

namespace aarc::serving {

/// Outcome of one served request.
struct RequestOutcome {
  std::size_t index = 0;
  double arrival = 0.0;
  double completion = 0.0;       ///< absolute time the last function finished
  double cost = 0.0;             ///< billed cost of all invocations/attempts
  std::size_t cold_starts = 0;   ///< invocations that provisioned a container
  std::size_t invocations = 0;   ///< attempts started (retries included)
  std::size_t retries = 0;       ///< failed attempts that were retried
  std::size_t timeouts = 0;      ///< attempts cut off by the invocation timeout
  bool failed = false;           ///< OOM, faults exhausted retries, or rejected
  bool rejected = false;         ///< refused by admission control on arrival
  bool shed = false;             ///< dropped by priority load shedding
  bool breaker_fastfail = false; ///< failed fast on an open circuit breaker

  double latency() const { return completion - arrival; }
};

/// One aggregation window of the engine's time series (throughput and SLO
/// attainment over time — the plottable drift/reconfiguration signal).
struct WindowStat {
  double start = 0.0;
  double width = 0.0;
  std::size_t arrivals = 0;
  std::size_t completed = 0;        ///< successful completions in the window
  std::size_t failed = 0;           ///< failures (rejections included)
  std::size_t rejected = 0;
  std::size_t slo_violations = 0;   ///< late completions + failures
  double latency_sum = 0.0;         ///< over successful completions
  double max_latency = 0.0;

  std::size_t finished() const { return completed + failed; }
  double throughput_rps() const {
    return width > 0.0 ? static_cast<double>(finished()) / width : 0.0;
  }
  double mean_latency() const {
    return completed > 0 ? latency_sum / static_cast<double>(completed) : 0.0;
  }
  /// Fraction of finished requests that met the SLO (1 when none finished).
  double slo_attainment() const {
    const std::size_t n = finished();
    return n > 0 ? 1.0 - static_cast<double>(slo_violations) / static_cast<double>(n)
                 : 1.0;
  }
};

/// Streaming aggregate of one engine run.  All percentile/attainment math
/// lives here (support::statistics), not in each bench/caller.
struct StreamingReport {
  // Volume.
  std::size_t requests = 0;            ///< arrivals admitted or rejected
  std::size_t completed = 0;           ///< finished successfully
  std::size_t failed_requests = 0;     ///< OOM, retries exhausted, or rejected
  std::size_t rejected_requests = 0;   ///< refused by admission control
  std::size_t failed_after_retries = 0;

  // Resilience and chaos (serving/resilience.h, chaos/incident.h); all zero
  // when the corresponding machinery is disabled.
  std::size_t shed_requests = 0;          ///< dropped by priority load shedding
  std::size_t breaker_fastfail_requests = 0;  ///< failed fast on open breakers
  std::size_t breaker_opens = 0;          ///< breaker trips across all functions
  std::size_t hedges = 0;                 ///< hedge attempts launched
  std::size_t hedge_wins = 0;             ///< hedges that beat their primary
  std::size_t chaos_modulated_attempts = 0;  ///< attempts sampled under an incident

  // Container economics.
  std::size_t cold_starts = 0;
  std::size_t warm_starts = 0;
  std::size_t retries = 0;
  std::size_t timeouts = 0;
  std::size_t peak_containers = 0;
  std::size_t peak_queue_depth = 0;    ///< max invocations waiting on one function
  std::size_t prewarmed_containers = 0;  ///< containers the autoscaler provisioned
  std::size_t retired_containers = 0;    ///< idle containers the autoscaler retired
  std::size_t autoscale_ups = 0;
  std::size_t autoscale_downs = 0;
  double total_cost = 0.0;

  // Latency and SLO, aggregated online.
  double slo_seconds = 0.0;            ///< 0 = no SLO accounting requested
  std::size_t slo_violations = 0;      ///< failures + late completions
  support::Summary latency;            ///< successful requests only
  support::QuantileSketch latency_quantiles;

  // Run shape.
  double duration_seconds = 0.0;       ///< last event time
  std::uint64_t events_processed = 0;
  double window_seconds = 0.0;
  std::vector<WindowStat> windows;

  /// Per-request detail; filled only when EngineOptions::retain_outcomes.
  std::vector<RequestOutcome> outcomes;

  double latency_p50() const { return latency_quantiles.p50(); }
  double latency_p95() const { return latency_quantiles.p95(); }
  double latency_p99() const { return latency_quantiles.p99(); }

  /// Failure-aware SLO accounting over ALL requests: a failed or rejected
  /// request never met its deadline.  Requires slo_seconds to have been set.
  double slo_violation_rate() const;
  /// 1 - slo_violation_rate(): the SLAM-style attainment headline.
  double slo_attainment() const { return 1.0 - slo_violation_rate(); }
  double request_failure_rate() const;
  /// Simulated requests finished per simulated second.
  double simulated_rps() const;
  /// Fraction of hedge attempts that beat their primary (0 with no hedges).
  double hedge_win_rate() const {
    return hedges > 0 ? static_cast<double>(hedge_wins) / static_cast<double>(hedges)
                      : 0.0;
  }
};

}  // namespace aarc::serving
