// High-throughput serving engine: the platform's request-stream core.
//
// The legacy ServingSimulator (simulator.h) is a faithful but smoke-test
// scale DES: it materializes the whole request vector up front, allocates
// per-request bookkeeping vectors, retains one RequestOutcome per request
// and pops events from a binary heap.  This engine keeps the identical
// platform semantics — warm container reuse within keep-alive, seeded cold
// starts, per-function concurrency caps, fault injection with retry/backoff
// and timeouts, failure-aware SLO accounting — but is built to serve
// millions of simulated requests in seconds within bounded memory:
//
//   * arrivals stream from an ArrivalProcess generator (arrivals.h), never
//     a materialized vector;
//   * events live in a calendar queue (calendar_queue.h) instead of a heap;
//   * per-request state is pooled: a free-list of fixed-size slots plus two
//     flat per-node slabs, reused across requests, zero steady-state
//     allocation;
//   * outcomes aggregate online into a StreamingReport (report.h):
//     QuantileSketch percentiles, counter-based SLO attainment, optional
//     bounded per-window series — per-request retention is opt-in.
//
// On top of the legacy semantics it adds the two overload-era controls the
// ROADMAP's serving item calls for:
//
//   * admission control — a bounded per-function queue; a request that
//     would overflow it is rejected on the spot (counted as a failure and
//     an SLO violation), so overload degrades gracefully instead of
//     queueing unboundedly;
//   * reactive autoscaling — a periodic control tick compares per-function
//     demand (busy + queued) against ready capacity and pre-warms or
//     retires containers toward a target utilization, Knative-style.
//
// Determinism: one seeded RNG consumed in event order.  With autoscaling
// and admission control off, the engine consumes the RNG in exactly the
// legacy simulator's order and pops events in the same (time, sequence)
// order, so runs are bit-identical to the heap engine on the same stream
// (tests/serving/engine_vs_heap_test.cpp).  Sequence numbers are assigned
// lazily, so the tie-break between events at *exactly* equal timestamps can
// differ from the legacy engine; continuous arrival processes never
// produce such ties.
//
// Online reconfiguration plugs in through ConfigSource: the engine asks it
// for a configuration per request and feeds every outcome back, which is
// all an OnlineReconfigurator (reconfigurator.h) needs to hot-swap configs
// under live traffic.
#pragma once

#include <cstdint>

#include "chaos/incident.h"
#include "perf/noise.h"
#include "platform/faults.h"
#include "platform/pricing.h"
#include "platform/resource.h"
#include "platform/workflow.h"
#include "serving/arrivals.h"
#include "serving/report.h"
#include "serving/resilience.h"

namespace aarc::serving {

/// Reactive autoscaler knobs (disabled by default: pure scale-from-zero).
struct AutoscalerOptions {
  bool enabled = false;
  /// Control-loop period in simulated seconds.
  double interval_seconds = 5.0;
  /// Desired busy fraction of ready containers; the tick pre-warms toward
  /// ceil(demand / target_utilization) and retires idle capacity above it.
  double target_utilization = 0.7;
  /// Warm-container floor per function (kept alive regardless of demand).
  std::size_t min_warm = 0;

  void validate() const;
};

/// Admission control: 0 keeps the legacy unbounded FIFO; otherwise a
/// request whose invocation would exceed this many waiters on one function
/// is rejected immediately (failure + SLO violation, no retry).
struct AdmissionOptions {
  std::size_t max_queue_per_function = 0;
};

struct EngineOptions {
  // Container model — identical meaning to ServingOptions (simulator.h).
  double keep_alive_seconds = 600.0;
  double cold_start_min_seconds = 0.5;
  double cold_start_max_seconds = 2.0;
  std::size_t max_containers_per_function = 0;  ///< 0 = unlimited
  perf::NoiseModel noise{0.03};
  platform::FaultModel faults{};
  platform::RetryPolicy retry{};
  std::uint64_t seed = 2026;

  AutoscalerOptions autoscaler{};
  AdmissionOptions admission{};

  /// Incident calendar modulating the fault rates over simulated time
  /// (chaos/incident.h).  Empty = no chaos; runs are bit-identical to a
  /// build without the chaos engine at all.
  chaos::IncidentSchedule chaos{};
  /// Graceful-degradation stack: circuit breakers, hedged requests,
  /// priority load shedding (serving/resilience.h).  All off by default;
  /// disabled controls consume no randomness and change no behavior.
  ResilienceOptions resilience{};

  /// End-to-end SLO for online attainment accounting (0 = off).
  double slo_seconds = 0.0;
  /// Width of the throughput/attainment time series (0 = no series).
  double window_seconds = 0.0;
  /// Keep one RequestOutcome per request (timeline export; bounded by
  /// max_retained_outcomes — the engine stops retaining beyond the cap).
  bool retain_outcomes = false;
  std::size_t max_retained_outcomes = 1u << 21;
};

/// Where each request's configuration comes from, and where outcomes go.
/// The default implementations make a fixed-config source trivial; the
/// OnlineReconfigurator overrides all three.
class ConfigSource {
 public:
  virtual ~ConfigSource() = default;

  /// Configuration for one admitted request.  The returned reference must
  /// stay valid until the run ends (hot-swapping sources keep old versions
  /// alive for in-flight requests).
  virtual const platform::WorkflowConfig& config_for(const Arrival& arrival) = 0;

  /// Called once per finished request (success, failure or rejection).
  virtual void on_outcome(const RequestOutcome& outcome, double now) {
    (void)outcome;
    (void)now;
  }

  /// Simulated-clock advance, called as events are processed; lets a
  /// control plane activate pending changes at the right time.
  virtual void advance_to(double now) { (void)now; }
};

/// Serves every request with one fixed configuration.
class FixedConfigSource final : public ConfigSource {
 public:
  explicit FixedConfigSource(platform::WorkflowConfig config)
      : config_(std::move(config)) {}

  const platform::WorkflowConfig& config_for(const Arrival&) override {
    return config_;
  }

 private:
  platform::WorkflowConfig config_;
};

class ServingEngine {
 public:
  /// The workflow and pricing model must outlive the engine.
  ServingEngine(const platform::Workflow& workflow,
                const platform::PricingModel& pricing, EngineOptions options = {});

  /// Serve the stream, pulling configurations from `configs`.
  StreamingReport run(ArrivalProcess& arrivals, ConfigSource& configs) const;

  /// Serve the stream with one fixed configuration.
  StreamingReport run(ArrivalProcess& arrivals,
                      const platform::WorkflowConfig& config) const;

  const EngineOptions& options() const { return options_; }

 private:
  const platform::Workflow* workflow_;
  const platform::PricingModel* pricing_;
  EngineOptions options_;
};

}  // namespace aarc::serving
