#include "platform/workflow.h"

#include "support/contracts.h"

namespace aarc::platform {

using support::expects;

Workflow::Workflow(std::string name) : graph_(std::move(name)) {}

Workflow Workflow::clone() const {
  Workflow copy(graph_.name());
  copy.graph_ = graph_;
  copy.models_.reserve(models_.size());
  for (const auto& m : models_) copy.models_.push_back(m->clone());
  return copy;
}

dag::NodeId Workflow::add_function(std::string name, std::unique_ptr<perf::PerfModel> model) {
  expects(model != nullptr, "function model must not be null");
  const dag::NodeId id = graph_.add_node(std::move(name));
  models_.push_back(std::move(model));
  return id;
}

void Workflow::add_edge(dag::NodeId from, dag::NodeId to) { graph_.add_edge(from, to); }

void Workflow::add_edge(std::string_view from, std::string_view to) {
  graph_.add_edge(function_id(from), function_id(to));
}

dag::NodeId Workflow::function_id(std::string_view name) const {
  const auto id = graph_.find_node(name);
  expects(id.has_value(), std::string("unknown function: ") + std::string(name));
  return *id;
}

const perf::PerfModel& Workflow::model(dag::NodeId id) const {
  expects(id < models_.size(), "node id out of range");
  return *models_[id];
}

void Workflow::validate() const {
  graph_.validate();
  expects(models_.size() == graph_.node_count(), "every function needs a model");
}

}  // namespace aarc::platform
