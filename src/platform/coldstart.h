// Cold-start model (extension, disabled by default).
//
// The paper evaluates warm workflows; real platforms add a container start
// penalty on a fraction of invocations.  The ablation bench uses this to show
// AARC's search is robust to cold-start noise.
#pragma once

#include "support/rng.h"

namespace aarc::platform {

class ColdStartModel {
 public:
  /// Disabled model: probability 0.
  ColdStartModel() = default;

  /// `probability` of a cold start per invocation; the penalty is uniform in
  /// [min_delay_seconds, max_delay_seconds].
  ColdStartModel(double probability, double min_delay_seconds, double max_delay_seconds);

  bool enabled() const { return probability_ > 0.0; }
  double probability() const { return probability_; }

  /// Sampled start penalty in seconds (0 when warm).
  double sample_delay(support::Rng& rng) const;

 private:
  double probability_ = 0.0;
  double min_delay_ = 0.0;
  double max_delay_ = 0.0;
};

}  // namespace aarc::platform
