#include "platform/resource.h"

#include "support/contracts.h"
#include "support/table.h"

namespace aarc::platform {

using support::expects;

std::string to_string(const ResourceConfig& config) {
  return support::format_double(config.vcpu, 1) + " vCPU / " +
         support::format_double(config.memory_mb, 0) + " MB";
}

ConfigGrid::ConfigGrid()
    : cpu_(0.1, 10.0, 0.1), memory_(128.0, 10240.0, 64.0) {}

ConfigGrid::ConfigGrid(support::ValueGrid cpu, support::ValueGrid memory)
    : cpu_(cpu), memory_(memory) {}

ResourceConfig ConfigGrid::snap(const ResourceConfig& config) const {
  return ResourceConfig{cpu_.snap(config.vcpu), memory_.snap(config.memory_mb)};
}

bool ConfigGrid::contains(const ResourceConfig& config) const {
  return cpu_.contains(config.vcpu) && memory_.contains(config.memory_mb);
}

ResourceConfig ConfigGrid::max_config() const {
  return ResourceConfig{cpu_.max(), memory_.max()};
}

ResourceConfig ConfigGrid::min_config() const {
  return ResourceConfig{cpu_.min(), memory_.min()};
}

double ConfigGrid::coupled_vcpu_for_memory(double memory_mb, double mb_per_vcpu) const {
  expects(mb_per_vcpu > 0.0, "mb_per_vcpu must be positive");
  return cpu_.snap(memory_mb / mb_per_vcpu);
}

WorkflowConfig uniform_config(std::size_t node_count, const ResourceConfig& config) {
  return WorkflowConfig(node_count, config);
}

}  // namespace aarc::platform
