#include "platform/faults.h"

#include <algorithm>
#include <cmath>

#include "support/contracts.h"

namespace aarc::platform {

using support::expects;

namespace {

bool is_probability(double p) { return p >= 0.0 && p <= 1.0; }

}  // namespace

bool FaultRates::any() const {
  return transient_crash > 0.0 || straggler > 0.0 || cold_spike > 0.0 || throttle > 0.0;
}

void FaultRates::validate() const {
  const auto check_probability = [](double p, const char* field) {
    expects(is_probability(p), std::string(field) + " must be in [0, 1] (got " +
                                   std::to_string(p) + ")");
  };
  check_probability(transient_crash, "transient-crash probability");
  check_probability(straggler, "straggler probability");
  check_probability(cold_spike, "cold-spike probability");
  check_probability(throttle, "throttle probability");
  expects(straggler_multiplier >= 1.0,
          "straggler multiplier must be >= 1 (got " +
              std::to_string(straggler_multiplier) + ")");
  expects(cold_spike_min_seconds >= 0.0 &&
              cold_spike_max_seconds >= cold_spike_min_seconds,
          "cold-spike range must be ordered and non-negative");
  expects(throttle_min_seconds >= 0.0 && throttle_max_seconds >= throttle_min_seconds,
          "throttle range must be ordered and non-negative");
}

FaultModel::FaultModel(FaultRates defaults) : defaults_(defaults) {
  defaults_.validate();
}

void FaultModel::set_function_rates(dag::NodeId node, FaultRates rates) {
  rates.validate();
  overrides_[node] = rates;
}

const FaultRates& FaultModel::rates(dag::NodeId node) const {
  const auto it = overrides_.find(node);
  return it == overrides_.end() ? defaults_ : it->second;
}

bool FaultModel::enabled() const {
  if (defaults_.any()) return true;
  for (const auto& [node, rates] : overrides_) {
    if (rates.any()) return true;
  }
  return false;
}

FaultOutcome FaultModel::sample(dag::NodeId node, support::Rng& rng) const {
  return sample_fault(rates(node), rng);
}

FaultOutcome sample_fault(const FaultRates& r, support::Rng& rng) {
  FaultOutcome out;
  if (!r.any()) return out;  // no draws: faults off stays bit-identical

  if (r.straggler > 0.0 && rng.bernoulli(r.straggler)) {
    out.runtime_multiplier = r.straggler_multiplier;
  }
  if (r.cold_spike > 0.0 && rng.bernoulli(r.cold_spike)) {
    out.extra_delay_seconds +=
        rng.uniform(r.cold_spike_min_seconds, r.cold_spike_max_seconds);
  }
  if (r.throttle > 0.0 && rng.bernoulli(r.throttle)) {
    out.extra_delay_seconds += rng.uniform(r.throttle_min_seconds, r.throttle_max_seconds);
  }
  if (r.transient_crash > 0.0 && rng.bernoulli(r.transient_crash)) {
    out.crashed = true;
    out.crash_fraction = rng.uniform(0.05, 1.0);
  }
  return out;
}

void RetryPolicy::validate() const {
  expects(max_attempts >= 1, "max_attempts must be >= 1");
  expects(backoff_initial_seconds >= 0.0, "backoff must be non-negative");
  expects(backoff_multiplier >= 1.0, "backoff multiplier must be >= 1");
  expects(backoff_jitter_fraction >= 0.0 && backoff_jitter_fraction < 1.0,
          "backoff jitter must be in [0, 1)");
  expects(timeout_seconds >= 0.0, "timeout must be non-negative");
}

double RetryPolicy::backoff_seconds(std::size_t failed_attempts, support::Rng& rng) const {
  expects(failed_attempts >= 1, "backoff requires at least one failed attempt");
  const double base = backoff_initial_seconds *
                      std::pow(backoff_multiplier,
                               static_cast<double>(failed_attempts - 1));
  if (backoff_jitter_fraction == 0.0 || base == 0.0) return base;
  return base * rng.uniform(1.0 - backoff_jitter_fraction, 1.0 + backoff_jitter_fraction);
}

}  // namespace aarc::platform
