// SoA buffers for batched workflow execution.
//
// ExecutionLanes holds the inputs and outputs of Executor::execute_lanes for
// a whole probe batch: per-(function, lane) columns laid out function-major
// (`[node * lane_count + lane]`) so the kernel streams contiguous lanes of
// each function, plus per-lane summary columns.  One buffer is reused across
// batches (resize() only grows capacity); with worker threads, each worker
// writes a disjoint contiguous lane range of the shared buffer, so no
// synchronization is needed.
#pragma once

#include <cstddef>
#include <vector>

namespace aarc::platform {

struct ExecutionLanes {
  std::size_t node_count = 0;
  std::size_t lane_count = 0;

  // Inputs, function-major `[node * lane_count + lane]`.
  std::vector<double> vcpu;
  std::vector<double> memory_mb;

  // Per-(function, lane) outputs, same layout.  Mirror InvocationRecord's
  // runtime/cost/finish: +inf on OOM, finite otherwise (finish is +inf for
  // any node downstream of a failure).
  std::vector<double> runtime;
  std::vector<double> cost;
  std::vector<double> finish;

  // Per-lane outputs, mirroring ExecutionResult and its observed_* charges.
  std::vector<double> makespan;      ///< +inf when the lane failed
  std::vector<double> total_cost;    ///< +inf when the lane failed
  std::vector<double> wall_seconds;  ///< observed_wall_seconds equivalent
  std::vector<double> wall_cost;     ///< observed_cost equivalent
  std::vector<unsigned char> failed;
  std::vector<unsigned char> oom;

  void resize(std::size_t nodes, std::size_t lanes) {
    node_count = nodes;
    lane_count = lanes;
    const std::size_t cells = nodes * lanes;
    vcpu.resize(cells);
    memory_mb.resize(cells);
    runtime.resize(cells);
    cost.resize(cells);
    finish.resize(cells);
    makespan.resize(lanes);
    total_cost.resize(lanes);
    wall_seconds.resize(lanes);
    wall_cost.resize(lanes);
    failed.resize(lanes);
    oom.resize(lanes);
  }

  std::size_t at(std::size_t node, std::size_t lane) const {
    return node * lane_count + lane;
  }
};

}  // namespace aarc::platform
