#include "platform/executor.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

#include "obs/metrics.h"
#include "support/contracts.h"

namespace aarc::platform {

using support::expects;

namespace {

// Handles resolved once; run() is the hottest loop in the repo and must not
// take the registry mutex per execution.
struct ExecutorMetrics {
  obs::Counter& executions;
  obs::Counter& attempts;
  obs::Counter& retries;
  obs::Counter& timeouts;
  obs::Counter& transient_faults;
  obs::Counter& oom_failures;
  obs::Counter& cold_starts;
};

ExecutorMetrics& executor_metrics() {
  auto& reg = obs::MetricsRegistry::global();
  static ExecutorMetrics m{
      reg.counter(obs::metric::kPlatformExecutions),
      reg.counter(obs::metric::kPlatformInvocationAttempts),
      reg.counter(obs::metric::kPlatformRetries),
      reg.counter(obs::metric::kPlatformTimeouts),
      reg.counter(obs::metric::kPlatformTransientFaults),
      reg.counter(obs::metric::kPlatformOomFailures),
      reg.counter(obs::metric::kPlatformColdStarts),
  };
  return m;
}

}  // namespace

std::vector<double> ExecutionResult::runtimes() const {
  std::vector<double> out;
  out.reserve(invocations.size());
  for (const auto& inv : invocations) out.push_back(inv.runtime);
  return out;
}

std::vector<dag::NodeId> ExecutionResult::oom_nodes() const {
  std::vector<dag::NodeId> out;
  for (const auto& inv : invocations) {
    if (inv.oom) out.push_back(inv.node);
  }
  return out;
}

std::size_t ExecutionResult::total_attempts() const {
  std::size_t total = 0;
  for (const auto& inv : invocations) total += inv.attempts;
  return total;
}

std::size_t ExecutionResult::transient_failures() const {
  std::size_t total = 0;
  for (const auto& inv : invocations) total += inv.transient_failures;
  return total;
}

std::size_t ExecutionResult::timed_out_invocations() const {
  std::size_t total = 0;
  for (const auto& inv : invocations) {
    if (inv.timed_out) ++total;
  }
  return total;
}

bool ExecutionResult::oom_failure() const {
  for (const auto& inv : invocations) {
    if (inv.oom) return true;
  }
  return false;
}

double ExecutionResult::observed_wall_seconds() const {
  double wall = 0.0;
  for (const auto& inv : invocations) {
    if (std::isfinite(inv.finish)) {
      wall = std::max(wall, inv.finish);
    } else if (std::isfinite(inv.start)) {
      // Permanently failed invocation: its attempts still occupied the span
      // [start, start + occupied_seconds).
      wall = std::max(wall, inv.start + inv.occupied_seconds);
    }
  }
  return wall;
}

double ExecutionResult::observed_cost() const {
  double total = 0.0;
  for (const auto& inv : invocations) total += inv.billed_cost;
  return total;
}

Executor::Executor(std::unique_ptr<PricingModel> pricing, ExecutorOptions options)
    : pricing_(std::move(pricing)), options_(options) {
  expects(pricing_ != nullptr, "executor requires a pricing model");
  options_.retry.validate();
}

Executor Executor::clone() const { return Executor(pricing_->clone(), options_); }

ExecutionResult Executor::execute(const Workflow& workflow, const WorkflowConfig& config,
                                  double input_scale, support::Rng& rng) const {
  if (options_.emulated_probe_latency_seconds > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(
        options_.emulated_probe_latency_seconds));
  }
  return run(workflow, config, input_scale, &rng);
}

ExecutionResult Executor::execute_mean(const Workflow& workflow, const WorkflowConfig& config,
                                       double input_scale) const {
  return run(workflow, config, input_scale, nullptr);
}

ExecutionResult Executor::run(const Workflow& workflow, const WorkflowConfig& config,
                              double input_scale, support::Rng* rng) const {
  workflow.validate();
  expects(config.size() == workflow.function_count(),
          "config must have one entry per function");
  expects(input_scale > 0.0, "input_scale must be positive");
  for (const auto& rc : config) {
    expects(rc.vcpu > 0.0 && rc.memory_mb > 0.0, "allocations must be positive");
  }

  const dag::Graph& g = workflow.graph();
  const auto order = g.topological_order();

  ExecutionResult result;
  result.invocations.resize(g.node_count());

  const RetryPolicy& retry = options_.retry;
  ExecutorMetrics& metrics = executor_metrics();
  metrics.executions.inc();

  for (dag::NodeId id : order) {
    InvocationRecord rec;
    rec.node = id;
    double start = 0.0;
    for (dag::NodeId p : g.predecessors(id)) {
      start = std::max(start, result.invocations[p].finish);
    }
    rec.start = start;

    const perf::PerfModel& model = workflow.model(id);
    if (!model.fits_memory(config[id].memory_mb, input_scale)) {
      // OOM is a deterministic property of the configuration: retrying would
      // fail identically, so it is never retried and nothing is billed.
      rec.oom = true;
      rec.failed = true;
      rec.runtime = kInfiniteTime;
      rec.finish = kInfiniteTime;
      rec.cost = kInfiniteTime;
      result.failed = true;
      metrics.oom_failures.inc();
    } else {
      // Faults and retries are stochastic; the noise-free mean execution
      // runs exactly one clean attempt (the timeout, being deterministic,
      // still applies).
      const std::size_t max_attempts =
          rng != nullptr ? std::max<std::size_t>(1, retry.max_attempts) : 1;
      double elapsed = 0.0;
      bool success = false;
      for (std::size_t attempt = 1; attempt <= max_attempts; ++attempt) {
        rec.attempts = attempt;
        metrics.attempts.inc();
        double duration =
            model.mean_runtime(config[id].vcpu, config[id].memory_mb, input_scale);
        double cold = 0.0;
        FaultOutcome fault;
        if (rng != nullptr) {
          duration = options_.noise.noisy_runtime(duration, *rng);
          cold = options_.cold_start.sample_delay(*rng);
          fault = options_.faults.sample(id, *rng);
        }
        if (cold > 0.0) metrics.cold_starts.inc();
        duration = duration * fault.runtime_multiplier + cold + fault.extra_delay_seconds;
        bool attempt_timed_out = false;
        if (fault.crashed) {
          duration *= fault.crash_fraction;
          metrics.transient_faults.inc();
        } else if (retry.timeout_enabled() && duration > retry.timeout_seconds) {
          duration = retry.timeout_seconds;
          attempt_timed_out = true;
          metrics.timeouts.inc();
        }
        rec.billed_seconds += duration;
        rec.billed_cost += pricing_->invocation_cost(config[id], duration);
        elapsed += duration;
        if (!fault.crashed && !attempt_timed_out) {
          success = true;
          rec.cold_start_delay = cold;
          rec.timed_out = false;
          break;
        }
        ++rec.transient_failures;
        rec.timed_out = attempt_timed_out;
        if (attempt < max_attempts && rng != nullptr) {
          metrics.retries.inc();
          elapsed += retry.backoff_seconds(attempt, *rng);
        }
      }
      rec.occupied_seconds = elapsed;
      if (success) {
        rec.runtime = elapsed;
        rec.finish = start + elapsed;
        rec.cost = rec.billed_cost;
      } else {
        rec.failed = true;
        rec.runtime = kInfiniteTime;
        rec.finish = kInfiniteTime;
        rec.cost = kInfiniteTime;
        result.failed = true;
      }
    }
    result.invocations[id] = rec;
  }

  double makespan = 0.0;
  double total_cost = 0.0;
  for (const auto& rec : result.invocations) {
    makespan = std::max(makespan, rec.finish);
    total_cost += rec.cost;
  }
  result.makespan = result.failed ? kInfiniteTime : makespan;
  result.total_cost = result.failed ? kInfiniteTime : total_cost;
  return result;
}

}  // namespace aarc::platform
