#include "platform/executor.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

#include "obs/metrics.h"
#include "support/contracts.h"

namespace aarc::platform {

using support::expects;

namespace {

// Handles resolved once; run() is the hottest loop in the repo and must not
// take the registry mutex per execution.
struct ExecutorMetrics {
  obs::Counter& executions;
  obs::Counter& attempts;
  obs::Counter& retries;
  obs::Counter& timeouts;
  obs::Counter& transient_faults;
  obs::Counter& oom_failures;
  obs::Counter& cold_starts;
};

ExecutorMetrics& executor_metrics() {
  auto& reg = obs::MetricsRegistry::global();
  static ExecutorMetrics m{
      reg.counter(obs::metric::kPlatformExecutions),
      reg.counter(obs::metric::kPlatformInvocationAttempts),
      reg.counter(obs::metric::kPlatformRetries),
      reg.counter(obs::metric::kPlatformTimeouts),
      reg.counter(obs::metric::kPlatformTransientFaults),
      reg.counter(obs::metric::kPlatformOomFailures),
      reg.counter(obs::metric::kPlatformColdStarts),
  };
  return m;
}

}  // namespace

std::vector<double> ExecutionResult::runtimes() const {
  std::vector<double> out;
  out.reserve(invocations.size());
  for (const auto& inv : invocations) out.push_back(inv.runtime);
  return out;
}

std::vector<dag::NodeId> ExecutionResult::oom_nodes() const {
  std::vector<dag::NodeId> out;
  for (const auto& inv : invocations) {
    if (inv.oom) out.push_back(inv.node);
  }
  return out;
}

std::size_t ExecutionResult::total_attempts() const {
  std::size_t total = 0;
  for (const auto& inv : invocations) total += inv.attempts;
  return total;
}

std::size_t ExecutionResult::transient_failures() const {
  std::size_t total = 0;
  for (const auto& inv : invocations) total += inv.transient_failures;
  return total;
}

std::size_t ExecutionResult::timed_out_invocations() const {
  std::size_t total = 0;
  for (const auto& inv : invocations) {
    if (inv.timed_out) ++total;
  }
  return total;
}

bool ExecutionResult::oom_failure() const {
  for (const auto& inv : invocations) {
    if (inv.oom) return true;
  }
  return false;
}

double ExecutionResult::observed_wall_seconds() const {
  double wall = 0.0;
  for (const auto& inv : invocations) {
    if (std::isfinite(inv.finish)) {
      wall = std::max(wall, inv.finish);
    } else if (std::isfinite(inv.start)) {
      // Permanently failed invocation: its attempts still occupied the span
      // [start, start + occupied_seconds).
      wall = std::max(wall, inv.start + inv.occupied_seconds);
    }
  }
  return wall;
}

double ExecutionResult::observed_cost() const {
  double total = 0.0;
  for (const auto& inv : invocations) total += inv.billed_cost;
  return total;
}

Executor::Executor(std::unique_ptr<PricingModel> pricing, ExecutorOptions options)
    : pricing_(std::move(pricing)), options_(options) {
  expects(pricing_ != nullptr, "executor requires a pricing model");
  options_.retry.validate();
}

Executor Executor::clone() const { return Executor(pricing_->clone(), options_); }

ExecutionResult Executor::execute(const Workflow& workflow, const WorkflowConfig& config,
                                  double input_scale, support::Rng& rng) const {
  if (options_.emulated_probe_latency_seconds > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(
        options_.emulated_probe_latency_seconds));
  }
  return run(workflow, config, input_scale, &rng);
}

ExecutionResult Executor::execute_mean(const Workflow& workflow, const WorkflowConfig& config,
                                       double input_scale) const {
  return run(workflow, config, input_scale, nullptr);
}

bool Executor::supports_lane_execution() const {
  return !options_.faults.enabled() && !options_.cold_start.enabled() &&
         !options_.retry.retries_enabled() && !options_.retry.timeout_enabled();
}

void Executor::execute_lanes(const Workflow& workflow,
                             const dag::LaneSchedule& schedule,
                             double input_scale, ExecutionLanes& lanes,
                             std::size_t lane_begin, std::size_t lane_end,
                             const std::uint64_t* lane_seeds) const {
  expects(supports_lane_execution(),
          "execute_lanes requires a fault/cold-start/retry-free executor");
  workflow.validate();
  const std::size_t nodes = workflow.function_count();
  expects(schedule.node_count() == nodes,
          "lane schedule does not match the workflow");
  expects(lanes.node_count == nodes, "lane buffer does not match the workflow");
  expects(lane_begin <= lane_end && lane_end <= lanes.lane_count,
          "lane range out of bounds");
  expects(input_scale > 0.0, "input_scale must be positive");
  const std::size_t width = lane_end - lane_begin;
  if (width == 0) return;
  const bool noisy = options_.noise.sigma() > 0.0;
  expects(!noisy || lane_seeds != nullptr, "noisy lanes need per-lane stream seeds");

  if (options_.emulated_probe_latency_seconds > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(
        options_.emulated_probe_latency_seconds * static_cast<double>(width)));
  }

  ExecutorMetrics& metrics = executor_metrics();
  metrics.executions.inc(width);

  // Lanes are processed in cache-sized blocks: one full node sweep per block
  // keeps the block's scratch rows — and, on noisy runs, its per-lane rng
  // states (~2.5 KB of mt19937_64 state each) — resident instead of cycling
  // every lane's state through cache once per node.  Blocking is invisible
  // to results: each lane's draws still happen in topological node order on
  // its own stream, and all per-lane FP operations are unchanged.
  // Noisy runs use a narrower block: every node pass walks one mt19937_64
  // state per lane, so the block must be small enough for those states to
  // sit in L1 alongside the scratch rows.
  const std::size_t lane_block = noisy ? 16 : 128;
  const std::size_t stride = lanes.lane_count;
  std::vector<double> start(std::min(width, lane_block));
  std::vector<double> mean(std::min(width, lane_block));
  std::vector<unsigned char> active(std::min(width, lane_block));
  // Per-block noise engines, seeded fresh each block and discarded at its
  // end: states are born, drawn from, and die cache-hot instead of being
  // materialized for every lane up front.
  std::vector<support::Rng> block_rngs;
  if (noisy) block_rngs.reserve(std::min(width, lane_block));

  std::uint64_t attempt_count = 0;
  std::uint64_t oom_count = 0;
  for (std::size_t block_begin = lane_begin; block_begin < lane_end;
       block_begin += lane_block) {
    const std::size_t block_end = std::min(block_begin + lane_block, lane_end);
    const std::size_t block = block_end - block_begin;
    if (noisy) {
      block_rngs.clear();
      for (std::size_t l = block_begin; l < block_end; ++l) {
        block_rngs.emplace_back(lane_seeds[l]);
      }
    }
    for (std::size_t l = block_begin; l < block_end; ++l) {
      lanes.makespan[l] = 0.0;
      lanes.total_cost[l] = 0.0;
      lanes.wall_seconds[l] = 0.0;
      lanes.wall_cost[l] = 0.0;
      lanes.failed[l] = 0;
      lanes.oom[l] = 0;
    }

    for (dag::NodeId id : schedule.order()) {
      const std::size_t row = id * stride + block_begin;
      std::fill(start.begin(), start.begin() + static_cast<std::ptrdiff_t>(block),
                0.0);
      for (dag::NodeId p : schedule.predecessors(id)) {
        const double* pred_finish = lanes.finish.data() + p * stride + block_begin;
        for (std::size_t k = 0; k < block; ++k) {
          start[k] = std::max(start[k], pred_finish[k]);
        }
      }

      const perf::PerfModel& model = workflow.model(id);
      const double floor = model.min_memory_mb(input_scale);
      const double* cpu = lanes.vcpu.data() + row;
      const double* mem = lanes.memory_mb.data() + row;
      for (std::size_t k = 0; k < block; ++k) {
        active[k] = mem[k] >= floor ? 1 : 0;
      }
      model.mean_runtime_lanes(cpu, mem, input_scale, active.data(), mean.data(),
                               block);
      if (noisy) {
        // Each lane advances its own seed-derived stream; draws happen in
        // topological node order, exactly as the scalar attempt loop does.
        for (std::size_t k = 0; k < block; ++k) {
          if (active[k] != 0) {
            mean[k] = options_.noise.noisy_runtime(mean[k], block_rngs[k]);
          }
        }
      }
      double* cost = lanes.cost.data() + row;
      pricing_->invocation_cost_lanes(cpu, mem, mean.data(), active.data(), cost,
                                      block);
      double* runtime = lanes.runtime.data() + row;
      double* finish = lanes.finish.data() + row;
      for (std::size_t k = 0; k < block; ++k) {
        if (active[k] != 0) {
          ++attempt_count;
          runtime[k] = mean[k];
          finish[k] = start[k] + mean[k];
        } else {
          // OOM: deterministic, never billed; matches the scalar OOM branch.
          ++oom_count;
          runtime[k] = kInfiniteTime;
          finish[k] = kInfiniteTime;
          cost[k] = kInfiniteTime;
          const std::size_t l = block_begin + k;
          lanes.oom[l] = 1;
          lanes.failed[l] = 1;
          if (std::isfinite(start[k])) {
            // The failed invocation occupied [start, start + 0): wall charge
            // is its start time, as in observed_wall_seconds().
            lanes.wall_seconds[l] = std::max(lanes.wall_seconds[l], start[k]);
          }
        }
      }
    }

    // Reductions run in NodeId order so floating-point sums match the scalar
    // path (which accumulates over invocations indexed by NodeId) bit for
    // bit; the maxima are order-independent.
    for (std::size_t id = 0; id < nodes; ++id) {
      const std::size_t row = id * stride + block_begin;
      const double* cost = lanes.cost.data() + row;
      const double* finish = lanes.finish.data() + row;
      for (std::size_t k = 0; k < block; ++k) {
        const std::size_t l = block_begin + k;
        lanes.makespan[l] = std::max(lanes.makespan[l], finish[k]);
        lanes.total_cost[l] += cost[k];
        if (std::isfinite(finish[k])) {
          lanes.wall_seconds[l] = std::max(lanes.wall_seconds[l], finish[k]);
        }
        if (std::isfinite(cost[k])) {
          // billed_cost of an OOM invocation is exactly 0; skipping the +inf
          // sentinel reproduces the scalar observed_cost() sum.
          lanes.wall_cost[l] += cost[k];
        }
      }
    }
    for (std::size_t l = block_begin; l < block_end; ++l) {
      if (lanes.failed[l] != 0) {
        lanes.makespan[l] = kInfiniteTime;
        lanes.total_cost[l] = kInfiniteTime;
      }
    }
  }
  metrics.attempts.inc(attempt_count);
  metrics.oom_failures.inc(oom_count);
}

ExecutionResult Executor::run(const Workflow& workflow, const WorkflowConfig& config,
                              double input_scale, support::Rng* rng) const {
  workflow.validate();
  expects(config.size() == workflow.function_count(),
          "config must have one entry per function");
  expects(input_scale > 0.0, "input_scale must be positive");
  for (const auto& rc : config) {
    expects(rc.vcpu > 0.0 && rc.memory_mb > 0.0, "allocations must be positive");
  }

  const dag::Graph& g = workflow.graph();
  const auto order = g.topological_order();

  ExecutionResult result;
  result.invocations.resize(g.node_count());

  const RetryPolicy& retry = options_.retry;
  ExecutorMetrics& metrics = executor_metrics();
  metrics.executions.inc();

  for (dag::NodeId id : order) {
    InvocationRecord rec;
    rec.node = id;
    double start = 0.0;
    for (dag::NodeId p : g.predecessors(id)) {
      start = std::max(start, result.invocations[p].finish);
    }
    rec.start = start;

    const perf::PerfModel& model = workflow.model(id);
    if (!model.fits_memory(config[id].memory_mb, input_scale)) {
      // OOM is a deterministic property of the configuration: retrying would
      // fail identically, so it is never retried and nothing is billed.
      rec.oom = true;
      rec.failed = true;
      rec.runtime = kInfiniteTime;
      rec.finish = kInfiniteTime;
      rec.cost = kInfiniteTime;
      result.failed = true;
      metrics.oom_failures.inc();
    } else {
      // Faults and retries are stochastic; the noise-free mean execution
      // runs exactly one clean attempt (the timeout, being deterministic,
      // still applies).
      const std::size_t max_attempts =
          rng != nullptr ? std::max<std::size_t>(1, retry.max_attempts) : 1;
      double elapsed = 0.0;
      bool success = false;
      for (std::size_t attempt = 1; attempt <= max_attempts; ++attempt) {
        rec.attempts = attempt;
        metrics.attempts.inc();
        double duration =
            model.mean_runtime(config[id].vcpu, config[id].memory_mb, input_scale);
        double cold = 0.0;
        FaultOutcome fault;
        if (rng != nullptr) {
          duration = options_.noise.noisy_runtime(duration, *rng);
          cold = options_.cold_start.sample_delay(*rng);
          fault = options_.faults.sample(id, *rng);
        }
        if (cold > 0.0) metrics.cold_starts.inc();
        duration = duration * fault.runtime_multiplier + cold + fault.extra_delay_seconds;
        bool attempt_timed_out = false;
        if (fault.crashed) {
          duration *= fault.crash_fraction;
          metrics.transient_faults.inc();
        } else if (retry.timeout_enabled() && duration > retry.timeout_seconds) {
          duration = retry.timeout_seconds;
          attempt_timed_out = true;
          metrics.timeouts.inc();
        }
        rec.billed_seconds += duration;
        rec.billed_cost += pricing_->invocation_cost(config[id], duration);
        elapsed += duration;
        if (!fault.crashed && !attempt_timed_out) {
          success = true;
          rec.cold_start_delay = cold;
          rec.timed_out = false;
          break;
        }
        ++rec.transient_failures;
        rec.timed_out = attempt_timed_out;
        if (attempt < max_attempts && rng != nullptr) {
          metrics.retries.inc();
          elapsed += retry.backoff_seconds(attempt, *rng);
        }
      }
      rec.occupied_seconds = elapsed;
      if (success) {
        rec.runtime = elapsed;
        rec.finish = start + elapsed;
        rec.cost = rec.billed_cost;
      } else {
        rec.failed = true;
        rec.runtime = kInfiniteTime;
        rec.finish = kInfiniteTime;
        rec.cost = kInfiniteTime;
        result.failed = true;
      }
    }
    result.invocations[id] = rec;
  }

  double makespan = 0.0;
  double total_cost = 0.0;
  for (const auto& rec : result.invocations) {
    makespan = std::max(makespan, rec.finish);
    total_cost += rec.cost;
  }
  result.makespan = result.failed ? kInfiniteTime : makespan;
  result.total_cost = result.failed ? kInfiniteTime : total_cost;
  return result;
}

}  // namespace aarc::platform
