#include "platform/executor.h"

#include <algorithm>
#include <cmath>

#include "support/contracts.h"

namespace aarc::platform {

using support::expects;

std::vector<double> ExecutionResult::runtimes() const {
  std::vector<double> out;
  out.reserve(invocations.size());
  for (const auto& inv : invocations) out.push_back(inv.runtime);
  return out;
}

std::vector<dag::NodeId> ExecutionResult::oom_nodes() const {
  std::vector<dag::NodeId> out;
  for (const auto& inv : invocations) {
    if (inv.oom) out.push_back(inv.node);
  }
  return out;
}

double ExecutionResult::observed_wall_seconds() const {
  double wall = 0.0;
  for (const auto& inv : invocations) {
    if (std::isfinite(inv.finish)) wall = std::max(wall, inv.finish);
  }
  return wall;
}

double ExecutionResult::observed_cost() const {
  double total = 0.0;
  for (const auto& inv : invocations) {
    if (std::isfinite(inv.cost)) total += inv.cost;
  }
  return total;
}

Executor::Executor(std::unique_ptr<PricingModel> pricing, ExecutorOptions options)
    : pricing_(std::move(pricing)), options_(options) {
  expects(pricing_ != nullptr, "executor requires a pricing model");
}

ExecutionResult Executor::execute(const Workflow& workflow, const WorkflowConfig& config,
                                  double input_scale, support::Rng& rng) const {
  return run(workflow, config, input_scale, &rng);
}

ExecutionResult Executor::execute_mean(const Workflow& workflow, const WorkflowConfig& config,
                                       double input_scale) const {
  return run(workflow, config, input_scale, nullptr);
}

ExecutionResult Executor::run(const Workflow& workflow, const WorkflowConfig& config,
                              double input_scale, support::Rng* rng) const {
  workflow.validate();
  expects(config.size() == workflow.function_count(),
          "config must have one entry per function");
  expects(input_scale > 0.0, "input_scale must be positive");
  for (const auto& rc : config) {
    expects(rc.vcpu > 0.0 && rc.memory_mb > 0.0, "allocations must be positive");
  }

  const dag::Graph& g = workflow.graph();
  const auto order = g.topological_order();

  ExecutionResult result;
  result.invocations.resize(g.node_count());

  for (dag::NodeId id : order) {
    InvocationRecord rec;
    rec.node = id;
    double start = 0.0;
    for (dag::NodeId p : g.predecessors(id)) {
      start = std::max(start, result.invocations[p].finish);
    }
    rec.start = start;

    const perf::PerfModel& model = workflow.model(id);
    if (!model.fits_memory(config[id].memory_mb, input_scale)) {
      rec.oom = true;
      rec.runtime = kInfiniteTime;
      rec.finish = kInfiniteTime;
      rec.cost = kInfiniteTime;
      result.failed = true;
    } else {
      double t = model.mean_runtime(config[id].vcpu, config[id].memory_mb, input_scale);
      if (rng != nullptr) {
        t = options_.noise.noisy_runtime(t, *rng);
        rec.cold_start_delay = options_.cold_start.sample_delay(*rng);
        t += rec.cold_start_delay;
      }
      rec.runtime = t;
      rec.finish = start + t;
      rec.cost = pricing_->invocation_cost(config[id], t);
    }
    result.invocations[id] = rec;
  }

  double makespan = 0.0;
  double total_cost = 0.0;
  for (const auto& rec : result.invocations) {
    makespan = std::max(makespan, rec.finish);
    total_cost += rec.cost;
  }
  result.makespan = result.failed ? kInfiniteTime : makespan;
  result.total_cost = result.failed ? kInfiniteTime : total_cost;
  return result;
}

}  // namespace aarc::platform
