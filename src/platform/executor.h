// The workflow executor — the simulated serverless platform.
//
// "Workflows execute in separate Docker containers, enabling CPU and memory
// allocation decoupling" (Section IV-A(a)).  Here each node's container is an
// invocation whose duration comes from the function's performance model plus
// seeded noise (plus an optional cold-start penalty); the DAG semantics are
// the standard ones: a function starts when all its predecessors finished.
// The end-to-end runtime (makespan) is the finish time of the last function;
// the cost is the sum of per-invocation costs under the pricing model.
#pragma once

#include <limits>
#include <memory>
#include <vector>

#include "dag/graph.h"
#include "dag/lane_schedule.h"
#include "perf/noise.h"
#include "platform/coldstart.h"
#include "platform/faults.h"
#include "platform/lanes.h"
#include "platform/pricing.h"
#include "platform/resource.h"
#include "platform/workflow.h"
#include "support/rng.h"

namespace aarc::platform {

/// Outcome of one function invocation within a workflow execution.
///
/// With retries enabled an invocation may consume several attempts; the
/// record aggregates them.  `runtime` then spans every attempt plus the
/// backoff waits between them (so finish = start + runtime still holds and
/// retry delays propagate to successors), while `billed_seconds`/`cost`
/// bill every attempt — failed attempts occupy paid container time.
struct InvocationRecord {
  dag::NodeId node = dag::kInvalidNode;
  double start = 0.0;             ///< seconds from workflow start
  double runtime = 0.0;           ///< observed duration (inf on permanent failure)
  double finish = 0.0;            ///< start + runtime
  double cost = 0.0;              ///< billed cost (inf on permanent failure)
  double cold_start_delay = 0.0;  ///< of the final attempt; included in runtime
  bool oom = false;               ///< deterministic OOM (never retried)
  bool failed = false;            ///< permanent failure: OOM or retries exhausted
  bool timed_out = false;         ///< final attempt hit the invocation timeout
  std::size_t attempts = 1;           ///< attempts consumed (>= 1)
  std::size_t transient_failures = 0; ///< crashed or timed-out attempts
  double billed_seconds = 0.0;    ///< billed duration across all attempts (finite)
  double billed_cost = 0.0;       ///< billed cost across all attempts (finite)
  double occupied_seconds = 0.0;  ///< wall time occupied incl. backoff (finite)
};

/// Outcome of one end-to-end workflow execution.
struct ExecutionResult {
  std::vector<InvocationRecord> invocations;  ///< indexed by NodeId
  double makespan = 0.0;                      ///< inf when any function failed
  double total_cost = 0.0;                    ///< inf when any function failed
  bool failed = false;                        ///< true when any function failed

  /// Observed per-function runtimes, indexed by NodeId.
  std::vector<double> runtimes() const;
  /// Nodes that ran out of memory.
  std::vector<dag::NodeId> oom_nodes() const;

  /// Attempts consumed across all invocations (== function count when no
  /// faults fired).
  std::size_t total_attempts() const;
  /// Crashed or timed-out attempts across all invocations.
  std::size_t transient_failures() const;
  /// Invocations whose final attempt hit the invocation timeout.
  std::size_t timed_out_invocations() const;
  /// True when the failure involves an OOM (deterministic, not retryable).
  bool oom_failure() const;
  /// True when the execution failed on transient faults only — a retry of
  /// the whole probe may well succeed.
  bool transient_failure() const { return failed && !oom_failure(); }

  /// Wall-clock seconds the execution occupied even if it failed: the
  /// largest finite finish time, counting the occupied span of permanently
  /// failed invocations (0 when nothing ran).  Search algorithms charge
  /// this as sampling time for failed probes.
  double observed_wall_seconds() const;
  /// Billed cost of every attempt that ran, failed or not (finite part).
  double observed_cost() const;
};

inline constexpr double kInfiniteTime = std::numeric_limits<double>::infinity();

/// Executor options.
struct ExecutorOptions {
  perf::NoiseModel noise{0.03};  ///< ~3% relative std, matching Table II
  ColdStartModel cold_start{};   ///< disabled by default
  FaultModel faults{};           ///< disabled by default
  RetryPolicy retry{};           ///< no retries, no timeout by default
  /// When > 0, every noisy execute() blocks the calling thread for this many
  /// real seconds before returning.  On the real platform a probe occupies
  /// the submitter for the workflow's wall time; the simulator answers in
  /// microseconds, which would make any concurrency measurement vacuous.
  /// The concurrency benches set a few milliseconds here so thread-scaling
  /// numbers mean something.  Simulated results are unaffected.
  double emulated_probe_latency_seconds = 0.0;
};

class Executor {
 public:
  /// Takes ownership of the pricing model (paper constants by default).
  explicit Executor(std::unique_ptr<PricingModel> pricing =
                        std::make_unique<DecoupledLinearPricing>(),
                    ExecutorOptions options = {});

  Executor(Executor&&) noexcept = default;
  Executor& operator=(Executor&&) noexcept = default;

  /// Deep copy (clones the pricing model).  A cloned executor is fully
  /// independent of the original, so per-thread clones can execute
  /// concurrently without sharing any state (search::Evaluator relies
  /// on this for its worker pool).
  Executor clone() const;

  const PricingModel& pricing() const { return *pricing_; }
  const ExecutorOptions& options() const { return options_; }

  /// Execute the workflow once under `config` at the given input scale,
  /// drawing noise from `rng`.  `config` must have one entry per function
  /// with positive allocations.  Failure does not throw: OOM (deterministic,
  /// never retried) and transient faults that exhaust the retry budget mark
  /// the record and poison makespan/cost with infinity (search algorithms
  /// treat this as an error to revert, exactly like the paper's "encounters
  /// an error").  Failed attempts are billed and delay successors.
  ExecutionResult execute(const Workflow& workflow, const WorkflowConfig& config,
                          double input_scale, support::Rng& rng) const;

  /// Noise-free analytic execution (used to seed weights and by tests).
  ExecutionResult execute_mean(const Workflow& workflow, const WorkflowConfig& config,
                               double input_scale = 1.0) const;

  /// True when execute_lanes covers this option set: no fault injection,
  /// cold starts, retries or timeouts (multiplicative noise is fine).  The
  /// batch evaluator falls back to per-probe execute() otherwise.
  bool supports_lane_execution() const;

  /// SoA batch execution: evaluate lanes [lane_begin, lane_end) of `lanes`
  /// in one pass over the DAG, bit-identical to calling execute() per lane
  /// with an rng seeded at the matching per-lane seed.  `schedule` must be
  /// a snapshot of `workflow`'s graph.  `lane_seeds` points at per-lane
  /// stream seeds indexed by absolute lane id; the kernel constructs each
  /// lane's engine on the stack for the duration of its cache block, so the
  /// ~2.5 KB mt19937_64 states never round-trip through a heap array.  It
  /// may be null when the noise model is disabled (sigma == 0), in which
  /// case no randomness is consumed — exactly like the scalar path.
  /// Requires supports_lane_execution().
  ///
  /// Emulated probe latency blocks once for the whole range ((lane_end -
  /// lane_begin) * latency), matching the per-probe sleeps of the scalar
  /// path in aggregate.
  void execute_lanes(const Workflow& workflow, const dag::LaneSchedule& schedule,
                     double input_scale, ExecutionLanes& lanes,
                     std::size_t lane_begin, std::size_t lane_end,
                     const std::uint64_t* lane_seeds) const;

 private:
  ExecutionResult run(const Workflow& workflow, const WorkflowConfig& config,
                      double input_scale, support::Rng* rng) const;

  std::unique_ptr<PricingModel> pricing_;
  ExecutorOptions options_;
};

}  // namespace aarc::platform
