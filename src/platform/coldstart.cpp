#include "platform/coldstart.h"

#include "support/contracts.h"

namespace aarc::platform {

using support::expects;

ColdStartModel::ColdStartModel(double probability, double min_delay_seconds,
                               double max_delay_seconds)
    : probability_(probability), min_delay_(min_delay_seconds), max_delay_(max_delay_seconds) {
  expects(probability >= 0.0 && probability <= 1.0, "cold-start probability in [0, 1]");
  expects(min_delay_seconds >= 0.0, "cold-start delay must be non-negative");
  expects(max_delay_seconds >= min_delay_seconds, "max delay must be >= min delay");
}

double ColdStartModel::sample_delay(support::Rng& rng) const {
  if (!enabled()) return 0.0;
  if (!rng.bernoulli(probability_)) return 0.0;
  return rng.uniform(min_delay_, max_delay_);
}

}  // namespace aarc::platform
