#include "platform/pricing.h"

#include "support/contracts.h"

namespace aarc::platform {

using support::expects;

void PricingModel::invocation_cost_lanes(const double* vcpu,
                                         const double* memory_mb,
                                         const double* seconds,
                                         const unsigned char* active,
                                         double* out, std::size_t lanes) const {
  for (std::size_t l = 0; l < lanes; ++l) {
    if (active[l] != 0) {
      out[l] = invocation_cost(ResourceConfig{vcpu[l], memory_mb[l]}, seconds[l]);
    }
  }
}

DecoupledLinearPricing::DecoupledLinearPricing(double mu0_per_vcpu_second,
                                               double mu1_per_mb_second,
                                               double mu2_per_request)
    : mu0_(mu0_per_vcpu_second), mu1_(mu1_per_mb_second), mu2_(mu2_per_request) {
  expects(mu0_ >= 0.0 && mu1_ >= 0.0 && mu2_ >= 0.0, "prices must be non-negative");
  expects(mu0_ + mu1_ > 0.0, "at least one resource must have a price");
}

double DecoupledLinearPricing::invocation_cost(const ResourceConfig& config,
                                               double seconds) const {
  expects(seconds >= 0.0, "duration must be non-negative");
  expects(config.vcpu > 0.0 && config.memory_mb > 0.0, "allocation must be positive");
  return seconds * (mu0_ * config.vcpu + mu1_ * config.memory_mb) + mu2_;
}

void DecoupledLinearPricing::invocation_cost_lanes(
    const double* vcpu, const double* memory_mb, const double* seconds,
    const unsigned char* active, double* out, std::size_t lanes) const {
  for (std::size_t l = 0; l < lanes; ++l) {
    if (active[l] == 0) continue;
    out[l] = seconds[l] * (mu0_ * vcpu[l] + mu1_ * memory_mb[l]) + mu2_;
  }
}

std::unique_ptr<PricingModel> DecoupledLinearPricing::clone() const {
  return std::make_unique<DecoupledLinearPricing>(*this);
}

CoupledMemoryPricing::CoupledMemoryPricing(double price_per_mb_second,
                                           double price_per_request)
    : per_mb_second_(price_per_mb_second), per_request_(price_per_request) {
  expects(per_mb_second_ > 0.0, "per-MB-second price must be positive");
  expects(per_request_ >= 0.0, "per-request price must be non-negative");
}

double CoupledMemoryPricing::invocation_cost(const ResourceConfig& config,
                                             double seconds) const {
  expects(seconds >= 0.0, "duration must be non-negative");
  expects(config.memory_mb > 0.0, "memory must be positive");
  return seconds * per_mb_second_ * config.memory_mb + per_request_;
}

void CoupledMemoryPricing::invocation_cost_lanes(
    const double* vcpu, const double* memory_mb, const double* seconds,
    const unsigned char* active, double* out, std::size_t lanes) const {
  (void)vcpu;
  for (std::size_t l = 0; l < lanes; ++l) {
    if (active[l] == 0) continue;
    out[l] = seconds[l] * per_mb_second_ * memory_mb[l] + per_request_;
  }
}

std::unique_ptr<PricingModel> CoupledMemoryPricing::clone() const {
  return std::make_unique<CoupledMemoryPricing>(*this);
}

}  // namespace aarc::platform
