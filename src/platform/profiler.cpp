#include "platform/profiler.h"

#include "support/contracts.h"

namespace aarc::platform {

using support::expects;

double ProfileReport::slo_violation_rate(double slo_seconds) const {
  expects(slo_seconds > 0.0, "SLO must be positive");
  if (makespans.empty()) return 0.0;
  std::size_t violations = 0;
  for (double m : makespans) {
    if (m > slo_seconds) ++violations;
  }
  return static_cast<double>(violations) / static_cast<double>(makespans.size());
}

ProfileReport Profiler::profile(const Workflow& workflow, const WorkflowConfig& config,
                                std::size_t runs, support::Rng& rng,
                                double input_scale) const {
  expects(runs > 0, "profiling requires at least one run");
  ProfileReport report;
  report.runs = runs;
  support::Accumulator makespan_acc;
  support::Accumulator cost_acc;
  std::vector<support::Accumulator> fn_acc(workflow.function_count());

  for (std::size_t r = 0; r < runs; ++r) {
    const ExecutionResult res = executor_->execute(workflow, config, input_scale, rng);
    if (res.failed) {
      ++report.failures;
      continue;
    }
    makespan_acc.add(res.makespan);
    cost_acc.add(res.total_cost);
    report.makespans.push_back(res.makespan);
    report.costs.push_back(res.total_cost);
    for (const auto& inv : res.invocations) fn_acc[inv.node].add(inv.runtime);
  }

  report.makespan = makespan_acc.summary();
  report.cost = cost_acc.summary();
  report.function_runtime.reserve(fn_acc.size());
  for (const auto& acc : fn_acc) report.function_runtime.push_back(acc.summary());
  return report;
}

ExecutionResult Profiler::profile_into_weights(Workflow& workflow,
                                               const WorkflowConfig& config,
                                               support::Rng& rng, double input_scale) const {
  const ExecutionResult res = executor_->execute(workflow, config, input_scale, rng);
  expects(!res.failed, "profiling execution OOMed under the base configuration");
  workflow.mutable_graph().set_weights(res.runtimes());
  return res;
}

}  // namespace aarc::platform
