// Pricing models.
//
// The paper extends AWS Lambda's pricing to decoupled resources (Section
// IV-A(d)):  cost_ij = t_ij * (mu0 * cpu_j + mu1 * mem_j) + mu2 with
// mu0 = 0.512 per vCPU-second, mu1 = 0.001 per MB-second, mu2 = 0 per
// request.  A coupled (memory-centric) adapter prices the memory knob alone,
// as AWS Lambda bills, for the motivation experiment's baseline.
#pragma once

#include <cstddef>
#include <memory>

#include "platform/resource.h"

namespace aarc::platform {

/// Price of one function invocation given its allocation and duration.
class PricingModel {
 public:
  virtual ~PricingModel() = default;

  /// Cost of running `config` for `seconds`.  seconds >= 0.
  virtual double invocation_cost(const ResourceConfig& config, double seconds) const = 0;

  /// Batched invocation_cost over probe lanes: `vcpu`, `memory_mb`,
  /// `seconds` and `out` are arrays of `lanes` doubles; `out[l]` is written
  /// only where `active[l]` is set and must be bit-identical to the scalar
  /// call.  The default loops the scalar virtual; linear models override it.
  virtual void invocation_cost_lanes(const double* vcpu,
                                     const double* memory_mb,
                                     const double* seconds,
                                     const unsigned char* active, double* out,
                                     std::size_t lanes) const;

  virtual std::unique_ptr<PricingModel> clone() const = 0;

 protected:
  PricingModel() = default;
  PricingModel(const PricingModel&) = default;
  PricingModel& operator=(const PricingModel&) = default;
};

/// cost = t * (mu0 * vcpu + mu1 * memory_mb) + mu2  (the paper's model).
class DecoupledLinearPricing final : public PricingModel {
 public:
  /// Paper constants by default.
  explicit DecoupledLinearPricing(double mu0_per_vcpu_second = 0.512,
                                  double mu1_per_mb_second = 0.001,
                                  double mu2_per_request = 0.0);

  double invocation_cost(const ResourceConfig& config, double seconds) const override;
  void invocation_cost_lanes(const double* vcpu, const double* memory_mb,
                             const double* seconds, const unsigned char* active,
                             double* out, std::size_t lanes) const override;
  std::unique_ptr<PricingModel> clone() const override;

  double mu0() const { return mu0_; }
  double mu1() const { return mu1_; }
  double mu2() const { return mu2_; }

 private:
  double mu0_;
  double mu1_;
  double mu2_;
};

/// Memory-centric (coupled) pricing: bills the memory knob only, with CPU
/// implied — AWS-Lambda-style "price per GB-second".
class CoupledMemoryPricing final : public PricingModel {
 public:
  explicit CoupledMemoryPricing(double price_per_mb_second = 0.0015,
                                double price_per_request = 0.0);

  double invocation_cost(const ResourceConfig& config, double seconds) const override;
  void invocation_cost_lanes(const double* vcpu, const double* memory_mb,
                             const double* seconds, const unsigned char* active,
                             double* out, std::size_t lanes) const override;
  std::unique_ptr<PricingModel> clone() const override;

 private:
  double per_mb_second_;
  double per_request_;
};

}  // namespace aarc::platform
