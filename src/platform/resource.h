// Decoupled resource configurations and the discrete configuration space.
//
// The whole point of the paper: vCPU and memory are configured independently
// instead of being coupled through a memory-centric knob.  The discrete grid
// matches Section IV-A: memory 128..10240 MB in 64 MB steps, vCPU 0.1..10 in
// 0.1 steps.
#pragma once

#include <string>
#include <vector>

#include "support/grid.h"

namespace aarc::platform {

/// One function's resource allocation.
struct ResourceConfig {
  double vcpu = 1.0;
  double memory_mb = 1024.0;

  friend bool operator==(const ResourceConfig&, const ResourceConfig&) = default;
};

/// Render "1.0 vCPU / 1024 MB".
std::string to_string(const ResourceConfig& config);

/// The discrete configuration space for one function.
class ConfigGrid {
 public:
  /// Paper defaults (Section IV-A).
  ConfigGrid();
  ConfigGrid(support::ValueGrid cpu, support::ValueGrid memory);

  const support::ValueGrid& cpu() const { return cpu_; }
  const support::ValueGrid& memory() const { return memory_; }

  /// Snap both dimensions onto the grid.
  ResourceConfig snap(const ResourceConfig& config) const;

  /// True when both dimensions sit exactly on grid points.
  bool contains(const ResourceConfig& config) const;

  /// Largest configuration on the grid (the over-provisioned base config of
  /// Algorithm 1 line 3).
  ResourceConfig max_config() const;

  /// Smallest configuration on the grid.
  ResourceConfig min_config() const;

  /// Number of distinct (cpu, mem) points.
  std::size_t size() const { return cpu_.size() * memory_.size(); }

  /// AWS-Lambda-style coupling: given memory, the implied vCPU share
  /// (mb_per_vcpu controls the ratio; paper's MAFF uses 1024 MB per core),
  /// snapped to the cpu grid.
  double coupled_vcpu_for_memory(double memory_mb, double mb_per_vcpu = 1024.0) const;

 private:
  support::ValueGrid cpu_;
  support::ValueGrid memory_;
};

/// A full workflow configuration: one ResourceConfig per DAG node, indexed by
/// dag::NodeId.
using WorkflowConfig = std::vector<ResourceConfig>;

/// Uniform workflow config helper.
WorkflowConfig uniform_config(std::size_t node_count, const ResourceConfig& config);

}  // namespace aarc::platform
