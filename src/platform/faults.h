// Fault injection and retry policy (extension, disabled by default).
//
// The paper's platform model is benign: apart from deterministic OOM every
// invocation succeeds.  Real serverless platforms are not — invocations
// crash transiently (node eviction, dependency hiccups), straggle (noisy
// neighbours), pay occasional cold-start spikes far above the usual penalty,
// and get throttled by concurrency limiters.  This module makes the
// simulated platform hostile in a *seeded, deterministic* way so that the
// revert/backoff machinery of Algorithm 2, the serving simulator, and the
// adaptive controller are exercised under realistic conditions:
//
//   * FaultModel — per-invocation fault sampler with global default rates
//     and optional per-function overrides;
//   * RetryPolicy — how the platform reacts: bounded attempts, exponential
//     backoff with jitter, and a per-invocation timeout that converts
//     runaway invocations into timeout failures instead of infinite waits.
//
// OOM stays outside this module: it is a deterministic property of the
// configuration and is never retried.
#pragma once

#include <cstddef>
#include <map>

#include "dag/graph.h"
#include "support/rng.h"

namespace aarc::platform {

/// Per-invocation fault probabilities and magnitudes.  All probabilities are
/// independent per attempt; a crashed attempt draws its magnitudes too (the
/// slowdown applies to the partial run that crashed).
struct FaultRates {
  /// Probability the attempt crashes part-way through (retryable).
  double transient_crash = 0.0;
  /// Probability the attempt is a straggler: runtime is multiplied.
  double straggler = 0.0;
  double straggler_multiplier = 4.0;
  /// Probability of a cold-start spike: an extra uniform delay on top of the
  /// regular cold-start model.
  double cold_spike = 0.0;
  double cold_spike_min_seconds = 2.0;
  double cold_spike_max_seconds = 8.0;
  /// Probability the platform throttles the attempt before it starts.
  double throttle = 0.0;
  double throttle_min_seconds = 0.5;
  double throttle_max_seconds = 3.0;

  /// True when any fault has a nonzero probability.
  bool any() const;
  /// Throws ContractViolation on out-of-range probabilities or magnitudes.
  void validate() const;
};

/// What the fault sampler decided for one attempt.
struct FaultOutcome {
  bool crashed = false;
  /// Fraction of the attempt's nominal duration consumed before the crash
  /// (billed and occupying the container); 1.0 when not crashed.
  double crash_fraction = 1.0;
  double runtime_multiplier = 1.0;   ///< >1 when straggling
  double extra_delay_seconds = 0.0;  ///< cold spike + throttle delay
};

/// Sample one attempt against explicit rates.  Consumes randomness only when
/// `rates.any()`; FaultModel::sample delegates here, so sampling against a
/// function's base rates and sampling against externally modulated rates
/// (chaos/incident.h) draw from the stream in exactly the same order.
FaultOutcome sample_fault(const FaultRates& rates, support::Rng& rng);

/// Seeded, deterministic fault sampler.  A default-constructed model is
/// disabled and consumes no randomness, so executions with faults off are
/// bit-identical to executions without a FaultModel at all.
class FaultModel {
 public:
  FaultModel() = default;  ///< disabled: every attempt is clean

  /// Model with the given default rates applied to every function.
  explicit FaultModel(FaultRates defaults);

  /// Override the rates of one function (e.g. a flaky external dependency).
  void set_function_rates(dag::NodeId node, FaultRates rates);

  /// Effective rates for `node` (the override if present, else the default).
  const FaultRates& rates(dag::NodeId node) const;
  const FaultRates& default_rates() const { return defaults_; }

  /// True when any function can fault.
  bool enabled() const;

  /// Sample one attempt's faults.  Consumes randomness only when the
  /// effective rates for `node` are nonzero.
  FaultOutcome sample(dag::NodeId node, support::Rng& rng) const;

 private:
  FaultRates defaults_{};
  std::map<dag::NodeId, FaultRates> overrides_;
};

/// How failed attempts are retried and runaway attempts cut off.
struct RetryPolicy {
  /// Total attempts per invocation (1 = no retries).
  std::size_t max_attempts = 1;
  /// Backoff before attempt k+1 after k failures:
  /// initial * multiplier^(k-1), jittered by +/- jitter_fraction.
  double backoff_initial_seconds = 0.5;
  double backoff_multiplier = 2.0;
  double backoff_jitter_fraction = 0.1;
  /// Per-invocation timeout; an attempt running longer fails at exactly this
  /// duration (billed in full).  0 disables the timeout.
  double timeout_seconds = 0.0;

  bool retries_enabled() const { return max_attempts > 1; }
  bool timeout_enabled() const { return timeout_seconds > 0.0; }

  /// Throws ContractViolation on out-of-range fields.
  void validate() const;

  /// Sampled wait before the next attempt, given `failed_attempts` >= 1
  /// failures so far.  Deterministic under the rng's stream.
  double backoff_seconds(std::size_t failed_attempts, support::Rng& rng) const;
};

}  // namespace aarc::platform
