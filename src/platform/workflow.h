// A serverless workflow: a DAG of functions, each with a performance model.
//
// This is the object developers "submit to the cloud platform along with the
// SLO" (paper Fig. 4, step 1).  The topology lives in a dag::Graph whose
// node weights the profiler fills with measured runtimes; the per-function
// performance models drive the simulator.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "dag/graph.h"
#include "perf/model.h"

namespace aarc::platform {

/// One function of the workflow.
struct FunctionSpec {
  std::string name;
  std::unique_ptr<perf::PerfModel> model;

  FunctionSpec(std::string n, std::unique_ptr<perf::PerfModel> m)
      : name(std::move(n)), model(std::move(m)) {}
};

class Workflow {
 public:
  explicit Workflow(std::string name);

  Workflow(Workflow&&) noexcept = default;
  Workflow& operator=(Workflow&&) noexcept = default;
  Workflow(const Workflow&) = delete;
  Workflow& operator=(const Workflow&) = delete;

  /// Deep copy (clones every performance model).
  Workflow clone() const;

  const std::string& name() const { return graph_.name(); }

  /// Add a function node; returns its id.
  dag::NodeId add_function(std::string name, std::unique_ptr<perf::PerfModel> model);

  /// Add a dependency edge: `to` starts only after `from` finishes.
  void add_edge(dag::NodeId from, dag::NodeId to);
  /// Edge by function names (both must exist).
  void add_edge(std::string_view from, std::string_view to);

  std::size_t function_count() const { return graph_.node_count(); }
  const std::string& function_name(dag::NodeId id) const { return graph_.node_name(id); }
  dag::NodeId function_id(std::string_view name) const;

  const perf::PerfModel& model(dag::NodeId id) const;

  /// The topology; node weights are whatever the last profiling pass stored.
  const dag::Graph& graph() const { return graph_; }
  dag::Graph& mutable_graph() { return graph_; }

  /// Throws unless the workflow is a well-formed connected DAG with a model
  /// on every node.
  void validate() const;

 private:
  dag::Graph graph_;
  std::vector<std::unique_ptr<perf::PerfModel>> models_;
};

}  // namespace aarc::platform
