// Profiler — repeated executions and aggregation.
//
// Algorithm 1's first step ("execute G" under the base configuration) and the
// paper's Table II methodology ("execute the workflow 100 times ... calculate
// its average runtime and cost") both live here.
#pragma once

#include <vector>

#include "platform/executor.h"
#include "support/statistics.h"

namespace aarc::platform {

/// Aggregate of repeated executions under one fixed configuration.
struct ProfileReport {
  std::size_t runs = 0;
  std::size_t failures = 0;                       ///< executions with an OOM
  support::Summary makespan;                      ///< over successful runs
  support::Summary cost;                          ///< over successful runs
  std::vector<support::Summary> function_runtime; ///< per NodeId, successful runs
  std::vector<double> makespans;                  ///< raw series (successful runs)
  std::vector<double> costs;                      ///< raw series (successful runs)

  /// Fraction of successful runs whose makespan exceeded `slo_seconds`.
  double slo_violation_rate(double slo_seconds) const;
};

class Profiler {
 public:
  explicit Profiler(const Executor& executor) : executor_(&executor) {}

  /// Run `runs` noisy executions; aggregates successful ones and counts OOMs.
  ProfileReport profile(const Workflow& workflow, const WorkflowConfig& config,
                        std::size_t runs, support::Rng& rng, double input_scale = 1.0) const;

  /// One noisy profiling execution whose per-function runtimes are written
  /// into the workflow graph's node weights (the paper's step 2: "converting
  /// the workflow into a weighted DAG").  Returns the execution result.
  ExecutionResult profile_into_weights(Workflow& workflow, const WorkflowConfig& config,
                                       support::Rng& rng, double input_scale = 1.0) const;

 private:
  const Executor* executor_;
};

}  // namespace aarc::platform
