#include "chaos/incident.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "support/contracts.h"

namespace aarc::chaos {

using support::expects;

std::string to_string(IncidentKind kind) {
  switch (kind) {
    case IncidentKind::Outage:
      return "outage";
    case IncidentKind::Brownout:
      return "brownout";
    case IncidentKind::ThrottleStorm:
      return "throttle_storm";
  }
  return "unknown";
}

IncidentKind incident_kind_from_string(const std::string& name) {
  if (name == "outage") return IncidentKind::Outage;
  if (name == "brownout") return IncidentKind::Brownout;
  if (name == "throttle_storm") return IncidentKind::ThrottleStorm;
  expects(false, "unknown incident kind '" + name +
                     "' (expected outage | brownout | throttle_storm)");
  return IncidentKind::Outage;  // unreachable
}

bool Incident::applies_to(dag::NodeId node) const {
  if (targets.empty()) return true;
  return std::find(targets.begin(), targets.end(), node) != targets.end();
}

double Incident::intensity_at(double t) const {
  if (t < start_seconds || t >= end_seconds) return 0.0;
  if (ramp_seconds <= 0.0) return 1.0;
  const double up = (t - start_seconds) / ramp_seconds;
  const double down = (end_seconds - t) / ramp_seconds;
  return std::clamp(std::min(up, down), 0.0, 1.0);
}

void Incident::validate() const {
  expects(start_seconds >= 0.0, "incident start must be non-negative (got " +
                                    std::to_string(start_seconds) + ")");
  expects(end_seconds > start_seconds,
          "incident window must be non-empty: end " + std::to_string(end_seconds) +
              " must exceed start " + std::to_string(start_seconds));
  expects(ramp_seconds >= 0.0, "incident ramp must be non-negative (got " +
                                   std::to_string(ramp_seconds) + ")");
  expects(ramp_seconds <= (end_seconds - start_seconds) / 2.0,
          "incident ramp " + std::to_string(ramp_seconds) +
              " must fit twice into the window (" +
              std::to_string(end_seconds - start_seconds) + " s)");
  expects(severity >= 0.0 && severity <= 1.0,
          "incident severity must be in [0, 1] (got " + std::to_string(severity) + ")");
}

IncidentSchedule::IncidentSchedule(std::vector<Incident> incidents)
    : incidents_(std::move(incidents)) {
  validate();
}

void IncidentSchedule::add(Incident incident) {
  incident.validate();
  incidents_.push_back(std::move(incident));
}

void IncidentSchedule::validate() const {
  for (const Incident& incident : incidents_) incident.validate();
}

bool IncidentSchedule::any_active(double t) const {
  return std::any_of(incidents_.begin(), incidents_.end(),
                     [&](const Incident& i) { return i.intensity_at(t) > 0.0; });
}

bool IncidentSchedule::active_for(dag::NodeId node, double t) const {
  return std::any_of(incidents_.begin(), incidents_.end(), [&](const Incident& i) {
    return i.applies_to(node) && i.intensity_at(t) > 0.0;
  });
}

double IncidentSchedule::first_start() const {
  double first = 0.0;
  bool any = false;
  for (const Incident& i : incidents_) {
    if (!any || i.start_seconds < first) first = i.start_seconds;
    any = true;
  }
  return first;
}

double IncidentSchedule::last_end() const {
  double last = 0.0;
  for (const Incident& i : incidents_) last = std::max(last, i.end_seconds);
  return last;
}

platform::FaultRates IncidentSchedule::modulate(const platform::FaultRates& base,
                                                dag::NodeId node, double t) const {
  platform::FaultRates out = base;
  auto saturate = [](double p) { return std::min(p, 1.0); };
  for (const Incident& incident : incidents_) {
    if (!incident.applies_to(node)) continue;
    const double w = incident.intensity_at(t);
    if (w <= 0.0) continue;
    const double injected = w * incident.severity;
    switch (incident.kind) {
      case IncidentKind::Outage:
        out.transient_crash = saturate(out.transient_crash + injected);
        break;
      case IncidentKind::Brownout:
        out.straggler = saturate(out.straggler + injected);
        out.cold_spike = saturate(out.cold_spike + 0.5 * injected);
        break;
      case IncidentKind::ThrottleStorm:
        out.throttle = saturate(out.throttle + injected);
        break;
    }
  }
  return out;
}

}  // namespace aarc::chaos
