// Chaos incident engine: seeded, time-windowed fault episodes.
//
// The fault layer in platform/faults.h models faults that are *stationary
// and independent* per invocation — the right null model for search-time
// robustness, but not how production serverless platforms actually fail.
// Real platforms fail in correlated episodes: a zone goes down and one
// function's crash rate jumps to ~1 for minutes; a noisy-neighbour brownout
// ramps straggler and cold-spike rates up and back down; a concurrency
// limiter melts into a throttling storm; a shared dependency takes several
// functions out at once.
//
// This module makes those episodes first-class and *deterministic in
// simulated time*:
//
//   * Incident — one time-windowed episode (outage | brownout |
//     throttle_storm) with an optional linear ramp-up/down and an optional
//     target set of functions (empty = platform-wide; several targets =
//     a correlated multi-function failure);
//   * IncidentSchedule — an ordered set of incidents plus the modulation
//     rule: given the base FaultRates of a function and a simulated time,
//     produce the *effective* rates at that instant.
//
// The schedule holds no RNG.  All randomness stays in the consuming
// engine's seeded stream (the fault sampler draws exactly as before, just
// against time-varying rates), so a chaos run is reproducible bit-for-bit
// from the engine seed, and an empty schedule leaves every consumer
// bit-identical to a run without chaos compiled in at all.
//
// Profiles are data, not code: io/chaos_io.h loads a schedule from JSON
// (the first concrete slice of the ROADMAP's scenario-engine item).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "dag/graph.h"
#include "platform/faults.h"

namespace aarc::chaos {

enum class IncidentKind {
  /// A function (or correlated set) hard-fails: crash probability is driven
  /// to `severity` (default ~1) for the window.  Retries mostly burn out;
  /// this is the episode circuit breakers exist for.
  Outage,
  /// A capacity brownout: straggler and cold-spike probabilities ramp up to
  /// `severity` (cold spikes at half weight) and back down.  Latency
  /// inflates without outright failures; hedged requests earn their keep.
  Brownout,
  /// A throttling storm: admission delay probability ramps to `severity`.
  ThrottleStorm,
};

std::string to_string(IncidentKind kind);
/// Inverse of to_string; throws ContractViolation on an unknown name.
IncidentKind incident_kind_from_string(const std::string& name);

/// One time-windowed fault episode.
struct Incident {
  IncidentKind kind = IncidentKind::Outage;
  std::string name;             ///< label for reports and logs ("" = unnamed)
  double start_seconds = 0.0;
  double end_seconds = 0.0;     ///< exclusive; must be > start_seconds
  /// Linear ramp: intensity climbs 0 -> 1 over the first `ramp_seconds` and
  /// falls 1 -> 0 over the last `ramp_seconds` of the window (0 = a square
  /// step, the outage default).
  double ramp_seconds = 0.0;
  /// Peak fault probability injected at full intensity, in [0, 1].
  double severity = 1.0;
  /// Affected functions; empty = every function (platform-wide episode).
  /// Two or more entries model a correlated multi-function failure.
  std::vector<dag::NodeId> targets;

  bool applies_to(dag::NodeId node) const;
  /// Trapezoidal intensity in [0, 1] at time `t` (0 outside the window).
  double intensity_at(double t) const;
  /// Throws ContractViolation on an ill-formed window, ramp or severity.
  void validate() const;
};

/// A deterministic incident calendar and the fault-rate modulation rule.
class IncidentSchedule {
 public:
  IncidentSchedule() = default;  ///< empty: modulation is the identity
  explicit IncidentSchedule(std::vector<Incident> incidents);

  void add(Incident incident);

  bool empty() const { return incidents_.empty(); }
  std::size_t size() const { return incidents_.size(); }
  const std::vector<Incident>& incidents() const { return incidents_; }

  /// Throws ContractViolation when any incident is ill-formed.
  void validate() const;

  /// True when at least one incident is active (nonzero intensity) at `t`.
  bool any_active(double t) const;
  /// True when an incident affecting `node` is active at `t`.
  bool active_for(dag::NodeId node, double t) const;

  /// Earliest incident start and latest incident end (0/0 when empty).
  double first_start() const;
  double last_end() const;

  /// The modulation rule: effective fault rates for `node` at time `t`,
  /// layered over the function's base rates.  Probabilities add per active
  /// incident (weighted by intensity) and saturate at 1; magnitudes
  /// (straggler multiplier, delay ranges) stay the base model's.  With no
  /// active incident the base rates are returned unchanged, so sampling
  /// against the result consumes the RNG exactly as the unmodulated model.
  platform::FaultRates modulate(const platform::FaultRates& base, dag::NodeId node,
                                double t) const;

 private:
  std::vector<Incident> incidents_;
};

}  // namespace aarc::chaos
