// The Video Analysis workflow (paper Fig. 1, right).
//
// "Splits input videos, extracts key frames, and classifies them."  Scatter
// pattern: a splitter fans the video out to four chunk pipelines
// (frame extraction then classification) that merge at the end.  Extraction
// and classification are highly parallel with large, input-dependent working
// sets — the decoupled optimum sits near 8 vCPU / 5120 MB (Section II-A) and
// the workload is input-sensitive (Section IV-D), which drives the
// Input-Aware Configuration Engine experiment of Fig. 8.
#pragma once

#include "workloads/workload.h"

namespace aarc::workloads {

/// Build the Video Analysis workload (SLO 600 s, Section IV-A(c)).
/// Input classes: light 0.25x, middle 1x, heavy 1.8x work; working sets grow
/// sublinearly (exp 0.6) with the input scale.
Workload make_video_analysis();

}  // namespace aarc::workloads
