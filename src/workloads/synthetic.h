// Synthetic workflow generation for property tests, ablations, and the
// scatter-vs-broadcast pattern study.
//
// Generates layered DAGs: a source layer fans into `width` parallel branches
// (Scatter), or a single stage broadcasts to all branches which rejoin
// (Broadcast), or a random layered topology with configurable fan-in/out
// (Random).  Per-function model parameters are drawn from seeded ranges, so
// the generated population covers CPU-bound, memory-bound, and IO-bound
// functions.
#pragma once

#include <cstdint>

#include "workloads/workload.h"

namespace aarc::workloads {

enum class Pattern { Scatter, Broadcast, Chain, Random };

std::string to_string(Pattern p);

struct SyntheticOptions {
  Pattern pattern = Pattern::Random;
  std::size_t layers = 3;      ///< interior layers between source and sink
  std::size_t width = 3;       ///< branches per interior layer
  std::uint64_t seed = 1;
  double slo_headroom = 1.8;   ///< SLO = headroom x base-config makespan
};

/// Generate a workload; the SLO is derived from the base-configuration
/// makespan so generated instances are always feasible.
Workload make_synthetic(const SyntheticOptions& options);

}  // namespace aarc::workloads
