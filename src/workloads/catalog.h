// Catalog of the paper's three evaluation workloads.
#pragma once

#include <string_view>
#include <vector>

#include "workloads/workload.h"

namespace aarc::workloads {

/// Names of the paper's workloads, in presentation order.
std::vector<std::string> paper_workload_names();

/// Build a paper workload by name ("chatbot", "ml_pipeline",
/// "video_analysis"); throws on unknown names.
Workload make_by_name(std::string_view name);

/// Build all three paper workloads.
std::vector<Workload> make_paper_workloads();

/// Names of every built-in workload: the paper's three plus the extension
/// workloads (currently "data_analytics") plus any registered at runtime.
std::vector<std::string> all_workload_names();

/// Register `workload` under `name` so make_by_name / all_workload_names see
/// it — the hook that lets generated scenarios loaded from disk participate
/// in every catalog-driven code path (CLI, benches, sweeps).  Built-in names
/// cannot be shadowed; re-registering a runtime name replaces the entry.
void register_workload(const std::string& name, Workload workload);

/// Forget a runtime registration (no-op when absent).  Built-ins stay.
void unregister_workload(const std::string& name);

}  // namespace aarc::workloads
