// Catalog of the paper's three evaluation workloads.
#pragma once

#include <string_view>
#include <vector>

#include "workloads/workload.h"

namespace aarc::workloads {

/// Names of the paper's workloads, in presentation order.
std::vector<std::string> paper_workload_names();

/// Build a paper workload by name ("chatbot", "ml_pipeline",
/// "video_analysis"); throws on unknown names.
Workload make_by_name(std::string_view name);

/// Build all three paper workloads.
std::vector<Workload> make_paper_workloads();

/// Names of every built-in workload: the paper's three plus the extension
/// workloads (currently "data_analytics").
std::vector<std::string> all_workload_names();

}  // namespace aarc::workloads
