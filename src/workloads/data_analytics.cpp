#include "workloads/data_analytics.h"

#include "perf/analytic.h"

namespace aarc::workloads {

namespace {
std::unique_ptr<perf::PerfModel> model(double io, double serial, double parallel,
                                       double max_par, double working_set, double min_mem,
                                       double pressure, double mem_exp) {
  perf::AnalyticParams p;
  p.io_seconds = io;
  p.serial_seconds = serial;
  p.parallel_seconds = parallel;
  p.max_parallelism = max_par;
  p.working_set_mb = working_set;
  p.min_memory_mb = min_mem;
  p.pressure_coeff = pressure;
  p.input_work_exp = 1.0;
  p.input_memory_exp = mem_exp;
  return std::make_unique<perf::AnalyticModel>(p);
}
}  // namespace

Workload make_data_analytics() {
  platform::Workflow wf("data_analytics");

  //                     io  serial parallel maxP  wset   minMem press memExp
  const auto ingest =
      wf.add_function("ingest", model(10.0, 8.0, 40.0, 4.0, 1020.0, 512.0, 3.0, 0.5));
  std::vector<dag::NodeId> mappers;
  for (int i = 0; i < 6; ++i) {
    // CPU-parallel scans with small working sets (the 87.5%-style decoupling
    // win of the paper's ML Pipeline, at larger scale).
    mappers.push_back(wf.add_function(
        "map_" + std::to_string(i),
        model(2.0, 3.0, 80.0 + 6.0 * i, 6.0, 700.0 + 30.0 * i, 384.0, 3.0, 0.3)));
  }
  // Shuffle holds the whole intermediate dataset: memory-bound.
  const auto shuffle =
      wf.add_function("shuffle", model(6.0, 10.0, 30.0, 3.0, 6100.0, 3072.0, 5.0, 0.7));
  std::vector<dag::NodeId> reducers;
  for (int i = 0; i < 3; ++i) {
    reducers.push_back(wf.add_function(
        "reduce_" + std::to_string(i),
        model(2.0, 5.0, 36.0 + 5.0 * i, 4.0, 1530.0, 768.0, 4.0, 0.5)));
  }
  // Report is an IO floor: remote writes dominate.
  const auto report =
      wf.add_function("report", model(12.0, 4.0, 2.0, 1.0, 440.0, 256.0, 2.0, 0.0));

  for (auto m : mappers) {
    wf.add_edge(ingest, m);
    wf.add_edge(m, shuffle);
  }
  for (auto r : reducers) {
    wf.add_edge(shuffle, r);
    wf.add_edge(r, report);
  }

  Workload w(std::move(wf));
  w.slo_seconds = 300.0;
  w.input_sensitive = true;
  w.input_classes = {{InputClass::Light, 0.5}, {InputClass::Middle, 1.0},
                     {InputClass::Heavy, 1.5}};
  return w;
}

}  // namespace aarc::workloads
