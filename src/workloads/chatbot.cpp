#include "workloads/chatbot.h"

#include "perf/analytic.h"

namespace aarc::workloads {

namespace {
std::unique_ptr<perf::PerfModel> model(double io, double serial, double parallel,
                                       double max_par, double working_set, double min_mem,
                                       double pressure = 3.0) {
  perf::AnalyticParams p;
  p.io_seconds = io;
  p.serial_seconds = serial;
  p.parallel_seconds = parallel;
  p.max_parallelism = max_par;
  p.working_set_mb = working_set;
  p.min_memory_mb = min_mem;
  p.pressure_coeff = pressure;
  p.input_work_exp = 1.0;
  p.input_memory_exp = 0.0;  // text workloads: memory footprint input-insensitive
  return std::make_unique<perf::AnalyticModel>(p);
}
}  // namespace

Workload make_chatbot() {
  platform::Workflow wf("chatbot");

  //                      io  serial parallel maxP  wset  minMem
  const auto preprocess = wf.add_function("preprocess", model(2.0, 6.0, 8.0, 2.0, 440.0, 192.0));
  const auto train_nb = wf.add_function("train_nb", model(1.0, 14.0, 12.0, 2.0, 470.0, 256.0));
  const auto train_lr = wf.add_function("train_lr", model(1.0, 16.0, 14.0, 2.0, 500.0, 256.0));
  const auto train_svm = wf.add_function("train_svm", model(1.0, 20.0, 20.0, 2.0, 505.0, 256.0));
  const auto train_rf = wf.add_function("train_rf", model(1.0, 15.0, 12.0, 2.0, 460.0, 256.0));
  const auto aggregate = wf.add_function("aggregate", model(3.0, 6.0, 2.0, 1.0, 310.0, 192.0));
  const auto intent = wf.add_function("intent_detect", model(8.0, 8.0, 4.0, 1.5, 380.0, 192.0));

  wf.add_edge(preprocess, train_nb);
  wf.add_edge(preprocess, train_lr);
  wf.add_edge(preprocess, train_svm);
  wf.add_edge(preprocess, train_rf);
  wf.add_edge(train_nb, aggregate);
  wf.add_edge(train_lr, aggregate);
  wf.add_edge(train_svm, aggregate);
  wf.add_edge(train_rf, aggregate);
  wf.add_edge(aggregate, intent);

  Workload w(std::move(wf));
  w.slo_seconds = 120.0;
  w.input_sensitive = false;
  w.input_classes = {{InputClass::Light, 1.0}, {InputClass::Middle, 1.0},
                     {InputClass::Heavy, 1.0}};
  return w;
}

}  // namespace aarc::workloads
