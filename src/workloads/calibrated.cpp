#include "workloads/calibrated.h"

#include <algorithm>

#include "perf/analytic.h"
#include "support/contracts.h"

namespace aarc::workloads {

using support::expects;

CalibrationOutcome calibrate_workflow(const platform::Workflow& workflow,
                                      const platform::Executor& executor,
                                      const MeasurementPlan& plan) {
  workflow.validate();
  expects(!plan.points.empty(), "measurement plan needs at least one point");
  expects(plan.repeats >= 1, "measurement plan needs at least one repeat");
  expects(plan.input_scale > 0.0, "input scale must be positive");

  support::Rng rng(plan.seed);
  platform::Workflow clone(workflow.name() + "_calibrated");
  std::vector<double> errors;
  std::size_t measurements = 0;

  const platform::ConfigGrid grid;

  // First pass: create the fitted functions in id order.
  for (dag::NodeId id = 0; id < workflow.function_count(); ++id) {
    const perf::PerfModel& truth = workflow.model(id);

    // Optional: bisect the OOM boundary on the memory grid.  Every probe is
    // one execution attempt against the platform.
    double measured_floor = 0.0;
    std::vector<platform::ResourceConfig> points = plan.points;
    if (plan.probe_oom_floor) {
      std::size_t lo = 0;                              // may OOM
      std::size_t hi = grid.memory().size() - 1;
      expects(truth.fits_memory(grid.memory().value(hi), plan.input_scale),
              "function cannot run even at maximum memory");
      if (truth.fits_memory(grid.memory().value(lo), plan.input_scale)) {
        measured_floor = grid.memory().value(lo);
      } else {
        while (hi - lo > 1) {
          const std::size_t mid = lo + (hi - lo) / 2;
          ++measurements;
          if (truth.fits_memory(grid.memory().value(mid), plan.input_scale)) {
            hi = mid;
          } else {
            lo = mid;
          }
        }
        measured_floor = grid.memory().value(hi);
      }
      // Observe the pressure knee: points just above the floor.
      points.push_back({2.0, measured_floor});
      points.push_back({2.0, grid.memory().snap(measured_floor * 1.5)});
      points.push_back({2.0, grid.memory().snap(measured_floor * 2.5)});
    }

    std::vector<perf::CalibrationSample> samples;
    for (const auto& point : points) {
      if (!truth.fits_memory(point.memory_mb, plan.input_scale)) continue;
      for (std::size_t r = 0; r < plan.repeats; ++r) {
        const double mean =
            truth.mean_runtime(point.vcpu, point.memory_mb, plan.input_scale);
        const double observed = executor.options().noise.noisy_runtime(mean, rng);
        samples.push_back({point.vcpu, point.memory_mb, plan.input_scale, observed});
        ++measurements;
      }
    }
    expects(samples.size() >= 4,
            "measurement plan left too few feasible points for " +
                workflow.function_name(id));
    perf::CalibrationOptions fit = plan.fit;
    fit.seed = support::derive_seed(plan.seed, id);
    const perf::CalibrationResult result = perf::calibrate(samples, fit);
    errors.push_back(result.mean_squared_log_error);

    perf::AnalyticParams params = result.params;
    if (plan.probe_oom_floor) {
      // Pin the floor to the measured boundary; keep the working set above
      // it so the parameters stay consistent.
      params.min_memory_mb = measured_floor;
      params.working_set_mb = std::max(params.working_set_mb, params.min_memory_mb);
    }
    clone.add_function(workflow.function_name(id),
                       std::make_unique<perf::AnalyticModel>(params));
  }

  // Second pass: copy the topology.
  for (dag::NodeId id = 0; id < workflow.function_count(); ++id) {
    for (dag::NodeId next : workflow.graph().successors(id)) {
      clone.add_edge(id, next);
    }
  }
  clone.validate();

  CalibrationOutcome outcome{std::move(clone), std::move(errors), measurements};
  return outcome;
}

}  // namespace aarc::workloads
