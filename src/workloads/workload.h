// A workload = a workflow plus its experiment context (SLO, input classes).
#pragma once

#include <string>
#include <vector>

#include "platform/workflow.h"

namespace aarc::workloads {

/// Input-size classes used by the Video Analysis experiments (Section IV-D).
enum class InputClass { Light, Middle, Heavy };

std::string to_string(InputClass c);

/// Scale factor applied to a workload's performance models for a class.
struct InputClassScale {
  InputClass input_class = InputClass::Middle;
  double scale = 1.0;
};

struct Workload {
  platform::Workflow workflow;
  double slo_seconds = 0.0;
  bool input_sensitive = false;
  /// Scales per class; for input-insensitive workloads all scales are 1.
  std::vector<InputClassScale> input_classes;

  explicit Workload(platform::Workflow wf) : workflow(std::move(wf)) {}

  double scale_for(InputClass c) const;
};

}  // namespace aarc::workloads
