#include "workloads/synthetic.h"

#include <string>

#include "perf/analytic.h"
#include "platform/executor.h"
#include "support/contracts.h"
#include "support/rng.h"

namespace aarc::workloads {

using support::expects;

std::string to_string(Pattern p) {
  switch (p) {
    case Pattern::Scatter:
      return "scatter";
    case Pattern::Broadcast:
      return "broadcast";
    case Pattern::Chain:
      return "chain";
    case Pattern::Random:
      return "random";
  }
  return "?";
}

namespace {

std::unique_ptr<perf::PerfModel> random_model(support::Rng& rng) {
  perf::AnalyticParams p;
  // Draw a function archetype: CPU-bound, memory-bound, or IO-bound.
  const auto archetype = rng.uniform_int(0, 2);
  switch (archetype) {
    case 0:  // CPU-bound
      p.io_seconds = rng.uniform(0.5, 3.0);
      p.serial_seconds = rng.uniform(2.0, 8.0);
      p.parallel_seconds = rng.uniform(20.0, 80.0);
      p.max_parallelism = rng.uniform(2.0, 8.0);
      p.working_set_mb = rng.uniform(256.0, 1024.0);
      break;
    case 1:  // memory-bound
      p.io_seconds = rng.uniform(1.0, 5.0);
      p.serial_seconds = rng.uniform(5.0, 15.0);
      p.parallel_seconds = rng.uniform(5.0, 30.0);
      p.max_parallelism = rng.uniform(1.0, 4.0);
      p.working_set_mb = rng.uniform(2048.0, 8192.0);
      break;
    default:  // IO-bound
      p.io_seconds = rng.uniform(5.0, 20.0);
      p.serial_seconds = rng.uniform(2.0, 10.0);
      p.parallel_seconds = rng.uniform(0.5, 5.0);
      p.max_parallelism = rng.uniform(1.0, 2.0);
      p.working_set_mb = rng.uniform(192.0, 768.0);
      break;
  }
  p.min_memory_mb = p.working_set_mb * rng.uniform(0.3, 0.6);
  p.pressure_coeff = rng.uniform(1.0, 6.0);
  p.input_work_exp = 1.0;
  p.input_memory_exp = 0.0;
  return std::make_unique<perf::AnalyticModel>(p);
}

platform::Workflow build_topology(const SyntheticOptions& options, support::Rng& rng) {
  platform::Workflow wf("synthetic_" + to_string(options.pattern) + "_s" +
                        std::to_string(options.seed));
  const std::size_t layers = options.layers;
  const std::size_t width = options.width;

  const auto source = wf.add_function("source", random_model(rng));
  if (options.pattern == Pattern::Chain) {
    dag::NodeId prev = source;
    for (std::size_t l = 0; l < layers; ++l) {
      const auto node = wf.add_function("stage_" + std::to_string(l), random_model(rng));
      wf.add_edge(prev, node);
      prev = node;
    }
    const auto sink = wf.add_function("sink", random_model(rng));
    wf.add_edge(prev, sink);
    return wf;
  }

  // Scatter / Broadcast / Random: layered with `width` branches per layer.
  std::vector<dag::NodeId> previous{source};
  for (std::size_t l = 0; l < layers; ++l) {
    std::vector<dag::NodeId> current;
    current.reserve(width);
    for (std::size_t b = 0; b < width; ++b) {
      current.push_back(wf.add_function(
          "f_" + std::to_string(l) + "_" + std::to_string(b), random_model(rng)));
    }
    switch (options.pattern) {
      case Pattern::Scatter:
        // Branch b follows branch b of the previous layer (parallel lanes).
        for (std::size_t b = 0; b < width; ++b) {
          wf.add_edge(previous[b % previous.size()], current[b]);
        }
        break;
      case Pattern::Broadcast:
        // Every node of the previous layer feeds every node of this layer.
        for (dag::NodeId p : previous) {
          for (dag::NodeId c : current) wf.add_edge(p, c);
        }
        break;
      case Pattern::Random:
      default:
        // Each new node gets 1-2 random predecessors; each previous node is
        // guaranteed at least one successor afterwards.
        for (dag::NodeId c : current) {
          const std::size_t fan_in = 1 + (rng.bernoulli(0.4) ? 1 : 0);
          for (std::size_t k = 0; k < fan_in; ++k) {
            wf.add_edge(previous[rng.index(previous.size())], c);
          }
        }
        for (dag::NodeId p : previous) {
          if (wf.graph().successors(p).empty()) {
            wf.add_edge(p, current[rng.index(current.size())]);
          }
        }
        break;
    }
    previous = std::move(current);
  }
  const auto sink = wf.add_function("sink", random_model(rng));
  for (dag::NodeId p : previous) wf.add_edge(p, sink);
  return wf;
}

}  // namespace

Workload make_synthetic(const SyntheticOptions& options) {
  expects(options.layers >= 1, "synthetic workflow needs at least one interior layer");
  expects(options.width >= 1, "synthetic workflow needs width >= 1");
  expects(options.slo_headroom > 1.0, "SLO headroom must exceed 1 for feasibility");

  support::Rng rng(support::derive_seed(options.seed, 0xC0FFEE));
  Workload w(build_topology(options, rng));
  w.workflow.validate();

  // Derive a feasible SLO from the base-config (over-provisioned) makespan.
  const platform::Executor executor;
  const platform::ConfigGrid grid;
  const auto base = platform::uniform_config(w.workflow.function_count(), grid.max_config());
  const auto result = executor.execute_mean(w.workflow, base);
  expects(!result.failed, "synthetic workflow must run under the base config");
  w.slo_seconds = result.makespan * options.slo_headroom;
  w.input_sensitive = false;
  w.input_classes = {{InputClass::Light, 1.0}, {InputClass::Middle, 1.0},
                     {InputClass::Heavy, 1.0}};
  return w;
}

}  // namespace aarc::workloads
