// Data Analytics workload (extension — not in the paper).
//
// A MapReduce-style batch job: ingest splits the dataset to six mappers
// (CPU-parallel with moderate working sets), a shuffle stage gathers and
// re-partitions (memory- and IO-heavy), three reducers aggregate in
// parallel, and a report stage writes results.  This is the fourth workload
// used by the generalization studies: mixed affinities inside one DAG
// (cpu-bound mappers, memory-bound shuffle, io-bound report) and a wider
// fan-out than any of the paper's three applications.
#pragma once

#include "workloads/workload.h"

namespace aarc::workloads {

/// Build the Data Analytics workload (SLO 300 s).
Workload make_data_analytics();

}  // namespace aarc::workloads
