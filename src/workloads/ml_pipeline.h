// The ML Pipeline workflow (paper Fig. 1, middle).
//
// "Achieves machine learning by performing dimensionality reduction, model
// training, and testing."  Broadcast communication pattern: the PCA stage
// broadcasts the reduced dataset to three parallel trainers, whose models are
// combined and then evaluated.  Training is highly parallel CPU-bound work
// with a small working set — the decoupled optimum sits near 4 vCPU / 512 MB,
// an 87.5% memory cut versus the coupled 4 vCPU / 4096 MB point (Section
// II-A).
#pragma once

#include "workloads/workload.h"

namespace aarc::workloads {

/// Build the ML Pipeline workload (SLO 120 s, Section IV-A(c)).
Workload make_ml_pipeline();

}  // namespace aarc::workloads
