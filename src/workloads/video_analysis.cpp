#include "workloads/video_analysis.h"

#include "perf/analytic.h"

namespace aarc::workloads {

namespace {
std::unique_ptr<perf::PerfModel> model(double io, double serial, double parallel,
                                       double max_par, double working_set, double min_mem,
                                       double pressure = 5.0) {
  perf::AnalyticParams p;
  p.io_seconds = io;
  p.serial_seconds = serial;
  p.parallel_seconds = parallel;
  p.max_parallelism = max_par;
  p.working_set_mb = working_set;
  p.min_memory_mb = min_mem;
  p.pressure_coeff = pressure;
  p.input_work_exp = 1.0;
  p.input_memory_exp = 0.6;  // frame buffers grow sublinearly with video size
  return std::make_unique<perf::AnalyticModel>(p);
}
}  // namespace

Workload make_video_analysis() {
  platform::Workflow wf("video_analysis");

  // Extraction/classification are dominated by embarrassingly parallel
  // per-frame work (large `parallel`, small serial/io) with multi-GB frame
  // buffers, so their decoupled optimum (~8.5 vCPU, ~5 GB) sits far off the
  // 1-core-per-GB coupling diagonal — the affinity gap that separates AARC
  // from MAFF in the paper's Table II.
  //                    io  serial parallel maxP   wset   minMem
  const auto split = wf.add_function("split", model(20.0, 30.0, 100.0, 4.0, 2040.0, 1024.0));
  const auto ex0 = wf.add_function("extract_0", model(7.0, 14.0, 700.0, 8.5, 5100.0, 2048.0));
  const auto ex1 = wf.add_function("extract_1", model(7.0, 13.0, 660.0, 8.5, 5050.0, 2048.0));
  const auto ex2 = wf.add_function("extract_2", model(7.0, 15.0, 720.0, 8.5, 5110.0, 2048.0));
  const auto ex3 = wf.add_function("extract_3", model(7.0, 14.0, 680.0, 8.5, 5080.0, 2048.0));
  const auto cl0 = wf.add_function("classify_0", model(5.0, 11.0, 450.0, 8.5, 4180.0, 1792.0));
  const auto cl1 = wf.add_function("classify_1", model(5.0, 10.0, 430.0, 8.5, 4150.0, 1792.0));
  const auto cl2 = wf.add_function("classify_2", model(5.0, 12.0, 460.0, 8.5, 4200.0, 1792.0));
  const auto cl3 = wf.add_function("classify_3", model(5.0, 11.0, 440.0, 8.5, 4170.0, 1792.0));
  const auto merge = wf.add_function("merge", model(15.0, 25.0, 20.0, 2.0, 1530.0, 768.0));

  wf.add_edge(split, ex0);
  wf.add_edge(split, ex1);
  wf.add_edge(split, ex2);
  wf.add_edge(split, ex3);
  wf.add_edge(ex0, cl0);
  wf.add_edge(ex1, cl1);
  wf.add_edge(ex2, cl2);
  wf.add_edge(ex3, cl3);
  wf.add_edge(cl0, merge);
  wf.add_edge(cl1, merge);
  wf.add_edge(cl2, merge);
  wf.add_edge(cl3, merge);

  Workload w(std::move(wf));
  w.slo_seconds = 600.0;
  w.input_sensitive = true;
  w.input_classes = {{InputClass::Light, 0.25}, {InputClass::Middle, 1.0},
                     {InputClass::Heavy, 1.8}};
  return w;
}

}  // namespace aarc::workloads
