// Calibration onboarding pipeline.
//
// A real adopter does not know their functions' response surfaces — they
// *measure* them.  This module runs that loop against the (simulated)
// platform: execute every function of a workflow across a small measurement
// plan (a grid of configurations, repeated under noise), fit an
// AnalyticModel to each function's samples (perf/calibration.h), and return
// a clone of the workflow driven by the *fitted* models.
//
// Scheduling on the calibrated clone instead of the ground-truth models
// quantifies AARC's robustness to model error — `bench_model_error` reports
// how much of the cost savings survives the fit.
#pragma once

#include <cstdint>
#include <vector>

#include "perf/calibration.h"
#include "platform/executor.h"
#include "platform/workflow.h"

namespace aarc::workloads {

struct MeasurementPlan {
  /// Configurations each function is measured at.
  std::vector<platform::ResourceConfig> points{
      {0.5, 512.0},  {1.0, 512.0},  {1.0, 2048.0},  {2.0, 1024.0},
      {4.0, 1024.0}, {4.0, 4096.0}, {6.0, 6144.0},  {8.0, 4096.0},
      {10.0, 5120.0}, {10.0, 10240.0},
  };
  std::size_t repeats = 3;       ///< noisy measurements per point
  double input_scale = 1.0;
  std::uint64_t seed = 515;
  perf::CalibrationOptions fit{10, 400, 42};  ///< fitting budget

  /// Probe each function's OOM boundary by bisection over the memory grid
  /// (each probe is one execution attempt) and (a) pin the fitted model's
  /// min_memory_mb to the measured floor, (b) add measurement points just
  /// above the floor so the pressure knee is observable.  Without this the
  /// fitted floors can sit below the real ones and a schedule computed on
  /// the fits OOMs in production.
  bool probe_oom_floor = true;
};

struct CalibrationOutcome {
  platform::Workflow workflow;            ///< the calibrated clone
  std::vector<double> fit_errors;         ///< per-function mean sq. log error
  std::size_t measurements = 0;           ///< total executions spent
};

/// Measure + fit every function of `workflow`.  Functions are measured in
/// isolation (their model invoked directly, with the executor's noise), so
/// the plan cost is measurements-per-function x functions.  Points below a
/// function's OOM floor are skipped.
CalibrationOutcome calibrate_workflow(const platform::Workflow& workflow,
                                      const platform::Executor& executor,
                                      const MeasurementPlan& plan = {});

}  // namespace aarc::workloads
